#!/usr/bin/env python3
"""Independent decoder for rs::trace capture files and rs::wal journal
segments, written from docs/TRACE_FORMAT.md and docs/WAL_FORMAT.md alone —
it deliberately shares no code with the C++ implementation. CI runs it
against the committed example artifacts; if this decoder and the C++
writer ever disagree, either the spec or the code drifted, and the job
fails.

Usage: trace_spec_check.py <capture.rstrace|segment.rswal> [more...]

Files are dispatched on their leading magic: "RSNP" containers get the
capture walk, "RSWJ" files get the journal-segment walk (header, then
per-record LSN/length/CRC framing with each payload decoded as a
single-event container; a torn tail — the first invalid record — ends the
scan, per the spec's crash rule).

Exit status 0 iff every file decodes: magic/version/CRC valid, every
section consumed exactly, every event well-formed.
"""

import struct
import sys
import zlib

MAGIC = 0x504E5352  # "RSNP" little-endian
CONTAINER_VERSION = 1
TRACE_LAYER_VERSION = 1
WAL_MAGIC = int.from_bytes(b"RSWJ", "little")
WAL_LAYER_VERSION = 1
WAL_SEGMENT_HEADER = 16  # magic u32 + version u32 + first_lsn u64
WAL_FRAME_HEADER = 16    # lsn u64 + payload_len u32 + crc u32
WAL_MIN_PAYLOAD = 12     # container header (8) + CRC trailer (4)

# Section tags are fourCCs stored little-endian: tag('T','R','C','E')
# compares equal to the bytes b"TRCE" read as a LE u32.
TAG_TRCE = int.from_bytes(b"TRCE", "little")
TAG_TMET = int.from_bytes(b"TMET", "little")
TAG_TEVT = int.from_bytes(b"TEVT", "little")

EVENT_NAMES = {
    1: "register",
    2: "retire",
    3: "replace-model",
    4: "observe",
    5: "plan",
    6: "plan-all",
}


class SpecError(Exception):
    pass


class Cursor:
    """Bounds-checked little-endian reads over one section's payload."""

    def __init__(self, data, start, end, what):
        self.data = data
        self.pos = start
        self.end = end
        self.what = what

    def take(self, n):
        if self.pos + n > self.end:
            raise SpecError(
                f"{self.what}: read of {n} bytes overruns the section "
                f"({self.end - self.pos} left)")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self.take(1)[0]

    def boolean(self):
        value = self.u8()
        if value > 1:
            raise SpecError(f"{self.what}: bool byte is {value}, not 0/1")
        return value == 1

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def f64(self):
        return struct.unpack("<d", self.take(8))[0]

    def bytes_field(self):
        """Length-prefixed raw bytes (u64 count + payload)."""
        return self.take(self.u64())

    def string(self):
        """A bytes_field holding UTF-8 text (names, labels)."""
        return self.bytes_field().decode("utf-8", errors="strict")

    def section(self, expected_tag):
        tag = self.u32()
        if tag != expected_tag:
            raise SpecError(
                f"{self.what}: section tag {tag.to_bytes(4, 'little')!r}, "
                f"expected {expected_tag.to_bytes(4, 'little')!r}")
        length = self.u64()
        if self.pos + length > self.end:
            raise SpecError(f"{self.what}: section length {length} overruns")
        inner = Cursor(self.data, self.pos, self.pos + length,
                       expected_tag.to_bytes(4, "little").decode())
        self.pos += length
        return inner

    def remaining(self):
        return self.end - self.pos


def read_clock(cur):
    has_position = cur.boolean()
    cur.f64()  # time
    cur.u64()  # readings
    return has_position


def read_action(cur):
    creations = cur.u64()
    if creations > cur.remaining() // 8:
        raise SpecError(f"{cur.what}: action claims {creations} creations")
    cur.take(8 * creations)
    cur.u64()  # deletions
    return creations


def read_event(cur):
    kind = cur.u8()
    if kind not in EVENT_NAMES:
        raise SpecError(f"{cur.what}: unknown event kind {kind}")
    if kind == 1:  # register
        cur.u32()
        name = cur.string()
        if not name:
            raise SpecError(f"{cur.what}: register with empty tenant name")
        cur.bytes_field()  # embedded scaler snapshot, opaque at this layer
    elif kind == 2:  # retire
        cur.u32()
    elif kind == 3:  # replace-model
        cur.u32()
        cur.boolean()
        cur.bytes_field()
    elif kind == 4:  # observe
        cur.u32()
        cur.f64()
        outcome = cur.u8()
        if outcome > 3:
            raise SpecError(f"{cur.what}: observe outcome bits {outcome}")
    elif kind == 5:  # plan
        cur.u32()
        cur.f64()
        read_clock(cur)
        read_action(cur)
    elif kind == 6:  # plan-all
        cur.f64()
        tenants = cur.u64()
        for _ in range(tenants):
            cur.u32()
            ok = cur.boolean()
            read_clock(cur)
            if ok:
                read_action(cur)
    return kind


def check_event_payload(blob, what):
    """One journal-record payload: a complete RSNP container holding
    exactly one trace event (no section wrapper — the journal's framing
    replaces it)."""
    if len(blob) < WAL_MIN_PAYLOAD:
        raise SpecError(f"{what}: payload shorter than header + trailer")
    (crc,) = struct.unpack("<I", blob[-4:])
    if crc != zlib.crc32(blob[:-4]) & 0xFFFFFFFF:
        raise SpecError(f"{what}: payload container CRC mismatch")
    cur = Cursor(blob, 0, len(blob) - 4, what)
    if cur.u32() != MAGIC:
        raise SpecError(f"{what}: payload is not an rs::persist container")
    version = cur.u32()
    if version != CONTAINER_VERSION:
        raise SpecError(f"{what}: payload container version {version}")
    kind = read_event(cur)
    if cur.remaining() != 0:
        raise SpecError(
            f"{what}: {cur.remaining()} stray bytes after the event")
    return kind


def check_wal_segment(path, blob):
    if len(blob) < WAL_SEGMENT_HEADER:
        raise SpecError("segment shorter than its 16-byte header")
    magic, version, first_lsn = struct.unpack("<IIQ",
                                              blob[:WAL_SEGMENT_HEADER])
    if magic != WAL_MAGIC:
        raise SpecError("bad segment magic (not an rs::wal segment)")
    if version != WAL_LAYER_VERSION:
        raise SpecError(f"segment layer version {version}, this checker "
                        f"reads {WAL_LAYER_VERSION}")
    pos = WAL_SEGMENT_HEADER
    expected = first_lsn
    records = 0
    histogram = {}
    torn = 0
    while pos < len(blob):
        remaining = len(blob) - pos
        if remaining < WAL_FRAME_HEADER:
            torn = remaining  # truncated frame header: a crash mid-append
            break
        lsn, length, crc = struct.unpack("<QII", blob[pos:pos + 16])
        if length < WAL_MIN_PAYLOAD or length > remaining - WAL_FRAME_HEADER:
            torn = remaining
            break
        actual = zlib.crc32(blob[pos:pos + 12])
        actual = zlib.crc32(blob[pos + 16:pos + 16 + length],
                            actual) & 0xFFFFFFFF
        if actual != crc:
            torn = remaining
            break
        if lsn != expected:
            # A CRC-valid record that breaks the contiguous LSN sequence is
            # never left by a crash — that's corruption, not a torn tail.
            raise SpecError(f"record at offset {pos} carries LSN {lsn}, "
                            f"expected {expected}")
        kind = check_event_payload(blob[pos + 16:pos + 16 + length],
                                   f"record LSN {lsn}")
        histogram[kind] = histogram.get(kind, 0) + 1
        pos += WAL_FRAME_HEADER + length
        expected += 1
        records += 1
    summary = ", ".join(f"{EVENT_NAMES[k]}={n}"
                        for k, n in sorted(histogram.items()))
    tail = f"; torn tail {torn} bytes" if torn else ""
    print(f"{path}: OK (journal segment, {records} records, LSN "
          f"{first_lsn}..{first_lsn + records - 1}: {summary or 'none'}"
          f"{tail})")


def check(path):
    with open(path, "rb") as fh:
        blob = fh.read()
    if len(blob) >= 4 and blob[:4] == b"RSWJ":
        check_wal_segment(path, blob)
        return
    if len(blob) < 12:
        raise SpecError("file shorter than header + CRC trailer")
    (crc,) = struct.unpack("<I", blob[-4:])
    if crc != zlib.crc32(blob[:-4]) & 0xFFFFFFFF:
        raise SpecError("CRC32 trailer mismatch")
    top = Cursor(blob, 0, len(blob) - 4, "container")
    if top.u32() != MAGIC:
        raise SpecError("bad magic (not an rs::persist container)")
    version = top.u32()
    if version != CONTAINER_VERSION:
        raise SpecError(f"container format version {version}, expected "
                        f"{CONTAINER_VERSION}")

    trce = top.section(TAG_TRCE)
    if top.remaining() != 0:
        raise SpecError(f"{top.remaining()} stray bytes after TRCE section")
    layer = trce.u32()
    if layer != TRACE_LAYER_VERSION:
        raise SpecError(f"trace layer version {layer}, this checker reads "
                        f"{TRACE_LAYER_VERSION}")

    tmet = trce.section(TAG_TMET)
    producer = tmet.string()
    tmet.string()  # label; a newer writer may append more — that's legal

    tevt = trce.section(TAG_TEVT)
    count = tevt.u64()
    histogram = {}
    for _ in range(count):
        kind = read_event(tevt)
        histogram[kind] = histogram.get(kind, 0) + 1
    if tevt.remaining() != 0:
        raise SpecError(f"{tevt.remaining()} stray bytes after the last event")
    if trce.remaining() != 0:
        raise SpecError(f"{trce.remaining()} stray bytes in the TRCE section")

    summary = ", ".join(f"{EVENT_NAMES[k]}={n}"
                        for k, n in sorted(histogram.items()))
    print(f"{path}: OK ({count} events: {summary or 'none'}; "
          f"producer \"{producer}\")")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-4].strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            check(path)
        except (SpecError, OSError, UnicodeDecodeError, struct.error) as err:
            print(f"{path}: FAIL — {err}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
