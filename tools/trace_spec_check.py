#!/usr/bin/env python3
"""Independent decoder for rs::trace capture files, written from
docs/TRACE_FORMAT.md alone — it deliberately shares no code with the C++
implementation. CI runs it against the committed example captures; if this
decoder and the C++ writer ever disagree, either the spec or the code
drifted, and the job fails.

Usage: trace_spec_check.py <capture.rstrace> [more...]

Exit status 0 iff every file decodes: container magic/version/CRC valid,
every section consumed exactly, every event well-formed.
"""

import struct
import sys
import zlib

MAGIC = 0x504E5352  # "RSNP" little-endian
CONTAINER_VERSION = 1
TRACE_LAYER_VERSION = 1

# Section tags are fourCCs stored little-endian: tag('T','R','C','E')
# compares equal to the bytes b"TRCE" read as a LE u32.
TAG_TRCE = int.from_bytes(b"TRCE", "little")
TAG_TMET = int.from_bytes(b"TMET", "little")
TAG_TEVT = int.from_bytes(b"TEVT", "little")

EVENT_NAMES = {
    1: "register",
    2: "retire",
    3: "replace-model",
    4: "observe",
    5: "plan",
    6: "plan-all",
}


class SpecError(Exception):
    pass


class Cursor:
    """Bounds-checked little-endian reads over one section's payload."""

    def __init__(self, data, start, end, what):
        self.data = data
        self.pos = start
        self.end = end
        self.what = what

    def take(self, n):
        if self.pos + n > self.end:
            raise SpecError(
                f"{self.what}: read of {n} bytes overruns the section "
                f"({self.end - self.pos} left)")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self.take(1)[0]

    def boolean(self):
        value = self.u8()
        if value > 1:
            raise SpecError(f"{self.what}: bool byte is {value}, not 0/1")
        return value == 1

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def f64(self):
        return struct.unpack("<d", self.take(8))[0]

    def bytes_field(self):
        """Length-prefixed raw bytes (u64 count + payload)."""
        return self.take(self.u64())

    def string(self):
        """A bytes_field holding UTF-8 text (names, labels)."""
        return self.bytes_field().decode("utf-8", errors="strict")

    def section(self, expected_tag):
        tag = self.u32()
        if tag != expected_tag:
            raise SpecError(
                f"{self.what}: section tag {tag.to_bytes(4, 'little')!r}, "
                f"expected {expected_tag.to_bytes(4, 'little')!r}")
        length = self.u64()
        if self.pos + length > self.end:
            raise SpecError(f"{self.what}: section length {length} overruns")
        inner = Cursor(self.data, self.pos, self.pos + length,
                       expected_tag.to_bytes(4, "little").decode())
        self.pos += length
        return inner

    def remaining(self):
        return self.end - self.pos


def read_clock(cur):
    has_position = cur.boolean()
    cur.f64()  # time
    cur.u64()  # readings
    return has_position


def read_action(cur):
    creations = cur.u64()
    if creations > cur.remaining() // 8:
        raise SpecError(f"{cur.what}: action claims {creations} creations")
    cur.take(8 * creations)
    cur.u64()  # deletions
    return creations


def read_event(cur):
    kind = cur.u8()
    if kind not in EVENT_NAMES:
        raise SpecError(f"{cur.what}: unknown event kind {kind}")
    if kind == 1:  # register
        cur.u32()
        name = cur.string()
        if not name:
            raise SpecError(f"{cur.what}: register with empty tenant name")
        cur.bytes_field()  # embedded scaler snapshot, opaque at this layer
    elif kind == 2:  # retire
        cur.u32()
    elif kind == 3:  # replace-model
        cur.u32()
        cur.boolean()
        cur.bytes_field()
    elif kind == 4:  # observe
        cur.u32()
        cur.f64()
        outcome = cur.u8()
        if outcome > 3:
            raise SpecError(f"{cur.what}: observe outcome bits {outcome}")
    elif kind == 5:  # plan
        cur.u32()
        cur.f64()
        read_clock(cur)
        read_action(cur)
    elif kind == 6:  # plan-all
        cur.f64()
        tenants = cur.u64()
        for _ in range(tenants):
            cur.u32()
            ok = cur.boolean()
            read_clock(cur)
            if ok:
                read_action(cur)
    return kind


def check(path):
    with open(path, "rb") as fh:
        blob = fh.read()
    if len(blob) < 12:
        raise SpecError("file shorter than header + CRC trailer")
    (crc,) = struct.unpack("<I", blob[-4:])
    if crc != zlib.crc32(blob[:-4]) & 0xFFFFFFFF:
        raise SpecError("CRC32 trailer mismatch")
    top = Cursor(blob, 0, len(blob) - 4, "container")
    if top.u32() != MAGIC:
        raise SpecError("bad magic (not an rs::persist container)")
    version = top.u32()
    if version != CONTAINER_VERSION:
        raise SpecError(f"container format version {version}, expected "
                        f"{CONTAINER_VERSION}")

    trce = top.section(TAG_TRCE)
    if top.remaining() != 0:
        raise SpecError(f"{top.remaining()} stray bytes after TRCE section")
    layer = trce.u32()
    if layer != TRACE_LAYER_VERSION:
        raise SpecError(f"trace layer version {layer}, this checker reads "
                        f"{TRACE_LAYER_VERSION}")

    tmet = trce.section(TAG_TMET)
    producer = tmet.string()
    tmet.string()  # label; a newer writer may append more — that's legal

    tevt = trce.section(TAG_TEVT)
    count = tevt.u64()
    histogram = {}
    for _ in range(count):
        kind = read_event(tevt)
        histogram[kind] = histogram.get(kind, 0) + 1
    if tevt.remaining() != 0:
        raise SpecError(f"{tevt.remaining()} stray bytes after the last event")
    if trce.remaining() != 0:
        raise SpecError(f"{trce.remaining()} stray bytes in the TRCE section")

    summary = ", ".join(f"{EVENT_NAMES[k]}={n}"
                        for k, n in sorted(histogram.items()))
    print(f"{path}: OK ({count} events: {summary or 'none'}; "
          f"producer \"{producer}\")")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-4].strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            check(path)
        except (SpecError, OSError, UnicodeDecodeError, struct.error) as err:
            print(f"{path}: FAIL — {err}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
