#!/usr/bin/env python3
"""Perf trend gate: compare a fresh BENCH_*.json against a committed baseline.

The perf-smoke CI job regenerates BENCH_plan.json / BENCH_training.json /
BENCH_fleet.json on every PR; this script diffs them against the baselines
committed under bench/baselines/ and fails (exit 1) when a gated metric
regresses by more than --tolerance (default 0.25 = 25%).

Shared CI runners make absolute throughput noisy, so the *gated* metrics are
ratios measured within one run of one binary on one machine — they cancel
the machine out and collapse only when the optimization itself regresses:

  plan_hot_path  : per-(variant, R) `speedup` (reference kernels vs
                   optimized kernels) and per-worker-count
                   `plan_workers[].speedup_vs_serial`;
  fleet_scaling  : per-(threads, plan_sharding) `speedup` over the run's own
                   1-thread baseline;
  training_time  : per-scenario `decision_ms` (the paper's "< 5 ms per
                   decision" claim; absolute, so give it a wider tolerance);
  freshness      : per-retrain_workers `detection_rate` (must not drop),
                   `throughput_vs_no_freshness` (the freshness loop's tax on
                   fleet planning, a within-run ratio), and for the
                   synchronous retrain_workers=0 row `staleness_mean_s`
                   (lower is better; background rows are wall-clock
                   scheduling dependent so only reported);
  replay         : per-threads `tap_overhead` (the trace Recorder's serving
                   tax), `replay_vs_live` (trace::Replay wall time over the
                   tap-on session it verifies), and `bytes_per_event`
                   (capture size — moves only when the wire format changes);
  chaos          : per-threads `availability` and `recovered_fraction` (must
                   not drop) and `fallback_fraction` (must not grow) under
                   the seeded fault storm — all deterministic given the
                   storm seed, so drift means the degradation machinery
                   changed (torn plans and cross-worker parity are gated
                   inside bench_chaos itself, which aborts on violation);
  wal            : `append_overhead` (the journal's whole serving tax, a
                   within-run ratio over the same run's journal-off
                   control) gates for the page-cache-only "none" policy;
                   the fsync-heavy policies' overhead tracks device sync
                   latency and is reported ungated — their deterministic
                   `fsyncs` count gates instead. `bytes_per_event` (on-disk
                   framing cost — moves only when the wire format changes)
                   gates for every journaled row.

fleet_scaling also trend-gates `snapshot_ms` and `snapshot_bytes` once the
committed baseline carries them (rows or baselines without the fields stay
report-only, so pre-snapshot baselines keep working).

Absolute decisions/sec are *reported* (the one-line per-variant summary in
the job log and the delta report artifact) but only gated with
--gate-absolute.

Usage:
  tools/bench_gate.py --baseline bench/baselines/BENCH_plan.baseline.json \
      --current BENCH_plan.json [--tolerance 0.25] [--report delta.json] \
      [--gate-absolute]

Updating the baseline after an intentional perf change:
  re-run the bench with the CI invocation (see .github/workflows/ci.yml,
  perf-smoke job), copy the fresh JSON over the matching
  bench/baselines/*.baseline.json, and commit it with the change.
"""

import argparse
import json
import sys


def fmt_key(key):
    return ", ".join(f"{k}={v}" for k, v in key)


class Gate:
    def __init__(self, tolerance, allow_missing=False):
        self.tolerance = tolerance
        self.allow_missing = allow_missing
        self.rows = []

    def missing(self, key):
        """A baseline row absent from the current run: lost coverage.

        Fails by default — a configuration the baseline gates must keep
        being measured, otherwise a regression there could never fail CI.
        Returns 1 when this counts as a regression.
        """
        level = "WARNING" if self.allow_missing else "FAIL"
        print(f"bench_gate: {level}: {fmt_key(key)} is in the baseline but "
              "missing from the current run — bench invocation drifted from "
              "the committed baseline (update bench/baselines/ together with "
              "the CI flags, or pass --allow-missing)")
        self.rows.append({
            "key": fmt_key(key),
            "metric": "<row missing from current run>",
            "baseline": None,
            "current": None,
            "delta_pct": None,
            "gated": not self.allow_missing,
            "regressed": not self.allow_missing,
        })
        return 0 if self.allow_missing else 1

    def compare(self, key, metric, baseline, current, gated,
                higher_is_better=True):
        """Records one metric comparison; returns True when it regressed."""
        if baseline is None or current is None or baseline <= 0:
            return False
        delta = (current - baseline) / baseline
        if higher_is_better:
            regressed = gated and current < baseline * (1.0 - self.tolerance)
        else:
            regressed = gated and current > baseline * (1.0 + self.tolerance)
        self.rows.append({
            "key": fmt_key(key),
            "metric": metric,
            "baseline": baseline,
            "current": current,
            "delta_pct": round(100.0 * delta, 2),
            "gated": gated,
            "regressed": regressed,
        })
        return regressed


def index_rows(rows, key_fields):
    out = {}
    for row in rows:
        out[tuple((f, row.get(f)) for f in key_fields)] = row
    return out


def gate_plan(baseline, current, gate, gate_absolute):
    regressions = 0
    base_rows = index_rows(baseline.get("results", []), ("variant", "mc"))
    cur_rows = index_rows(current.get("results", []), ("variant", "mc"))
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            regressions += gate.missing(key)
            continue
        regressions += gate.compare(key, "speedup", base.get("speedup"),
                                    cur.get("speedup"), gated=True)
        regressions += gate.compare(
            key, "optimized_decisions_per_s",
            base.get("optimized_decisions_per_s"),
            cur.get("optimized_decisions_per_s"), gated=gate_absolute)
        base_pw = {p["workers"]: p for p in base.get("plan_workers", [])}
        cur_pw = {p["workers"]: p for p in cur.get("plan_workers", [])}
        for workers, base_point in base_pw.items():
            cur_point = cur_pw.get(workers)
            if cur_point is None:
                continue
            regressions += gate.compare(
                key + (("plan_workers", workers),), "speedup_vs_serial",
                base_point.get("speedup_vs_serial"),
                cur_point.get("speedup_vs_serial"), gated=True)
        # The one-line job-log summary: old vs new decisions/sec.
        print(f"bench_gate: {fmt_key(key)}: "
              f"{cur.get('optimized_decisions_per_s', 0):.0f} dec/s "
              f"(baseline {base.get('optimized_decisions_per_s', 0):.0f}), "
              f"speedup {cur.get('speedup', 0):.2f}x "
              f"(baseline {base.get('speedup', 0):.2f}x)")
    return regressions


def gate_fleet(baseline, current, gate, gate_absolute):
    regressions = 0
    key_fields = ("threads", "plan_sharding")
    base_rows = index_rows(baseline.get("results", []), key_fields)
    cur_rows = index_rows(current.get("results", []), key_fields)
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            regressions += gate.missing(key)
            continue
        regressions += gate.compare(key, "speedup", base.get("speedup"),
                                    cur.get("speedup"), gated=True)
        regressions += gate.compare(key, "plans_per_s",
                                    base.get("plans_per_s"),
                                    cur.get("plans_per_s"),
                                    gated=gate_absolute)
        # Snapshot metrics (--snapshot-interval runs) trend-gate once the
        # committed baseline carries them; gate.compare() quietly skips
        # rows whose baseline predates the fields, keeping old baselines
        # working as report-only.
        snapshot_note = ""
        if cur.get("snapshots"):
            regressions += gate.compare(
                key, "snapshot_ms", base.get("snapshot_ms"),
                cur.get("snapshot_ms"), gated=True, higher_is_better=False)
            regressions += gate.compare(
                key, "snapshot_bytes", base.get("snapshot_bytes"),
                cur.get("snapshot_bytes"), gated=True,
                higher_is_better=False)
            snapshot_note = (
                f", {cur['snapshots']} snapshots "
                f"({cur.get('snapshot_ms', 0):.1f} ms total, "
                f"{cur.get('snapshot_bytes', 0)} bytes last)")
        print(f"bench_gate: {fmt_key(key)}: "
              f"{cur.get('plans_per_s', 0):.0f} plans/s "
              f"(baseline {base.get('plans_per_s', 0):.0f})"
              f"{snapshot_note}")
    return regressions


def gate_training(baseline, current, gate, gate_absolute):
    del gate_absolute  # decision_ms is the only (absolute) gated metric.
    regressions = 0
    base_rows = index_rows(baseline.get("scenarios", []), ("trace",))
    cur_rows = index_rows(current.get("scenarios", []), ("trace",))
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            regressions += gate.missing(key)
            continue
        regressions += gate.compare(key, "decision_ms",
                                    base.get("decision_ms"),
                                    cur.get("decision_ms"), gated=True,
                                    higher_is_better=False)
        print(f"bench_gate: {fmt_key(key)}: "
              f"decision {cur.get('decision_ms', 0):.3f} ms "
              f"(baseline {base.get('decision_ms', 0):.3f} ms)")
    return regressions


def gate_freshness(baseline, current, gate, gate_absolute):
    regressions = 0
    base_rows = index_rows(baseline.get("results", []), ("retrain_workers",))
    cur_rows = index_rows(current.get("results", []), ("retrain_workers",))
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            regressions += gate.missing(key)
            continue
        regressions += gate.compare(key, "detection_rate",
                                    base.get("detection_rate"),
                                    cur.get("detection_rate"), gated=True)
        regressions += gate.compare(key, "throughput_vs_no_freshness",
                                    base.get("throughput_vs_no_freshness"),
                                    cur.get("throughput_vs_no_freshness"),
                                    gated=True)
        # Staleness is simulated-time for retrain_workers=0 (the swap
        # happens at a deterministic plan boundary) but wall-clock
        # scheduling dependent for background rows, so only the
        # synchronous row gates it.
        synchronous = dict(key).get("retrain_workers") == 0
        regressions += gate.compare(key, "staleness_mean_s",
                                    base.get("staleness_mean_s"),
                                    cur.get("staleness_mean_s"),
                                    gated=synchronous,
                                    higher_is_better=False)
        regressions += gate.compare(key, "plans_per_s",
                                    base.get("plans_per_s"),
                                    cur.get("plans_per_s"),
                                    gated=gate_absolute)
        print(f"bench_gate: {fmt_key(key)}: "
              f"detection {100 * cur.get('detection_rate', 0):.0f}%, "
              f"staleness {cur.get('staleness_mean_s', 0):.0f} s, "
              f"throughput {cur.get('throughput_vs_no_freshness', 0):.2f}x "
              f"of control (baseline "
              f"{base.get('throughput_vs_no_freshness', 0):.2f}x)")
    return regressions


def gate_replay(baseline, current, gate, gate_absolute):
    regressions = 0
    base_rows = index_rows(baseline.get("results", []), ("threads",))
    cur_rows = index_rows(current.get("results", []), ("threads",))
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            regressions += gate.missing(key)
            continue
        # All three gated metrics are lower-is-better within-run ratios:
        # the recorder's serving tax, replay speed relative to the live
        # session it verifies, and the capture's encoded size per event
        # (format bloat — deterministic given the bench config, so it only
        # moves when the wire encoding itself changes).
        regressions += gate.compare(key, "tap_overhead",
                                    base.get("tap_overhead"),
                                    cur.get("tap_overhead"), gated=True,
                                    higher_is_better=False)
        regressions += gate.compare(key, "replay_vs_live",
                                    base.get("replay_vs_live"),
                                    cur.get("replay_vs_live"), gated=True,
                                    higher_is_better=False)
        regressions += gate.compare(key, "bytes_per_event",
                                    base.get("bytes_per_event"),
                                    cur.get("bytes_per_event"), gated=True,
                                    higher_is_better=False)
        regressions += gate.compare(key, "arrivals_per_s",
                                    base.get("arrivals_per_s"),
                                    cur.get("arrivals_per_s"),
                                    gated=gate_absolute)
        print(f"bench_gate: {fmt_key(key)}: "
              f"tap {cur.get('tap_overhead', 0):.2f}x "
              f"(baseline {base.get('tap_overhead', 0):.2f}x), "
              f"replay {cur.get('replay_vs_live', 0):.2f}x of live "
              f"(baseline {base.get('replay_vs_live', 0):.2f}x), "
              f"{cur.get('bytes_per_event', 0):.1f} B/event "
              f"(baseline {base.get('bytes_per_event', 0):.1f})")
    return regressions


def gate_chaos(baseline, current, gate, gate_absolute):
    regressions = 0
    base_rows = index_rows(baseline.get("results", []), ("threads",))
    cur_rows = index_rows(current.get("results", []), ("threads",))
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            regressions += gate.missing(key)
            continue
        # All gated chaos metrics are deterministic given the storm seed
        # (the bench aborts on cross-worker divergence before writing
        # JSON), so any drift here means the degradation machinery itself
        # changed: availability and recovered_fraction must not drop,
        # fallback_fraction must not grow (more of the fleet running
        # degraded for the same storm).
        regressions += gate.compare(key, "availability",
                                    base.get("availability"),
                                    cur.get("availability"), gated=True)
        regressions += gate.compare(key, "recovered_fraction",
                                    base.get("recovered_fraction"),
                                    cur.get("recovered_fraction"),
                                    gated=True)
        regressions += gate.compare(key, "fallback_fraction",
                                    base.get("fallback_fraction"),
                                    cur.get("fallback_fraction"), gated=True,
                                    higher_is_better=False)
        regressions += gate.compare(key, "arrivals_per_s",
                                    base.get("arrivals_per_s"),
                                    cur.get("arrivals_per_s"),
                                    gated=gate_absolute)
        # torn_plans is gated inside the bench itself (it aborts on any),
        # so here it is reporting only.
        print(f"bench_gate: {fmt_key(key)}: "
              f"availability {100 * cur.get('availability', 0):.2f}%, "
              f"fallback {100 * cur.get('fallback_fraction', 0):.2f}% "
              f"(baseline {100 * base.get('fallback_fraction', 0):.2f}%), "
              f"recovered {100 * cur.get('recovered_fraction', 0):.0f}%, "
              f"{cur.get('faults_fired', 0)} faults fired, "
              f"{cur.get('torn_plans', 0)} torn plans")
    return regressions


def gate_wal(baseline, current, gate, gate_absolute):
    regressions = 0
    base_rows = index_rows(baseline.get("results", []), ("policy",))
    cur_rows = index_rows(current.get("results", []), ("policy",))
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            regressions += gate.missing(key)
            continue
        # append_overhead is the journal's whole serving tax as a
        # within-run ratio (journaled serve time over the same run's
        # journal-off serve time). For the fsync-heavy policies that ratio
        # tracks the runner's device sync latency — even same-machine
        # reruns drift past 60% — so only the page-cache-only "none" row
        # gates it; the fsync-heavy rows are reported ungated, and their
        # deterministic *fsync count* (policy × schedule) gates instead.
        # bytes_per_event is the on-disk framing cost, deterministic given
        # the bench config, gated for every journaled row.
        policy = dict(key).get("policy")
        journaled = policy != "off"
        regressions += gate.compare(key, "append_overhead",
                                    base.get("append_overhead"),
                                    cur.get("append_overhead"),
                                    gated=(policy == "none"),
                                    higher_is_better=False)
        regressions += gate.compare(key, "bytes_per_event",
                                    base.get("bytes_per_event"),
                                    cur.get("bytes_per_event"),
                                    gated=journaled, higher_is_better=False)
        regressions += gate.compare(key, "fsyncs",
                                    base.get("fsyncs"), cur.get("fsyncs"),
                                    gated=journaled, higher_is_better=False)
        regressions += gate.compare(key, "events_per_s",
                                    base.get("events_per_s"),
                                    cur.get("events_per_s"),
                                    gated=gate_absolute)
        print(f"bench_gate: {fmt_key(key)}: "
              f"overhead {cur.get('append_overhead', 0):.2f}x "
              f"(baseline {base.get('append_overhead', 0):.2f}x), "
              f"{cur.get('bytes_per_event', 0):.1f} B/event "
              f"(baseline {base.get('bytes_per_event', 0):.1f}), "
              f"{cur.get('fsyncs', 0)} fsyncs")
    return regressions


GATES = {
    "plan_hot_path": gate_plan,
    "fleet_scaling": gate_fleet,
    "training_time": gate_training,
    "freshness": gate_freshness,
    "replay": gate_replay,
    "chaos": gate_chaos,
    "wal": gate_wal,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (0.25 = 25%%)")
    parser.add_argument("--report", default="",
                        help="write the full delta report JSON here")
    parser.add_argument("--allow-missing", action="store_true",
                        help="downgrade baseline rows absent from the "
                             "current run to warnings instead of failures")
    parser.add_argument("--gate-absolute", action="store_true",
                        help="also gate absolute throughput metrics "
                             "(meaningful on dedicated hardware only)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_gate: cannot load inputs: {err}", file=sys.stderr)
        return 2

    kind = current.get("bench", "")
    if baseline.get("bench", "") != kind:
        print(f"bench_gate: baseline is for '{baseline.get('bench')}' but "
              f"current is '{kind}'", file=sys.stderr)
        return 2
    if kind not in GATES:
        print(f"bench_gate: unknown bench kind '{kind}'", file=sys.stderr)
        return 2

    gate = Gate(args.tolerance, args.allow_missing)
    regressions = GATES[kind](baseline, current, gate, args.gate_absolute)

    if args.report:
        with open(args.report, "w") as f:
            json.dump({
                "bench": kind,
                "tolerance": args.tolerance,
                "regressions": regressions,
                "ok": regressions == 0,
                "rows": gate.rows,
            }, f, indent=2)
            f.write("\n")

    if regressions:
        worst = [r for r in gate.rows if r["regressed"]]
        print(f"bench_gate: FAIL — {regressions} metric(s) regressed more "
              f"than {100 * args.tolerance:.0f}% vs {args.baseline}:",
              file=sys.stderr)
        for row in worst:
            if row["baseline"] is None:
                print(f"  {row['key']}: {row['metric']}", file=sys.stderr)
            else:
                print(f"  {row['key']}: {row['metric']} "
                      f"{row['baseline']:.3f} -> {row['current']:.3f} "
                      f"({row['delta_pct']:+.1f}%)", file=sys.stderr)
        print("bench_gate: if this change intentionally trades this perf "
              "away, re-run the bench with the CI invocation and commit the "
              "fresh JSON over the baseline file (see tools/bench_gate.py "
              "docstring).", file=sys.stderr)
        return 1
    print(f"bench_gate: OK — no gated metric regressed more than "
          f"{100 * args.tolerance:.0f}% vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
