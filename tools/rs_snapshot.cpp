/// \file rs_snapshot.cpp
/// \brief Snapshot inspector: prints the section tree and headline state of
///        an rs::persist container (Scaler, tenant, fleet, or rs::trace
///        serving capture).
///
/// Usage:  rs_snapshot [--verify] <snapshot-or-journal-file>
///
/// Also understands rs::wal artifacts: journal segment files (magic
/// "RSWJ") are walked record-by-record (CRC, framing, LSN contiguity —
/// torn tails reported, pre-tail corruption fails), and journal
/// checkpoints print their WCKP metadata before the embedded fleet.
///
/// The inspector understands the current section layouts but degrades
/// gracefully: unknown top-level tags are skipped wholesale, and known
/// sections whose tail carries fields this build predates are closed with
/// ExitSection (the codec skips the unread bytes). It never mutates the
/// snapshot and never crashes on corrupt input — the codec's CRC and bounds
/// checks turn every malformation into a printed error.

#include <cstdint>
#include <fstream>
#include <streambuf>
#include <iostream>
#include <string>
#include <vector>

#include "rs/persist/persist.hpp"
#include "rs/wal/wal.hpp"

namespace {

using rs::Status;
using rs::persist::Reader;

const char* DurationKindName(std::uint8_t kind) {
  switch (kind) {
    case 0:
      return "deterministic";
    case 1:
      return "exponential";
    case 2:
      return "lognormal";
    case 3:
      return "weibull";
    case 4:
      return "uniform";
    default:
      return "?";
  }
}

std::string Indent(int depth) { return std::string(2 * depth, ' '); }

// Prints "pending: lognormal(mu, sigma)" style summaries.
Status PrintDuration(Reader* reader, int depth, const char* label) {
  RS_ASSIGN_OR_RETURN(const std::uint8_t kind, reader->ReadU8());
  RS_ASSIGN_OR_RETURN(const double p1, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double p2, reader->ReadDouble());
  std::cout << Indent(depth) << label << ": " << DurationKindName(kind) << '('
            << p1 << ", " << p2 << ")\n";
  return Status::OK();
}

Status PrintSpec(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagSpec));
  RS_ASSIGN_OR_RETURN(const std::string name, reader->ReadString());
  RS_ASSIGN_OR_RETURN(const std::uint64_t params, reader->ReadU64());
  std::cout << Indent(depth) << "SPEC strategy: " << name << '\n';
  for (std::uint64_t i = 0; i < params; ++i) {
    RS_ASSIGN_OR_RETURN(const std::string key, reader->ReadString());
    RS_ASSIGN_OR_RETURN(const double value, reader->ReadDouble());
    std::cout << Indent(depth + 1) << key << " = " << value << '\n';
  }
  return reader->ExitSection();
}

Status PrintBuildContext(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagBuildContext));
  std::cout << Indent(depth) << "CTXT build defaults:\n";
  RS_RETURN_NOT_OK(PrintDuration(reader, depth + 1, "pending"));
  RS_ASSIGN_OR_RETURN(const std::uint64_t mc, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const double interval, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t seed, reader->ReadU64());
  std::cout << Indent(depth + 1) << "mc_samples = " << mc
            << ", planning_interval = " << interval << " s, seed = " << seed
            << '\n';
  return reader->ExitSection();
}

Status PrintTrained(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagTrained));
  RS_ASSIGN_OR_RETURN(const double dt, reader->ReadDouble());
  std::vector<double> rates;
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&rates));
  RS_ASSIGN_OR_RETURN(const std::uint64_t period, reader->ReadU64());
  std::cout << Indent(depth) << "TRND forecast: " << rates.size()
            << " bins x " << dt << " s (horizon "
            << dt * static_cast<double>(rates.size())
            << " s), detected period = " << period << " bins\n";
  return reader->ExitSection();
}

Status PrintStrategyModel(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagStrategyModel));
  RS_ASSIGN_OR_RETURN(const std::uint32_t tag, reader->PeekSectionTag());
  std::cout << Indent(depth) << "STRA model record: "
            << rs::persist::TagToString(tag) << " ("
            << reader->remaining() << " bytes)\n";
  return reader->ExitSection();
}

Status PrintMirror(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagMirror));
  std::cout << Indent(depth) << "MIRR serving mirror ("
            << reader->remaining() << " bytes):\n";
  RS_RETURN_NOT_OK(PrintDuration(reader, depth + 1, "pending"));
  RS_ASSIGN_OR_RETURN(const std::uint64_t seed, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const bool charge_wall, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const double creation_latency, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double pending_jitter, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const bool charge_idle, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const bool had_clock, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const double retention, reader->ReadDouble());
  std::cout << Indent(depth + 1) << "seed = " << seed
            << ", creation_latency = " << creation_latency
            << " s, pending_jitter = " << pending_jitter << '\n'
            << Indent(depth + 1) << "charge_decision_wall_time = "
            << (charge_wall ? "yes" : "no")
            << ", charge_idle_until_horizon = " << (charge_idle ? "yes" : "no")
            << ", injected clock = " << (had_clock ? "yes" : "no")
            << ", retention override = " << retention << " s\n";
  RS_ASSIGN_OR_RETURN(const bool started, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const double now, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double next_tick, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t arrivals, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t cold_starts, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t creations, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t deletions, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t next_seq, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t watermark, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t callbacks, reader->ReadU64());
  std::cout << Indent(depth + 1)
            << (started ? "started" : "not yet started") << ", now = " << now
            << " s, next planning tick = " << next_tick << " s\n"
            << Indent(depth + 1) << "arrivals = " << arrivals
            << ", cold starts = " << cold_starts
            << ", creations = " << creations << ", deletions = " << deletions
            << '\n'
            << Indent(depth + 1) << "planning callbacks = " << callbacks
            << ", emissions = " << next_seq
            << " (drained through " << watermark << ")\n";
  // RNG words, schedule, live set, windows: sizes only matter here; let
  // ExitSection skip the payload.
  return reader->ExitSection();
}

Status PrintScaler(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagScaler));
  RS_ASSIGN_OR_RETURN(const std::uint32_t layer_version, reader->ReadU32());
  std::cout << Indent(depth) << "SCLR scaler record (layer version "
            << layer_version << "):\n";
  RS_RETURN_NOT_OK(PrintSpec(reader, depth + 1));
  RS_RETURN_NOT_OK(PrintBuildContext(reader, depth + 1));
  RS_RETURN_NOT_OK(PrintTrained(reader, depth + 1));
  RS_RETURN_NOT_OK(PrintStrategyModel(reader, depth + 1));
  RS_RETURN_NOT_OK(PrintMirror(reader, depth + 1));
  return reader->ExitSection();
}

// Drift-detector summary: scores and whether it latched.
Status PrintDetector(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagDriftDetector));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  RS_ASSIGN_OR_RETURN(const double dt, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double origin, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t period, reader->ReadU64());
  std::vector<double> expected;
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&expected));
  RS_ASSIGN_OR_RETURN(const std::uint64_t bins_closed, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const double open_count, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double g_up, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double g_down, reader->ReadDouble());
  std::vector<double> ring;
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&ring));
  RS_ASSIGN_OR_RETURN(const double corr_cusum, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint8_t kind, reader->ReadU8());
  RS_ASSIGN_OR_RETURN(const double fired_time, reader->ReadDouble());
  std::cout << Indent(depth) << "DRFT drift detector (version " << version
            << "): " << bins_closed << " bins closed x " << dt
            << " s from origin " << origin << " s, period = " << period
            << " bins, reference = " << expected.size() << " bins\n"
            << Indent(depth + 1) << "scores: up = " << g_up
            << ", down = " << g_down << ", profile = " << corr_cusum
            << ", open bin count = " << open_count << '\n'
            << Indent(depth + 1);
  if (kind == 0) {
    std::cout << "no drift latched\n";
  } else {
    std::cout << "LATCHED " << (kind == 1 ? "rate_shift" : "periodicity_break")
              << " at t = " << fired_time << " s\n";
  }
  return reader->ExitSection();
}

// Training-session summary: window geometry and warm-start state.
Status PrintTrainSession(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagTrainSession));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  RS_ASSIGN_OR_RETURN(const double start, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double dt, reader->ReadDouble());
  std::vector<double> counts;
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&counts));
  std::vector<double> warm;
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&warm));
  RS_ASSIGN_OR_RETURN(const std::uint64_t fits, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t last_iters, reader->ReadU64());
  std::cout << Indent(depth) << "TSES training session (version " << version
            << "): " << counts.size() << " bins x " << dt << " s from "
            << start << " s (window end "
            << start + dt * static_cast<double>(counts.size()) << " s)\n"
            << Indent(depth + 1) << "fits = " << fits
            << " (last " << last_iters << " ADMM iterations), warm start = "
            << (warm.empty() ? "cold" : "carried") << '\n';
  return reader->ExitSection();
}

// Per-tenant freshness tail (fleet layer version >= 2 with freshness on).
Status PrintFreshness(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagFreshness));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  RS_ASSIGN_OR_RETURN(const double base, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double shift, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double last_attempt, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const bool drift_counted, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const std::uint64_t drift_events, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t retrains, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t failures, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t swaps, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const double last_swap, reader->ReadDouble());
  std::cout << Indent(depth) << "FRSH freshness state (version " << version
            << "): model origin = " << base << " s, trace shift = " << shift
            << " s\n"
            << Indent(depth + 1) << "drift events = " << drift_events
            << (drift_counted ? " (latched)" : "")
            << ", retrains = " << retrains << ", failures = " << failures
            << ", swaps = " << swaps << " (last at " << last_swap
            << " s, last attempt " << last_attempt << " s)\n";
  RS_RETURN_NOT_OK(PrintDetector(reader, depth + 1));
  RS_RETURN_NOT_OK(PrintTrainSession(reader, depth + 1));
  return reader->ExitSection();
}

// Per-tenant degradation health (fleet layer version >= 3): breaker state,
// failure counters, backoff clocks.
Status PrintHealth(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagHealth));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  RS_ASSIGN_OR_RETURN(const std::uint8_t state, reader->ReadU8());
  RS_ASSIGN_OR_RETURN(const std::uint64_t consecutive, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t plan_failures, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t fallbacks, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t rejected, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t opens, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t probes, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t overruns, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t retrain_fails, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t open_count, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t freshness_errors, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const double retry_at, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double retrain_retry_at, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t jitter_rng, reader->ReadU64());
  static const char* const kNames[] = {"healthy", "degraded", "quarantined"};
  const char* health_name = state < 3 ? kNames[state] : "unknown";
  std::cout << Indent(depth) << "HLTH health (version " << version
            << "): " << health_name << '\n'
            << Indent(depth + 1) << "plan failures = " << plan_failures
            << " (" << consecutive << " consecutive), fallbacks served = "
            << fallbacks << ", rejected observations = " << rejected << '\n'
            << Indent(depth + 1) << "breaker: opens = " << opens
            << " (streak " << open_count << "), probes = " << probes
            << ", retry at " << retry_at << " s\n"
            << Indent(depth + 1) << "deadline overruns = " << overruns
            << ", retrain failure streak = " << retrain_fails
            << " (retry at " << retrain_retry_at << " s), freshness errors = "
            << freshness_errors << ", jitter rng = 0x" << std::hex
            << jitter_rng << std::dec << '\n';
  return reader->ExitSection();
}

Status PrintTenant(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagTenant));
  RS_ASSIGN_OR_RETURN(const std::string name, reader->ReadString());
  std::cout << Indent(depth) << "TENT tenant \"" << name << "\":\n";
  RS_RETURN_NOT_OK(PrintScaler(reader, depth + 1));
  // Optional trailing sections, in fixed order: FRSH (freshness loop state,
  // layer v2+), then HLTH (degradation health, layer v3+).
  if (reader->remaining() > 0) {
    RS_ASSIGN_OR_RETURN(const std::uint32_t tag, reader->PeekSectionTag());
    if (tag == rs::persist::kTagFreshness) {
      RS_RETURN_NOT_OK(PrintFreshness(reader, depth + 1));
    }
  }
  if (reader->remaining() > 0) {
    RS_ASSIGN_OR_RETURN(const std::uint32_t tag, reader->PeekSectionTag());
    if (tag == rs::persist::kTagHealth) {
      RS_RETURN_NOT_OK(PrintHealth(reader, depth + 1));
    }
  }
  return reader->ExitSection();
}

// Fleet-wide freshness policy summary (layer version >= 2).
Status PrintPolicy(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagFreshnessPolicy));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  RS_ASSIGN_OR_RETURN(const double dt, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double beta1, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double beta2, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double horizon, reader->ReadDouble());
  // ADMM + periodicity knobs (rho, max_iterations, tolerances, r_clamp,
  // aggregate_factor): skip to the detector/loop subset.
  RS_RETURN_NOT_OK(reader->ReadDouble().status());
  RS_RETURN_NOT_OK(reader->ReadU64().status());
  for (int i = 0; i < 3; ++i) RS_RETURN_NOT_OK(reader->ReadDouble().status());
  RS_RETURN_NOT_OK(reader->ReadU64().status());
  RS_ASSIGN_OR_RETURN(const std::uint64_t warmup, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const double min_rate, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double delta, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double threshold, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double min_corr, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double profile_threshold, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const bool check_period, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const double min_interval, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t workers, reader->ReadU64());
  std::cout << Indent(depth) << "FPOL freshness policy (version " << version
            << "): retrain dt = " << dt << " s, horizon = " << horizon
            << " s, beta = (" << beta1 << ", " << beta2 << ")\n"
            << Indent(depth + 1) << "detector: warmup = " << warmup
            << " bins, min_rate = " << min_rate << ", delta = " << delta
            << ", threshold = " << threshold << ", profile = ("
            << min_corr << ", " << profile_threshold << ", "
            << (check_period ? "on" : "off") << ")\n"
            << Indent(depth + 1) << "min retrain interval = " << min_interval
            << " s, retrain workers = " << workers << '\n';
  return reader->ExitSection();
}

Status PrintFleet(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagFleet));
  RS_ASSIGN_OR_RETURN(const std::uint32_t layer_version, reader->ReadU32());
  bool has_policy = false;
  if (layer_version >= 2) {
    RS_ASSIGN_OR_RETURN(has_policy, reader->ReadBool());
  }
  std::cout << Indent(depth) << "FLET fleet record (layer version "
            << layer_version << "), freshness "
            << (has_policy ? "on" : "off") << ":\n";
  if (has_policy) RS_RETURN_NOT_OK(PrintPolicy(reader, depth + 1));
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, reader->ReadU64());
  std::cout << Indent(depth + 1) << count << " tenant(s):\n";
  for (std::uint64_t i = 0; i < count; ++i) {
    RS_RETURN_NOT_OK(PrintTenant(reader, depth + 1));
  }
  return reader->ExitSection();
}

// rs::trace serving capture: metadata, event histogram, and the first few
// events in decoded form (the full event grammar lives in
// docs/TRACE_FORMAT.md; rs_trace info/replay operate on the decoded form).
Status PrintTraceCapture(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagTraceCapture));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  std::cout << Indent(depth) << "TRCE serving capture (trace layer version "
            << version << "):\n";

  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagTraceMeta));
  RS_ASSIGN_OR_RETURN(const std::string producer, reader->ReadString());
  RS_ASSIGN_OR_RETURN(const std::string label, reader->ReadString());
  std::cout << Indent(depth + 1) << "TMET producer \"" << producer
            << "\", label \"" << label << "\"\n";
  RS_RETURN_NOT_OK(reader->ExitSection());

  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagTraceEvents));
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, reader->ReadU64());
  std::cout << Indent(depth + 1) << "TEVT " << count << " event(s):\n";
  constexpr std::uint64_t kShown = 8;
  std::uint64_t histogram[7] = {0, 0, 0, 0, 0, 0, 0};
  static const char* const kKindNames[7] = {
      "?", "register", "retire", "replace-model", "observe", "plan",
      "plan-all"};
  const auto read_clock = [reader](bool* has, double* time,
                                   std::uint64_t* readings) -> Status {
    RS_ASSIGN_OR_RETURN(*has, reader->ReadBool());
    RS_ASSIGN_OR_RETURN(*time, reader->ReadDouble());
    RS_ASSIGN_OR_RETURN(*readings, reader->ReadU64());
    return Status::OK();
  };
  const auto read_action = [reader](std::uint64_t* creations,
                                    std::uint64_t* deletions) -> Status {
    std::vector<double> times;
    RS_RETURN_NOT_OK(reader->ReadDoubleVector(&times));
    *creations = times.size();
    RS_ASSIGN_OR_RETURN(*deletions, reader->ReadU64());
    return Status::OK();
  };
  for (std::uint64_t i = 0; i < count; ++i) {
    RS_ASSIGN_OR_RETURN(const std::uint8_t kind, reader->ReadU8());
    if (kind < 1 || kind > 6) {
      return Status::Invalid("unknown trace event kind " +
                             std::to_string(kind));
    }
    histogram[kind]++;
    const bool show = i < kShown;
    if (show) {
      std::cout << Indent(depth + 2) << '#' << i << ' ' << kKindNames[kind];
    }
    switch (kind) {
      case 1: {  // register
        RS_ASSIGN_OR_RETURN(const std::uint32_t id, reader->ReadU32());
        RS_ASSIGN_OR_RETURN(const std::string name, reader->ReadString());
        RS_ASSIGN_OR_RETURN(const std::string state, reader->ReadString());
        if (show) {
          std::cout << " \"" << name << "\" -> id " << id << " ("
                    << state.size() << "-byte scaler snapshot)";
        }
        break;
      }
      case 2: {  // retire
        RS_ASSIGN_OR_RETURN(const std::uint32_t id, reader->ReadU32());
        if (show) std::cout << " id " << id;
        break;
      }
      case 3: {  // replace-model
        RS_ASSIGN_OR_RETURN(const std::uint32_t id, reader->ReadU32());
        RS_ASSIGN_OR_RETURN(const bool at_next_plan, reader->ReadBool());
        RS_ASSIGN_OR_RETURN(const std::string state, reader->ReadString());
        if (show) {
          std::cout << " id " << id
                    << (at_next_plan ? " at next plan" : " immediate") << " ("
                    << state.size() << "-byte scaler snapshot)";
        }
        break;
      }
      case 4: {  // observe
        RS_ASSIGN_OR_RETURN(const std::uint32_t id, reader->ReadU32());
        RS_ASSIGN_OR_RETURN(const double time, reader->ReadDouble());
        RS_ASSIGN_OR_RETURN(const std::uint8_t outcome, reader->ReadU8());
        if (show) {
          std::cout << " id " << id << " t=" << time
                    << ((outcome & 1u) ? " cold-start" : "")
                    << ((outcome & 2u) ? " cancel-earliest" : "");
        }
        break;
      }
      case 5: {  // plan
        RS_ASSIGN_OR_RETURN(const std::uint32_t id, reader->ReadU32());
        RS_ASSIGN_OR_RETURN(const double time, reader->ReadDouble());
        bool has = false;
        double clock_time = 0.0;
        std::uint64_t readings = 0;
        RS_RETURN_NOT_OK(read_clock(&has, &clock_time, &readings));
        std::uint64_t creations = 0, deletions = 0;
        RS_RETURN_NOT_OK(read_action(&creations, &deletions));
        if (show) {
          std::cout << " id " << id << " t=" << time << " -> " << creations
                    << " creation(s), " << deletions << " deletion(s)";
          if (has) std::cout << " [clock " << clock_time << "/" << readings
                             << ']';
        }
        break;
      }
      case 6: {  // plan-all
        RS_ASSIGN_OR_RETURN(const double time, reader->ReadDouble());
        RS_ASSIGN_OR_RETURN(const std::uint64_t tenants, reader->ReadU64());
        std::uint64_t creations_total = 0, failures = 0;
        for (std::uint64_t j = 0; j < tenants; ++j) {
          RS_RETURN_NOT_OK(reader->ReadU32().status());
          RS_ASSIGN_OR_RETURN(const bool ok, reader->ReadBool());
          bool has = false;
          double clock_time = 0.0;
          std::uint64_t readings = 0;
          RS_RETURN_NOT_OK(read_clock(&has, &clock_time, &readings));
          if (ok) {
            std::uint64_t creations = 0, deletions = 0;
            RS_RETURN_NOT_OK(read_action(&creations, &deletions));
            creations_total += creations;
          } else {
            failures++;
          }
        }
        if (show) {
          std::cout << " t=" << time << " over " << tenants << " tenant(s): "
                    << creations_total << " creation(s)";
          if (failures > 0) std::cout << ", " << failures << " failed";
        }
        break;
      }
    }
    if (show) std::cout << '\n';
  }
  if (count > kShown) {
    std::cout << Indent(depth + 2) << "... " << count - kShown << " more\n";
  }
  std::cout << Indent(depth + 1) << "histogram:";
  for (int kind = 1; kind <= 6; ++kind) {
    if (histogram[kind] == 0) continue;
    std::cout << ' ' << kKindNames[kind] << '=' << histogram[kind];
  }
  std::cout << '\n';
  RS_RETURN_NOT_OK(reader->ExitSection());
  return reader->ExitSection();
}

// Journal checkpoint (rs::wal): the WCKP metadata — checkpoint LSN, the
// tenant-id intern table — then the embedded fleet snapshot.
Status PrintWalCheckpoint(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagWalCheckpoint));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  RS_ASSIGN_OR_RETURN(const std::uint64_t lsn, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t next_id, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, reader->ReadU64());
  std::cout << Indent(depth) << "WCKP journal checkpoint v" << version
            << " @ LSN " << lsn << ", " << count
            << " interned tenant(s), next id " << next_id << '\n';
  for (std::uint64_t i = 0; i < count; ++i) {
    RS_ASSIGN_OR_RETURN(const std::uint32_t id, reader->ReadU32());
    RS_ASSIGN_OR_RETURN(const std::string name, reader->ReadString());
    RS_ASSIGN_OR_RETURN(const bool live, reader->ReadBool());
    std::cout << Indent(depth + 1) << "id " << id << " -> " << name
              << (live ? "" : " (retired)") << '\n';
  }
  RS_ASSIGN_OR_RETURN(const std::string user_meta, reader->ReadString());
  if (!user_meta.empty()) {
    std::cout << Indent(depth + 1) << "meta: " << user_meta << '\n';
  }
  RS_RETURN_NOT_OK(PrintFleet(reader, depth + 1));
  return reader->ExitSection();
}

Status Inspect(Reader* reader) {
  std::cout << "format version " << reader->version() << ", payload "
            << reader->remaining() << " bytes\n";
  while (reader->remaining() > 0) {
    RS_ASSIGN_OR_RETURN(const std::uint32_t tag, reader->PeekSectionTag());
    if (tag == rs::persist::kTagFleet) {
      RS_RETURN_NOT_OK(PrintFleet(reader, 0));
    } else if (tag == rs::persist::kTagTenant) {
      RS_RETURN_NOT_OK(PrintTenant(reader, 0));
    } else if (tag == rs::persist::kTagScaler) {
      RS_RETURN_NOT_OK(PrintScaler(reader, 0));
    } else if (tag == rs::persist::kTagTraceCapture) {
      RS_RETURN_NOT_OK(PrintTraceCapture(reader, 0));
    } else if (tag == rs::persist::kTagWalCheckpoint) {
      RS_RETURN_NOT_OK(PrintWalCheckpoint(reader, 0));
    } else {
      std::cout << "(skipping unknown section "
                << rs::persist::TagToString(tag) << ")\n";
      RS_RETURN_NOT_OK(reader->SkipSection());
    }
  }
  return Status::OK();
}

}  // namespace

// Swallows the tree print in --verify mode: the full Inspect walk still
// runs (exercising every section bound on top of the codec's CRC check),
// but nothing reaches the terminal except the verdict line.
class NullBuf : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
};

int main(int argc, char** argv) {
  bool verify = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (!path) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (!path) {
    std::cerr << "usage: rs_snapshot [--verify] <snapshot-file>\n";
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "rs_snapshot: cannot open " << path << '\n';
    return 1;
  }
  // Journal segments (rs::wal, magic "RSWJ") are not persist containers;
  // route them to the segment walker: header magic/version, per-record CRC
  // + length framing, LSN contiguity. A torn tail is reported (legal — a
  // crash mid-append leaves one; recovery truncates it); corruption before
  // the tail fails.
  char magic[4] = {};
  in.read(magic, 4);
  if (in.gcount() == 4 && std::string(magic, 4) == "RSWJ") {
    auto report = rs::wal::InspectSegmentFile(path);
    if (!report.ok()) {
      std::cerr << "rs_snapshot: " << report.status().message() << '\n';
      return 1;
    }
    std::cout << path << ": journal segment, " << report->records
              << " record(s)";
    if (report->records > 0) {
      std::cout << ", LSN " << report->first_lsn << ".." << report->last_lsn;
    } else {
      std::cout << " (first LSN " << report->first_lsn << ")";
    }
    std::cout << ", " << report->bytes << " bytes";
    if (report->torn_tail_bytes > 0) {
      std::cout << ", torn tail " << report->torn_tail_bytes
                << " byte(s) (recovery truncates it)";
    }
    std::cout << (verify ? " — OK (CRC and framing verified)" : "") << '\n';
    return 0;
  }
  in.clear();
  in.seekg(0);
  auto reader = Reader::FromStream(in);
  if (!reader.ok()) {
    std::cerr << "rs_snapshot: " << reader.status().message() << '\n';
    return 1;
  }
  const std::size_t payload = reader.ValueOrDie().remaining();
  NullBuf null_buf;
  std::streambuf* saved = verify ? std::cout.rdbuf(&null_buf) : nullptr;
  const Status st = Inspect(&reader.ValueOrDie());
  if (saved) std::cout.rdbuf(saved);
  if (!st.ok()) {
    std::cerr << "rs_snapshot: " << st.message() << '\n';
    return 1;
  }
  if (verify) {
    std::cout << path << ": OK (" << payload << " payload bytes, CRC and "
              << "section bounds verified)\n";
  }
  return 0;
}
