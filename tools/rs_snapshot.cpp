/// \file rs_snapshot.cpp
/// \brief Snapshot inspector: prints the section tree and headline state of
///        an rs::persist snapshot (Scaler, tenant, or fleet container).
///
/// Usage:  rs_snapshot <snapshot-file>
///
/// The inspector understands the current section layouts but degrades
/// gracefully: unknown top-level tags are skipped wholesale, and known
/// sections whose tail carries fields this build predates are closed with
/// ExitSection (the codec skips the unread bytes). It never mutates the
/// snapshot and never crashes on corrupt input — the codec's CRC and bounds
/// checks turn every malformation into a printed error.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rs/persist/persist.hpp"

namespace {

using rs::Status;
using rs::persist::Reader;

const char* DurationKindName(std::uint8_t kind) {
  switch (kind) {
    case 0:
      return "deterministic";
    case 1:
      return "exponential";
    case 2:
      return "lognormal";
    case 3:
      return "weibull";
    case 4:
      return "uniform";
    default:
      return "?";
  }
}

std::string Indent(int depth) { return std::string(2 * depth, ' '); }

// Prints "pending: lognormal(mu, sigma)" style summaries.
Status PrintDuration(Reader* reader, int depth, const char* label) {
  RS_ASSIGN_OR_RETURN(const std::uint8_t kind, reader->ReadU8());
  RS_ASSIGN_OR_RETURN(const double p1, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double p2, reader->ReadDouble());
  std::cout << Indent(depth) << label << ": " << DurationKindName(kind) << '('
            << p1 << ", " << p2 << ")\n";
  return Status::OK();
}

Status PrintSpec(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagSpec));
  RS_ASSIGN_OR_RETURN(const std::string name, reader->ReadString());
  RS_ASSIGN_OR_RETURN(const std::uint64_t params, reader->ReadU64());
  std::cout << Indent(depth) << "SPEC strategy: " << name << '\n';
  for (std::uint64_t i = 0; i < params; ++i) {
    RS_ASSIGN_OR_RETURN(const std::string key, reader->ReadString());
    RS_ASSIGN_OR_RETURN(const double value, reader->ReadDouble());
    std::cout << Indent(depth + 1) << key << " = " << value << '\n';
  }
  return reader->ExitSection();
}

Status PrintBuildContext(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagBuildContext));
  std::cout << Indent(depth) << "CTXT build defaults:\n";
  RS_RETURN_NOT_OK(PrintDuration(reader, depth + 1, "pending"));
  RS_ASSIGN_OR_RETURN(const std::uint64_t mc, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const double interval, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t seed, reader->ReadU64());
  std::cout << Indent(depth + 1) << "mc_samples = " << mc
            << ", planning_interval = " << interval << " s, seed = " << seed
            << '\n';
  return reader->ExitSection();
}

Status PrintTrained(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagTrained));
  RS_ASSIGN_OR_RETURN(const double dt, reader->ReadDouble());
  std::vector<double> rates;
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&rates));
  RS_ASSIGN_OR_RETURN(const std::uint64_t period, reader->ReadU64());
  std::cout << Indent(depth) << "TRND forecast: " << rates.size()
            << " bins x " << dt << " s (horizon "
            << dt * static_cast<double>(rates.size())
            << " s), detected period = " << period << " bins\n";
  return reader->ExitSection();
}

Status PrintStrategyModel(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagStrategyModel));
  RS_ASSIGN_OR_RETURN(const std::uint32_t tag, reader->PeekSectionTag());
  std::cout << Indent(depth) << "STRA model record: "
            << rs::persist::TagToString(tag) << " ("
            << reader->remaining() << " bytes)\n";
  return reader->ExitSection();
}

Status PrintMirror(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagMirror));
  std::cout << Indent(depth) << "MIRR serving mirror ("
            << reader->remaining() << " bytes):\n";
  RS_RETURN_NOT_OK(PrintDuration(reader, depth + 1, "pending"));
  RS_ASSIGN_OR_RETURN(const std::uint64_t seed, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const bool charge_wall, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const double creation_latency, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double pending_jitter, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const bool charge_idle, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const bool had_clock, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const double retention, reader->ReadDouble());
  std::cout << Indent(depth + 1) << "seed = " << seed
            << ", creation_latency = " << creation_latency
            << " s, pending_jitter = " << pending_jitter << '\n'
            << Indent(depth + 1) << "charge_decision_wall_time = "
            << (charge_wall ? "yes" : "no")
            << ", charge_idle_until_horizon = " << (charge_idle ? "yes" : "no")
            << ", injected clock = " << (had_clock ? "yes" : "no")
            << ", retention override = " << retention << " s\n";
  RS_ASSIGN_OR_RETURN(const bool started, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const double now, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double next_tick, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t arrivals, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t cold_starts, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t creations, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t deletions, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t next_seq, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t watermark, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t callbacks, reader->ReadU64());
  std::cout << Indent(depth + 1)
            << (started ? "started" : "not yet started") << ", now = " << now
            << " s, next planning tick = " << next_tick << " s\n"
            << Indent(depth + 1) << "arrivals = " << arrivals
            << ", cold starts = " << cold_starts
            << ", creations = " << creations << ", deletions = " << deletions
            << '\n'
            << Indent(depth + 1) << "planning callbacks = " << callbacks
            << ", emissions = " << next_seq
            << " (drained through " << watermark << ")\n";
  // RNG words, schedule, live set, windows: sizes only matter here; let
  // ExitSection skip the payload.
  return reader->ExitSection();
}

Status PrintScaler(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagScaler));
  RS_ASSIGN_OR_RETURN(const std::uint32_t layer_version, reader->ReadU32());
  std::cout << Indent(depth) << "SCLR scaler record (layer version "
            << layer_version << "):\n";
  RS_RETURN_NOT_OK(PrintSpec(reader, depth + 1));
  RS_RETURN_NOT_OK(PrintBuildContext(reader, depth + 1));
  RS_RETURN_NOT_OK(PrintTrained(reader, depth + 1));
  RS_RETURN_NOT_OK(PrintStrategyModel(reader, depth + 1));
  RS_RETURN_NOT_OK(PrintMirror(reader, depth + 1));
  return reader->ExitSection();
}

Status PrintTenant(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagTenant));
  RS_ASSIGN_OR_RETURN(const std::string name, reader->ReadString());
  std::cout << Indent(depth) << "TENT tenant \"" << name << "\":\n";
  RS_RETURN_NOT_OK(PrintScaler(reader, depth + 1));
  return reader->ExitSection();
}

Status PrintFleet(Reader* reader, int depth) {
  RS_RETURN_NOT_OK(reader->EnterSection(rs::persist::kTagFleet));
  RS_ASSIGN_OR_RETURN(const std::uint32_t layer_version, reader->ReadU32());
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, reader->ReadU64());
  std::cout << Indent(depth) << "FLET fleet record (layer version "
            << layer_version << "), " << count << " tenant(s):\n";
  for (std::uint64_t i = 0; i < count; ++i) {
    RS_RETURN_NOT_OK(PrintTenant(reader, depth + 1));
  }
  return reader->ExitSection();
}

Status Inspect(Reader* reader) {
  std::cout << "format version " << reader->version() << ", payload "
            << reader->remaining() << " bytes\n";
  while (reader->remaining() > 0) {
    RS_ASSIGN_OR_RETURN(const std::uint32_t tag, reader->PeekSectionTag());
    if (tag == rs::persist::kTagFleet) {
      RS_RETURN_NOT_OK(PrintFleet(reader, 0));
    } else if (tag == rs::persist::kTagTenant) {
      RS_RETURN_NOT_OK(PrintTenant(reader, 0));
    } else if (tag == rs::persist::kTagScaler) {
      RS_RETURN_NOT_OK(PrintScaler(reader, 0));
    } else {
      std::cout << "(skipping unknown section "
                << rs::persist::TagToString(tag) << ")\n";
      RS_RETURN_NOT_OK(reader->SkipSection());
    }
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: rs_snapshot <snapshot-file>\n";
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::cerr << "rs_snapshot: cannot open " << argv[1] << '\n';
    return 1;
  }
  auto reader = Reader::FromStream(in);
  if (!reader.ok()) {
    std::cerr << "rs_snapshot: " << reader.status().message() << '\n';
    return 1;
  }
  const Status st = Inspect(&reader.ValueOrDie());
  if (!st.ok()) {
    std::cerr << "rs_snapshot: " << st.message() << '\n';
    return 1;
  }
  return 0;
}
