/// \file rs_trace.cpp
/// \brief Trace-capture workbench: record a deterministic demo session,
///        inspect / replay / shrink capture files, and render them into
///        generated regression tests.
///
/// Usage:
///   rs_trace demo <out.rstrace>            deterministic demo session capture
///   rs_trace tiny <out.rstrace>            minimal capture for the format spec
///   rs_trace info <file.rstrace>           metadata + event histogram
///   rs_trace replay <file.rstrace> [N...]  replay under worker counts N...
///                                          (default: 0 1 8); exit 1 on any
///                                          divergence
///   rs_trace shrink <in.rstrace> <out.rstrace>
///                                          reduce a failing capture to its
///                                          minimal failing prefix
///   rs_trace gen-test <file.rstrace> <TestName>
///                                          print a self-contained regression
///                                          test (tests/generated/) to stdout
///   rs_trace chaos-test <TestName>         record the demo session under a
///                                          fixed fault plan, verify the
///                                          capture diverges replayed
///                                          faults-off, Shrink() it to the
///                                          minimal failing prefix, and print
///                                          a regression test that re-installs
///                                          the plan around every replay
///
/// `demo`, `tiny`, and `chaos-test` are seeded end to end, so they write
/// byte-identical output on every run — the committed artifacts under
/// tests/data/ and tests/generated/ and the worked hexdump in
/// docs/TRACE_FORMAT.md come from them.

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/fault/fault.hpp"
#include "rs/stats/rng.hpp"
#include "rs/trace/trace.hpp"

namespace {

using rs::Status;
using rs::trace::Capture;
using rs::trace::Event;
using rs::trace::EventKind;
using rs::trace::EventKindName;

int Fail(const Status& st) {
  std::cerr << "rs_trace: " << st.message() << '\n';
  return 1;
}

int Usage() {
  std::cerr << "usage: rs_trace demo|tiny <out.rstrace>\n"
            << "       rs_trace info <file.rstrace>\n"
            << "       rs_trace replay <file.rstrace> [workers...]\n"
            << "       rs_trace shrink <in.rstrace> <out.rstrace>\n"
            << "       rs_trace gen-test <file.rstrace> <TestName>\n"
            << "       rs_trace chaos-test <TestName>\n";
  return 2;
}

rs::Result<Capture> LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return Capture::Load(in);
}

Status SaveFile(const Capture& capture, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  RS_RETURN_NOT_OK(capture.Save(out));
  out.flush();
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// demo: a seeded two-tenant serving session, small enough to commit.
// ---------------------------------------------------------------------------

rs::Result<rs::api::Scaler> BuildDemoScaler(const rs::workload::Trace& train,
                                            double forecast_horizon,
                                            const char* spec_string) {
  RS_ASSIGN_OR_RETURN(const auto spec, rs::api::ParseStrategySpec(spec_string));
  return rs::api::ScalerBuilder()
      .WithTrace(train)
      .WithBinWidth(30.0)
      .WithForecastHorizon(forecast_horizon)
      .WithStrategy(spec)
      .WithPlanningInterval(2.0)
      .WithMcSamples(40)
      .Build();
}

rs::Result<Capture> RecordDemoSession(
    const std::string& label = "rs_trace demo session (seed 2026)") {
  const double period_s = 600.0, dt = 30.0;
  const double horizon = 6.0 * period_s;
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(0.3 + 0.2 * std::sin(2.0 * M_PI * phase));
  }
  RS_ASSIGN_OR_RETURN(const auto intensity,
                      rs::workload::PiecewiseConstantIntensity::Make(rates,
                                                                     dt));
  rs::stats::Rng rng(2026);
  RS_ASSIGN_OR_RETURN(
      const auto trace,
      rs::workload::MakeTraceFromIntensity(
          &rng, intensity,
          rs::stats::DurationDistribution::Exponential(15.0)));
  auto [train, serve] = trace.SplitAt(horizon - 2.0 * period_s);

  rs::api::ScalerFleet fleet(0);
  rs::trace::Recorder recorder(label);
  RS_RETURN_NOT_OK(recorder.Attach(&fleet));
  RS_ASSIGN_OR_RETURN(
      auto hp, BuildDemoScaler(train, serve.horizon(), "robust_hp:target=0.9"));
  RS_RETURN_NOT_OK(fleet.Register("checkout", std::move(hp)));
  RS_ASSIGN_OR_RETURN(auto pool, BuildDemoScaler(train, serve.horizon(),
                                                 "backup_pool:pool_size=2"));
  RS_RETURN_NOT_OK(fleet.Register("thumbnails", std::move(pool)));

  double next_batch = 30.0;
  for (const auto& q : serve.queries()) {
    if (q.arrival_time > 150.0) break;
    while (q.arrival_time >= next_batch) {
      for (const auto& plan : fleet.PlanAll(next_batch)) {
        RS_RETURN_NOT_OK(plan.status);
      }
      next_batch += 30.0;
    }
    RS_RETURN_NOT_OK(fleet.Observe("checkout", q.arrival_time).status());
    RS_RETURN_NOT_OK(fleet.Observe("thumbnails", q.arrival_time).status());
  }
  RS_RETURN_NOT_OK(fleet.Plan("checkout", next_batch).status());
  for (const auto& plan : fleet.PlanAll(next_batch + 15.0)) {
    RS_RETURN_NOT_OK(plan.status);
  }
  recorder.Detach();
  return recorder.TakeCapture();
}

/// The spec's worked example: the smallest well-formed capture that still
/// exercises every container layer (header, nested sections, one event,
/// CRC). Not replayable — there is no register event — but structurally
/// valid, which is all the on-disk spec governs.
Capture TinyCapture() {
  Capture capture;
  capture.producer = "robustscaler rs::trace";
  capture.label = "spec example";
  Event observe;
  observe.kind = EventKind::kObserve;
  observe.id = 1;
  observe.time = 2.5;
  observe.cold_start = true;
  observe.cancel_earliest = false;
  capture.events.push_back(observe);
  return capture;
}

// ---------------------------------------------------------------------------
// info
// ---------------------------------------------------------------------------

int Info(const std::string& path) {
  auto capture = LoadFile(path);
  if (!capture.ok()) return Fail(capture.status());
  const Capture& c = capture.ValueOrDie();
  std::cout << path << ":\n"
            << "  producer: " << c.producer << '\n'
            << "  label:    " << c.label << '\n'
            << "  events:   " << c.events.size() << '\n';
  std::size_t counts[7] = {0, 0, 0, 0, 0, 0, 0};
  std::size_t snapshot_bytes = 0;
  double last_time = 0.0;
  std::vector<std::string> tenants;
  for (const Event& event : c.events) {
    counts[static_cast<std::size_t>(event.kind)]++;
    snapshot_bytes += event.state.size();
    if (event.kind == EventKind::kRegister) tenants.push_back(event.name);
    if (event.time > last_time) last_time = event.time;
  }
  for (std::size_t kind = 1; kind <= 6; ++kind) {
    if (counts[kind] == 0) continue;
    std::cout << "    " << EventKindName(static_cast<EventKind>(kind)) << ": "
              << counts[kind] << '\n';
  }
  std::cout << "  embedded snapshots: " << snapshot_bytes << " bytes\n"
            << "  last event time:    " << last_time << " s\n"
            << "  tenants:";
  for (const std::string& tenant : tenants) std::cout << ' ' << tenant;
  std::cout << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// replay / shrink / gen-test
// ---------------------------------------------------------------------------

int ReplayFile(const std::string& path,
               const std::vector<std::size_t>& worker_counts) {
  auto capture = LoadFile(path);
  if (!capture.ok()) return Fail(capture.status());
  bool all_parity = true;
  for (const std::size_t workers : worker_counts) {
    rs::trace::ReplayOptions options;
    options.worker_threads = workers;
    auto report = rs::trace::Replay(capture.ValueOrDie(), options);
    if (!report.ok()) return Fail(report.status());
    if (report->diverged) {
      all_parity = false;
      std::cout << "workers=" << workers << ": DIVERGED at "
                << report->divergence_event << "/" << report->events_total
                << " — " << report->detail << '\n';
    } else {
      std::cout << "workers=" << workers << ": PARITY ("
                << report->events_applied << " events)\n";
    }
  }
  return all_parity ? 0 : 1;
}

int ShrinkFile(const std::string& in_path, const std::string& out_path) {
  auto capture = LoadFile(in_path);
  if (!capture.ok()) return Fail(capture.status());
  auto shrunk = rs::trace::Shrink(capture.ValueOrDie());
  if (!shrunk.ok()) return Fail(shrunk.status());
  const Status saved = SaveFile(shrunk->capture, out_path);
  if (!saved.ok()) return Fail(saved);
  std::cout << "shrunk " << capture->events.size() << " events to "
            << shrunk->minimal_events << " (divergence: "
            << shrunk->report.detail << ")\n"
            << "wrote " << out_path << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// chaos-test: capture-with-faults → faults-off divergence → Shrink →
// regression test with the fault plan re-installed around every replay.
// ---------------------------------------------------------------------------

/// The fixed fault plan the chaos demo session is recorded under: one
/// status-error boundary and one thrown boundary, so the generated test
/// exercises both fallback paths. Must match between recording and the
/// emitted prelude — the whole point is that the same plan makes the same
/// session happen again.
rs::fault::FaultPlan ChaosDemoPlan() {
  rs::fault::FaultPlan plan;
  rs::fault::FaultRule checkout;
  checkout.site = "fleet.plan";
  checkout.scope = "checkout";
  checkout.hit = 3;
  checkout.fault.code = rs::StatusCode::kIoError;
  plan.rules.push_back(std::move(checkout));
  rs::fault::FaultRule thumbnails;
  thumbnails.site = "fleet.plan";
  thumbnails.scope = "thumbnails";
  thumbnails.hit = 4;
  thumbnails.fault.kind = rs::fault::FaultKind::kThrow;
  plan.rules.push_back(std::move(thumbnails));
  return plan;
}

int ChaosTest(const std::string& test_name) {
  auto capture = [] {
    rs::fault::ScopedFaultInjection inject(ChaosDemoPlan());
    return RecordDemoSession("rs_trace chaos demo session (seed 2026)");
  }();
  if (!capture.ok()) return Fail(capture.status());

  // The recorded stream contains fallback boundaries, so a faults-off
  // replay MUST diverge at the first injected fault — that divergence is
  // what Shrink() minimizes and what the generated test guards against.
  auto shrunk = rs::trace::Shrink(capture.ValueOrDie());
  if (!shrunk.ok()) return Fail(shrunk.status());
  std::cerr << "chaos capture: " << capture->events.size()
            << " events; faults-off replay diverges ("
            << shrunk->report.detail << "); shrunk to "
            << shrunk->minimal_events << " events\n";

  rs::trace::EmitOptions options;
  options.fault_plan = ChaosDemoPlan();
  const Status st = rs::trace::EmitRegressionTest(shrunk->capture, test_name,
                                                  std::cout, options);
  if (!st.ok()) return Fail(st);
  return 0;
}

int GenTest(const std::string& path, const std::string& test_name) {
  auto capture = LoadFile(path);
  if (!capture.ok()) return Fail(capture.status());
  const Status st =
      rs::trace::EmitRegressionTest(capture.ValueOrDie(), test_name,
                                    std::cout);
  if (!st.ok()) return Fail(st);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command == "demo" && argc == 3) {
    auto capture = RecordDemoSession();
    if (!capture.ok()) return Fail(capture.status());
    const Status saved = SaveFile(capture.ValueOrDie(), argv[2]);
    if (!saved.ok()) return Fail(saved);
    std::cout << "wrote " << argv[2] << " (" << capture->events.size()
              << " events)\n";
    return 0;
  }
  if (command == "tiny" && argc == 3) {
    const Status saved = SaveFile(TinyCapture(), argv[2]);
    if (!saved.ok()) return Fail(saved);
    std::cout << "wrote " << argv[2] << '\n';
    return 0;
  }
  if (command == "info" && argc == 3) return Info(argv[2]);
  if (command == "replay") {
    std::vector<std::size_t> workers;
    for (int i = 3; i < argc; ++i) {
      workers.push_back(static_cast<std::size_t>(std::stoul(argv[i])));
    }
    if (workers.empty()) workers = {0, 1, 8};
    return ReplayFile(argv[2], workers);
  }
  if (command == "shrink" && argc == 4) return ShrinkFile(argv[2], argv[3]);
  if (command == "gen-test" && argc == 4) return GenTest(argv[2], argv[3]);
  if (command == "chaos-test" && argc == 3) return ChaosTest(argv[2]);
  return Usage();
}
