/// \file rs_crashtest.cpp
/// \brief Randomized kill-point harness for rs::wal: proves the zero-loss,
///        byte-identical-continuation guarantee by actually dying.
///
/// Matrix mode (the default) runs N seeded kill points. For each one it
/// forks a victim child that serves a fixed deterministic schedule through
/// a journaled fleet and `_Exit(3)`s — no destructors, no flushes, the
/// in-process equivalent of kill -9 — at the K-th crash-point window
/// (wal.append.head/.torn/.done, wal.fsync.before/.after, wal.rotate.*,
/// wal.checkpoint.* including the rename window, plus a "serve.op"
/// boundary point before every operation). The parent then, for every
/// worker count in --workers:
///
///   * reopens the journal directory (scan + torn-tail repair),
///   * recovers (checkpoint snapshot + journal-tail replay), and
///   * serves the remainder of the schedule, asserting every planned
///     action is byte-identical (IEEE-754 bit patterns) to an
///     uninterrupted control run of the same schedule.
///
/// The resume point is derived purely from the durable journal: every
/// operation in the schedule appends exactly one record (observe -> one,
/// PlanAll batch -> one; the two registrations are synced before crash
/// points arm), so `resume_op = last_lsn - 2`. A record that did not
/// survive the crash means the recovered fleet never saw that operation,
/// and the continuation re-executes it — nothing is lost, nothing is
/// applied twice. A final attached continuation re-journals the remainder
/// and asserts the journal ends at exactly the LSN a crash-free run ends
/// at: zero lost, zero duplicated events.
///
/// Usage:
///   rs_crashtest [--dir=PATH] [--points=200] [--seed=20220414]
///                [--steps=12] [--workers=0,1,8] [--keep]
///   rs_crashtest gen-example <out-file>     # deterministic example segment
///
/// Exit code 0 = every kill point recovered byte-identically; any
/// divergence, lost record, or recovery failure aborts with a message.
/// CI runs a fresh seed every build and prints it for reproduction.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <bit>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/common/logging.hpp"
#include "rs/stats/rng.hpp"
#include "rs/wal/wal.hpp"

namespace {

using namespace rs;

// ---------------------------------------------------------------------------
// Fixture: the same small sinusoidal workload the wal tests train on. The
// two scalers are trained once and cached as SaveState buffers; the victim
// child (forked) inherits them, so no per-kill-point training.
// ---------------------------------------------------------------------------

constexpr double kPeriodS = 600.0;
constexpr double kDt = 30.0;

const char* kTenantNames[2] = {"ct-a", "ct-b"};
const char* kTenantSpecs[2] = {"backup_pool", "robust_hp:target=0.9"};

std::string TrainTenant(std::size_t i) {
  std::vector<double> rates;
  for (double t = 0.5 * kDt; t < 4.0 * kPeriodS; t += kDt) {
    const double phase = std::fmod(t, kPeriodS) / kPeriodS;
    rates.push_back(0.5 * (1.0 + 0.4 * std::sin(2.0 * M_PI * phase)));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, kDt);
  stats::Rng rng(61);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  auto spec = api::ParseStrategySpec(kTenantSpecs[i]);
  RS_CHECK(spec.ok()) << spec.status().ToString();
  auto scaler = api::ScalerBuilder()
                    .WithTrace(trace)
                    .WithBinWidth(kDt)
                    .WithForecastHorizon(kPeriodS)
                    .WithStrategy(*spec)
                    .WithPlanningInterval(2.0)
                    .WithMcSamples(40)
                    .Build();
  RS_CHECK(scaler.ok()) << scaler.status().ToString();
  std::ostringstream out;
  RS_CHECK(scaler->SaveState(out).ok());
  return std::move(out).str();
}

/// SaveState buffers, trained once in main() before any fork.
std::vector<std::string> g_buffers;

void RegisterTenants(api::ScalerFleet* fleet) {
  for (std::size_t i = 0; i < 2; ++i) {
    std::istringstream in(g_buffers[i]);
    auto scaler = api::ScalerBuilder::RestoreState(in);
    RS_CHECK(scaler.ok()) << scaler.status().ToString();
    RS_CHECK(fleet->Register(kTenantNames[i], std::move(scaler).ValueOrDie())
                 .ok());
  }
}

// ---------------------------------------------------------------------------
// The deterministic serving schedule. Operation j (0-based) of step
// s = j/3 + 1:  j%3==0 observe ct-a, j%3==1 observe ct-b, j%3==2 PlanAll.
// Each operation journals exactly ONE record (the tap emits one event per
// observe and one per PlanAll batch), which is what makes the resume point
// derivable from the durable LSN alone.
// ---------------------------------------------------------------------------

std::string Fingerprint(const sim::ScalingAction& action) {
  std::ostringstream out;
  out << action.deletions;
  for (const double t : action.creation_times) {
    out << ',' << std::bit_cast<std::uint64_t>(t);
  }
  return std::move(out).str();
}

/// Runs operation `j`; returns the PlanAll fingerprint ("" for observes).
std::string RunOp(api::ScalerFleet* fleet, std::size_t j) {
  const double now = 2.0 * static_cast<double>(j / 3 + 1);
  switch (j % 3) {
    case 0:
      RS_CHECK(fleet->Observe(kTenantNames[0], now - 1.0).ok());
      return "";
    case 1:
      RS_CHECK(fleet->Observe(kTenantNames[1], now - 0.99).ok());
      return "";
    default: {
      std::ostringstream out;
      for (const auto& plan : fleet->PlanAll(now)) {
        RS_CHECK(plan.status.ok())
            << plan.tenant << ": " << plan.status.ToString();
        out << plan.tenant << '=' << Fingerprint(plan.action) << ';';
      }
      return std::move(out).str();
    }
  }
}

wal::JournalPolicy VictimPolicy() {
  wal::JournalPolicy policy;
  policy.fsync = wal::FsyncPolicy::kEveryRecord;
  // Small segments so the schedule crosses several rotation windows.
  policy.segment_bytes = 1024;
  return policy;
}

// ---------------------------------------------------------------------------
// Crash-point hook: counts windows; at the armed limit, dies on the spot.
// ---------------------------------------------------------------------------

std::uint64_t g_crash_count = 0;
std::uint64_t g_crash_limit = 0;  ///< 0: count only (probe mode).

void CrashHook(void*, const char*) {
  ++g_crash_count;
  if (g_crash_limit != 0 && g_crash_count == g_crash_limit) {
    std::_Exit(3);  // No destructors, no flushes: kill -9 semantics.
  }
}

/// The victim session: journaled serving of the full schedule with crash
/// points armed after setup (the two registrations are synced first, so
/// every journal the parent recovers holds at least the intern records).
/// With limit == 0 this is the probe: it counts the total crash windows.
std::uint64_t VictimRun(const std::string& dir, std::size_t steps,
                        std::uint64_t limit) {
  wal::FleetJournal journal;
  const Status opened = journal.Open(dir, VictimPolicy());
  RS_CHECK(opened.ok()) << opened.ToString();
  api::ScalerFleet fleet(0);
  RegisterTenants(&fleet);
  RS_CHECK(wal::EnableJournal(&fleet, &journal).ok());
  RS_CHECK(journal.Sync().ok());

  g_crash_count = 0;
  g_crash_limit = limit;
  wal::SetCrashPointHook(&CrashHook, nullptr);
  for (std::size_t j = 0; j < 3 * steps; ++j) {
    wal::CrashPoint("serve.op");
    (void)RunOp(&fleet, j);
    if (j % 3 == 2 && j / 3 + 1 == steps / 2) {
      // Mid-schedule checkpoint: arms the wal.checkpoint.{begin,tmp,
      // renamed,done} windows, including a kill between rename and the
      // directory fsync.
      RS_CHECK(journal.Checkpoint("rs_crashtest mid-schedule").ok())
          << journal.status().ToString();
    }
  }
  wal::SetCrashPointHook(nullptr, nullptr);
  journal.Detach();
  return g_crash_count;
}

struct Options {
  std::string dir = "rs_crashtest.dir";
  std::size_t points = 200;
  std::uint64_t seed = 20220414;
  std::size_t steps = 12;
  std::vector<std::size_t> workers = {0, 1, 8};
  bool keep = false;
};

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int RunMatrix(const Options& options) {
  namespace fs = std::filesystem;
  const std::size_t total_ops = 3 * options.steps;
  std::error_code ignored;
  fs::create_directories(options.dir, ignored);

  // Probe: count the crash windows of one uninterrupted victim run.
  const std::string probe_dir = options.dir + "/probe";
  fs::remove_all(probe_dir, ignored);
  const std::uint64_t total_points =
      VictimRun(probe_dir, options.steps, /*limit=*/0);
  fs::remove_all(probe_dir, ignored);
  RS_CHECK(total_points > total_ops) << "schedule fired too few crash windows";

  // Control: the same schedule served uninterrupted, no journal. Every
  // recovered continuation must reproduce these bytes exactly.
  std::vector<std::string> control(total_ops);
  {
    api::ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    for (std::size_t j = 0; j < total_ops; ++j) control[j] = RunOp(&fleet, j);
  }

  // Sampled kill points: always the first and last window, the rest drawn
  // from the seeded stream (duplicates fine: recovery is deterministic).
  std::vector<std::uint64_t> kill_points;
  kill_points.push_back(1);
  kill_points.push_back(total_points);
  std::uint64_t stream = options.seed;
  while (kill_points.size() < options.points) {
    kill_points.push_back(1 + SplitMix64(&stream) % total_points);
  }

  std::printf(
      "rs_crashtest: %zu kill points over %llu crash windows (seed %llu, "
      "%zu steps = %zu ops, workers",
      kill_points.size(), static_cast<unsigned long long>(total_points),
      static_cast<unsigned long long>(options.seed), options.steps, total_ops);
  for (const std::size_t w : options.workers) std::printf(" %zu", w);
  std::printf(")\n");

  std::size_t crashed = 0;
  std::size_t survived = 0;
  std::size_t torn_repairs = 0;
  std::size_t dropped_segments = 0;
  std::size_t with_checkpoint = 0;
  for (std::size_t n = 0; n < kill_points.size(); ++n) {
    const std::uint64_t k = kill_points[n];
    const std::string dir = options.dir + "/k";
    fs::remove_all(dir, ignored);

    const pid_t pid = fork();
    RS_CHECK(pid >= 0) << "fork failed";
    if (pid == 0) {
      VictimRun(dir, options.steps, k);
      std::_Exit(0);  // k was past the last window: the victim survived.
    }
    int wstatus = 0;
    RS_CHECK(waitpid(pid, &wstatus, 0) == pid);
    RS_CHECK(WIFEXITED(wstatus) &&
             (WEXITSTATUS(wstatus) == 3 || WEXITSTATUS(wstatus) == 0))
        << "victim died abnormally (status " << wstatus << ") at kill point "
        << k;
    const bool did_crash = WEXITSTATUS(wstatus) == 3;
    did_crash ? ++crashed : ++survived;

    // Recover + continue under every worker count; each must match the
    // control run byte-for-byte from its resume point.
    std::uint64_t durable = 0;
    for (const std::size_t workers : options.workers) {
      wal::FleetJournal journal;
      const Status opened = journal.Open(dir, VictimPolicy());
      RS_CHECK(opened.ok()) << "kill point " << k << ": " << opened.ToString();
      if (workers == options.workers.front()) {
        torn_repairs += journal.open_report().truncated_bytes > 0 ? 1 : 0;
        dropped_segments += journal.open_report().dropped_segments;
        with_checkpoint += journal.open_report().had_checkpoint ? 1 : 0;
      }
      wal::RecoverOptions recover;
      recover.worker_threads = workers;
      auto fleet = journal.Recover(recover);
      RS_CHECK(fleet.ok())
          << "kill point " << k << ": " << fleet.status().ToString();
      durable = journal.last_lsn();
      RS_CHECK(durable >= 2 && durable <= 2 + total_ops)
          << "kill point " << k << ": durable LSN " << durable
          << " outside the schedule";
      for (std::size_t j = durable - 2; j < total_ops; ++j) {
        const std::string got = RunOp(&*fleet, j);
        RS_CHECK(got == control[j])
            << "kill point " << k << ", " << workers << " workers, op " << j
            << " diverged from control:\n  control: " << control[j]
            << "\n  crashed: " << got;
      }
    }

    // Zero lost, zero duplicated: an attached continuation re-journals the
    // remainder and must land on exactly the crash-free final LSN.
    {
      wal::FleetJournal journal;
      const Status reopened = journal.Open(dir, VictimPolicy());
      RS_CHECK(reopened.ok()) << reopened.ToString();
      auto fleet = journal.Recover();
      RS_CHECK(fleet.ok()) << fleet.status().ToString();
      RS_CHECK(journal.Attach(&*fleet).ok());
      RS_CHECK(journal.last_lsn() == durable)
          << "re-attach appended records at kill point " << k;
      for (std::size_t j = durable - 2; j < total_ops; ++j) {
        (void)RunOp(&*fleet, j);
      }
      RS_CHECK(journal.status().ok()) << journal.status().ToString();
      RS_CHECK(journal.last_lsn() == 2 + total_ops)
          << "kill point " << k << ": continuation ended at LSN "
          << journal.last_lsn() << ", crash-free runs end at "
          << 2 + total_ops;
    }

    if ((n + 1) % 25 == 0 || n + 1 == kill_points.size()) {
      std::printf(
          "  [%3zu/%zu] ok (crashed %zu, survived %zu, torn-tail repairs "
          "%zu, dropped segments %zu, recovered-from-checkpoint %zu)\n",
          n + 1, kill_points.size(), crashed, survived, torn_repairs,
          dropped_segments, with_checkpoint);
    }
  }
  if (!options.keep) fs::remove_all(options.dir, ignored);

  std::printf(
      "rs_crashtest: PASS — %zu kill points, every recovery byte-identical "
      "to control under every worker count, zero lost or duplicated "
      "events\n",
      kill_points.size());
  return 0;
}

/// Writes a small deterministic journal segment (for tests/data and the
/// format spec checker): one fleet, two tenants, two serving steps, no
/// fsync timing dependence, single segment.
int GenExample(const std::string& out_path) {
  namespace fs = std::filesystem;
  const std::string dir = out_path + ".tmpdir";
  std::error_code ignored;
  fs::remove_all(dir, ignored);
  {
    wal::FleetJournal journal;
    wal::JournalPolicy policy;
    policy.fsync = wal::FsyncPolicy::kNone;
    RS_CHECK(journal.Open(dir, policy).ok());
    api::ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    RS_CHECK(wal::EnableJournal(&fleet, &journal).ok());
    for (std::size_t j = 0; j < 6; ++j) (void)RunOp(&fleet, j);
    RS_CHECK(journal.Sync().ok());
    journal.Detach();
  }
  const std::string segment = dir + "/wal-0000000000000001.rswal";
  auto report = wal::InspectSegmentFile(segment);
  RS_CHECK(report.ok()) << report.status().ToString();
  RS_CHECK(report->records == 8 && report->torn_tail_bytes == 0);
  fs::copy_file(segment, out_path, fs::copy_options::overwrite_existing);
  fs::remove_all(dir, ignored);
  std::printf("wrote %s (%zu records, LSN %llu..%llu, %zu bytes)\n",
              out_path.c_str(), report->records,
              static_cast<unsigned long long>(report->first_lsn),
              static_cast<unsigned long long>(report->last_lsn),
              report->bytes);
  return 0;
}

std::vector<std::size_t> ParseSizeList(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    out.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  RS_CHECK(!out.empty()) << "empty size list";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string gen_example_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg == "gen-example" && i + 1 < argc) {
      gen_example_out = argv[++i];
    } else if (arg.rfind("--dir=", 0) == 0) {
      options.dir = value();
    } else if (arg.rfind("--points=", 0) == 0) {
      options.points = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::stoull(value());
    } else if (arg.rfind("--steps=", 0) == 0) {
      options.steps = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers = ParseSizeList(value());
    } else if (arg == "--keep") {
      options.keep = true;
    } else {
      std::fprintf(stderr,
                   "usage: rs_crashtest [--dir=PATH] [--points=N] [--seed=S] "
                   "[--steps=N] [--workers=0,1,8] [--keep]\n"
                   "       rs_crashtest gen-example <out-file>\n");
      return 2;
    }
  }
  RS_CHECK(options.steps >= 4) << "--steps too small for a mid checkpoint";
  RS_CHECK(options.points >= 2);

  g_buffers.push_back(TrainTenant(0));
  g_buffers.push_back(TrainTenant(1));

  if (!gen_example_out.empty()) return GenExample(gen_example_out);
  return RunMatrix(options);
}
