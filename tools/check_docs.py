#!/usr/bin/env python3
"""Docs hygiene checker: dead relative markdown links and stale repo-path
references in README.md, EXPERIMENTS.md, and docs/. CI runs this in the
format-check job so documentation rot fails the build, not a reader.

Two checks, both against the working tree:
  1. every relative markdown link target `[text](path)` must exist
     (resolved against the linking file's directory, anchors stripped);
  2. every backtick-quoted repo path (a token rooted at a known top-level
     directory, or any token with a path separator and a source-like
     extension) must exist — wildcards, placeholders, and generated paths
     under build/ are skipped.

Usage: check_docs.py [repo_root]     (defaults to the script's parent dir)
"""

import os
import re
import sys

DOC_FILES = ["README.md", "EXPERIMENTS.md"]
DOC_DIRS = ["docs"]

# Tokens rooted at these directories are repo paths even without an
# extension (e.g. `tools/bench_gate.py`, `src/rs/trace/`).
ROOTED_DIRS = ("src/", "tools/", "bench/", "tests/", "docs/", "examples/",
               ".github/")
PATHY_EXTENSIONS = (".md", ".py", ".cpp", ".hpp", ".h", ".json", ".yml",
                    ".yaml", ".txt", ".rstrace", ".cmake")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")


def doc_files(root):
    out = [p for p in DOC_FILES if os.path.isfile(os.path.join(root, p))]
    for d in DOC_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith(".md"):
                    out.append(
                        os.path.relpath(os.path.join(dirpath, name), root))
    return out


def is_repo_path(token):
    """Heuristic: does this backtick span name a file in the repository?"""
    if any(c in token for c in " *<>$(){}|\\@=,;'\""):
        return False
    if token.startswith(("http://", "https://", "/", "~", "-")):
        return False
    if token.startswith("build/"):
        return False  # generated, not in the tree
    if token.startswith(ROOTED_DIRS) or token.startswith("rs/"):
        return True
    return "/" in token and token.rstrip("/").endswith(PATHY_EXTENSIONS)


def exists_in_repo(root, token):
    token = token.rstrip("/")
    # `rs/api/api.hpp` in prose is an include path, rooted at src/.
    candidates = [token, os.path.join("src", token)]
    # `tools/rs_snapshot` in prose names the built binary; accept it when
    # the tool's source file exists.
    candidates += [token + ".cpp", token + ".py"]
    return any(os.path.exists(os.path.join(root, c)) for c in candidates)


def check_file(root, rel):
    errors = []
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1).split("#", 1)[0]
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            resolved = os.path.normpath(
                os.path.join(root, os.path.dirname(rel), target))
            if not os.path.exists(resolved):
                errors.append(f"{rel}:{lineno}: dead link ({target})")
        for match in CODE_SPAN_RE.finditer(line):
            token = match.group(1).strip()
            if not is_repo_path(token):
                continue
            if not exists_in_repo(root, token):
                errors.append(f"{rel}:{lineno}: stale file reference "
                              f"(`{token}`)")
    return errors


def main(argv):
    root = os.path.abspath(argv[1] if len(argv) > 1 else
                           os.path.join(os.path.dirname(__file__), os.pardir))
    files = doc_files(root)
    if not files:
        print(f"check_docs: no documentation files under {root}",
              file=sys.stderr)
        return 2
    errors = []
    for rel in files:
        errors.extend(check_file(root, rel))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"check_docs: {len(files)} files, "
          f"{len(errors)} problem(s)" + (" — FAIL" if errors else ""))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
