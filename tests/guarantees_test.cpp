// Numerical validation of the paper's QoS guarantees:
//  * Proposition 1 — with the true intensity, Algorithm 4 attains exactly
//    1-α hitting probability, and the empirical hit ratio's variance obeys
//    Var <= 2(κ+m)·α(1-α)/(N-κ).
//  * Proposition 2 — with an ε-relative-error intensity estimate, the
//    hitting-probability error is bounded by
//    ε/(1-ε) · (q_{κ+m,α} + µτ·sup λ).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rs/core/sequential_scaler.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/stats/empirical.hpp"
#include "rs/stats/rng.hpp"
#include "rs/stats/special_functions.hpp"
#include "rs/workload/nhpp_sampler.hpp"
#include "rs/workload/synthetic.hpp"

namespace rs::core {
namespace {

constexpr double kRate = 0.5;
constexpr double kTau = 13.0;
constexpr double kAlpha = 0.2;

workload::PiecewiseConstantIntensity ConstantIntensity(double rate,
                                                       double horizon) {
  return *workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(50, rate), horizon / 50.0);
}

/// Replays one Poisson trace under the literal Algorithm 4 with the given
/// model intensity and returns (hit ratio, κ).
std::pair<double, std::size_t> RunOnce(double model_rate, double horizon,
                                       std::uint64_t seed) {
  stats::Rng rng(seed);
  auto truth = ConstantIntensity(kRate, horizon);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, truth, stats::DurationDistribution::Exponential(20.0));

  HpCountScalerOptions opts;
  opts.alpha = kAlpha;
  opts.m = 1;
  opts.mc_samples = 1500;
  opts.seed = seed * 7 + 3;
  HpCountScaler scaler(ConstantIntensity(model_rate, horizon),
                       stats::DurationDistribution::Deterministic(kTau), opts);
  sim::EngineOptions engine;
  engine.pending = stats::DurationDistribution::Deterministic(kTau);
  engine.seed = seed * 11 + 5;
  auto result = sim::Simulate(trace, &scaler, engine);
  EXPECT_TRUE(result.ok());
  auto metrics = sim::ComputeMetrics(*result);
  EXPECT_TRUE(metrics.ok());
  return {metrics->hit_rate, scaler.kappa()};
}

TEST(Proposition1Test, HitRatioConcentratesAtTarget) {
  // Average across independent replays: the mean hit ratio must sit at
  // 1 - α within Monte Carlo noise.
  std::vector<double> ratios;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ratios.push_back(RunOnce(kRate, 12000.0, seed).first);
  }
  EXPECT_NEAR(stats::Mean(ratios), 1.0 - kAlpha, 0.05);
}

TEST(Proposition1Test, HitRatioVarianceWithinBound) {
  // Var(hit ratio) <= 2(κ+m)α(1-α)/(N-κ). With N ≈ 6000 queries per replay
  // the bound is tiny; check the empirical across-replay variance against
  // it with generous slack for the finite replay count.
  std::vector<double> ratios;
  std::size_t kappa = 0;
  const double horizon = 12000.0;
  for (std::uint64_t seed = 21; seed <= 28; ++seed) {
    auto [ratio, k] = RunOnce(kRate, horizon, seed);
    ratios.push_back(ratio);
    kappa = k;
  }
  const double n = kRate * horizon;  // Expected queries per replay.
  const double bound = 2.0 * static_cast<double>(kappa + 1) * kAlpha *
                       (1.0 - kAlpha) / (n - static_cast<double>(kappa));
  // The χ²-distributed sample variance of 8 replays can exceed its mean by
  // ~4x at the 1% tail; also add the MC-decision jitter floor.
  EXPECT_LT(stats::Variance(ratios), 6.0 * bound + 5e-4);
}

class Proposition2Test : public ::testing::TestWithParam<double> {};

TEST_P(Proposition2Test, HpErrorWithinLinearBound) {
  const double epsilon = GetParam();
  const double horizon = 12000.0;
  // Model over-estimates the intensity by ε (|λ - λ*| = ε λ*).
  std::vector<double> ratios;
  std::size_t kappa = 0;
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    auto [ratio, k] = RunOnce(kRate * (1.0 + epsilon), horizon, seed);
    ratios.push_back(ratio);
    kappa = k;
  }
  const double achieved = stats::Mean(ratios);
  // Bound: ε/(1-ε) (q_{κ+m, α} + µτ sup λ).
  const double q = *stats::GammaQuantile(static_cast<double>(kappa + 1), 1.0,
                                         kAlpha);
  const double bound = epsilon / (1.0 - epsilon) * (q + kTau * kRate);
  // Add MC/replay noise floor to the theoretical bound.
  EXPECT_LE(std::abs(achieved - (1.0 - kAlpha)), bound + 0.04)
      << "epsilon=" << epsilon << " achieved=" << achieved;
}

INSTANTIATE_TEST_SUITE_P(Epsilons, Proposition2Test,
                         ::testing::Values(0.05, 0.1, 0.2));

TEST(Proposition2Test, ErrorGrowsWithEpsilon) {
  // Qualitative half of Prop. 2: a worse estimate gives a larger deviation.
  const double horizon = 12000.0;
  auto deviation = [&](double eps) {
    std::vector<double> ratios;
    for (std::uint64_t seed = 61; seed <= 66; ++seed) {
      ratios.push_back(RunOnce(kRate * (1.0 + eps), horizon, seed).first);
    }
    return std::abs(stats::Mean(ratios) - (1.0 - kAlpha));
  };
  const double small = deviation(0.02);
  const double large = deviation(0.5);
  EXPECT_GT(large, small - 0.01);
  // An over-estimated intensity over-provisions: achieved HP above target.
  std::vector<double> over;
  for (std::uint64_t seed = 71; seed <= 74; ++seed) {
    over.push_back(RunOnce(kRate * 1.5, horizon, seed).first);
  }
  EXPECT_GT(stats::Mean(over), 1.0 - kAlpha - 0.02);
}

}  // namespace
}  // namespace rs::core
