// Tests for the banded linear algebra substrate: vector ops, banded
// storage, banded Cholesky against a dense reference, difference-operator
// Gram matrices, and the PCG solver.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "rs/linalg/banded_cholesky.hpp"
#include "rs/linalg/banded_matrix.hpp"
#include "rs/linalg/difference_ops.hpp"
#include "rs/linalg/pcg.hpp"
#include "rs/linalg/vector_ops.hpp"
#include "rs/stats/rng.hpp"

namespace rs::linalg {
namespace {

TEST(VectorOpsTest, DotAndNorms) {
  Vec x{1.0, -2.0, 3.0};
  Vec y{4.0, 5.0, -6.0};
  EXPECT_DOUBLE_EQ(Dot(x, y), 4.0 - 10.0 - 18.0);
  EXPECT_DOUBLE_EQ(Norm2(x), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(NormInf(x), 3.0);
  EXPECT_DOUBLE_EQ(Norm1(x), 6.0);
  EXPECT_DOUBLE_EQ(Sum(x), 2.0);
}

TEST(VectorOpsTest, AxpyScaleAddSub) {
  Vec x{1.0, 2.0};
  Vec y{10.0, 20.0};
  Axpy(2.0, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  Scale(0.5, &y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  Vec z = Add(x, x);
  EXPECT_DOUBLE_EQ(z[1], 4.0);
  Vec w = Sub(z, x);
  EXPECT_DOUBLE_EQ(w[1], 2.0);
}

TEST(VectorOpsTest, ExpElementwise) {
  Vec x{0.0, 1.0, -1.0};
  Vec e = Exp(x);
  EXPECT_DOUBLE_EQ(e[0], 1.0);
  EXPECT_DOUBLE_EQ(e[1], std::exp(1.0));
  EXPECT_DOUBLE_EQ(e[2], std::exp(-1.0));
}

TEST(VectorOpsTest, EmptyVectorsAreSafe) {
  Vec empty;
  EXPECT_DOUBLE_EQ(NormInf(empty), 0.0);
  EXPECT_DOUBLE_EQ(Norm2(empty), 0.0);
  EXPECT_DOUBLE_EQ(Sum(empty), 0.0);
}

TEST(BandedMatrixTest, SetAddAtSymmetry) {
  SymmetricBandedMatrix a(5, 2);
  a.Set(2, 0, 3.5);
  EXPECT_DOUBLE_EQ(a.At(2, 0), 3.5);
  EXPECT_DOUBLE_EQ(a.At(0, 2), 3.5);  // Symmetric access.
  a.Add(0, 2, 1.5);
  EXPECT_DOUBLE_EQ(a.At(2, 0), 5.0);
}

TEST(BandedMatrixTest, AddDiagonalAndZero) {
  SymmetricBandedMatrix a(3, 1);
  a.AddDiagonal({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(a.At(1, 1), 2.0);
  a.SetZero();
  EXPECT_DOUBLE_EQ(a.At(1, 1), 0.0);
}

TEST(BandedMatrixTest, MatvecMatchesDense) {
  stats::Rng rng(11);
  const std::size_t n = 12, bw = 3;
  SymmetricBandedMatrix a(n, bw);
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t d = 0; d <= bw && j + d < n; ++d) {
      const double v = rng.NextDouble() * 2.0 - 1.0;
      a.Set(j + d, j, v);
      dense[j + d][j] = v;
      dense[j][j + d] = v;
    }
  }
  Vec x(n);
  for (auto& v : x) v = rng.NextDouble();
  Vec y;
  a.Matvec(x, &y);
  for (std::size_t i = 0; i < n; ++i) {
    double want = 0.0;
    for (std::size_t j = 0; j < n; ++j) want += dense[i][j] * x[j];
    EXPECT_NEAR(y[i], want, 1e-12);
  }
}

TEST(BandedMatrixTest, DiagonalExtraction) {
  SymmetricBandedMatrix a(4, 1);
  a.AddDiagonal({1.0, 2.0, 3.0, 4.0});
  a.Set(1, 0, 9.0);
  const Vec d = a.Diagonal();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

/// Builds a random SPD banded matrix: diag dominance guarantees SPD.
SymmetricBandedMatrix RandomSpdBanded(std::size_t n, std::size_t bw,
                                      std::uint64_t seed) {
  stats::Rng rng(seed);
  SymmetricBandedMatrix a(n, bw);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t d = 1; d <= bw && j + d < n; ++d) {
      a.Set(j + d, j, rng.NextDouble() - 0.5);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    a.Add(j, j, static_cast<double>(bw) + 2.0 + rng.NextDouble());
  }
  return a;
}

struct CholeskyCase {
  std::size_t n;
  std::size_t bw;
};

class BandedCholeskyParamTest : public ::testing::TestWithParam<CholeskyCase> {};

TEST_P(BandedCholeskyParamTest, SolveRecoversKnownSolution) {
  const auto [n, bw] = GetParam();
  auto a = RandomSpdBanded(n, bw, 100 + n + bw);
  stats::Rng rng(n * 31 + bw);
  Vec x_true(n);
  for (auto& v : x_true) v = rng.NextDouble() * 4.0 - 2.0;
  Vec b;
  a.Matvec(x_true, &b);
  Vec x;
  ASSERT_TRUE(BandedCholesky::FactorAndSolve(a, b, &x).ok());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBandwidths, BandedCholeskyParamTest,
    ::testing::Values(CholeskyCase{1, 0}, CholeskyCase{2, 1},
                      CholeskyCase{5, 0}, CholeskyCase{16, 1},
                      CholeskyCase{16, 2}, CholeskyCase{64, 5},
                      CholeskyCase{128, 12}, CholeskyCase{257, 31},
                      CholeskyCase{300, 64}, CholeskyCase{50, 49}));

TEST(BandedCholeskyTest, RejectsIndefiniteMatrix) {
  SymmetricBandedMatrix a(3, 1);
  a.AddDiagonal({1.0, -5.0, 1.0});
  BandedCholesky chol;
  EXPECT_EQ(chol.Factor(a).code(), StatusCode::kNotConverged);
  EXPECT_FALSE(chol.factored());
}

TEST(BandedCholeskyTest, SolveBeforeFactorFails) {
  BandedCholesky chol;
  Vec x;
  EXPECT_EQ(chol.Solve({1.0}, &x).code(), StatusCode::kRuntimeError);
}

TEST(BandedCholeskyTest, FactorOnceSolveMany) {
  auto a = RandomSpdBanded(40, 4, 777);
  BandedCholesky chol;
  ASSERT_TRUE(chol.Factor(a).ok());
  stats::Rng rng(778);
  for (int trial = 0; trial < 5; ++trial) {
    Vec x_true(40);
    for (auto& v : x_true) v = rng.NextDouble();
    Vec b, x;
    a.Matvec(x_true, &b);
    ASSERT_TRUE(chol.Solve(b, &x).ok());
    for (std::size_t i = 0; i < 40; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(DifferenceOpsTest, D2RowsAndApply) {
  EXPECT_EQ(D2Rows(5), 3u);
  EXPECT_EQ(D2Rows(2), 0u);
  Vec x{1.0, 4.0, 9.0, 16.0, 25.0};  // Second difference of squares = 2.
  Vec y;
  ApplyD2(x, &y);
  ASSERT_EQ(y.size(), 3u);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(DifferenceOpsTest, DLApply) {
  EXPECT_EQ(DLRows(10, 3), 7u);
  EXPECT_EQ(DLRows(3, 3), 0u);
  Vec x{1.0, 2.0, 3.0, 1.0, 2.0, 3.0};
  Vec y;
  ApplyDL(x, 3, &y);
  ASSERT_EQ(y.size(), 3u);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);  // Perfectly periodic.
}

TEST(DifferenceOpsTest, TransposeIsAdjoint) {
  // <D2 x, u> == <x, D2ᵀ u> for random vectors.
  stats::Rng rng(5);
  const std::size_t t = 17;
  Vec x(t), u(D2Rows(t));
  for (auto& v : x) v = rng.NextDouble();
  for (auto& v : u) v = rng.NextDouble();
  Vec d2x, d2tu;
  ApplyD2(x, &d2x);
  ApplyD2Transpose(u, t, &d2tu);
  EXPECT_NEAR(Dot(d2x, u), Dot(x, d2tu), 1e-12);

  const std::size_t period = 5;
  Vec w(DLRows(t, period));
  for (auto& v : w) v = rng.NextDouble();
  Vec dlx, dltw;
  ApplyDL(x, period, &dlx);
  ApplyDLTranspose(w, t, period, &dltw);
  EXPECT_NEAR(Dot(dlx, w), Dot(x, dltw), 1e-12);
}

TEST(DifferenceOpsTest, GramD2MatchesExplicitProduct) {
  const std::size_t t = 9;
  SymmetricBandedMatrix a(t, 2);
  AddGramD2(1.0, &a);
  // Compare x'(D2ᵀD2)x with ||D2 x||² for random x.
  stats::Rng rng(6);
  for (int trial = 0; trial < 4; ++trial) {
    Vec x(t);
    for (auto& v : x) v = rng.NextDouble() - 0.5;
    Vec ax, d2x;
    a.Matvec(x, &ax);
    ApplyD2(x, &d2x);
    EXPECT_NEAR(Dot(x, ax), Dot(d2x, d2x), 1e-12);
  }
}

TEST(DifferenceOpsTest, GramDLMatchesExplicitProduct) {
  const std::size_t t = 14, period = 4;
  SymmetricBandedMatrix a(t, period);
  AddGramDL(2.5, period, &a);
  stats::Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    Vec x(t);
    for (auto& v : x) v = rng.NextDouble() - 0.5;
    Vec ax, dlx;
    a.Matvec(x, &ax);
    ApplyDL(x, period, &dlx);
    EXPECT_NEAR(Dot(x, ax), 2.5 * Dot(dlx, dlx), 1e-12);
  }
}

TEST(DifferenceOpsTest, GramDLNoOpWhenPeriodTooLong) {
  SymmetricBandedMatrix a(5, 4);
  AddGramDL(1.0, 5, &a);  // period >= T: nothing added.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(a.At(i, i), 0.0);
}

TEST(PcgTest, AgreesWithCholeskyOnAdmmSystem) {
  const std::size_t t = 60, period = 7;
  const double rho = 1.3;
  stats::Rng rng(8);
  Vec w(t);
  for (auto& v : w) v = 0.5 + rng.NextDouble();

  SymmetricBandedMatrix a(t, period);
  a.AddDiagonal(w);
  AddGramD2(rho, &a);
  AddGramDL(rho, period, &a);
  Vec b(t);
  for (auto& v : b) v = rng.NextDouble() - 0.5;

  Vec x_chol;
  ASSERT_TRUE(BandedCholesky::FactorAndSolve(a, b, &x_chol).ok());

  auto op = MakeAdmmOperator(w, rho, rho, period);
  Vec diag = a.Diagonal();
  Vec x_pcg;
  PcgInfo info;
  ASSERT_TRUE(SolvePcg(op, diag, b, PcgOptions{}, &x_pcg, &info).ok());
  EXPECT_GT(info.iterations, 0u);
  for (std::size_t i = 0; i < t; ++i) EXPECT_NEAR(x_pcg[i], x_chol[i], 1e-6);
}

TEST(PcgTest, OperatorMatchesBandedAssembly) {
  const std::size_t t = 25, period = 6;
  stats::Rng rng(9);
  Vec w(t);
  for (auto& v : w) v = rng.NextDouble() + 0.1;
  SymmetricBandedMatrix a(t, period);
  a.AddDiagonal(w);
  AddGramD2(0.7, &a);
  AddGramDL(0.9, period, &a);
  auto op = MakeAdmmOperator(w, 0.7, 0.9, period);
  Vec x(t), y_op, y_mat;
  for (auto& v : x) v = rng.NextDouble() - 0.5;
  op(x, &y_op);
  a.Matvec(x, &y_mat);
  for (std::size_t i = 0; i < t; ++i) EXPECT_NEAR(y_op[i], y_mat[i], 1e-12);
}

TEST(PcgTest, ZeroPeriodDisablesDlTerm) {
  const std::size_t t = 10;
  Vec w(t, 2.0);
  auto op = MakeAdmmOperator(w, 0.0, 0.0, 0);
  Vec x(t, 1.0), y;
  op(x, &y);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(PcgTest, ReportsNonConvergenceWhenCapped) {
  const std::size_t t = 50;
  Vec w(t, 1.0);
  auto op = MakeAdmmOperator(w, 10.0, 0.0, 0);
  Vec diag(t, 1.0);  // Poor preconditioner on purpose.
  // A non-constant RHS (constants are in D2's null space and converge in
  // one step) so one iteration cannot reach a 1e-14 residual.
  Vec b(t), x;
  for (std::size_t i = 0; i < t; ++i) b[i] = static_cast<double>(i % 5);
  PcgOptions opts;
  opts.max_iterations = 1;
  opts.rel_tolerance = 1e-14;
  const Status s = SolvePcg(op, diag, b, opts, &x);
  EXPECT_EQ(s.code(), StatusCode::kNotConverged);
}

}  // namespace
}  // namespace rs::linalg
