// Tests of the rs::api facade: strategy-registry round-trips and error
// reporting, builder cross-field validation, and the headline guarantee
// that the online Observe/Plan serving path emits the exact ScalingAction
// sequence of the batch replay path on the same trace.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/stats/rng.hpp"

namespace rs::api {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture: the quickstart workload, shrunk (30-min cycles) so every
// build in this file trains in well under a second.
// ---------------------------------------------------------------------------

struct Workload {
  workload::Trace train;
  workload::Trace test;
  double dt = 30.0;
};

Workload MakeQuickstartWorkload() {
  const double period_s = 1800.0, dt = 30.0;
  const double horizon = 10.0 * period_s;
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(0.4 + 0.3 * std::sin(2.0 * M_PI * phase));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  stats::Rng rng(7);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(20.0));
  Workload w;
  auto [train, test] = trace.SplitAt(horizon - 2.0 * period_s);
  w.train = std::move(train);
  w.test = std::move(test);
  return w;
}

Result<Scaler> BuildQuickstartScaler(const Workload& w) {
  return ScalerBuilder()
      .WithTrace(w.train)
      .WithBinWidth(w.dt)
      .WithForecastHorizon(w.test.horizon())
      .WithTarget(HitRate{0.9})
      .WithPlanningInterval(2.0)
      .WithMcSamples(100)
      .Build();
}

// ---------------------------------------------------------------------------
// Strategy registry
// ---------------------------------------------------------------------------

TEST(StrategyRegistryTest, NamesListsAllFiveStrategies) {
  const auto names = StrategyRegistry::Global().Names();
  for (const char* expected :
       {"backup_pool", "adaptive_backup_pool", "robust_hp", "robust_rt",
        "robust_cost"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing strategy: " << expected;
  }
  EXPECT_GE(names.size(), 5u);
}

TEST(StrategyRegistryTest, EveryRegisteredNameConstructs) {
  // A forecast-bearing context satisfies both baseline and robust factories.
  auto forecast = *workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(100, 0.5), 60.0);
  StrategyContext context;
  context.forecast = &forecast;
  for (const auto& name : StrategyRegistry::Global().Names()) {
    auto strategy = MakeStrategy({.name = name, .params = {}}, context);
    ASSERT_TRUE(strategy.ok())
        << name << ": " << strategy.status().ToString();
    EXPECT_NE(strategy->get(), nullptr) << name;
  }
}

TEST(StrategyRegistryTest, UnknownNameListsRegisteredStrategies) {
  auto strategy = MakeStrategy({.name = "no_such_strategy", .params = {}});
  ASSERT_FALSE(strategy.ok());
  const std::string msg = strategy.status().message();
  EXPECT_NE(msg.find("no_such_strategy"), std::string::npos) << msg;
  EXPECT_NE(msg.find("robust_hp"), std::string::npos) << msg;
  EXPECT_NE(msg.find("backup_pool"), std::string::npos) << msg;
}

TEST(StrategyRegistryTest, UnknownParameterListsKnownKeys) {
  auto strategy =
      MakeStrategy({.name = "backup_pool", .params = {{"pool_sz", 3}}});
  ASSERT_FALSE(strategy.ok());
  const std::string msg = strategy.status().message();
  EXPECT_NE(msg.find("pool_sz"), std::string::npos) << msg;
  EXPECT_NE(msg.find("pool_size"), std::string::npos) << msg;
}

TEST(StrategyRegistryTest, RobustStrategiesRequireForecast) {
  auto strategy = MakeStrategy({.name = "robust_hp", .params = {}});
  ASSERT_FALSE(strategy.ok());
  EXPECT_NE(strategy.status().message().find("forecast"), std::string::npos)
      << strategy.status().ToString();
}

TEST(StrategyRegistryTest, InvalidTargetsAreRejectedPerVariant) {
  auto forecast = *workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(10, 0.5), 60.0);
  StrategyContext context;
  context.forecast = &forecast;
  // HP targets are probabilities.
  EXPECT_FALSE(
      MakeStrategy({.name = "robust_hp", .params = {{"target", 1.5}}}, context)
          .ok());
  // RT / cost budgets must be positive.
  EXPECT_FALSE(
      MakeStrategy({.name = "robust_rt", .params = {{"target", -1.0}}}, context)
          .ok());
  EXPECT_FALSE(
      MakeStrategy({.name = "robust_cost", .params = {{"target", 0.0}}},
                   context)
          .ok());
  // Count-like knobs must be validated before any double→unsigned cast:
  // negative or out-of-range values must error, not wrap or hit UB.
  EXPECT_FALSE(
      MakeStrategy({.name = "robust_hp", .params = {{"mc_samples", -100.0}}},
                   context)
          .ok());
  EXPECT_FALSE(
      MakeStrategy({.name = "robust_hp", .params = {{"seed", -1.0}}}, context)
          .ok());
  EXPECT_FALSE(
      MakeStrategy({.name = "robust_hp", .params = {{"seed", 1e20}}}, context)
          .ok());
  // Baselines validate their own knobs.
  EXPECT_FALSE(
      MakeStrategy({.name = "backup_pool", .params = {{"pool_size", 2.5}}})
          .ok());
  EXPECT_FALSE(
      MakeStrategy({.name = "backup_pool", .params = {{"pool_size", -2.0}}})
          .ok());
  EXPECT_FALSE(MakeStrategy({.name = "adaptive_backup_pool",
                             .params = {{"multiplier", -3.0}}})
                   .ok());
}

TEST(StrategySpecTest, ParseRoundTrips) {
  auto spec = ParseStrategySpec("robust_hp:target=0.95,mc_samples=500");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "robust_hp");
  EXPECT_DOUBLE_EQ(spec->params.at("target"), 0.95);
  EXPECT_DOUBLE_EQ(spec->params.at("mc_samples"), 500.0);
  EXPECT_EQ(FormatStrategySpec(*spec), "robust_hp:mc_samples=500,target=0.95");

  EXPECT_TRUE(ParseStrategySpec("backup_pool").ok());
  EXPECT_FALSE(ParseStrategySpec("").ok());
  EXPECT_FALSE(ParseStrategySpec("robust_hp:target").ok());
  EXPECT_FALSE(ParseStrategySpec("robust_hp:target=abc").ok());
}

// ---------------------------------------------------------------------------
// Builder validation
// ---------------------------------------------------------------------------

TEST(ScalerBuilderTest, ValidatesCrossFieldConfiguration) {
  const auto w = MakeQuickstartWorkload();

  // Missing / empty trace.
  EXPECT_FALSE(ScalerBuilder().Build().ok());
  EXPECT_FALSE(ScalerBuilder().WithTrace(workload::Trace({}, 0.0)).Build().ok());

  // Bin width: non-positive, or too coarse for the training window.
  EXPECT_FALSE(
      ScalerBuilder().WithTrace(w.train).WithBinWidth(0.0).Build().ok());
  EXPECT_FALSE(ScalerBuilder()
                   .WithTrace(w.train)
                   .WithBinWidth(w.train.horizon())
                   .Build()
                   .ok());

  // Forecast horizon must cover at least one planning interval.
  EXPECT_FALSE(ScalerBuilder()
                   .WithTrace(w.train)
                   .WithBinWidth(w.dt)
                   .WithForecastHorizon(1.0)
                   .WithPlanningInterval(5.0)
                   .Build()
                   .ok());

  // Degenerate sampling / scheduling knobs.
  EXPECT_FALSE(ScalerBuilder()
                   .WithTrace(w.train)
                   .WithBinWidth(w.dt)
                   .WithMcSamples(0)
                   .Build()
                   .ok());
  EXPECT_FALSE(ScalerBuilder()
                   .WithTrace(w.train)
                   .WithBinWidth(w.dt)
                   .WithPlanningInterval(0.0)
                   .Build()
                   .ok());

  // Invalid typed target.
  EXPECT_FALSE(ScalerBuilder()
                   .WithTrace(w.train)
                   .WithBinWidth(w.dt)
                   .WithTarget(HitRate{1.5})
                   .Build()
                   .ok());

  // Target and explicit strategy are mutually exclusive.
  EXPECT_FALSE(ScalerBuilder()
                   .WithTrace(w.train)
                   .WithBinWidth(w.dt)
                   .WithTarget(HitRate{0.9})
                   .WithStrategy({.name = "robust_hp", .params = {}})
                   .Build()
                   .ok());

  // Cross-field checks must see a planning interval overridden through the
  // strategy spec's params, not just the builder field.
  EXPECT_FALSE(ScalerBuilder()
                   .WithTrace(w.train)
                   .WithBinWidth(w.dt)
                   .WithForecastHorizon(10.0)
                   .WithStrategy({.name = "robust_hp",
                                  .params = {{"planning_interval", 600.0}}})
                   .Build()
                   .ok());
}

TEST(ScalerBuilderTest, ReplayRejectsUncoveredTestHorizon) {
  const auto w = MakeQuickstartWorkload();
  auto scaler = ScalerBuilder()
                    .WithTrace(w.train)
                    .WithBinWidth(w.dt)
                    .WithForecastHorizon(w.test.horizon() / 4.0)
                    .WithMcSamples(50)
                    .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();
  auto replay = scaler->Replay(w.test);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.status().message().find("WithForecastHorizon"),
            std::string::npos)
      << replay.status().ToString();
}

TEST(ScalerBuilderTest, SelectsRegistryStrategyByString) {
  const auto w = MakeQuickstartWorkload();
  auto scaler = ScalerBuilder()
                    .WithTrace(w.train)
                    .WithBinWidth(w.dt)
                    .WithForecastHorizon(w.test.horizon())
                    .WithStrategy({.name = "adaptive_backup_pool",
                                   .params = {{"multiplier", 50.0}}})
                    .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();
  EXPECT_EQ(std::string(scaler->strategy()->name()), "AdapBP");
  auto metrics = scaler->Evaluate(w.test);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->num_queries, w.test.size());
}

// ---------------------------------------------------------------------------
// Online serving: Observe/Plan vs batch replay parity
// ---------------------------------------------------------------------------

/// Compares the full recorded batch log against the online parity log
/// (requires the online scaler to run with unbounded retention).
void ExpectActionLogsEqual(const std::vector<sim::ScalingAction>& batch_actions,
                           const std::vector<sim::ScalingAction>& online_actions,
                           std::size_t* creations_out = nullptr) {
  ASSERT_EQ(batch_actions.size(), online_actions.size());
  std::size_t creations = 0;
  for (std::size_t i = 0; i < batch_actions.size(); ++i) {
    ASSERT_EQ(batch_actions[i].creation_times.size(),
              online_actions[i].creation_times.size())
        << "action " << i;
    EXPECT_EQ(batch_actions[i].deletions, online_actions[i].deletions)
        << "action " << i;
    for (std::size_t j = 0; j < batch_actions[i].creation_times.size(); ++j) {
      EXPECT_NEAR(batch_actions[i].creation_times[j],
                  online_actions[i].creation_times[j], 1e-9)
          << "action " << i << ", creation " << j;
    }
    creations += batch_actions[i].creation_times.size();
  }
  if (creations_out != nullptr) *creations_out = creations;
}

TEST(OnlineServingTest, ObservePlanMatchesBatchReplayActionSequence) {
  const auto w = MakeQuickstartWorkload();

  // Two identically-configured scalers (same training data, same seeds):
  // one replayed in batch by the engine, one driven through Observe/Plan.
  auto batch = BuildQuickstartScaler(w);
  auto online = BuildQuickstartScaler(w);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(online.ok()) << online.status().ToString();
  // The comparison needs the complete parity log, so opt out of the default
  // windowed compaction for this run.
  ASSERT_TRUE(online->ConfigureHistoryRetention(sim::kUnboundedHistory).ok());

  // Batch path: record every action the policy emits during Simulate.
  RecordingAutoscaler recorder(batch->strategy());
  sim::EngineOptions engine;  // Same defaults the serving mirror uses.
  auto replay = sim::Simulate(w.test, &recorder, engine);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  // Online path: report each arrival, then drain planning to the horizon.
  // Draining to *exactly* the horizon matters: the planning grid (Δ = 2 s)
  // lands a tick exactly on the 3600 s horizon, which both the engine and
  // the mirror must process (the replay/serving boundary-parity contract).
  for (const auto& query : w.test.queries()) {
    ASSERT_TRUE(online->Observe(query.arrival_time).ok());
  }
  auto final_plan = online->Plan(w.test.horizon());
  ASSERT_TRUE(final_plan.ok()) << final_plan.status().ToString();

  std::size_t creations = 0;
  ExpectActionLogsEqual(recorder.actions(), online->ActionLog(), &creations);
  EXPECT_GT(creations, 0u);  // The parity is over a non-trivial plan.

  // The serving snapshot agrees with the replayed reality.
  const auto snap = online->Snapshot();
  EXPECT_TRUE(snap.started);
  EXPECT_EQ(snap.queries_observed, w.test.size());
  EXPECT_EQ(snap.creations_requested, creations);
  EXPECT_EQ(snap.strategy, online->strategy_name());
  EXPECT_EQ(snap.arrivals_retained, snap.queries_observed);
  EXPECT_EQ(snap.actions_retained, snap.planning_rounds);
}

TEST(OnlineServingTest, RealEnvironmentParityUnderFakeDecisionClock) {
  // Table IV mode in the serving mirror: with decision wall time charged
  // through a pair of identically-scripted fake clocks, the Observe/Plan
  // path must still emit the exact action sequence of the batch replay.
  const auto w = MakeQuickstartWorkload();
  auto batch = BuildQuickstartScaler(w);
  auto online = BuildQuickstartScaler(w);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(online.ok()) << online.status().ToString();
  ASSERT_TRUE(online->ConfigureHistoryRetention(sim::kUnboundedHistory).ok());

  // Each path reads its own clock; the identical 0.25 s step makes every
  // planning decision cost exactly 0.25 s in both.
  sim::FakeDecisionClock batch_clock(0.25);
  sim::FakeDecisionClock online_clock(0.25);

  sim::EngineOptions engine;
  engine.charge_decision_wall_time = true;
  engine.decision_clock = &batch_clock;

  sim::EngineOptions mirror = engine;
  mirror.decision_clock = &online_clock;
  ASSERT_TRUE(online->ConfigureServing(mirror).ok());

  RecordingAutoscaler recorder(batch->strategy());
  auto replay = sim::Simulate(w.test, &recorder, engine);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  for (const auto& query : w.test.queries()) {
    ASSERT_TRUE(online->Observe(query.arrival_time).ok());
  }
  ASSERT_TRUE(online->Plan(w.test.horizon()).ok());

  ExpectActionLogsEqual(recorder.actions(), online->ActionLog());
  // Both paths consulted their clocks (two readings bracket each tick).
  EXPECT_GT(batch_clock.readings(), 0u);
  EXPECT_EQ(batch_clock.readings(), online_clock.readings());
}

TEST(OnlineServingTest, ServingStateStaysBoundedBeyondDeclaredLookback) {
  // robust_hp declares history_requirement() == 0: the serving state may
  // drop every arrival/log entry once it ages past `now`. After a trace of
  // thousands of arrivals the retained buffers must stay small while the
  // lifetime totals keep counting.
  const auto w = MakeQuickstartWorkload();
  auto scaler = BuildQuickstartScaler(w);
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();
  EXPECT_EQ(scaler->strategy()->history_requirement(), 0.0);

  for (const auto& query : w.test.queries()) {
    ASSERT_TRUE(scaler->Observe(query.arrival_time).ok());
    ASSERT_TRUE(scaler->Plan(query.arrival_time).ok());
  }

  const auto snap = scaler->Snapshot();
  ASSERT_GT(snap.queries_observed, 500u) << "workload too small to compact";
  EXPECT_EQ(snap.queries_observed, w.test.size());
  EXPECT_LT(snap.arrivals_retained, snap.queries_observed);
  EXPECT_LT(snap.actions_retained, snap.planning_rounds);
  // Amortized trim bound: at most 2x the (empty) window + the 64-entry
  // hysteresis, give or take one compaction period.
  EXPECT_LE(snap.arrivals_retained, 128u);
  EXPECT_EQ(snap.history_retention, 0.0);

  // AdapBP declares its QPS window: retention floors at estimate_window.
  auto adap = ScalerBuilder()
                  .WithTrace(w.train)
                  .WithBinWidth(w.dt)
                  .WithForecastHorizon(w.test.horizon())
                  .WithStrategy({.name = "adaptive_backup_pool",
                                 .params = {{"multiplier", 10.0},
                                            {"update_interval", 60.0},
                                            {"estimate_window", 120.0}}})
                  .Build();
  ASSERT_TRUE(adap.ok()) << adap.status().ToString();
  EXPECT_EQ(adap->strategy()->history_requirement(), 120.0);
  for (const auto& query : w.test.queries()) {
    ASSERT_TRUE(adap->Observe(query.arrival_time).ok());
  }
  const auto adap_snap = adap->Snapshot();
  EXPECT_EQ(adap_snap.history_retention, 120.0);
  EXPECT_LT(adap_snap.arrivals_retained, adap_snap.queries_observed);

  // The retention override can only widen the window, never narrow it.
  ASSERT_TRUE(adap->ConfigureHistoryRetention(30.0).ok());
  EXPECT_EQ(adap->Snapshot().history_retention, 120.0);
  ASSERT_TRUE(adap->ConfigureHistoryRetention(600.0).ok());
  EXPECT_EQ(adap->Snapshot().history_retention, 600.0);
  EXPECT_FALSE(adap->ConfigureHistoryRetention(-1.0).ok());
}

TEST(OnlineServingTest, ConfigureServingValidatesEngineOptions) {
  const auto w = MakeQuickstartWorkload();
  auto scaler = BuildQuickstartScaler(w);
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();

  sim::EngineOptions bad;
  bad.creation_latency = -0.5;
  auto status = scaler->ConfigureServing(bad);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("creation_latency"), std::string::npos)
      << status.ToString();

  bad = sim::EngineOptions{};
  bad.pending_jitter = 1.5;
  status = scaler->ConfigureServing(bad);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("pending_jitter"), std::string::npos)
      << status.ToString();

  // Table IV mode is supported now — no more NotImplemented.
  sim::EngineOptions real_env;
  real_env.charge_decision_wall_time = true;
  EXPECT_TRUE(scaler->ConfigureServing(real_env).ok());
}

TEST(OnlineServingTest, AdapterDrivesSimulatorThroughServingInterface) {
  const auto w = MakeQuickstartWorkload();
  auto batch = BuildQuickstartScaler(w);
  auto online = BuildQuickstartScaler(w);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(online.ok()) << online.status().ToString();

  auto batch_metrics = batch->Evaluate(w.test);
  ASSERT_TRUE(batch_metrics.ok());

  OnlineServingAdapter adapter(&*online);
  auto served = Evaluate(w.test, &adapter);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_TRUE(adapter.status().ok()) << adapter.status().ToString();

  // Same actions + deterministic pending model ⇒ identical outcomes.
  EXPECT_DOUBLE_EQ(batch_metrics->hit_rate, served->hit_rate);
  EXPECT_DOUBLE_EQ(batch_metrics->total_cost, served->total_cost);
  EXPECT_EQ(batch_metrics->num_instances, served->num_instances);
}

TEST(OnlineServingTest, ObserveReportsColdStartWorkToCaller) {
  // A strategy that never provisions proactively (reactive BP with B=0)
  // forces the Algorithm 1 cold-start rule on every arrival: Observe must
  // tell the caller to create reactively.
  const auto w = MakeQuickstartWorkload();
  auto scaler = ScalerBuilder()
                    .WithTrace(w.train)
                    .WithBinWidth(w.dt)
                    .WithForecastHorizon(w.test.horizon())
                    .WithStrategy({.name = "backup_pool",
                                   .params = {{"pool_size", 0}}})
                    .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();

  auto first = scaler->Observe(10.0);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->cold_start);
  // Nothing was scheduled, so there is nothing for the caller to cancel.
  EXPECT_FALSE(first->cancel_earliest_scheduled);
  EXPECT_EQ(scaler->Snapshot().cold_starts, 1u);
}

/// Minimal strategy for the buffered-cancel test: schedules exactly one
/// creation at t=14 from its first planning tick, nothing else.
class OneFutureCreation : public sim::Autoscaler {
 public:
  const char* name() const override { return "one-future-creation"; }
  double planning_interval() const override { return 5.0; }
  sim::ScalingAction OnPlanningTick(const sim::SimContext& ctx) override {
    if (fired_ || ctx.now > 0.0) return {};
    fired_ = true;
    return {.creation_times = {14.0}, .deletions = 0};
  }

 private:
  bool fired_ = false;
};

TEST(OnlineServingTest, ColdStartRetractsUndrainedBufferedCreation) {
  // Registering a custom strategy is the extension path the registry
  // advertises; it also gives this test deterministic planning behavior.
  static const bool registered = [] {
    auto status = StrategyRegistry::Global().Register(
        "test_one_future_creation",
        [](const StrategySpec&, const StrategyContext&)
            -> Result<std::unique_ptr<sim::Autoscaler>> {
          return std::unique_ptr<sim::Autoscaler>(
              std::make_unique<OneFutureCreation>());
        });
    return status.ok();
  }();
  ASSERT_TRUE(registered);

  const auto w = MakeQuickstartWorkload();
  auto scaler =
      ScalerBuilder()
          .WithTrace(w.train)
          .WithBinWidth(w.dt)
          .WithForecastHorizon(w.test.horizon())
          .WithStrategy({.name = "test_one_future_creation", .params = {}})
          .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();

  // Without draining Plan(), the tick at t=0 buffers a creation for t=14.
  // An arrival at t=13 finds nothing live: the mirror's cold-start rule
  // cancels that scheduled creation — but the caller never received it, so
  // the outcome must NOT ask the caller to cancel, and the retracted
  // creation must never be delivered.
  auto outcome = scaler->Observe(13.0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->cold_start);
  EXPECT_FALSE(outcome->cancel_earliest_scheduled);

  auto plan = scaler->Plan(20.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->creation_times.empty())
      << "retracted creation was still delivered at t="
      << plan->creation_times.front();
}

/// Scripted strategy for the drained-then-cold-start audit: emits one
/// creation at t=14 from each of its first two planning ticks (t=0, t=5).
class TwoScriptedCreations : public sim::Autoscaler {
 public:
  const char* name() const override { return "two-scripted-creations"; }
  double planning_interval() const override { return 5.0; }
  sim::ScalingAction OnPlanningTick(const sim::SimContext& ctx) override {
    (void)ctx;
    if (ticks_++ >= 2) return {};
    return {.creation_times = {14.0}, .deletions = 0};
  }

 private:
  int ticks_ = 0;
};

TEST(OnlineServingTest, ColdStartCancelsDrainedCreationNotBufferedTwin) {
  // The drained-then-cold-start sequence with a time collision: the caller
  // has drained a creation scheduled for t=14, and the mirror's buffer
  // holds a *second*, undrained creation also at t=14. The cold-start rule
  // cancels the earliest scheduled creation — which is the drained one
  // (emission order breaks the tie), so the caller MUST be told to cancel,
  // and the undrained twin must still be delivered. Matching buffered
  // entries by time value instead of emission identity gets this exactly
  // backwards (silently retracting the twin and cancelling nothing on the
  // caller's side).
  static const bool registered = [] {
    return StrategyRegistry::Global()
        .Register("test_two_scripted_creations",
                  [](const StrategySpec&, const StrategyContext&)
                      -> Result<std::unique_ptr<sim::Autoscaler>> {
                    return std::unique_ptr<sim::Autoscaler>(
                        std::make_unique<TwoScriptedCreations>());
                  })
        .ok();
  }();
  ASSERT_TRUE(registered);

  const auto w = MakeQuickstartWorkload();
  auto scaler =
      ScalerBuilder()
          .WithTrace(w.train)
          .WithBinWidth(w.dt)
          .WithForecastHorizon(w.test.horizon())
          .WithStrategy({.name = "test_two_scripted_creations", .params = {}})
          .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();

  // Drain the t=0 tick: the caller now owns a creation scheduled for 14.
  auto first = scaler->Plan(0.0);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->creation_times.size(), 1u);
  EXPECT_DOUBLE_EQ(first->creation_times[0], 14.0);

  // The arrival at 13 advances past the t=5 tick (which buffers the second
  // creation at 14) and then cold-starts.
  auto outcome = scaler->Observe(13.0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->cold_start);
  EXPECT_TRUE(outcome->cancel_earliest_scheduled)
      << "the cancelled creation was drained; the caller must cancel it";

  // The undrained twin survives the retraction and is still delivered.
  auto plan = scaler->Plan(20.0);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->creation_times.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->creation_times[0], 14.0);
}

TEST(OnlineServingTest, RejectsTimeTravelAndSupportsReset) {
  const auto w = MakeQuickstartWorkload();
  auto scaler = BuildQuickstartScaler(w);
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();

  ASSERT_TRUE(scaler->Observe(100.0).ok());
  EXPECT_FALSE(scaler->Observe(50.0).ok());   // Arrivals must be monotone.
  EXPECT_FALSE(scaler->Plan(50.0).ok());      // Planning cannot rewind.
  EXPECT_TRUE(scaler->Plan(200.0).ok());

  ASSERT_TRUE(scaler->ResetServing().ok());
  const auto snap = scaler->Snapshot();
  EXPECT_FALSE(snap.started);
  EXPECT_EQ(snap.queries_observed, 0u);
  EXPECT_TRUE(scaler->Observe(10.0).ok());    // Fresh clock after reset.
}

}  // namespace
}  // namespace rs::api
