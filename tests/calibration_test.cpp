// Tests for the nominal→actual calibration curve (Section VI-C guidelines).
#include <gtest/gtest.h>

#include "rs/core/calibration.hpp"

namespace rs::core {
namespace {

TEST(CalibrationTest, ForwardInterpolation) {
  auto curve = CalibrationCurve::Make({0.5, 0.7, 0.9}, {0.6, 0.8, 0.95});
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->PredictActual(0.5), 0.6);
  EXPECT_DOUBLE_EQ(curve->PredictActual(0.9), 0.95);
  EXPECT_NEAR(curve->PredictActual(0.6), 0.7, 1e-12);
  // Clamped outside the grid.
  EXPECT_DOUBLE_EQ(curve->PredictActual(0.3), 0.6);
  EXPECT_DOUBLE_EQ(curve->PredictActual(0.99), 0.95);
}

TEST(CalibrationTest, InverseLookupFindsNominal) {
  auto curve = CalibrationCurve::Make({0.5, 0.7, 0.9}, {0.6, 0.8, 0.95});
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR(curve->PickNominal(0.8), 0.7, 1e-12);
  EXPECT_NEAR(curve->PickNominal(0.7), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(curve->PickNominal(0.99), 0.9);
  EXPECT_DOUBLE_EQ(curve->PickNominal(0.1), 0.5);
}

TEST(CalibrationTest, RoundTripConsistency) {
  auto curve =
      CalibrationCurve::Make({0.1, 0.3, 0.5, 0.7, 0.9}, {0.2, 0.4, 0.6, 0.85, 0.97});
  ASSERT_TRUE(curve.ok());
  for (double desired : {0.25, 0.5, 0.9}) {
    const double nominal = curve->PickNominal(desired);
    EXPECT_NEAR(curve->PredictActual(nominal), desired, 1e-9);
  }
}

TEST(CalibrationTest, IsotonizesNonMonotoneActuals) {
  // Noisy calibration runs can produce local inversions; PAV must fix them.
  auto curve = CalibrationCurve::Make({0.1, 0.3, 0.5, 0.7},
                                      {0.2, 0.5, 0.45, 0.8});
  ASSERT_TRUE(curve.ok());
  const auto& a = curve->actual();
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i], a[i - 1]);
  }
  // Pooled block becomes the average 0.475.
  EXPECT_NEAR(a[1], 0.475, 1e-12);
  EXPECT_NEAR(a[2], 0.475, 1e-12);
}

TEST(CalibrationTest, RejectsBadInputs) {
  EXPECT_FALSE(CalibrationCurve::Make({0.5}, {0.5}).ok());
  EXPECT_FALSE(CalibrationCurve::Make({0.5, 0.4}, {0.5, 0.6}).ok());
  EXPECT_FALSE(CalibrationCurve::Make({0.5, 0.5}, {0.5, 0.6}).ok());
  EXPECT_FALSE(CalibrationCurve::Make({0.1, 0.2}, {0.5}).ok());
}

}  // namespace
}  // namespace rs::core
