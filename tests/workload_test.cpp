// Tests for traces, intensity functions, NHPP samplers, synthetic trace
// generators, and the perturbation protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "rs/stats/empirical.hpp"
#include "rs/stats/rng.hpp"
#include "rs/timeseries/aggregate.hpp"
#include "rs/workload/intensity.hpp"
#include "rs/workload/nhpp_sampler.hpp"
#include "rs/workload/perturbation.hpp"
#include "rs/workload/synthetic.hpp"
#include "rs/workload/trace.hpp"

namespace rs::workload {
namespace {

TEST(TraceTest, SortsOnConstruction) {
  Trace t({{5.0, 1.0}, {1.0, 2.0}, {3.0, 3.0}}, 10.0);
  EXPECT_DOUBLE_EQ(t[0].arrival_time, 1.0);
  EXPECT_DOUBLE_EQ(t[2].arrival_time, 5.0);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.AverageQps(), 0.3);
}

TEST(TraceTest, SliceRebasesTimes) {
  Trace t({{1.0, 1.0}, {3.0, 1.0}, {7.0, 1.0}}, 10.0);
  Trace s = t.Slice(2.0, 8.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].arrival_time, 1.0);
  EXPECT_DOUBLE_EQ(s[1].arrival_time, 5.0);
  EXPECT_DOUBLE_EQ(s.horizon(), 6.0);
}

TEST(TraceTest, SplitAtPartitionsAllQueries) {
  Trace t({{1.0, 1.0}, {3.0, 1.0}, {7.0, 1.0}}, 10.0);
  auto [train, test] = t.SplitAt(5.0);
  EXPECT_EQ(train.size(), 2u);
  EXPECT_EQ(test.size(), 1u);
  EXPECT_DOUBLE_EQ(test[0].arrival_time, 2.0);
}

TEST(TraceTest, CsvRoundTrip) {
  Trace t({{1.25, 10.5}, {2.5, 20.25}}, 100.0);
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.csv";
  ASSERT_TRUE(t.SaveCsv(path).ok());
  auto loaded = Trace::LoadCsv(path, 100.0);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ((*loaded)[0].arrival_time, 1.25);
  EXPECT_DOUBLE_EQ((*loaded)[1].processing_time, 20.25);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadMissingFileFails) {
  EXPECT_FALSE(Trace::LoadCsv("/nonexistent/file.csv").ok());
}

TEST(IntensityTest, RateAndCumulative) {
  auto intensity = PiecewiseConstantIntensity::Make({2.0, 0.0, 4.0}, 10.0);
  ASSERT_TRUE(intensity.ok());
  EXPECT_DOUBLE_EQ(intensity->Rate(5.0), 2.0);
  EXPECT_DOUBLE_EQ(intensity->Rate(15.0), 0.0);
  EXPECT_DOUBLE_EQ(intensity->Rate(25.0), 4.0);
  EXPECT_DOUBLE_EQ(intensity->Rate(99.0), 4.0);  // Constant tail.
  EXPECT_DOUBLE_EQ(intensity->Cumulative(0.0), 0.0);
  EXPECT_DOUBLE_EQ(intensity->Cumulative(10.0), 20.0);
  EXPECT_DOUBLE_EQ(intensity->Cumulative(20.0), 20.0);
  EXPECT_DOUBLE_EQ(intensity->Cumulative(30.0), 60.0);
  EXPECT_DOUBLE_EQ(intensity->Cumulative(40.0), 100.0);  // Tail extension.
  EXPECT_DOUBLE_EQ(intensity->MaxRate(), 4.0);
  EXPECT_DOUBLE_EQ(intensity->MeanRate(), 2.0);
}

TEST(IntensityTest, InverseCumulativeInvertsCumulative) {
  auto intensity =
      PiecewiseConstantIntensity::Make({1.0, 3.0, 0.5, 2.0}, 5.0);
  ASSERT_TRUE(intensity.ok());
  for (double target : {0.0, 1.0, 4.9, 5.0, 7.5, 17.0, 20.0, 31.0, 60.0}) {
    auto t = intensity->InverseCumulative(target);
    ASSERT_TRUE(t.ok()) << target;
    EXPECT_NEAR(intensity->Cumulative(*t), target, 1e-9) << target;
  }
}

TEST(IntensityTest, InverseSkipsZeroRateBins) {
  auto intensity = PiecewiseConstantIntensity::Make({1.0, 0.0, 1.0}, 1.0);
  ASSERT_TRUE(intensity.ok());
  // Target just past the first bin must land at the start of bin 2.
  auto t = intensity->InverseCumulative(1.0 + 1e-12);
  ASSERT_TRUE(t.ok());
  EXPECT_GE(*t, 2.0 - 1e-9);
}

TEST(IntensityTest, RejectsBadInputs) {
  EXPECT_FALSE(PiecewiseConstantIntensity::Make({}, 1.0).ok());
  EXPECT_FALSE(PiecewiseConstantIntensity::Make({1.0}, 0.0).ok());
  EXPECT_FALSE(PiecewiseConstantIntensity::Make({-1.0}, 1.0).ok());
  auto intensity = PiecewiseConstantIntensity::Make({1.0}, 1.0);
  EXPECT_FALSE(intensity->InverseCumulative(-1.0).ok());
}

TEST(IntensityTest, DiscretizeUsesMidpoints) {
  auto fn = [](double t) { return t; };
  auto intensity = Discretize(fn, 2.0, 6.0);
  ASSERT_TRUE(intensity.ok());
  EXPECT_EQ(intensity->bins(), 3u);
  EXPECT_DOUBLE_EQ(intensity->rates()[0], 1.0);
  EXPECT_DOUBLE_EQ(intensity->rates()[2], 5.0);
}

TEST(IntensityTest, ScalabilityIntensityShape) {
  auto fn = MakeScalabilityIntensity(10000.0);
  EXPECT_NEAR(fn(1800.0), 10000.0 + 0.001, 1.0);  // Peak mid-period.
  EXPECT_NEAR(fn(0.0), 0.001, 1e-6);              // Trough at the edges.
  EXPECT_NEAR(fn(1800.0 + 3600.0), fn(1800.0), 1e-6);  // Periodic.
}

TEST(IntensityTest, RegularizationIntensityShape) {
  auto fn = MakeRegularizationIntensity();
  EXPECT_NEAR(fn(43200.0), 1.1, 1e-9);  // 4^10 (1/2)^20 = 1, + 0.1.
  EXPECT_NEAR(fn(0.0), 0.1, 1e-9);
  EXPECT_NEAR(fn(43200.0 + 86400.0), fn(43200.0), 1e-9);
}

TEST(NhppSamplerTest, HomogeneousCountMatchesRate) {
  stats::Rng rng(1);
  auto intensity = PiecewiseConstantIntensity::Make(
      std::vector<double>(100, 2.0), 10.0);
  ASSERT_TRUE(intensity.ok());
  auto arrivals = SampleNhppTimeRescaling(&rng, *intensity);
  ASSERT_TRUE(arrivals.ok());
  // Expect ~2000 arrivals over 1000 s; 5 sigma ≈ 224.
  EXPECT_NEAR(static_cast<double>(arrivals->size()), 2000.0, 250.0);
  for (std::size_t i = 1; i < arrivals->size(); ++i) {
    EXPECT_GE((*arrivals)[i], (*arrivals)[i - 1]);
  }
}

TEST(NhppSamplerTest, ThinningMatchesTimeRescalingInDistribution) {
  auto fn = [](double t) { return 1.0 + std::sin(t / 50.0); };
  stats::Rng rng1(2), rng2(3);
  auto thinned = SampleNhppThinning(&rng1, fn, 2.0, 2000.0);
  ASSERT_TRUE(thinned.ok());
  auto discretized = Discretize(fn, 1.0, 2000.0);
  ASSERT_TRUE(discretized.ok());
  auto rescaled = SampleNhppTimeRescaling(&rng2, *discretized);
  ASSERT_TRUE(rescaled.ok());
  // Expected count = ∫λ ≈ 2000 + 50(1-cos(40)) ≈ 2016; both within 5 sigma.
  const double expected = 2000.0 + 50.0 * (1.0 - std::cos(40.0));
  EXPECT_NEAR(static_cast<double>(thinned->size()), expected, 250.0);
  EXPECT_NEAR(static_cast<double>(rescaled->size()), expected, 250.0);
}

TEST(NhppSamplerTest, ThinningRejectsUnderestimatedBound) {
  stats::Rng rng(4);
  auto fn = [](double) { return 5.0; };
  EXPECT_FALSE(SampleNhppThinning(&rng, fn, 1.0, 100.0).ok());
}

TEST(NhppSamplerTest, ZeroIntensityYieldsNoArrivals) {
  stats::Rng rng(5);
  auto intensity = PiecewiseConstantIntensity::Make({0.0, 0.0}, 100.0);
  ASSERT_TRUE(intensity.ok());
  auto arrivals = SampleNhppTimeRescaling(&rng, *intensity);
  ASSERT_TRUE(arrivals.ok());
  EXPECT_TRUE(arrivals->empty());
}

TEST(SyntheticTest, CrsLikeTraceBasicShape) {
  auto synth = MakeCrsLikeTrace();
  ASSERT_TRUE(synth.ok());
  const auto& trace = synth->trace;
  EXPECT_DOUBLE_EQ(trace.horizon(), 4.0 * 7.0 * 86400.0);
  // Paper CRS: 21,059 queries over 4 weeks; ours should be same order.
  EXPECT_GT(trace.size(), 5000u);
  EXPECT_LT(trace.size(), 80000u);
  // Heavy-tailed processing times with mean near 179 s.
  std::vector<double> proc;
  for (const auto& q : trace.queries()) proc.push_back(q.processing_time);
  EXPECT_NEAR(stats::Mean(proc), 179.0, 40.0);
  EXPECT_DOUBLE_EQ(synth->pending.Mean(), 13.0);
}

TEST(SyntheticTest, CrsLikeHasWeeklyStructure) {
  auto synth = MakeCrsLikeTrace();
  ASSERT_TRUE(synth.ok());
  // Weekday rate should exceed weekend rate materially in the ground truth.
  const auto& rates = synth->intensity.rates();
  const std::size_t week_bins = rates.size() / 4;
  const std::size_t day_bins = week_bins / 7;
  double weekday = 0.0, weekend = 0.0;
  for (std::size_t i = 0; i < 5 * day_bins; ++i) weekday += rates[i];
  for (std::size_t i = 5 * day_bins; i < 7 * day_bins; ++i) weekend += rates[i];
  weekday /= static_cast<double>(5 * day_bins);
  weekend /= static_cast<double>(2 * day_bins);
  EXPECT_GT(weekday, 1.5 * weekend);
}

TEST(SyntheticTest, GoogleLikeTraceBasicShape) {
  auto synth = MakeGoogleLikeTrace();
  ASSERT_TRUE(synth.ok());
  EXPECT_DOUBLE_EQ(synth->trace.horizon(), 86400.0);
  // Paper: 20,254 queries over 24 h.
  EXPECT_GT(synth->trace.size(), 8000u);
  EXPECT_LT(synth->trace.size(), 50000u);
}

TEST(SyntheticTest, AlibabaLikeHasBurstOnDayFour) {
  auto synth = MakeAlibabaLikeTrace();
  ASSERT_TRUE(synth.ok());
  EXPECT_DOUBLE_EQ(synth->trace.horizon(), 5.0 * 86400.0);
  const auto burst = AlibabaBurstWindow();
  // QPS inside the burst window should far exceed the same window one day
  // earlier.
  const auto in_burst =
      synth->trace.Slice(burst.begin, burst.end).size();
  const auto day_before =
      synth->trace.Slice(burst.begin - 86400.0, burst.end - 86400.0).size();
  EXPECT_GT(in_burst, 2 * day_before);
}

TEST(SyntheticTest, ScaleControlsQueryCount) {
  SyntheticTraceOptions small;
  small.scale = 0.05;
  SyntheticTraceOptions large;
  large.scale = 0.2;
  auto a = MakeAlibabaLikeTrace(small);
  auto b = MakeAlibabaLikeTrace(large);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->trace.size(), 2 * a->trace.size());
}

TEST(SyntheticTest, DeterministicForFixedSeed) {
  auto a = MakeGoogleLikeTrace();
  auto b = MakeGoogleLikeTrace();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->trace.size(), b->trace.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(a->trace.size(), 100); ++i) {
    EXPECT_DOUBLE_EQ(a->trace[i].arrival_time, b->trace[i].arrival_time);
  }
}

TEST(PerturbationTest, DeletionWindowEmptied) {
  // Dense uniform trace: one query per second for an hour.
  std::vector<Query> qs;
  for (int i = 0; i < 7200; ++i) {
    qs.push_back({static_cast<double>(i), 10.0});
  }
  Trace trace(std::move(qs), 7200.0);
  PerturbationOptions opts;
  opts.add_factor = 0.0;
  auto perturbed = PerturbTrace(trace, opts);
  ASSERT_TRUE(perturbed.ok());
  // Queries in [0, 300) and [3600, 3900) must be gone.
  EXPECT_EQ(perturbed->Slice(0.0, 300.0).size(), 0u);
  EXPECT_EQ(perturbed->Slice(3600.0, 3900.0).size(), 0u);
  // Other windows retain their queries.
  EXPECT_EQ(perturbed->Slice(1000.0, 1300.0).size(), 300u);
}

TEST(PerturbationTest, AdditionScalesWithC) {
  std::vector<Query> qs;
  for (int i = 0; i < 7200; ++i) {
    qs.push_back({static_cast<double>(i), 10.0});
  }
  Trace trace(std::move(qs), 7200.0);
  PerturbationOptions opts;
  opts.add_factor = 4.0;
  auto perturbed = PerturbTrace(trace, opts);
  ASSERT_TRUE(perturbed.ok());
  // Addition window [360, 660): originally 300 queries, plus ~4x more.
  const auto count = perturbed->Slice(360.0, 660.0).size();
  EXPECT_NEAR(static_cast<double>(count), 300.0 * 5.0, 60.0);
}

TEST(PerturbationTest, RejectsNegativeAddFactor) {
  Trace trace({{1.0, 1.0}}, 10.0);
  PerturbationOptions opts;
  opts.add_factor = -1.0;
  EXPECT_FALSE(PerturbTrace(trace, opts).ok());
}

TEST(PerturbationTest, RemoveWindowDropsExactRange) {
  Trace trace({{1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}}, 10.0);
  Trace cut = RemoveWindow(trace, 1.5, 2.5);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_DOUBLE_EQ(cut[0].arrival_time, 1.0);
  EXPECT_DOUBLE_EQ(cut[1].arrival_time, 3.0);
  EXPECT_DOUBLE_EQ(cut.horizon(), 10.0);
}

TEST(PerturbationTest, ThinWindowKeepsFraction) {
  std::vector<Query> qs;
  for (int i = 0; i < 10000; ++i) qs.push_back({i * 0.1, 1.0});
  Trace trace(std::move(qs), 1000.0);
  auto thinned = ThinWindow(trace, 0.0, 500.0, 0.25);
  ASSERT_TRUE(thinned.ok());
  const auto kept_inside = thinned->Slice(0.0, 500.0).size();
  const auto kept_outside = thinned->Slice(500.0, 1000.0).size();
  EXPECT_NEAR(static_cast<double>(kept_inside), 1250.0, 150.0);
  EXPECT_EQ(kept_outside, 5000u);
  EXPECT_FALSE(ThinWindow(trace, 0.0, 1.0, 1.5).ok());
}

TEST(MakeTraceFromIntensityTest, ProcessingTimesFollowDistribution) {
  stats::Rng rng(77);
  auto intensity =
      PiecewiseConstantIntensity::Make(std::vector<double>(50, 1.0), 10.0);
  ASSERT_TRUE(intensity.ok());
  auto trace = MakeTraceFromIntensity(
      &rng, *intensity, stats::DurationDistribution::Deterministic(42.0));
  ASSERT_TRUE(trace.ok());
  ASSERT_GT(trace->size(), 0u);
  for (const auto& q : trace->queries()) {
    EXPECT_DOUBLE_EQ(q.processing_time, 42.0);
  }
}

}  // namespace
}  // namespace rs::workload
