// Tests for the stochastically-constrained decision solvers (Eqs. 3/5/7):
// closed-form cross-checks, brute-force verification of the sort-and-search
// sweep (Algorithm 3), and property sweeps over targets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rs/core/decision.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/stats/rng.hpp"

namespace rs::core {
namespace {

McSamples MakeExponentialSamples(double rate, double tau, std::size_t n,
                                 std::uint64_t seed) {
  stats::Rng rng(seed);
  McSamples s;
  s.xi.resize(n);
  s.tau.assign(n, tau);
  for (std::size_t r = 0; r < n; ++r) {
    s.xi[r] = stats::SampleExponential(&rng, rate);
  }
  return s;
}

TEST(HpDecisionTest, MatchesClosedFormExponentialQuantile) {
  // xi ~ Exp(rate), deterministic tau: x* = alpha-quantile(xi) - tau.
  // rate chosen low enough that the quantile exceeds tau (feasible case):
  // -ln(0.9)/0.005 ≈ 21.07 > 13.
  const double rate = 0.005, tau = 13.0, alpha = 0.1;
  auto s = MakeExponentialSamples(rate, tau, 200000, 1);
  auto d = SolveHpConstrained(s, alpha);
  ASSERT_TRUE(d.ok());
  const double exact = -std::log(1.0 - alpha) / rate - tau;
  EXPECT_TRUE(d->feasible);
  EXPECT_NEAR(d->creation_time, exact, 0.05 * exact);
}

TEST(HpDecisionTest, InfeasibleClampsToZero) {
  // High rate: alpha-quantile of xi << tau → infeasible, create now.
  auto s = MakeExponentialSamples(10.0, 13.0, 10000, 2);
  auto d = SolveHpConstrained(s, 0.1);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->feasible);
  EXPECT_DOUBLE_EQ(d->creation_time, 0.0);
}

TEST(HpDecisionTest, MonotoneInAlpha) {
  auto s = MakeExponentialSamples(0.05, 5.0, 50000, 3);
  double prev = -1e300;
  for (double alpha : {0.05, 0.1, 0.3, 0.5, 0.9}) {
    auto d = SolveHpConstrained(s, alpha);
    ASSERT_TRUE(d.ok());
    EXPECT_GE(d->creation_time, prev);
    prev = d->creation_time;
  }
}

TEST(HpDecisionTest, RejectsBadInputs) {
  McSamples empty;
  EXPECT_FALSE(SolveHpConstrained(empty, 0.1).ok());
  auto s = MakeExponentialSamples(1.0, 1.0, 10, 4);
  EXPECT_FALSE(SolveHpConstrained(s, 0.0).ok());
  EXPECT_FALSE(SolveHpConstrained(s, 1.0).ok());
  s.tau.pop_back();
  EXPECT_FALSE(SolveHpConstrained(s, 0.5).ok());
}

/// Brute-force root of Ê(x) = target by bisection on EstimateExpectedWait.
double BruteForceRtRoot(const McSamples& s, double target) {
  double lo = -1e4, hi = 1e6;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (EstimateExpectedWait(s, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::max(0.5 * (lo + hi), 0.0);
}

class RtDecisionParamTest : public ::testing::TestWithParam<double> {};

TEST_P(RtDecisionParamTest, SortSearchMatchesBruteForce) {
  const double rt_excess = GetParam();
  auto s = MakeExponentialSamples(0.05, 13.0, 4000, 5);
  auto d = SolveRtConstrained(s, rt_excess);
  ASSERT_TRUE(d.ok());
  if (d->unbounded) {
    // Target above mean(tau) = 13: constraint slack everywhere.
    EXPECT_GE(rt_excess, 13.0 - 0.5);
    return;
  }
  const double brute = BruteForceRtRoot(s, rt_excess);
  EXPECT_NEAR(d->creation_time, brute, 1e-6 + 1e-4 * brute);
  // The returned x indeed attains the target wait (when feasible).
  if (d->feasible) {
    EXPECT_NEAR(EstimateExpectedWait(s, d->creation_time), rt_excess,
                1e-6 + 1e-4 * rt_excess);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, RtDecisionParamTest,
                         ::testing::Values(0.05, 0.2, 1.0, 3.0, 8.0, 12.0,
                                           14.0));

TEST(RtDecisionTest, RandomTauSamplesAgainstBruteForce) {
  stats::Rng rng(6);
  McSamples s;
  const std::size_t n = 3000;
  s.xi.resize(n);
  s.tau.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    s.xi[r] = stats::SampleExponential(&rng, 0.1);
    s.tau[r] = stats::SampleUniform(&rng, 5.0, 20.0);
  }
  for (double target : {0.5, 2.0, 6.0}) {
    auto d = SolveRtConstrained(s, target);
    ASSERT_TRUE(d.ok());
    ASSERT_FALSE(d->unbounded);
    if (d->feasible) {
      EXPECT_NEAR(EstimateExpectedWait(s, d->creation_time), target,
                  1e-4 * target + 1e-6);
    } else {
      // Target below the wait at immediate creation: clamped to x = 0, the
      // earliest (and best achievable) creation time.
      EXPECT_DOUBLE_EQ(d->creation_time, 0.0);
      EXPECT_GT(EstimateExpectedWait(s, 0.0), target);
    }
  }
}

TEST(RtDecisionTest, ZeroTargetMeansEarliestCreation) {
  // rt_excess = 0: never wait → x must be <= min(xi - tau) (or clamped 0).
  auto s = MakeExponentialSamples(0.01, 5.0, 2000, 7);
  auto d = SolveRtConstrained(s, 0.0);
  ASSERT_TRUE(d.ok());
  const double min_bp =
      *std::min_element(s.xi.begin(), s.xi.end()) - 5.0;
  EXPECT_LE(d->creation_time, std::max(min_bp, 0.0) + 1e-9);
}

TEST(RtDecisionTest, RejectsNegativeTarget) {
  auto s = MakeExponentialSamples(1.0, 1.0, 100, 8);
  EXPECT_FALSE(SolveRtConstrained(s, -0.1).ok());
}

TEST(RtDecisionTest, MonotoneInTarget) {
  auto s = MakeExponentialSamples(0.05, 13.0, 20000, 9);
  double prev = -1.0;
  for (double target : {0.1, 0.5, 1.0, 4.0, 10.0}) {
    auto d = SolveRtConstrained(s, target);
    ASSERT_TRUE(d.ok());
    ASSERT_FALSE(d->unbounded);
    EXPECT_GE(d->creation_time, prev);
    prev = d->creation_time;
  }
}

/// Brute-force root of Ĝ(x) = budget by bisection on EstimateExpectedIdle.
double BruteForceCostRoot(const McSamples& s, double budget) {
  double lo = 0.0, hi = 1e7;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (EstimateExpectedIdle(s, mid) > budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

class CostDecisionParamTest : public ::testing::TestWithParam<double> {};

TEST_P(CostDecisionParamTest, MatchesBruteForce) {
  const double budget = GetParam();
  auto s = MakeExponentialSamples(0.05, 13.0, 4000, 10);
  auto d = SolveCostConstrained(s, budget);
  ASSERT_TRUE(d.ok());
  const double g0 = EstimateExpectedIdle(s, 0.0);
  if (g0 <= budget) {
    EXPECT_DOUBLE_EQ(d->creation_time, 0.0);  // Eq. 7 first case.
  } else {
    const double brute = BruteForceCostRoot(s, budget);
    EXPECT_NEAR(d->creation_time, brute, 1e-5 + 1e-4 * brute);
    EXPECT_NEAR(EstimateExpectedIdle(s, d->creation_time), budget,
                1e-4 * budget + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, CostDecisionParamTest,
                         ::testing::Values(0.1, 1.0, 2.0, 5.0, 20.0, 100.0));

TEST(CostDecisionTest, HugeBudgetCreatesImmediately) {
  auto s = MakeExponentialSamples(0.05, 13.0, 2000, 11);
  auto d = SolveCostConstrained(s, 1e6);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->creation_time, 0.0);
}

TEST(CostDecisionTest, TinyBudgetCreatesLate) {
  auto s = MakeExponentialSamples(0.05, 13.0, 2000, 12);
  auto tight = SolveCostConstrained(s, 0.01);
  auto loose = SolveCostConstrained(s, 5.0);
  ASSERT_TRUE(tight.ok() && loose.ok());
  EXPECT_GT(tight->creation_time, loose->creation_time);
}

TEST(CostDecisionTest, RejectsNegativeBudget) {
  auto s = MakeExponentialSamples(1.0, 1.0, 100, 13);
  EXPECT_FALSE(SolveCostConstrained(s, -1.0).ok());
}

TEST(EstimatorsTest, WaitAndIdleClosedFormsOnTinySample) {
  // Two samples, hand-computable.
  McSamples s;
  s.xi = {10.0, 20.0};
  s.tau = {4.0, 4.0};
  // x = 8: gaps are 2 and 12 → waits (4-2)=2 and 0 → mean 1.
  EXPECT_DOUBLE_EQ(EstimateExpectedWait(s, 8.0), 1.0);
  // idle at x=0: (10-4)+(20-4) = 6+16 → mean 11.
  EXPECT_DOUBLE_EQ(EstimateExpectedIdle(s, 0.0), 11.0);
  // idle at x=10: (0)+(6) → mean 3.
  EXPECT_DOUBLE_EQ(EstimateExpectedIdle(s, 10.0), 3.0);
}

TEST(EstimatorsTest, WaitMonotoneIdleAntitone) {
  auto s = MakeExponentialSamples(0.1, 5.0, 1000, 14);
  double prev_wait = -1.0, prev_idle = 1e300;
  for (double x : {0.0, 2.0, 5.0, 10.0, 50.0}) {
    const double w = EstimateExpectedWait(s, x);
    const double g = EstimateExpectedIdle(s, x);
    EXPECT_GE(w, prev_wait);
    EXPECT_LE(g, prev_idle);
    prev_wait = w;
    prev_idle = g;
  }
}

}  // namespace
}  // namespace rs::core
