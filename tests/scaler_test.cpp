// Tests for the sequential scaling schemes: Proposition-1-style hitting
// probability validation of Algorithm 4 on known-intensity Poisson traffic,
// target attainment of the three RobustScaler variants, and planning-
// frequency behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rs/core/sequential_scaler.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/stats/rng.hpp"
#include "rs/workload/nhpp_sampler.hpp"
#include "rs/workload/synthetic.hpp"

namespace rs::core {
namespace {

/// Homogeneous Poisson trace with Exp processing times.
workload::Trace PoissonTrace(double rate, double horizon, double proc_mean,
                             std::uint64_t seed) {
  stats::Rng rng(seed);
  auto intensity = workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(100, rate), horizon / 100.0);
  auto trace = workload::MakeTraceFromIntensity(
      &rng, *intensity, stats::DurationDistribution::Exponential(proc_mean));
  return *trace;
}

workload::PiecewiseConstantIntensity ConstantIntensity(double rate,
                                                       double horizon) {
  return *workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(100, rate), horizon / 100.0);
}

sim::EngineOptions DetPending(double tau, std::uint64_t seed = 9) {
  sim::EngineOptions opts;
  opts.pending = stats::DurationDistribution::Deterministic(tau);
  opts.seed = seed;
  return opts;
}

class HpTargetTest : public ::testing::TestWithParam<double> {};

// Proposition 1 in practice: with the true intensity as input, the achieved
// hit rate tracks the 1-α target on Poisson arrivals.
TEST_P(HpTargetTest, PolicyAttainsTargetOnKnownIntensity) {
  const double target_hp = GetParam();
  const double rate = 0.5, horizon = 30000.0, tau = 13.0;
  auto trace = PoissonTrace(rate, horizon, 20.0, 42);
  ASSERT_GT(trace.size(), 5000u);

  SequentialScalerOptions opts;
  opts.variant = ScalerVariant::kHittingProbability;
  opts.alpha = 1.0 - target_hp;
  opts.mc_samples = 400;
  opts.planning_interval = 2.0;
  RobustScalerPolicy policy(ConstantIntensity(rate, horizon),
                            stats::DurationDistribution::Deterministic(tau),
                            opts);
  auto result = sim::Simulate(trace, &policy, DetPending(tau));
  ASSERT_TRUE(result.ok());
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  // MC decision noise and per-Δ replanning shift the achieved level a
  // little, most visibly at loose targets where the quantile estimate has
  // maximal variance (the paper's Section VI-C calibration exists for
  // exactly this residual). Tight targets get a ±0.05 band, the loose 0.5
  // target ±0.08.
  const double band = target_hp <= 0.5 ? 0.08 : 0.05;
  EXPECT_NEAR(m->hit_rate, target_hp, band) << "target " << target_hp;
}

INSTANTIATE_TEST_SUITE_P(Targets, HpTargetTest,
                         ::testing::Values(0.5, 0.8, 0.9));

TEST(HpCountScalerTest, LiteralAlgorithm4AttainsTarget) {
  const double rate = 0.5, horizon = 30000.0, tau = 13.0;
  const double target_hp = 0.8;
  auto trace = PoissonTrace(rate, horizon, 20.0, 7);

  HpCountScalerOptions opts;
  opts.alpha = 1.0 - target_hp;
  opts.m = 1;
  opts.mc_samples = 1500;
  HpCountScaler scaler(ConstantIntensity(rate, horizon),
                       stats::DurationDistribution::Deterministic(tau), opts);
  auto result = sim::Simulate(trace, &scaler, DetPending(tau));
  ASSERT_TRUE(result.ok());
  // κ should be near λ̄τ-ish for this config (Eq. 8 with λ̄=0.5, τ=13:
  // threshold 6.5; Gamma quantile at 0.2 crosses around i≈8-9).
  EXPECT_GT(scaler.kappa(), 3u);
  EXPECT_LT(scaler.kappa(), 20u);
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->hit_rate, target_hp, 0.06);
}

TEST(HpCountScalerTest, PlanningEveryFiveArrivalsStillWorks) {
  const double rate = 0.5, horizon = 20000.0, tau = 13.0;
  auto trace = PoissonTrace(rate, horizon, 20.0, 8);
  HpCountScalerOptions opts;
  opts.alpha = 0.2;
  opts.m = 5;
  opts.mc_samples = 1200;
  HpCountScaler scaler(ConstantIntensity(rate, horizon),
                       stats::DurationDistribution::Deterministic(tau), opts);
  auto result = sim::Simulate(trace, &scaler, DetPending(tau));
  ASSERT_TRUE(result.ok());
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->hit_rate, 0.8, 0.07);
}

TEST(RtVariantTest, AttainsWaitBudget) {
  const double rate = 0.5, horizon = 30000.0, tau = 13.0;
  auto trace = PoissonTrace(rate, horizon, 20.0, 9);
  SequentialScalerOptions opts;
  opts.variant = ScalerVariant::kResponseTime;
  opts.rt_excess = 2.0;  // Allowed mean wait: 2 s beyond processing.
  opts.mc_samples = 400;
  opts.planning_interval = 2.0;
  RobustScalerPolicy policy(ConstantIntensity(rate, horizon),
                            stats::DurationDistribution::Deterministic(tau),
                            opts);
  auto result = sim::Simulate(trace, &policy, DetPending(tau));
  ASSERT_TRUE(result.ok());
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->wait_avg, 2.0, 0.8);
}

TEST(RtVariantTest, TighterBudgetRaisesCost) {
  const double rate = 0.5, horizon = 15000.0, tau = 13.0;
  auto trace = PoissonTrace(rate, horizon, 20.0, 10);
  double prev_cost = 1e300;
  for (double excess : {0.5, 3.0, 8.0}) {
    SequentialScalerOptions opts;
    opts.variant = ScalerVariant::kResponseTime;
    opts.rt_excess = excess;
    opts.mc_samples = 300;
    opts.planning_interval = 2.0;
    RobustScalerPolicy policy(ConstantIntensity(rate, horizon),
                              stats::DurationDistribution::Deterministic(tau),
                              opts);
    auto result = sim::Simulate(trace, &policy, DetPending(tau));
    ASSERT_TRUE(result.ok());
    auto m = sim::ComputeMetrics(*result);
    ASSERT_TRUE(m.ok());
    EXPECT_LT(m->total_cost, prev_cost) << "excess " << excess;
    prev_cost = m->total_cost;
  }
}

TEST(CostVariantTest, RespectsIdleBudget) {
  const double rate = 0.5, horizon = 30000.0, tau = 13.0;
  auto trace = PoissonTrace(rate, horizon, 20.0, 11);
  SequentialScalerOptions opts;
  opts.variant = ScalerVariant::kCost;
  opts.idle_budget = 2.0;
  opts.mc_samples = 400;
  opts.planning_interval = 2.0;
  RobustScalerPolicy policy(ConstantIntensity(rate, horizon),
                            stats::DurationDistribution::Deterministic(tau),
                            opts);
  auto result = sim::Simulate(trace, &policy, DetPending(tau));
  ASSERT_TRUE(result.ok());
  // Mean idle time per used instance ≈ the budget. For a served instance
  // lifecycle = idle + τ + s, so idle+s = lifecycle − τ and the mean idle is
  // mean(lifecycle − τ) − E[s] with E[s] = 20 (Exp processing).
  double idle_plus_s = 0.0;
  std::size_t used = 0;
  for (const auto& inst : result->instances) {
    if (!inst.served_query) continue;
    ++used;
    idle_plus_s += std::max(0.0, inst.lifecycle_cost - tau);
  }
  ASSERT_GT(used, 1000u);
  const double mean_idle = idle_plus_s / static_cast<double>(used) - 20.0;
  EXPECT_NEAR(mean_idle, 2.0, 1.2);
}

TEST(CostVariantTest, LargerBudgetImprovesHitRate) {
  const double rate = 0.5, horizon = 15000.0, tau = 13.0;
  auto trace = PoissonTrace(rate, horizon, 20.0, 12);
  double prev_hit = -1.0;
  for (double budget : {0.2, 2.0, 15.0}) {
    SequentialScalerOptions opts;
    opts.variant = ScalerVariant::kCost;
    opts.idle_budget = budget;
    opts.mc_samples = 300;
    opts.planning_interval = 2.0;
    RobustScalerPolicy policy(ConstantIntensity(rate, horizon),
                              stats::DurationDistribution::Deterministic(tau),
                              opts);
    auto result = sim::Simulate(trace, &policy, DetPending(tau));
    ASSERT_TRUE(result.ok());
    auto m = sim::ComputeMetrics(*result);
    ASSERT_TRUE(m.ok());
    EXPECT_GE(m->hit_rate, prev_hit - 0.03) << "budget " << budget;
    prev_hit = m->hit_rate;
  }
}

TEST(ScalerTest, NamesReflectVariant) {
  auto intensity = ConstantIntensity(1.0, 100.0);
  auto pending = stats::DurationDistribution::Deterministic(1.0);
  SequentialScalerOptions opts;
  opts.variant = ScalerVariant::kHittingProbability;
  EXPECT_STREQ(RobustScalerPolicy(intensity, pending, opts).name(),
               "RobustScaler-HP");
  opts.variant = ScalerVariant::kResponseTime;
  EXPECT_STREQ(RobustScalerPolicy(intensity, pending, opts).name(),
               "RobustScaler-RT");
  opts.variant = ScalerVariant::kCost;
  EXPECT_STREQ(RobustScalerPolicy(intensity, pending, opts).name(),
               "RobustScaler-cost");
}

TEST(ScalerTest, CoarserPlanningIsCostlierAtSameRtTarget) {
  // Fig. 10(d) mechanism: larger Δ forces earlier/coarser creations.
  const double rate = 0.5, horizon = 15000.0, tau = 13.0;
  auto trace = PoissonTrace(rate, horizon, 20.0, 13);
  std::vector<double> costs;
  for (double delta : {1.0, 30.0}) {
    SequentialScalerOptions opts;
    opts.variant = ScalerVariant::kResponseTime;
    opts.rt_excess = 2.0;
    opts.mc_samples = 300;
    opts.planning_interval = delta;
    RobustScalerPolicy policy(ConstantIntensity(rate, horizon),
                              stats::DurationDistribution::Deterministic(tau),
                              opts);
    auto result = sim::Simulate(trace, &policy, DetPending(tau));
    ASSERT_TRUE(result.ok());
    auto m = sim::ComputeMetrics(*result);
    ASSERT_TRUE(m.ok());
    costs.push_back(m->total_cost);
  }
  EXPECT_GT(costs[1], costs[0] * 0.95);
}

TEST(ScalerTest, SolveOneDispatchesVariant) {
  auto intensity = ConstantIntensity(1.0, 100.0);
  auto pending = stats::DurationDistribution::Deterministic(0.0);
  SequentialScalerOptions opts;
  opts.variant = ScalerVariant::kHittingProbability;
  opts.alpha = 0.5;
  RobustScalerPolicy policy(intensity, pending, opts);
  McSamples s;
  s.xi = {1.0, 2.0, 3.0, 4.0, 5.0};
  s.tau = {0.0, 0.0, 0.0, 0.0, 0.0};
  auto d = policy.SolveOne(s);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->creation_time, 3.0, 1e-9);  // Median of xi.
}

}  // namespace
}  // namespace rs::core
