// Tests of rs::wal (write-ahead event journal + crash-consistent recovery):
//  * the headline zero-loss guarantee: a journaled serving session dropped
//    without any shutdown (the in-process analogue of kill -9) recovers —
//    checkpoint + journal-tail replay — and continues byte-identically to an
//    uninterrupted control fleet, across recovery worker counts {0, 1, 8};
//  * checkpointing: LSN bookkeeping, covered-segment retirement, recovery
//    from checkpoint + tail rather than the full history;
//  * segment rotation and recovery across segment boundaries;
//  * every fsync policy recovers (kill -9 semantics: the page cache lives);
//  * recovery edge cases: empty journal, exactly one torn record, checkpoint
//    LSN past the journal end (stale snapshot + lost journal), and
//    double-recovery idempotence, and the refusal to Recover through a
//    journal object that has appended since Open (its tail is stale);
//  * fail-stop degradation under injected wal.append / wal.fsync / wal.rotate
//    faults: status() goes sticky-broken, serving continues, and the durable
//    prefix still recovers;
//  * corruption robustness: truncations and bit flips of segment and
//    checkpoint files fail with a clean Status — this file runs under the
//    ASan/UBSan CI job, which is the real assertion (mirrors persist_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <string>
#include <utility>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/fault/fault.hpp"
#include "rs/stats/rng.hpp"
#include "rs/wal/wal.hpp"

namespace rs::wal {
namespace {

using api::ScalerFleet;

// ---------------------------------------------------------------------------
// Fixtures: the same small sinusoidal workload the fault tests train on, and
// a deterministic step-driven serving session (observe every tenant, then
// PlanAll) whose actions are fingerprinted as IEEE-754 bit patterns.
// ---------------------------------------------------------------------------

constexpr double kPeriodS = 600.0;
constexpr double kDt = 30.0;

workload::Trace MakeTrace(std::uint64_t seed, double horizon, double qps) {
  std::vector<double> rates;
  for (double t = 0.5 * kDt; t < horizon; t += kDt) {
    const double phase = std::fmod(t, kPeriodS) / kPeriodS;
    rates.push_back(qps * (1.0 + 0.4 * std::sin(2.0 * M_PI * phase)));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, kDt);
  stats::Rng rng(seed);
  return *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
}

api::Scaler BuildScaler(const char* spec_string) {
  static const workload::Trace train = MakeTrace(61, 4.0 * kPeriodS, 0.5);
  auto spec = api::ParseStrategySpec(spec_string);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto scaler = api::ScalerBuilder()
                    .WithTrace(train)
                    .WithBinWidth(kDt)
                    .WithForecastHorizon(kPeriodS)
                    .WithStrategy(*spec)
                    .WithPlanningInterval(2.0)
                    .WithMcSamples(40)
                    .Build();
  EXPECT_TRUE(scaler.ok()) << scaler.status().ToString();
  return std::move(scaler).ValueOrDie();
}

const std::vector<std::string>& Tenants() {
  static const std::vector<std::string> tenants = {"svc-a", "svc-b"};
  return tenants;
}

void RegisterTenants(ScalerFleet* fleet) {
  ASSERT_TRUE(fleet->Register("svc-a", BuildScaler("backup_pool")).ok());
  ASSERT_TRUE(
      fleet->Register("svc-b", BuildScaler("robust_hp:target=0.9")).ok());
}

std::string Fingerprint(const sim::ScalingAction& action) {
  std::ostringstream out;
  out << action.deletions;
  for (const double t : action.creation_times) {
    out << ',' << std::bit_cast<std::uint64_t>(t);
  }
  return std::move(out).str();
}

/// Serves steps [first, last]: every tenant observes one arrival, then one
/// PlanAll batch drains. Returns one fingerprint per (step, tenant).
std::vector<std::string> ServeSteps(ScalerFleet* fleet, int first, int last) {
  std::vector<std::string> out;
  for (int step = first; step <= last; ++step) {
    const double now = 2.0 * step;
    for (std::size_t i = 0; i < Tenants().size(); ++i) {
      EXPECT_TRUE(
          fleet->Observe(Tenants()[i], now - 1.0 + 0.01 * static_cast<double>(i))
              .ok());
    }
    for (const auto& plan : fleet->PlanAll(now)) {
      EXPECT_TRUE(plan.status.ok())
          << plan.tenant << ": " << plan.status.ToString();
      out.push_back(plan.tenant + "=" + Fingerprint(plan.action));
    }
  }
  return out;
}

std::string TempDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "rs_wal_test_" + name;
  // Tests re-run: start from an empty directory.
  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
  return dir;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 &&
        name.size() > 6 && name.substr(name.size() - 6) == ".rswal") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

/// Runs a journaled session that "crashes" (drops fleet + journal with no
/// shutdown, no detach, no checkpoint-at-exit) after `crash_step`, recovers
/// with `recover_workers`, and serves through `last_step`. Returns the
/// post-crash fingerprints.
std::vector<std::string> CrashAndContinue(const std::string& dir,
                                          const JournalPolicy& policy,
                                          int crash_step, int last_step,
                                          std::size_t recover_workers,
                                          bool checkpoint_midway = false) {
  {
    FleetJournal journal;
    EXPECT_TRUE(journal.Open(dir, policy).ok());
    ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    EXPECT_TRUE(EnableJournal(&fleet, &journal).ok());
    ServeSteps(&fleet, 1, crash_step / 2);
    if (checkpoint_midway) {
      EXPECT_TRUE(journal.Checkpoint("midway").ok());
    }
    ServeSteps(&fleet, crash_step / 2 + 1, crash_step);
    EXPECT_TRUE(journal.status().ok()) << journal.status().ToString();
    // Crash: both objects die here without Detach or Checkpoint.
  }
  FleetJournal journal;
  EXPECT_TRUE(journal.Open(dir, policy).ok());
  RecoverOptions options;
  options.worker_threads = recover_workers;
  RecoveryReport report;
  auto fleet = journal.Recover(options, &report);
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  const std::uint64_t lsn_before_attach = journal.last_lsn();
  EXPECT_TRUE(journal.Attach(&*fleet).ok());
  EXPECT_EQ(journal.last_lsn(), lsn_before_attach)
      << "re-attaching a recovered fleet must journal nothing twice";
  auto out = ServeSteps(&*fleet, crash_step + 1, last_step);
  journal.Detach();
  return out;
}

// ---------------------------------------------------------------------------
// Zero-loss continuation: the headline guarantee.
// ---------------------------------------------------------------------------

TEST(WalRecoveryTest, CrashedSessionContinuesByteIdenticallyAcrossWorkers) {
  // Uninterrupted control: one fleet serves steps 1..30 in a single life.
  ScalerFleet control(0);
  RegisterTenants(&control);
  ServeSteps(&control, 1, 20);
  const auto control_tail = ServeSteps(&control, 21, 30);

  for (const std::size_t workers : {std::size_t{0}, std::size_t{1},
                                    std::size_t{8}}) {
    const std::string dir =
        TempDir(("continue_w" + std::to_string(workers)).c_str());
    const auto recovered_tail =
        CrashAndContinue(dir, JournalPolicy{}, /*crash_step=*/20,
                         /*last_step=*/30, workers);
    EXPECT_EQ(recovered_tail, control_tail) << workers << " workers";
    std::filesystem::remove_all(dir);
  }
}

TEST(WalRecoveryTest, CheckpointPlusTailContinuesByteIdentically) {
  ScalerFleet control(0);
  RegisterTenants(&control);
  ServeSteps(&control, 1, 20);
  const auto control_tail = ServeSteps(&control, 21, 30);

  const std::string dir = TempDir("checkpointed");
  const auto recovered_tail =
      CrashAndContinue(dir, JournalPolicy{}, /*crash_step=*/20,
                       /*last_step=*/30, /*recover_workers=*/0,
                       /*checkpoint_midway=*/true);
  EXPECT_EQ(recovered_tail, control_tail);
  std::filesystem::remove_all(dir);
}

TEST(WalRecoveryTest, EveryFsyncPolicyRecoversAfterProcessCrash) {
  // kill -9 semantics: the OS page cache survives the process, so even
  // FsyncPolicy::kNone loses nothing here (power loss is what it trades).
  ScalerFleet control(0);
  RegisterTenants(&control);
  ServeSteps(&control, 1, 10);
  const auto control_tail = ServeSteps(&control, 11, 16);

  for (const FsyncPolicy fsync :
       {FsyncPolicy::kEveryRecord, FsyncPolicy::kEveryN, FsyncPolicy::kEveryT,
        FsyncPolicy::kNone}) {
    JournalPolicy policy;
    policy.fsync = fsync;
    policy.fsync_every_n = 4;
    const std::string dir = TempDir(
        (std::string("policy_") + FsyncPolicyName(fsync)).c_str());
    const auto recovered_tail = CrashAndContinue(dir, policy, /*crash_step=*/10,
                                                 /*last_step=*/16,
                                                 /*recover_workers=*/0);
    EXPECT_EQ(recovered_tail, control_tail) << FsyncPolicyName(fsync);
    std::filesystem::remove_all(dir);
  }
}

TEST(WalRecoveryTest, RotatedSegmentsRecoverAndCheckpointRetiresThem) {
  ScalerFleet control(0);
  RegisterTenants(&control);
  ServeSteps(&control, 1, 12);
  const auto control_tail = ServeSteps(&control, 13, 18);

  JournalPolicy policy;
  policy.segment_bytes = 512;  // Tiny: every few events rotate.
  const std::string dir = TempDir("rotation");
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(dir, policy).ok());
    ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    ASSERT_TRUE(EnableJournal(&fleet, &journal).ok());
    ServeSteps(&fleet, 1, 12);
    ASSERT_TRUE(journal.status().ok()) << journal.status().ToString();
    ASSERT_GT(SegmentFiles(dir).size(), 2u)
        << "the session must actually rotate";

    const std::size_t segments_before = SegmentFiles(dir).size();
    ASSERT_TRUE(journal.Checkpoint("post-rotation").ok());
    EXPECT_LT(SegmentFiles(dir).size(), segments_before)
        << "covered segments retire at the checkpoint";
    // Crash here (no detach).
  }
  FleetJournal journal;
  ASSERT_TRUE(journal.Open(dir, policy).ok());
  EXPECT_TRUE(journal.open_report().had_checkpoint);
  auto fleet = journal.Recover();
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ASSERT_TRUE(journal.Attach(&*fleet).ok());
  EXPECT_EQ(ServeSteps(&*fleet, 13, 18), control_tail);
  journal.Detach();
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Recovery edge cases.
// ---------------------------------------------------------------------------

TEST(WalRecoveryTest, EmptyJournalRecoversAnEmptyFleet) {
  const std::string dir = TempDir("empty");
  FleetJournal journal;
  ASSERT_TRUE(journal.Open(dir).ok());
  EXPECT_EQ(journal.open_report().segments, 1u) << "a fresh active segment";
  EXPECT_EQ(journal.open_report().last_lsn, 0u);
  EXPECT_FALSE(journal.open_report().had_checkpoint);
  EXPECT_EQ(journal.open_report().tail_events, 0u);
  RecoveryReport report;
  auto fleet = journal.Recover({}, &report);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_EQ(fleet->size(), 0u);
  EXPECT_FALSE(report.had_checkpoint);
  EXPECT_EQ(report.events_replayed, 0u);
  std::filesystem::remove_all(dir);
}

TEST(WalRecoveryTest, ExactlyOneTornRecordIsTruncatedAndTheRestReplays) {
  const std::string dir = TempDir("torn");
  std::uint64_t durable_lsn = 0;
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    ASSERT_TRUE(EnableJournal(&fleet, &journal).ok());
    ServeSteps(&fleet, 1, 6);
    ASSERT_TRUE(journal.status().ok()) << journal.status().ToString();
    durable_lsn = journal.last_lsn();
  }
  // Tear the last record: cut a few bytes off the (single) segment, exactly
  // what a crash mid-append leaves behind.
  const auto segments = SegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  const std::string bytes = Slurp(segments[0]);
  ASSERT_GT(bytes.size(), 5u);
  Spit(segments[0], bytes.substr(0, bytes.size() - 5));

  FleetJournal journal;
  ASSERT_TRUE(journal.Open(dir).ok());
  EXPECT_GT(journal.open_report().truncated_bytes, 0u);
  EXPECT_EQ(journal.open_report().last_lsn, durable_lsn - 1)
      << "exactly the torn record is lost";
  auto fleet = journal.Recover();
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_EQ(fleet->size(), 2u);
  // The truncation is durable: a second open sees a clean journal.
  FleetJournal again;
  ASSERT_TRUE(again.Open(dir).ok());
  EXPECT_EQ(again.open_report().truncated_bytes, 0u);
  EXPECT_EQ(again.open_report().last_lsn, durable_lsn - 1);
  std::filesystem::remove_all(dir);
}

TEST(WalRecoveryTest, CheckpointPastJournalEndIsAStaleSnapshotError) {
  const std::string dir = TempDir("stale");
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    ASSERT_TRUE(EnableJournal(&fleet, &journal).ok());
    ServeSteps(&fleet, 1, 4);
    ASSERT_TRUE(journal.Checkpoint().ok());
    ASSERT_GT(journal.checkpoint_lsn(), 0u);
  }
  // Lose the journal body but keep the checkpoint: truncate the segment to
  // its bare header. No crash can do this (the checkpoint fsyncs the
  // journal first), so Open must refuse rather than silently lose events.
  const auto segments = SegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  Spit(segments[0], Slurp(segments[0]).substr(0, 16));

  FleetJournal journal;
  const Status st = journal.Open(dir);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("stale snapshot"), std::string::npos)
      << st.ToString();
  std::filesystem::remove_all(dir);
}

TEST(WalRecoveryTest, DoubleRecoveryIsIdempotent) {
  const std::string dir = TempDir("double");
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    ASSERT_TRUE(EnableJournal(&fleet, &journal).ok());
    ServeSteps(&fleet, 1, 8);
    ASSERT_TRUE(journal.status().ok()) << journal.status().ToString();
  }
  // Two independent recoveries of the same journal (the first is dropped
  // un-attached, as an operator inspecting a crashed host would) serve the
  // continuation identically — recovery mutates nothing it didn't repair.
  std::vector<std::string> first;
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    auto fleet = journal.Recover();
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    first = ServeSteps(&*fleet, 9, 14);  // Un-journaled continuation probe.
  }
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    RecoveryReport report;
    auto fleet = journal.Recover({}, &report);
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    EXPECT_GT(report.events_replayed, 0u);
    EXPECT_EQ(ServeSteps(&*fleet, 9, 14), first);
  }
  std::filesystem::remove_all(dir);
}

TEST(WalRecoveryTest, RecoverAfterAppendsIsRefusedUntilReopen) {
  const std::string dir = TempDir("recover_after_append");
  FleetJournal journal;
  ASSERT_TRUE(journal.Open(dir).ok());
  {
    ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    ASSERT_TRUE(EnableJournal(&fleet, &journal).ok());
    ServeSteps(&fleet, 1, 4);
    ASSERT_TRUE(journal.status().ok()) << journal.status().ToString();
    journal.Detach();
  }
  // The tail Recover replays was frozen at Open() time; recovering through
  // this object now would silently drop every event appended above, so the
  // journal must refuse rather than return a fleet missing durable events.
  auto stale = journal.Recover();
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.status().message().find("appended since Open"),
            std::string::npos)
      << stale.status().ToString();
  // A fresh journal object scans the directory anew and sees everything.
  FleetJournal fresh;
  ASSERT_TRUE(fresh.Open(dir).ok());
  RecoveryReport report;
  auto fleet = fresh.Recover({}, &report);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_GT(report.events_replayed, 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fail-stop degradation under injected journal faults.
// ---------------------------------------------------------------------------

fault::FaultRule WalFaultRule(const char* site, std::uint64_t hit,
                              std::uint64_t period = 0) {
  fault::FaultRule rule;
  rule.site = site;
  rule.hit = hit;
  rule.period = period;
  rule.fault.code = StatusCode::kIoError;
  return rule;
}

TEST(WalFaultTest, TransientAppendFaultIsRetriedInvisibly) {
  const std::string dir = TempDir("transient");
  FleetJournal journal;
  ASSERT_TRUE(journal.Open(dir).ok());
  ScalerFleet fleet(0);
  RegisterTenants(&fleet);
  fault::FaultPlan plan;
  plan.rules.push_back(WalFaultRule("wal.append", /*hit=*/3));  // One miss.
  fault::ScopedFaultInjection inject(std::move(plan));
  ASSERT_TRUE(EnableJournal(&fleet, &journal).ok());
  ServeSteps(&fleet, 1, 4);
  EXPECT_TRUE(journal.status().ok()) << journal.status().ToString();
  EXPECT_EQ(inject.total_fired(), 1u);
  journal.Detach();
  std::filesystem::remove_all(dir);
}

TEST(WalFaultTest, ExhaustedAppendRetriesFailStopButServingContinues) {
  const std::string dir = TempDir("failstop");
  std::uint64_t durable_lsn = 0;
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(dir).ok());
    ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    ASSERT_TRUE(EnableJournal(&fleet, &journal).ok());
    ServeSteps(&fleet, 1, 4);
    ASSERT_TRUE(journal.status().ok());
    durable_lsn = journal.last_lsn();

    fault::FaultPlan plan;
    plan.rules.push_back(
        WalFaultRule("wal.append", /*hit=*/1, /*period=*/1));  // Every hit.
    fault::ScopedFaultInjection inject(std::move(plan));
    const auto before = ServeSteps(&fleet, 5, 6);
    EXPECT_FALSE(journal.status().ok()) << "journal must fail-stop";
    EXPECT_EQ(journal.status().code(), StatusCode::kIoError);
    EXPECT_NE(journal.status().message().find("fail-stop"), std::string::npos);
    EXPECT_EQ(journal.last_lsn(), durable_lsn) << "no partial appends count";
    EXPECT_EQ(before.size(), 2 * Tenants().size())
        << "serving continues unjournaled";
    // Checkpoint and Sync surface the sticky error rather than lying.
    EXPECT_FALSE(journal.Checkpoint().ok());
    journal.Detach();
  }
  // The durable prefix (steps 1..4) still recovers cleanly.
  FleetJournal journal;
  ASSERT_TRUE(journal.Open(dir).ok());
  EXPECT_EQ(journal.open_report().last_lsn, durable_lsn);
  auto fleet = journal.Recover();
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_EQ(fleet->size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(WalFaultTest, RotationFaultFailStopsAndDurablePrefixRecovers) {
  JournalPolicy policy;
  policy.segment_bytes = 512;
  const std::string dir = TempDir("rotfault");
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(dir, policy).ok());
    ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    fault::FaultPlan plan;
    plan.rules.push_back(
        WalFaultRule("wal.rotate", /*hit=*/1, /*period=*/1));
    fault::ScopedFaultInjection inject(std::move(plan));
    ASSERT_TRUE(EnableJournal(&fleet, &journal).ok());
    ServeSteps(&fleet, 1, 12);  // Enough to need a rotation.
    EXPECT_FALSE(journal.status().ok()) << "rotation must fail-stop";
    journal.Detach();
  }
  FleetJournal journal;
  ASSERT_TRUE(journal.Open(dir, policy).ok());
  auto fleet = journal.Recover();
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Corruption robustness (runs under ASan/UBSan in CI).
// ---------------------------------------------------------------------------

/// A small journal directory with one checkpoint and a multi-record segment,
/// built once and copied per mutation probe.
struct CorruptionFixture {
  std::string dir;
  std::string segment_bytes;
  std::string checkpoint_bytes;
};

const CorruptionFixture& Fixture() {
  static const CorruptionFixture fixture = [] {
    CorruptionFixture f;
    f.dir = TempDir("fuzz_base");
    FleetJournal journal;
    EXPECT_TRUE(journal.Open(f.dir).ok());
    ScalerFleet fleet(0);
    EXPECT_TRUE(fleet.Register("svc-a", BuildScaler("backup_pool")).ok());
    EXPECT_TRUE(
        fleet.Register("svc-b", BuildScaler("robust_hp:target=0.9")).ok());
    EXPECT_TRUE(EnableJournal(&fleet, &journal).ok());
    for (int step = 1; step <= 6; ++step) {
      const double now = 2.0 * step;
      EXPECT_TRUE(fleet.Observe("svc-a", now - 1.0).ok());
      EXPECT_TRUE(fleet.Observe("svc-b", now - 0.99).ok());
      for (const auto& plan : fleet.PlanAll(now)) {
        EXPECT_TRUE(plan.status.ok());
      }
    }
    EXPECT_TRUE(journal.Checkpoint("fuzz fixture").ok());
    // A few post-checkpoint events so recovery has a tail to decode.
    EXPECT_TRUE(fleet.Observe("svc-a", 13.0).ok());
    for (const auto& plan : fleet.PlanAll(14.0)) {
      EXPECT_TRUE(plan.status.ok());
    }
    journal.Detach();
    const auto segments = SegmentFiles(f.dir);
    EXPECT_EQ(segments.size(), 1u);
    f.segment_bytes = Slurp(segments[0]);
    f.checkpoint_bytes = Slurp(f.dir + "/checkpoint.rsnp");
    return f;
  }();
  return fixture;
}

TEST(WalCorruptionTest, EveryProbedSegmentTruncationFailsCleanly) {
  const std::string& bytes = Fixture().segment_bytes;
  ASSERT_GT(bytes.size(), 64u);
  const std::string dir = TempDir("fuzz_trunc");
  const std::string path = dir + "/wal-0000000000000001.rswal";
  std::filesystem::create_directories(dir);
  // Every prefix length in a stride-sampled sweep (plus the boundary
  // neighborhood): InspectSegmentFile and a full Open must return a Status
  // or a torn-tail report — never crash or read out of bounds.
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 97);
  for (std::size_t len = 0; len <= bytes.size(); len += stride) {
    Spit(path, bytes.substr(0, len));
    auto inspected = InspectSegmentFile(path);
    if (inspected.ok()) {
      EXPECT_LE(inspected->torn_tail_bytes, len);
    }
    FleetJournal journal;
    (void)journal.Open(dir);  // Any Status is fine; crashing is not.
    std::filesystem::remove(dir + "/checkpoint.rsnp");
  }
  std::filesystem::remove_all(dir);
}

TEST(WalCorruptionTest, EveryProbedSegmentBitFlipFailsCleanly) {
  const std::string& bytes = Fixture().segment_bytes;
  const std::string dir = TempDir("fuzz_flip");
  const std::string path = dir + "/wal-0000000000000001.rswal";
  std::filesystem::create_directories(dir);
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 97);
  for (std::size_t pos = 0; pos < bytes.size(); pos += stride) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ mask);
      Spit(path, mutated);
      auto inspected = InspectSegmentFile(path);
      // A flip in the torn-tail region may legally truncate; a flip in a
      // record body must be caught by the frame CRC. Either way: a clean
      // result, never UB.
      if (inspected.ok()) {
        EXPECT_LE(inspected->records, 64u);
      }
      FleetJournal journal;
      (void)journal.Open(dir);
      std::filesystem::remove(dir + "/checkpoint.rsnp");
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(WalCorruptionTest, CheckpointTruncationsAndFlipsFailCleanly) {
  const CorruptionFixture& f = Fixture();
  const std::string dir = TempDir("fuzz_ckpt");
  std::filesystem::create_directories(dir);
  const std::string segment = dir + "/wal-0000000000000001.rswal";
  const std::string checkpoint = dir + "/checkpoint.rsnp";
  const std::size_t stride =
      std::max<std::size_t>(1, f.checkpoint_bytes.size() / 61);
  for (std::size_t len = 0; len < f.checkpoint_bytes.size(); len += stride) {
    Spit(segment, f.segment_bytes);
    Spit(checkpoint, f.checkpoint_bytes.substr(0, len));
    FleetJournal journal;
    const Status st = journal.Open(dir);
    EXPECT_FALSE(st.ok()) << "truncated checkpoint at " << len;
  }
  for (std::size_t pos = 0; pos < f.checkpoint_bytes.size(); pos += stride) {
    std::string mutated = f.checkpoint_bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    Spit(segment, f.segment_bytes);
    Spit(checkpoint, mutated);
    FleetJournal journal;
    // The container CRC catches every flip; recovery never sees garbage.
    EXPECT_FALSE(journal.Open(dir).ok()) << "flipped checkpoint at " << pos;
  }
  std::filesystem::remove_all(dir);
}

TEST(WalCorruptionTest, MidJournalCorruptionIsAHardErrorNotATornTail) {
  JournalPolicy policy;
  policy.segment_bytes = 512;
  const std::string dir = TempDir("midfile");
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.Open(dir, policy).ok());
    ScalerFleet fleet(0);
    RegisterTenants(&fleet);
    ASSERT_TRUE(EnableJournal(&fleet, &journal).ok());
    ServeSteps(&fleet, 1, 12);
    ASSERT_TRUE(journal.status().ok());
    journal.Detach();
  }
  const auto segments = SegmentFiles(dir);
  ASSERT_GT(segments.size(), 2u);
  // Flip one byte inside a record of the FIRST segment: that can never be a
  // torn tail (crashes only tear the journal's end), so Open must refuse.
  std::string bytes = Slurp(segments[0]);
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  Spit(segments[0], bytes);
  FleetJournal journal;
  const Status st = journal.Open(dir);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cannot be a torn tail"), std::string::npos)
      << st.ToString();
  std::filesystem::remove_all(dir);
}

TEST(WalInspectTest, ReportsFramesAndTornTail) {
  const CorruptionFixture& f = Fixture();
  const std::string dir = TempDir("inspect");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/wal-0000000000000001.rswal";
  Spit(path, f.segment_bytes);
  auto whole = InspectSegmentFile(path);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  EXPECT_EQ(whole->first_lsn, 1u);
  EXPECT_GT(whole->records, 10u);
  EXPECT_EQ(whole->last_lsn, whole->records);
  EXPECT_EQ(whole->torn_tail_bytes, 0u);
  EXPECT_EQ(whole->bytes, f.segment_bytes.size());

  Spit(path, f.segment_bytes.substr(0, f.segment_bytes.size() - 3));
  auto torn = InspectSegmentFile(path);
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_EQ(torn->records, whole->records - 1);
  EXPECT_GT(torn->torn_tail_bytes, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rs::wal
