// Tests for the companion strategies: the Section VI-C naive batch
// strawman, the uncertainty-blind mean-rate strawman, and the online
// refitting wrapper.
#include <gtest/gtest.h>

#include <vector>

#include "rs/core/extensions.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/stats/rng.hpp"
#include "rs/workload/nhpp_sampler.hpp"
#include "rs/workload/synthetic.hpp"

namespace rs::core {
namespace {

workload::PiecewiseConstantIntensity ConstantIntensity(double rate,
                                                       double horizon) {
  return *workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(100, rate), horizon / 100.0);
}

workload::Trace PoissonTrace(double rate, double horizon, std::uint64_t seed) {
  stats::Rng rng(seed);
  auto intensity = ConstantIntensity(rate, horizon);
  return *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(20.0));
}

sim::EngineOptions DetPending(double tau) {
  sim::EngineOptions opts;
  opts.pending = stats::DurationDistribution::Deterministic(tau);
  return opts;
}

TEST(NaiveBatchTest, BatchBoundariesCauseMisses) {
  const double rate = 0.5, horizon = 20000.0, tau = 13.0;
  auto trace = PoissonTrace(rate, horizon, 1);
  NaiveBatchOptions opts;
  opts.alpha = 0.1;
  opts.batch = 20;
  NaiveBatchScaler naive(ConstantIntensity(rate, horizon),
                         stats::DurationDistribution::Deterministic(tau),
                         opts);
  auto result = sim::Simulate(trace, &naive, DetPending(tau));
  ASSERT_TRUE(result.ok());
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  // The first queries of each batch have no chance (their x* is infeasible
  // at planning time): the achieved hit rate must fall visibly short of the
  // 0.9 target — the motivation for the κ threshold.
  EXPECT_LT(m->hit_rate, 0.85);
  EXPECT_GT(m->hit_rate, 0.2);  // But it is not a pure reactive either.
}

TEST(NaiveBatchTest, PlansInBatchMultiples) {
  const double rate = 0.5, horizon = 5000.0;
  auto trace = PoissonTrace(rate, horizon, 2);
  NaiveBatchOptions opts;
  opts.batch = 25;
  NaiveBatchScaler naive(ConstantIntensity(rate, horizon),
                         stats::DurationDistribution::Deterministic(13.0),
                         opts);
  auto result = sim::Simulate(trace, &naive, DetPending(13.0));
  ASSERT_TRUE(result.ok());
  // Cold starts cancel scheduled creations, so total instances stays within
  // one batch of the query count.
  EXPECT_LE(result->instances.size(), trace.size() + opts.batch);
}

TEST(MeanRateTest, UncertaintyBlindSchedulingUnderDelivers) {
  const double rate = 0.5, horizon = 20000.0, tau = 13.0;
  auto trace = PoissonTrace(rate, horizon, 3);
  MeanRateOptions opts;
  opts.depth = 20;
  opts.planning_interval = 2.0;
  MeanRateScaler mean_rate(ConstantIntensity(rate, horizon),
                           stats::DurationDistribution::Deterministic(tau),
                           opts);
  auto result = sim::Simulate(trace, &mean_rate, DetPending(tau));
  ASSERT_TRUE(result.ok());
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  // Scheduling at the mean arrival time gives roughly coin-flip hits for
  // memoryless traffic — nowhere near a 0.9-style guarantee.
  EXPECT_GT(m->hit_rate, 0.2);
  EXPECT_LT(m->hit_rate, 0.8);
}

TEST(RefittingPolicyTest, RefitsOnSchedule) {
  const double rate = 0.3;
  auto train = PoissonTrace(rate, 20000.0, 4);
  auto test = PoissonTrace(rate, 8000.0, 5);

  RefittingOptions opts;
  opts.refit_interval = 2000.0;
  opts.pipeline.dt = 100.0;
  opts.pipeline.forecast_horizon = test.horizon();
  opts.scaler.variant = ScalerVariant::kHittingProbability;
  opts.scaler.alpha = 0.1;
  opts.scaler.mc_samples = 200;
  opts.scaler.planning_interval = 5.0;
  RefittingPolicy policy(train, stats::DurationDistribution::Deterministic(13.0),
                         opts);
  auto result = sim::Simulate(test, &policy, DetPending(13.0));
  ASSERT_TRUE(result.ok());
  // Initial fit + one refit every 2000 s over an 8000 s replay.
  EXPECT_GE(policy.refit_count(), 4u);
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->hit_rate, 0.75);  // Still delivers near the 0.9 target.
}

TEST(RefittingPolicyTest, TracksDriftBetterThanStaticForecast) {
  // Traffic doubles at test time: a static forecast trained on the old rate
  // under-provisions; the refitting policy adapts.
  const double old_rate = 0.2, new_rate = 0.8, tau = 13.0;
  auto train = PoissonTrace(old_rate, 30000.0, 6);
  auto test = PoissonTrace(new_rate, 15000.0, 7);

  // Static policy with the stale constant forecast.
  SequentialScalerOptions static_opts;
  static_opts.variant = ScalerVariant::kHittingProbability;
  static_opts.alpha = 0.1;
  static_opts.mc_samples = 200;
  static_opts.planning_interval = 5.0;
  RobustScalerPolicy static_policy(
      ConstantIntensity(old_rate, test.horizon()),
      stats::DurationDistribution::Deterministic(tau), static_opts);
  auto static_result = sim::Simulate(test, &static_policy, DetPending(tau));
  ASSERT_TRUE(static_result.ok());
  auto static_metrics = sim::ComputeMetrics(*static_result);
  ASSERT_TRUE(static_metrics.ok());

  RefittingOptions refit_opts;
  refit_opts.refit_interval = 1800.0;
  refit_opts.pipeline.dt = 100.0;
  refit_opts.pipeline.forecast_horizon = test.horizon();
  refit_opts.scaler = static_opts;
  RefittingPolicy refit_policy(
      train, stats::DurationDistribution::Deterministic(tau), refit_opts);
  auto refit_result = sim::Simulate(test, &refit_policy, DetPending(tau));
  ASSERT_TRUE(refit_result.ok());
  auto refit_metrics = sim::ComputeMetrics(*refit_result);
  ASSERT_TRUE(refit_metrics.ok());

  EXPECT_GT(refit_metrics->hit_rate, static_metrics->hit_rate + 0.03);
}

TEST(ExtensionsTest, NamesAreStable) {
  auto intensity = ConstantIntensity(1.0, 100.0);
  auto pending = stats::DurationDistribution::Deterministic(1.0);
  EXPECT_STREQ(NaiveBatchScaler(intensity, pending, {}).name(), "NaiveBatch");
  EXPECT_STREQ(MeanRateScaler(intensity, pending, {}).name(), "MeanRate");
}

}  // namespace
}  // namespace rs::core
