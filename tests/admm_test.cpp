// Tests for the ADMM NHPP trainer (Algorithm 2): recovery of known
// intensities, loss decrease, periodicity-penalty benefits (Table III
// mechanism), and Cholesky-vs-PCG solver agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rs/core/admm.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/stats/empirical.hpp"
#include "rs/stats/rng.hpp"

namespace rs::core {
namespace {

/// Poisson counts from a given per-second intensity sequence.
std::vector<double> PoissonCounts(const std::vector<double>& rates, double dt,
                                  std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> counts(rates.size());
  for (std::size_t t = 0; t < rates.size(); ++t) {
    counts[t] =
        static_cast<double>(stats::SamplePoisson(&rng, rates[t] * dt));
  }
  return counts;
}

TEST(AdmmTest, RecoversConstantIntensity) {
  const double rate = 2.0, dt = 60.0;
  auto counts = PoissonCounts(std::vector<double>(200, rate), dt, 1);
  NhppConfig config;
  config.dt = dt;
  config.beta1 = 30.0;  // Strong smoothing: the truth is constant.
  config.beta2 = 0.0;
  AdmmInfo info;
  auto model = FitNhpp(counts, config, {}, &info);
  ASSERT_TRUE(model.ok());
  const auto intensity = model->Intensity();
  double mean = 0.0;
  for (double lambda : intensity) {
    EXPECT_NEAR(lambda, rate, 0.35);  // Per-bin Poisson noise band.
    mean += lambda;
  }
  mean /= static_cast<double>(intensity.size());
  EXPECT_NEAR(mean, rate, 0.1);
}

TEST(AdmmTest, RecoversPiecewiseTrend) {
  // Intensity doubles halfway; the fit should follow both levels.
  std::vector<double> rates(300, 1.0);
  for (std::size_t t = 150; t < 300; ++t) rates[t] = 3.0;
  auto counts = PoissonCounts(rates, 60.0, 2);
  NhppConfig config;
  config.dt = 60.0;
  config.beta1 = 2.0;
  auto model = FitNhpp(counts, config);
  ASSERT_TRUE(model.ok());
  const auto intensity = model->Intensity();
  EXPECT_NEAR(intensity[50], 1.0, 0.3);
  EXPECT_NEAR(intensity[250], 3.0, 0.6);
}

TEST(AdmmTest, LossNotWorseThanInitialGuess) {
  std::vector<double> rates(150);
  for (std::size_t t = 0; t < rates.size(); ++t) {
    rates[t] = 1.5 + std::sin(static_cast<double>(t) / 10.0);
  }
  auto counts = PoissonCounts(rates, 30.0, 3);
  NhppConfig config;
  config.dt = 30.0;
  config.beta1 = 3.0;
  config.beta2 = 10.0;
  config.period = 63;  // 2*pi*10 ≈ 63.
  auto model = FitNhpp(counts, config);
  ASSERT_TRUE(model.ok());
  // Reference: the raw empirical-rate model (the ADMM starting point).
  std::vector<double> raw(counts.size());
  for (std::size_t t = 0; t < counts.size(); ++t) {
    raw[t] = std::log((counts[t] + 0.5) / config.dt);
  }
  NhppModel raw_model(config, raw);
  auto fitted_loss = model->Loss(counts);
  auto raw_loss = raw_model.Loss(counts);
  ASSERT_TRUE(fitted_loss.ok() && raw_loss.ok());
  EXPECT_LE(*fitted_loss, *raw_loss + 1e-6);
}

TEST(AdmmTest, ConvergesOnSmoothData) {
  auto counts = PoissonCounts(std::vector<double>(100, 5.0), 10.0, 4);
  NhppConfig config;
  config.dt = 10.0;
  config.beta1 = 1.0;
  AdmmOptions options;
  options.max_iterations = 500;
  AdmmInfo info;
  auto model = FitNhpp(counts, config, options, &info);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(info.converged);
  EXPECT_LT(info.primal_residual, 1e-5);
}

TEST(AdmmTest, PeriodicityPenaltyImprovesAccuracy) {
  // The Table III mechanism: periodic ground truth + penalty → lower MSE.
  const std::size_t period = 48, cycles = 8;
  std::vector<double> rates(period * cycles);
  for (std::size_t t = 0; t < rates.size(); ++t) {
    const double phase = 2.0 * M_PI * static_cast<double>(t % period) /
                         static_cast<double>(period);
    rates[t] = 1.0 + 0.8 * std::sin(phase);
  }
  auto counts = PoissonCounts(rates, 60.0, 5);

  NhppConfig with_reg;
  with_reg.dt = 60.0;
  with_reg.beta1 = 5.0;
  with_reg.beta2 = 100.0;
  with_reg.period = period;
  NhppConfig without_reg = with_reg;
  without_reg.beta2 = 0.0;
  without_reg.period = 0;

  auto model_with = FitNhpp(counts, with_reg);
  auto model_without = FitNhpp(counts, without_reg);
  ASSERT_TRUE(model_with.ok() && model_without.ok());
  const double mse_with =
      stats::MeanSquaredError(model_with->Intensity(), rates);
  const double mse_without =
      stats::MeanSquaredError(model_without->Intensity(), rates);
  EXPECT_LT(mse_with, mse_without);
}

TEST(AdmmTest, PcgSolverMatchesCholesky) {
  std::vector<double> rates(120);
  for (std::size_t t = 0; t < rates.size(); ++t) {
    rates[t] = 2.0 + std::cos(static_cast<double>(t) / 8.0);
  }
  auto counts = PoissonCounts(rates, 30.0, 6);
  NhppConfig config;
  config.dt = 30.0;
  config.beta1 = 4.0;
  config.beta2 = 20.0;
  config.period = 50;

  AdmmOptions chol_opts;
  chol_opts.solver = RSubproblemSolver::kBandedCholesky;
  AdmmOptions pcg_opts;
  pcg_opts.solver = RSubproblemSolver::kPcg;

  auto model_chol = FitNhpp(counts, config, chol_opts);
  auto model_pcg = FitNhpp(counts, config, pcg_opts);
  ASSERT_TRUE(model_chol.ok() && model_pcg.ok());
  const auto& r1 = model_chol->log_intensity();
  const auto& r2 = model_pcg->log_intensity();
  for (std::size_t t = 0; t < r1.size(); ++t) {
    EXPECT_NEAR(r1[t], r2[t], 1e-4) << "bin " << t;
  }
}

TEST(AdmmTest, HandlesZeroCountBins) {
  std::vector<double> counts(80, 0.0);
  counts[40] = 3.0;  // Single event bin in an otherwise silent series.
  NhppConfig config;
  config.dt = 60.0;
  config.beta1 = 2.0;
  auto model = FitNhpp(counts, config);
  ASSERT_TRUE(model.ok());
  for (double r : model->log_intensity()) {
    EXPECT_TRUE(std::isfinite(r));
  }
}

TEST(AdmmTest, RejectsInvalidInputs) {
  NhppConfig config;
  EXPECT_FALSE(FitNhpp({1.0, 2.0}, config).ok());  // Too short.
  config.dt = 0.0;
  EXPECT_FALSE(FitNhpp({1.0, 2.0, 3.0}, config).ok());
  config.dt = 60.0;
  config.beta1 = -1.0;
  EXPECT_FALSE(FitNhpp({1.0, 2.0, 3.0}, config).ok());
  config.beta1 = 1.0;
  EXPECT_FALSE(FitNhpp({1.0, -2.0, 3.0}, config).ok());  // Negative count.
  AdmmOptions options;
  options.rho = 0.0;
  EXPECT_FALSE(FitNhpp({1.0, 2.0, 3.0}, config, options).ok());
}

TEST(AdmmTest, PeriodLongerThanSeriesIsDisabled) {
  auto counts = PoissonCounts(std::vector<double>(50, 1.0), 60.0, 7);
  NhppConfig config;
  config.dt = 60.0;
  config.period = 100;  // > T: must be ignored, not crash.
  auto model = FitNhpp(counts, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->config().period, 0u);
}

TEST(NhppModelTest, ToIntensityRoundTrips) {
  NhppConfig config;
  config.dt = 30.0;
  NhppModel model(config, {std::log(2.0), std::log(4.0)});
  auto intensity = model.ToIntensity();
  ASSERT_TRUE(intensity.ok());
  EXPECT_DOUBLE_EQ(intensity->Rate(10.0), 2.0);
  EXPECT_DOUBLE_EQ(intensity->Rate(40.0), 4.0);
  EXPECT_DOUBLE_EQ(intensity->dt(), 30.0);
}

TEST(NhppModelTest, LossRequiresMatchingSizes) {
  NhppConfig config;
  NhppModel model(config, {0.0, 0.0});
  EXPECT_FALSE(model.Loss({1.0}).ok());
}

}  // namespace
}  // namespace rs::core
