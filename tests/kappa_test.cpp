// Tests for the κ threshold (Eq. 8): exact vs Monte Carlo agreement and
// qualitative behavior in λ̄, τ, and α.
#include <gtest/gtest.h>

#include "rs/core/kappa.hpp"
#include "rs/stats/special_functions.hpp"

namespace rs::core {
namespace {

TEST(KappaTest, ZeroPendingTimeGivesZeroKappa) {
  // τ = 0: even the first query can always be served in time (x = ξ works),
  // so the α-quantile of γ_1/λ̄ is >= 0 and κ = 0.
  auto kappa = ComputeKappaDeterministicTau(0.1, 1.0, 0.0);
  ASSERT_TRUE(kappa.ok());
  EXPECT_EQ(*kappa, 0u);
}

TEST(KappaTest, GrowsWithLambdaBar) {
  std::size_t prev = 0;
  for (double lambda : {0.1, 1.0, 5.0, 20.0}) {
    auto kappa = ComputeKappaDeterministicTau(0.1, lambda, 13.0);
    ASSERT_TRUE(kappa.ok());
    EXPECT_GE(*kappa, prev) << "lambda " << lambda;
    prev = *kappa;
  }
  // High traffic needs a deep look-ahead: roughly λ̄·τ = 260.
  auto high = ComputeKappaDeterministicTau(0.1, 20.0, 13.0);
  ASSERT_TRUE(high.ok());
  EXPECT_GT(*high, 200u);
  EXPECT_LT(*high, 400u);
}

TEST(KappaTest, GrowsWithTau) {
  std::size_t prev = 0;
  for (double tau : {1.0, 5.0, 13.0, 60.0}) {
    auto kappa = ComputeKappaDeterministicTau(0.1, 2.0, tau);
    ASSERT_TRUE(kappa.ok());
    EXPECT_GE(*kappa, prev);
    prev = *kappa;
  }
}

TEST(KappaTest, SmallerAlphaNeedsDeeperLookahead) {
  // Smaller α (stricter QoS) makes the α-quantile smaller, so the condition
  // γ_i quantile < λ̄τ holds for more i: κ grows.
  auto strict = ComputeKappaDeterministicTau(0.01, 2.0, 13.0);
  auto loose = ComputeKappaDeterministicTau(0.5, 2.0, 13.0);
  ASSERT_TRUE(strict.ok() && loose.ok());
  EXPECT_GE(*strict, *loose);
}

TEST(KappaTest, DefinitionMatchesGammaQuantile) {
  // Verify the boundary: at κ the quantile is < λ̄τ, at κ+1 it is >= λ̄τ.
  const double alpha = 0.1, lambda = 3.0, tau = 7.0;
  auto kappa = ComputeKappaDeterministicTau(alpha, lambda, tau);
  ASSERT_TRUE(kappa.ok());
  const double threshold = lambda * tau;
  if (*kappa > 0) {
    auto q_at = stats::GammaQuantile(static_cast<double>(*kappa), 1.0, alpha);
    ASSERT_TRUE(q_at.ok());
    EXPECT_LT(*q_at, threshold);
  }
  auto q_next =
      stats::GammaQuantile(static_cast<double>(*kappa + 1), 1.0, alpha);
  ASSERT_TRUE(q_next.ok());
  EXPECT_GE(*q_next, threshold);
}

class KappaAgreementTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(KappaAgreementTest, MonteCarloAgreesWithExact) {
  const auto [alpha, lambda, tau] = GetParam();
  auto exact = ComputeKappaDeterministicTau(alpha, lambda, tau);
  ASSERT_TRUE(exact.ok());
  stats::Rng rng(99);
  auto mc = ComputeKappaMonteCarlo(
      &rng, alpha, lambda, stats::DurationDistribution::Deterministic(tau),
      20000);
  ASSERT_TRUE(mc.ok());
  // MC quantiles wobble near the boundary; allow a small relative band.
  const double tol = 2.0 + 0.1 * static_cast<double>(*exact);
  EXPECT_NEAR(static_cast<double>(*mc), static_cast<double>(*exact), tol);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KappaAgreementTest,
    ::testing::Values(std::make_tuple(0.1, 1.0, 13.0),
                      std::make_tuple(0.1, 5.0, 13.0),
                      std::make_tuple(0.05, 2.0, 5.0),
                      std::make_tuple(0.3, 0.5, 20.0)));

TEST(KappaTest, StochasticTauIncreasesKappaVersusItsMean) {
  // With Exp(13) pending times the upper tail of τ forces deeper planning
  // than a fixed τ = 13 at small α... at quantile level α the comparison
  // depends on the left tail; just check MC runs and is finite & sane.
  stats::Rng rng(5);
  auto mc = ComputeKappaMonteCarlo(
      &rng, 0.1, 2.0, stats::DurationDistribution::Exponential(13.0), 20000);
  ASSERT_TRUE(mc.ok());
  EXPECT_LT(*mc, 200u);
}

TEST(KappaTest, RejectsBadInputs) {
  EXPECT_FALSE(ComputeKappaDeterministicTau(0.0, 1.0, 1.0).ok());
  EXPECT_FALSE(ComputeKappaDeterministicTau(1.0, 1.0, 1.0).ok());
  EXPECT_FALSE(ComputeKappaDeterministicTau(0.1, 0.0, 1.0).ok());
  EXPECT_FALSE(ComputeKappaDeterministicTau(0.1, 1.0, -1.0).ok());
  stats::Rng rng(6);
  auto pending = stats::DurationDistribution::Deterministic(1.0);
  EXPECT_FALSE(ComputeKappaMonteCarlo(nullptr, 0.1, 1.0, pending).ok());
  EXPECT_FALSE(ComputeKappaMonteCarlo(&rng, 0.1, -1.0, pending).ok());
  EXPECT_FALSE(ComputeKappaMonteCarlo(&rng, 0.1, 1.0, pending, 0).ok());
}

}  // namespace
}  // namespace rs::core
