// Tests for the time-series substrate: aggregation, FFT correctness,
// ACF/periodogram, robust filters, and periodicity detection.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "rs/stats/rng.hpp"
#include "rs/timeseries/acf.hpp"
#include "rs/timeseries/aggregate.hpp"
#include "rs/timeseries/fft.hpp"
#include "rs/timeseries/periodicity.hpp"
#include "rs/timeseries/periodogram.hpp"
#include "rs/timeseries/robust_filters.hpp"

namespace rs::ts {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(AggregateTest, BinsEventsCorrectly) {
  std::vector<double> events{0.5, 1.5, 1.9, 3.2, 9.99};
  auto series = AggregateEvents(events, 0.0, 1.0, 10);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 10u);
  EXPECT_DOUBLE_EQ(series->counts[0], 1.0);
  EXPECT_DOUBLE_EQ(series->counts[1], 2.0);
  EXPECT_DOUBLE_EQ(series->counts[3], 1.0);
  EXPECT_DOUBLE_EQ(series->counts[9], 1.0);
  EXPECT_DOUBLE_EQ(series->counts[5], 0.0);
}

TEST(AggregateTest, DropsOutOfRangeEvents) {
  auto series = AggregateEvents({-1.0, 11.0, 5.0}, 0.0, 1.0, 10);
  ASSERT_TRUE(series.ok());
  double total = 0.0;
  for (double c : series->counts) total += c;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(AggregateTest, HorizonConvenienceOverload) {
  auto series = AggregateEvents({0.1, 0.2}, 0.5, 1.0);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 2u);
  EXPECT_DOUBLE_EQ(series->Qps(0), 2.0 / 0.5);
}

TEST(AggregateTest, RejectsNonPositiveDt) {
  EXPECT_FALSE(AggregateEvents({1.0}, 0.0, 0.0, 5).ok());
}

TEST(AggregateTest, ReaggregateAverages) {
  CountSeries s;
  s.dt = 1.0;
  s.counts = {1.0, 3.0, 5.0, 7.0, 9.0};
  auto agg = Reaggregate(s, 2);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->size(), 2u);
  EXPECT_DOUBLE_EQ(agg->dt, 2.0);
  EXPECT_DOUBLE_EQ(agg->counts[0], 2.0);
  EXPECT_DOUBLE_EQ(agg->counts[1], 6.0);
}

TEST(AggregateTest, ToQpsScalesByDt) {
  CountSeries s;
  s.dt = 60.0;
  s.counts = {120.0, 60.0};
  auto qps = s.ToQps();
  EXPECT_DOUBLE_EQ(qps[0], 2.0);
  EXPECT_DOUBLE_EQ(qps[1], 1.0);
}

std::vector<Complex> NaiveDft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * kPi * static_cast<double>(k * j) /
                           static_cast<double>(n);
      acc += x[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  stats::Rng rng(n);
  std::vector<Complex> x(n);
  for (auto& c : x) {
    c = Complex(rng.NextDouble() - 0.5, rng.NextDouble() - 0.5);
  }
  auto want = NaiveDft(x);
  auto got = x;
  ASSERT_TRUE(Fft(&got, false).ok());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 1e-8) << "n=" << n << " k=" << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 1e-8);
  }
}

// Power-of-two sizes exercise Cooley–Tukey; the rest exercise Bluestein.
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(2, 4, 8, 64, 3, 5, 6, 7, 12, 17, 31,
                                           100, 255));

TEST(FftTest, RoundTripRecoversSignal) {
  stats::Rng rng(77);
  for (std::size_t n : {16u, 30u, 101u}) {
    std::vector<Complex> x(n);
    for (auto& c : x) c = Complex(rng.NextDouble(), 0.0);
    auto y = x;
    ASSERT_TRUE(Fft(&y, false).ok());
    ASSERT_TRUE(Fft(&y, true).ok());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i].real() / static_cast<double>(n), x[i].real(), 1e-9);
    }
  }
}

TEST(FftTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1023), 1024u);
  EXPECT_EQ(NextPow2(1024), 1024u);
}

TEST(FftTest, Pow2RejectsOddSize) {
  std::vector<Complex> x(6);
  EXPECT_FALSE(FftPow2(&x, false).ok());
}

TEST(AcfTest, PeriodicSignalPeaksAtPeriod) {
  const std::size_t n = 400, period = 25;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * kPi * static_cast<double>(i) / period);
  }
  auto acf = Autocorrelation(x, 100);
  ASSERT_TRUE(acf.ok());
  EXPECT_NEAR((*acf)[0], 1.0, 1e-9);
  EXPECT_GT((*acf)[period], 0.9);
  const std::size_t peak = AcfPeakLag(*acf, 10, 90);
  EXPECT_EQ(peak, period);
}

TEST(AcfTest, WhiteNoiseHasSmallAcf) {
  stats::Rng rng(123);
  std::vector<double> x(2000);
  for (auto& v : x) v = rng.NextGaussian();
  auto acf = Autocorrelation(x, 50);
  ASSERT_TRUE(acf.ok());
  for (std::size_t k = 1; k <= 50; ++k) {
    EXPECT_LT(std::abs((*acf)[k]), 0.1) << "lag " << k;
  }
}

TEST(AcfTest, ConstantSeriesReturnsZeros) {
  auto acf = Autocorrelation(std::vector<double>(64, 3.0), 10);
  ASSERT_TRUE(acf.ok());
  for (double v : *acf) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(PeriodogramTest, SinePeaksAtItsFrequency) {
  const std::size_t n = 512;
  const std::size_t cycles = 16;  // Frequency bin 16 → period 32.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * kPi * cycles * static_cast<double>(i) / n);
  }
  auto peaks = FindSpectralPeaks(x, 1);
  ASSERT_TRUE(peaks.ok());
  ASSERT_FALSE(peaks->empty());
  EXPECT_EQ((*peaks)[0].index, cycles);
  EXPECT_NEAR((*peaks)[0].period, static_cast<double>(n) / cycles, 1e-9);
  EXPECT_LT((*peaks)[0].p_value, 1e-6);
}

TEST(PeriodogramTest, WhiteNoisePeakNotSignificant) {
  stats::Rng rng(9);
  std::vector<double> x(1024);
  for (auto& v : x) v = rng.NextGaussian();
  auto peaks = FindSpectralPeaks(x, 1);
  ASSERT_TRUE(peaks.ok());
  ASSERT_FALSE(peaks->empty());
  EXPECT_GT((*peaks)[0].p_value, 0.01);
}

TEST(PeriodogramTest, TooShortSeriesRejected) {
  EXPECT_FALSE(Periodogram({1.0, 2.0}).ok());
}

TEST(HampelTest, ReplacesSpike) {
  std::vector<double> x(21, 10.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] += 0.1 * std::sin(static_cast<double>(i));
  }
  x[10] = 500.0;
  auto filtered = HampelFilter(x, 5, 3.0);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT((*filtered)[10], 20.0);
  auto idx = HampelOutlierIndices(x, 5, 3.0);
  ASSERT_TRUE(idx.ok());
  ASSERT_EQ(idx->size(), 1u);
  EXPECT_EQ((*idx)[0], 10u);
}

TEST(HampelTest, LeavesCleanSeriesAlone) {
  stats::Rng rng(55);
  std::vector<double> x(50);
  for (auto& v : x) v = 5.0 + 0.1 * rng.NextGaussian();
  auto filtered = HampelFilter(x, 4, 4.0);
  ASSERT_TRUE(filtered.ok());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] != (*filtered)[i]) ++changed;
  }
  EXPECT_LE(changed, 3u);
}

TEST(HampelTest, RejectsZeroWindow) {
  EXPECT_FALSE(HampelFilter({1.0, 2.0}, 0).ok());
}

TEST(MovingMedianTest, TracksStepChange) {
  std::vector<double> x(20, 1.0);
  for (std::size_t i = 10; i < 20; ++i) x[i] = 9.0;
  auto med = MovingMedian(x, 2);
  ASSERT_TRUE(med.ok());
  EXPECT_DOUBLE_EQ((*med)[2], 1.0);
  EXPECT_DOUBLE_EQ((*med)[17], 9.0);
}

TEST(DetrendTest, RemovesSlowTrend) {
  std::vector<double> x(100);
  for (std::size_t i = 0; i < 100; ++i) x[i] = 0.5 * static_cast<double>(i);
  auto detrended = DetrendByMovingMedian(x, 10);
  ASSERT_TRUE(detrended.ok());
  for (std::size_t i = 20; i < 80; ++i) {
    EXPECT_NEAR((*detrended)[i], 0.0, 1e-9);
  }
}

TEST(InterpolateTest, FillsNanGapLinearly) {
  const double nan = std::nan("");
  std::vector<double> x{1.0, nan, nan, 4.0};
  auto filled = InterpolateMissing(x);
  ASSERT_TRUE(filled.ok());
  EXPECT_DOUBLE_EQ((*filled)[1], 2.0);
  EXPECT_DOUBLE_EQ((*filled)[2], 3.0);
}

TEST(InterpolateTest, ExtendsEdges) {
  const double nan = std::nan("");
  std::vector<double> x{nan, 5.0, nan};
  auto filled = InterpolateMissing(x);
  ASSERT_TRUE(filled.ok());
  EXPECT_DOUBLE_EQ((*filled)[0], 5.0);
  EXPECT_DOUBLE_EQ((*filled)[2], 5.0);
}

TEST(InterpolateTest, AllMissingIsError) {
  const double nan = std::nan("");
  EXPECT_FALSE(InterpolateMissing({nan, nan}).ok());
}

TEST(InterpolateTest, NonPositiveAsMissingMode) {
  std::vector<double> x{2.0, 0.0, 4.0};
  auto filled = InterpolateMissing(x, /*treat_nonpositive_as_missing=*/true);
  ASSERT_TRUE(filled.ok());
  EXPECT_DOUBLE_EQ((*filled)[1], 3.0);
}

CountSeries MakePeriodicCounts(std::size_t n, std::size_t period,
                               double noise, std::uint64_t seed,
                               double outlier_every = 0.0) {
  stats::Rng rng(seed);
  CountSeries s;
  s.dt = 1.0;
  s.counts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * kPi * static_cast<double>(i % period) /
                         static_cast<double>(period);
    s.counts[i] = 10.0 + 5.0 * std::sin(phase) + noise * rng.NextGaussian();
    if (outlier_every > 0.0 && rng.NextDouble() < outlier_every) {
      s.counts[i] *= 8.0;
    }
  }
  return s;
}

class PeriodicityDetectionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PeriodicityDetectionTest, DetectsKnownPeriod) {
  const std::size_t period = GetParam();
  auto series = MakePeriodicCounts(period * 12, period, 0.5, period);
  auto detected = DetectPeriod(series);
  ASSERT_TRUE(detected.ok());
  ASSERT_GT(detected->period, 0u);
  // Allow +-1 bin tolerance from spectral resolution.
  EXPECT_NEAR(static_cast<double>(detected->period),
              static_cast<double>(period), 1.0 + 0.02 * period);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodicityDetectionTest,
                         ::testing::Values(12, 24, 48, 96, 144));

TEST(PeriodicityDetectionTest, RobustToOutliers) {
  auto series = MakePeriodicCounts(24 * 14, 24, 0.5, 3, /*outlier_every=*/0.02);
  auto detected = DetectPeriod(series);
  ASSERT_TRUE(detected.ok());
  ASSERT_GT(detected->period, 0u);
  EXPECT_NEAR(static_cast<double>(detected->period), 24.0, 2.0);
}

TEST(PeriodicityDetectionTest, WhiteNoiseFindsNothing) {
  stats::Rng rng(4);
  CountSeries s;
  s.dt = 1.0;
  s.counts.resize(600);
  for (auto& v : s.counts) v = 10.0 + rng.NextGaussian();
  auto detected = DetectPeriod(s);
  ASSERT_TRUE(detected.ok());
  EXPECT_EQ(detected->period, 0u);
}

TEST(PeriodicityDetectionTest, ShortSeriesFindsNothing) {
  CountSeries s;
  s.dt = 1.0;
  s.counts.assign(8, 1.0);
  auto detected = DetectPeriod(s);
  ASSERT_TRUE(detected.ok());
  EXPECT_EQ(detected->period, 0u);
}

TEST(PeriodicityDetectionTest, AggregationFactorScalesResult) {
  // Period 48 at raw resolution; detect on 4x aggregated bins.
  auto series = MakePeriodicCounts(48 * 16, 48, 0.3, 5);
  PeriodicityOptions opts;
  opts.aggregate_factor = 4;
  auto detected = DetectPeriod(series, opts);
  ASSERT_TRUE(detected.ok());
  ASSERT_GT(detected->period, 0u);
  EXPECT_NEAR(static_cast<double>(detected->period), 48.0, 8.0);
}

TEST(PeriodicityDetectionTest, VectorOverload) {
  auto series = MakePeriodicCounts(32 * 12, 32, 0.4, 6);
  auto detected = DetectPeriod(series.counts);
  ASSERT_TRUE(detected.ok());
  EXPECT_NEAR(static_cast<double>(detected->period), 32.0, 2.0);
}

}  // namespace
}  // namespace rs::ts
