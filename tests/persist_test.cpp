// Tests of the rs::persist snapshot subsystem and its Scaler/ScalerFleet
// integration:
//  * codec round-trips (every field type, nested sections, forward skip);
//  * the format-version handshake (future versions rejected, never a crash);
//  * corruption robustness: truncations, bit flips, wrong magic and crafted
//    section-length overflows all surface as a clean Status — this file
//    runs in the existing ASan/UBSan CI jobs, which is the real assertion;
//  * the headline continuation guarantee: for every registry strategy and
//    snapshot points from pre-start through the last step, a restored
//    Scaler's action sequence is byte-identical to an uninterrupted one,
//    under 0/1/8 planning-pool workers and across optimized/reference
//    kernel modes;
//  * fleet durability: SaveFleet/LoadFleet, tenant snapshot/restore, and
//    live MigrateTenant between two serving fleets mid-stream.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/common/kernels.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/persist/persist.hpp"
#include "rs/simulator/decision_clock.hpp"
#include "rs/stats/rng.hpp"

namespace rs::api {
namespace {

// ---------------------------------------------------------------------------
// Codec layer
// ---------------------------------------------------------------------------

TEST(PersistCodecTest, RoundTripsEveryFieldType) {
  persist::Writer writer;
  writer.BeginSection(persist::kTagScaler);
  writer.WriteU8(0xAB);
  writer.WriteBool(true);
  writer.WriteBool(false);
  writer.WriteU32(0xDEADBEEFu);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteDouble(-1.5e-300);
  writer.WriteDouble(std::numeric_limits<double>::infinity());
  writer.WriteString("tenant \"x\" \x01\xff");
  writer.WriteDoubleVector({0.0, -0.0, 3.14159});
  writer.WriteU64Vector({1, 2, 3});
  writer.EndSection();
  std::stringstream out;
  ASSERT_TRUE(writer.Finish(out).ok());

  auto reader = persist::Reader::FromStream(out);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader->version(), persist::kFormatVersion);
  ASSERT_TRUE(reader->EnterSection(persist::kTagScaler).ok());
  EXPECT_EQ(*reader->ReadU8(), 0xAB);
  EXPECT_EQ(*reader->ReadBool(), true);
  EXPECT_EQ(*reader->ReadBool(), false);
  EXPECT_EQ(*reader->ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader->ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*reader->ReadDouble(), -1.5e-300);
  EXPECT_EQ(*reader->ReadDouble(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(*reader->ReadString(), "tenant \"x\" \x01\xff");
  std::vector<double> doubles;
  ASSERT_TRUE(reader->ReadDoubleVector(&doubles).ok());
  ASSERT_EQ(doubles.size(), 3u);
  EXPECT_EQ(doubles[0], 0.0);
  EXPECT_TRUE(std::signbit(doubles[1]));
  EXPECT_EQ(doubles[2], 3.14159);
  std::vector<std::uint64_t> words;
  ASSERT_TRUE(reader->ReadU64Vector(&words).ok());
  EXPECT_EQ(words, (std::vector<std::uint64_t>{1, 2, 3}));
  ASSERT_TRUE(reader->ExitSection().ok());
  EXPECT_EQ(reader->remaining(), 0u);
}

TEST(PersistCodecTest, ExitSectionSkipsUnreadTailForForwardCompat) {
  // A "newer writer" appends fields this reader does not know about; the
  // reader consumes its prefix, exits, and lands exactly on the next
  // section.
  persist::Writer writer;
  writer.BeginSection(persist::kTagSpec);
  writer.WriteU32(7);
  writer.WriteDouble(1.0);   // "New" trailing fields.
  writer.WriteString("future");
  writer.EndSection();
  writer.BeginSection(persist::kTagMirror);
  writer.WriteU32(9);
  writer.EndSection();
  std::stringstream out;
  ASSERT_TRUE(writer.Finish(out).ok());

  auto reader = persist::Reader::FromStream(out);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->EnterSection(persist::kTagSpec).ok());
  EXPECT_EQ(*reader->ReadU32(), 7u);
  ASSERT_TRUE(reader->ExitSection().ok());  // Skips the two unread fields.
  ASSERT_TRUE(reader->EnterSection(persist::kTagMirror).ok());
  EXPECT_EQ(*reader->ReadU32(), 9u);
  ASSERT_TRUE(reader->ExitSection().ok());
}

TEST(PersistCodecTest, RngStateRoundTripContinuesBitForBit) {
  stats::Rng rng(123);
  (void)rng.NextGaussian();  // Populate the Box–Muller cache (odd draw count).
  persist::Writer writer;
  persist::WriteRngState(&writer, rng);
  std::stringstream out;
  ASSERT_TRUE(writer.Finish(out).ok());

  auto reader = persist::Reader::FromStream(out);
  ASSERT_TRUE(reader.ok());
  stats::Rng restored(0);
  ASSERT_TRUE(persist::ReadRngState(&reader.ValueOrDie(), &restored).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextGaussian(), restored.NextGaussian()) << "draw " << i;
    EXPECT_EQ(rng.NextUint64(), restored.NextUint64()) << "draw " << i;
  }
}

TEST(PersistCodecTest, DurationDistributionRawParamsRoundTrip) {
  // LogNormal's public factory converts mean/cv to (mu, sigma); the raw
  // accessors must round-trip the internal parameters bit-exactly.
  const auto original = stats::DurationDistribution::LogNormal(20.0, 1.7);
  auto restored = stats::DurationDistribution::FromRawParams(
      static_cast<std::uint8_t>(original.kind()), original.param1(),
      original.param2());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->param1(), original.param1());
  EXPECT_EQ(restored->param2(), original.param2());
  stats::Rng a(5), b(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(original.Sample(&a), restored->Sample(&b));
  }
  // Out-of-domain kinds and parameters fail cleanly.
  EXPECT_FALSE(stats::DurationDistribution::FromRawParams(250, 1.0, 1.0).ok());
  EXPECT_FALSE(stats::DurationDistribution::FromRawParams(
                   static_cast<std::uint8_t>(
                       stats::DurationDistribution::Kind::kExponential),
                   -1.0, 0.0)
                   .ok());
}

// ---------------------------------------------------------------------------
// Version handshake & corruption robustness
// ---------------------------------------------------------------------------

std::string MakeValidSnapshotBytes() {
  persist::Writer writer;
  writer.BeginSection(persist::kTagScaler);
  writer.WriteU32(1);
  writer.BeginSection(persist::kTagSpec);
  writer.WriteString("robust_hp");
  writer.WriteDoubleVector({1.0, 2.0, 3.0, 4.0});
  writer.EndSection();
  writer.WriteU64(42);
  writer.EndSection();
  std::stringstream out;
  EXPECT_TRUE(writer.Finish(out).ok());
  return out.str();
}

// Rewrites bytes [4,8) (the format version) and fixes up the CRC trailer so
// only the version check can reject the result.
std::string WithFormatVersion(std::string bytes, std::uint32_t version) {
  for (int i = 0; i < 4; ++i) {
    bytes[4 + i] = static_cast<char>((version >> (8 * i)) & 0xFF);
  }
  const std::uint32_t crc =
      persist::Crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  return bytes;
}

TEST(PersistVersionTest, RejectsFutureFormatVersionsDescriptively) {
  const std::string bytes = MakeValidSnapshotBytes();
  auto future = persist::Reader::FromBytes(
      WithFormatVersion(bytes, persist::kFormatVersion + 5));
  ASSERT_FALSE(future.ok());
  EXPECT_NE(future.status().message().find("version"), std::string::npos)
      << future.status().ToString();
  auto zero = persist::Reader::FromBytes(WithFormatVersion(bytes, 0));
  EXPECT_FALSE(zero.ok());
  // The unmodified snapshot still loads (the fixture is really valid).
  EXPECT_TRUE(persist::Reader::FromBytes(bytes).ok());
}

TEST(PersistCorruptionTest, EveryTruncationFailsCleanly) {
  const std::string bytes = MakeValidSnapshotBytes();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    auto reader = persist::Reader::FromBytes(bytes.substr(0, n));
    EXPECT_FALSE(reader.ok()) << "truncation to " << n << " bytes";
  }
}

TEST(PersistCorruptionTest, ZeroByteSnapshotFailsWithItsOwnMessage) {
  // `touch`, a crash before any write, or a truncated-to-nothing file: its
  // own failure mode, named as such — not the generic truncation message.
  auto reader = persist::Reader::FromBytes("");
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("empty (0 bytes)"),
            std::string::npos)
      << reader.status().ToString();
}

TEST(PersistCorruptionTest, SubHeaderSizedSnapshotsFailDescriptively) {
  // Every length smaller than header + CRC trailer (1..11 bytes) must fail
  // before any field decode — there is nothing to bounds-check against yet.
  const std::string bytes = MakeValidSnapshotBytes();
  for (std::size_t n = 1; n < 12; ++n) {
    auto reader = persist::Reader::FromBytes(bytes.substr(0, n));
    ASSERT_FALSE(reader.ok()) << n << " bytes";
    EXPECT_NE(reader.status().message().find("truncated"), std::string::npos)
        << n << " bytes: " << reader.status().ToString();
  }
}

TEST(PersistCorruptionTest, EverySingleBitFlipFailsCleanly) {
  // The CRC trailer catches any single-bit flip anywhere in the container
  // (including inside the trailer itself).
  const std::string bytes = MakeValidSnapshotBytes();
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto reader = persist::Reader::FromBytes(corrupt);
      EXPECT_FALSE(reader.ok()) << "bit " << bit << " of byte " << byte;
    }
  }
}

TEST(PersistCorruptionTest, WrongMagicFailsWithMessage) {
  std::string bytes = MakeValidSnapshotBytes();
  bytes[0] = 'X';
  auto reader = persist::Reader::FromBytes(bytes);
  ASSERT_FALSE(reader.ok());
  // (The CRC also breaks, but the magic check fires first and names the
  // real problem.)
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos)
      << reader.status().ToString();
}

TEST(PersistCorruptionTest, SectionLengthOverflowFailsCleanly) {
  // Craft a section whose declared length runs past the payload, with a
  // *valid* CRC, so only the bounds check can catch it.
  std::string bytes = MakeValidSnapshotBytes();
  const std::size_t length_offset = 8 + 4;  // Header, then first tag.
  std::uint64_t huge = 0xFFFFFFFFFFFFull;
  for (int i = 0; i < 8; ++i) {
    bytes[length_offset + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  const std::uint32_t crc = persist::Crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  auto reader = persist::Reader::FromBytes(bytes);
  ASSERT_TRUE(reader.ok());  // Container-level checks pass by construction.
  EXPECT_FALSE(reader->EnterSection(persist::kTagScaler).ok());
}

TEST(PersistCorruptionTest, RestoreOfFuzzedScalerSnapshotsNeverCrashes) {
  // End-to-end: corrupt a *real* Scaler snapshot many ways and push every
  // variant through the full restore path. Any outcome but a clean Status
  // (crash, sanitizer report) fails the ASan/UBSan CI jobs this runs under.
  const double dt = 30.0;
  std::vector<double> rates(40, 0.4);
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  stats::Rng rng(3);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  auto [train, test] = trace.SplitAt(0.75 * trace.horizon());
  auto scaler = ScalerBuilder()
                    .WithTrace(train)
                    .WithBinWidth(dt)
                    .WithForecastHorizon(test.horizon())
                    .WithTarget(HitRate{0.9})
                    .WithMcSamples(20)
                    .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();
  for (double t = 1.0; t < 40.0; t += 2.0) (void)*scaler->Plan(t);
  std::stringstream snapshot;
  ASSERT_TRUE(scaler->SaveState(snapshot).ok());
  const std::string bytes = snapshot.str();

  auto expect_clean_failure = [](std::string corrupt, const char* what) {
    std::stringstream in(std::move(corrupt));
    auto restored = ScalerBuilder::RestoreState(in);
    EXPECT_FALSE(restored.ok()) << what;
  };
  // Truncations (every 7th length keeps the loop fast; ASan checks each).
  for (std::size_t n = 0; n < bytes.size(); n += 7) {
    expect_clean_failure(bytes.substr(0, n), "truncation");
  }
  // Deterministically-seeded random byte corruption.
  stats::Rng fuzz(99);
  for (int round = 0; round < 200; ++round) {
    std::string corrupt = bytes;
    const std::size_t at = fuzz.NextUint64() % corrupt.size();
    corrupt[at] = static_cast<char>(fuzz.NextUint64() & 0xFF);
    if (corrupt == bytes) continue;
    expect_clean_failure(std::move(corrupt), "byte corruption");
  }
}

// ---------------------------------------------------------------------------
// Continuation parity: Scaler
// ---------------------------------------------------------------------------

struct Workload {
  workload::Trace train;
  workload::Trace test;
  double dt = 30.0;
};

Workload MakePersistWorkload(std::uint64_t seed) {
  const double period_s = 600.0, dt = 30.0;
  const double horizon = 8.0 * period_s;
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(0.3 + 0.2 * std::sin(2.0 * M_PI * phase));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  stats::Rng rng(seed);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  Workload w;
  auto [train, test] = trace.SplitAt(horizon - 2.0 * period_s);
  w.train = std::move(train);
  w.test = std::move(test);
  return w;
}

Scaler BuildScaler(const Workload& w, const char* spec_string) {
  auto spec = ParseStrategySpec(spec_string);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto scaler = ScalerBuilder()
                    .WithTrace(w.train)
                    .WithBinWidth(w.dt)
                    .WithForecastHorizon(w.test.horizon())
                    .WithStrategy(*spec)
                    .WithPlanningInterval(2.0)
                    .WithMcSamples(40)
                    .Build();
  EXPECT_TRUE(scaler.ok()) << scaler.status().ToString();
  return std::move(scaler).ValueOrDie();
}

// The serving script: arrivals merged with Plan polls every 2 s (poll first
// on ties, matching the engine's tick-before-arrival order), one final poll
// past the horizon.
struct Step {
  bool is_plan = false;
  double time = 0.0;
};

std::vector<Step> MakeScript(const workload::Trace& test) {
  std::vector<Step> script;
  double next_plan = 2.0;
  for (const double arrival : test.ArrivalTimes()) {
    while (next_plan <= arrival) {
      script.push_back({true, next_plan});
      next_plan += 2.0;
    }
    script.push_back({false, arrival});
  }
  script.push_back({true, next_plan});
  return script;
}

// One serving outcome stream: drained actions plus observe flags, flattened
// for exact comparison.
struct Outcomes {
  std::vector<sim::ScalingAction> actions;
  std::vector<std::uint8_t> observe_flags;

  bool operator==(const Outcomes& other) const {
    if (observe_flags != other.observe_flags) return false;
    if (actions.size() != other.actions.size()) return false;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (actions[i].deletions != other.actions[i].deletions) return false;
      if (actions[i].creation_times != other.actions[i].creation_times) {
        return false;
      }
    }
    return true;
  }
};

void RunSteps(Scaler* scaler, const std::vector<Step>& script,
              std::size_t from, std::size_t to, Outcomes* out) {
  for (std::size_t i = from; i < to; ++i) {
    if (script[i].is_plan) {
      auto action = scaler->Plan(script[i].time);
      ASSERT_TRUE(action.ok()) << action.status().ToString();
      out->actions.push_back(std::move(action).ValueOrDie());
    } else {
      auto outcome = scaler->Observe(script[i].time);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      out->observe_flags.push_back(
          static_cast<std::uint8_t>((outcome->cold_start ? 1 : 0) |
                                    (outcome->cancel_earliest_scheduled ? 2
                                                                        : 0)));
    }
  }
}

const char* const kAllStrategySpecs[] = {
    "backup_pool:pool_size=2",
    "adaptive_backup_pool:multiplier=1.5,update_interval=60,"
    "estimate_window=120",
    "robust_hp:target=0.9",
    "robust_rt:target=1.0",
    "robust_cost:target=2.0",
};

// Runs the script on `spec`, snapshotting at `cut` and restoring (optionally
// with a planning pool), and requires the stitched outcome stream to equal
// the uninterrupted control's.
void CheckContinuationParity(const Workload& w, const char* spec,
                             std::size_t cut,
                             common::ThreadPool* restore_pool = nullptr) {
  const auto script = MakeScript(w.test);
  const std::size_t cut_step = std::min(cut, script.size());

  Scaler control = BuildScaler(w, spec);
  Outcomes expected;
  RunSteps(&control, script, 0, script.size(), &expected);

  Scaler first = BuildScaler(w, spec);
  Outcomes got;
  RunSteps(&first, script, 0, cut_step, &got);
  std::stringstream snapshot;
  ASSERT_TRUE(first.SaveState(snapshot).ok());

  ScalerRestoreOptions options;
  options.planning_pool = restore_pool;
  auto restored = ScalerBuilder::RestoreState(snapshot, options);
  ASSERT_TRUE(restored.ok()) << spec << ": " << restored.status().ToString();
  RunSteps(&restored.ValueOrDie(), script, cut_step, script.size(), &got);

  EXPECT_TRUE(expected == got)
      << spec << ", cut at step " << cut_step << "/" << script.size();
}

TEST(PersistScalerParityTest, AllStrategiesContinueIdenticallyFromMidCut) {
  const Workload w = MakePersistWorkload(41);
  const std::size_t mid = MakeScript(w.test).size() / 2;
  for (const char* spec : kAllStrategySpecs) {
    CheckContinuationParity(w, spec, mid);
  }
}

TEST(PersistScalerParityTest, BoundarySnapshotPoints) {
  // Cold-start boundaries: before any traffic, after exactly one step, and
  // after the final step (an exhausted scaler restores to an exhausted
  // scaler).
  const Workload w = MakePersistWorkload(42);
  const std::size_t last = MakeScript(w.test).size();
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, last - 1,
                                last}) {
    CheckContinuationParity(w, "robust_hp:target=0.9", cut);
  }
}

TEST(PersistScalerParityTest, MidPlanSnapshotPoints) {
  // Snapshots taken right between an Observe and the Plan that drains it
  // (odd steps land mid-window, with undrained buffered actions).
  const Workload w = MakePersistWorkload(43);
  const std::size_t n = MakeScript(w.test).size();
  for (const std::size_t cut : {n / 4 + 1, n / 3 + 1, (2 * n) / 3 + 1}) {
    CheckContinuationParity(w, "robust_rt:target=1.0", cut);
    CheckContinuationParity(w, "adaptive_backup_pool:multiplier=1.5,"
                               "update_interval=60,estimate_window=120",
                            cut);
  }
}

TEST(PersistScalerParityTest, RestoreUnderPlanningPoolWorkerCounts) {
  // The pool is a pure wall-time knob: restoring onto 1- and 8-worker pools
  // must continue the 0-worker control byte-identically.
  const Workload w = MakePersistWorkload(44);
  const std::size_t mid = MakeScript(w.test).size() / 2;
  common::ThreadPool one(1);
  common::ThreadPool eight(8);
  for (const char* spec : kAllStrategySpecs) {
    CheckContinuationParity(w, spec, mid, /*restore_pool=*/nullptr);
    CheckContinuationParity(w, spec, mid, &one);
    CheckContinuationParity(w, spec, mid, &eight);
  }
}

TEST(PersistScalerParityTest, SnapshotsCrossKernelModes) {
  // A snapshot taken under the optimized kernels restores identically under
  // the reference kernels and vice versa — persisted state must not encode
  // anything kernel-mode-specific.
  const Workload w = MakePersistWorkload(45);
  const auto script = MakeScript(w.test);
  const std::size_t mid = script.size() / 2;

  Scaler control = BuildScaler(w, "robust_hp:target=0.9");
  Outcomes expected;
  RunSteps(&control, script, 0, script.size(), &expected);

  for (const bool snapshot_reference : {false, true}) {
    std::stringstream snapshot;
    Outcomes got;
    {
      common::ScopedReferenceKernels mode(snapshot_reference);
      Scaler first = BuildScaler(w, "robust_hp:target=0.9");
      RunSteps(&first, script, 0, mid, &got);
      ASSERT_TRUE(first.SaveState(snapshot).ok());
    }
    {
      common::ScopedReferenceKernels mode(!snapshot_reference);
      auto restored = ScalerBuilder::RestoreState(snapshot);
      ASSERT_TRUE(restored.ok()) << restored.status().ToString();
      RunSteps(&restored.ValueOrDie(), script, mid, script.size(), &got);
    }
    EXPECT_TRUE(expected == got)
        << "snapshot under " << (snapshot_reference ? "reference" : "optimized")
        << " kernels";
  }
}

TEST(PersistScalerParityTest, HistoryRetentionWideningSurvivesRestore) {
  // A widened retention window (more serving state) snapshots and restores
  // with the window intact — Snapshot() reports the same retention and
  // retained counts afterwards.
  const Workload w = MakePersistWorkload(46);
  const auto script = MakeScript(w.test);
  Scaler scaler = BuildScaler(w, "robust_hp:target=0.9");
  ASSERT_TRUE(scaler.ConfigureHistoryRetention(600.0).ok());
  Outcomes ignored;
  RunSteps(&scaler, script, 0, script.size() / 2, &ignored);
  const ServingSnapshot before = scaler.Snapshot();

  std::stringstream snapshot;
  ASSERT_TRUE(scaler.SaveState(snapshot).ok());
  auto restored = ScalerBuilder::RestoreState(snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const ServingSnapshot after = restored->Snapshot();
  EXPECT_EQ(after.history_retention, before.history_retention);
  EXPECT_EQ(after.arrivals_retained, before.arrivals_retained);
  EXPECT_EQ(after.actions_retained, before.actions_retained);
  EXPECT_EQ(after.queries_observed, before.queries_observed);
  EXPECT_EQ(after.planning_rounds, before.planning_rounds);
}

TEST(PersistScalerParityTest, InjectedClockRequiresReplacementAndContinues) {
  // A scaler serving with wall-time decision charging through an injected
  // FakeDecisionClock: restore must demand a replacement clock, import its
  // position, and continue identically.
  const Workload w = MakePersistWorkload(47);
  const auto script = MakeScript(w.test);
  const std::size_t mid = script.size() / 2;

  auto serve_with_clock = [&](Scaler* scaler, sim::FakeDecisionClock* clock) {
    sim::EngineOptions options;
    options.pending = stats::DurationDistribution::Deterministic(13.0);
    options.charge_decision_wall_time = true;
    options.decision_clock = clock;
    ASSERT_TRUE(scaler->ConfigureServing(options).ok());
  };

  sim::FakeDecisionClock control_clock(0.001);
  Scaler control = BuildScaler(w, "robust_hp:target=0.9");
  serve_with_clock(&control, &control_clock);
  Outcomes expected;
  RunSteps(&control, script, 0, script.size(), &expected);

  sim::FakeDecisionClock first_clock(0.001);
  Scaler first = BuildScaler(w, "robust_hp:target=0.9");
  serve_with_clock(&first, &first_clock);
  Outcomes got;
  RunSteps(&first, script, 0, mid, &got);
  std::stringstream snapshot;
  ASSERT_TRUE(first.SaveState(snapshot).ok());

  // No replacement clock → a descriptive error, not a silent wall-clock
  // fallback.
  auto missing = ScalerBuilder::RestoreState(snapshot);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("DecisionClock"),
            std::string::npos)
      << missing.status().ToString();

  snapshot.clear();
  snapshot.seekg(0);
  sim::FakeDecisionClock resumed_clock(0.001);
  ScalerRestoreOptions options;
  options.decision_clock = &resumed_clock;
  auto restored = ScalerBuilder::RestoreState(snapshot, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(resumed_clock.readings(), first_clock.readings());
  RunSteps(&restored.ValueOrDie(), script, mid, script.size(), &got);
  EXPECT_TRUE(expected == got);
}

// ---------------------------------------------------------------------------
// Fleet durability & live migration
// ---------------------------------------------------------------------------

TEST(PersistFleetTest, SaveFleetLoadFleetRoundTripsAllTenants) {
  const Workload w = MakePersistWorkload(51);
  const auto script = MakeScript(w.test);
  const std::size_t mid = script.size() / 2;

  ScalerFleet fleet(2);
  std::vector<std::string> names;
  for (const char* spec : kAllStrategySpecs) {
    const std::string name = "svc-" + std::to_string(names.size());
    ASSERT_TRUE(fleet.Register(name, BuildScaler(w, spec)).ok());
    names.push_back(name);
  }
  for (std::size_t i = 0; i < mid; ++i) {
    for (const auto& name : names) {
      if (script[i].is_plan) {
        ASSERT_TRUE(fleet.Plan(name, script[i].time).ok());
      } else {
        ASSERT_TRUE(fleet.Observe(name, script[i].time).ok());
      }
    }
  }

  std::stringstream snapshot;
  ASSERT_TRUE(fleet.SaveFleet(snapshot).ok());
  FleetRestoreOptions options;
  options.worker_threads = 2;
  auto loaded = ScalerFleet::LoadFleet(snapshot, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->Tenants(), fleet.Tenants());

  // Both fleets finish the script; every tenant's tail must match.
  for (std::size_t i = mid; i < script.size(); ++i) {
    for (const auto& name : names) {
      if (script[i].is_plan) {
        auto a = fleet.Plan(name, script[i].time);
        auto b = loaded->Plan(name, script[i].time);
        ASSERT_TRUE(a.ok() && b.ok()) << name;
        EXPECT_EQ(a->creation_times, b->creation_times) << name;
        EXPECT_EQ(a->deletions, b->deletions) << name;
      } else {
        auto a = fleet.Observe(name, script[i].time);
        auto b = loaded->Observe(name, script[i].time);
        ASSERT_TRUE(a.ok() && b.ok()) << name;
        EXPECT_EQ(a->cold_start, b->cold_start) << name;
        EXPECT_EQ(a->cancel_earliest_scheduled, b->cancel_earliest_scheduled)
            << name;
      }
    }
  }
}

// Live migration: tenant "mover" serves in fleet A, migrates to live fleet
// B mid-stream, and its stitched action sequence must equal an unmigrated
// control's — for every registry strategy and worker counts 0/1/8.
TEST(PersistFleetTest, LiveMigrationPreservesActionSequences) {
  const Workload w = MakePersistWorkload(52);
  const auto script = MakeScript(w.test);
  const std::size_t mid = script.size() / 2;

  for (const std::size_t workers : {std::size_t{0}, std::size_t{1},
                                    std::size_t{8}}) {
    for (const char* spec : kAllStrategySpecs) {
      Scaler control = BuildScaler(w, spec);
      Outcomes expected;
      RunSteps(&control, script, 0, script.size(), &expected);

      ScalerFleet source(workers);
      ScalerFleet target(workers);
      ASSERT_TRUE(source.Register("mover", BuildScaler(w, spec)).ok());
      // The target also hosts an unrelated busy tenant, so the migration
      // lands in a genuinely live fleet.
      ASSERT_TRUE(
          target.Register("resident", BuildScaler(w, "backup_pool")).ok());

      Outcomes got;
      for (std::size_t i = 0; i < mid; ++i) {
        if (script[i].is_plan) {
          auto action = source.Plan("mover", script[i].time);
          ASSERT_TRUE(action.ok());
          got.actions.push_back(std::move(action).ValueOrDie());
          ASSERT_TRUE(target.Plan("resident", script[i].time).ok());
        } else {
          auto outcome = source.Observe("mover", script[i].time);
          ASSERT_TRUE(outcome.ok());
          got.observe_flags.push_back(static_cast<std::uint8_t>(
              (outcome->cold_start ? 1 : 0) |
              (outcome->cancel_earliest_scheduled ? 2 : 0)));
          ASSERT_TRUE(target.Observe("resident", script[i].time).ok());
        }
      }

      ASSERT_TRUE(source.MigrateTenant("mover", &target).ok())
          << spec << ", workers=" << workers;
      EXPECT_EQ(source.Find("mover"), nullptr);
      ASSERT_EQ(source.size(), 0u);
      ASSERT_EQ(target.size(), 2u);

      for (std::size_t i = mid; i < script.size(); ++i) {
        if (script[i].is_plan) {
          auto action = target.Plan("mover", script[i].time);
          ASSERT_TRUE(action.ok());
          got.actions.push_back(std::move(action).ValueOrDie());
        } else {
          auto outcome = target.Observe("mover", script[i].time);
          ASSERT_TRUE(outcome.ok());
          got.observe_flags.push_back(static_cast<std::uint8_t>(
              (outcome->cold_start ? 1 : 0) |
              (outcome->cancel_earliest_scheduled ? 2 : 0)));
        }
      }
      EXPECT_TRUE(expected == got) << spec << ", workers=" << workers;
    }
  }
}

TEST(PersistFleetTest, FailedMigrationLeavesBothFleetsUnchanged) {
  const Workload w = MakePersistWorkload(53);
  ScalerFleet source;
  ScalerFleet target;
  ASSERT_TRUE(
      source.Register("svc", BuildScaler(w, "backup_pool")).ok());
  ASSERT_TRUE(
      target.Register("svc", BuildScaler(w, "backup_pool")).ok());

  // Name collision in the target: the restore is rejected, the source keeps
  // its tenant.
  auto collision = source.MigrateTenant("svc", &target);
  ASSERT_FALSE(collision.ok());
  EXPECT_EQ(source.size(), 1u);
  EXPECT_EQ(target.size(), 1u);
  EXPECT_NE(source.Find("svc"), nullptr);

  // Self-migration and null targets are rejected up front.
  EXPECT_FALSE(source.MigrateTenant("svc", &source).ok());
  EXPECT_FALSE(source.MigrateTenant("svc", nullptr).ok());

  // A rename resolves the collision; afterwards the source really is empty.
  TenantRestoreOptions rename;
  rename.rename = "svc-moved";
  ASSERT_TRUE(source.MigrateTenant("svc", &target, rename).ok());
  EXPECT_EQ(source.size(), 0u);
  EXPECT_EQ(target.size(), 2u);
  EXPECT_NE(target.Find("svc-moved"), nullptr);
}

}  // namespace
}  // namespace rs::api
