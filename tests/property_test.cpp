// Property-based tests: invariants that must hold for random workloads and
// strategies, not just hand-picked cases — engine accounting identities,
// Poisson-sampler statistics, decision-rule constraint satisfaction, and
// the spike-train periodicity fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/baselines/backup_pool.hpp"
#include "rs/core/decision.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/stats/empirical.hpp"
#include "rs/stats/rng.hpp"
#include "rs/timeseries/periodicity.hpp"
#include "rs/workload/nhpp_sampler.hpp"
#include "rs/workload/synthetic.hpp"

namespace rs {
namespace {

// ---------------------------------------------------------------------------
// Engine accounting invariants under random workloads and pool sizes.
// ---------------------------------------------------------------------------

struct EngineCase {
  std::uint64_t seed;
  double rate;
  std::size_t pool;
};

class EngineInvariantTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineInvariantTest, AccountingIdentitiesHold) {
  const auto [seed, rate, pool] = GetParam();
  stats::Rng rng(seed);
  auto intensity = *workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(50, rate), 100.0);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));

  baseline::BackupPool bp(pool);
  sim::EngineOptions opts;
  opts.pending = stats::DurationDistribution::Uniform(5.0, 20.0);
  opts.seed = seed * 3 + 1;
  auto result = sim::Simulate(trace, &bp, opts);
  ASSERT_TRUE(result.ok());

  // Every query produced exactly one outcome, in arrival order.
  ASSERT_EQ(result->queries.size(), trace.size());
  for (std::size_t i = 1; i < result->queries.size(); ++i) {
    EXPECT_LE(result->queries[i - 1].arrival_time,
              result->queries[i].arrival_time);
  }

  std::size_t served = 0;
  for (const auto& inst : result->instances) {
    EXPECT_GE(inst.ready_time, inst.creation_time);
    EXPECT_GE(inst.lifecycle_cost, -1e-9);
    EXPECT_GE(inst.end_time, inst.creation_time);
    if (inst.served_query) ++served;
  }
  // Exactly one instance serves each query.
  EXPECT_EQ(served, result->queries.size());
  // Pool strategies can only leave up to `pool` unused instances behind.
  EXPECT_LE(result->instances.size(), result->queries.size() + pool);

  for (const auto& q : result->queries) {
    EXPECT_GE(q.wait_time, 0.0);
    EXPECT_NEAR(q.response_time, q.wait_time + q.processing_time, 1e-9);
    // Hit if and only if no waiting occurred.
    EXPECT_EQ(q.hit, q.wait_time == 0.0);
    // A cold start always pays the full pending time (it waits for its own
    // instance), so it can never be a hit.
    if (q.cold_start) EXPECT_FALSE(q.hit);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCases, EngineInvariantTest,
    ::testing::Values(EngineCase{1, 0.02, 0}, EngineCase{2, 0.05, 1},
                      EngineCase{3, 0.10, 3}, EngineCase{4, 0.30, 5},
                      EngineCase{5, 1.00, 2}, EngineCase{6, 0.01, 8}));

// ---------------------------------------------------------------------------
// Engine-vs-mirror parity: for random workloads and every registry
// strategy, the online Observe/Plan mirror must emit the exact action
// sequence of a batch engine replay — including with decision wall time
// charged through fake DecisionClocks, and with arrivals snapped onto the
// planning grid so tick/creation/arrival tie-breaking is exercised.
// ---------------------------------------------------------------------------

struct ParityCase {
  std::uint64_t seed;
  const char* spec;      ///< Registry strategy spec string.
  bool charge;           ///< Charge decision wall time (fake clocks).
};

void PrintTo(const ParityCase& c, std::ostream* os) {
  *os << c.spec << " seed=" << c.seed << (c.charge ? " charged" : "");
}

class ServingParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(ServingParityTest, MirrorMatchesEngineActionSequence) {
  const auto param = GetParam();
  constexpr double kTick = 2.0;

  // Random sinusoidal workload, split into train/test.
  const double period_s = 600.0, dt = 30.0, horizon = 8.0 * period_s;
  stats::Rng rng(param.seed);
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(0.35 + 0.25 * std::sin(2.0 * M_PI * phase));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  auto [train, test] = trace.SplitAt(horizon - 2.0 * period_s);

  // Snap ~25% of test arrivals onto the planning grid to force events at
  // tick/creation/arrival tie points (the fragile part of both event loops).
  std::vector<workload::Query> queries = test.queries();
  for (auto& q : queries) {
    if (rng.NextDouble() < 0.25) {
      q.arrival_time = std::floor(q.arrival_time / kTick) * kTick;
    }
  }
  std::sort(queries.begin(), queries.end(),
            [](const auto& a, const auto& b) {
              return a.arrival_time < b.arrival_time;
            });
  workload::Trace snapped(queries, test.horizon());

  auto spec = api::ParseStrategySpec(param.spec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto build = [&]() {
    return api::ScalerBuilder()
        .WithTrace(train)
        .WithBinWidth(dt)
        .WithForecastHorizon(snapped.horizon())
        .WithStrategy(*spec)
        .WithPlanningInterval(kTick)
        .WithMcSamples(60)
        .Build();
  };
  auto batch = build();
  auto online = build();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(online.ok()) << online.status().ToString();

  sim::FakeDecisionClock batch_clock(0.125);
  sim::FakeDecisionClock online_clock(0.125);
  sim::EngineOptions engine;
  engine.charge_decision_wall_time = param.charge;
  engine.decision_clock = &batch_clock;
  sim::EngineOptions mirror = engine;
  mirror.decision_clock = &online_clock;
  ASSERT_TRUE(online->ConfigureServing(mirror).ok());

  api::RecordingAutoscaler recorder(batch->strategy());
  auto replay = sim::Simulate(snapped, &recorder, engine);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  for (const auto& q : snapped.queries()) {
    ASSERT_TRUE(online->Observe(q.arrival_time).ok());
  }
  ASSERT_TRUE(online->Plan(snapped.horizon()).ok());

  // The mirror ran with its default (bounded) retention, so its log is the
  // retained suffix of the full parity log: align it against the tail of
  // the batch recording.
  const auto& batch_actions = recorder.actions();
  const auto& online_actions = online->ActionLog();
  const auto snap = online->Snapshot();
  ASSERT_EQ(batch_actions.size(), snap.planning_rounds);
  ASSERT_EQ(online_actions.size(), snap.actions_retained);
  ASSERT_LE(snap.actions_retained, snap.planning_rounds);
  const std::size_t offset = batch_actions.size() - online_actions.size();
  for (std::size_t i = 0; i < online_actions.size(); ++i) {
    const auto& expected = batch_actions[offset + i];
    const auto& got = online_actions[i];
    ASSERT_EQ(expected.creation_times.size(), got.creation_times.size())
        << "action " << offset + i;
    EXPECT_EQ(expected.deletions, got.deletions) << "action " << offset + i;
    for (std::size_t j = 0; j < expected.creation_times.size(); ++j) {
      EXPECT_NEAR(expected.creation_times[j], got.creation_times[j], 1e-9)
          << "action " << offset + i << ", creation " << j;
    }
  }

  // Both paths consulted their decision clocks equally often (and not at
  // all unless charging was requested).
  EXPECT_EQ(batch_clock.readings(), online_clock.readings());
  if (!param.charge) EXPECT_EQ(batch_clock.readings(), 0u);

  // Strategies with a finite declared lookback must have been compacted on
  // a trace this long (the bounded-serving-state guarantee).
  if (online->strategy()->history_requirement() < 300.0) {
    EXPECT_LT(snap.arrivals_retained, snap.queries_observed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RegistryStrategies, ServingParityTest,
    ::testing::Values(
        ParityCase{11, "robust_hp:target=0.9", false},
        ParityCase{12, "robust_hp:target=0.9", true},
        ParityCase{13, "robust_rt:target=2.0", true},
        ParityCase{14, "robust_cost:target=5.0", false},
        ParityCase{15, "backup_pool:pool_size=2", false},
        ParityCase{16, "adaptive_backup_pool:multiplier=20,update_interval=30,"
                       "estimate_window=60",
                   true},
        ParityCase{17, "adaptive_backup_pool:multiplier=40,update_interval=10,"
                       "estimate_window=90",
                   false}));

// ---------------------------------------------------------------------------
// Fleet-vs-sequential parity: for random per-tenant workloads and a random
// interleaving of Observe / PlanAll operations, a ScalerFleet with any
// worker-thread count must reproduce — byte-identical — the per-tenant
// action sequences of N independent Scalers driven sequentially. Decision
// wall-time charging runs through a FakeDecisionClockBank (one scripted
// clock per tenant) so the charged latencies are deterministic on both
// sides. This is the contract every later scaling layer (sharding,
// snapshot/restore) builds on; the TSan CI job race-checks the same drive.
// ---------------------------------------------------------------------------

struct FleetParityCase {
  std::uint64_t seed;
  std::size_t threads;  ///< Fleet worker-pool size (0 = inline).
  bool charge;          ///< Charge decision wall time (fake clock bank).
};

void PrintTo(const FleetParityCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << " threads=" << c.threads
      << (c.charge ? " charged" : "");
}

class FleetParityTest : public ::testing::TestWithParam<FleetParityCase> {};

TEST_P(FleetParityTest, FleetMatchesSequentialScalersActionForAction) {
  const auto param = GetParam();
  constexpr double kTick = 2.0;
  constexpr double kClockStep = 0.125;
  const std::vector<const char*> specs = {
      "robust_hp:target=0.9",
      "robust_rt:target=2.0",
      "backup_pool:pool_size=2",
      "adaptive_backup_pool:multiplier=20,update_interval=30,"
      "estimate_window=60",
  };
  const std::size_t n_tenants = specs.size();

  // Phase-shifted random sinusoidal workload per tenant, shared horizon.
  const double period_s = 600.0, dt = 30.0, horizon = 8.0 * period_s;
  stats::Rng rng(param.seed);
  std::vector<workload::Trace> trains, tests;
  for (std::size_t i = 0; i < n_tenants; ++i) {
    const double phase0 = rng.NextDouble();
    std::vector<double> rates;
    for (double t = 0.5 * dt; t < horizon; t += dt) {
      const double phase = std::fmod(t, period_s) / period_s;
      rates.push_back(0.3 + 0.2 * std::sin(2.0 * M_PI * (phase + phase0)));
    }
    auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
    auto trace = *workload::MakeTraceFromIntensity(
        &rng, intensity, stats::DurationDistribution::Exponential(15.0));
    auto [train, test] = trace.SplitAt(horizon - 2.0 * period_s);
    trains.push_back(std::move(train));
    tests.push_back(std::move(test));
  }
  const double serve_horizon = tests[0].horizon();

  const auto build = [&](std::size_t i) {
    auto spec = api::ParseStrategySpec(specs[i]);
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto scaler = api::ScalerBuilder()
                      .WithTrace(trains[i])
                      .WithBinWidth(dt)
                      .WithForecastHorizon(serve_horizon)
                      .WithStrategy(*spec)
                      .WithPlanningInterval(kTick)
                      .WithMcSamples(40)
                      .Build();
    EXPECT_TRUE(scaler.ok()) << scaler.status().ToString();
    return std::move(scaler).ValueOrDie();
  };
  const auto configure = [&](api::Scaler* scaler, sim::DecisionClock* clock) {
    if (param.charge) {
      sim::EngineOptions options;
      options.charge_decision_wall_time = true;
      options.decision_clock = clock;
      ASSERT_TRUE(scaler->ConfigureServing(options).ok());
    }
    ASSERT_TRUE(
        scaler->ConfigureHistoryRetention(sim::kUnboundedHistory).ok());
  };

  // One global operation schedule, shared by the fleet drive and the
  // sequential reference: merged arrivals plus PlanAll points at non-grid
  // times (97 s spacing avoids colliding with the 2 s tick grid) and a
  // final PlanAll at the horizon.
  struct Op {
    double t = 0.0;
    std::size_t tenant = 0;  ///< Only for arrivals.
    bool plan_all = false;
  };
  std::vector<Op> ops;
  for (std::size_t i = 0; i < n_tenants; ++i) {
    for (const auto& q : tests[i].queries()) {
      ops.push_back({q.arrival_time, i, false});
    }
  }
  for (double t = 97.0; t < serve_horizon; t += 97.0) {
    ops.push_back({t, 0, true});
  }
  std::sort(ops.begin(), ops.end(),
            [](const Op& a, const Op& b) { return a.t < b.t; });
  ops.push_back({serve_horizon, 0, true});

  // -- Fleet drive ----------------------------------------------------------
  api::ScalerFleet fleet(param.threads);
  sim::FakeDecisionClockBank bank(kClockStep, n_tenants);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n_tenants; ++i) {
    names.push_back("tenant-" + std::to_string(i));
    ASSERT_TRUE(fleet.Register(names[i], build(i)).ok());
    configure(fleet.Find(names[i]), bank.clock(i));
  }
  std::vector<std::vector<bool>> fleet_outcomes(n_tenants);
  std::vector<std::vector<sim::ScalingAction>> fleet_drained(n_tenants);
  for (const auto& op : ops) {
    if (op.plan_all) {
      auto plans = fleet.PlanAll(op.t);
      ASSERT_EQ(plans.size(), n_tenants);
      for (std::size_t i = 0; i < n_tenants; ++i) {
        ASSERT_EQ(plans[i].tenant, names[i]);  // Deterministic ordering.
        ASSERT_TRUE(plans[i].status.ok()) << plans[i].status.ToString();
        fleet_drained[i].push_back(std::move(plans[i].action));
      }
    } else {
      auto outcome = fleet.Observe(names[op.tenant], op.t);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      fleet_outcomes[op.tenant].push_back(outcome->cold_start);
    }
  }

  // -- Sequential reference: one independent Scaler per tenant -------------
  for (std::size_t i = 0; i < n_tenants; ++i) {
    api::Scaler reference = build(i);
    sim::FakeDecisionClock reference_clock(kClockStep);
    configure(&reference, &reference_clock);
    std::vector<bool> outcomes;
    std::vector<sim::ScalingAction> drained;
    for (const auto& op : ops) {
      if (op.plan_all) {
        auto planned = reference.Plan(op.t);
        ASSERT_TRUE(planned.ok()) << planned.status().ToString();
        drained.push_back(std::move(planned).ValueOrDie());
      } else if (op.tenant == i) {
        auto outcome = reference.Observe(op.t);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        outcomes.push_back(outcome->cold_start);
      }
    }

    const api::Scaler* served = fleet.Find(names[i]);
    ASSERT_NE(served, nullptr);
    EXPECT_EQ(fleet_outcomes[i], outcomes) << names[i];
    const auto compare = [&](const std::vector<sim::ScalingAction>& expected,
                             const std::vector<sim::ScalingAction>& got,
                             const char* what) {
      ASSERT_EQ(expected.size(), got.size()) << names[i] << " " << what;
      for (std::size_t k = 0; k < expected.size(); ++k) {
        EXPECT_EQ(expected[k].deletions, got[k].deletions)
            << names[i] << " " << what << " " << k;
        ASSERT_EQ(expected[k].creation_times.size(),
                  got[k].creation_times.size())
            << names[i] << " " << what << " " << k;
        for (std::size_t j = 0; j < expected[k].creation_times.size(); ++j) {
          // Byte-identical parity: exact double equality, no tolerance.
          EXPECT_EQ(expected[k].creation_times[j], got[k].creation_times[j])
              << names[i] << " " << what << " " << k << "/" << j;
        }
      }
    };
    compare(reference.ActionLog(), served->ActionLog(), "log");
    compare(drained, fleet_drained[i], "drained");

    const auto ref_snap = reference.Snapshot();
    const auto fleet_snap = served->Snapshot();
    EXPECT_EQ(ref_snap.now, fleet_snap.now) << names[i];
    EXPECT_EQ(ref_snap.queries_observed, fleet_snap.queries_observed);
    EXPECT_EQ(ref_snap.planning_rounds, fleet_snap.planning_rounds);
    EXPECT_EQ(ref_snap.creations_requested, fleet_snap.creations_requested);
    EXPECT_EQ(ref_snap.deletions_requested, fleet_snap.deletions_requested);
    EXPECT_EQ(ref_snap.cold_starts, fleet_snap.cold_starts);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkerCounts, FleetParityTest,
    ::testing::Values(FleetParityCase{41, 1, false},
                      FleetParityCase{42, 2, true},
                      FleetParityCase{43, 8, false},
                      FleetParityCase{44, 8, true}));

// ---------------------------------------------------------------------------
// NHPP sampler: counts in disjoint windows behave like Poisson counts.
// ---------------------------------------------------------------------------

class NhppWindowTest : public ::testing::TestWithParam<double> {};

TEST_P(NhppWindowTest, WindowCountsHavePoissonMoments) {
  const double rate = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(rate * 1000));
  const double window = 100.0;
  const std::size_t windows = 400;
  auto intensity = *workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(windows, rate), window);
  auto arrivals = workload::SampleNhppTimeRescaling(&rng, intensity);
  ASSERT_TRUE(arrivals.ok());

  std::vector<double> counts(windows, 0.0);
  for (double t : *arrivals) {
    counts[static_cast<std::size_t>(t / window)] += 1.0;
  }
  const double mean = stats::Mean(counts);
  const double var = stats::Variance(counts);
  const double expected = rate * window;
  EXPECT_NEAR(mean, expected, 4.0 * std::sqrt(expected / windows) + 0.05);
  // Fano factor (var/mean) ≈ 1 for Poisson.
  EXPECT_NEAR(var / mean, 1.0, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Rates, NhppWindowTest,
                         ::testing::Values(0.05, 0.2, 1.0, 5.0));

// ---------------------------------------------------------------------------
// Decision rules satisfy their constraints on *fresh* samples (not the ones
// they were optimized on).
// ---------------------------------------------------------------------------

class HpConstraintTest : public ::testing::TestWithParam<double> {};

TEST_P(HpConstraintTest, FreshSampleHitProbabilityMatchesAlpha) {
  const double alpha = GetParam();
  // Feasible regime for every alpha tested: -ln(0.95)/0.003 ≈ 17.1 > τ.
  const double rate = 0.003, tau = 13.0;
  stats::Rng rng(77);
  auto draw = [&](std::size_t n) {
    core::McSamples s;
    s.xi.resize(n);
    s.tau.assign(n, tau);
    for (auto& v : s.xi) v = stats::SampleExponential(&rng, rate);
    return s;
  };
  auto d = core::SolveHpConstrained(draw(100000), alpha);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->feasible);
  // Empirical P(xi > x* + tau) on fresh samples ≈ 1 - alpha.
  auto fresh = draw(100000);
  std::size_t hits = 0;
  for (double xi : fresh.xi) {
    if (xi > d->creation_time + tau) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 1.0 - alpha, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Alphas, HpConstraintTest,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5));

TEST(RtConstraintTest, FreshSampleWaitMatchesTarget) {
  const double rate = 0.01;
  stats::Rng rng(78);
  auto draw = [&](std::size_t n) {
    core::McSamples s;
    s.xi.resize(n);
    s.tau.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.xi[i] = stats::SampleExponential(&rng, rate);
      s.tau[i] = stats::SampleUniform(&rng, 8.0, 18.0);
    }
    return s;
  };
  for (double target : {1.0, 3.0, 6.0}) {
    auto d = core::SolveRtConstrained(draw(60000), target);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d->feasible);
    ASSERT_FALSE(d->unbounded);
    EXPECT_NEAR(core::EstimateExpectedWait(draw(60000), d->creation_time),
                target, 0.15 * target + 0.05);
  }
}

TEST(CostConstraintTest, FreshSampleIdleMatchesBudget) {
  const double rate = 0.01, tau = 13.0;
  stats::Rng rng(79);
  auto draw = [&](std::size_t n) {
    core::McSamples s;
    s.xi.resize(n);
    s.tau.assign(n, tau);
    for (auto& v : s.xi) v = stats::SampleExponential(&rng, rate);
    return s;
  };
  for (double budget : {2.0, 10.0, 40.0}) {
    auto d = core::SolveCostConstrained(draw(60000), budget);
    ASSERT_TRUE(d.ok());
    const double fresh_idle =
        core::EstimateExpectedIdle(draw(60000), d->creation_time);
    // x*=0 branch only requires idle <= budget; the root branch hits it.
    if (d->creation_time == 0.0) {
      EXPECT_LE(fresh_idle, budget * 1.15 + 0.1);
    } else {
      EXPECT_NEAR(fresh_idle, budget, 0.15 * budget + 0.05);
    }
  }
}

// ---------------------------------------------------------------------------
// Periodicity: a spike-train signal (narrow periodic bursts, the
// Google/Alibaba shape) must survive the robust pipeline via the
// no-Hampel fallback.
// ---------------------------------------------------------------------------

TEST(SpikeTrainPeriodicityTest, DetectsNarrowPeriodicSpikes) {
  stats::Rng rng(80);
  const std::size_t period = 60, cycles = 12;
  ts::CountSeries series;
  series.dt = 1.0;
  series.counts.resize(period * cycles);
  for (std::size_t i = 0; i < series.counts.size(); ++i) {
    const bool spike = (i % period) < 3;  // 3-bin spike per 60-bin cycle.
    const double level = spike ? 30.0 : 2.0;
    series.counts[i] =
        static_cast<double>(stats::SamplePoisson(&rng, level));
  }
  auto detected = ts::DetectPeriod(series);
  ASSERT_TRUE(detected.ok());
  ASSERT_GT(detected->period, 0u);
  EXPECT_NEAR(static_cast<double>(detected->period),
              static_cast<double>(period), 3.0);
}

TEST(SpikeTrainPeriodicityTest, IsolatedSpikesAreNotAPeriod) {
  // A handful of *randomly placed* spikes must not produce a period.
  stats::Rng rng(81);
  ts::CountSeries series;
  series.dt = 1.0;
  series.counts.resize(600);
  for (auto& v : series.counts) {
    v = static_cast<double>(stats::SamplePoisson(&rng, 3.0));
  }
  for (int k = 0; k < 5; ++k) {
    series.counts[rng.NextBounded(600)] += 200.0;
  }
  auto detected = ts::DetectPeriod(series);
  ASSERT_TRUE(detected.ok());
  EXPECT_EQ(detected->period, 0u);
}

// ---------------------------------------------------------------------------
// Synthetic-trace statistics: arrival counts track the ground-truth
// intensity integral (the generator really is an NHPP of its intensity).
// ---------------------------------------------------------------------------

TEST(SyntheticConsistencyTest, QueryCountMatchesIntensityIntegral) {
  auto synth = workload::MakeGoogleLikeTrace();
  ASSERT_TRUE(synth.ok());
  const auto& intensity = synth->intensity;
  const double expected = intensity.Cumulative(intensity.horizon());
  const auto n = static_cast<double>(synth->trace.size());
  EXPECT_NEAR(n, expected, 5.0 * std::sqrt(expected));
}

}  // namespace
}  // namespace rs
