// Tests for intensity forecasting (periodic extension / local level) and
// the arrival-path predictor (time rescaling).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rs/core/arrival_predictor.hpp"
#include "rs/core/forecast.hpp"
#include "rs/stats/empirical.hpp"
#include "rs/stats/rng.hpp"

namespace rs::core {
namespace {

TEST(ForecastTest, PeriodicExtensionRepeatsLastCycle) {
  // Two cycles of (1, 2, 3); forecast should repeat (1, 2, 3).
  std::vector<double> intensity{1.0, 2.0, 3.0, 1.0, 2.0, 3.0};
  auto forecast = ForecastIntensityFromSeries(intensity, 60.0, 3, 7);
  ASSERT_TRUE(forecast.ok());
  const auto& rates = forecast->rates();
  ASSERT_EQ(rates.size(), 7u);
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
  EXPECT_DOUBLE_EQ(rates[1], 2.0);
  EXPECT_DOUBLE_EQ(rates[2], 3.0);
  EXPECT_DOUBLE_EQ(rates[3], 1.0);
  EXPECT_DOUBLE_EQ(rates[6], 1.0);
}

TEST(ForecastTest, AperiodicUsesTrailingMean) {
  std::vector<double> intensity(100, 1.0);
  for (std::size_t i = 90; i < 100; ++i) intensity[i] = 5.0;
  ForecastOptions opts;
  opts.level_window = 10;
  auto forecast = ForecastIntensityFromSeries(intensity, 60.0, 0, 5, opts);
  ASSERT_TRUE(forecast.ok());
  for (double r : forecast->rates()) EXPECT_DOUBLE_EQ(r, 5.0);
}

TEST(ForecastTest, AppliesMinimumRateFloor) {
  std::vector<double> intensity(10, 0.0);
  auto forecast = ForecastIntensityFromSeries(intensity, 60.0, 0, 5);
  ASSERT_TRUE(forecast.ok());
  for (double r : forecast->rates()) EXPECT_GT(r, 0.0);
}

TEST(ForecastTest, RejectsBadInputs) {
  EXPECT_FALSE(ForecastIntensityFromSeries({}, 60.0, 0, 5).ok());
  EXPECT_FALSE(ForecastIntensityFromSeries({1.0}, 60.0, 0, 0).ok());
}

TEST(ForecastTest, FromModelUsesConfigPeriod) {
  NhppConfig config;
  config.dt = 30.0;
  config.period = 2;
  NhppModel model(config, {std::log(1.0), std::log(4.0), std::log(1.0),
                           std::log(4.0)});
  auto forecast = ForecastIntensity(model, 4);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR(forecast->rates()[0], 1.0, 1e-9);
  EXPECT_NEAR(forecast->rates()[1], 4.0, 1e-9);
  EXPECT_NEAR(forecast->rates()[2], 1.0, 1e-9);
}

TEST(ArrivalPredictorTest, HomogeneousArrivalsHaveGammaMoments) {
  // Under constant rate λ, the j-th upcoming arrival is Gamma(j, 1/λ):
  // mean j/λ.
  const double rate = 0.5;
  auto intensity = workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(1000, rate), 10.0);
  ASSERT_TRUE(intensity.ok());
  stats::Rng rng(1);
  auto samples = PredictUpcomingQueries(
      *intensity, /*now=*/0.0, /*num_queries=*/5, /*num_paths=*/40000,
      stats::DurationDistribution::Deterministic(0.0), &rng);
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 5u);
  for (std::size_t j = 0; j < 5; ++j) {
    const double mean = stats::Mean((*samples)[j].xi);
    const double expected = static_cast<double>(j + 1) / rate;
    EXPECT_NEAR(mean, expected, 0.05 * expected) << "query " << j;
  }
}

TEST(ArrivalPredictorTest, SkipShiftsTheDistribution) {
  const double rate = 1.0;
  auto intensity = workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(1000, rate), 10.0);
  ASSERT_TRUE(intensity.ok());
  stats::Rng rng(2);
  auto skipped = PredictUpcomingQueries(
      *intensity, 0.0, 1, 40000,
      stats::DurationDistribution::Deterministic(0.0), &rng, /*skip=*/9);
  ASSERT_TRUE(skipped.ok());
  // Skipping 9 then sampling one = the 10th arrival: mean 10/λ = 10.
  EXPECT_NEAR(stats::Mean((*skipped)[0].xi), 10.0, 0.5);
}

TEST(ArrivalPredictorTest, RespectsIntensityShape) {
  // Zero intensity for the first 100 s, then high: arrivals land after 100.
  std::vector<double> rates(20, 0.0);
  for (std::size_t i = 10; i < 20; ++i) rates[i] = 5.0;
  auto intensity = workload::PiecewiseConstantIntensity::Make(rates, 10.0);
  ASSERT_TRUE(intensity.ok());
  stats::Rng rng(3);
  auto samples = PredictUpcomingQueries(
      *intensity, 0.0, 1, 1000, stats::DurationDistribution::Deterministic(0.0),
      &rng);
  ASSERT_TRUE(samples.ok());
  for (double xi : (*samples)[0].xi) EXPECT_GE(xi, 100.0 - 1e-9);
}

TEST(ArrivalPredictorTest, NowOffsetsBase) {
  const double rate = 1.0;
  auto intensity = workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(100, rate), 10.0);
  ASSERT_TRUE(intensity.ok());
  stats::Rng rng(4);
  auto samples = PredictUpcomingQueries(
      *intensity, /*now=*/500.0, 1, 20000,
      stats::DurationDistribution::Deterministic(0.0), &rng);
  ASSERT_TRUE(samples.ok());
  // Memoryless: relative first-arrival mean is still 1/λ = 1.
  EXPECT_NEAR(stats::Mean((*samples)[0].xi), 1.0, 0.05);
}

TEST(ArrivalPredictorTest, PendingSamplesComeFromDistribution) {
  auto intensity = workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(10, 1.0), 10.0);
  ASSERT_TRUE(intensity.ok());
  stats::Rng rng(5);
  auto samples = PredictUpcomingQueries(
      *intensity, 0.0, 1, 1000,
      stats::DurationDistribution::Deterministic(13.0), &rng);
  ASSERT_TRUE(samples.ok());
  for (double tau : (*samples)[0].tau) EXPECT_DOUBLE_EQ(tau, 13.0);
}

TEST(ArrivalPredictorTest, RejectsBadArguments) {
  auto intensity = workload::PiecewiseConstantIntensity::Make({1.0}, 1.0);
  ASSERT_TRUE(intensity.ok());
  stats::Rng rng(6);
  auto pending = stats::DurationDistribution::Deterministic(0.0);
  EXPECT_FALSE(
      PredictUpcomingQueries(*intensity, 0.0, 0, 10, pending, &rng).ok());
  EXPECT_FALSE(
      PredictUpcomingQueries(*intensity, 0.0, 1, 0, pending, &rng).ok());
  EXPECT_FALSE(
      PredictUpcomingQueries(*intensity, 0.0, 1, 10, pending, nullptr).ok());
}

}  // namespace
}  // namespace rs::core
