// End-to-end integration tests through the public rs::api facade: the full
// pipeline (periodicity detection → ADMM fit → forecast → policy → replay)
// on synthetic periodic workloads, including the headline comparison that
// RobustScaler beats the reactive baseline's QoS at comparable cost.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/stats/rng.hpp"

namespace rs::api {
namespace {

/// Periodic synthetic workload: 6 days of a diurnal-ish pattern with period
/// 2 hours (keeps the fit small and fast), split 5 train / 1 test.
struct Scenario {
  workload::Trace train;
  workload::Trace test;
  workload::PiecewiseConstantIntensity truth;  // Over the test day.
};

Scenario MakePeriodicScenario(std::uint64_t seed) {
  const double period_s = 7200.0;
  const double horizon = 6.0 * 24.0 * 3600.0 / 12.0;  // 12 periods total
  const double dt = 60.0;
  const auto bins = static_cast<std::size_t>(horizon / dt);
  std::vector<double> rates(bins);
  for (std::size_t t = 0; t < bins; ++t) {
    const double phase =
        std::fmod((static_cast<double>(t) + 0.5) * dt, period_s) / period_s;
    rates[t] = 0.4 + 0.35 * std::sin(2.0 * M_PI * phase);
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  stats::Rng rng(seed);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(20.0));
  const double split = horizon - 2.0 * period_s;  // Last 2 cycles = test.
  auto [train, test] = trace.SplitAt(split);

  std::vector<double> test_rates(
      rates.end() - static_cast<std::ptrdiff_t>(2.0 * period_s / dt),
      rates.end());
  Scenario s{std::move(train), std::move(test),
             *workload::PiecewiseConstantIntensity::Make(test_rates, dt)};
  return s;
}

TEST(FacadeTest, DetectsPeriodAndFits) {
  auto scenario = MakePeriodicScenario(1);
  auto scaler = ScalerBuilder()
                    .WithTrace(scenario.train)
                    .WithBinWidth(60.0)
                    .WithForecastHorizon(scenario.test.horizon())
                    .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();
  const auto& trained = scaler->trained();
  // Period is 7200 s = 120 bins at dt=60.
  ASSERT_GT(trained.period.period, 0u);
  EXPECT_NEAR(static_cast<double>(trained.period.period), 120.0, 10.0);
  EXPECT_EQ(trained.model.bins(), trained.counts.size());
  EXPECT_GE(scaler->forecast().horizon(), scenario.test.horizon() - 1e-6);
}

TEST(FacadeTest, ForecastTracksGroundTruth) {
  auto scenario = MakePeriodicScenario(2);
  auto scaler = ScalerBuilder()
                    .WithTrace(scenario.train)
                    .WithBinWidth(60.0)
                    .WithForecastHorizon(scenario.test.horizon())
                    .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();
  // Compare forecast intensity against the ground-truth test intensity.
  double err = 0.0, scale = 0.0;
  const std::size_t bins = scenario.truth.bins();
  for (std::size_t t = 0; t < bins; ++t) {
    const double time = (static_cast<double>(t) + 0.5) * 60.0;
    err += std::abs(scaler->forecast().Rate(time) - scenario.truth.Rate(time));
    scale += scenario.truth.Rate(time);
  }
  EXPECT_LT(err / scale, 0.35);  // Mean relative error under 35%.
}

TEST(FacadeTest, EndToEndBeatsReactiveQoS) {
  auto scenario = MakePeriodicScenario(3);
  auto scaler = ScalerBuilder()
                    .WithTrace(scenario.train)
                    .WithBinWidth(60.0)
                    .WithForecastHorizon(scenario.test.horizon())
                    .WithTarget(HitRate{0.9})
                    .WithMcSamples(300)
                    .WithPlanningInterval(2.0)
                    .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();

  auto rs_metrics = scaler->Evaluate(scenario.test);
  ASSERT_TRUE(rs_metrics.ok()) << rs_metrics.status().ToString();

  auto reactive = MakeStrategy({.name = "backup_pool", .params = {}});
  ASSERT_TRUE(reactive.ok()) << reactive.status().ToString();
  auto reactive_metrics = Evaluate(scenario.test, reactive->get());
  ASSERT_TRUE(reactive_metrics.ok()) << reactive_metrics.status().ToString();

  // QoS: the proactive policy must achieve a hit rate near the 0.9 target
  // while the reactive baseline hits nothing.
  EXPECT_DOUBLE_EQ(reactive_metrics->hit_rate, 0.0);
  EXPECT_GT(rs_metrics->hit_rate, 0.75);
  EXPECT_LT(rs_metrics->rt_avg, reactive_metrics->rt_avg);
}

TEST(FacadeTest, RejectsInvalidConfigurations) {
  // No trace at all.
  EXPECT_FALSE(ScalerBuilder().Build().ok());
  // Empty training trace.
  workload::Trace empty({}, 0.0);
  EXPECT_FALSE(ScalerBuilder().WithTrace(empty).Build().ok());
  // Bad bin width.
  workload::Trace some({{1.0, 1.0}}, 100.0);
  EXPECT_FALSE(ScalerBuilder().WithTrace(some).WithBinWidth(0.0).Build().ok());
}

TEST(FacadeTest, AperiodicTrainingStillWorks) {
  // Constant-rate traffic: no period detected, level forecast used.
  stats::Rng rng(4);
  auto intensity = *workload::PiecewiseConstantIntensity::Make(
      std::vector<double>(200, 0.3), 60.0);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(10.0));
  auto scaler = ScalerBuilder()
                    .WithTrace(trace)
                    .WithBinWidth(60.0)
                    .WithForecastHorizon(3600.0)
                    .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();
  EXPECT_EQ(scaler->trained().period.period, 0u);
  // Level forecast near the true 0.3 QPS.
  EXPECT_NEAR(scaler->forecast().Rate(100.0), 0.3, 0.12);
}

TEST(IntegrationTest, CrsLikePipelineDetectsWeeklyOrDailyStructure) {
  workload::SyntheticTraceOptions topts;
  topts.noise_sigma = 0.2;
  auto synth = workload::MakeCrsLikeTrace(topts);
  ASSERT_TRUE(synth.ok());
  auto [train, test] = synth->trace.SplitAt(3.0 * 7.0 * 86400.0);

  const double dt = 600.0;  // 10-minute bins (weekly period = 1008 bins).
  auto scaler = ScalerBuilder()
                    .WithTrace(train)
                    .WithBinWidth(dt)
                    .WithAggregateFactor(6)  // Detect on hourly bins.
                    .WithForecastHorizon(test.horizon())
                    .Build();
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();
  // Daily (144 bins) or weekly (1008 bins) structure should be found.
  EXPECT_GT(scaler->trained().period.period, 0u);
  const double period_days =
      static_cast<double>(scaler->trained().period.period) * dt / 86400.0;
  EXPECT_TRUE(std::abs(period_days - 1.0) < 0.3 ||
              std::abs(period_days - 7.0) < 1.0)
      << "period detected: " << period_days << " days";
}

}  // namespace
}  // namespace rs::api
