// Tests of the rs::trace subsystem (capture → replay → shrink → generated
// regression tests):
//  * codec round-trips through bytes and the Reader/Writer section API;
//  * the headline replay-parity guarantee: a recorded serving session over
//    all five registry strategies re-drives byte-identically under fleet
//    worker counts {0, 1, 8};
//  * mid-session attach yields a self-contained capture (snapshot-prefixed);
//  * lifecycle events (retire, re-register, immediate and plan-boundary
//    model swaps) replay cleanly;
//  * charged-decision sessions under an injected FakeDecisionClock replay
//    with clock-position verification, and refuse to replay without a
//    replacement clock — a descriptive error, never a wall-clock fallback;
//  * a tampered capture diverges, Shrink() reduces it to the minimal
//    failing prefix, and EmitRegressionTest renders a self-contained test;
//  * corruption robustness: every probed truncation and bit flip of a
//    capture file fails with a clean Status — this file runs under the
//    ASan/UBSan CI job, which is the real assertion (mirrors persist_test);
//  * the tap exclusion rules (one tap at a time, tap xor freshness loop).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/core/pipeline.hpp"
#include "rs/simulator/decision_clock.hpp"
#include "rs/stats/rng.hpp"
#include "rs/trace/trace.hpp"

namespace rs::trace {
namespace {

// ---------------------------------------------------------------------------
// Fixtures: the same small sinusoidal workload the fleet tests train on, one
// tenant per registry strategy, a scripted serving session with lifecycle
// churn recorded through a Recorder.
// ---------------------------------------------------------------------------

constexpr double kDt = 30.0;

const char* const kAllStrategySpecs[] = {
    "backup_pool:pool_size=2",
    "adaptive_backup_pool:multiplier=1.5,update_interval=60,"
    "estimate_window=120",
    "robust_hp:target=0.9",
    "robust_rt:target=1.0",
    "robust_cost:target=2.0",
};

struct Workload {
  workload::Trace train;
  workload::Trace test;
};

Workload MakeTraceWorkload(std::uint64_t seed) {
  const double period_s = 600.0;
  const double horizon = 8.0 * period_s;
  std::vector<double> rates;
  for (double t = 0.5 * kDt; t < horizon; t += kDt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(0.3 + 0.2 * std::sin(2.0 * M_PI * phase));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, kDt);
  stats::Rng rng(seed);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  Workload w;
  auto [train, test] = trace.SplitAt(horizon - 2.0 * period_s);
  w.train = std::move(train);
  w.test = std::move(test);
  return w;
}

api::Scaler BuildTenantScaler(const Workload& w, const char* spec_string) {
  auto spec = api::ParseStrategySpec(spec_string);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto scaler = api::ScalerBuilder()
                    .WithTrace(w.train)
                    .WithBinWidth(kDt)
                    .WithForecastHorizon(w.test.horizon())
                    .WithStrategy(*spec)
                    .WithPlanningInterval(2.0)
                    .WithMcSamples(40)
                    .Build();
  EXPECT_TRUE(scaler.ok()) << scaler.status().ToString();
  return std::move(scaler).ValueOrDie();
}

/// Records a serving session over all five strategies: interleaved arrivals,
/// single-tenant Plan drains, PlanAll batches, and (optionally) lifecycle
/// churn — a retire + re-register, an immediate swap, and a plan-boundary
/// swap. Returns the capture.
Capture RecordDemoSession(bool with_lifecycle) {
  const Workload w = MakeTraceWorkload(91);
  api::ScalerFleet fleet(2);
  Recorder recorder("trace_test demo session");
  EXPECT_TRUE(recorder.Attach(&fleet).ok());

  std::vector<std::string> names;
  for (const char* spec : kAllStrategySpecs) {
    const std::string name = "svc-" + std::to_string(names.size());
    EXPECT_TRUE(fleet.Register(name, BuildTenantScaler(w, spec)).ok());
    names.push_back(name);
  }

  double next_batch = 50.0;
  bool churned = false;
  for (const auto& q : w.test.queries()) {
    if (q.arrival_time > 300.0) break;
    while (q.arrival_time >= next_batch) {
      for (const auto& plan : fleet.PlanAll(next_batch)) {
        EXPECT_TRUE(plan.status.ok())
            << plan.tenant << ": " << plan.status.ToString();
      }
      if (with_lifecycle && !churned && next_batch >= 150.0) {
        churned = true;
        EXPECT_TRUE(fleet.Retire(names[0]).ok());
        EXPECT_TRUE(
            fleet.Register(names[0], BuildTenantScaler(w, kAllStrategySpecs[0]))
                .ok());
        EXPECT_TRUE(
            fleet
                .ReplaceModel(names[1], BuildTenantScaler(
                                            w, "backup_pool:pool_size=1"))
                .ok());
        EXPECT_TRUE(fleet
                        .ReplaceModelAtNextPlan(
                            names[2],
                            BuildTenantScaler(w, kAllStrategySpecs[2]))
                        .ok());
      }
      next_batch += 50.0;
    }
    for (const auto& name : names) {
      auto outcome = fleet.Observe(name, q.arrival_time);
      EXPECT_TRUE(outcome.ok()) << name << ": " << outcome.status().ToString();
    }
  }
  // A couple of single-tenant drains so kPlan events appear too.
  EXPECT_TRUE(fleet.Plan(names[3], next_batch).ok());
  EXPECT_TRUE(fleet.Plan(names[4], next_batch).ok());
  for (const auto& plan : fleet.PlanAll(next_batch + 10.0)) {
    EXPECT_TRUE(plan.status.ok())
        << plan.tenant << ": " << plan.status.ToString();
  }

  recorder.Detach();
  return recorder.TakeCapture();
}

/// The plain session is recorded once and shared (recording trains five
/// scalers; the replays are what each test actually exercises).
const Capture& DemoCapture() {
  static const Capture capture = RecordDemoSession(/*with_lifecycle=*/false);
  return capture;
}

void ExpectEventsEqual(const Event& a, const Event& b, std::size_t index) {
  EXPECT_EQ(a.kind, b.kind) << "event " << index;
  EXPECT_EQ(a.id, b.id) << "event " << index;
  EXPECT_EQ(a.name, b.name) << "event " << index;
  EXPECT_EQ(a.state, b.state) << "event " << index;
  EXPECT_EQ(a.at_next_plan, b.at_next_plan) << "event " << index;
  EXPECT_EQ(a.time, b.time) << "event " << index;
  EXPECT_EQ(a.cold_start, b.cold_start) << "event " << index;
  EXPECT_EQ(a.cancel_earliest, b.cancel_earliest) << "event " << index;
  EXPECT_EQ(a.clock.has_position, b.clock.has_position) << "event " << index;
  EXPECT_EQ(a.clock.time, b.clock.time) << "event " << index;
  EXPECT_EQ(a.clock.readings, b.clock.readings) << "event " << index;
  EXPECT_EQ(a.action.creation_times, b.action.creation_times)
      << "event " << index;
  EXPECT_EQ(a.action.deletions, b.action.deletions) << "event " << index;
  ASSERT_EQ(a.plans.size(), b.plans.size()) << "event " << index;
  for (std::size_t j = 0; j < a.plans.size(); ++j) {
    EXPECT_EQ(a.plans[j].id, b.plans[j].id) << "event " << index;
    EXPECT_EQ(a.plans[j].ok, b.plans[j].ok) << "event " << index;
    EXPECT_EQ(a.plans[j].clock.has_position, b.plans[j].clock.has_position)
        << "event " << index;
    EXPECT_EQ(a.plans[j].action.creation_times,
              b.plans[j].action.creation_times)
        << "event " << index;
    EXPECT_EQ(a.plans[j].action.deletions, b.plans[j].action.deletions)
        << "event " << index;
  }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(TraceCodecTest, RoundTripsThroughBytes) {
  const Capture& original = DemoCapture();
  ASSERT_GT(original.events.size(), 10u);

  auto bytes = original.ToBytes();
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto decoded = Capture::FromBytes(bytes.ValueOrDie());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  EXPECT_EQ(decoded->producer, original.producer);
  EXPECT_EQ(decoded->label, original.label);
  ASSERT_EQ(decoded->events.size(), original.events.size());
  for (std::size_t i = 0; i < original.events.size(); ++i) {
    ExpectEventsEqual(original.events[i], decoded->events[i], i);
  }

  // Stream form decodes to the same thing.
  std::stringstream stream;
  ASSERT_TRUE(original.Save(stream).ok());
  auto from_stream = Capture::Load(stream);
  ASSERT_TRUE(from_stream.ok()) << from_stream.status().ToString();
  EXPECT_EQ(from_stream->events.size(), original.events.size());
}

TEST(TraceCodecTest, CaptureHoldsEveryEventKindItRecorded) {
  const Capture lifecycle = RecordDemoSession(/*with_lifecycle=*/true);
  std::size_t seen[7] = {0, 0, 0, 0, 0, 0, 0};
  for (const Event& event : lifecycle.events) {
    seen[static_cast<std::size_t>(event.kind)]++;
  }
  EXPECT_GE(seen[1], 6u) << "registers (5 initial + 1 re-register)";
  EXPECT_EQ(seen[2], 1u) << "retires";
  EXPECT_EQ(seen[3], 2u) << "model swaps";
  EXPECT_GT(seen[4], 100u) << "observes";
  EXPECT_EQ(seen[5], 2u) << "the two single-tenant drains at the tail";
  EXPECT_GE(seen[6], 5u) << "plan-all batches";

  // Replaying the lifecycle session is covered below; here just confirm the
  // re-registered tenant got a fresh id (ids are never reused).
  std::vector<std::uint32_t> register_ids;
  for (const Event& event : lifecycle.events) {
    if (event.kind == EventKind::kRegister) register_ids.push_back(event.id);
  }
  std::vector<std::uint32_t> sorted = register_ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
      << "a tenant id was reused within one capture";
}

// ---------------------------------------------------------------------------
// Replay parity
// ---------------------------------------------------------------------------

TEST(TraceReplayTest, AllStrategiesReplayByteIdenticallyAcrossWorkerCounts) {
  // The headline guarantee: the recorded session (five registry strategies,
  // interleaved arrivals, mixed Plan/PlanAll) re-drives byte-identically
  // whatever the replay fleet's worker count — and the capture survives a
  // byte round-trip first, so what is verified is the on-disk artifact.
  auto bytes = DemoCapture().ToBytes();
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto capture = Capture::FromBytes(bytes.ValueOrDie());
  ASSERT_TRUE(capture.ok()) << capture.status().ToString();

  for (const std::size_t workers : {std::size_t{0}, std::size_t{1},
                                    std::size_t{8}}) {
    ReplayOptions options;
    options.worker_threads = workers;
    auto report = Replay(capture.ValueOrDie(), options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report->diverged)
        << "workers=" << workers << ": " << report->detail;
    EXPECT_EQ(report->events_applied, capture->events.size())
        << "workers=" << workers;
  }
}

TEST(TraceReplayTest, LifecycleChurnReplaysCleanly) {
  const Capture capture = RecordDemoSession(/*with_lifecycle=*/true);
  for (const std::size_t workers : {std::size_t{0}, std::size_t{8}}) {
    ReplayOptions options;
    options.worker_threads = workers;
    auto report = Replay(capture, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report->diverged)
        << "workers=" << workers << ": " << report->detail;
  }
}

TEST(TraceReplayTest, MidSessionAttachYieldsSelfContainedCapture) {
  const Workload w = MakeTraceWorkload(92);
  api::ScalerFleet fleet(0);
  ASSERT_TRUE(
      fleet.Register("early", BuildTenantScaler(w, "robust_hp:target=0.9"))
          .ok());
  ASSERT_TRUE(
      fleet.Register("later", BuildTenantScaler(w, "backup_pool:pool_size=2"))
          .ok());

  // Serve un-recorded traffic first: the capture must not need it.
  for (const auto& q : w.test.queries()) {
    if (q.arrival_time > 120.0) break;
    ASSERT_TRUE(fleet.Observe("early", q.arrival_time).ok());
    ASSERT_TRUE(fleet.Observe("later", q.arrival_time).ok());
  }
  (void)fleet.PlanAll(120.0);

  Recorder recorder("mid-session attach");
  ASSERT_TRUE(recorder.Attach(&fleet).ok());
  for (const auto& q : w.test.queries()) {
    if (q.arrival_time <= 120.0) continue;
    if (q.arrival_time > 240.0) break;
    ASSERT_TRUE(fleet.Observe("early", q.arrival_time).ok());
    ASSERT_TRUE(fleet.Observe("later", q.arrival_time).ok());
  }
  for (const auto& plan : fleet.PlanAll(240.0)) {
    ASSERT_TRUE(plan.status.ok()) << plan.status.ToString();
  }
  recorder.Detach();
  const Capture capture = recorder.TakeCapture();

  // Attach snapshots the live tenants first, in registration order.
  ASSERT_GE(capture.events.size(), 3u);
  EXPECT_EQ(capture.events[0].kind, EventKind::kRegister);
  EXPECT_EQ(capture.events[0].name, "early");
  EXPECT_FALSE(capture.events[0].state.empty());
  EXPECT_EQ(capture.events[1].kind, EventKind::kRegister);
  EXPECT_EQ(capture.events[1].name, "later");

  auto report = Replay(capture);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->diverged) << report->detail;
}

TEST(TraceReplayTest, InjectedClockSessionsVerifyClockPositions) {
  // A charged-decision session under an injected FakeDecisionClock: the
  // clock position travels inside the embedded snapshot, advances on every
  // plan, and replay verifies it bit-for-bit after each drain.
  const Workload w = MakeTraceWorkload(93);
  sim::FakeDecisionClock live_clock(0.001);
  api::Scaler scaler = BuildTenantScaler(w, "robust_hp:target=0.9");
  sim::EngineOptions engine;
  engine.pending = stats::DurationDistribution::Deterministic(13.0);
  engine.charge_decision_wall_time = true;
  engine.decision_clock = &live_clock;
  ASSERT_TRUE(scaler.ConfigureServing(engine).ok());

  api::ScalerFleet fleet(0);
  Recorder recorder("charged-decision session");
  ASSERT_TRUE(recorder.Attach(&fleet).ok());
  ASSERT_TRUE(fleet.Register("svc", std::move(scaler)).ok());
  double next_plan = 40.0;
  for (const auto& q : w.test.queries()) {
    if (q.arrival_time > 200.0) break;
    while (q.arrival_time >= next_plan) {
      ASSERT_TRUE(fleet.Plan("svc", next_plan).ok());
      next_plan += 40.0;
    }
    ASSERT_TRUE(fleet.Observe("svc", q.arrival_time).ok());
  }
  ASSERT_TRUE(fleet.Plan("svc", next_plan).ok());
  recorder.Detach();
  const Capture capture = recorder.TakeCapture();

  // The recorded plan events carry real clock positions.
  bool saw_position = false;
  for (const Event& event : capture.events) {
    if (event.kind == EventKind::kPlan && event.clock.has_position) {
      saw_position = true;
    }
  }
  EXPECT_TRUE(saw_position);

  // Without a replacement clock: a descriptive hard error, not a silent
  // wall-clock fallback (and not a "divergence" — the capture is fine).
  auto missing = Replay(capture);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("DecisionClock"),
            std::string::npos)
      << missing.status().ToString();

  // With replacement clocks scripted like the original: byte parity,
  // including the per-plan clock positions.
  std::deque<sim::FakeDecisionClock> replay_clocks;
  ReplayOptions options;
  options.decision_clock_for = [&replay_clocks](const std::string&) {
    replay_clocks.emplace_back(0.001);
    return &replay_clocks.back();
  };
  auto report = Replay(capture, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->diverged) << report->detail;

  // A replacement clock with a different script must be caught by the
  // clock-position check, not silently accepted.
  std::deque<sim::FakeDecisionClock> wrong_clocks;
  ReplayOptions wrong;
  wrong.decision_clock_for = [&wrong_clocks](const std::string&) {
    wrong_clocks.emplace_back(0.002);
    return &wrong_clocks.back();
  };
  auto mismatched = Replay(capture, wrong);
  ASSERT_TRUE(mismatched.ok()) << mismatched.status().ToString();
  EXPECT_TRUE(mismatched->diverged);
  EXPECT_NE(mismatched->detail.find("clock"), std::string::npos)
      << mismatched->detail;
}

// ---------------------------------------------------------------------------
// Shrinking + generated regression tests
// ---------------------------------------------------------------------------

/// Flips one recorded creation time in the last plan-carrying event — the
/// stand-in for "the current build emits different bytes than the capture".
Capture TamperLastAction(Capture capture, std::size_t* tampered_index) {
  for (std::size_t i = capture.events.size(); i-- > 0;) {
    Event& event = capture.events[i];
    if (event.kind == EventKind::kPlan &&
        !event.action.creation_times.empty()) {
      event.action.creation_times[0] += 0.5;
      *tampered_index = i;
      return capture;
    }
    if (event.kind == EventKind::kPlanAll) {
      for (PlannedTenant& plan : event.plans) {
        if (plan.ok && !plan.action.creation_times.empty()) {
          plan.action.creation_times[0] += 0.5;
          *tampered_index = i;
          return capture;
        }
      }
    }
  }
  ADD_FAILURE() << "demo capture carries no creations to tamper with";
  *tampered_index = 0;
  return capture;
}

TEST(TraceShrinkTest, TamperedCaptureDivergesAndShrinksToMinimalPrefix) {
  std::size_t tampered = 0;
  const Capture bad = TamperLastAction(DemoCapture(), &tampered);
  ASSERT_GT(tampered, 0u);

  auto report = Replay(bad);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->diverged);
  EXPECT_EQ(report->divergence_event, tampered);
  EXPECT_NE(report->detail.find("recorded"), std::string::npos)
      << report->detail;

  auto shrunk = Shrink(bad);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_EQ(shrunk->minimal_events, tampered + 1)
      << "the minimal failing prefix ends at the tampered event";
  EXPECT_EQ(shrunk->capture.events.size(), shrunk->minimal_events);
  EXPECT_TRUE(shrunk->report.diverged);

  // One shorter and the prefix replays cleanly — minimality, verified.
  auto shorter = Replay(bad.Prefix(shrunk->minimal_events - 1));
  ASSERT_TRUE(shorter.ok()) << shorter.status().ToString();
  EXPECT_FALSE(shorter->diverged) << shorter->detail;
}

TEST(TraceShrinkTest, CleanCaptureRefusesToShrink) {
  auto shrunk = Shrink(DemoCapture());
  ASSERT_FALSE(shrunk.ok());
  EXPECT_NE(shrunk.status().message().find("nothing to shrink"),
            std::string::npos)
      << shrunk.status().ToString();
}

TEST(TraceShrinkTest, EmitRegressionTestRendersSelfContainedSource) {
  std::size_t tampered = 0;
  const Capture bad = TamperLastAction(DemoCapture(), &tampered);
  auto shrunk = Shrink(bad);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();

  std::ostringstream source;
  ASSERT_TRUE(
      EmitRegressionTest(shrunk->capture, "ShrunkDemoSession", source).ok());
  const std::string text = source.str();
  EXPECT_NE(text.find("TEST(GeneratedTraceRegression, ShrunkDemoSession)"),
            std::string::npos);
  EXPECT_NE(text.find("kCaptureBytes"), std::string::npos);
  EXPECT_NE(text.find("rs/trace/trace.hpp"), std::string::npos);
  EXPECT_NE(text.find("GENERATED"), std::string::npos);
  // Worker sweep {0, 1, 8} is part of the emitted contract.
  EXPECT_NE(text.find("std::size_t{8}"), std::string::npos);

  // The embedded bytes decode back to the shrunk capture.
  const std::string needle = "kCaptureBytes[] = {";
  const std::size_t start = text.find(needle);
  ASSERT_NE(start, std::string::npos);
  const std::size_t end = text.find("};", start);
  ASSERT_NE(end, std::string::npos);
  std::string bytes;
  for (std::size_t i = start + needle.size(); i < end;) {
    const std::size_t hex = text.find("0x", i);
    if (hex == std::string::npos || hex >= end) break;
    bytes.push_back(static_cast<char>(
        std::stoul(text.substr(hex + 2, 2), nullptr, 16)));
    i = hex + 4;
  }
  auto decoded = Capture::FromBytes(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->events.size(), shrunk->capture.events.size());

  // Identifier discipline.
  std::ostringstream sink;
  EXPECT_FALSE(EmitRegressionTest(shrunk->capture, "9starts_with_digit", sink)
                   .ok());
  EXPECT_FALSE(EmitRegressionTest(shrunk->capture, "has-dash", sink).ok());
  EXPECT_FALSE(EmitRegressionTest(shrunk->capture, "", sink).ok());
}

TEST(TraceShrinkTest, EmitRegressionTestRefusesClockBoundCaptures) {
  // Build a minimal capture whose snapshot was taken under an injected
  // clock: a generated test cannot know the clock's script, so emission is
  // refused with the replayer's descriptive error.
  const Workload w = MakeTraceWorkload(94);
  sim::FakeDecisionClock clock(0.001);
  api::Scaler scaler = BuildTenantScaler(w, "backup_pool:pool_size=1");
  sim::EngineOptions engine;
  engine.charge_decision_wall_time = true;
  engine.decision_clock = &clock;
  ASSERT_TRUE(scaler.ConfigureServing(engine).ok());

  api::ScalerFleet fleet(0);
  Recorder recorder;
  ASSERT_TRUE(recorder.Attach(&fleet).ok());
  ASSERT_TRUE(fleet.Register("svc", std::move(scaler)).ok());
  ASSERT_TRUE(fleet.Observe("svc", 1.0).ok());
  ASSERT_TRUE(fleet.Plan("svc", 5.0).ok());
  recorder.Detach();

  std::ostringstream sink;
  auto refused =
      EmitRegressionTest(recorder.capture(), "NeedsInjectedClock", sink);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("DecisionClock"), std::string::npos)
      << refused.ToString();
}

// ---------------------------------------------------------------------------
// Corruption robustness (runs under the ASan/UBSan CI job)
// ---------------------------------------------------------------------------

TEST(TraceCorruptionTest, TruncationsAndBitFlipsFailCleanly) {
  auto encoded = DemoCapture().ToBytes();
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  const std::string& bytes = encoded.ValueOrDie();
  ASSERT_GT(bytes.size(), 64u);

  // Every truncation boundary near the ends plus a stride through the
  // middle: decode must fail with a Status (CRC/bounds), never crash.
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < 32 && i < bytes.size(); ++i) cuts.push_back(i);
  for (std::size_t i = 1; i <= 32 && i < bytes.size(); ++i) {
    cuts.push_back(bytes.size() - i);
  }
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 64);
  for (std::size_t i = 32; i + 32 < bytes.size(); i += stride) {
    cuts.push_back(i);
  }
  for (const std::size_t cut : cuts) {
    auto truncated = Capture::FromBytes(bytes.substr(0, cut));
    EXPECT_FALSE(truncated.ok()) << "truncation at " << cut << " decoded";
  }

  // Single bit flips anywhere must be caught — the container CRC detects
  // all of them by construction. Probe a stride plus both file ends.
  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < 16; ++i) offsets.push_back(i);
  for (std::size_t i = 1; i <= 16; ++i) offsets.push_back(bytes.size() - i);
  for (std::size_t i = 16; i + 16 < bytes.size(); i += stride) {
    offsets.push_back(i);
  }
  for (const std::size_t offset : offsets) {
    std::string flipped = bytes;
    flipped[offset] = static_cast<char>(
        flipped[offset] ^ static_cast<char>(1u << (offset % 8)));
    auto corrupt = Capture::FromBytes(std::move(flipped));
    EXPECT_FALSE(corrupt.ok()) << "bit flip at " << offset << " decoded";
  }
}

TEST(TraceCorruptionTest, PostCrcTamperingIsRejectedByStructureChecks) {
  // Corruption that *recomputes* the CRC (a hostile or buggy writer rather
  // than bit rot) must still fail the structural validation: bogus event
  // kinds, impossible counts, empty tenant names.
  const Capture& demo = DemoCapture();

  Capture bogus_kind = demo;
  bogus_kind.events.resize(2);
  // A real observe first so the section is big enough to pass the
  // count-vs-size plausibility guard; the reader must then stop at the
  // unknown kind byte.
  bogus_kind.events[0] = Event{};
  bogus_kind.events[0].kind = EventKind::kObserve;
  bogus_kind.events[0].id = 1;
  bogus_kind.events[0].time = 1.0;
  bogus_kind.events[1] = Event{};
  bogus_kind.events[1].kind = static_cast<EventKind>(200);
  auto encoded = bogus_kind.ToBytes();
  // The writer encodes unknown kinds as-is (the switch falls through); the
  // reader is the side that must reject them.
  ASSERT_TRUE(encoded.ok());
  auto decoded = Capture::FromBytes(encoded.ValueOrDie());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("event kind"), std::string::npos)
      << decoded.status().ToString();

  Capture empty_name = demo;
  empty_name.events.resize(1);
  empty_name.events[0] = Event{};
  empty_name.events[0].kind = EventKind::kRegister;
  empty_name.events[0].id = 1;
  empty_name.events[0].name = "";
  empty_name.events[0].state = "x";
  auto encoded_name = empty_name.ToBytes();
  ASSERT_TRUE(encoded_name.ok());
  auto decoded_name = Capture::FromBytes(encoded_name.ValueOrDie());
  ASSERT_FALSE(decoded_name.ok());
  EXPECT_NE(decoded_name.status().message().find("empty name"),
            std::string::npos)
      << decoded_name.status().ToString();
}

// ---------------------------------------------------------------------------
// Tap exclusion rules
// ---------------------------------------------------------------------------

TEST(TraceTapTest, OneTapAtATimeAndNeverWithFreshness) {
  const Workload w = MakeTraceWorkload(95);
  {
    api::ScalerFleet fleet(0);
    EXPECT_FALSE(fleet.AttachTap(nullptr).ok());

    Recorder first("first");
    ASSERT_TRUE(first.Attach(&fleet).ok());
    EXPECT_FALSE(first.Attach(&fleet).ok()) << "double attach";

    Recorder second("second");
    auto refused = second.Attach(&fleet);
    ASSERT_FALSE(refused.ok());
    EXPECT_NE(refused.message().find("another tap"), std::string::npos)
        << refused.ToString();

    // Tap attached → the freshness loop is refused (its background retrains
    // finish at wall-time-dependent moments; the capture could not replay).
    api::FreshnessPolicy policy;
    policy.pipeline.dt = kDt;
    policy.pipeline.forecast_horizon = w.test.horizon();
    auto freshness = fleet.EnableFreshness(policy);
    ASSERT_FALSE(freshness.ok());
    EXPECT_NE(freshness.message().find("tap"), std::string::npos)
        << freshness.ToString();

    first.Detach();
    ASSERT_TRUE(fleet.EnableFreshness(policy).ok());

    // Freshness enabled → a tap is refused, symmetrically.
    Recorder third("third");
    auto blocked = third.Attach(&fleet);
    ASSERT_FALSE(blocked.ok());
    EXPECT_NE(blocked.message().find("freshness"), std::string::npos)
        << blocked.ToString();
  }

  // Recorder::Attach(null) is its own descriptive error.
  Recorder loose;
  EXPECT_FALSE(loose.Attach(nullptr).ok());
}

}  // namespace
}  // namespace rs::trace
