// Tests for the statistics substrate: RNG determinism, distribution
// samplers (moment checks), gamma special functions, empirical statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rs/stats/distributions.hpp"
#include "rs/stats/empirical.hpp"
#include "rs/stats/rng.hpp"
#include "rs/stats/special_functions.hpp"

namespace rs::stats {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, OpenDoubleNeverZero) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextOpenDouble();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(9);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.NextDouble();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, BoundedRespectsRange) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.NextGaussian();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(12);
  Rng child = a.Split();
  EXPECT_NE(a.NextUint64(), child.NextUint64());
}

TEST(DistributionsTest, ExponentialMoments) {
  Rng rng(20);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += SampleExponential(&rng, 2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

struct GammaCase {
  double shape;
  double scale;
};

class GammaSamplerTest : public ::testing::TestWithParam<GammaCase> {};

TEST_P(GammaSamplerTest, MeanAndVarianceMatchTheory) {
  const auto [shape, scale] = GetParam();
  Rng rng(static_cast<std::uint64_t>(shape * 100 + scale * 10));
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = SampleGamma(&rng, shape, scale);
    EXPECT_GE(g, 0.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.05 * shape * scale + 0.01);
  EXPECT_NEAR(var, shape * scale * scale, 0.1 * shape * scale * scale + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaSamplerTest,
                         ::testing::Values(GammaCase{0.5, 1.0},
                                           GammaCase{1.0, 2.0},
                                           GammaCase{2.5, 0.5},
                                           GammaCase{10.0, 1.0},
                                           GammaCase{100.0, 0.1}));

class PoissonSamplerTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonSamplerTest, MeanAndVarianceMatchTheory) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 3);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto k = static_cast<double>(SamplePoisson(&rng, mean));
    EXPECT_GE(k, 0.0);
    sum += k;
    sum2 += k * k;
  }
  const double m = sum / n;
  const double v = sum2 / n - m * m;
  EXPECT_NEAR(m, mean, 0.05 * mean + 0.02);
  EXPECT_NEAR(v, mean, 0.1 * mean + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonSamplerTest,
                         ::testing::Values(0.1, 1.0, 5.0, 9.9, 10.1, 30.0,
                                           200.0));

TEST(DistributionsTest, PoissonZeroMean) {
  Rng rng(30);
  EXPECT_EQ(SamplePoisson(&rng, 0.0), 0);
}

TEST(DistributionsTest, LogNormalMean) {
  Rng rng(31);
  // mu, sigma chosen so mean = exp(mu + sigma²/2) = e.
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += SampleLogNormal(&rng, 0.5, 1.0);
  EXPECT_NEAR(sum / n, std::exp(1.0), 0.1);
}

TEST(DistributionsTest, WeibullShapeOneIsExponential) {
  Rng rng(32);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += SampleWeibull(&rng, 1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(DurationDistributionTest, DeterministicIsConstant) {
  Rng rng(40);
  auto d = DurationDistribution::Deterministic(13.0);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.Sample(&rng), 13.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 13.0);
}

TEST(DurationDistributionTest, ExponentialMeanMatches) {
  Rng rng(41);
  auto d = DurationDistribution::Exponential(20.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 20.0);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += d.Sample(&rng);
  EXPECT_NEAR(sum / n, 20.0, 0.5);
}

TEST(DurationDistributionTest, LogNormalMeanAndCv) {
  Rng rng(42);
  auto d = DurationDistribution::LogNormal(179.0, 2.0);
  EXPECT_NEAR(d.Mean(), 179.0, 1e-9);
  const int n = 400000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += d.Sample(&rng);
  EXPECT_NEAR(sum / n, 179.0, 5.0);
}

TEST(DurationDistributionTest, UniformBoundsAndMean) {
  Rng rng(43);
  auto d = DurationDistribution::Uniform(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 4.0);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.Sample(&rng);
    EXPECT_GE(v, 2.0);
    EXPECT_LE(v, 6.0);
  }
}

TEST(DurationDistributionTest, WeibullMean) {
  auto d = DurationDistribution::Weibull(2.0, 10.0);
  EXPECT_NEAR(d.Mean(), 10.0 * std::tgamma(1.5), 1e-9);
}

TEST(SpecialFunctionsTest, GammaPKnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(a, 0) = 0; P(a, inf) = 1.
  EXPECT_DOUBLE_EQ(RegularizedGammaP(3.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(3.0, 1e6), 1.0, 1e-12);
}

TEST(SpecialFunctionsTest, GammaPPlusQIsOne) {
  for (double a : {0.3, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.01, 0.5, 1.0, 5.0, 40.0, 120.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0, 1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(SpecialFunctionsTest, GammaCdfErlangIdentity) {
  // Gamma(k, 1) CDF at x equals P(N >= k) for N ~ Poisson(x).
  // Spot check via the Poisson CDF helper: F_k(x) = 1 - PoissonCdf(k-1, x).
  for (int k : {1, 2, 5, 10}) {
    for (double x : {0.5, 2.0, 7.5}) {
      EXPECT_NEAR(GammaCdf(k, 1.0, x), 1.0 - PoissonCdf(k - 1, x), 1e-10);
    }
  }
}

class GammaQuantileTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GammaQuantileTest, QuantileInvertsTheCdf) {
  const auto [shape, p] = GetParam();
  auto q = GammaQuantile(shape, 1.0, p);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(RegularizedGammaP(shape, *q), p, 1e-8)
      << "shape=" << shape << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, GammaQuantileTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 7.0, 30.0, 150.0),
                       ::testing::Values(0.01, 0.1, 0.5, 0.9, 0.99)));

TEST(SpecialFunctionsTest, GammaQuantileScales) {
  const double q1 = *GammaQuantile(3.0, 1.0, 0.7);
  const double q5 = *GammaQuantile(3.0, 5.0, 0.7);
  EXPECT_NEAR(q5, 5.0 * q1, 1e-8);
}

TEST(SpecialFunctionsTest, GammaQuantileRejectsBadInputs) {
  EXPECT_FALSE(GammaQuantile(0.0, 1.0, 0.5).ok());
  EXPECT_FALSE(GammaQuantile(1.0, -1.0, 0.5).ok());
  EXPECT_FALSE(GammaQuantile(1.0, 1.0, 0.0).ok());
  EXPECT_FALSE(GammaQuantile(1.0, 1.0, 1.0).ok());
}

TEST(SpecialFunctionsTest, NormalCdfSymmetry) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  for (double x : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(NormalCdf(x) + NormalCdf(-x), 1.0, 1e-12);
  }
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
}

TEST(SpecialFunctionsTest, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999}) {
    auto z = NormalQuantile(p);
    ASSERT_TRUE(z.ok());
    EXPECT_NEAR(NormalCdf(*z), p, 1e-9);
  }
}

TEST(EmpiricalTest, QuantileInterpolates) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(*Quantile(v, 1.0 / 3.0), 2.0);
}

TEST(EmpiricalTest, QuantileUnsortedInput) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.5), 2.5);
}

TEST(EmpiricalTest, QuantileRejectsBadInputs) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
  EXPECT_FALSE(QuantileInPlace(nullptr, 0.5).ok());
}

// Regression pin for the selection-based Quantile: it must keep the exact
// type-7 (NumPy default) convention the sort-based implementation had —
// linear interpolation between the order statistics at floor/ceil of
// q·(n−1), ties and duplicates included.
TEST(EmpiricalTest, QuantileSelectionKeepsType7Convention) {
  std::vector<double> v{7.0, 1.0, 1.0, 3.0, 5.0};  // sorted: 1 1 3 5 7
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.375), 2.0);   // Between the tie and 3.
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.625), 4.0);
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.9), 6.2);     // 0.6·5 + 0.4·7.
  EXPECT_DOUBLE_EQ(*Quantile(v, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(*Quantile({42.0}, 0.7), 42.0);

  std::vector<double> scratch{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(*QuantileInPlace(&scratch, 0.5), 2.5);
}

TEST(EmpiricalTest, MeanVarianceMedian) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(Median(v), 4.5);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
}

TEST(EmpiricalTest, MadScaleOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(MadScale({5.0, 5.0, 5.0}), 0.0);
}

TEST(EmpiricalTest, MadScaleRobustToOutlier) {
  std::vector<double> clean{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> dirty{1.0, 2.0, 3.0, 4.0, 500.0};
  EXPECT_NEAR(MadScale(clean), MadScale(dirty), 0.5 * MadScale(clean) + 1e-9);
}

TEST(EmpiricalTest, SoftThresholdProperties) {
  EXPECT_DOUBLE_EQ(SoftThreshold(5.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-5.0, 2.0), -3.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(-1.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftThreshold(0.0, 0.0), 0.0);
}

TEST(EmpiricalTest, SoftThresholdVectorized) {
  auto y = SoftThreshold(std::vector<double>{3.0, -3.0, 0.5}, 1.0);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(EmpiricalTest, ErrorsMetrics) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{2.0, 2.0, 1.0};
  EXPECT_NEAR(MeanSquaredError(a, b), (1.0 + 0.0 + 4.0) / 3.0, 1e-12);
  EXPECT_NEAR(MeanAbsoluteError(a, b), (1.0 + 0.0 + 2.0) / 3.0, 1e-12);
}

TEST(EmpiricalTest, WindowedMeansDropsPartialWindow) {
  std::vector<double> v{1.0, 3.0, 5.0, 7.0, 100.0};
  auto w = WindowedMeans(v, 2);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 6.0);
  EXPECT_TRUE(WindowedMeans(v, 0).empty());
  EXPECT_TRUE(WindowedMeans({}, 3).empty());
}

}  // namespace
}  // namespace rs::stats
