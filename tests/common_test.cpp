// Tests for Status / Result error propagation, logging, and the
// thread-pool/latch utility behind ScalerFleet's batched planning.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <sstream>
#include <thread>
#include <vector>

#include "rs/common/logging.hpp"
#include "rs/common/status.hpp"
#include "rs/common/stopwatch.hpp"
#include "rs/common/thread_pool.hpp"

namespace rs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::RuntimeError("x").code(), StatusCode::kRuntimeError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Invalid("bad arg").message(), "bad arg");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::Invalid("bad").ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::NotConverged("max iters").ToString(),
            "NotConverged: max iters");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("a"));
  EXPECT_FALSE(Status::Invalid("a") == Status::Invalid("b"));
  EXPECT_FALSE(Status::Invalid("a") == Status::IoError("a"));
}

TEST(StatusTest, StreamOperatorPrintsToString) {
  std::ostringstream os;
  os << Status::IoError("disk");
  EXPECT_EQ(os.str(), "IoError: disk");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Invalid("no");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 7);
}

Result<int> Doubler(Result<int> in) {
  RS_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagatesValue) {
  auto r = Doubler(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto r = Doubler(Status::OutOfRange("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

Status FailThenSucceed(bool fail) {
  RS_RETURN_NOT_OK(fail ? Status::IoError("boom") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(FailThenSucceed(false).ok());
  EXPECT_EQ(FailThenSucceed(true).code(), StatusCode::kIoError);
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages must not crash and are simply dropped.
  RS_LOG(Info) << "this is filtered";
  SetLogLevel(original);
}

TEST(LatchTest, WaitReturnsOnceCountReachesZero) {
  common::Latch latch(2);
  latch.CountDown();
  latch.CountDown();
  latch.Wait();  // Must not block.
  common::Latch zero(0);
  zero.Wait();  // A zero-count latch is already open.
}

TEST(ThreadPoolTest, InlineModeRunsOnCallingThread) {
  common::ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 0u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, RunsEverySubmittedTaskBeforeJoin) {
  std::atomic<int> counter{0};
  {
    common::ThreadPool pool(3);
    EXPECT_EQ(pool.threads(), 3u);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

class ParallelForTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelForTest, CoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(GetParam());
  // One slot per index, written without synchronization: ParallelFor's
  // join must publish the writes (TSan checks the happens-before edge).
  std::vector<int> hits(500, 0);
  common::ParallelFor(&pool, hits.size(),
                      [&hits](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
  common::ParallelFor(&pool, 0, [](std::size_t) { FAIL(); });
  // A null pool degrades to a sequential loop.
  std::size_t sum = 0;
  common::ParallelFor(nullptr, 4, [&sum](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 6u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelForTest,
                         ::testing::Values(0, 1, 2, 8));

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch w;
  const double a = w.ElapsedSeconds();
  const double b = w.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  w.Reset();
  EXPECT_GE(w.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace rs
