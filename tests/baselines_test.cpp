// Tests for the heuristic baselines BP and AdapBP (Section VII-A1).
#include <gtest/gtest.h>

#include <vector>

#include "rs/baselines/adaptive_backup_pool.hpp"
#include "rs/baselines/backup_pool.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/stats/rng.hpp"
#include "rs/workload/trace.hpp"

namespace rs::baseline {
namespace {

workload::Trace UniformTrace(double rate, double horizon, double processing) {
  std::vector<workload::Query> qs;
  const double step = 1.0 / rate;
  for (double t = step; t < horizon; t += step) {
    qs.push_back({t, processing});
  }
  return workload::Trace(std::move(qs), horizon);
}

sim::EngineOptions DetPending(double tau) {
  sim::EngineOptions opts;
  opts.pending = stats::DurationDistribution::Deterministic(tau);
  return opts;
}

TEST(BackupPoolTest, ZeroPoolIsPureReactive) {
  auto trace = UniformTrace(0.1, 1000.0, 5.0);
  BackupPool bp(0);
  auto result = sim::Simulate(trace, &bp, DetPending(3.0));
  ASSERT_TRUE(result.ok());
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(m->cold_start_rate, 1.0);
  // Every query: RT = tau + s = 8.
  EXPECT_DOUBLE_EQ(m->rt_avg, 8.0);
}

TEST(BackupPoolTest, LargePoolHitsEverything) {
  // Inter-arrival 10 s >> tau 3 s: with one warm instance always ready,
  // every query after the first pool warm-up hits.
  auto trace = UniformTrace(0.1, 1000.0, 5.0);
  BackupPool bp(2);
  auto result = sim::Simulate(trace, &bp, DetPending(3.0));
  ASSERT_TRUE(result.ok());
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(m->rt_avg, 5.0);
}

TEST(BackupPoolTest, PoolSizeIsMaintained) {
  auto trace = UniformTrace(0.05, 2000.0, 5.0);
  BackupPool bp(3);
  auto result = sim::Simulate(trace, &bp, DetPending(1.0));
  ASSERT_TRUE(result.ok());
  // Instances created = queries served + final pool of 3.
  EXPECT_EQ(result->instances.size(), result->queries.size() + 3);
}

TEST(BackupPoolTest, CostGrowsWithPoolSize) {
  auto trace = UniformTrace(0.1, 2000.0, 5.0);
  double prev_cost = -1.0;
  for (std::size_t b : {0u, 2u, 5u}) {
    BackupPool bp(b);
    auto result = sim::Simulate(trace, &bp, DetPending(3.0));
    ASSERT_TRUE(result.ok());
    auto m = sim::ComputeMetrics(*result);
    ASSERT_TRUE(m.ok());
    EXPECT_GT(m->total_cost, prev_cost);
    prev_cost = m->total_cost;
  }
}

TEST(AdaptiveBackupPoolTest, TracksQpsLevel) {
  // 0.5 QPS for the first half, then silence. Pool target should follow.
  std::vector<workload::Query> qs;
  for (double t = 2.0; t < 1800.0; t += 2.0) qs.push_back({t, 5.0});
  workload::Trace trace(std::move(qs), 7200.0);
  AdaptiveBackupPool adap(/*multiplier=*/20.0, /*update_interval=*/600.0);
  auto result = sim::Simulate(trace, &adap, DetPending(3.0));
  ASSERT_TRUE(result.ok());
  // After the traffic stops, the pool must eventually scale in: total
  // instances stays near #queries + transient pools, far below what a
  // fixed pool of 10 would keep paying for.
  EXPECT_LT(result->instances.size(), trace.size() + 50);
  // AdapBP is blind for its first update interval (600 s of cold starts
  // with this trace), then the pool ≈ 0.5 × 20 = 10 covers the traffic: the
  // steady-state window must hit nearly always while the overall rate shows
  // the warm-up penalty.
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->hit_rate, 0.6);
  std::size_t late_hits = 0, late_total = 0;
  for (const auto& q : result->queries) {
    if (q.arrival_time < 700.0) continue;
    ++late_total;
    if (q.hit) ++late_hits;
  }
  ASSERT_GT(late_total, 100u);
  EXPECT_GT(static_cast<double>(late_hits) / static_cast<double>(late_total),
            0.95);
}

TEST(AdaptiveBackupPoolTest, ZeroMultiplierActsReactive) {
  auto trace = UniformTrace(0.1, 1000.0, 5.0);
  AdaptiveBackupPool adap(0.0);
  auto result = sim::Simulate(trace, &adap, DetPending(3.0));
  ASSERT_TRUE(result.ok());
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->hit_rate, 0.0);
}

TEST(AdaptiveBackupPoolTest, LargerMultiplierCostsMore) {
  auto trace = UniformTrace(0.2, 3600.0, 5.0);
  double prev_cost = -1.0;
  for (double mult : {0.0, 25.0, 100.0}) {
    AdaptiveBackupPool adap(mult);
    auto result = sim::Simulate(trace, &adap, DetPending(3.0));
    ASSERT_TRUE(result.ok());
    auto m = sim::ComputeMetrics(*result);
    ASSERT_TRUE(m.ok());
    EXPECT_GT(m->total_cost, prev_cost) << "multiplier " << mult;
    prev_cost = m->total_cost;
  }
}

TEST(AdaptiveBackupPoolTest, ScaleInDeletesIdleInstances) {
  // Burst then silence: after the burst the pool target drops to 0 and the
  // idle instances must be deleted rather than charged forever.
  std::vector<workload::Query> qs;
  for (double t = 1.0; t < 300.0; t += 1.0) qs.push_back({t, 2.0});
  workload::Trace trace(std::move(qs), 86400.0);
  AdaptiveBackupPool adap(10.0);
  auto result = sim::Simulate(trace, &adap, DetPending(3.0));
  ASSERT_TRUE(result.ok());
  auto m = sim::ComputeMetrics(*result);
  ASSERT_TRUE(m.ok());
  // If scale-in failed, ~10 instances idle for ~86000 s would add ~8.6e5.
  EXPECT_LT(m->total_cost, 3e4);
}

TEST(AdaptiveBackupPoolTest, InvalidConstructionDies) {
  EXPECT_DEATH(AdaptiveBackupPool(-1.0), "multiplier");
  EXPECT_DEATH(AdaptiveBackupPool(1.0, 0.0), "positive");
}

}  // namespace
}  // namespace rs::baseline
