// Tests of rs::api::ScalerFleet: tenant lifecycle isolation, deterministic
// PlanAll ordering, per-tenant error isolation, FleetSnapshot aggregation,
// and the headline guarantee that a fleet (any worker count) reproduces the
// per-tenant action sequences of independent sequential Scalers. The
// randomized interleaving version of the parity check lives in
// tests/property_test.cpp; this file keeps the deterministic fast cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/stats/rng.hpp"

namespace rs::api {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture: a small sinusoidal workload (10-min cycles) so every
// Scaler build in this file trains in milliseconds.
// ---------------------------------------------------------------------------

struct Workload {
  workload::Trace train;
  workload::Trace test;
  double dt = 30.0;
};

Workload MakeFleetWorkload(std::uint64_t seed) {
  const double period_s = 600.0, dt = 30.0;
  const double horizon = 8.0 * period_s;
  std::vector<double> rates;
  for (double t = 0.5 * dt; t < horizon; t += dt) {
    const double phase = std::fmod(t, period_s) / period_s;
    rates.push_back(0.3 + 0.2 * std::sin(2.0 * M_PI * phase));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, dt);
  stats::Rng rng(seed);
  auto trace = *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
  Workload w;
  auto [train, test] = trace.SplitAt(horizon - 2.0 * period_s);
  w.train = std::move(train);
  w.test = std::move(test);
  return w;
}

Scaler BuildTenantScaler(const Workload& w, const char* spec_string) {
  auto spec = ParseStrategySpec(spec_string);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto scaler = ScalerBuilder()
                    .WithTrace(w.train)
                    .WithBinWidth(w.dt)
                    .WithForecastHorizon(w.test.horizon())
                    .WithStrategy(*spec)
                    .WithPlanningInterval(2.0)
                    .WithMcSamples(40)
                    .Build();
  EXPECT_TRUE(scaler.ok()) << scaler.status().ToString();
  return std::move(scaler).ValueOrDie();
}

void ExpectActionsIdentical(const std::vector<sim::ScalingAction>& expected,
                            const std::vector<sim::ScalingAction>& got,
                            const std::string& label) {
  ASSERT_EQ(expected.size(), got.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].deletions, got[i].deletions)
        << label << ", action " << i;
    ASSERT_EQ(expected[i].creation_times.size(), got[i].creation_times.size())
        << label << ", action " << i;
    for (std::size_t j = 0; j < expected[i].creation_times.size(); ++j) {
      // Byte-identical, not approximately equal: both sides must execute
      // the same arithmetic in the same order.
      EXPECT_EQ(expected[i].creation_times[j], got[i].creation_times[j])
          << label << ", action " << i << ", creation " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

TEST(ScalerFleetTest, RegisterRejectsEmptyAndDuplicateNames) {
  const Workload w = MakeFleetWorkload(21);
  ScalerFleet fleet;
  EXPECT_FALSE(fleet.Register("", BuildTenantScaler(w, "backup_pool")).ok());
  ASSERT_TRUE(
      fleet.Register("svc-a", BuildTenantScaler(w, "backup_pool")).ok());
  auto dup = fleet.Register("svc-a", BuildTenantScaler(w, "backup_pool"));
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.message().find("svc-a"), std::string::npos) << dup.ToString();
  EXPECT_EQ(fleet.size(), 1u);
}

TEST(ScalerFleetTest, UnknownTenantErrorsNameTenantAndOperation) {
  ScalerFleet fleet;
  auto retire = fleet.Retire("ghost");
  ASSERT_FALSE(retire.ok());
  EXPECT_NE(retire.message().find("ghost"), std::string::npos);
  EXPECT_NE(retire.message().find("Retire"), std::string::npos);
  EXPECT_FALSE(fleet.Observe("ghost", 1.0).ok());
  EXPECT_FALSE(fleet.Plan("ghost", 1.0).ok());
  EXPECT_EQ(fleet.Find("ghost"), nullptr);
}

TEST(ScalerFleetTest, TenantsKeepRegistrationOrderAcrossRetire) {
  const Workload w = MakeFleetWorkload(22);
  ScalerFleet fleet;
  for (const char* name : {"svc-a", "svc-b", "svc-c", "svc-d"}) {
    ASSERT_TRUE(
        fleet.Register(name, BuildTenantScaler(w, "backup_pool")).ok());
  }
  ASSERT_TRUE(fleet.Retire("svc-b").ok());
  EXPECT_EQ(fleet.Tenants(),
            (std::vector<std::string>{"svc-a", "svc-c", "svc-d"}));
  // PlanAll output follows the same order.
  const auto plans = fleet.PlanAll(10.0);
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_EQ(plans[0].tenant, "svc-a");
  EXPECT_EQ(plans[1].tenant, "svc-c");
  EXPECT_EQ(plans[2].tenant, "svc-d");
}

TEST(ScalerFleetTest, LifecycleLeavesOtherTenantsUndisturbed) {
  const Workload w = MakeFleetWorkload(23);
  ScalerFleet fleet;
  ASSERT_TRUE(
      fleet.Register("keep", BuildTenantScaler(w, "backup_pool:pool_size=2"))
          .ok());
  ASSERT_TRUE(
      fleet.Register("churn", BuildTenantScaler(w, "backup_pool")).ok());
  for (const auto& q : w.test.queries()) {
    if (q.arrival_time > 300.0) break;
    ASSERT_TRUE(fleet.Observe("keep", q.arrival_time).ok());
  }
  (void)fleet.PlanAll(300.0);
  const ServingSnapshot before = fleet.Find("keep")->Snapshot();

  // Retire one neighbor, replace another's model, register a newcomer.
  ASSERT_TRUE(fleet.Retire("churn").ok());
  ASSERT_TRUE(
      fleet.Register("churn", BuildTenantScaler(w, "backup_pool")).ok());
  ASSERT_TRUE(
      fleet
          .ReplaceModel("churn", BuildTenantScaler(w, "backup_pool:pool_size=1"))
          .ok());

  const ServingSnapshot after = fleet.Find("keep")->Snapshot();
  EXPECT_EQ(before.now, after.now);
  EXPECT_EQ(before.queries_observed, after.queries_observed);
  EXPECT_EQ(before.planning_rounds, after.planning_rounds);
  EXPECT_EQ(before.creations_requested, after.creations_requested);
  // The replaced tenant starts from a fresh serving state.
  const ServingSnapshot churn = fleet.Find("churn")->Snapshot();
  EXPECT_FALSE(churn.started);
  EXPECT_EQ(churn.queries_observed, 0u);
}

// ---------------------------------------------------------------------------
// Batched planning
// ---------------------------------------------------------------------------

TEST(ScalerFleetTest, PlanAllIsolatesPerTenantErrors) {
  const Workload w = MakeFleetWorkload(24);
  ScalerFleet fleet;
  ASSERT_TRUE(
      fleet.Register("ahead", BuildTenantScaler(w, "backup_pool")).ok());
  ASSERT_TRUE(
      fleet.Register("behind", BuildTenantScaler(w, "backup_pool")).ok());
  // Advance one tenant's serving clock past the batch time.
  ASSERT_TRUE(fleet.Plan("ahead", 100.0).ok());

  const auto plans = fleet.PlanAll(50.0);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_FALSE(plans[0].status.ok()) << plans[0].status.ToString();
  EXPECT_NE(plans[0].status.message().find("precedes"), std::string::npos)
      << plans[0].status.ToString();
  EXPECT_TRUE(plans[1].status.ok()) << plans[1].status.ToString();
  // The failed tenant's state was not advanced by the failed call.
  EXPECT_EQ(fleet.Find("ahead")->Snapshot().now, 100.0);
  EXPECT_EQ(fleet.Find("behind")->Snapshot().now, 50.0);
}

TEST(ScalerFleetTest, ConfigureServingAllValidatesAndNamesTenant) {
  const Workload w = MakeFleetWorkload(25);
  ScalerFleet fleet;
  ASSERT_TRUE(
      fleet.Register("svc-a", BuildTenantScaler(w, "backup_pool")).ok());
  sim::EngineOptions bad;
  bad.creation_latency = -1.0;
  auto st = fleet.ConfigureServingAll(bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("svc-a"), std::string::npos) << st.ToString();

  sim::EngineOptions good;
  good.seed = 7;
  EXPECT_TRUE(fleet.ConfigureServingAll(good).ok());
}

TEST(ScalerFleetTest, SnapshotSumsPerTenantCounters) {
  const Workload w = MakeFleetWorkload(26);
  ScalerFleet fleet(2);
  ASSERT_TRUE(
      fleet.Register("svc-a", BuildTenantScaler(w, "robust_hp:target=0.9"))
          .ok());
  ASSERT_TRUE(
      fleet.Register("svc-b", BuildTenantScaler(w, "backup_pool:pool_size=1"))
          .ok());
  std::size_t tenant_toggle = 0;
  for (const auto& q : w.test.queries()) {
    if (q.arrival_time > 400.0) break;
    const char* tenant = (tenant_toggle++ % 2 == 0) ? "svc-a" : "svc-b";
    ASSERT_TRUE(fleet.Observe(tenant, q.arrival_time).ok());
  }
  (void)fleet.PlanAll(400.0);

  const FleetSnapshot snap = fleet.Snapshot();
  EXPECT_EQ(snap.tenants, 2u);
  EXPECT_EQ(snap.tenants_started, 2u);
  ASSERT_EQ(snap.per_tenant.size(), 2u);
  EXPECT_EQ(snap.per_tenant[0].first, "svc-a");
  EXPECT_EQ(snap.per_tenant[1].first, "svc-b");
  FleetSnapshot sum;
  for (const auto& [name, tenant_snap] : snap.per_tenant) {
    sum.queries_observed += tenant_snap.queries_observed;
    sum.planning_rounds += tenant_snap.planning_rounds;
    sum.creations_requested += tenant_snap.creations_requested;
    sum.deletions_requested += tenant_snap.deletions_requested;
    sum.cold_starts += tenant_snap.cold_starts;
    sum.instances_alive += tenant_snap.instances_alive;
    sum.instances_ready += tenant_snap.instances_ready;
    sum.scheduled_creations += tenant_snap.scheduled_creations;
    sum.arrivals_retained += tenant_snap.arrivals_retained;
    sum.actions_retained += tenant_snap.actions_retained;
    sum.planning_workspace_bytes += tenant_snap.planning_workspace_bytes;
  }
  EXPECT_EQ(snap.queries_observed, sum.queries_observed);
  EXPECT_GT(snap.queries_observed, 0u);
  EXPECT_EQ(snap.planning_rounds, sum.planning_rounds);
  EXPECT_EQ(snap.creations_requested, sum.creations_requested);
  EXPECT_EQ(snap.deletions_requested, sum.deletions_requested);
  EXPECT_EQ(snap.cold_starts, sum.cold_starts);
  EXPECT_EQ(snap.instances_alive, sum.instances_alive);
  EXPECT_EQ(snap.instances_ready, sum.instances_ready);
  EXPECT_EQ(snap.scheduled_creations, sum.scheduled_creations);
  // Retained-vs-total accounting survives aggregation: what a
  // snapshot/restore would persist vs what flowed through over time.
  EXPECT_EQ(snap.arrivals_retained, sum.arrivals_retained);
  EXPECT_LE(snap.arrivals_retained, snap.queries_observed);
  EXPECT_EQ(snap.actions_retained, sum.actions_retained);
  EXPECT_LE(snap.actions_retained, snap.planning_rounds);
  // The robust_hp tenant planned, so it retains Monte Carlo workspace; the
  // aggregate must surface those bytes.
  EXPECT_EQ(snap.planning_workspace_bytes, sum.planning_workspace_bytes);
  EXPECT_GT(snap.planning_workspace_bytes, 0u);
}

TEST(ScalerFleetTest, SnapshotAggregationUnchangedAfterTenantRestore) {
  // Snapshot → retire → restore of one tenant must leave the FleetSnapshot
  // sums exactly where they were: the restored mirror carries the same
  // counters, retained windows, instances and schedule. Only the
  // registration position (and the cold planning workspace) may change.
  const Workload w = MakeFleetWorkload(27);
  ScalerFleet fleet(2);
  ASSERT_TRUE(
      fleet.Register("svc-a", BuildTenantScaler(w, "robust_hp:target=0.9"))
          .ok());
  ASSERT_TRUE(
      fleet.Register("svc-b", BuildTenantScaler(w, "backup_pool:pool_size=1"))
          .ok());
  for (const auto& q : w.test.queries()) {
    if (q.arrival_time > 400.0) break;
    ASSERT_TRUE(fleet.Observe("svc-a", q.arrival_time).ok());
    ASSERT_TRUE(fleet.Observe("svc-b", q.arrival_time).ok());
  }
  (void)fleet.PlanAll(400.0);

  const FleetSnapshot before = fleet.Snapshot();
  std::stringstream tenant_snapshot;
  ASSERT_TRUE(fleet.SnapshotTenant("svc-a", tenant_snapshot).ok());
  ASSERT_TRUE(fleet.Retire("svc-a").ok());
  ASSERT_TRUE(fleet.RestoreTenant(tenant_snapshot).ok());

  const FleetSnapshot after = fleet.Snapshot();
  EXPECT_EQ(after.tenants, before.tenants);
  EXPECT_EQ(after.tenants_started, before.tenants_started);
  EXPECT_EQ(after.queries_observed, before.queries_observed);
  EXPECT_EQ(after.instances_alive, before.instances_alive);
  EXPECT_EQ(after.instances_ready, before.instances_ready);
  EXPECT_EQ(after.scheduled_creations, before.scheduled_creations);
  EXPECT_EQ(after.cold_starts, before.cold_starts);
  EXPECT_EQ(after.creations_requested, before.creations_requested);
  EXPECT_EQ(after.deletions_requested, before.deletions_requested);
  EXPECT_EQ(after.planning_rounds, before.planning_rounds);
  EXPECT_EQ(after.arrivals_retained, before.arrivals_retained);
  EXPECT_EQ(after.actions_retained, before.actions_retained);
  // Registration order: the restored tenant re-registers at the end.
  ASSERT_EQ(after.per_tenant.size(), 2u);
  EXPECT_EQ(after.per_tenant[0].first, "svc-b");
  EXPECT_EQ(after.per_tenant[1].first, "svc-a");
}

// ---------------------------------------------------------------------------
// Fleet-vs-sequential parity (deterministic fast case; the randomized
// interleaving + thread-count sweep lives in tests/property_test.cpp).
// ---------------------------------------------------------------------------

TEST(ScalerFleetTest, FleetMatchesSequentialScalersAcrossThreadCounts) {
  const std::vector<std::pair<std::string, const char*>> tenants = {
      {"hp", "robust_hp:target=0.9"},
      {"pool", "backup_pool:pool_size=2"},
      {"adap",
       "adaptive_backup_pool:multiplier=20,update_interval=30,"
       "estimate_window=60"},
  };
  std::vector<Workload> workloads;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    workloads.push_back(MakeFleetWorkload(40 + i));
  }

  // Reference: independent Scalers driven sequentially, full action logs.
  std::vector<std::vector<sim::ScalingAction>> reference;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    Scaler scaler = BuildTenantScaler(workloads[i], tenants[i].second);
    ASSERT_TRUE(
        scaler.ConfigureHistoryRetention(sim::kUnboundedHistory).ok());
    for (const auto& q : workloads[i].test.queries()) {
      ASSERT_TRUE(scaler.Observe(q.arrival_time).ok());
    }
    ASSERT_TRUE(scaler.Plan(workloads[i].test.horizon()).ok());
    reference.push_back(scaler.ActionLog());
  }

  for (std::size_t threads : {0u, 1u, 4u}) {
    ScalerFleet fleet(threads);
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      ASSERT_TRUE(fleet
                      .Register(tenants[i].first,
                                BuildTenantScaler(workloads[i],
                                                  tenants[i].second))
                      .ok());
      ASSERT_TRUE(fleet.Find(tenants[i].first)
                      ->ConfigureHistoryRetention(sim::kUnboundedHistory)
                      .ok());
    }
    // Interleave arrivals across tenants in global time order.
    std::vector<std::pair<double, std::size_t>> events;
    double horizon = 0.0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      for (const auto& q : workloads[i].test.queries()) {
        events.emplace_back(q.arrival_time, i);
      }
      horizon = std::max(horizon, workloads[i].test.horizon());
    }
    std::sort(events.begin(), events.end());
    for (const auto& [t, i] : events) {
      ASSERT_TRUE(fleet.Observe(tenants[i].first, t).ok());
    }
    for (const auto& plan : fleet.PlanAll(horizon)) {
      ASSERT_TRUE(plan.status.ok())
          << plan.tenant << ": " << plan.status.ToString();
    }
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      // The reference planned each tenant to its own horizon; the shared
      // PlanAll must hit the same time or the tick counts diverge. All
      // workloads share one horizon by construction — assert it.
      ASSERT_EQ(workloads[i].test.horizon(), horizon);
      ExpectActionsIdentical(
          reference[i], fleet.Find(tenants[i].first)->ActionLog(),
          tenants[i].first + " @" + std::to_string(threads) + " threads");
    }
  }
}

}  // namespace
}  // namespace rs::api
