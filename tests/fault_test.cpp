// Tests of rs::fault (deterministic fault injection) and the graceful
// degradation it drives through the fleet: the FaultPlan/storm machinery
// itself, ThreadPool/ParallelFor surviving throwing tasks, Observe input
// hardening, every health transition of the circuit breaker
// (healthy → degraded → quarantined → probed back to healthy), last-good
// fallback at failed plan boundaries, retrain failure backoff, crash-safe
// atomic snapshot writes under injected I/O faults, health persistence, and
// the headline chaos guarantee: a seeded storm over a fleet replays
// byte-identically across worker counts {0, 1, 8}. The sanitizer and TSan
// CI jobs run this whole suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/fault/fault.hpp"
#include "rs/persist/atomic_file.hpp"
#include "rs/stats/rng.hpp"

namespace rs {
namespace {

using api::RobustnessPolicy;
using api::ScalerFleet;
using api::TenantHealth;
using api::TenantHealthInfo;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Shared fixture: a small sinusoidal workload so every Scaler build in this
// file trains in milliseconds.
// ---------------------------------------------------------------------------

constexpr double kPeriodS = 600.0;
constexpr double kDt = 30.0;

workload::Trace MakeTrace(std::uint64_t seed, double horizon, double qps) {
  std::vector<double> rates;
  for (double t = 0.5 * kDt; t < horizon; t += kDt) {
    const double phase = std::fmod(t, kPeriodS) / kPeriodS;
    rates.push_back(qps * (1.0 + 0.4 * std::sin(2.0 * M_PI * phase)));
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, kDt);
  stats::Rng rng(seed);
  return *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
}

api::Scaler BuildScaler(const workload::Trace& train, double forecast_horizon,
                        const char* spec_string) {
  auto spec = api::ParseStrategySpec(spec_string);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto scaler = api::ScalerBuilder()
                    .WithTrace(train)
                    .WithBinWidth(kDt)
                    .WithForecastHorizon(forecast_horizon)
                    .WithStrategy(*spec)
                    .WithPlanningInterval(2.0)
                    .WithMcSamples(40)
                    .Build();
  EXPECT_TRUE(scaler.ok()) << scaler.status().ToString();
  return std::move(scaler).ValueOrDie();
}

fault::FaultRule PlanFailureRule(const std::string& scope, std::uint64_t hit,
                                 std::uint64_t period = 0) {
  fault::FaultRule rule;
  rule.site = "fleet.plan";
  rule.scope = scope;
  rule.hit = hit;
  rule.period = period;
  rule.fault.code = StatusCode::kIoError;
  return rule;
}

// ---------------------------------------------------------------------------
// rs::fault — the injection machinery itself.
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, DisarmedSitesAreOkAndFree) {
  EXPECT_FALSE(fault::InjectionActive());
  EXPECT_TRUE(fault::Hit("fleet.plan", "anything").ok());
  EXPECT_TRUE(fault::Hit("persist.write").ok());
}

TEST(FaultPlanTest, SiteCatalogueCoversTheInstrumentedSurface) {
  // Keep in sync with docs/ARCHITECTURE.md and the RS_FAULT_POINT /
  // fault::Hit call sites; the chaos storm rolls over exactly these.
  std::vector<std::string> names;
  for (const auto& site : fault::RegisteredSites()) names.push_back(site.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "fleet.observe", "fleet.plan", "train.refit",
                       "persist.write", "persist.rename", "wal.append",
                       "wal.fsync", "wal.rotate"}));
}

TEST(FaultPlanTest, RuleFiresAtExactHitAndThenEveryPeriod) {
  fault::FaultPlan plan;
  plan.rules.push_back(PlanFailureRule("svc", /*hit=*/2, /*period=*/3));
  fault::ScopedFaultInjection inject(std::move(plan));
  EXPECT_TRUE(fault::InjectionActive());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(!fault::Hit("fleet.plan", "svc").ok());
  }
  // Hits 2, 5, 8 (= 2 + k*3) fire; everything else passes.
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, false, true, false,
                                      false, true, false}));
  EXPECT_EQ(inject.total_fired(), 3u);
  const auto stats = inject.Stats();
  EXPECT_EQ(stats.at("fleet.plan").hits, 9u);
  EXPECT_EQ(stats.at("fleet.plan").fired, 3u);
}

TEST(FaultPlanTest, EmptyScopeMatchesEveryScopeIndependently) {
  fault::FaultPlan plan;
  plan.rules.push_back(PlanFailureRule(/*scope=*/"", /*hit=*/2));
  fault::ScopedFaultInjection inject(std::move(plan));
  // Each scope keeps its own counter: both fire at *their* second hit,
  // regardless of interleaving — this is what makes storms worker-count
  // independent.
  EXPECT_TRUE(fault::Hit("fleet.plan", "a").ok());
  EXPECT_TRUE(fault::Hit("fleet.plan", "b").ok());
  EXPECT_FALSE(fault::Hit("fleet.plan", "a").ok());
  EXPECT_FALSE(fault::Hit("fleet.plan", "b").ok());
  EXPECT_TRUE(fault::Hit("fleet.plan", "a").ok());
}

TEST(FaultPlanTest, ScopedRuleIgnoresOtherScopes) {
  fault::FaultPlan plan;
  plan.rules.push_back(PlanFailureRule("svc-a", /*hit=*/1));
  fault::ScopedFaultInjection inject(std::move(plan));
  EXPECT_TRUE(fault::Hit("fleet.plan", "svc-b").ok());
  EXPECT_FALSE(fault::Hit("fleet.plan", "svc-a").ok());
}

TEST(FaultPlanTest, StatusFaultCarriesCodeAndDescriptiveMessage) {
  fault::FaultPlan plan;
  plan.rules.push_back(PlanFailureRule("svc", 1));
  fault::ScopedFaultInjection inject(std::move(plan));
  const Status st = fault::Hit("fleet.plan", "svc");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("fleet.plan"), std::string::npos);
  EXPECT_NE(st.message().find("svc"), std::string::npos);
}

TEST(FaultPlanTest, ThrowFaultThrowsInjectedFault) {
  fault::FaultPlan plan;
  fault::FaultRule rule = PlanFailureRule("svc", 1);
  rule.fault.kind = fault::FaultKind::kThrow;
  plan.rules.push_back(std::move(rule));
  fault::ScopedFaultInjection inject(std::move(plan));
  EXPECT_THROW((void)fault::Hit("fleet.plan", "svc"), fault::InjectedFault);
}

TEST(FaultPlanTest, StormPlanIsSeedDeterministic) {
  const auto a = fault::MakeStormPlan(7);
  const auto b = fault::MakeStormPlan(7);
  const auto c = fault::MakeStormPlan(8);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  EXPECT_FALSE(a.rules.empty()) << "default storm options must schedule "
                                   "faults over the catalogue";
  for (std::size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].site, b.rules[i].site);
    EXPECT_EQ(a.rules[i].hit, b.rules[i].hit);
    EXPECT_EQ(static_cast<int>(a.rules[i].fault.kind),
              static_cast<int>(b.rules[i].fault.kind));
    EXPECT_EQ(static_cast<int>(a.rules[i].fault.code),
              static_cast<int>(b.rules[i].fault.code));
  }
  // Different seeds give different schedules (rule-count collision is
  // possible, identical schedules are not, for these sizes).
  bool differs = a.rules.size() != c.rules.size();
  for (std::size_t i = 0; !differs && i < a.rules.size(); ++i) {
    differs = a.rules[i].site != c.rules[i].site ||
              a.rules[i].hit != c.rules[i].hit;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, ThrowsOnlyAtMayThrowSites) {
  const auto plan =
      fault::MakeStormPlan(123, {/*fire_probability=*/0.5,
                                 /*horizon_hits=*/64,
                                 /*include_throws=*/true});
  for (const auto& rule : plan.rules) {
    if (rule.fault.kind != fault::FaultKind::kThrow) continue;
    bool may_throw = false;
    for (const auto& site : fault::RegisteredSites()) {
      if (rule.site == site.name) may_throw = site.may_throw;
    }
    EXPECT_TRUE(may_throw) << rule.site << " must not schedule throws";
  }
}

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor — pool tasks that throw must not kill workers,
// deadlock joins, or lose indices (satellite: the pre-existing bug was a
// std::terminate in WorkerLoop and a lost CountDown in ParallelFor).
// ---------------------------------------------------------------------------

TEST(ThreadPoolFaultTest, ThrowingSubmittedTaskDoesNotKillWorkers) {
  common::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&ran, i] {
      if (i % 2 == 0) throw std::runtime_error("injected task failure");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Queue more work after the throwers: the workers must still be alive.
  common::Latch latch(4);
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(pool.tasks_failed(), 4u);
}

TEST(ThreadPoolFaultTest, ParallelForThrowRunsAllIndicesAndRethrows) {
  for (const std::size_t workers : {std::size_t{0}, std::size_t{1},
                                    std::size_t{8}}) {
    common::ThreadPool pool(workers);
    std::atomic<std::size_t> ran{0};
    bool threw = false;
    try {
      common::ParallelFor(&pool, 64, [&ran](std::size_t i) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i == 13) throw std::runtime_error("injected index failure");
      });
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_STREQ(e.what(), "injected index failure");
    }
    EXPECT_TRUE(threw) << workers << " workers";
    // The contract under any worker count: every index ran, then the first
    // exception was rethrown on the calling thread (no deadlock, no loss).
    EXPECT_EQ(ran.load(), 64u) << workers << " workers";
  }
}

// ---------------------------------------------------------------------------
// Observe input hardening — malformed arrivals are rejected before the
// serving mirror is touched, counted, and never poison later planning.
// ---------------------------------------------------------------------------

TEST(FleetDegradationTest, MalformedObservationsAreRejectedAndCounted) {
  const auto train = MakeTrace(31, 4.0 * kPeriodS, 0.5);
  ScalerFleet fleet(0);
  ASSERT_TRUE(
      fleet.Register("svc", BuildScaler(train, kPeriodS, "backup_pool")).ok());

  ASSERT_TRUE(fleet.Observe("svc", 1.0).ok());
  const std::size_t queries_before =
      fleet.Snapshot().per_tenant[0].second.queries_observed;

  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(fleet.Observe("svc", nan).ok());
  EXPECT_FALSE(fleet.Observe("svc", kInf).ok());
  EXPECT_FALSE(fleet.Observe("svc", -kInf).ok());
  EXPECT_FALSE(fleet.Observe("svc", 0.5).ok()) << "regressive time";

  auto health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->rejected_observations, 4u);
  EXPECT_EQ(health->health, TenantHealth::kHealthy)
      << "caller bugs degrade nothing";
  EXPECT_FALSE(health->last_error.ok());

  // The mirror was never touched: serving continues exactly where it was.
  EXPECT_EQ(fleet.Snapshot().per_tenant[0].second.queries_observed,
            queries_before);
  EXPECT_TRUE(fleet.Observe("svc", 2.0).ok());
  auto plan = fleet.Plan("svc", 3.0);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  // NaN planning clocks are rejected the same way (propagated, not served
  // by fallback — see the Invalid contract below).
  EXPECT_FALSE(fleet.Plan("svc", nan).ok());
  EXPECT_TRUE(fleet.Plan("svc", 4.0).ok());
}

TEST(FleetDegradationTest, InjectedObserveFaultRejectsWithoutPoisoning) {
  const auto train = MakeTrace(32, 4.0 * kPeriodS, 0.5);
  ScalerFleet fleet(0);
  ASSERT_TRUE(
      fleet.Register("svc", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "fleet.observe";
  rule.scope = "svc";
  rule.hit = 2;
  plan.rules.push_back(std::move(rule));
  fault::ScopedFaultInjection inject(std::move(plan));

  ASSERT_TRUE(fleet.Observe("svc", 1.0).ok());
  EXPECT_FALSE(fleet.Observe("svc", 2.0).ok()) << "hit 2 injected";
  EXPECT_TRUE(fleet.Observe("svc", 3.0).ok());
  auto health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->rejected_observations, 1u);
  EXPECT_EQ(fleet.Snapshot().queries_observed, 2u);
}

// ---------------------------------------------------------------------------
// The breaker state machine, transition by transition (deterministic: jitter
// zeroed, explicit FaultPlan, inline pool).
// ---------------------------------------------------------------------------

RobustnessPolicy TightBreaker() {
  RobustnessPolicy policy;
  policy.breaker_threshold = 2;
  policy.backoff_base = 10.0;
  policy.backoff_max = 40.0;
  policy.backoff_jitter = 0.0;  // Exact retry_at arithmetic in these tests.
  return policy;
}

TEST(FleetDegradationTest, FailedBoundaryServesFallbackAndDegrades) {
  const auto train = MakeTrace(33, 4.0 * kPeriodS, 0.5);
  ScalerFleet fleet(0);
  fleet.ConfigureRobustness(TightBreaker());
  ASSERT_TRUE(
      fleet.Register("svc", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  fault::FaultPlan plan;
  plan.rules.push_back(PlanFailureRule("svc", /*hit=*/2));
  fault::ScopedFaultInjection inject(std::move(plan));

  ASSERT_TRUE(fleet.Observe("svc", 1.0).ok());
  auto first = fleet.Plan("svc", 2.0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Hit 2 fails: the boundary is still served (OK, empty action = hold the
  // last-good plan), the tenant degrades.
  auto fallback = fleet.Plan("svc", 4.0);
  ASSERT_TRUE(fallback.ok()) << "fallback must serve, not error";
  EXPECT_TRUE(fallback->creation_times.empty());
  EXPECT_EQ(fallback->deletions, 0u);
  auto health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->health, TenantHealth::kDegraded);
  EXPECT_EQ(health->plan_failures, 1u);
  EXPECT_EQ(health->consecutive_plan_failures, 1u);
  EXPECT_EQ(health->fallbacks_served, 1u);
  EXPECT_EQ(health->breaker_opens, 0u);
  EXPECT_EQ(health->last_error.code(), StatusCode::kIoError);

  // Success clears the streak and the tenant recovers to healthy.
  ASSERT_TRUE(fleet.Plan("svc", 6.0).ok());
  health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->health, TenantHealth::kHealthy);
  EXPECT_EQ(health->consecutive_plan_failures, 0u);
}

TEST(FleetDegradationTest, BreakerTripsQuarantinesAndProbesBack) {
  const auto train = MakeTrace(34, 4.0 * kPeriodS, 0.5);
  ScalerFleet fleet(0);
  fleet.ConfigureRobustness(TightBreaker());
  ASSERT_TRUE(
      fleet.Register("svc", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  fault::FaultPlan plan;
  plan.rules.push_back(PlanFailureRule("svc", /*hit=*/1));
  plan.rules.push_back(PlanFailureRule("svc", /*hit=*/2));
  fault::ScopedFaultInjection inject(std::move(plan));

  // Two consecutive failures → breaker trips at threshold 2.
  ASSERT_TRUE(fleet.Plan("svc", 2.0).ok());
  ASSERT_TRUE(fleet.Plan("svc", 4.0).ok());
  auto health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->health, TenantHealth::kQuarantined);
  EXPECT_EQ(health->breaker_opens, 1u);
  EXPECT_EQ(health->fallbacks_served, 2u);
  EXPECT_EQ(health->retry_at, 4.0 + 10.0) << "backoff_base, zero jitter";

  // Quarantined boundaries serve fallback without touching the scaler: the
  // fault site records no hits and the mirror clock holds.
  const double mirror_before = fleet.Snapshot().per_tenant[0].second.now;
  auto gated = fleet.Plan("svc", 8.0);
  ASSERT_TRUE(gated.ok());
  EXPECT_TRUE(gated->creation_times.empty());
  EXPECT_EQ(fleet.Snapshot().per_tenant[0].second.now, mirror_before);
  EXPECT_EQ(inject.Stats().at("fleet.plan").hits, 2u)
      << "gated boundary must not execute the plan site";
  health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->fallbacks_served, 3u);
  EXPECT_EQ(health->probes, 0u);

  // Backoff expired → half-open probe; hit 3 has no rule → success →
  // full recovery, and the mirror deterministically catches up.
  auto probed = fleet.Plan("svc", 15.0);
  ASSERT_TRUE(probed.ok()) << probed.status().ToString();
  health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->health, TenantHealth::kHealthy);
  EXPECT_EQ(health->probes, 1u);
  EXPECT_EQ(health->retry_at, -kInf);
  EXPECT_EQ(fleet.Snapshot().per_tenant[0].second.now, 15.0);
}

TEST(FleetDegradationTest, FailedProbeReopensWithExponentialBackoff) {
  const auto train = MakeTrace(35, 4.0 * kPeriodS, 0.5);
  ScalerFleet fleet(0);
  fleet.ConfigureRobustness(TightBreaker());
  ASSERT_TRUE(
      fleet.Register("svc", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  fault::FaultPlan plan;
  // Hits 1..4 all fail: trip at 2, fail the probe (hit 3), fail the second
  // probe (hit 4).
  plan.rules.push_back(PlanFailureRule("svc", /*hit=*/1, /*period=*/1));
  fault::ScopedFaultInjection inject(std::move(plan));

  ASSERT_TRUE(fleet.Plan("svc", 2.0).ok());
  ASSERT_TRUE(fleet.Plan("svc", 4.0).ok());  // Trip: retry_at = 14.
  auto probe1 = fleet.Plan("svc", 14.0);     // Probe fails → re-open.
  ASSERT_TRUE(probe1.ok()) << "failed probe still serves fallback";
  auto health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->health, TenantHealth::kQuarantined);
  EXPECT_EQ(health->breaker_opens, 2u);
  EXPECT_EQ(health->probes, 1u);
  EXPECT_EQ(health->retry_at, 14.0 + 20.0) << "second open doubles backoff";

  ASSERT_TRUE(fleet.Plan("svc", 34.0).ok());  // Second probe fails too.
  health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->breaker_opens, 3u);
  EXPECT_EQ(health->retry_at, 34.0 + 40.0) << "capped at backoff_max";
}

TEST(FleetDegradationTest, ThrownPlanBoundaryIsCaughtAndServedByFallback) {
  const auto train = MakeTrace(36, 4.0 * kPeriodS, 0.5);
  ScalerFleet fleet(0);
  ASSERT_TRUE(
      fleet.Register("svc", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  fault::FaultPlan plan;
  fault::FaultRule rule = PlanFailureRule("svc", 1);
  rule.fault.kind = fault::FaultKind::kThrow;
  plan.rules.push_back(std::move(rule));
  fault::ScopedFaultInjection inject(std::move(plan));

  auto served = fleet.Plan("svc", 2.0);
  ASSERT_TRUE(served.ok()) << "a throwing boundary must not crash or error";
  EXPECT_TRUE(served->creation_times.empty());
  auto health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->health, TenantHealth::kDegraded);
  EXPECT_EQ(health->last_error.code(), StatusCode::kRuntimeError);
  EXPECT_NE(health->last_error.message().find("injected fault"),
            std::string::npos);
}

TEST(FleetDegradationTest, InvalidArgumentPropagatesAndFeedsNoBreaker) {
  const auto train = MakeTrace(37, 4.0 * kPeriodS, 0.5);
  ScalerFleet fleet(0);
  RobustnessPolicy policy = TightBreaker();
  policy.breaker_threshold = 1;  // Any real failure would trip instantly.
  fleet.ConfigureRobustness(policy);
  ASSERT_TRUE(
      fleet.Register("svc", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  ASSERT_TRUE(fleet.Plan("svc", 10.0).ok());
  // Regressive clock: a caller bug, which must surface as the error it is —
  // no fallback masking, no breaker bookkeeping (this is also the only
  // faults-off failure mode, so faults-off behavior is unchanged).
  auto bad = fleet.Plan("svc", 5.0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  auto health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->health, TenantHealth::kHealthy);
  EXPECT_EQ(health->plan_failures, 0u);
  EXPECT_EQ(health->fallbacks_served, 0u);
}

TEST(FleetDegradationTest, PlanDeadlineOverrunServesFallback) {
  const auto train = MakeTrace(38, 4.0 * kPeriodS, 0.5);
  ScalerFleet fleet(0);
  RobustnessPolicy policy;  // Default breaker, but an impossible deadline.
  policy.plan_deadline = 0.0;
  fleet.ConfigureRobustness(policy);
  ASSERT_TRUE(
      fleet.Register("svc", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  auto served = fleet.Plan("svc", 2.0);
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served->creation_times.empty()) << "late action discarded";
  auto health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->deadline_overruns, 1u);
  EXPECT_EQ(health->health, TenantHealth::kDegraded);
}

TEST(FleetDegradationTest, PlanAllIsolatesFailuresToTheFaultedTenant) {
  const auto train = MakeTrace(39, 4.0 * kPeriodS, 0.5);
  ScalerFleet fleet(2);
  ASSERT_TRUE(
      fleet.Register("ok-1", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  ASSERT_TRUE(
      fleet.Register("bad", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  ASSERT_TRUE(
      fleet.Register("ok-2", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  fault::FaultPlan plan;
  plan.rules.push_back(PlanFailureRule("bad", /*hit=*/1, /*period=*/1));
  fault::ScopedFaultInjection inject(std::move(plan));

  for (double t : {2.0, 4.0, 6.0}) {
    auto plans = fleet.PlanAll(t);
    ASSERT_EQ(plans.size(), 3u);
    for (const auto& p : plans) {
      EXPECT_TRUE(p.status.ok()) << p.tenant << ": " << p.status.ToString();
      EXPECT_EQ(p.degraded, p.tenant == "bad") << p.tenant << " at " << t;
    }
  }
  const auto snapshot = fleet.Snapshot();
  EXPECT_EQ(snapshot.tenants_quarantined, 1u) << "3 failures trip default";
  EXPECT_EQ(snapshot.tenants_healthy, 2u);
  EXPECT_EQ(snapshot.plan_failures, 3u);
  EXPECT_EQ(snapshot.fallbacks_served, 3u);
}

// ---------------------------------------------------------------------------
// Retrain faults — a failed background retrain never evicts the last-good
// model, and retries back off when configured.
// ---------------------------------------------------------------------------

TEST(FleetDegradationTest, FailedRetrainKeepsLastGoodModelAndBacksOff) {
  const auto train = MakeTrace(40, 4.0 * kPeriodS, 1.0);
  ScalerFleet fleet(0);
  RobustnessPolicy policy;
  policy.retrain_backoff_base = 100.0;
  policy.retrain_backoff_max = 400.0;
  fleet.ConfigureRobustness(policy);
  api::FreshnessPolicy freshness;
  freshness.pipeline.dt = kDt;
  freshness.pipeline.forecast_horizon = kPeriodS;
  freshness.retrain_workers = 0;  // Inline: deterministic timing.
  ASSERT_TRUE(fleet.EnableFreshness(freshness).ok());
  ASSERT_TRUE(
      fleet.Register("svc", BuildScaler(train, kPeriodS, "backup_pool")).ok());

  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "train.refit";
  rule.scope = "svc";
  rule.hit = 1;
  rule.fault.kind = fault::FaultKind::kThrow;  // Worst case: the task throws.
  plan.rules.push_back(std::move(rule));
  fault::ScopedFaultInjection inject(std::move(plan));

  // Feed enough arrivals for a >= 3-bin refit window, then force a retrain.
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += 0.7;
    ASSERT_TRUE(fleet.Observe("svc", t).ok());
  }
  ASSERT_TRUE(fleet.RequestRetrain("svc").ok());
  // The inline job already ran (and failed); the next boundary notices.
  auto served = fleet.Plan("svc", t + 1.0);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  auto freshness_state = fleet.Freshness("svc");
  ASSERT_TRUE(freshness_state.ok());
  EXPECT_EQ(freshness_state->retrain_failures, 1u);
  EXPECT_EQ(freshness_state->retrains_completed, 0u);
  EXPECT_EQ(freshness_state->swaps_applied, 0u) << "last-good model stays";
  auto health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->consecutive_retrain_failures, 1u);
  EXPECT_EQ(health->retrain_retry_at, (t + 1.0) + 100.0);
  EXPECT_EQ(health->last_error.code(), StatusCode::kRuntimeError);

  // The tenant keeps serving plans off the last-good model throughout.
  EXPECT_TRUE(fleet.Plan("svc", t + 3.0).ok());

  // A later (post-backoff) retrain succeeds and clears the streak.
  ASSERT_TRUE(fleet.RequestRetrain("svc").ok());
  ASSERT_TRUE(fleet.Plan("svc", t + 5.0).ok());
  freshness_state = fleet.Freshness("svc");
  ASSERT_TRUE(freshness_state.ok());
  EXPECT_EQ(freshness_state->retrains_completed, 1u);
  health = fleet.Health("svc");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->consecutive_retrain_failures, 0u);
  EXPECT_EQ(health->retrain_retry_at, -kInf);
}

// ---------------------------------------------------------------------------
// Atomic snapshot writes + health persistence.
// ---------------------------------------------------------------------------

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "rs_fault_test_" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AtomicFileTest, RetriesThroughInjectedWriteAndRenameFaults) {
  const std::string path = TempPath("retry.bin");
  ASSERT_TRUE(persist::AtomicWriteFile(path, "before").ok());
  fault::FaultPlan plan;
  fault::FaultRule write_fault;
  write_fault.site = "persist.write";
  write_fault.hit = 1;
  plan.rules.push_back(write_fault);
  fault::FaultRule rename_fault;
  rename_fault.site = "persist.rename";
  rename_fault.hit = 1;
  plan.rules.push_back(rename_fault);
  fault::ScopedFaultInjection inject(std::move(plan));

  // Attempt 1 dies in the write, attempt 2 in the rename, attempt 3 lands.
  ASSERT_TRUE(persist::AtomicWriteFile(path, "after").ok());
  EXPECT_EQ(Slurp(path), "after");
  EXPECT_EQ(inject.total_fired(), 2u);
  std::remove(path.c_str());
}

TEST(AtomicFileTest, ExhaustedRetriesLeaveThePreviousFileIntact) {
  const std::string path = TempPath("exhausted.bin");
  ASSERT_TRUE(persist::AtomicWriteFile(path, "precious").ok());
  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "persist.write";
  rule.hit = 1;
  rule.period = 1;  // Every attempt fails.
  plan.rules.push_back(rule);
  fault::ScopedFaultInjection inject(std::move(plan));

  const Status st = persist::AtomicWriteFile(path, "clobber");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("3 attempts"), std::string::npos);
  EXPECT_EQ(Slurp(path), "precious") << "the old snapshot must survive";
  EXPECT_TRUE(Slurp(path + ".tmp").empty()) << "temp file cleaned up";
  std::remove(path.c_str());
}

TEST(AtomicFileTest, DurabilityKnobOffStillCommitsAtomically) {
  const std::string path = TempPath("durability_off.bin");
  persist::AtomicWriteOptions options;
  options.durability = persist::Durability::kNone;
  ASSERT_TRUE(persist::AtomicWriteFile(path, "v1", options).ok());
  ASSERT_TRUE(persist::AtomicWriteFile(path, "v2", options).ok());
  EXPECT_EQ(Slurp(path), "v2");
  EXPECT_TRUE(Slurp(path + ".tmp").empty());
  std::remove(path.c_str());
}

TEST(AtomicFileTest, RemoveStaleTempFilesSweepsOnlyOrphans) {
  const std::string dir = ::testing::TempDir() + "rs_fault_test_tmpsweep";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(persist::AtomicWriteFile(dir + "/keep.bin", "keep").ok());
  // Strand two orphans the way a crash between temp-write and rename does.
  std::ofstream(dir + "/a.bin.tmp") << "orphan";
  std::ofstream(dir + "/b.bin.tmp") << "orphan";
  EXPECT_EQ(persist::RemoveStaleTempFiles(dir), 2u);
  EXPECT_EQ(Slurp(dir + "/keep.bin"), "keep") << "committed files survive";
  EXPECT_TRUE(Slurp(dir + "/a.bin.tmp").empty());
  EXPECT_EQ(persist::RemoveStaleTempFiles(dir), 0u) << "sweep is idempotent";
  std::remove((dir + "/keep.bin").c_str());
}

TEST(FleetDegradationTest, HealthStateSurvivesSaveAndLoad) {
  const auto train = MakeTrace(41, 4.0 * kPeriodS, 0.5);
  ScalerFleet fleet(0);
  fleet.ConfigureRobustness(TightBreaker());
  ASSERT_TRUE(
      fleet.Register("svc", BuildScaler(train, kPeriodS, "backup_pool")).ok());
  {
    fault::FaultPlan plan;
    plan.rules.push_back(PlanFailureRule("svc", /*hit=*/1, /*period=*/1));
    fault::ScopedFaultInjection inject(std::move(plan));
    ASSERT_TRUE(fleet.Plan("svc", 2.0).ok());
    ASSERT_TRUE(fleet.Plan("svc", 4.0).ok());  // Quarantined, retry_at 14.
  }
  const std::string path = TempPath("fleet_health.bin");
  ASSERT_TRUE(fleet.SaveFleetToFile(path).ok());
  auto restored = ScalerFleet::LoadFleetFromFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::remove(path.c_str());

  auto before = fleet.Health("svc");
  auto after = restored->Health("svc");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->health, TenantHealth::kQuarantined);
  EXPECT_EQ(after->plan_failures, before->plan_failures);
  EXPECT_EQ(after->fallbacks_served, before->fallbacks_served);
  EXPECT_EQ(after->breaker_opens, before->breaker_opens);
  EXPECT_EQ(after->retry_at, before->retry_at)
      << "the restored fleet resumes mid-backoff, not amnesically";

  // And the restored breaker keeps working: still gated before retry_at,
  // probes back to healthy after (no faults installed now).
  restored->ConfigureRobustness(TightBreaker());
  auto gated = restored->Plan("svc", 6.0);
  ASSERT_TRUE(gated.ok());
  auto still = restored->Health("svc");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->health, TenantHealth::kQuarantined);
  ASSERT_TRUE(restored->Plan("svc", 20.0).ok());
  auto recovered = restored->Health("svc");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->health, TenantHealth::kHealthy);
}

// ---------------------------------------------------------------------------
// The headline chaos guarantee: a seeded storm over a multi-tenant fleet
// replays byte-identically across worker counts {0, 1, 8} — same actions,
// same degradation counters, same faults fired — and an empty plan is
// byte-identical to no injection at all.
// ---------------------------------------------------------------------------

struct StormRun {
  std::vector<std::vector<sim::ScalingAction>> actions;  // [tenant][boundary]
  std::vector<std::vector<bool>> degraded;               // [tenant][boundary]
  std::vector<TenantHealthInfo> health;                  // [tenant]
  std::uint64_t total_fired = 0;
  std::size_t boundaries_served = 0;
  std::size_t boundaries_total = 0;
};

StormRun DriveStorm(const workload::Trace& train,
                    const std::vector<std::string>& tenants,
                    std::size_t workers, std::uint64_t storm_seed) {
  ScalerFleet fleet(workers);
  RobustnessPolicy policy;
  policy.breaker_threshold = 2;
  policy.backoff_base = 6.0;
  policy.backoff_max = 24.0;
  policy.backoff_jitter = 0.25;  // Jitter on: it must also be deterministic.
  fleet.ConfigureRobustness(policy);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const char* spec = i % 2 == 0 ? "backup_pool" : "robust_hp:target=0.9";
    EXPECT_TRUE(fleet.Register(tenants[i], BuildScaler(train, kPeriodS, spec))
                    .ok());
  }

  StormRun run;
  run.actions.resize(tenants.size());
  run.degraded.resize(tenants.size());
  fault::StormOptions options;
  options.fire_probability = 0.06;  // Dense enough to trip breakers.
  fault::ScopedFaultInjection inject(fault::MakeStormPlan(storm_seed, options));
  for (int step = 1; step <= 50; ++step) {
    const double now = 2.0 * step;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      // Injected observe faults reject deterministically; ignore them the
      // way a serving front end would (drop the datapoint, keep going).
      (void)fleet.Observe(tenants[i],
                          now - 1.0 + 0.01 * static_cast<double>(i));
    }
    auto plans = fleet.PlanAll(now);
    EXPECT_EQ(plans.size(), tenants.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      ++run.boundaries_total;
      EXPECT_TRUE(plans[i].status.ok())
          << plans[i].tenant << " at t=" << now << ": "
          << plans[i].status.ToString();
      if (plans[i].status.ok()) ++run.boundaries_served;
      run.actions[i].push_back(plans[i].action);
      run.degraded[i].push_back(plans[i].degraded);
    }
  }
  for (const auto& tenant : tenants) {
    auto health = fleet.Health(tenant);
    EXPECT_TRUE(health.ok());
    run.health.push_back(std::move(health).ValueOrDie());
  }
  run.total_fired = inject.total_fired();
  return run;
}

void ExpectRunsIdentical(const StormRun& a, const StormRun& b,
                         const std::string& label) {
  EXPECT_EQ(a.total_fired, b.total_fired) << label;
  EXPECT_EQ(a.boundaries_served, b.boundaries_served) << label;
  ASSERT_EQ(a.actions.size(), b.actions.size()) << label;
  for (std::size_t i = 0; i < a.actions.size(); ++i) {
    EXPECT_EQ(a.degraded[i], b.degraded[i]) << label << ", tenant " << i;
    ASSERT_EQ(a.actions[i].size(), b.actions[i].size()) << label;
    for (std::size_t j = 0; j < a.actions[i].size(); ++j) {
      EXPECT_EQ(a.actions[i][j].deletions, b.actions[i][j].deletions)
          << label << ", tenant " << i << ", boundary " << j;
      ASSERT_EQ(a.actions[i][j].creation_times.size(),
                b.actions[i][j].creation_times.size())
          << label << ", tenant " << i << ", boundary " << j;
      for (std::size_t k = 0; k < a.actions[i][j].creation_times.size(); ++k) {
        // Byte-identical across worker counts, faults and all.
        EXPECT_EQ(a.actions[i][j].creation_times[k],
                  b.actions[i][j].creation_times[k])
            << label << ", tenant " << i << ", boundary " << j;
      }
    }
    EXPECT_EQ(a.health[i].health, b.health[i].health) << label;
    EXPECT_EQ(a.health[i].plan_failures, b.health[i].plan_failures) << label;
    EXPECT_EQ(a.health[i].fallbacks_served, b.health[i].fallbacks_served)
        << label;
    EXPECT_EQ(a.health[i].rejected_observations,
              b.health[i].rejected_observations)
        << label;
    EXPECT_EQ(a.health[i].breaker_opens, b.health[i].breaker_opens) << label;
    EXPECT_EQ(a.health[i].probes, b.health[i].probes) << label;
    EXPECT_EQ(a.health[i].retry_at, b.health[i].retry_at)
        << label << " (jittered backoff must replay exactly)";
  }
}

TEST(ChaosParityTest, StormReplaysByteIdenticallyAcrossWorkerCounts) {
  const auto train = MakeTrace(50, 4.0 * kPeriodS, 0.8);
  const std::vector<std::string> tenants = {"svc-0", "svc-1", "svc-2",
                                            "svc-3"};
  const std::uint64_t storm_seed = 4242;
  const StormRun base = DriveStorm(train, tenants, 0, storm_seed);
  EXPECT_GT(base.total_fired, 0u) << "the storm must actually storm";
  EXPECT_EQ(base.boundaries_served, base.boundaries_total)
      << "every boundary is served (real plan or fallback)";
  const StormRun one = DriveStorm(train, tenants, 1, storm_seed);
  const StormRun eight = DriveStorm(train, tenants, 8, storm_seed);
  ExpectRunsIdentical(base, one, "0 vs 1 workers");
  ExpectRunsIdentical(base, eight, "0 vs 8 workers");
}

TEST(ChaosParityTest, EmptyPlanInstalledMatchesNoInjection) {
  const auto train = MakeTrace(51, 4.0 * kPeriodS, 0.8);
  const std::vector<std::string> tenants = {"svc-0", "svc-1"};

  const auto drive = [&](bool install) {
    ScalerFleet fleet(2);
    for (const auto& name : tenants) {
      EXPECT_TRUE(
          fleet.Register(name, BuildScaler(train, kPeriodS, "backup_pool"))
              .ok());
    }
    std::optional<fault::ScopedFaultInjection> inject;
    if (install) inject.emplace(fault::FaultPlan{});
    std::vector<sim::ScalingAction> actions;
    for (int step = 1; step <= 20; ++step) {
      const double now = 2.0 * step;
      for (const auto& name : tenants) {
        EXPECT_TRUE(fleet.Observe(name, now - 1.0).ok());
      }
      for (auto& plan : fleet.PlanAll(now)) {
        EXPECT_TRUE(plan.status.ok());
        EXPECT_FALSE(plan.degraded);
        actions.push_back(std::move(plan.action));
      }
    }
    return actions;
  };

  const auto without = drive(false);
  const auto with = drive(true);
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(without[i].deletions, with[i].deletions);
    ASSERT_EQ(without[i].creation_times.size(), with[i].creation_times.size());
    for (std::size_t j = 0; j < without[i].creation_times.size(); ++j) {
      EXPECT_EQ(without[i].creation_times[j], with[i].creation_times[j]);
    }
  }
}

}  // namespace
}  // namespace rs
