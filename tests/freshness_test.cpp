// Tests of the model-freshness stack introduced with rs::train: the
// resumable TrainingSession (cold parity with TrainRobustScaler, warm-start
// refits), the ADMM warm-start option itself, the streaming DriftDetector
// (rate-shift CUSUM, periodicity check, snapshot continuation), and the
// ScalerFleet freshness loop — drift → background retrain → tear-free hot
// swap at a plan boundary, with byte-identical parity against unswapped and
// fresh-model controls across worker counts, kernel modes, and all registry
// strategies. The TSan CI job runs this whole suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rs/api/api.hpp"
#include "rs/common/kernels.hpp"
#include "rs/core/admm.hpp"
#include "rs/core/pipeline.hpp"
#include "rs/persist/persist.hpp"
#include "rs/simulator/decision_clock.hpp"
#include "rs/stats/rng.hpp"
#include "rs/timeseries/drift.hpp"
#include "rs/train/training_session.hpp"

namespace rs {
namespace {

using api::ScalerFleet;

// ---------------------------------------------------------------------------
// Shared fixtures: sinusoidal workloads (10-min cycles, 30 s bins) so every
// training run in this file finishes in milliseconds.
// ---------------------------------------------------------------------------

constexpr double kPeriodS = 600.0;
constexpr double kDt = 30.0;
constexpr double kTick = 2.0;  ///< PlanAll cadence (= planning interval).

workload::Trace MakeSineTrace(std::uint64_t seed, double horizon, double qps,
                              double period = kPeriodS, double shift_at = -1.0,
                              double shift_factor = 1.0) {
  std::vector<double> rates;
  for (double t = 0.5 * kDt; t < horizon; t += kDt) {
    const double phase = std::fmod(t, period) / period;
    double rate = qps * (1.0 + 0.4 * std::sin(2.0 * M_PI * phase));
    if (shift_at >= 0.0 && t >= shift_at) rate *= shift_factor;
    rates.push_back(rate);
  }
  auto intensity = *workload::PiecewiseConstantIntensity::Make(rates, kDt);
  stats::Rng rng(seed);
  return *workload::MakeTraceFromIntensity(
      &rng, intensity, stats::DurationDistribution::Exponential(15.0));
}

core::PipelineOptions MakePipelineOptions(double forecast_horizon) {
  core::PipelineOptions options;
  options.dt = kDt;
  options.forecast_horizon = forecast_horizon;
  return options;
}

api::Scaler BuildScaler(const workload::Trace& train, double forecast_horizon,
                        const char* spec_string) {
  auto spec = api::ParseStrategySpec(spec_string);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto scaler = api::ScalerBuilder()
                    .WithTrace(train)
                    .WithBinWidth(kDt)
                    .WithForecastHorizon(forecast_horizon)
                    .WithStrategy(*spec)
                    .WithPlanningInterval(kTick)
                    .WithMcSamples(40)
                    .Build();
  EXPECT_TRUE(scaler.ok()) << scaler.status().ToString();
  return std::move(scaler).ValueOrDie();
}

void ExpectActionsIdentical(const std::vector<sim::ScalingAction>& expected,
                            const std::vector<sim::ScalingAction>& got,
                            const std::string& label) {
  ASSERT_EQ(expected.size(), got.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].deletions, got[i].deletions)
        << label << ", action " << i;
    ASSERT_EQ(expected[i].creation_times.size(), got[i].creation_times.size())
        << label << ", action " << i;
    for (std::size_t j = 0; j < expected[i].creation_times.size(); ++j) {
      // Byte-identical, not approximately equal: tear-free swaps must not
      // perturb a single arithmetic operation on either side of the
      // boundary.
      EXPECT_EQ(expected[i].creation_times[j], got[i].creation_times[j])
          << label << ", action " << i << ", creation " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// rs::train::TrainingSession — cold parity, warm refits, appends.
// ---------------------------------------------------------------------------

TEST(TrainingSession, ColdFitMatchesTrainRobustScalerBitwise) {
  const auto trace = MakeSineTrace(21, 4.0 * kPeriodS, 1.0);
  const auto options = MakePipelineOptions(2.0 * kPeriodS);

  auto direct = core::TrainRobustScaler(trace, options);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  auto session = train::TrainingSession::FromTrace(trace, options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto fit = session->Fit();
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();

  // Same modules in the same order: the results must be bitwise equal,
  // not approximately equal.
  EXPECT_EQ(direct->period.period, fit->period.period);
  EXPECT_EQ(direct->admm_info.iterations, fit->admm_info.iterations);
  ASSERT_EQ(direct->model.log_intensity().size(),
            fit->model.log_intensity().size());
  for (std::size_t i = 0; i < fit->model.log_intensity().size(); ++i) {
    EXPECT_EQ(direct->model.log_intensity()[i], fit->model.log_intensity()[i])
        << "log intensity bin " << i;
  }
  ASSERT_EQ(direct->forecast.rates().size(), fit->forecast.rates().size());
  for (std::size_t i = 0; i < fit->forecast.rates().size(); ++i) {
    EXPECT_EQ(direct->forecast.rates()[i], fit->forecast.rates()[i])
        << "forecast bin " << i;
  }
}

TEST(TrainingSession, WarmRefitConvergesFasterToTheSameModel) {
  const double train_horizon = 4.0 * kPeriodS;
  const double extension = 1.0 * kPeriodS;
  const auto full = MakeSineTrace(22, train_horizon + extension, 1.0);
  auto options = MakePipelineOptions(2.0 * kPeriodS);
  // Let ADMM run to its tolerances so "same minimizer" is well-defined
  // (the convex objective has a unique optimum; a capped fit does not).
  // At the default 1e-6 residuals that takes several thousand iterations
  // on these tiny problems.
  options.admm.max_iterations = 50000;

  auto [head, tail] = full.SplitAt(train_horizon);

  auto session = train::TrainingSession::FromTrace(head, options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto cold = session->Fit();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->admm_info.converged);
  EXPECT_TRUE(session->has_warm_start());

  // Append one more cycle of arrivals and refit warm. SplitAt rebases the
  // tail to t = 0, so shift it back into session time.
  std::vector<double> continuation = tail.ArrivalTimes();
  for (double& t : continuation) t += train_horizon;
  ASSERT_TRUE(
      session->AppendArrivals(continuation, train_horizon + extension).ok());
  EXPECT_DOUBLE_EQ(session->window_end(), train_horizon + extension);
  auto warm = session->Refit();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(warm->admm_info.converged);

  // A cold fit of the identical extended window, for comparison.
  auto cold_session = train::TrainingSession::FromTrace(full, options);
  ASSERT_TRUE(cold_session.ok());
  auto cold_full = cold_session->Fit();
  ASSERT_TRUE(cold_full.ok());
  ASSERT_TRUE(cold_full->admm_info.converged);

  EXPECT_LE(warm->admm_info.iterations, cold_full->admm_info.iterations)
      << "warm start must not slow convergence down";
  // Both runs satisfied the same tolerances on the same convex objective:
  // the models agree to within solver precision.
  ASSERT_EQ(warm->model.log_intensity().size(),
            cold_full->model.log_intensity().size());
  for (std::size_t i = 0; i < warm->model.log_intensity().size(); ++i) {
    EXPECT_NEAR(warm->model.log_intensity()[i],
                cold_full->model.log_intensity()[i], 1e-2)
        << "log intensity bin " << i;
  }
}

TEST(TrainingSession, RefitIsDeterministic) {
  const auto trace = MakeSineTrace(23, 4.0 * kPeriodS, 1.0);
  const auto options = MakePipelineOptions(kPeriodS);

  auto session = train::TrainingSession::FromTrace(trace, options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Fit().ok());

  train::TrainingSession a = *session;
  train::TrainingSession b = *session;
  auto fit_a = a.Refit();
  auto fit_b = b.Refit();
  ASSERT_TRUE(fit_a.ok());
  ASSERT_TRUE(fit_b.ok());
  EXPECT_EQ(fit_a->admm_info.iterations, fit_b->admm_info.iterations);
  ASSERT_EQ(fit_a->forecast.rates().size(), fit_b->forecast.rates().size());
  for (std::size_t i = 0; i < fit_a->forecast.rates().size(); ++i) {
    EXPECT_EQ(fit_a->forecast.rates()[i], fit_b->forecast.rates()[i]);
  }
}

TEST(TrainingSession, SingleEventAppendMatchesBatchAppend) {
  const double train_horizon = 3.0 * kPeriodS;
  const double extension = kPeriodS;
  const auto full = MakeSineTrace(24, train_horizon + extension, 1.0);
  const auto options = MakePipelineOptions(kPeriodS);
  auto [head, tail] = full.SplitAt(train_horizon);

  auto batch = train::TrainingSession::FromTrace(head, options);
  auto single = train::TrainingSession::FromTrace(head, options);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(single.ok());

  const double up_to = train_horizon + extension;
  std::vector<double> continuation = tail.ArrivalTimes();
  for (double& t : continuation) t += train_horizon;
  ASSERT_TRUE(batch->AppendArrivals(continuation, up_to).ok());
  for (double t : continuation) {
    ASSERT_TRUE(single->AppendArrival(t).ok());
  }
  ASSERT_TRUE(single->ExtendTo(up_to).ok());

  EXPECT_EQ(batch->bins(), single->bins());
  EXPECT_DOUBLE_EQ(batch->window_end(), single->window_end());
  auto fit_batch = batch->Refit();
  auto fit_single = single->Refit();
  ASSERT_TRUE(fit_batch.ok());
  ASSERT_TRUE(fit_single.ok());
  ASSERT_EQ(fit_batch->forecast.rates().size(),
            fit_single->forecast.rates().size());
  for (std::size_t i = 0; i < fit_batch->forecast.rates().size(); ++i) {
    EXPECT_EQ(fit_batch->forecast.rates()[i], fit_single->forecast.rates()[i])
        << "forecast bin " << i;
  }
}

// ---------------------------------------------------------------------------
// core::FitNhpp warm start.
// ---------------------------------------------------------------------------

TEST(AdmmWarmStart, PreservesTheMinimizerAndFallsBackPerBin) {
  std::vector<double> counts;
  for (std::size_t i = 0; i < 60; ++i) {
    counts.push_back(30.0 + 12.0 * std::sin(2.0 * M_PI *
                                            static_cast<double>(i % 20) /
                                            20.0));
  }
  core::NhppConfig config;
  config.dt = kDt;
  config.period = 20;
  core::AdmmOptions options;
  options.max_iterations = 20000;

  core::AdmmInfo cold_info;
  auto cold = core::FitNhpp(counts, config, options, &cold_info);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold_info.converged);
  ASSERT_GT(cold_info.iterations, 1u);

  // Warm-starting at the solution must not change the minimizer and must
  // not slow the outer loop down. (Only the primal iterate is seeded —
  // duals restart at zero — so the iteration count does not collapse; the
  // payoff of warm starts is in the per-iteration subproblem solves.)
  core::AdmmOptions warm_options = options;
  warm_options.warm_start = &cold->log_intensity();
  core::AdmmInfo warm_info;
  auto warm = core::FitNhpp(counts, config, warm_options, &warm_info);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(warm_info.converged);
  EXPECT_LE(warm_info.iterations, cold_info.iterations);
  ASSERT_EQ(cold->log_intensity().size(), warm->log_intensity().size());
  for (std::size_t i = 0; i < warm->log_intensity().size(); ++i) {
    EXPECT_NEAR(cold->log_intensity()[i], warm->log_intensity()[i], 1e-2);
  }

  // A warm vector shorter than the series (a refit after appending bins)
  // with a non-finite entry must fall back to the default start per bin,
  // not poison the fit.
  std::vector<double> partial(cold->log_intensity().begin(),
                              cold->log_intensity().begin() + 40);
  partial[7] = std::numeric_limits<double>::quiet_NaN();
  core::AdmmOptions partial_options = options;
  partial_options.warm_start = &partial;
  core::AdmmInfo partial_info;
  auto patched = core::FitNhpp(counts, config, partial_options, &partial_info);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  ASSERT_TRUE(partial_info.converged);
  for (std::size_t i = 0; i < patched->log_intensity().size(); ++i) {
    ASSERT_TRUE(std::isfinite(patched->log_intensity()[i])) << "bin " << i;
    EXPECT_NEAR(cold->log_intensity()[i], patched->log_intensity()[i], 1e-2);
  }
}

// ---------------------------------------------------------------------------
// ts::DriftDetector.
// ---------------------------------------------------------------------------

TEST(DriftDetector, FiresOnRateShift) {
  ts::DriftDetectorOptions options;
  auto detector = ts::DriftDetector::Make(
      options, std::vector<double>(40, 1.0), /*dt=*/1.0, /*period_bins=*/0,
      /*origin=*/0.0);
  ASSERT_TRUE(detector.ok());
  // 4 events/s against an expected 1/s: x = 3 per bin, so the CUSUM crosses
  // threshold 8 right after the 5-bin warmup.
  for (double t = 0.0; t < 20.0; t += 0.25) detector->Observe(t);
  detector->AdvanceTo(20.0);
  ASSERT_TRUE(detector->fired());
  EXPECT_EQ(ts::DriftKind::kRateShift, detector->kind());
  EXPECT_GT(detector->fired_time(), 0.0);
  EXPECT_LE(detector->fired_time(), 10.0) << "latch should be prompt";
}

TEST(DriftDetector, SilentWhenTheStreamMatchesTheForecast) {
  // Integer expected rates at dt = 1 so a deterministic stream can match
  // the forecast exactly: every residual is 0 and the phase profiles
  // correlate perfectly.
  const std::vector<double> profile = {2.0, 3.0, 4.0, 3.0};
  std::vector<double> expected;
  for (std::size_t i = 0; i < 40; ++i) expected.push_back(profile[i % 4]);
  ts::DriftDetectorOptions options;
  auto detector = ts::DriftDetector::Make(options, expected, /*dt=*/1.0,
                                          /*period_bins=*/4, /*origin=*/0.0);
  ASSERT_TRUE(detector.ok());
  for (std::size_t bin = 0; bin < 40; ++bin) {
    const int events = static_cast<int>(expected[bin]);
    for (int e = 0; e < events; ++e) {
      detector->Observe(static_cast<double>(bin) + 0.1 * (e + 1));
    }
  }
  detector->AdvanceTo(40.0);
  EXPECT_FALSE(detector->fired());
  EXPECT_EQ(40u, detector->bins_closed());
  EXPECT_DOUBLE_EQ(0.0, detector->profile_score());
}

TEST(DriftDetector, FiresOnPeriodicityBreakNotRateShift) {
  // Same mean, inverted phase: the level CUSUM would eventually notice,
  // but with its threshold parked high only the profile check can latch —
  // proving the shape change is what fires.
  const std::vector<double> profile = {1.0, 4.0, 1.0, 4.0};
  std::vector<double> expected;
  for (std::size_t i = 0; i < 40; ++i) expected.push_back(profile[i % 4]);
  ts::DriftDetectorOptions options;
  options.threshold = 1e6;
  auto detector = ts::DriftDetector::Make(options, expected, /*dt=*/1.0,
                                          /*period_bins=*/4, /*origin=*/0.0);
  ASSERT_TRUE(detector.ok());
  for (std::size_t bin = 0; bin < 40; ++bin) {
    // Anti-phase observation: 4 where 1 was trained, 1 where 4 was.
    const int events = static_cast<int>(profile[(bin + 1) % 4]);
    for (int e = 0; e < events; ++e) {
      detector->Observe(static_cast<double>(bin) + 0.1 * (e + 1));
    }
  }
  detector->AdvanceTo(40.0);
  ASSERT_TRUE(detector->fired());
  EXPECT_EQ(ts::DriftKind::kPeriodicityBreak, detector->kind());
}

TEST(DriftDetector, SnapshotRestoreContinuesByteIdentical) {
  const std::vector<double> profile = {2.0, 3.0, 5.0, 3.0};
  std::vector<double> expected;
  for (std::size_t i = 0; i < 24; ++i) expected.push_back(profile[i % 4]);
  ts::DriftDetectorOptions options;
  auto original = ts::DriftDetector::Make(options, expected, /*dt=*/1.0,
                                          /*period_bins=*/4, /*origin=*/0.0);
  ASSERT_TRUE(original.ok());

  // A deterministic but drifting stream (slowly rising rate), cut mid-bin.
  std::vector<double> events;
  for (std::size_t bin = 0; bin < 30; ++bin) {
    const int count = 2 + static_cast<int>(bin / 6);
    for (int e = 0; e < count; ++e) {
      events.push_back(static_cast<double>(bin) + 0.2 * (e + 1));
    }
  }
  const std::size_t cut = events.size() / 2;
  for (std::size_t i = 0; i < cut; ++i) original->Observe(events[i]);

  persist::Writer writer;
  original->Serialize(&writer);
  std::stringstream buffer;
  ASSERT_TRUE(writer.Finish(buffer).ok());
  auto reader = persist::Reader::FromStream(buffer);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto restored = ts::DriftDetector::Deserialize(&*reader, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  for (std::size_t i = cut; i < events.size(); ++i) {
    original->Observe(events[i]);
    restored->Observe(events[i]);
  }
  original->AdvanceTo(30.0);
  restored->AdvanceTo(30.0);

  EXPECT_EQ(original->bins_closed(), restored->bins_closed());
  EXPECT_EQ(original->score_up(), restored->score_up());
  EXPECT_EQ(original->score_down(), restored->score_down());
  EXPECT_EQ(original->profile_score(), restored->profile_score());
  EXPECT_EQ(original->fired(), restored->fired());
  EXPECT_EQ(original->kind(), restored->kind());
  EXPECT_EQ(original->fired_time(), restored->fired_time());
}

// ---------------------------------------------------------------------------
// Fleet freshness loop end-to-end.
// ---------------------------------------------------------------------------

struct FleetDrive {
  /// Per-tenant actions in registration order, flattened across batches.
  std::vector<std::vector<sim::ScalingAction>> actions;
  /// (plan time, per-tenant action) for boundary-aligned comparisons.
  std::vector<std::pair<double, std::vector<sim::ScalingAction>>> batches;
};

/// Drives `fleet` with per-tenant event streams on the PlanAll cadence:
/// events strictly before each tick feed first, then the batch plans.
/// `from` lets a control fleet enter mid-timeline (its first tick is the
/// first multiple of kTick at or after `from`).
FleetDrive DriveFleet(
    ScalerFleet* fleet, const std::vector<std::string>& tenants,
    const std::vector<std::pair<double, std::size_t>>& events, double horizon,
    double from = 0.0,
    const std::function<void(ScalerFleet*, double)>& at_tick = nullptr) {
  FleetDrive drive;
  drive.actions.resize(tenants.size());
  std::size_t next_event = 0;
  const auto first_tick =
      static_cast<std::size_t>(std::ceil(from / kTick - 1e-9));
  for (std::size_t k = std::max<std::size_t>(first_tick, 1);
       k * kTick <= horizon; ++k) {
    const double now = static_cast<double>(k) * kTick;
    while (next_event < events.size() && events[next_event].first < now) {
      const auto& [t, tenant] = events[next_event];
      if (t >= from) {
        auto outcome = fleet->Observe(tenants[tenant], t);
        EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
      }
      ++next_event;
    }
    if (at_tick) at_tick(fleet, now);
    auto batch = fleet->PlanAll(now);
    std::vector<sim::ScalingAction> row;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_TRUE(batch[i].status.ok())
          << tenants[i] << " at t=" << now << ": "
          << batch[i].status.ToString();
      drive.actions[i].push_back(batch[i].action);
      row.push_back(batch[i].action);
    }
    drive.batches.emplace_back(now, std::move(row));
  }
  return drive;
}

std::vector<std::pair<double, std::size_t>> MergeEvents(
    const std::vector<workload::Trace>& traces) {
  std::vector<std::pair<double, std::size_t>> events;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (double t : traces[i].ArrivalTimes()) events.emplace_back(t, i);
  }
  std::sort(events.begin(), events.end());
  return events;
}

api::FreshnessPolicy MakePolicy(double forecast_horizon) {
  api::FreshnessPolicy policy;
  policy.pipeline = MakePipelineOptions(forecast_horizon);
  policy.min_retrain_interval = 60.0;
  policy.retrain_workers = 0;  // Synchronous: deterministic swap timing.
  return policy;
}

TEST(FleetFreshness, DriftTriggersRetrainAndSwapWithoutDisturbingNeighbors) {
  const double train_horizon = 4.0 * kPeriodS;
  const double serve_horizon = 2.0 * kPeriodS;
  const double shift_at = serve_horizon / 3.0;
  const std::vector<std::string> tenants = {"shifty", "steady"};
  const auto train_a = MakeSineTrace(31, train_horizon, 1.0);
  const auto train_b = MakeSineTrace(32, train_horizon, 1.0);
  const std::vector<workload::Trace> serve = {
      MakeSineTrace(41, serve_horizon, 1.0, kPeriodS, shift_at, 4.0),
      MakeSineTrace(42, serve_horizon, 1.0),
  };
  const auto events = MergeEvents(serve);

  ScalerFleet fleet(0);
  ASSERT_TRUE(fleet.EnableFreshness(MakePolicy(serve_horizon)).ok());
  ASSERT_TRUE(
      fleet.Register("shifty", BuildScaler(train_a, serve_horizon,
                                           "robust_hp:target=0.9"))
          .ok());
  ASSERT_TRUE(
      fleet.Register("steady", BuildScaler(train_b, serve_horizon,
                                           "robust_hp:target=0.9"))
          .ok());

  ScalerFleet control(0);
  ASSERT_TRUE(
      control.Register("shifty", BuildScaler(train_a, serve_horizon,
                                             "robust_hp:target=0.9"))
          .ok());
  ASSERT_TRUE(
      control.Register("steady", BuildScaler(train_b, serve_horizon,
                                             "robust_hp:target=0.9"))
          .ok());

  const auto fresh_run = DriveFleet(&fleet, tenants, events, serve_horizon);
  const auto control_run =
      DriveFleet(&control, tenants, events, serve_horizon);

  auto shifty = fleet.Freshness("shifty");
  ASSERT_TRUE(shifty.ok()) << shifty.status().ToString();
  EXPECT_TRUE(shifty->enabled);
  EXPECT_GE(shifty->drift_events, 1u) << "4x regime shift must latch";
  EXPECT_GE(shifty->retrains_completed, 1u);
  EXPECT_EQ(0u, shifty->retrain_failures);
  EXPECT_GE(shifty->swaps_applied, 1u);
  EXPECT_GT(shifty->last_swap_time, shift_at)
      << "the swap can only follow the shift";
  EXPECT_GT(shifty->model_origin, 0.0)
      << "a swapped model's forecast origin moves to its window end";

  auto steady = fleet.Freshness("steady");
  ASSERT_TRUE(steady.ok());
  EXPECT_EQ(0u, steady->drift_events) << "stationary tenant must stay quiet";
  EXPECT_EQ(0u, steady->swaps_applied);

  // The freshness loop ran entirely off the steady tenant's path: its
  // action stream is byte-identical to the freshness-free control fleet.
  ExpectActionsIdentical(control_run.actions[1], fresh_run.actions[1],
                         "steady tenant vs control");
}

TEST(FleetFreshness, LoopIsByteIdenticalAcrossWorkersAndKernelModes) {
  const double train_horizon = 4.0 * kPeriodS;
  const double serve_horizon = 1.5 * kPeriodS;
  const double shift_at = serve_horizon / 3.0;
  const std::vector<std::string> tenants = {"shifty", "steady"};
  const auto train_a = MakeSineTrace(33, train_horizon, 1.0);
  const auto train_b = MakeSineTrace(34, train_horizon, 1.0);
  const std::vector<workload::Trace> serve = {
      MakeSineTrace(43, serve_horizon, 1.0, kPeriodS, shift_at, 4.0),
      MakeSineTrace(44, serve_horizon, 1.0),
  };
  const auto events = MergeEvents(serve);

  auto run = [&](std::size_t workers, bool reference) {
    common::ScopedReferenceKernels mode(reference);
    ScalerFleet fleet(workers);
    EXPECT_TRUE(fleet.EnableFreshness(MakePolicy(serve_horizon)).ok());
    EXPECT_TRUE(
        fleet.Register("shifty", BuildScaler(train_a, serve_horizon,
                                             "robust_hp:target=0.9"))
            .ok());
    EXPECT_TRUE(
        fleet.Register("steady", BuildScaler(train_b, serve_horizon,
                                             "robust_hp:target=0.9"))
            .ok());
    auto drive = DriveFleet(&fleet, tenants, events, serve_horizon);
    auto fresh = fleet.Freshness("shifty");
    EXPECT_TRUE(fresh.ok());
    EXPECT_GE(fresh->swaps_applied, 1u);
    return drive;
  };

  const auto baseline = run(0, false);
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    for (bool reference : {false, true}) {
      if (workers == 0 && !reference) continue;
      const auto got = run(workers, reference);
      const std::string label = "workers=" + std::to_string(workers) +
                                (reference ? " reference" : " optimized");
      for (std::size_t i = 0; i < tenants.size(); ++i) {
        ExpectActionsIdentical(baseline.actions[i], got.actions[i],
                               label + ", tenant " + tenants[i]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mid-plan hot-swap parity: for every registry strategy, worker count, and
// kernel mode, a ReplaceModelAtNextPlan issued between plan boundaries
// leaves the in-flight plan byte-identical to a never-swapped control, and
// every post-boundary plan byte-identical to a control fleet that served
// the fresh model from the boundary on.
// ---------------------------------------------------------------------------

TEST(HotSwapParity, DeferredSwapTearsNothingAcrossStrategiesWorkersKernels) {
  const double train_horizon = 4.0 * kPeriodS;
  const double serve_horizon = 400.0;
  const double request_at = 201.0;              // Between boundaries.
  const double boundary = 202.0;                // First plan after request.
  const std::vector<std::string> tenants = {"tenant"};
  const auto train_old = MakeSineTrace(51, train_horizon, 1.0);
  const auto train_new = MakeSineTrace(52, train_horizon, 1.4);
  const std::vector<workload::Trace> serve = {
      MakeSineTrace(53, serve_horizon, 1.2)};
  const auto events = MergeEvents(serve);

  const std::vector<const char*> specs = {
      "backup_pool:pool_size=2",
      "adaptive_backup_pool:multiplier=20,update_interval=30,"
      "estimate_window=60",
      "robust_hp:target=0.9",
      "robust_rt:target=2.0",
      "robust_cost:target=5.0",
  };

  for (const char* spec : specs) {
    for (bool reference : {false, true}) {
      common::ScopedReferenceKernels mode(reference);
      const std::string ctx = std::string(spec) +
                              (reference ? " reference" : " optimized");

      // Control 1: never swapped.
      ScalerFleet control_old(0);
      ASSERT_TRUE(control_old
                      .Register("tenant",
                                BuildScaler(train_old, serve_horizon, spec))
                      .ok());
      const auto unswapped =
          DriveFleet(&control_old, tenants, events, serve_horizon);

      // Control 2: the fresh model serving from the boundary on, seeing
      // only post-boundary traffic (exactly what a swapped tenant sees).
      ScalerFleet control_new(0);
      ASSERT_TRUE(control_new
                      .Register("tenant",
                                BuildScaler(train_new, serve_horizon, spec))
                      .ok());
      const auto fresh_only = DriveFleet(&control_new, tenants, events,
                                         serve_horizon, /*from=*/boundary);

      for (std::size_t workers :
           {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
        ScalerFleet fleet(workers);
        ASSERT_TRUE(
            fleet.Register("tenant",
                           BuildScaler(train_old, serve_horizon, spec))
                .ok());
        bool requested = false;
        const auto swapped = DriveFleet(
            &fleet, tenants, events, serve_horizon, /*from=*/0.0,
            [&](ScalerFleet* f, double now) {
              if (!requested && now > request_at) {
                requested = true;
                ASSERT_TRUE(
                    f->ReplaceModelAtNextPlan(
                         "tenant", BuildScaler(train_new, serve_horizon, spec))
                        .ok());
              }
            });
        ASSERT_TRUE(requested);
        const std::string label =
            ctx + " workers=" + std::to_string(workers);

        // Split the swapped run at the boundary and compare both legs.
        std::vector<sim::ScalingAction> before, after;
        for (const auto& [now, row] : swapped.batches) {
          (now < boundary ? before : after).push_back(row[0]);
        }
        std::vector<sim::ScalingAction> control_before;
        for (const auto& [now, row] : unswapped.batches) {
          if (now < boundary) control_before.push_back(row[0]);
        }
        ExpectActionsIdentical(control_before, before,
                               label + ", pre-boundary vs unswapped control");
        ExpectActionsIdentical(fresh_only.actions[0], after,
                               label + ", post-boundary vs fresh control");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ReplaceModel serving-config carry (retention widening, decision clock).
// ---------------------------------------------------------------------------

TEST(ReplaceModel, CarriesRetentionWideningAndDecisionClockPosition) {
  const double train_horizon = 4.0 * kPeriodS;
  const double serve_horizon = kPeriodS;
  const auto train = MakeSineTrace(61, train_horizon, 1.0);
  const auto serve = MakeSineTrace(62, serve_horizon, 1.0);

  sim::FakeDecisionClock old_clock(0.001);
  auto retiring = BuildScaler(train, serve_horizon, "robust_hp:target=0.9");
  sim::EngineOptions serving;
  serving.charge_decision_wall_time = true;
  serving.decision_clock = &old_clock;
  ASSERT_TRUE(retiring.ConfigureServing(serving).ok());

  ScalerFleet fleet(0);
  ASSERT_TRUE(fleet.Register("tenant", std::move(retiring)).ok());
  const double widened = 12345.0;
  ASSERT_TRUE(fleet.Find("tenant")->ConfigureHistoryRetention(widened).ok());

  std::size_t fed = 0;
  for (double t : serve.ArrivalTimes()) {
    if (t >= 100.0) break;
    ASSERT_TRUE(fleet.Observe("tenant", t).ok());
    ++fed;
  }
  ASSERT_GT(fed, 0u);
  ASSERT_TRUE(fleet.Plan("tenant", 100.0).ok());
  ASSERT_GT(old_clock.readings(), 0u);

  sim::FakeDecisionClock new_clock(0.001);
  auto replacement = BuildScaler(train, serve_horizon,
                                 "robust_hp:target=0.9");
  sim::EngineOptions new_serving;
  new_serving.charge_decision_wall_time = true;
  new_serving.decision_clock = &new_clock;
  ASSERT_TRUE(replacement.ConfigureServing(new_serving).ok());
  ASSERT_TRUE(fleet.ReplaceModel("tenant", std::move(replacement)).ok());

  // The retiring tenant's clock position was imported into the
  // replacement's clock, so charged decision time stays monotone.
  EXPECT_EQ(old_clock.readings(), new_clock.readings());

  // The retention widening survived the swap.
  const auto snapshot = fleet.Snapshot();
  ASSERT_EQ(1u, snapshot.per_tenant.size());
  EXPECT_GE(snapshot.per_tenant[0].second.history_retention, widened);

  // And the replacement keeps serving (charging through the new clock).
  const std::size_t readings_at_swap = new_clock.readings();
  ASSERT_TRUE(fleet.Plan("tenant", 102.0).ok());
  EXPECT_GT(new_clock.readings(), readings_at_swap);
}

// ---------------------------------------------------------------------------
// Freshness state through SaveFleet/LoadFleet.
// ---------------------------------------------------------------------------

TEST(FleetFreshness, SurvivesSaveLoadWithByteIdenticalContinuation) {
  const double train_horizon = 4.0 * kPeriodS;
  const double serve_horizon = 2.0 * kPeriodS;
  const double shift_at = serve_horizon / 3.0;
  const double cut = 800.0;  // After the drift → retrain → swap completed.
  const std::vector<std::string> tenants = {"shifty", "steady"};
  const auto train_a = MakeSineTrace(71, train_horizon, 1.0);
  const auto train_b = MakeSineTrace(72, train_horizon, 1.0);
  const std::vector<workload::Trace> serve = {
      MakeSineTrace(73, serve_horizon, 1.0, kPeriodS, shift_at, 4.0),
      MakeSineTrace(74, serve_horizon, 1.0),
  };
  const auto events = MergeEvents(serve);

  ScalerFleet fleet(0);
  ASSERT_TRUE(fleet.EnableFreshness(MakePolicy(serve_horizon)).ok());
  ASSERT_TRUE(
      fleet.Register("shifty", BuildScaler(train_a, serve_horizon,
                                           "robust_hp:target=0.9"))
          .ok());
  ASSERT_TRUE(
      fleet.Register("steady", BuildScaler(train_b, serve_horizon,
                                           "robust_hp:target=0.9"))
          .ok());

  // First leg: drive through the drift, retrain, and swap.
  DriveFleet(&fleet, tenants, events, cut);
  auto shifty = fleet.Freshness("shifty");
  ASSERT_TRUE(shifty.ok());
  ASSERT_GE(shifty->swaps_applied, 1u);
  ASSERT_FALSE(shifty->retrain_inflight)
      << "pick the snapshot point between retrains";

  std::stringstream buffer;
  ASSERT_TRUE(fleet.SaveFleet(buffer).ok());
  auto restored = ScalerFleet::LoadFleet(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->freshness_enabled());

  // Second leg on both fleets: identical events, identical plans.
  std::vector<std::pair<double, std::size_t>> tail_events;
  for (const auto& event : events) {
    if (event.first >= cut) tail_events.push_back(event);
  }
  const auto original_run =
      DriveFleet(&fleet, tenants, tail_events, serve_horizon, /*from=*/cut);
  const auto restored_run = DriveFleet(&*restored, tenants, tail_events,
                                       serve_horizon, /*from=*/cut);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    ExpectActionsIdentical(original_run.actions[i], restored_run.actions[i],
                           "restored continuation, tenant " + tenants[i]);
  }

  // Counters picked up where they left off...
  auto a = fleet.Freshness("shifty");
  auto b = restored->Freshness("shifty");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->drift_events, b->drift_events);
  EXPECT_EQ(a->retrains_completed, b->retrains_completed);
  EXPECT_EQ(a->swaps_applied, b->swaps_applied);
  EXPECT_EQ(a->window_end, b->window_end);

  // ...and the full durable state converged to the same bytes: detector
  // scores, session window, and serving state all continued identically.
  std::stringstream final_a, final_b;
  ASSERT_TRUE(fleet.SaveFleet(final_a).ok());
  ASSERT_TRUE(restored->SaveFleet(final_b).ok());
  EXPECT_EQ(final_a.str(), final_b.str());
}

}  // namespace
}  // namespace rs
