// Property tests for the optimized planning/training hot paths: the batched
// sampling layer and the allocation-free decision kernel must be *exactly*
// (bitwise) equivalent to their naive reference implementations, and the
// pool-parallel training passes must be byte-identical for any worker
// count. These are the invariants that make the hot path safe to keep
// optimizing (see rs/common/kernels.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rs/common/kernels.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/core/admm.hpp"
#include "rs/core/decision.hpp"
#include "rs/core/kappa.hpp"
#include "rs/core/pipeline.hpp"
#include "rs/core/sequential_scaler.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/stats/empirical.hpp"
#include "rs/stats/rng.hpp"
#include "rs/timeseries/periodicity.hpp"
#include "rs/workload/intensity.hpp"
#include "rs/workload/synthetic.hpp"
#include "rs/workload/trace.hpp"

namespace rs {
namespace {

using core::DecisionKernel;
using core::McSamples;
using workload::PiecewiseConstantIntensity;

PiecewiseConstantIntensity RandomIntensity(stats::Rng* rng, std::size_t bins,
                                           bool with_zero_bins,
                                           double tail_rate) {
  std::vector<double> rates(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    rates[i] = stats::SampleUniform(rng, 0.1, 5.0);
    if (with_zero_bins && rng->NextDouble() < 0.2) rates[i] = 0.0;
  }
  rates.back() = tail_rate;
  auto made = PiecewiseConstantIntensity::Make(
      std::move(rates), stats::SampleUniform(rng, 0.5, 90.0));
  EXPECT_TRUE(made.ok());
  return *std::move(made);
}

// --- Batched inverse cumulative --------------------------------------------

TEST(InverseCumulativeBatchTest, MatchesScalarBitwiseOnRandomInputs) {
  stats::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto intensity =
        RandomIntensity(&rng, 3 + rng.NextBounded(40), trial % 2 == 1, 1.0);
    const double top = intensity.Cumulative(intensity.horizon());
    std::vector<double> targets(1 + rng.NextBounded(200));
    for (auto& t : targets) {
      const double u = rng.NextDouble();
      if (u < 0.05) {
        t = 0.0;  // Λ(0) boundary.
      } else if (u < 0.15) {
        t = top * (1.0 + rng.NextDouble());  // Beyond the horizon (tail).
      } else if (u < 0.30) {
        // Exactly on a cumulative-grid boundary: the tie case.
        const auto bin = rng.NextBounded(
            static_cast<std::uint64_t>(intensity.bins()));
        t = intensity.Cumulative(intensity.dt() * static_cast<double>(bin));
      } else {
        t = top * rng.NextDouble();
      }
    }
    std::vector<double> batch;
    std::vector<std::uint32_t> order;
    ASSERT_TRUE(intensity.InverseCumulativeBatch(targets, &batch, &order).ok());
    ASSERT_EQ(batch.size(), targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      auto scalar = intensity.InverseCumulative(targets[i]);
      ASSERT_TRUE(scalar.ok());
      // Bitwise equality, not near-equality: the batch sweep must replicate
      // the scalar arithmetic exactly.
      EXPECT_EQ(batch[i], scalar.ValueOrDie()) << "target " << targets[i];
    }
  }
}

TEST(InverseCumulativeBatchTest, SingleTargetAndErrors) {
  auto intensity = *PiecewiseConstantIntensity::Make({2.0, 0.0}, 10.0);
  std::vector<double> out;
  std::vector<std::uint32_t> order;

  ASSERT_TRUE(intensity.InverseCumulativeBatch({10.0}, &out, &order).ok());
  EXPECT_EQ(out[0], intensity.InverseCumulative(10.0).ValueOrDie());

  // Negative target and beyond-horizon-with-zero-tail fail like the scalar.
  EXPECT_FALSE(intensity.InverseCumulativeBatch({-1.0}, &out, &order).ok());
  EXPECT_FALSE(intensity.InverseCumulativeBatch({21.0}, &out, &order).ok());
  EXPECT_FALSE(intensity.InverseCumulative(21.0).ok());
}

// --- Bulk RNG fills ---------------------------------------------------------

TEST(BulkFillTest, ExponentialFillMatchesScalarDrawOrder) {
  stats::Rng scalar_rng(99), fill_rng(99);
  std::vector<double> filled(257);
  stats::SampleExponentialFill(&fill_rng, 0.37, filled.data(), filled.size());
  for (double v : filled) {
    EXPECT_EQ(v, stats::SampleExponential(&scalar_rng, 0.37));
  }
  // Generator states stayed in lockstep too.
  EXPECT_EQ(fill_rng.NextUint64(), scalar_rng.NextUint64());
}

TEST(BulkFillTest, ZigguratExponentialIsStatisticallyExponential) {
  stats::Rng rng(2718281828);
  const std::size_t n = 2'000'000;
  double sum = 0.0, sum_sq = 0.0;
  std::size_t tail_count = 0, below_log2 = 0;
  std::vector<double> buf(4096);
  for (std::size_t done = 0; done < n; done += buf.size()) {
    stats::SampleExponentialZigguratFill(&rng, 1.0, buf.data(), buf.size());
    for (double v : buf) {
      ASSERT_GE(v, 0.0);
      sum += v;
      sum_sq += v * v;
      if (v > 7.69711747013104972) ++tail_count;  // P = e^−r ≈ 4.54e−4.
      if (v < M_LN2) ++below_log2;                // P = 1/2 exactly.
    }
  }
  const auto dn = static_cast<double>(n);
  EXPECT_NEAR(sum / dn, 1.0, 0.005);            // Mean 1 (±~7σ).
  EXPECT_NEAR(sum_sq / dn, 2.0, 0.02);          // E[X²] = 2.
  EXPECT_NEAR(static_cast<double>(below_log2) / dn, 0.5, 0.002);
  EXPECT_NEAR(static_cast<double>(tail_count) / dn,
              std::exp(-7.69711747013104972), 1.5e-4);
  // Rate scaling is a plain division of the unit draw.
  stats::Rng a(5), b(5);
  EXPECT_EQ(stats::SampleExponentialZiggurat(&a, 4.0),
            stats::SampleExponentialZiggurat(&b, 1.0) / 4.0);
}

TEST(BulkFillTest, BlockedZigguratFillMatchesScalarBitwise) {
  // The fill is restructured into 8-wide blocks with a scalar tail; every
  // block length 0..7 of tail and every fill size around the block width
  // must reproduce the scalar draw sequence (values AND generator state)
  // bitwise, including when a block hits the ziggurat slow path and the
  // generator is rolled back.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    for (std::size_t n = 0; n <= 40; ++n) {
      for (double rate : {1.0, 0.37, 1e-8, 1e8}) {
        stats::Rng fill_rng(seed * 7919 + n);
        stats::Rng scalar_rng(seed * 7919 + n);
        std::vector<double> filled(n + 1, -1.0);
        stats::SampleExponentialZigguratFill(&fill_rng, rate, filled.data(),
                                             n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(filled[i],
                    stats::SampleExponentialZiggurat(&scalar_rng, rate))
              << "seed " << seed << ", n " << n << ", rate " << rate
              << ", index " << i;
        }
        EXPECT_EQ(filled[n], -1.0) << "wrote past the end";
        EXPECT_EQ(fill_rng.NextUint64(), scalar_rng.NextUint64());
      }
    }
  }
  // A long fill is statistically certain to exercise the slow path and the
  // tail restart (P ≈ 1.1% per draw): the states must still be in lockstep.
  stats::Rng fill_rng(424242), scalar_rng(424242);
  std::vector<double> filled(100000);
  stats::SampleExponentialZigguratFill(&fill_rng, 1.0, filled.data(),
                                       filled.size());
  for (std::size_t i = 0; i < filled.size(); ++i) {
    ASSERT_EQ(filled[i], stats::SampleExponentialZiggurat(&scalar_rng, 1.0));
  }
  EXPECT_EQ(fill_rng.NextUint64(), scalar_rng.NextUint64());
}

TEST(BulkFillTest, SubstreamAtIsPureAndDeterministic) {
  stats::Rng a(1234), b(1234);
  // Same state + same index → bitwise-identical children; the derivation
  // never advances the parent.
  stats::Rng child_a = a.SubstreamAt(7);
  stats::Rng child_b = b.SubstreamAt(7);
  EXPECT_EQ(child_a.NextUint64(), child_b.NextUint64());
  EXPECT_EQ(a.NextUint64(), b.NextUint64());  // Parents still in lockstep.

  // Distinct indices decorrelate; distinct parent states decorrelate.
  stats::Rng c(1234);
  EXPECT_NE(c.SubstreamAt(0).NextUint64(), c.SubstreamAt(1).NextUint64());
  stats::Rng d(1234);
  (void)d.NextUint64();
  EXPECT_NE(c.SubstreamAt(3).NextUint64(), d.SubstreamAt(3).NextUint64());

  // Two-level derivation (per-query, per-block) is deterministic too.
  EXPECT_EQ(c.SubstreamAt(5).SubstreamAt(9).NextUint64(),
            c.SubstreamAt(5).SubstreamAt(9).NextUint64());
}

TEST(BulkFillTest, GammaFillMatchesScalarDrawOrder) {
  stats::Rng scalar_rng(123), fill_rng(123);
  std::vector<double> filled(64);
  stats::SampleGammaFill(&fill_rng, 2.5, 1.5, filled.data(), filled.size());
  for (double v : filled) {
    EXPECT_EQ(v, stats::SampleGamma(&scalar_rng, 2.5, 1.5));
  }
  EXPECT_EQ(fill_rng.NextUint64(), scalar_rng.NextUint64());
}

// --- Decision kernel vs reference solvers ----------------------------------

McSamples RandomSamples(stats::Rng* rng, std::size_t r_count, bool with_ties) {
  McSamples s;
  s.xi.resize(r_count);
  s.tau.resize(r_count);
  for (std::size_t r = 0; r < r_count; ++r) {
    s.xi[r] = stats::SampleUniform(rng, 0.0, 60.0);
    s.tau[r] = stats::SampleUniform(rng, 0.0, 20.0);
  }
  if (with_ties && r_count >= 4) {
    // Force breakpoint collisions: duplicate arrivals, zero pending times
    // (slack == ξ cross-family ties), and a repeated slack value.
    s.xi[1] = s.xi[0];
    s.tau[1] = s.tau[0];
    s.tau[2] = 0.0;
    s.xi[3] = s.xi[2] - s.tau[2] + s.tau[3];
  }
  return s;
}

TEST(DecisionKernelTest, SolversMatchReferenceBitwise) {
  stats::Rng rng(2022);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t r_count = 1 + rng.NextBounded(120);
    const McSamples s = RandomSamples(&rng, r_count, trial % 3 == 0);
    const double alpha = stats::SampleUniform(&rng, 0.01, 0.99);
    const double rt_excess = stats::SampleUniform(&rng, 0.0, 12.0);
    const double idle_budget = stats::SampleUniform(&rng, 0.0, 30.0);

    DecisionKernel kernel;
    kernel.Bind(s);

    auto hp_ref = core::SolveHpConstrained(s, alpha);
    auto hp_opt = kernel.SolveHp(alpha);
    ASSERT_TRUE(hp_ref.ok() && hp_opt.ok());
    EXPECT_EQ(hp_ref->creation_time, hp_opt->creation_time);
    EXPECT_EQ(hp_ref->feasible, hp_opt->feasible);

    auto rt_ref = core::SolveRtConstrained(s, rt_excess);
    auto rt_opt = kernel.SolveRt(rt_excess);
    ASSERT_TRUE(rt_ref.ok() && rt_opt.ok());
    EXPECT_EQ(rt_ref->creation_time, rt_opt->creation_time);
    EXPECT_EQ(rt_ref->feasible, rt_opt->feasible);
    EXPECT_EQ(rt_ref->unbounded, rt_opt->unbounded);

    auto cost_ref = core::SolveCostConstrained(s, idle_budget);
    auto cost_opt = kernel.SolveCost(idle_budget);
    ASSERT_TRUE(cost_ref.ok() && cost_opt.ok());
    EXPECT_EQ(cost_ref->creation_time, cost_opt->creation_time);
    EXPECT_EQ(cost_ref->unbounded, cost_opt->unbounded);

    // A second solve on the same bind (prepared state now cached) must not
    // drift either.
    auto hp_again = kernel.SolveHp(alpha);
    ASSERT_TRUE(hp_again.ok());
    EXPECT_EQ(hp_again->creation_time, hp_opt->creation_time);
  }
}

TEST(DecisionKernelTest, InfeasibleAndUnboundedEdges) {
  // All slacks negative: HP infeasible at any level.
  McSamples s;
  s.xi = {1.0, 2.0, 0.5};
  s.tau = {10.0, 10.0, 10.0};
  DecisionKernel kernel;
  kernel.Bind(s);
  auto hp = kernel.SolveHp(0.5);
  ASSERT_TRUE(hp.ok());
  EXPECT_FALSE(hp->feasible);
  EXPECT_EQ(hp->creation_time, 0.0);

  // rt_excess over mean(τ): unbounded, like the reference.
  auto rt = kernel.SolveRt(11.0);
  ASSERT_TRUE(rt.ok());
  EXPECT_TRUE(rt->unbounded);
  auto rt_ref = core::SolveRtConstrained(s, 11.0);
  ASSERT_TRUE(rt_ref.ok());
  EXPECT_TRUE(rt_ref->unbounded);

  // Budget already satisfied at x = 0 (all slack negative → Ĝ(0) = 0).
  auto cost = kernel.SolveCost(0.0);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(cost->creation_time, 0.0);

  // R = 1.
  McSamples one;
  one.xi = {5.0};
  one.tau = {2.0};
  kernel.Bind(one);
  auto hp1 = kernel.SolveHp(0.3);
  auto hp1_ref = core::SolveHpConstrained(one, 0.3);
  ASSERT_TRUE(hp1.ok() && hp1_ref.ok());
  EXPECT_EQ(hp1->creation_time, hp1_ref->creation_time);
  auto rt1 = kernel.SolveRt(0.5);
  auto rt1_ref = core::SolveRtConstrained(one, 0.5);
  ASSERT_TRUE(rt1.ok() && rt1_ref.ok());
  EXPECT_EQ(rt1->creation_time, rt1_ref->creation_time);

  // Unbound / invalid inputs fail like the free functions.
  DecisionKernel unbound;
  EXPECT_FALSE(unbound.SolveHp(0.5).ok());
  EXPECT_FALSE(kernel.SolveHp(0.0).ok());
  EXPECT_FALSE(kernel.SolveRt(-1.0).ok());
  EXPECT_FALSE(kernel.SolveCost(-1.0).ok());
}

TEST(DecisionKernelTest, CurveQueriesMatchNaiveEstimators) {
  stats::Rng rng(555);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t r_count = 1 + rng.NextBounded(80);
    const McSamples s = RandomSamples(&rng, r_count, trial % 4 == 0);
    DecisionKernel kernel;
    kernel.Bind(s);
    for (int c = 0; c < 30; ++c) {
      // Random candidates plus exact breakpoints (ξ and slack values).
      double x = stats::SampleUniform(&rng, -5.0, 70.0);
      if (c % 3 == 1) x = s.xi[rng.NextBounded(r_count)];
      if (c % 3 == 2) {
        const auto r = rng.NextBounded(r_count);
        x = s.xi[r] - s.tau[r];
      }
      EXPECT_NEAR(kernel.ExpectedWait(x), core::EstimateExpectedWait(s, x),
                  1e-9 * static_cast<double>(r_count) + 1e-12);
      EXPECT_NEAR(kernel.ExpectedIdle(x), core::EstimateExpectedIdle(s, x),
                  1e-9 * static_cast<double>(r_count) + 1e-12);
    }
  }
}

// --- Planner parity: optimized vs reference kernels ------------------------

std::vector<sim::ScalingAction> DrivePolicy(core::RobustScalerPolicy* policy,
                                            double planning_interval,
                                            std::size_t rounds) {
  std::vector<sim::ScalingAction> actions;
  std::vector<double> history;
  sim::SimContext ctx;
  ctx.arrival_history = &history;
  actions.push_back(policy->Initialize(ctx));
  std::size_t outstanding = actions.back().creation_times.size();
  for (std::size_t i = 1; i <= rounds; ++i) {
    ctx.now = static_cast<double>(i) * planning_interval;
    // Exercise both the outstanding > 0 (Gamma draw) and the cold paths.
    ctx.instances_alive = i % 3 == 0 ? 0 : outstanding / 2;
    ctx.scheduled_creations = i % 3 == 2 ? outstanding / 4 : 0;
    actions.push_back(policy->OnPlanningTick(ctx));
    outstanding =
        std::max<std::size_t>(actions.back().creation_times.size(), 1);
  }
  return actions;
}

void ExpectSameActions(const std::vector<sim::ScalingAction>& a,
                       const std::vector<sim::ScalingAction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].creation_times.size(), b[i].creation_times.size())
        << "round " << i;
    for (std::size_t k = 0; k < a[i].creation_times.size(); ++k) {
      EXPECT_EQ(a[i].creation_times[k], b[i].creation_times[k])
          << "round " << i << ", creation " << k;
    }
    EXPECT_EQ(a[i].deletions, b[i].deletions);
  }
}

TEST(PlannerParityTest, ReferenceAndOptimizedKernelsEmitIdenticalActions) {
  stats::Rng rng(31337);
  const auto intensity = RandomIntensity(&rng, 64, false, 2.0);
  const std::vector<stats::DurationDistribution> pendings = {
      stats::DurationDistribution::Deterministic(13.0),
      stats::DurationDistribution::Exponential(9.0),
      stats::DurationDistribution::Uniform(2.0, 8.0),
  };
  const std::vector<core::ScalerVariant> variants = {
      core::ScalerVariant::kHittingProbability,
      core::ScalerVariant::kResponseTime,
      core::ScalerVariant::kCost,
  };
  for (const auto& pending : pendings) {
    for (auto variant : variants) {
      core::SequentialScalerOptions options;
      options.variant = variant;
      options.mc_samples = 120;
      options.planning_interval = 4.0;
      options.seed = 20260730;
      options.rt_excess = 0.5;
      options.idle_budget = 1.0;

      common::ScopedReferenceKernels as_reference(true);
      core::RobustScalerPolicy reference(intensity, pending, options);
      const auto ref_actions = DrivePolicy(&reference, 4.0, 24);

      common::SetReferenceKernels(false);
      core::RobustScalerPolicy optimized(intensity, pending, options);
      const auto opt_actions = DrivePolicy(&optimized, 4.0, 24);

      ExpectSameActions(ref_actions, opt_actions);
    }
  }
}

TEST(PlannerParityTest, ActionsIdenticalAcrossPlanningPoolWorkers) {
  // The pool-sharded Monte Carlo round must emit byte-identical actions for
  // any worker count — and match the reference kernels — for every variant
  // under both deterministic and stochastic τ. Run in the TSan CI job, this
  // also race-checks the draw/solve fan-out.
  stats::Rng rng(90210);
  const auto intensity = RandomIntensity(&rng, 48, false, 2.0);
  const std::vector<stats::DurationDistribution> pendings = {
      stats::DurationDistribution::Deterministic(4.0),
      stats::DurationDistribution::Exponential(3.0),
  };
  const std::vector<core::ScalerVariant> variants = {
      core::ScalerVariant::kHittingProbability,
      core::ScalerVariant::kResponseTime,
      core::ScalerVariant::kCost,
  };
  for (const auto& pending : pendings) {
    for (auto variant : variants) {
      core::SequentialScalerOptions options;
      options.variant = variant;
      options.mc_samples = 64;
      options.planning_interval = 4.0;
      options.seed = 20260730;
      options.rt_excess = 0.5;
      options.idle_budget = 1.0;

      common::ScopedReferenceKernels as_reference(true);
      core::RobustScalerPolicy reference(intensity, pending, options);
      const auto ref_actions = DrivePolicy(&reference, 4.0, 8);
      common::SetReferenceKernels(false);

      for (std::size_t workers :
           {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        common::ThreadPool pool(workers);
        options.planning_pool = &pool;
        core::RobustScalerPolicy sharded(intensity, pending, options);
        const auto actions = DrivePolicy(&sharded, 4.0, 8);
        ExpectSameActions(ref_actions, actions);
        EXPECT_GT(sharded.planning_workspace_bytes(), 0u);
      }
    }
  }
}

TEST(PlannerParityTest, WorkspaceShrinksWhenRDrops) {
  // Drive a real policy so the tile buffers, shards, and kernels all warm
  // up at the large R, then shrink the bare workspace via EnsureSize.
  stats::Rng rng(11);
  const auto intensity = RandomIntensity(&rng, 32, false, 2.0);
  core::SequentialScalerOptions options;
  options.mc_samples = 4000;
  options.planning_interval = 4.0;
  core::RobustScalerPolicy policy(
      intensity, stats::DurationDistribution::Exponential(5.0), options);
  std::vector<double> history;
  sim::SimContext ctx;
  ctx.arrival_history = &history;
  (void)policy.Initialize(ctx);
  const std::size_t large = policy.planning_workspace_bytes();
  EXPECT_GT(large, 4000u * sizeof(double));

  core::PlanWorkspace ws;
  ws.EnsureSize(10000);
  ws.tile_gamma.resize(32 * 10000);  // As a deep round at R=10000 leaves it.
  const std::size_t warm = ws.RetainedBytes();
  ws.EnsureSize(100);
  const std::size_t shrunk = ws.RetainedBytes();
  // Shrink-to-fit: a tenant whose R drops must stop pinning peak memory.
  EXPECT_LT(shrunk, warm / 10);
  EXPECT_GT(shrunk, 0u);
}

TEST(PlannerParityTest, HpCountScalerParity) {
  stats::Rng rng(40);
  const auto intensity = RandomIntensity(&rng, 48, false, 1.5);
  for (const auto& pending : {stats::DurationDistribution::Deterministic(13.0),
                              stats::DurationDistribution::Exponential(7.0)}) {
    core::HpCountScalerOptions options;
    options.mc_samples = 150;
    options.m = 2;
    options.seed = 4711;

    const auto drive = [&](bool reference, common::ThreadPool* pool) {
      common::ScopedReferenceKernels mode(reference);
      options.planning_pool = pool;
      core::HpCountScaler scaler(intensity, pending, options);
      std::vector<sim::ScalingAction> actions;
      std::vector<double> history;
      sim::SimContext ctx;
      ctx.arrival_history = &history;
      actions.push_back(scaler.Initialize(ctx));
      for (std::size_t i = 0; i < 12; ++i) {
        ctx.now = static_cast<double>(i) * 1.7;
        actions.push_back(scaler.OnQueryArrival(ctx, false));
      }
      return actions;
    };
    const auto reference_actions = drive(true, nullptr);
    ExpectSameActions(reference_actions, drive(false, nullptr));
    common::ThreadPool pool(2);
    ExpectSameActions(reference_actions, drive(false, &pool));
  }
}

// --- Training parity across worker counts ----------------------------------

TEST(TrainingParityTest, KappaMonteCarloIdenticalAcrossWorkerCounts) {
  const auto pending = stats::DurationDistribution::Exponential(13.0);
  std::vector<std::size_t> kappas;
  std::vector<std::uint64_t> rng_states;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    common::ThreadPool pool(workers);
    stats::Rng rng(606);
    auto kappa = core::ComputeKappaMonteCarlo(&rng, 0.1, 3.0, pending, 2000,
                                              100000, &pool);
    ASSERT_TRUE(kappa.ok());
    kappas.push_back(kappa.ValueOrDie());
    // The caller's generator must also end in the same state (substream
    // seeds are drawn from it serially, never concurrently).
    rng_states.push_back(rng.NextUint64());
  }
  EXPECT_EQ(kappas[0], kappas[1]);
  EXPECT_EQ(kappas[0], kappas[2]);
  EXPECT_GT(kappas[0], 0u);
  EXPECT_EQ(rng_states[0], rng_states[1]);
  EXPECT_EQ(rng_states[0], rng_states[2]);
}

TEST(TrainingParityTest, FitNhppIdenticalAcrossWorkerCounts) {
  stats::Rng rng(17);
  std::vector<double> counts(600);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double level =
        20.0 + 15.0 * std::sin(2.0 * M_PI * static_cast<double>(i % 48) / 48.0);
    counts[i] = static_cast<double>(stats::SamplePoisson(&rng, level));
  }
  core::NhppConfig config;
  config.dt = 60.0;
  config.beta1 = 10.0;
  config.beta2 = 50.0;
  config.period = 48;
  core::AdmmOptions options;
  options.max_iterations = 40;

  std::vector<std::vector<double>> fits;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    common::ThreadPool pool(workers);
    options.pool = &pool;
    auto model = core::FitNhpp(counts, config, options);
    ASSERT_TRUE(model.ok());
    fits.push_back(model->Intensity());
  }
  EXPECT_EQ(fits[0], fits[1]);
  EXPECT_EQ(fits[0], fits[2]);
}

TEST(TrainingParityTest, FullPipelineIdenticalAcrossWorkerCounts) {
  auto synth = workload::MakeAlibabaLikeTrace();
  ASSERT_TRUE(synth.ok());
  auto split = synth->trace.SplitAt(2.0 * 86400.0);

  std::vector<std::vector<double>> forecasts;
  std::vector<std::size_t> periods;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    common::ThreadPool pool(workers);
    core::PipelineOptions options;
    options.dt = 600.0;
    options.forecast_horizon = 6.0 * 3600.0;
    options.training_pool = &pool;
    auto trained = core::TrainRobustScaler(split.first, options);
    ASSERT_TRUE(trained.ok());
    forecasts.push_back(trained->forecast.rates());
    periods.push_back(trained->period.period);
  }
  EXPECT_EQ(periods[0], periods[1]);
  EXPECT_EQ(periods[0], periods[2]);
  EXPECT_EQ(forecasts[0], forecasts[1]);
  EXPECT_EQ(forecasts[0], forecasts[2]);
}

// --- Quantile selection -----------------------------------------------------

TEST(QuantileSelectTest, MatchesFullSortBitwise) {
  stats::Rng rng(8080);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> values(1 + rng.NextBounded(300));
    for (auto& v : values) {
      v = stats::SampleUniform(&rng, -50.0, 50.0);
      if (rng.NextDouble() < 0.2) v = std::round(v);  // Inject ties.
    }
    const double q = rng.NextDouble();
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    auto expected = stats::QuantileSorted(sorted, q);
    auto via_select = stats::Quantile(values, q);
    auto in_place = stats::QuantileInPlace(&values, q);
    ASSERT_TRUE(expected.ok() && via_select.ok() && in_place.ok());
    EXPECT_EQ(expected.ValueOrDie(), via_select.ValueOrDie());
    EXPECT_EQ(expected.ValueOrDie(), in_place.ValueOrDie());
  }
}

}  // namespace
}  // namespace rs
