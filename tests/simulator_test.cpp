// Tests for the discrete-event engine: hand-computed Algorithm 1 scenarios
// (hit / pending / cold start), cost accounting, cancellation semantics,
// metrics, and the real-environment knobs.
#include <gtest/gtest.h>

#include <vector>

#include "rs/simulator/engine.hpp"
#include "rs/simulator/environment.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/workload/trace.hpp"

namespace rs::sim {
namespace {

/// Test strategy: schedules a fixed list of creation times at start and
/// nothing afterwards.
class ScriptedScaler : public Autoscaler {
 public:
  explicit ScriptedScaler(std::vector<double> creations)
      : creations_(std::move(creations)) {}
  const char* name() const override { return "scripted"; }
  ScalingAction Initialize(const SimContext&) override {
    ScalingAction a;
    a.creation_times = creations_;
    return a;
  }

 private:
  std::vector<double> creations_;
};

/// Purely reactive: never schedules anything (equivalent to BP with B=0).
class NullScaler : public Autoscaler {
 public:
  const char* name() const override { return "null"; }
};

EngineOptions DetPending(double tau) {
  EngineOptions opts;
  opts.pending = stats::DurationDistribution::Deterministic(tau);
  return opts;
}

TEST(EngineTest, HitCase) {
  // Instance created at 0, tau=2 => ready at 2; query arrives at 5.
  workload::Trace trace({{5.0, 10.0}}, 100.0);
  ScriptedScaler scaler({0.0});
  auto result = Simulate(trace, &scaler, DetPending(2.0));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->queries.size(), 1u);
  const auto& q = result->queries[0];
  EXPECT_TRUE(q.hit);
  EXPECT_FALSE(q.cold_start);
  EXPECT_DOUBLE_EQ(q.wait_time, 0.0);
  EXPECT_DOUBLE_EQ(q.response_time, 10.0);
  // Lifecycle: created at 0, finishes processing at 15.
  ASSERT_EQ(result->instances.size(), 1u);
  EXPECT_DOUBLE_EQ(result->instances[0].lifecycle_cost, 15.0);
  EXPECT_TRUE(result->instances[0].served_query);
}

TEST(EngineTest, PendingCase) {
  // Instance created at 4, tau=3 => ready at 7; query arrives at 5: waits 2.
  workload::Trace trace({{5.0, 10.0}}, 100.0);
  ScriptedScaler scaler({4.0});
  auto result = Simulate(trace, &scaler, DetPending(3.0));
  ASSERT_TRUE(result.ok());
  const auto& q = result->queries[0];
  EXPECT_FALSE(q.hit);
  EXPECT_FALSE(q.cold_start);
  EXPECT_DOUBLE_EQ(q.wait_time, 2.0);
  EXPECT_DOUBLE_EQ(q.response_time, 12.0);
  // Lifecycle: tau + s = 13 (paper's pending-case cost).
  EXPECT_DOUBLE_EQ(result->instances[0].lifecycle_cost, 13.0);
}

TEST(EngineTest, ColdStartCase) {
  // No instance scheduled: query at 5 cold starts, RT = tau + s.
  workload::Trace trace({{5.0, 10.0}}, 100.0);
  NullScaler scaler;
  auto result = Simulate(trace, &scaler, DetPending(3.0));
  ASSERT_TRUE(result.ok());
  const auto& q = result->queries[0];
  EXPECT_FALSE(q.hit);
  EXPECT_TRUE(q.cold_start);
  EXPECT_DOUBLE_EQ(q.wait_time, 3.0);
  EXPECT_DOUBLE_EQ(q.response_time, 13.0);
  EXPECT_DOUBLE_EQ(result->instances[0].lifecycle_cost, 13.0);
}

TEST(EngineTest, ColdStartCancelsScheduledCreation) {
  // Creation scheduled at t=50 is intended for query 1; the query arrives
  // at t=5 and cold starts — the t=50 creation must be cancelled, so only
  // one instance ever exists.
  workload::Trace trace({{5.0, 1.0}}, 100.0);
  ScriptedScaler scaler({50.0});
  auto result = Simulate(trace, &scaler, DetPending(1.0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->instances.size(), 1u);
  EXPECT_TRUE(result->queries[0].cold_start);
}

TEST(EngineTest, FifoMatchingOrder) {
  // Two instances (created at 0 and 5.5, ready at 1 and 6.5); queries at 5
  // and 6. First query takes the first instance (hit); second gets the
  // still-pending one and waits 0.5 s.
  workload::Trace trace({{5.0, 1.0}, {6.0, 1.0}}, 100.0);
  ScriptedScaler scaler({0.0, 5.5});
  auto result = Simulate(trace, &scaler, DetPending(1.0));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->queries.size(), 2u);
  EXPECT_TRUE(result->queries[0].hit);
  EXPECT_FALSE(result->queries[1].hit);
  EXPECT_FALSE(result->queries[1].cold_start);
  EXPECT_DOUBLE_EQ(result->queries[1].wait_time, 0.5);
}

TEST(EngineTest, LateScheduledCreationIsCancelledByColdStart) {
  // The second instance is scheduled only at t=10, but its query arrives at
  // t=6: Algorithm 1 creates one reactively and cancels the t=10 creation,
  // so exactly two instances ever exist.
  workload::Trace trace({{5.0, 1.0}, {6.0, 1.0}}, 100.0);
  ScriptedScaler scaler({0.0, 10.0});
  auto result = Simulate(trace, &scaler, DetPending(1.0));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->queries.size(), 2u);
  EXPECT_TRUE(result->queries[0].hit);
  EXPECT_TRUE(result->queries[1].cold_start);
  EXPECT_DOUBLE_EQ(result->queries[1].wait_time, 1.0);  // Full pending time.
  EXPECT_EQ(result->instances.size(), 2u);
}

TEST(EngineTest, CreationAtArrivalInstantCountsAsPending) {
  // x == xi: Algorithm 1's middle branch (x_i <= xi < x_i + tau).
  workload::Trace trace({{5.0, 1.0}}, 100.0);
  ScriptedScaler scaler({5.0});
  auto result = Simulate(trace, &scaler, DetPending(2.0));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->queries[0].hit);
  EXPECT_FALSE(result->queries[0].cold_start);
  EXPECT_DOUBLE_EQ(result->queries[0].wait_time, 2.0);
}

TEST(EngineTest, UnusedInstanceChargedToHorizon) {
  workload::Trace trace({}, 100.0);
  ScriptedScaler scaler({20.0});
  auto result = Simulate(trace, &scaler, DetPending(1.0));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->instances.size(), 1u);
  EXPECT_FALSE(result->instances[0].served_query);
  EXPECT_DOUBLE_EQ(result->instances[0].lifecycle_cost, 80.0);
}

TEST(EngineTest, IdleChargingCanBeDisabled) {
  workload::Trace trace({}, 100.0);
  ScriptedScaler scaler({20.0});
  EngineOptions opts = DetPending(1.0);
  opts.charge_idle_until_horizon = false;
  auto result = Simulate(trace, &scaler, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->instances[0].lifecycle_cost, 0.0);
}

TEST(EngineTest, IdleTimePlusFixedEqualsLifecycle) {
  // Hit case decomposition: cost = idle + tau + s.
  workload::Trace trace({{30.0, 7.0}}, 100.0);
  ScriptedScaler scaler({10.0});
  auto result = Simulate(trace, &scaler, DetPending(4.0));
  ASSERT_TRUE(result.ok());
  // Created 10, ready 14, consumed 30 => idle 16; total 16+4+7 = 27.
  EXPECT_DOUBLE_EQ(result->instances[0].lifecycle_cost, 27.0);
}

TEST(EngineTest, NullStrategyRejected) {
  workload::Trace trace({{1.0, 1.0}}, 10.0);
  EXPECT_FALSE(Simulate(trace, nullptr).ok());
}

TEST(EngineTest, EmptyHorizonRejected) {
  workload::Trace trace({}, 0.0);
  NullScaler scaler;
  EXPECT_FALSE(Simulate(trace, &scaler).ok());
}

TEST(EngineTest, CreationLatencyDelaysReady) {
  workload::Trace trace({{5.0, 1.0}}, 100.0);
  ScriptedScaler scaler({0.0});
  EngineOptions opts = DetPending(2.0);
  opts.creation_latency = 10.0;  // Ready at 12 > 5: pending case.
  auto result = Simulate(trace, &scaler, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->queries[0].hit);
  EXPECT_DOUBLE_EQ(result->queries[0].wait_time, 7.0);
}

TEST(EngineTest, PendingJitterStaysInBounds) {
  workload::Trace trace({}, 1000.0);
  std::vector<double> creations(50, 0.0);
  ScriptedScaler scaler(creations);
  EngineOptions opts = DetPending(10.0);
  opts.pending_jitter = 0.2;
  auto result = Simulate(trace, &scaler, opts);
  ASSERT_TRUE(result.ok());
  for (const auto& inst : result->instances) {
    const double pending = inst.ready_time - inst.creation_time;
    EXPECT_GE(pending, 8.0 - 1e-9);
    EXPECT_LE(pending, 12.0 + 1e-9);
  }
}

/// Counts planning-tick callbacks (for boundary/charging tests).
class TickCounter : public Autoscaler {
 public:
  explicit TickCounter(double interval, double creation_offset = -1.0)
      : interval_(interval), creation_offset_(creation_offset) {}
  const char* name() const override { return "tick-counter"; }
  double planning_interval() const override { return interval_; }
  ScalingAction OnPlanningTick(const SimContext& ctx) override {
    ticks_.push_back(ctx.now);
    if (creation_offset_ >= 0.0) {
      return {.creation_times = {ctx.now + creation_offset_}, .deletions = 0};
    }
    return {};
  }
  const std::vector<double>& ticks() const { return ticks_; }

 private:
  double interval_;
  double creation_offset_;
  std::vector<double> ticks_;
};

TEST(EngineTest, ProcessesPlanningTickExactlyAtHorizon) {
  // The horizon is a closed boundary: a tick landing exactly on it is
  // processed (matching the serving mirror, where Plan(horizon) processes
  // the tick at `horizon`). Grid 10 over horizon 100 → ticks 0,10,...,100.
  workload::Trace trace({}, 100.0);
  TickCounter on_grid(10.0);
  ASSERT_TRUE(Simulate(trace, &on_grid, DetPending(2.0)).ok());
  ASSERT_EQ(on_grid.ticks().size(), 11u);
  EXPECT_DOUBLE_EQ(on_grid.ticks().front(), 0.0);
  EXPECT_DOUBLE_EQ(on_grid.ticks().back(), 100.0);

  // Off-grid horizon: the last tick before 95 is 90; nothing at 95.
  workload::Trace off_trace({}, 95.0);
  TickCounter off_grid(10.0);
  ASSERT_TRUE(Simulate(off_trace, &off_grid, DetPending(2.0)).ok());
  ASSERT_EQ(off_grid.ticks().size(), 10u);
  EXPECT_DOUBLE_EQ(off_grid.ticks().back(), 90.0);
}

TEST(EngineTest, ValidatesEngineOptions) {
  workload::Trace trace({{5.0, 10.0}}, 100.0);
  NullScaler scaler;

  EngineOptions bad = DetPending(2.0);
  bad.creation_latency = -1.0;
  EXPECT_FALSE(Simulate(trace, &scaler, bad).ok());
  EXPECT_FALSE(ValidateEngineOptions(bad).ok());

  bad = DetPending(2.0);
  bad.pending_jitter = 1.5;
  EXPECT_FALSE(Simulate(trace, &scaler, bad).ok());

  bad.pending_jitter = -0.1;
  EXPECT_FALSE(ValidateEngineOptions(bad).ok());

  EXPECT_TRUE(ValidateEngineOptions(DetPending(2.0)).ok());
}

TEST(EngineTest, FakeDecisionClockMakesChargingDeterministic) {
  // Every planning decision costs exactly 1.5 s on the fake clock, so the
  // creations a tick emits at `now` are clamped to now + 1.5 — bit-exact,
  // machine-independent.
  workload::Trace trace({}, 20.0);
  TickCounter strategy(10.0, /*creation_offset=*/0.0);
  EngineOptions opts = DetPending(2.0);
  opts.charge_idle_until_horizon = false;
  opts.charge_decision_wall_time = true;
  FakeDecisionClock clock(1.5);
  opts.decision_clock = &clock;

  auto result = Simulate(trace, &strategy, opts);
  ASSERT_TRUE(result.ok());
  // Ticks at 0, 10, 20 each schedule one creation "now", charged to +1.5.
  // The creations from t=0 and t=10 execute (1.5, 11.5 <= horizon); the
  // one from t=20 lands at 21.5, past the closed boundary.
  ASSERT_EQ(result->instances.size(), 2u);
  EXPECT_DOUBLE_EQ(result->instances[0].creation_time, 1.5);
  EXPECT_DOUBLE_EQ(result->instances[1].creation_time, 11.5);
  // Two readings bracket each of the three decisions.
  EXPECT_EQ(clock.readings(), 6u);

  // With charging off the clock is never consulted.
  FakeDecisionClock idle_clock(1.5);
  opts.charge_decision_wall_time = false;
  opts.decision_clock = &idle_clock;
  TickCounter uncharged(10.0, 0.0);
  ASSERT_TRUE(Simulate(trace, &uncharged, opts).ok());
  EXPECT_EQ(idle_clock.readings(), 0u);
}

TEST(EnvironmentTest, PresetsSetExpectedFlags) {
  auto pending = stats::DurationDistribution::Deterministic(13.0);
  auto ideal = MakeIdealizedEnvironment(pending, 7);
  EXPECT_FALSE(ideal.charge_decision_wall_time);
  EXPECT_DOUBLE_EQ(ideal.creation_latency, 0.0);
  auto real = MakeRealEnvironment(pending, 7);
  EXPECT_TRUE(real.charge_decision_wall_time);
  EXPECT_GT(real.creation_latency, 0.0);
  EXPECT_GT(real.pending_jitter, 0.0);
}

TEST(MetricsTest, ComputesHeadlineNumbers) {
  SimulationResult result;
  result.horizon = 100.0;
  result.queries = {
      {1.0, 10.0, 0.0, 10.0, true, false},
      {2.0, 10.0, 5.0, 15.0, false, false},
      {3.0, 10.0, 13.0, 23.0, false, true},
      {4.0, 10.0, 0.0, 10.0, true, false},
  };
  result.instances = {{0.0, 1.0, 11.0, 11.0, true},
                      {0.0, 7.0, 17.0, 17.0, true}};
  auto m = ComputeMetrics(result);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->hit_rate, 0.5);
  EXPECT_DOUBLE_EQ(m->cold_start_rate, 0.25);
  EXPECT_DOUBLE_EQ(m->rt_avg, (10.0 + 15.0 + 23.0 + 10.0) / 4.0);
  EXPECT_DOUBLE_EQ(m->total_cost, 28.0);
  EXPECT_EQ(m->num_queries, 4u);
  EXPECT_DOUBLE_EQ(m->wait_avg, 4.5);
  EXPECT_DOUBLE_EQ(RelativeCost(*m, 14.0), 2.0);
}

TEST(MetricsTest, EmptyResultIsZeroes) {
  auto m = ComputeMetrics(SimulationResult{});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->hit_rate, 0.0);
  EXPECT_EQ(m->num_queries, 0u);
}

TEST(MetricsTest, RtQuantilesOrdered) {
  SimulationResult result;
  for (int i = 1; i <= 1000; ++i) {
    QueryOutcome q;
    q.response_time = static_cast<double>(i);
    result.queries.push_back(q);
  }
  auto m = ComputeMetrics(result);
  ASSERT_TRUE(m.ok());
  EXPECT_LE(m->rt_p50, m->rt_p75);
  EXPECT_LE(m->rt_p75, m->rt_p95);
  EXPECT_LE(m->rt_p95, m->rt_p99);
  EXPECT_LE(m->rt_p99, m->rt_p999);
  EXPECT_NEAR(m->rt_p50, 500.0, 2.0);
  EXPECT_NEAR(m->rt_p99, 990.0, 2.0);
}

TEST(MetricsTest, WindowedVarianceOfConstantIsZero) {
  std::vector<double> v(500, 3.0);
  auto var = WindowedQosVariance(v, 50);
  ASSERT_TRUE(var.ok());
  EXPECT_DOUBLE_EQ(*var, 0.0);
}

TEST(MetricsTest, WindowedVarianceDetectsRegimeShift) {
  std::vector<double> v;
  for (int i = 0; i < 250; ++i) v.push_back(1.0);
  for (int i = 0; i < 250; ++i) v.push_back(9.0);
  auto var = WindowedQosVariance(v, 50);
  ASSERT_TRUE(var.ok());
  EXPECT_GT(*var, 10.0);
  EXPECT_FALSE(WindowedQosVariance(v, 0).ok());
}

TEST(MetricsTest, ExtractorsPreserveOrder) {
  SimulationResult result;
  result.queries = {{1.0, 1.0, 0.0, 5.0, true, false},
                    {2.0, 1.0, 0.0, 7.0, false, false}};
  auto rts = ResponseTimes(result);
  auto hits = HitIndicators(result);
  ASSERT_EQ(rts.size(), 2u);
  EXPECT_DOUBLE_EQ(rts[1], 7.0);
  EXPECT_DOUBLE_EQ(hits[0], 1.0);
  EXPECT_DOUBLE_EQ(hits[1], 0.0);
}

}  // namespace
}  // namespace rs::sim
