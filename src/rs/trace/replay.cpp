/// \file replay.cpp
/// \brief Re-drives a fresh fleet from a capture and verifies byte-identical
///        action parity against the recording.
#include <bit>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "rs/trace/trace.hpp"

namespace rs::trace {

namespace {

/// Bitwise double equality: the parity contract is bytes, never an epsilon
/// (and NaN payloads must round-trip too).
bool SameBits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string Bits(double v) {
  std::ostringstream out;
  out << v << " (0x" << std::hex << std::bit_cast<std::uint64_t>(v) << ")";
  return out.str();
}

bool SameAction(const sim::ScalingAction& recorded,
                const sim::ScalingAction& replayed, std::string* why) {
  if (recorded.deletions != replayed.deletions) {
    std::ostringstream out;
    out << "deletions recorded " << recorded.deletions << ", replayed "
        << replayed.deletions;
    *why = out.str();
    return false;
  }
  if (recorded.creation_times.size() != replayed.creation_times.size()) {
    std::ostringstream out;
    out << "creation count recorded " << recorded.creation_times.size()
        << ", replayed " << replayed.creation_times.size();
    *why = out.str();
    return false;
  }
  for (std::size_t i = 0; i < recorded.creation_times.size(); ++i) {
    if (!SameBits(recorded.creation_times[i], replayed.creation_times[i])) {
      std::ostringstream out;
      out << "creation_times[" << i << "] recorded "
          << Bits(recorded.creation_times[i]) << ", replayed "
          << Bits(replayed.creation_times[i]);
      *why = out.str();
      return false;
    }
  }
  return true;
}

bool SameClock(const ClockMark& recorded, const ClockMark& replayed,
               std::string* why) {
  if (recorded.has_position != replayed.has_position) {
    *why = std::string("decision clock ") +
           (recorded.has_position
                ? "recorded a position but the replayed clock exports none "
                  "(inject a deterministic clock via "
                  "ReplayOptions::decision_clock_for)"
                : "recorded no position but the replayed clock exports one "
                  "(the original session ran on wall time)");
    return false;
  }
  if (!recorded.has_position) return true;
  if (!SameBits(recorded.time, replayed.time) ||
      recorded.readings != replayed.readings) {
    std::ostringstream out;
    out << "decision clock recorded (t=" << Bits(recorded.time)
        << ", readings=" << recorded.readings << "), replayed (t="
        << Bits(replayed.time) << ", readings=" << replayed.readings << ")";
    *why = out.str();
    return false;
  }
  return true;
}

/// The replay side of the recording tap: armed with the expected event
/// before each re-driven call, it compares what the fleet emits against
/// what the capture says it emitted.
class Verifier final : public api::ServingTap {
 public:
  void Arm(const Event* expected) {
    expected_ = expected;
    fired_ = false;
  }

  bool fired() const { return fired_; }
  bool diverged() const { return diverged_; }
  const std::string& detail() const { return detail_; }

  void SetNames(const std::unordered_map<std::uint32_t, std::string>* names) {
    names_ = names;
  }

  void OnObserve(const std::string& tenant, double arrival_time,
                 const api::Scaler::ObserveOutcome& outcome) override {
    (void)tenant;
    (void)arrival_time;
    if (!Armed(EventKind::kObserve)) return;
    fired_ = true;
    if (outcome.cold_start != expected_->cold_start ||
        outcome.cancel_earliest_scheduled != expected_->cancel_earliest) {
      std::ostringstream out;
      out << "observe outcome recorded (cold_start=" << expected_->cold_start
          << ", cancel=" << expected_->cancel_earliest << "), replayed ("
          << outcome.cold_start << ", " << outcome.cancel_earliest_scheduled
          << ")";
      Diverge(out.str());
    }
  }

  void OnPlan(const std::string& tenant, double now,
              const sim::ScalingAction& action,
              const ClockMark& clock) override {
    (void)tenant;
    (void)now;
    if (!Armed(EventKind::kPlan)) return;
    fired_ = true;
    std::string why;
    if (!SameAction(expected_->action, action, &why) ||
        !SameClock(expected_->clock, clock, &why)) {
      Diverge(why);
    }
  }

  void OnPlanAll(double now,
                 const std::vector<api::ScalerFleet::TenantPlan>& plans,
                 const std::vector<ClockMark>& clocks) override {
    (void)now;
    if (!Armed(EventKind::kPlanAll)) return;
    fired_ = true;
    if (plans.size() != expected_->plans.size()) {
      std::ostringstream out;
      out << "plan-all batch recorded " << expected_->plans.size()
          << " tenants, replayed " << plans.size();
      Diverge(out.str());
      return;
    }
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const PlannedTenant& recorded = expected_->plans[i];
      const auto name = names_->find(recorded.id);
      if (name == names_->end() || name->second != plans[i].tenant) {
        std::ostringstream out;
        out << "plan-all slot " << i << " recorded tenant \""
            << (name == names_->end() ? "<unknown id>" : name->second)
            << "\", replayed \"" << plans[i].tenant << '"';
        Diverge(out.str());
        return;
      }
      if (recorded.ok != plans[i].status.ok()) {
        std::ostringstream out;
        out << "plan-all tenant \"" << plans[i].tenant << "\" recorded "
            << (recorded.ok ? "success" : "failure") << ", replayed "
            << (plans[i].status.ok() ? "success"
                                     : "failure: " + plans[i].status.message());
        Diverge(out.str());
        return;
      }
      std::string why;
      if (recorded.ok && !SameAction(recorded.action, plans[i].action, &why)) {
        Diverge("tenant \"" + plans[i].tenant + "\": " + why);
        return;
      }
      if (i < clocks.size() && !SameClock(recorded.clock, clocks[i], &why)) {
        Diverge("tenant \"" + plans[i].tenant + "\": " + why);
        return;
      }
    }
  }

 private:
  bool Armed(EventKind kind) const {
    return expected_ != nullptr && expected_->kind == kind && !diverged_;
  }

  void Diverge(std::string why) {
    diverged_ = true;
    detail_ = std::move(why);
  }

  const Event* expected_ = nullptr;
  const std::unordered_map<std::uint32_t, std::string>* names_ = nullptr;
  bool fired_ = false;
  bool diverged_ = false;
  std::string detail_;
};

Status CorruptEvent(std::size_t index, const Event& event,
                    const std::string& what) {
  std::ostringstream out;
  out << "trace replay: event #" << index << " (" << EventKindName(event.kind)
      << "): " << what;
  return Status::Invalid(out.str());
}

Result<api::Scaler> RestoreEmbedded(const Event& event,
                                    const std::string& tenant,
                                    const ReplayOptions& options) {
  api::ScalerRestoreOptions restore;
  if (options.decision_clock_for) {
    restore.decision_clock = options.decision_clock_for(tenant);
  }
  std::istringstream in(event.state, std::ios::binary);
  return api::ScalerBuilder::RestoreState(in, restore);
}

}  // namespace

Result<ReplayReport> Replay(const Capture& capture,
                            const ReplayOptions& options) {
  // Recovery replays into an existing fleet (restored from a checkpoint,
  // with the checkpoint's intern table seeding `names`); the default builds
  // a fresh one from the capture's embedded snapshots.
  api::ScalerFleet own_fleet(options.into != nullptr ? 0
                                                     : options.worker_threads);
  api::ScalerFleet& fleet = options.into != nullptr ? *options.into : own_fleet;
  std::unordered_map<std::uint32_t, std::string> names = options.tenant_names;
  Verifier verifier;
  verifier.SetNames(&names);
  RS_RETURN_NOT_OK(fleet.AttachTap(&verifier));

  ReplayReport report;
  report.events_total = capture.events.size();
  std::size_t limit = capture.events.size();
  if (options.max_events != 0 && options.max_events < limit) {
    limit = options.max_events;
  }

  const auto diverge = [&report](std::size_t index, const Event& event,
                                 std::string detail) {
    report.diverged = true;
    report.divergence_event = index;
    std::ostringstream out;
    out << "event #" << index << " (" << EventKindName(event.kind)
        << ", t=" << event.time << "): " << detail;
    report.detail = out.str();
  };

  for (std::size_t i = 0; i < limit; ++i) {
    const Event& event = capture.events[i];
    const auto name_of = [&names](std::uint32_t id) -> const std::string* {
      const auto it = names.find(id);
      return it == names.end() ? nullptr : &it->second;
    };
    switch (event.kind) {
      case EventKind::kRegister: {
        if (event.state.empty()) {
          return CorruptEvent(i, event,
                              "carries no scaler state (the recording side "
                              "failed to serialize this tenant)");
        }
        // Re-registering an id, or re-registering a live name, is a corrupt
        // capture; Register itself rejects the duplicate name.
        names[event.id] = event.name;
        auto restored = RestoreEmbedded(event, event.name, options);
        if (!restored.ok()) {
          return CorruptEvent(
              i, event, "embedded snapshot: " + restored.status().message());
        }
        Status registered =
            fleet.Register(event.name, std::move(restored).ValueOrDie());
        if (!registered.ok()) {
          return CorruptEvent(i, event, registered.message());
        }
        break;
      }
      case EventKind::kRetire: {
        const std::string* tenant = name_of(event.id);
        if (tenant == nullptr) {
          return CorruptEvent(i, event, "unknown tenant id");
        }
        Status retired = fleet.Retire(*tenant);
        if (!retired.ok()) return CorruptEvent(i, event, retired.message());
        break;
      }
      case EventKind::kReplaceModel: {
        const std::string* tenant = name_of(event.id);
        if (tenant == nullptr) {
          return CorruptEvent(i, event, "unknown tenant id");
        }
        if (event.state.empty()) {
          return CorruptEvent(i, event,
                              "carries no scaler state (the recording side "
                              "failed to serialize the incoming model)");
        }
        auto restored = RestoreEmbedded(event, *tenant, options);
        if (!restored.ok()) {
          return CorruptEvent(
              i, event, "embedded snapshot: " + restored.status().message());
        }
        Status swapped =
            event.at_next_plan
                ? fleet.ReplaceModelAtNextPlan(*tenant,
                                               std::move(restored).ValueOrDie())
                : fleet.ReplaceModel(*tenant, std::move(restored).ValueOrDie());
        if (!swapped.ok()) return CorruptEvent(i, event, swapped.message());
        break;
      }
      case EventKind::kObserve: {
        const std::string* tenant = name_of(event.id);
        if (tenant == nullptr) {
          return CorruptEvent(i, event, "unknown tenant id");
        }
        verifier.Arm(&event);
        auto outcome = fleet.Observe(*tenant, event.time);
        if (!outcome.ok()) {
          diverge(i, event,
                  "recorded success, replay failed: " +
                      outcome.status().message());
        }
        break;
      }
      case EventKind::kPlan: {
        const std::string* tenant = name_of(event.id);
        if (tenant == nullptr) {
          return CorruptEvent(i, event, "unknown tenant id");
        }
        verifier.Arm(&event);
        auto planned = fleet.Plan(*tenant, event.time);
        if (!planned.ok()) {
          diverge(i, event,
                  "recorded success, replay failed: " +
                      planned.status().message());
        }
        break;
      }
      case EventKind::kPlanAll: {
        verifier.Arm(&event);
        (void)fleet.PlanAll(event.time);
        break;
      }
    }
    if (verifier.diverged()) {
      diverge(i, event, verifier.detail());
    }
    if (report.diverged) break;
    verifier.Arm(nullptr);
    report.events_applied = i + 1;
  }

  fleet.DetachTap();
  return report;
}

}  // namespace rs::trace
