/// \file capture.cpp
/// \brief On-disk codec for serving captures. docs/TRACE_FORMAT.md is the
///        normative spec for everything encoded here — keep the two in sync
///        (tools/trace_spec_check.py re-decodes the committed example
///        capture from the spec alone in CI).
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "rs/persist/persist.hpp"
#include "rs/trace/trace.hpp"

namespace rs::trace {

namespace {

/// Layout version of the TRCE section. Bump for incompatible event-record
/// changes; readers reject newer versions with a descriptive Status and
/// accept older ones (there are none yet).
constexpr std::uint32_t kTraceLayerVersion = 1;

void WriteClock(persist::Writer* writer, const ClockMark& clock) {
  writer->WriteBool(clock.has_position);
  writer->WriteDouble(clock.time);
  writer->WriteU64(clock.readings);
}

Status ReadClock(persist::Reader* reader, ClockMark* clock) {
  RS_ASSIGN_OR_RETURN(clock->has_position, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(clock->time, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(clock->readings, reader->ReadU64());
  return Status::OK();
}

void WriteAction(persist::Writer* writer, const sim::ScalingAction& action) {
  writer->WriteDoubleVector(action.creation_times);
  writer->WriteU64(action.deletions);
}

Status ReadAction(persist::Reader* reader, sim::ScalingAction* action) {
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&action->creation_times));
  RS_ASSIGN_OR_RETURN(const std::uint64_t deletions, reader->ReadU64());
  action->deletions = static_cast<std::size_t>(deletions);
  return Status::OK();
}

}  // namespace

void EncodeEvent(persist::Writer* writer, const Event& event) {
  writer->WriteU8(static_cast<std::uint8_t>(event.kind));
  switch (event.kind) {
    case EventKind::kRegister:
      writer->WriteU32(event.id);
      writer->WriteString(event.name);
      writer->WriteString(event.state);
      break;
    case EventKind::kRetire:
      writer->WriteU32(event.id);
      break;
    case EventKind::kReplaceModel:
      writer->WriteU32(event.id);
      writer->WriteBool(event.at_next_plan);
      writer->WriteString(event.state);
      break;
    case EventKind::kObserve:
      writer->WriteU32(event.id);
      writer->WriteDouble(event.time);
      writer->WriteU8(static_cast<std::uint8_t>(
          (event.cold_start ? 1u : 0u) | (event.cancel_earliest ? 2u : 0u)));
      break;
    case EventKind::kPlan:
      writer->WriteU32(event.id);
      writer->WriteDouble(event.time);
      WriteClock(writer, event.clock);
      WriteAction(writer, event.action);
      break;
    case EventKind::kPlanAll:
      writer->WriteDouble(event.time);
      writer->WriteU64(event.plans.size());
      for (const PlannedTenant& plan : event.plans) {
        writer->WriteU32(plan.id);
        writer->WriteBool(plan.ok);
        WriteClock(writer, plan.clock);
        if (plan.ok) WriteAction(writer, plan.action);
      }
      break;
  }
}

Status DecodeEvent(persist::Reader* reader, Event* event) {
  RS_ASSIGN_OR_RETURN(const std::uint8_t kind, reader->ReadU8());
  if (kind < 1 || kind > 6) {
    return Status::Invalid("trace capture carries unknown event kind " +
                           std::to_string(kind) +
                           "; the file is corrupt or from a newer writer "
                           "that forgot to bump the trace layer version");
  }
  event->kind = static_cast<EventKind>(kind);
  switch (event->kind) {
    case EventKind::kRegister: {
      RS_ASSIGN_OR_RETURN(event->id, reader->ReadU32());
      RS_ASSIGN_OR_RETURN(event->name, reader->ReadString());
      RS_ASSIGN_OR_RETURN(event->state, reader->ReadString());
      if (event->name.empty()) {
        return Status::Invalid(
            "trace capture registers a tenant with an empty name; the file "
            "is corrupt");
      }
      break;
    }
    case EventKind::kRetire: {
      RS_ASSIGN_OR_RETURN(event->id, reader->ReadU32());
      break;
    }
    case EventKind::kReplaceModel: {
      RS_ASSIGN_OR_RETURN(event->id, reader->ReadU32());
      RS_ASSIGN_OR_RETURN(event->at_next_plan, reader->ReadBool());
      RS_ASSIGN_OR_RETURN(event->state, reader->ReadString());
      break;
    }
    case EventKind::kObserve: {
      RS_ASSIGN_OR_RETURN(event->id, reader->ReadU32());
      RS_ASSIGN_OR_RETURN(event->time, reader->ReadDouble());
      RS_ASSIGN_OR_RETURN(const std::uint8_t outcome, reader->ReadU8());
      if (outcome > 3) {
        return Status::Invalid(
            "trace capture carries corrupt Observe outcome bits (value " +
            std::to_string(outcome) + ")");
      }
      event->cold_start = (outcome & 1u) != 0;
      event->cancel_earliest = (outcome & 2u) != 0;
      break;
    }
    case EventKind::kPlan: {
      RS_ASSIGN_OR_RETURN(event->id, reader->ReadU32());
      RS_ASSIGN_OR_RETURN(event->time, reader->ReadDouble());
      RS_RETURN_NOT_OK(ReadClock(reader, &event->clock));
      RS_RETURN_NOT_OK(ReadAction(reader, &event->action));
      break;
    }
    case EventKind::kPlanAll: {
      RS_ASSIGN_OR_RETURN(event->time, reader->ReadDouble());
      RS_ASSIGN_OR_RETURN(const std::uint64_t count, reader->ReadU64());
      // Every per-tenant record is at least id + ok + clock bytes; a count
      // claiming more than the section holds is corrupt, not an allocation.
      if (count > reader->remaining() / 22) {
        return Status::Invalid(
            "trace capture claims " + std::to_string(count) +
            " tenants in a PlanAll batch but the section is too small");
      }
      event->plans.resize(static_cast<std::size_t>(count));
      for (PlannedTenant& plan : event->plans) {
        RS_ASSIGN_OR_RETURN(plan.id, reader->ReadU32());
        RS_ASSIGN_OR_RETURN(plan.ok, reader->ReadBool());
        RS_RETURN_NOT_OK(ReadClock(reader, &plan.clock));
        if (plan.ok) RS_RETURN_NOT_OK(ReadAction(reader, &plan.action));
      }
      break;
    }
  }
  return Status::OK();
}

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kRegister:
      return "register";
    case EventKind::kRetire:
      return "retire";
    case EventKind::kReplaceModel:
      return "replace-model";
    case EventKind::kObserve:
      return "observe";
    case EventKind::kPlan:
      return "plan";
    case EventKind::kPlanAll:
      return "plan-all";
  }
  return "unknown";
}

Status Capture::SaveSection(persist::Writer* writer) const {
  writer->BeginSection(persist::kTagTraceCapture);
  writer->WriteU32(kTraceLayerVersion);

  writer->BeginSection(persist::kTagTraceMeta);
  writer->WriteString(producer);
  writer->WriteString(label);
  writer->EndSection();

  writer->BeginSection(persist::kTagTraceEvents);
  writer->WriteU64(events.size());
  for (const Event& event : events) EncodeEvent(writer, event);
  writer->EndSection();

  writer->EndSection();
  return Status::OK();
}

Result<Capture> Capture::LoadSection(persist::Reader* reader) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagTraceCapture));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  if (version == 0 || version > kTraceLayerVersion) {
    return Status::Invalid(
        "trace capture layer version " + std::to_string(version) +
        " is newer than this build understands (reads 1.." +
        std::to_string(kTraceLayerVersion) + "); upgrade the reader");
  }
  Capture capture;

  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagTraceMeta));
  RS_ASSIGN_OR_RETURN(capture.producer, reader->ReadString());
  RS_ASSIGN_OR_RETURN(capture.label, reader->ReadString());
  // Skip any metadata a newer minor writer appended (forward compat).
  RS_RETURN_NOT_OK(reader->ExitSection());

  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagTraceEvents));
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, reader->ReadU64());
  // The smallest event (retire) is 5 bytes; a larger count is corruption.
  if (count > reader->remaining() / 5) {
    return Status::Invalid("trace capture claims " + std::to_string(count) +
                           " events but the event section holds only " +
                           std::to_string(reader->remaining()) + " bytes");
  }
  capture.events.resize(static_cast<std::size_t>(count));
  for (Event& event : capture.events) {
    RS_RETURN_NOT_OK(DecodeEvent(reader, &event));
  }
  RS_RETURN_NOT_OK(reader->ExitSection());

  RS_RETURN_NOT_OK(reader->ExitSection());
  return capture;
}

Status Capture::Save(std::ostream& out) const {
  persist::Writer writer;
  RS_RETURN_NOT_OK(SaveSection(&writer));
  return writer.Finish(out);
}

Result<Capture> Capture::Load(std::istream& in) {
  RS_ASSIGN_OR_RETURN(persist::Reader reader, persist::Reader::FromStream(in));
  return LoadSection(&reader);
}

Result<Capture> Capture::FromBytes(std::string bytes) {
  RS_ASSIGN_OR_RETURN(persist::Reader reader,
                      persist::Reader::FromBytes(std::move(bytes)));
  return LoadSection(&reader);
}

Result<std::string> Capture::ToBytes() const {
  std::ostringstream out(std::ios::binary);
  RS_RETURN_NOT_OK(Save(out));
  return std::move(out).str();
}

Capture Capture::Prefix(std::size_t n) const {
  Capture prefix;
  prefix.producer = producer;
  prefix.label = label;
  if (n > events.size()) n = events.size();
  prefix.events.assign(events.begin(),
                       events.begin() + static_cast<std::ptrdiff_t>(n));
  return prefix;
}

}  // namespace rs::trace
