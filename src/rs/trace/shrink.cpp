/// \file shrink.cpp
/// \brief Reduces a failing capture to its minimal failing prefix and renders
///        captures into self-contained regression tests (tests/generated/).
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "rs/trace/trace.hpp"

namespace rs::trace {

Result<ShrinkResult> Shrink(const Capture& capture,
                            const ReplayOptions& options) {
  RS_ASSIGN_OR_RETURN(ReplayReport full, Replay(capture, options));
  if (!full.diverged) {
    return Status::Invalid(
        "trace shrink: the capture replays cleanly (" +
        std::to_string(full.events_applied) +
        " events, no divergence) — there is nothing to shrink");
  }
  // Replay is deterministic, so divergence happens at a fixed event index d
  // and a prefix fails iff it is long enough to include d. That makes prefix
  // length monotone in "fails", which is exactly what a binary search needs.
  // The full report already pins d, but we re-verify by probing: a prefix
  // oracle is cheap insurance against an index-vs-length off-by-one and
  // keeps the search correct even if divergence_event were ever misreported.
  std::size_t lo = 1;
  std::size_t hi = full.divergence_event + 1;  // Shortest known-failing length.
  ReplayReport hi_report = full;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ReplayOptions probe = options;
    probe.max_events = 0;  // The prefix *is* the capture; replay all of it.
    RS_ASSIGN_OR_RETURN(ReplayReport report,
                        Replay(capture.Prefix(mid), probe));
    if (report.diverged) {
      hi = mid;
      hi_report = report;
    } else {
      lo = mid + 1;
    }
  }
  ShrinkResult result;
  result.minimal_events = hi;
  result.capture = capture.Prefix(hi);
  result.report = hi_report;
  return result;
}

namespace {

bool IsIdentifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

/// Renders `s` as a C++ string literal (quotes included).
std::string CppStringLiteral(const std::string& s) {
  std::ostringstream out;
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (std::isprint(static_cast<unsigned char>(c))) {
          out << c;
        } else {
          out << "\\x" << std::hex << std::setw(2) << std::setfill('0')
              << static_cast<unsigned>(static_cast<unsigned char>(c))
              << std::dec;
        }
    }
  }
  out << '"';
  return out.str();
}

const char* StatusCodeEnumerator(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "StatusCode::kOk";
    case StatusCode::kInvalidArgument:
      return "StatusCode::kInvalidArgument";
    case StatusCode::kOutOfRange:
      return "StatusCode::kOutOfRange";
    case StatusCode::kNotImplemented:
      return "StatusCode::kNotImplemented";
    case StatusCode::kRuntimeError:
      return "StatusCode::kRuntimeError";
    case StatusCode::kIoError:
      return "StatusCode::kIoError";
    case StatusCode::kNotConverged:
      return "StatusCode::kNotConverged";
    case StatusCode::kInfeasible:
      return "StatusCode::kInfeasible";
  }
  return "StatusCode::kRuntimeError";
}

/// Emits a function reconstructing `plan` rule by rule.
void EmitFaultPlanBuilder(const fault::FaultPlan& plan, std::ostream& out) {
  out << "fault::FaultPlan CapturedFaultPlan() {\n"
      << "  fault::FaultPlan plan;\n"
      << "  plan.rules.reserve(" << plan.rules.size() << ");\n";
  for (const fault::FaultRule& rule : plan.rules) {
    out << "  {\n"
        << "    fault::FaultRule rule;\n"
        << "    rule.site = " << CppStringLiteral(rule.site) << ";\n";
    if (!rule.scope.empty()) {
      out << "    rule.scope = " << CppStringLiteral(rule.scope) << ";\n";
    }
    out << "    rule.hit = " << rule.hit << ";\n";
    if (rule.period != 0) {
      out << "    rule.period = " << rule.period << ";\n";
    }
    if (rule.fault.kind == fault::FaultKind::kThrow) {
      out << "    rule.fault.kind = fault::FaultKind::kThrow;\n";
    }
    out << "    rule.fault.code = " << StatusCodeEnumerator(rule.fault.code)
        << ";\n";
    if (!rule.fault.message.empty()) {
      out << "    rule.fault.message = " << CppStringLiteral(rule.fault.message)
          << ";\n";
    }
    out << "    plan.rules.push_back(std::move(rule));\n"
        << "  }\n";
  }
  out << "  return plan;\n"
      << "}\n";
}

}  // namespace

Status EmitRegressionTest(const Capture& capture, const std::string& test_name,
                          std::ostream& out, const EmitOptions& options) {
  if (!IsIdentifier(test_name)) {
    return Status::Invalid("EmitRegressionTest: \"" + test_name +
                           "\" is not a valid C++ identifier");
  }
  // A generated test replays with default options — it cannot know the
  // original decision clock's script. Probe once so captures that need an
  // injected clock are refused here, with the replayer's message, instead of
  // failing cryptically inside CI. Divergence is fine (that is the point of
  // a regression test); only hard errors block emission. The probe runs
  // faults-off even when a fault plan will be embedded: the injected faults
  // change replay *behavior*, never its well-formedness.
  RS_ASSIGN_OR_RETURN(const ReplayReport probe, Replay(capture));
  (void)probe;
  const bool with_faults = options.fault_plan.has_value();

  RS_ASSIGN_OR_RETURN(const std::string bytes, capture.ToBytes());

  out << "// GENERATED by rs::trace::EmitRegressionTest — do not edit.\n"
      << "//\n"
      << "// Replays an embedded serving capture (" << capture.events.size()
      << " events" << (capture.label.empty() ? "" : ", \"" + capture.label
      + "\"")
      << ") against the current build and fails on the\n"
      << "// first byte-level divergence from the recorded actions. See\n"
      << "// docs/TRACE_FORMAT.md and src/rs/trace/trace.hpp.\n";
  if (with_faults) {
    out << "//\n"
        << "// The capture was recorded under deterministic fault injection: "
           "the\n"
        << "// embedded fault plan below is re-installed around every replay "
           "so the\n"
        << "// recorded fallback boundaries reproduce. Replayed faults-off, "
           "this\n"
        << "// capture diverges at the first injected fault by construction "
           "—\n"
        << "// which is exactly what the original failing session did.\n";
  }
  out << "#include <gtest/gtest.h>\n"
      << "\n"
      << "#include <cstddef>\n"
      << "#include <string>\n";
  if (with_faults) out << "#include <utility>\n";
  out << "\n";
  if (with_faults) out << "#include \"rs/fault/fault.hpp\"\n";
  out << "#include \"rs/trace/trace.hpp\"\n"
      << "\n"
      << "namespace rs::trace {\n"
      << "namespace {\n"
      << "\n";
  if (with_faults) {
    EmitFaultPlanBuilder(*options.fault_plan, out);
    out << "\n";
  }
  out << "const unsigned char kCaptureBytes[] = {";
  out << std::hex << std::setfill('0');
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i % 12 == 0) out << "\n    ";
    out << "0x" << std::setw(2)
        << static_cast<unsigned>(static_cast<unsigned char>(bytes[i])) << ",";
  }
  out << std::dec << "\n};\n"
      << "\n"
      << "TEST(GeneratedTraceRegression, " << test_name << ") {\n"
      << "  const std::string bytes(\n"
      << "      reinterpret_cast<const char*>(kCaptureBytes),\n"
      << "      sizeof(kCaptureBytes));\n"
      << "  auto capture = Capture::FromBytes(bytes);\n"
      << "  ASSERT_TRUE(capture.ok()) << capture.status().message();\n"
      << "  for (const std::size_t workers : {std::size_t{0}, std::size_t{1},\n"
      << "                                    std::size_t{8}}) {\n";
  if (with_faults) {
    out << "    // Fresh installation per worker count: the plan's hit\n"
        << "    // counters must restart for each replay.\n"
        << "    fault::ScopedFaultInjection inject(CapturedFaultPlan());\n";
  }
  out << "    ReplayOptions options;\n"
      << "    options.worker_threads = workers;\n"
      << "    auto report = Replay(capture.ValueOrDie(), options);\n"
      << "    ASSERT_TRUE(report.ok()) << report.status().message();\n"
      << "    EXPECT_FALSE(report.ValueOrDie().diverged)\n"
      << "        << \"workers=\" << workers << \": \"\n"
      << "        << report.ValueOrDie().detail;\n"
      << "  }\n"
      << "}\n"
      << "\n"
      << "}  // namespace\n"
      << "}  // namespace rs::trace\n";
  if (!out) {
    return Status::IoError("EmitRegressionTest: stream write failed");
  }
  return Status::OK();
}

}  // namespace rs::trace
