/// \file trace.hpp
/// \brief Serving-session capture, deterministic replay, and failing-capture
///        shrinking — the rs::trace subsystem.
///
/// A *capture* is a durable record of a ScalerFleet serving session: every
/// tenant registration (with the scaler's full durable state), every Observe
/// arrival with its outcome, every Plan/PlanAll drain with the emitted
/// actions and the tenant's decision-clock position, and every model swap.
/// Captures reuse the rs::persist container (magic, versioned sections,
/// CRC32 trailer); docs/TRACE_FORMAT.md is the normative on-disk spec.
///
/// The pieces compose into a capture-then-regress pipeline (the idea is
/// borrowed from genthat's trace-based unit-test extraction for R):
///
///   Recorder  — a ServingTap that appends events as a live fleet serves;
///   Replay    — rebuilds a fleet from the capture's embedded snapshots and
///               re-drives the event stream, comparing every emitted action
///               byte-for-byte against the recorded one;
///   Shrink    — binary-searches the shortest failing prefix of a capture
///               that no longer replays byte-identically (a behavior
///               regression), so the committed artifact is minimal;
///   EmitRegressionTest — renders a capture into a self-contained GTest
///               file (tests/generated/) that replays it under fleet worker
///               counts {0,1,8} and fails on any divergence.
///
/// Determinism: everything the serving path does is deterministic given the
/// recorded inputs (that is the repo's parity contract), with one exception —
/// wall time. Sessions that charge decision wall time against a real
/// SteadyDecisionClock replay action-identically only if the charged
/// latencies were zero-ish; sessions that need exact charged-latency replay
/// must serve under an injected deterministic clock (sim::FakeDecisionClock),
/// whose position travels inside the embedded scaler snapshots and is
/// verified after every plan. The freshness loop's background retrains are
/// wall-time-scheduled and therefore cannot be captured (the fleet refuses
/// the combination); manual ReplaceModel swaps are captured with the
/// incoming model's full state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rs/api/scaler_fleet.hpp"
#include "rs/api/serving_tap.hpp"
#include "rs/common/status.hpp"
#include "rs/fault/fault.hpp"
#include "rs/simulator/autoscaler.hpp"
#include "rs/simulator/decision_clock.hpp"

namespace rs::persist {
class Writer;
class Reader;
}  // namespace rs::persist

namespace rs::trace {

/// Decision-clock position attached to plan events (see api::TapClockMark).
using ClockMark = api::TapClockMark;

/// Wire ids of the event records inside the TEVT section. The numeric
/// values are part of the on-disk format — never renumber, only append.
enum class EventKind : std::uint8_t {
  kRegister = 1,      ///< Tenant registered (embeds its Scaler snapshot).
  kRetire = 2,        ///< Tenant retired.
  kReplaceModel = 3,  ///< Model swap (embeds the incoming Scaler snapshot).
  kObserve = 4,       ///< One arrival + the outcome the caller saw.
  kPlan = 5,          ///< Single-tenant Plan drain.
  kPlanAll = 6,       ///< One PlanAll batch (all tenants).
};

const char* EventKindName(EventKind kind);

/// One tenant's share of a recorded PlanAll batch.
struct PlannedTenant {
  std::uint32_t id = 0;
  bool ok = true;            ///< Per-tenant Plan status (failures recorded).
  ClockMark clock;           ///< Clock position after the batch.
  sim::ScalingAction action; ///< Empty unless ok.
};

/// One recorded serving event. Which fields are meaningful depends on
/// `kind` (see EventKind); unused fields keep their defaults and are not
/// encoded. Tenants are interned: kRegister assigns the next id to its
/// name, later events carry only the id, and ids are never reused within a
/// capture (a retire + re-register yields a fresh id).
struct Event {
  EventKind kind = EventKind::kObserve;
  std::uint32_t id = 0;   ///< Tenant id (all kinds except kPlanAll).
  std::string name;       ///< kRegister: the tenant name being interned.
  std::string state;      ///< kRegister/kReplaceModel: Scaler::SaveState bytes.
  bool at_next_plan = false;  ///< kReplaceModel: deferred to the boundary?
  double time = 0.0;          ///< kObserve: arrival; kPlan/kPlanAll: now.
  bool cold_start = false;            ///< kObserve outcome.
  bool cancel_earliest = false;       ///< kObserve outcome.
  ClockMark clock;                    ///< kPlan: position after the plan.
  sim::ScalingAction action;          ///< kPlan: the drained action.
  std::vector<PlannedTenant> plans;   ///< kPlanAll: registration order.
};

/// \brief An in-memory capture: metadata + the ordered event stream.
///
/// Save() writes one rs::persist container whose single top-level section
/// is TRCE (trace layer version, TMET metadata, TEVT events); Load()
/// validates the container (magic, version handshake, CRC) before decoding
/// and fails with a descriptive Status on truncation, bit flips, or
/// future-versioned files — never UB (fuzzed in tests/trace_test.cpp under
/// ASan/UBSan, mirroring persist_test's clean-failure contract).
struct Capture {
  std::string producer;  ///< Writing library, e.g. "robustscaler rs::trace".
  std::string label;     ///< Free-form session label (Recorder constructor).
  std::vector<Event> events;

  Status Save(std::ostream& out) const;
  static Result<Capture> Load(std::istream& in);
  static Result<Capture> FromBytes(std::string bytes);

  /// The encoded container bytes (what Save() writes), for embedding.
  Result<std::string> ToBytes() const;

  /// The first `n` events (all of them when n >= events.size()), keeping
  /// the metadata — the shrinker's probe artifact.
  Capture Prefix(std::size_t n) const;

  /// Section-level codec, for embedding captures in larger containers.
  Status SaveSection(persist::Writer* writer) const;
  static Result<Capture> LoadSection(persist::Reader* reader);
};

/// \brief Event-record codec, exposed for containers that embed individual
///        trace events outside a TEVT section (the rs::wal journal frames
///        one encoded event per journal record; docs/WAL_FORMAT.md).
///
/// The byte grammar is exactly the TEVT per-event encoding from
/// docs/TRACE_FORMAT.md — one wire format shared by capture and journal.
/// DecodeEvent applies the same validation as capture loading (unknown
/// kinds, empty register names, corrupt outcome bits) and never reads past
/// the reader's remaining bytes.
void EncodeEvent(persist::Writer* writer, const Event& event);
Status DecodeEvent(persist::Reader* reader, Event* event);

/// \brief ServingTap that records a live fleet's session into a Capture.
///
/// Usage:
///   trace::Recorder recorder("checkout incident 2026-08-09");
///   RS_RETURN_NOT_OK(recorder.Attach(&fleet));   // snapshots live tenants
///   ... serve normally (Observe / Plan / PlanAll / lifecycle) ...
///   recorder.Detach();
///   RS_RETURN_NOT_OK(recorder.capture().Save(out));
///
/// Attach() first emits a kRegister event (with a full Scaler snapshot) for
/// every already-registered tenant in registration order, so attaching to a
/// mid-session fleet still yields a self-contained capture: replay restores
/// those snapshots and continues byte-identically from the attach point.
/// Overhead is bounded per event — O(action size) for plan events, one
/// serialized scaler state per lifecycle event — and zero when detached;
/// bench_replay measures the tap-on/tap-off serving-throughput ratio and
/// gates it in CI.
///
/// Single caller thread, like the fleet itself. The recorder must outlive
/// its attachment (detach before destroying either side).
class Recorder final : public api::ServingTap {
 public:
  explicit Recorder(std::string label = "");

  /// Attaches to `fleet` (refused while another tap is attached or the
  /// freshness loop is enabled) and snapshots its current tenants.
  Status Attach(api::ScalerFleet* fleet);

  /// Detaches from the fleet attached to (no-op when already detached).
  void Detach();

  const Capture& capture() const { return capture_; }

  /// Moves the capture out (e.g. to Save it) and resets the recorder.
  Capture TakeCapture();

  std::size_t events() const { return capture_.events.size(); }

  // -- ServingTap ------------------------------------------------------------
  void OnRegister(const std::string& tenant,
                  const api::Scaler& scaler) override;
  void OnRetire(const std::string& tenant) override;
  void OnReplaceModel(const std::string& tenant, const api::Scaler& incoming,
                      bool at_next_plan) override;
  void OnObserve(const std::string& tenant, double arrival_time,
                 const api::Scaler::ObserveOutcome& outcome) override;
  void OnPlan(const std::string& tenant, double now,
              const sim::ScalingAction& action,
              const ClockMark& clock) override;
  void OnPlanAll(double now,
                 const std::vector<api::ScalerFleet::TenantPlan>& plans,
                 const std::vector<ClockMark>& clocks) override;

 private:
  std::uint32_t InternId(const std::string& tenant) const;
  Result<std::string> SerializeScaler(const api::Scaler& scaler) const;

  Capture capture_;
  api::ScalerFleet* fleet_ = nullptr;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::uint32_t next_id_ = 1;
};

/// Knobs for Replay().
struct ReplayOptions {
  /// Worker-pool size of the re-driven fleet. The parity contract says any
  /// value replays byte-identically; tests sweep {0, 1, 8}.
  std::size_t worker_threads = 0;
  /// Decision clock supplied to each restored scaler snapshot that was
  /// taken under an injected clock (kRegister / kReplaceModel events).
  /// Called once per such event with the tenant name; must return a clock
  /// that accepts ImportPosition and is scripted like the original (e.g. a
  /// fresh sim::FakeDecisionClock with the session's step). Snapshots
  /// without an injected clock never consult this.
  std::function<sim::DecisionClock*(const std::string& tenant)>
      decision_clock_for;
  /// Replay only the first `max_events` events (0 = the whole capture).
  std::size_t max_events = 0;
  /// Replay into this existing live fleet instead of constructing a fresh
  /// one (crash recovery: the fleet was just restored from a checkpoint and
  /// the journal tail is re-driven on top). The fleet must not have a tap
  /// attached; `worker_threads` is ignored. Null: build a fresh fleet.
  api::ScalerFleet* into = nullptr;
  /// Seed tenant-id interning for events that reference tenants registered
  /// before the capture/journal-tail begins (recovery: the checkpoint's
  /// intern table). Ids in the stream resolve through this map first;
  /// kRegister events extend it as usual.
  std::unordered_map<std::uint32_t, std::string> tenant_names;
};

/// Replay outcome. `diverged` distinguishes a *behavioral* mismatch (the
/// re-driven fleet emitted different bytes than the capture — the signal a
/// regression test keys on) from hard errors (corrupt capture, missing
/// decision clock), which Replay() returns as a non-OK Status instead.
struct ReplayReport {
  std::size_t events_total = 0;
  std::size_t events_applied = 0;  ///< Events re-driven before stopping.
  bool diverged = false;
  std::size_t divergence_event = 0;  ///< Index into Capture::events.
  std::string detail;                ///< First divergence, human-readable.
};

/// \brief Re-drives a fresh fleet from `capture` and verifies byte-identical
///        action parity.
///
/// Registration/swap events restore the embedded scaler snapshots through
/// the public ScalerBuilder::RestoreState path; Observe/Plan/PlanAll events
/// re-issue the recorded calls and compare outcomes, actions (doubles as
/// IEEE-754 bit patterns, never an epsilon), and decision-clock positions
/// against the recording. Stops at the first divergence.
Result<ReplayReport> Replay(const Capture& capture,
                            const ReplayOptions& options = {});

/// Shrink() outcome: the shortest failing prefix and its replay report.
struct ShrinkResult {
  /// Events in the minimal failing prefix. The divergence is at the last
  /// event by construction (any shorter prefix replays cleanly).
  std::size_t minimal_events = 0;
  Capture capture;       ///< The shrunk capture (Prefix(minimal_events)).
  ReplayReport report;   ///< Replay of the shrunk capture (diverged).
};

/// \brief Reduces a failing capture to its minimal failing prefix.
///
/// Binary-searches prefix length over [1, events] using Replay() as the
/// oracle — valid because replay is deterministic, so divergence happens at
/// a fixed event index d and a prefix fails iff it includes event d.
/// Returns Invalid when the full capture replays cleanly (nothing to
/// shrink) and propagates hard replay errors unchanged.
Result<ShrinkResult> Shrink(const Capture& capture,
                            const ReplayOptions& options = {});

/// Knobs for EmitRegressionTest.
struct EmitOptions {
  /// Setup prelude: reconstruct this fault plan in the generated test and
  /// install it (a fresh fault::ScopedFaultInjection per replay, so hit
  /// counters restart each worker count) around every Replay() call.
  /// Required for captures recorded under fault injection — the recorded
  /// stream contains fallback boundaries that only reproduce when the
  /// replayed fleet fails at the same hits; replayed faults-off, such a
  /// capture diverges at the first injected fault by construction.
  std::optional<fault::FaultPlan> fault_plan;
};

/// \brief Renders `capture` into a self-contained C++ GTest regression test
///        (for tests/generated/): the capture bytes are embedded as a byte
///        array and replayed under fleet worker counts {0, 1, 8}, failing
///        with the divergence detail on any mismatch.
///
/// `test_name` must be a valid C++ identifier (it names the TEST case).
/// Captures whose embedded snapshots need an injected decision clock are
/// refused — a generated test has no way to know the original clock's
/// script; keep such captures as .rstrace artifacts driven by a custom
/// harness instead.
Status EmitRegressionTest(const Capture& capture, const std::string& test_name,
                          std::ostream& out, const EmitOptions& options = {});

}  // namespace rs::trace
