/// \file recorder.cpp
/// \brief ServingTap implementation that appends capture events as a live
///        fleet serves.
#include <sstream>
#include <utility>

#include "rs/trace/trace.hpp"

namespace rs::trace {

Recorder::Recorder(std::string label) {
  capture_.producer = "robustscaler rs::trace";
  capture_.label = std::move(label);
}

Status Recorder::Attach(api::ScalerFleet* fleet) {
  if (fleet == nullptr) {
    return Status::Invalid("Recorder::Attach: fleet is null");
  }
  if (fleet_ != nullptr) {
    return Status::Invalid(
        "Recorder::Attach: already attached (Detach first; one recorder "
        "records one fleet at a time)");
  }
  RS_RETURN_NOT_OK(fleet->AttachTap(this));
  fleet_ = fleet;
  // Snapshot the tenants that are already serving, in registration order:
  // replay restores these and continues byte-identically from the attach
  // point, so mid-session captures are as self-contained as fresh ones.
  for (const std::string& tenant : fleet->Tenants()) {
    const api::Scaler* scaler = fleet->Find(tenant);
    auto state = SerializeScaler(*scaler);
    if (!state.ok()) {
      Detach();
      std::ostringstream msg;
      msg << "Recorder::Attach: tenant \"" << tenant
          << "\" cannot be snapshotted: " << state.status().message();
      return Status(state.status().code(), msg.str());
    }
    Event event;
    event.kind = EventKind::kRegister;
    event.id = next_id_++;
    event.name = tenant;
    event.state = std::move(state).ValueOrDie();
    ids_[tenant] = event.id;
    capture_.events.push_back(std::move(event));
  }
  return Status::OK();
}

void Recorder::Detach() {
  if (fleet_ == nullptr) return;
  fleet_->DetachTap();
  fleet_ = nullptr;
}

Capture Recorder::TakeCapture() {
  Capture out = std::move(capture_);
  capture_ = Capture{};
  capture_.producer = out.producer;
  capture_.label = out.label;
  ids_.clear();
  next_id_ = 1;
  return out;
}

std::uint32_t Recorder::InternId(const std::string& tenant) const {
  const auto it = ids_.find(tenant);
  // The fleet only fires callbacks for tenants it holds, and every way a
  // tenant can land in the fleet fires OnRegister first, so the lookup
  // cannot miss; 0 (never a valid id) keeps a corrupted stream decodable.
  return it == ids_.end() ? 0 : it->second;
}

Result<std::string> Recorder::SerializeScaler(const api::Scaler& scaler) const {
  std::ostringstream out(std::ios::binary);
  RS_RETURN_NOT_OK(scaler.SaveState(out));
  return std::move(out).str();
}

void Recorder::OnRegister(const std::string& tenant,
                          const api::Scaler& scaler) {
  Event event;
  event.kind = EventKind::kRegister;
  event.id = next_id_++;
  event.name = tenant;
  auto state = SerializeScaler(scaler);
  // A scaler whose strategy cannot serialize is caught at Attach for
  // existing tenants; for one registered mid-capture the event records an
  // empty state, which replay rejects with a descriptive error rather than
  // silently dropping the tenant.
  if (state.ok()) event.state = std::move(state).ValueOrDie();
  ids_[tenant] = event.id;
  capture_.events.push_back(std::move(event));
}

void Recorder::OnRetire(const std::string& tenant) {
  Event event;
  event.kind = EventKind::kRetire;
  event.id = InternId(tenant);
  ids_.erase(tenant);
  capture_.events.push_back(std::move(event));
}

void Recorder::OnReplaceModel(const std::string& tenant,
                              const api::Scaler& incoming, bool at_next_plan) {
  Event event;
  event.kind = EventKind::kReplaceModel;
  event.id = InternId(tenant);
  event.at_next_plan = at_next_plan;
  auto state = SerializeScaler(incoming);
  if (state.ok()) event.state = std::move(state).ValueOrDie();
  capture_.events.push_back(std::move(event));
}

void Recorder::OnObserve(const std::string& tenant, double arrival_time,
                         const api::Scaler::ObserveOutcome& outcome) {
  Event event;
  event.kind = EventKind::kObserve;
  event.id = InternId(tenant);
  event.time = arrival_time;
  event.cold_start = outcome.cold_start;
  event.cancel_earliest = outcome.cancel_earliest_scheduled;
  capture_.events.push_back(std::move(event));
}

void Recorder::OnPlan(const std::string& tenant, double now,
                      const sim::ScalingAction& action,
                      const ClockMark& clock) {
  Event event;
  event.kind = EventKind::kPlan;
  event.id = InternId(tenant);
  event.time = now;
  event.clock = clock;
  event.action = action;
  capture_.events.push_back(std::move(event));
}

void Recorder::OnPlanAll(double now,
                         const std::vector<api::ScalerFleet::TenantPlan>& plans,
                         const std::vector<ClockMark>& clocks) {
  Event event;
  event.kind = EventKind::kPlanAll;
  event.time = now;
  event.plans.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    PlannedTenant plan;
    plan.id = InternId(plans[i].tenant);
    plan.ok = plans[i].status.ok();
    plan.clock = i < clocks.size() ? clocks[i] : ClockMark{};
    if (plan.ok) plan.action = plans[i].action;
    event.plans.push_back(std::move(plan));
  }
  capture_.events.push_back(std::move(event));
}

}  // namespace rs::trace
