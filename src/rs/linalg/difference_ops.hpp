/// \file difference_ops.hpp
/// \brief The second-order difference operator D2 and the L-step forward
///        difference operator DL from the regularized NHPP loss (Eq. 1).
///
/// D2 ∈ R^{(T-2)×T}: (D2 r)_i = r_i − 2 r_{i+1} + r_{i+2} — the trend-filter
/// smoothness operator. DL ∈ R^{(T-L)×T}: (DL r)_i = r_i − r_{i+L} — the
/// periodicity operator that ties points one period apart.
#pragma once

#include <cstddef>

#include "rs/linalg/banded_matrix.hpp"
#include "rs/linalg/vector_ops.hpp"

namespace rs::linalg {

/// y = D2 x; y.size() becomes max(0, x.size() - 2).
void ApplyD2(const Vec& x, Vec* y);

/// y = D2ᵀ x where x has size T-2 and y gets size T.
void ApplyD2Transpose(const Vec& x, std::size_t t, Vec* y);

/// y = DL x with period L; y.size() becomes max(0, x.size() - L).
void ApplyDL(const Vec& x, std::size_t period, Vec* y);

/// y = DLᵀ x where x has size T-L and y gets size T.
void ApplyDLTranspose(const Vec& x, std::size_t t, std::size_t period, Vec* y);

/// Adds weight · D2ᵀD2 into `a` (a must be T×T with bandwidth >= 2).
void AddGramD2(double weight, SymmetricBandedMatrix* a);

/// Adds weight · DLᵀDL into `a` (a must be T×T with bandwidth >= period).
/// No-op if period >= T.
void AddGramDL(double weight, std::size_t period, SymmetricBandedMatrix* a);

/// Number of rows of D2 for a length-T series: max(0, T-2).
std::size_t D2Rows(std::size_t t);

/// Number of rows of DL: max(0, T-period).
std::size_t DLRows(std::size_t t, std::size_t period);

}  // namespace rs::linalg
