/// \file banded_matrix.hpp
/// \brief Symmetric banded matrix storage used for the ADMM r-subproblem
///        system A_k = Δt·diag(e^{r_k}) + ρ(D2ᵀD2 + DLᵀDL).
#pragma once

#include <cstddef>
#include <vector>

#include "rs/linalg/vector_ops.hpp"

namespace rs::linalg {

/// \brief Symmetric positive (semi-)definite banded matrix.
///
/// Stores only the lower band in LAPACK-like column-major band layout:
/// entry A(j + d, j) for d = 0..bw lives at band_[j * (bw + 1) + d].
/// Memory is n*(bw+1) doubles, so a T=30k series with a daily period
/// (bw=1440) costs ~350 MB — callers pick Δt so bw stays moderate, or use
/// the matrix-free PCG path (pcg.hpp) instead.
class SymmetricBandedMatrix {
 public:
  /// Creates an n×n zero matrix with half-bandwidth `bandwidth`
  /// (number of sub-diagonals stored; bandwidth 0 is diagonal).
  SymmetricBandedMatrix(std::size_t n, std::size_t bandwidth);

  std::size_t size() const { return n_; }
  std::size_t bandwidth() const { return bw_; }

  /// Element accessor; (i, j) must satisfy |i - j| <= bandwidth.
  double At(std::size_t i, std::size_t j) const;

  /// Adds `value` to element (i, j) (and by symmetry (j, i)).
  /// |i - j| must be <= bandwidth.
  void Add(std::size_t i, std::size_t j, double value);

  /// Sets element (i, j); |i - j| must be <= bandwidth.
  void Set(std::size_t i, std::size_t j, double value);

  /// Adds d[i] to every diagonal element (d.size() == n).
  void AddDiagonal(const Vec& d);

  /// Resets all entries to zero, keeping shape.
  void SetZero();

  /// y = A x.
  void Matvec(const Vec& x, Vec* y) const;

  /// Returns the diagonal as a vector (used by the Jacobi preconditioner).
  Vec Diagonal() const;

  /// Raw band storage (used by the Cholesky factorization).
  const std::vector<double>& band() const { return band_; }
  std::vector<double>& mutable_band() { return band_; }

 private:
  std::size_t n_;
  std::size_t bw_;
  std::vector<double> band_;  // (bw_+1) entries per column.
};

}  // namespace rs::linalg
