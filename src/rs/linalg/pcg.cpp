#include "rs/linalg/pcg.hpp"

#include <cmath>

#include "rs/common/logging.hpp"
#include "rs/linalg/difference_ops.hpp"

namespace rs::linalg {

Status SolvePcg(const LinearOperator& op, const Vec& diag, const Vec& b,
                const PcgOptions& options, Vec* x, PcgInfo* info) {
  if (x == nullptr) return Status::Invalid("SolvePcg: null output");
  const std::size_t n = b.size();
  if (diag.size() != n) return Status::Invalid("SolvePcg: diag size mismatch");
  if (x->size() != n) x->assign(n, 0.0);

  Vec r(n), z(n), p(n), ap(n);
  op(*x, &ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  const double tol = options.rel_tolerance * Norm2(b) + options.abs_tolerance;

  auto precond = [&](const Vec& in, Vec* out) {
    out->resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      (*out)[i] = diag[i] > 0.0 ? in[i] / diag[i] : in[i];
    }
  };

  precond(r, &z);
  p = z;
  double rz = Dot(r, z);
  double rnorm = Norm2(r);

  std::size_t iter = 0;
  while (rnorm > tol && iter < options.max_iterations) {
    op(p, &ap);
    const double pap = Dot(p, ap);
    if (!(pap > 0.0)) {
      return Status::NotConverged("SolvePcg: operator not positive definite");
    }
    const double alpha = rz / pap;
    Axpy(alpha, p, x);
    Axpy(-alpha, ap, &r);
    precond(r, &z);
    const double rz_next = Dot(r, z);
    const double beta = rz_next / rz;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    rz = rz_next;
    rnorm = Norm2(r);
    ++iter;
  }
  if (info != nullptr) {
    info->iterations = iter;
    info->residual_norm = rnorm;
  }
  if (rnorm > tol) {
    return Status::NotConverged("SolvePcg: max iterations reached, residual " +
                                std::to_string(rnorm));
  }
  return Status::OK();
}

LinearOperator MakeAdmmOperator(Vec weights, double rho, double rho_l,
                                std::size_t period) {
  return [w = std::move(weights), rho, rho_l, period](const Vec& x, Vec* y) {
    const std::size_t t = x.size();
    RS_DCHECK(w.size() == t && y != nullptr);
    y->assign(t, 0.0);
    for (std::size_t i = 0; i < t; ++i) (*y)[i] = w[i] * x[i];
    // rho * D2ᵀ(D2 x): accumulate directly without temporaries growing.
    if (t >= 3 && rho != 0.0) {
      for (std::size_t i = 0; i + 2 < t; ++i) {
        const double d = x[i] - 2.0 * x[i + 1] + x[i + 2];
        (*y)[i] += rho * d;
        (*y)[i + 1] -= 2.0 * rho * d;
        (*y)[i + 2] += rho * d;
      }
    }
    if (period > 0 && period < t && rho_l != 0.0) {
      for (std::size_t i = 0; i + period < t; ++i) {
        const double d = x[i] - x[i + period];
        (*y)[i] += rho_l * d;
        (*y)[i + period] -= rho_l * d;
      }
    }
  };
}

}  // namespace rs::linalg
