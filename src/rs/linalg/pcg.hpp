/// \file pcg.hpp
/// \brief Jacobi-preconditioned conjugate gradient for SPD systems.
///
/// Alternative to the banded Cholesky for the ADMM r-subproblem when the
/// period length (hence bandwidth) is large: each matvec with
/// A = diag(w) + ρ(D2ᵀD2 + DLᵀDL) is O(T) without forming the band.
#pragma once

#include <cstddef>
#include <functional>

#include "rs/common/status.hpp"
#include "rs/linalg/vector_ops.hpp"

namespace rs::linalg {

/// Matrix-free linear operator: given x, writes A·x into y.
using LinearOperator = std::function<void(const Vec& x, Vec* y)>;

/// Options for the PCG solver.
struct PcgOptions {
  std::size_t max_iterations = 1000;
  /// Converged when ||A x - b||_2 <= rel_tolerance * ||b||_2 + abs_tolerance.
  double rel_tolerance = 1e-9;
  double abs_tolerance = 1e-12;
};

/// Outcome statistics of a PCG solve.
struct PcgInfo {
  std::size_t iterations = 0;
  double residual_norm = 0.0;
};

/// \brief Solves A x = b with Jacobi (diagonal) preconditioning.
///
/// \param op          SPD operator A.
/// \param diag        the diagonal of A (preconditioner); entries must be > 0.
/// \param b           right-hand side.
/// \param options     tolerances and iteration cap.
/// \param x           in: initial guess (resized to b.size() if empty);
///                    out: solution.
/// \param info        optional iteration/residual statistics.
/// \return NotConverged if the iteration cap is hit before tolerance.
Status SolvePcg(const LinearOperator& op, const Vec& diag, const Vec& b,
                const PcgOptions& options, Vec* x, PcgInfo* info = nullptr);

/// Builds the matrix-free ADMM operator x ↦ (diag(w) + rho·D2ᵀD2 +
/// rho_l·DLᵀDL) x for a length-T system. `period == 0` disables the DL term.
LinearOperator MakeAdmmOperator(Vec weights, double rho, double rho_l,
                                std::size_t period);

}  // namespace rs::linalg
