#include "rs/linalg/banded_matrix.hpp"

#include <algorithm>

#include "rs/common/logging.hpp"

namespace rs::linalg {

SymmetricBandedMatrix::SymmetricBandedMatrix(std::size_t n, std::size_t bandwidth)
    : n_(n), bw_(std::min(bandwidth, n == 0 ? 0 : n - 1)), band_(n * (bw_ + 1), 0.0) {}

double SymmetricBandedMatrix::At(std::size_t i, std::size_t j) const {
  if (i < j) std::swap(i, j);
  const std::size_t d = i - j;
  RS_DCHECK(d <= bw_ && i < n_);
  return band_[j * (bw_ + 1) + d];
}

void SymmetricBandedMatrix::Add(std::size_t i, std::size_t j, double value) {
  if (i < j) std::swap(i, j);
  const std::size_t d = i - j;
  RS_DCHECK(d <= bw_ && i < n_);
  band_[j * (bw_ + 1) + d] += value;
}

void SymmetricBandedMatrix::Set(std::size_t i, std::size_t j, double value) {
  if (i < j) std::swap(i, j);
  const std::size_t d = i - j;
  RS_DCHECK(d <= bw_ && i < n_);
  band_[j * (bw_ + 1) + d] = value;
}

void SymmetricBandedMatrix::AddDiagonal(const Vec& d) {
  RS_DCHECK(d.size() == n_);
  for (std::size_t j = 0; j < n_; ++j) band_[j * (bw_ + 1)] += d[j];
}

void SymmetricBandedMatrix::SetZero() {
  std::fill(band_.begin(), band_.end(), 0.0);
}

void SymmetricBandedMatrix::Matvec(const Vec& x, Vec* y) const {
  RS_DCHECK(x.size() == n_ && y != nullptr);
  y->assign(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t dmax = std::min(bw_, n_ - 1 - j);
    const double xj = x[j];
    // Diagonal contribution.
    (*y)[j] += band_[j * (bw_ + 1)] * xj;
    // Off-diagonal: A(j+d, j) contributes to rows j+d and j.
    for (std::size_t d = 1; d <= dmax; ++d) {
      const double a = band_[j * (bw_ + 1) + d];
      if (a == 0.0) continue;
      (*y)[j + d] += a * xj;
      (*y)[j] += a * x[j + d];
    }
  }
}

Vec SymmetricBandedMatrix::Diagonal() const {
  Vec d(n_);
  for (std::size_t j = 0; j < n_; ++j) d[j] = band_[j * (bw_ + 1)];
  return d;
}

}  // namespace rs::linalg
