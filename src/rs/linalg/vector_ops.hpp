/// \file vector_ops.hpp
/// \brief Dense vector helpers shared by the solvers and the ADMM trainer.
#pragma once

#include <cstddef>
#include <vector>

namespace rs::linalg {

/// Dense column vector. All linalg routines operate on plain
/// std::vector<double> to keep the library dependency-free.
using Vec = std::vector<double>;

/// Dot product <x, y>. Sizes must match.
double Dot(const Vec& x, const Vec& y);

/// Euclidean norm ||x||_2.
double Norm2(const Vec& x);

/// Max-abs norm ||x||_inf. Returns 0 for an empty vector.
double NormInf(const Vec& x);

/// L1 norm ||x||_1.
double Norm1(const Vec& x);

/// y += alpha * x (sizes must match).
void Axpy(double alpha, const Vec& x, Vec* y);

/// x *= alpha.
void Scale(double alpha, Vec* x);

/// Element-wise z = x + y.
Vec Add(const Vec& x, const Vec& y);

/// Element-wise z = x - y.
Vec Sub(const Vec& x, const Vec& y);

/// Element-wise exponential, exp(x).
Vec Exp(const Vec& x);

/// Sum of all elements.
double Sum(const Vec& x);

}  // namespace rs::linalg
