#include "rs/linalg/difference_ops.hpp"

#include "rs/common/logging.hpp"

namespace rs::linalg {

std::size_t D2Rows(std::size_t t) { return t >= 2 ? t - 2 : 0; }

std::size_t DLRows(std::size_t t, std::size_t period) {
  return t > period ? t - period : 0;
}

void ApplyD2(const Vec& x, Vec* y) {
  RS_DCHECK(y != nullptr);
  const std::size_t rows = D2Rows(x.size());
  y->resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    (*y)[i] = x[i] - 2.0 * x[i + 1] + x[i + 2];
  }
}

void ApplyD2Transpose(const Vec& x, std::size_t t, Vec* y) {
  RS_DCHECK(y != nullptr && x.size() == D2Rows(t));
  y->assign(t, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    (*y)[i] += x[i];
    (*y)[i + 1] -= 2.0 * x[i];
    (*y)[i + 2] += x[i];
  }
}

void ApplyDL(const Vec& x, std::size_t period, Vec* y) {
  RS_DCHECK(y != nullptr);
  const std::size_t rows = DLRows(x.size(), period);
  y->resize(rows);
  for (std::size_t i = 0; i < rows; ++i) (*y)[i] = x[i] - x[i + period];
}

void ApplyDLTranspose(const Vec& x, std::size_t t, std::size_t period, Vec* y) {
  RS_DCHECK(y != nullptr && x.size() == DLRows(t, period));
  y->assign(t, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    (*y)[i] += x[i];
    (*y)[i + period] -= x[i];
  }
}

void AddGramD2(double weight, SymmetricBandedMatrix* a) {
  RS_DCHECK(a != nullptr && (a->size() < 3 || a->bandwidth() >= 2));
  const std::size_t t = a->size();
  // D2ᵀD2 = Σ_i d_i d_iᵀ with d_i supported on {i, i+1, i+2} and values
  // (1, -2, 1); add each rank-one term into the band.
  static constexpr double kStencil[3] = {1.0, -2.0, 1.0};
  for (std::size_t i = 0; i + 2 < t; ++i) {
    for (std::size_t p = 0; p < 3; ++p) {
      for (std::size_t q = 0; q <= p; ++q) {
        a->Add(i + p, i + q, weight * kStencil[p] * kStencil[q]);
      }
    }
  }
}

void AddGramDL(double weight, std::size_t period, SymmetricBandedMatrix* a) {
  RS_DCHECK(a != nullptr);
  const std::size_t t = a->size();
  if (period >= t) return;
  RS_DCHECK(a->bandwidth() >= period);
  // Each row of DL contributes (+1 at i, -1 at i+L): diagonal +1 at both
  // indices and -1 at offset L.
  for (std::size_t i = 0; i + period < t; ++i) {
    a->Add(i, i, weight);
    a->Add(i + period, i + period, weight);
    a->Add(i + period, i, -weight);
  }
}

}  // namespace rs::linalg
