#include "rs/linalg/banded_cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "rs/common/logging.hpp"

namespace rs::linalg {

Status BandedCholesky::Factor(const SymmetricBandedMatrix& a) {
  n_ = a.size();
  bw_ = a.bandwidth();
  l_ = a.band();
  factored_ = false;
  const std::size_t w = bw_ + 1;
  // Band Cholesky (Golub & Van Loan Alg. 4.3.5). Column j of L is derived
  // from column j of A minus contributions of earlier columns within the
  // band window.
  for (std::size_t j = 0; j < n_; ++j) {
    // Subtract contributions of columns k in [j-bw, j).
    const std::size_t kmin = (j >= bw_) ? j - bw_ : 0;
    for (std::size_t k = kmin; k < j; ++k) {
      const double ljk = l_[k * w + (j - k)];
      if (ljk == 0.0) continue;
      const std::size_t imax = std::min(n_ - 1, k + bw_);
      for (std::size_t i = j; i <= imax; ++i) {
        l_[j * w + (i - j)] -= ljk * l_[k * w + (i - k)];
      }
    }
    const double pivot = l_[j * w];
    if (!(pivot > 0.0) || !std::isfinite(pivot)) {
      return Status::NotConverged(
          "BandedCholesky: non-positive pivot at column " + std::to_string(j));
    }
    const double root = std::sqrt(pivot);
    const std::size_t dmax = std::min(bw_, n_ - 1 - j);
    l_[j * w] = root;
    for (std::size_t d = 1; d <= dmax; ++d) l_[j * w + d] /= root;
    for (std::size_t d = dmax + 1; d <= bw_; ++d) l_[j * w + d] = 0.0;
  }
  factored_ = true;
  return Status::OK();
}

Status BandedCholesky::Solve(const Vec& b, Vec* x) const {
  if (!factored_) return Status::RuntimeError("BandedCholesky: not factored");
  if (b.size() != n_ || x == nullptr) {
    return Status::Invalid("BandedCholesky: size mismatch in Solve");
  }
  const std::size_t w = bw_ + 1;
  Vec y(b);
  // Forward solve L y = b.
  for (std::size_t j = 0; j < n_; ++j) {
    y[j] /= l_[j * w];
    const std::size_t dmax = std::min(bw_, n_ - 1 - j);
    const double yj = y[j];
    for (std::size_t d = 1; d <= dmax; ++d) y[j + d] -= l_[j * w + d] * yj;
  }
  // Backward solve Lᵀ x = y.
  x->assign(n_, 0.0);
  for (std::size_t jj = n_; jj-- > 0;) {
    const std::size_t dmax = std::min(bw_, n_ - 1 - jj);
    double acc = y[jj];
    for (std::size_t d = 1; d <= dmax; ++d) acc -= l_[jj * w + d] * (*x)[jj + d];
    (*x)[jj] = acc / l_[jj * w];
  }
  return Status::OK();
}

Status BandedCholesky::FactorAndSolve(const SymmetricBandedMatrix& a,
                                      const Vec& b, Vec* x) {
  BandedCholesky chol;
  RS_RETURN_NOT_OK(chol.Factor(a));
  return chol.Solve(b, x);
}

}  // namespace rs::linalg
