#include "rs/linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "rs/common/logging.hpp"

namespace rs::linalg {

// The kernels below run inside the PCG/ADMM iteration loops, so they are
// written the way auto-vectorizers like them: trip counts hoisted into
// locals, raw-pointer indexing (no operator[] bounds plumbing), and — for
// the reductions — independent partial accumulators that break the serial
// floating-point dependence chain. Accumulation order is fixed by the code,
// never by thread count or target ISA, so results stay deterministic.

double Dot(const Vec& x, const Vec& y) {
  RS_DCHECK(x.size() == y.size());
  const std::size_t n = x.size();
  const double* px = x.data();
  const double* py = y.data();
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += px[i] * py[i];
    acc1 += px[i + 1] * py[i + 1];
    acc2 += px[i + 2] * py[i + 2];
    acc3 += px[i + 3] * py[i + 3];
  }
  double acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += px[i] * py[i];
  return acc;
}

double Norm2(const Vec& x) { return std::sqrt(Dot(x, x)); }

double NormInf(const Vec& x) {
  const std::size_t n = x.size();
  const double* px = x.data();
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(px[i]));
  return m;
}

double Norm1(const Vec& x) {
  const std::size_t n = x.size();
  const double* px = x.data();
  double acc0 = 0.0, acc1 = 0.0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc0 += std::abs(px[i]);
    acc1 += std::abs(px[i + 1]);
  }
  double acc = acc0 + acc1;
  for (; i < n; ++i) acc += std::abs(px[i]);
  return acc;
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  RS_DCHECK(y != nullptr && x.size() == y->size());
  const std::size_t n = x.size();
  const double* px = x.data();
  double* py = y->data();
  for (std::size_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

void Scale(double alpha, Vec* x) {
  RS_DCHECK(x != nullptr);
  const std::size_t n = x->size();
  double* px = x->data();
  for (std::size_t i = 0; i < n; ++i) px[i] *= alpha;
}

Vec Add(const Vec& x, const Vec& y) {
  RS_DCHECK(x.size() == y.size());
  const std::size_t n = x.size();
  Vec z(n);
  const double* px = x.data();
  const double* py = y.data();
  double* pz = z.data();
  for (std::size_t i = 0; i < n; ++i) pz[i] = px[i] + py[i];
  return z;
}

Vec Sub(const Vec& x, const Vec& y) {
  RS_DCHECK(x.size() == y.size());
  const std::size_t n = x.size();
  Vec z(n);
  const double* px = x.data();
  const double* py = y.data();
  double* pz = z.data();
  for (std::size_t i = 0; i < n; ++i) pz[i] = px[i] - py[i];
  return z;
}

Vec Exp(const Vec& x) {
  const std::size_t n = x.size();
  Vec z(n);
  const double* px = x.data();
  double* pz = z.data();
  for (std::size_t i = 0; i < n; ++i) pz[i] = std::exp(px[i]);
  return z;
}

double Sum(const Vec& x) {
  const std::size_t n = x.size();
  const double* px = x.data();
  double acc0 = 0.0, acc1 = 0.0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc0 += px[i];
    acc1 += px[i + 1];
  }
  double acc = acc0 + acc1;
  for (; i < n; ++i) acc += px[i];
  return acc;
}

}  // namespace rs::linalg
