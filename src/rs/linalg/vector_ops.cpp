#include "rs/linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "rs/common/logging.hpp"

namespace rs::linalg {

double Dot(const Vec& x, const Vec& y) {
  RS_DCHECK(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double Norm2(const Vec& x) { return std::sqrt(Dot(x, x)); }

double NormInf(const Vec& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double Norm1(const Vec& x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  RS_DCHECK(y != nullptr && x.size() == y->size());
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vec* x) {
  RS_DCHECK(x != nullptr);
  for (double& v : *x) v *= alpha;
}

Vec Add(const Vec& x, const Vec& y) {
  RS_DCHECK(x.size() == y.size());
  Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
  return z;
}

Vec Sub(const Vec& x, const Vec& y) {
  RS_DCHECK(x.size() == y.size());
  Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
  return z;
}

Vec Exp(const Vec& x) {
  Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = std::exp(x[i]);
  return z;
}

double Sum(const Vec& x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

}  // namespace rs::linalg
