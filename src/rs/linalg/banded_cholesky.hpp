/// \file banded_cholesky.hpp
/// \brief Banded Cholesky (L·Lᵀ) factorization and solve for SPD banded
///        systems — the O(T·L²) direct solver the paper relies on for the
///        ADMM r-subproblem (Section V, complexity remark).
#pragma once

#include <cstddef>

#include "rs/common/status.hpp"
#include "rs/linalg/banded_matrix.hpp"
#include "rs/linalg/vector_ops.hpp"

namespace rs::linalg {

/// \brief Cholesky factorization of a symmetric positive definite banded
///        matrix, preserving the band (no fill outside it).
///
/// Factor once, solve many right-hand sides in O(n·bw) each.
class BandedCholesky {
 public:
  BandedCholesky() = default;

  /// Computes A = L·Lᵀ. Fails with NotConverged if a non-positive pivot is
  /// encountered (A not numerically SPD).
  Status Factor(const SymmetricBandedMatrix& a);

  /// Solves A x = b using the stored factor. Factor() must have succeeded.
  Status Solve(const Vec& b, Vec* x) const;

  /// Convenience: factor + solve in one call.
  static Status FactorAndSolve(const SymmetricBandedMatrix& a, const Vec& b,
                               Vec* x);

  bool factored() const { return factored_; }
  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
  std::size_t bw_ = 0;
  std::vector<double> l_;  // Lower band of L, same layout as the input.
  bool factored_ = false;
};

}  // namespace rs::linalg
