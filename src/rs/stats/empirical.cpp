#include "rs/stats/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "rs/common/logging.hpp"

namespace rs::stats {

Result<double> Quantile(std::vector<double> values, double q) {
  return QuantileInPlace(&values, q);
}

Result<double> QuantileInPlace(std::vector<double>* values, double q) {
  if (values == nullptr || values->empty()) {
    return Status::Invalid("Quantile: empty input");
  }
  if (!(q >= 0.0) || !(q <= 1.0)) {
    return Status::Invalid("Quantile: q must lie in [0, 1]");
  }
  const std::size_t n = values->size();
  const double pos = q * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  // Select the lo-th order statistic; the hi-th is then the minimum of the
  // partition above it. Same two order statistics — and the same
  // interpolation — as sorting and indexing, at O(n) instead of O(n log n).
  const auto lo_it = values->begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(values->begin(), lo_it, values->end());
  const double v_lo = *lo_it;
  const double v_hi =
      hi == lo ? v_lo : *std::min_element(lo_it + 1, values->end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

Result<double> QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return Status::Invalid("Quantile: empty input");
  if (!(q >= 0.0) || !(q <= 1.0)) {
    return Status::Invalid("Quantile: q must lie in [0, 1]");
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  const double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(n - 1);
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  std::nth_element(values.begin(), values.begin() + mid - 1,
                   values.begin() + mid);
  return 0.5 * (values[mid - 1] + upper);
}

double MadScale(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double med = Median(std::vector<double>(values));
  std::vector<double> dev(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    dev[i] = std::abs(values[i] - med);
  }
  return 1.4826 * Median(std::move(dev));
}

double SoftThreshold(double x, double c) {
  RS_DCHECK(c >= 0.0);
  if (x > c) return x - c;
  if (x < -c) return x + c;
  return 0.0;
}

std::vector<double> SoftThreshold(const std::vector<double>& x, double c) {
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = SoftThreshold(x[i], c);
  return y;
}

double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b) {
  RS_DCHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return acc / static_cast<double>(a.size());
}

double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b) {
  RS_DCHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

std::vector<double> WindowedMeans(const std::vector<double>& values,
                                  std::size_t window) {
  std::vector<double> out;
  if (window == 0) return out;
  const std::size_t full = values.size() / window;
  out.reserve(full);
  for (std::size_t w = 0; w < full; ++w) {
    double acc = 0.0;
    for (std::size_t i = 0; i < window; ++i) acc += values[w * window + i];
    out.push_back(acc / static_cast<double>(window));
  }
  return out;
}

}  // namespace rs::stats
