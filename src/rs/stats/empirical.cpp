#include "rs/stats/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "rs/common/logging.hpp"

namespace rs::stats {

Result<double> Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

Result<double> QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return Status::Invalid("Quantile: empty input");
  if (!(q >= 0.0) || !(q <= 1.0)) {
    return Status::Invalid("Quantile: q must lie in [0, 1]");
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  const double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(n - 1);
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  std::nth_element(values.begin(), values.begin() + mid - 1,
                   values.begin() + mid);
  return 0.5 * (values[mid - 1] + upper);
}

double MadScale(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double med = Median(std::vector<double>(values));
  std::vector<double> dev(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    dev[i] = std::abs(values[i] - med);
  }
  return 1.4826 * Median(std::move(dev));
}

double SoftThreshold(double x, double c) {
  RS_DCHECK(c >= 0.0);
  if (x > c) return x - c;
  if (x < -c) return x + c;
  return 0.0;
}

std::vector<double> SoftThreshold(const std::vector<double>& x, double c) {
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = SoftThreshold(x[i], c);
  return y;
}

double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b) {
  RS_DCHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return acc / static_cast<double>(a.size());
}

double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b) {
  RS_DCHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

std::vector<double> WindowedMeans(const std::vector<double>& values,
                                  std::size_t window) {
  std::vector<double> out;
  if (window == 0) return out;
  const std::size_t full = values.size() / window;
  out.reserve(full);
  for (std::size_t w = 0; w < full; ++w) {
    double acc = 0.0;
    for (std::size_t i = 0; i < window; ++i) acc += values[w * window + i];
    out.push_back(acc / static_cast<double>(window));
  }
  return out;
}

}  // namespace rs::stats
