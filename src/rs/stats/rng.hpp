/// \file rng.hpp
/// \brief Deterministic, seedable pseudo-random generator (xoshiro256++).
///
/// All stochastic components of the library take an explicit Rng so that
/// every experiment is reproducible bit-for-bit across runs and platforms
/// (std::mt19937 distributions are not guaranteed identical across
/// standard library implementations).
#pragma once

#include <cstdint>

namespace rs::stats {

/// xoshiro256++ generator seeded via SplitMix64. Satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit output.
  result_type operator()() { return NextUint64(); }
  result_type NextUint64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in (0, 1) — never exactly 0 (safe for log()).
  double NextOpenDouble();

  /// Uniform integer in [0, n).
  std::uint64_t NextBounded(std::uint64_t n);

  /// Standard normal via Box–Muller (caches the second deviate).
  double NextGaussian();

  /// Derives an independent child generator (for parallel streams).
  /// Consumes one draw from this generator.
  Rng Split();

  /// \brief Counter-based substream derivation: the `index`-th child stream
  ///        of this generator's *current state*.
  ///
  /// Pure — never advances this generator — and deterministic: two
  /// generators in the same state derive bitwise-identical children for the
  /// same index, and distinct indices give decorrelated streams (the state
  /// is folded with golden-ratio-spaced counters through SplitMix64). This
  /// is the primitive behind the planners' fixed work blocking: block b of
  /// a round always draws from SubstreamAt(b), so the same bytes come out
  /// no matter how many threads evaluate the blocks or in what order, and a
  /// serial evaluation reproduces the parallel one bit-for-bit.
  Rng SubstreamAt(std::uint64_t index) const;

  /// \brief Complete generator position, exportable for durable snapshots.
  ///
  /// The four xoshiro256++ state words plus the Box–Muller second-deviate
  /// cache are the *entire* observable state: SubstreamAt() is a pure
  /// function of `s`, so the substream cursor needs no separate field — a
  /// restored generator derives bitwise-identical substreams.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool have_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };

  /// Exports the current position (pure; never advances the generator).
  State SaveState() const {
    State state;
    for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
    state.have_cached_gaussian = have_cached_gaussian_;
    state.cached_gaussian = cached_gaussian_;
    return state;
  }

  /// Overwrites this generator's position; the continuation is bit-for-bit
  /// identical to the generator SaveState() was called on. Accepts any
  /// state, including the all-zero degenerate one (callers restoring from
  /// untrusted snapshots are protected by the codec's CRC, not here).
  void RestoreState(const State& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
    have_cached_gaussian_ = state.have_cached_gaussian;
    cached_gaussian_ = state.cached_gaussian;
  }

 private:
  std::uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace rs::stats
