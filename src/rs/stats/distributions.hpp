/// \file distributions.hpp
/// \brief Samplers for the distributions used throughout the system:
///        exponential inter-arrivals, Gamma waiting times (time-rescaling),
///        Poisson counts, and log-normal/Weibull service/pending times.
#pragma once

#include <cstdint>

#include "rs/common/status.hpp"
#include "rs/stats/rng.hpp"

namespace rs::stats {

/// Sample from Exponential(rate) — mean 1/rate. rate must be > 0.
double SampleExponential(Rng* rng, double rate);

/// Sample from Gamma(shape, scale), shape > 0, scale > 0.
/// Marsaglia–Tsang squeeze for shape >= 1, boosted for shape < 1.
double SampleGamma(Rng* rng, double shape, double scale);

/// Sample from Poisson(mean), mean >= 0. Knuth multiplication for small
/// means; PTRS transformed rejection (Hörmann) for mean >= 10.
std::int64_t SamplePoisson(Rng* rng, double mean);

/// Sample from LogNormal with given log-space mu and sigma.
double SampleLogNormal(Rng* rng, double mu, double sigma);

/// Sample from Uniform(lo, hi).
double SampleUniform(Rng* rng, double lo, double hi);

/// Sample from Weibull(shape, scale).
double SampleWeibull(Rng* rng, double shape, double scale);

/// \brief Distribution of a non-negative duration (processing time s_i or
///        instance pending/startup time τ_i).
///
/// The paper's experiments use deterministic pending times (13 s) and
/// exponential processing times (mean 20 s); the simulator accepts any of
/// these shapes.
class DurationDistribution {
 public:
  enum class Kind { kDeterministic, kExponential, kLogNormal, kWeibull, kUniform };

  /// Point mass at `value` seconds.
  static DurationDistribution Deterministic(double value);
  /// Exponential with the given mean.
  static DurationDistribution Exponential(double mean);
  /// LogNormal parameterized by its mean and coefficient of variation.
  static DurationDistribution LogNormal(double mean, double cv);
  /// Weibull(shape, scale).
  static DurationDistribution Weibull(double shape, double scale);
  /// Uniform(lo, hi), 0 <= lo <= hi.
  static DurationDistribution Uniform(double lo, double hi);

  /// Draws one duration (always >= 0).
  double Sample(Rng* rng) const;

  /// Expected value E[X].
  double Mean() const;

  Kind kind() const { return kind_; }

 private:
  DurationDistribution(Kind kind, double p1, double p2)
      : kind_(kind), p1_(p1), p2_(p2) {}
  Kind kind_;
  double p1_;
  double p2_;
};

}  // namespace rs::stats
