/// \file distributions.hpp
/// \brief Samplers for the distributions used throughout the system:
///        exponential inter-arrivals, Gamma waiting times (time-rescaling),
///        Poisson counts, and log-normal/Weibull service/pending times.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rs/common/status.hpp"
#include "rs/stats/rng.hpp"

namespace rs::stats {

/// Sample from Exponential(rate) — mean 1/rate. rate must be > 0.
double SampleExponential(Rng* rng, double rate);

/// Sample from Gamma(shape, scale), shape > 0, scale > 0.
/// Marsaglia–Tsang squeeze for shape >= 1, boosted for shape < 1.
double SampleGamma(Rng* rng, double shape, double scale);

/// Fills out[0..n) with Exponential(rate) draws. Draw order — and therefore
/// every value and the generator state afterwards — is identical to calling
/// SampleExponential n times in index order; the bulk form exists so hot
/// loops fill a whole Monte Carlo path set in one tight call.
void SampleExponentialFill(Rng* rng, double rate, double* out, std::size_t n);

/// Exponential(rate) via a 256-layer ziggurat (Marsaglia–Tsang): exactly
/// exponential, ~3× cheaper per draw than the log-based inverse CDF (one
/// uint64 + one multiply on the ~98.9% fast path). The draw sequence
/// differs from SampleExponential — callers that need a specific stream
/// layout (the planners' Monte Carlo paths) must pick one sampler and use
/// it on every code path they compare.
double SampleExponentialZiggurat(Rng* rng, double rate);

/// Bulk ziggurat draws, bitwise identical (values and generator state) to n
/// scalar calls. Internally restructured into branch-free 8-wide blocks
/// with a scalar tail: a block speculates 8 raw draws, vectorizes the strip
/// lookups and fast-path products, and rolls the generator back to rerun
/// scalar on the ~9% of blocks where any lane needs the slow path.
void SampleExponentialZigguratFill(Rng* rng, double rate, double* out,
                                   std::size_t n);

/// Fills out[0..n) with Gamma(shape, scale) draws, in the same draw order as
/// n scalar SampleGamma calls.
void SampleGammaFill(Rng* rng, double shape, double scale, double* out,
                     std::size_t n);

/// Sample from Poisson(mean), mean >= 0. Knuth multiplication for small
/// means; PTRS transformed rejection (Hörmann) for mean >= 10.
std::int64_t SamplePoisson(Rng* rng, double mean);

/// Sample from LogNormal with given log-space mu and sigma.
double SampleLogNormal(Rng* rng, double mu, double sigma);

/// Sample from Uniform(lo, hi).
double SampleUniform(Rng* rng, double lo, double hi);

/// Sample from Weibull(shape, scale).
double SampleWeibull(Rng* rng, double shape, double scale);

/// \brief Distribution of a non-negative duration (processing time s_i or
///        instance pending/startup time τ_i).
///
/// The paper's experiments use deterministic pending times (13 s) and
/// exponential processing times (mean 20 s); the simulator accepts any of
/// these shapes.
class DurationDistribution {
 public:
  enum class Kind { kDeterministic, kExponential, kLogNormal, kWeibull, kUniform };

  /// Point mass at `value` seconds.
  static DurationDistribution Deterministic(double value);
  /// Exponential with the given mean.
  static DurationDistribution Exponential(double mean);
  /// LogNormal parameterized by its mean and coefficient of variation.
  static DurationDistribution LogNormal(double mean, double cv);
  /// Weibull(shape, scale).
  static DurationDistribution Weibull(double shape, double scale);
  /// Uniform(lo, hi), 0 <= lo <= hi.
  static DurationDistribution Uniform(double lo, double hi);

  /// \brief Reconstructs a distribution from its internal (kind, p1, p2)
  ///        representation, validating the parameters.
  ///
  /// Snapshot round-trips must be exact: the public LogNormal(mean, cv)
  /// factory converts to log-space (mu, sigma), so re-deriving mean/cv and
  /// feeding them back through it would lose bits. This factory takes the
  /// raw fields from param1()/param2() instead and restores the identical
  /// sampler. Returns Invalid for out-of-domain parameters or an unknown
  /// kind byte (corrupt snapshots must fail cleanly, not abort).
  static Result<DurationDistribution> FromRawParams(std::uint8_t kind,
                                                    double p1, double p2);

  /// Draws one duration (always >= 0).
  double Sample(Rng* rng) const;

  /// Expected value E[X].
  double Mean() const;

  Kind kind() const { return kind_; }

  /// Raw internal parameters, for exact serialization via FromRawParams().
  /// Their meaning depends on kind(): e.g. (value, unused) for
  /// deterministic, (mu, sigma) for log-normal.
  double param1() const { return p1_; }
  double param2() const { return p2_; }

 private:
  DurationDistribution(Kind kind, double p1, double p2)
      : kind_(kind), p1_(p1), p2_(p2) {}
  Kind kind_;
  double p1_;
  double p2_;
};

}  // namespace rs::stats
