/// \file special_functions.hpp
/// \brief Gamma-distribution special functions needed by the κ threshold
///        (Eq. 8), the QoS guarantee analysis (Propositions 1–2), and the
///        time-rescaling arrival predictor.
#pragma once

#include "rs/common/status.hpp"

namespace rs::stats {

/// ln Γ(x), bitwise-equal to std::lgamma but thread-safe: glibc's lgamma
/// writes the process-global `signgam`, so concurrent planning ticks (fleet
/// worker pool, background retrains) must route through the reentrant
/// variant instead.
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0, x >= 0.
/// Series expansion for x < a + 1, continued fraction otherwise
/// (Numerical Recipes gammp).
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// CDF of Gamma(shape, scale) at x: P(shape, x / scale).
double GammaCdf(double shape, double scale, double x);

/// Quantile (inverse CDF) of Gamma(shape, scale) at probability p in (0, 1).
/// Wilson–Hilferty initial guess refined by Newton + bisection safeguard.
Result<double> GammaQuantile(double shape, double scale, double p);

/// Standard normal CDF.
double NormalCdf(double x);

/// Standard normal quantile (Acklam's rational approximation, |err| < 1e-9).
Result<double> NormalQuantile(double p);

/// Poisson CDF: P(N <= k) for N ~ Poisson(mean); equals Q(k+1, mean).
double PoissonCdf(int k, double mean);

}  // namespace rs::stats
