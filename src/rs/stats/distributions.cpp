#include "rs/stats/distributions.hpp"

#include <cmath>

#include "rs/common/logging.hpp"
#include "rs/stats/special_functions.hpp"

namespace rs::stats {

double SampleExponential(Rng* rng, double rate) {
  RS_DCHECK(rng != nullptr && rate > 0.0);
  return -std::log(rng->NextOpenDouble()) / rate;
}

double SampleGamma(Rng* rng, double shape, double scale) {
  RS_DCHECK(rng != nullptr && shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
    const double u = rng->NextOpenDouble();
    return SampleGamma(rng, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng->NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->NextOpenDouble();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return scale * d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

void SampleExponentialFill(Rng* rng, double rate, double* out, std::size_t n) {
  RS_DCHECK(rng != nullptr && rate > 0.0 && (out != nullptr || n == 0));
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = -std::log(rng->NextOpenDouble()) / rate;
  }
}

void SampleGammaFill(Rng* rng, double shape, double scale, double* out,
                     std::size_t n) {
  RS_DCHECK(rng != nullptr && (out != nullptr || n == 0));
  for (std::size_t i = 0; i < n; ++i) out[i] = SampleGamma(rng, shape, scale);
}

namespace {

/// Marsaglia–Tsang 256-layer ziggurat tables for the unit exponential.
/// Strip idx (1..255) is the rectangle [0, X[idx]] × [e^−X[idx], e^−X[idx+1]],
/// each of area kZigV; strip 0 is the base rectangle [0, r] × [0, e^−r] plus
/// the tail x > r, whose combined area is also kZigV (that equation defines
/// r). X[0] is the virtual base width kZigV / e^−r used to split strip-0
/// draws between rectangle and tail.
constexpr double kZigR = 7.69711747013104972;
constexpr double kZigV = 3.9496598225815571993e-3;

struct ExpZigguratTables {
  double x[257];
  double fe[257];          ///< e^−X[idx]; fe[256] = 1.
  double w[256];           ///< X[idx] · 2⁻⁵³.
  std::uint64_t k[256];    ///< 53-bit fast-accept thresholds.

  ExpZigguratTables() {
    x[1] = kZigR;
    for (int i = 1; i < 255; ++i) {
      x[i + 1] = -std::log(std::exp(-x[i]) + kZigV / x[i]);
    }
    x[256] = 0.0;
    x[0] = kZigV / std::exp(-kZigR);
    for (int i = 0; i <= 256; ++i) fe[i] = std::exp(-x[i]);
    constexpr double kTwo53 = 9007199254740992.0;
    for (int i = 0; i < 256; ++i) {
      w[i] = x[i] / kTwo53;
      k[i] = static_cast<std::uint64_t>(x[i + 1] / x[i] * kTwo53);
    }
    // Strip 0 fast-accepts inside the base rectangle (x < r).
    k[0] = static_cast<std::uint64_t>(kZigR / x[0] * kTwo53);
  }
};

const ExpZigguratTables& ZigTables() {
  static const ExpZigguratTables tables;
  return tables;
}

double SampleUnitExponentialZiggurat(Rng* rng) {
  const ExpZigguratTables& t = ZigTables();
  for (;;) {
    const std::uint64_t bits = rng->NextUint64();
    const std::uint64_t idx = bits & 255;     // Bits 0..7: strip index.
    const std::uint64_t y = bits >> 11;       // Bits 11..63: 53-bit uniform.
    const double x = static_cast<double>(y) * t.w[idx];
    if (y < t.k[idx]) return x;
    if (idx == 0) {
      if (x < kZigR) return x;
      // Tail: memorylessness restarts the exponential at r.
      return kZigR - std::log(rng->NextOpenDouble());
    }
    const double f_x = std::exp(-x);
    if (rng->NextDouble() * (t.fe[idx + 1] - t.fe[idx]) + t.fe[idx] < f_x) {
      return x;
    }
  }
}

}  // namespace

double SampleExponentialZiggurat(Rng* rng, double rate) {
  RS_DCHECK(rng != nullptr && rate > 0.0);
  return SampleUnitExponentialZiggurat(rng) / rate;
}

void SampleExponentialZigguratFill(Rng* rng, double rate, double* out,
                                   std::size_t n) {
  RS_DCHECK(rng != nullptr && rate > 0.0 && (out != nullptr || n == 0));
  const ExpZigguratTables& t = ZigTables();
  // Blocked form of the scalar loop: speculate 8 draws at once, compute all
  // 8 strip lookups and fast-path values branch-free (the compiler turns
  // the fixed-width lanes into SIMD gathers/multiplies), and commit the
  // whole block iff every lane fast-accepts — true for ~91% of blocks
  // (0.989^8). Otherwise the generator state is rolled back to the saved
  // copy and the block reruns through the scalar sampler, so every value
  // and the generator state afterwards are bitwise identical to n scalar
  // calls no matter which path each block took.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Rng speculated = *rng;
    std::uint64_t y[8];
    double w[8];
    std::uint64_t accept[8];
    for (int j = 0; j < 8; ++j) {
      const std::uint64_t bits = rng->NextUint64();
      const std::uint64_t idx = bits & 255;  // Bits 0..7: strip index.
      y[j] = bits >> 11;                     // Bits 11..63: 53-bit uniform.
      w[j] = t.w[idx];
      accept[j] = y[j] < t.k[idx] ? 1 : 0;
    }
    std::uint64_t all_fast = 1;
    for (int j = 0; j < 8; ++j) all_fast &= accept[j];
    if (all_fast) {
      for (int j = 0; j < 8; ++j) {
        out[i + j] = static_cast<double>(y[j]) * w[j] / rate;
      }
    } else {
      *rng = speculated;
      for (int j = 0; j < 8; ++j) {
        out[i + j] = SampleUnitExponentialZiggurat(rng) / rate;
      }
    }
  }
  for (; i < n; ++i) out[i] = SampleUnitExponentialZiggurat(rng) / rate;
}

namespace {

/// PTRS transformed-rejection Poisson sampler (Hörmann 1993) for mean >= 10.
std::int64_t SamplePoissonPtrs(Rng* rng, double mean) {
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double vr = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = rng->NextDouble() - 0.5;
    const double v = rng->NextOpenDouble();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= vr) return static_cast<std::int64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * std::log(mean) - mean - LogGamma(k + 1.0)) {
      return static_cast<std::int64_t>(k);
    }
  }
}

}  // namespace

std::int64_t SamplePoisson(Rng* rng, double mean) {
  RS_DCHECK(rng != nullptr && mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 10.0) {
    // Knuth multiplication method.
    const double limit = std::exp(-mean);
    double prod = rng->NextOpenDouble();
    std::int64_t n = 0;
    while (prod > limit) {
      prod *= rng->NextOpenDouble();
      ++n;
    }
    return n;
  }
  return SamplePoissonPtrs(rng, mean);
}

double SampleLogNormal(Rng* rng, double mu, double sigma) {
  RS_DCHECK(rng != nullptr && sigma >= 0.0);
  return std::exp(mu + sigma * rng->NextGaussian());
}

double SampleUniform(Rng* rng, double lo, double hi) {
  RS_DCHECK(rng != nullptr && lo <= hi);
  return lo + (hi - lo) * rng->NextDouble();
}

double SampleWeibull(Rng* rng, double shape, double scale) {
  RS_DCHECK(rng != nullptr && shape > 0.0 && scale > 0.0);
  return scale * std::pow(-std::log(rng->NextOpenDouble()), 1.0 / shape);
}

DurationDistribution DurationDistribution::Deterministic(double value) {
  RS_CHECK(value >= 0.0) << "duration must be non-negative";
  return DurationDistribution(Kind::kDeterministic, value, 0.0);
}

DurationDistribution DurationDistribution::Exponential(double mean) {
  RS_CHECK(mean > 0.0) << "exponential mean must be positive";
  return DurationDistribution(Kind::kExponential, mean, 0.0);
}

DurationDistribution DurationDistribution::LogNormal(double mean, double cv) {
  RS_CHECK(mean > 0.0 && cv >= 0.0) << "lognormal mean > 0, cv >= 0 required";
  // mean = exp(mu + sigma^2/2); cv^2 = exp(sigma^2) - 1.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return DurationDistribution(Kind::kLogNormal, mu, std::sqrt(sigma2));
}

DurationDistribution DurationDistribution::Weibull(double shape, double scale) {
  RS_CHECK(shape > 0.0 && scale > 0.0) << "weibull parameters must be positive";
  return DurationDistribution(Kind::kWeibull, shape, scale);
}

DurationDistribution DurationDistribution::Uniform(double lo, double hi) {
  RS_CHECK(lo >= 0.0 && lo <= hi) << "uniform requires 0 <= lo <= hi";
  return DurationDistribution(Kind::kUniform, lo, hi);
}

Result<DurationDistribution> DurationDistribution::FromRawParams(
    std::uint8_t kind, double p1, double p2) {
  const auto make = [&](Kind k) { return DurationDistribution(k, p1, p2); };
  switch (static_cast<Kind>(kind)) {
    case Kind::kDeterministic:
      if (!(p1 >= 0.0)) {
        return Status::Invalid("deterministic duration must be >= 0");
      }
      return make(Kind::kDeterministic);
    case Kind::kExponential:
      if (!(p1 > 0.0)) {
        return Status::Invalid("exponential mean must be positive");
      }
      return make(Kind::kExponential);
    case Kind::kLogNormal:
      if (!(std::isfinite(p1) && p2 >= 0.0)) {
        return Status::Invalid("lognormal requires finite mu and sigma >= 0");
      }
      return make(Kind::kLogNormal);
    case Kind::kWeibull:
      if (!(p1 > 0.0 && p2 > 0.0)) {
        return Status::Invalid("weibull parameters must be positive");
      }
      return make(Kind::kWeibull);
    case Kind::kUniform:
      if (!(p1 >= 0.0 && p1 <= p2)) {
        return Status::Invalid("uniform requires 0 <= lo <= hi");
      }
      return make(Kind::kUniform);
  }
  return Status::Invalid("unknown duration distribution kind byte " +
                         std::to_string(static_cast<unsigned>(kind)));
}

double DurationDistribution::Sample(Rng* rng) const {
  switch (kind_) {
    case Kind::kDeterministic:
      return p1_;
    case Kind::kExponential:
      return SampleExponential(rng, 1.0 / p1_);
    case Kind::kLogNormal:
      return SampleLogNormal(rng, p1_, p2_);
    case Kind::kWeibull:
      return SampleWeibull(rng, p1_, p2_);
    case Kind::kUniform:
      return SampleUniform(rng, p1_, p2_);
  }
  return 0.0;
}

double DurationDistribution::Mean() const {
  switch (kind_) {
    case Kind::kDeterministic:
    case Kind::kExponential:
      return p1_;
    case Kind::kLogNormal:
      return std::exp(p1_ + 0.5 * p2_ * p2_);
    case Kind::kWeibull:
      return p2_ * std::tgamma(1.0 + 1.0 / p1_);
    case Kind::kUniform:
      return 0.5 * (p1_ + p2_);
  }
  return 0.0;
}

}  // namespace rs::stats
