#include "rs/stats/special_functions.hpp"

#include <math.h>

#include <cmath>
#include <limits>
#include <string>

namespace rs::stats {

namespace {

// The series for P(a, x) near x ≈ a needs ~sqrt(72·a) terms, so this cap
// keeps the evaluation exact for shapes up to ~5·10⁶ (the κ threshold for
// QPS ~10⁵ workloads reaches shapes in the 10⁶ range). Each term is one
// multiply-divide, so even the worst case stays ~100 µs.
constexpr int kMaxIterations = 20000;
constexpr double kEpsilon = 3.0e-15;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEpsilon;

/// Lower incomplete gamma by power series (converges fast for x < a + 1).
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

/// Upper incomplete gamma by Lentz continued fraction (for x >= a + 1).
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__unix__) || defined(__APPLE__)
  // POSIX reentrant variant: same result, no write to the global signgam.
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double RegularizedGammaP(double a, double x) {
  if (!(a > 0.0) || x < 0.0 || !std::isfinite(a)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x == 0.0) return 0.0;
  if (!std::isfinite(x)) return 1.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  if (!(a > 0.0) || x < 0.0 || !std::isfinite(a)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x == 0.0) return 1.0;
  if (!std::isfinite(x)) return 0.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double GammaCdf(double shape, double scale, double x) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(shape, x / scale);
}

Result<double> GammaQuantile(double shape, double scale, double p) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    return Status::Invalid("GammaQuantile: shape/scale must be positive");
  }
  if (!(p > 0.0) || !(p < 1.0)) {
    return Status::Invalid("GammaQuantile: p must lie in (0, 1), got " +
                           std::to_string(p));
  }
  // Wilson–Hilferty: Gamma(a) quantile ≈ a (1 - 1/(9a) + z sqrt(1/(9a)))^3.
  RS_ASSIGN_OR_RETURN(const double z, NormalQuantile(p));
  const double a = shape;
  double x = a * std::pow(1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a)), 3.0);
  if (!(x > 0.0)) x = a * p;  // Fallback for tiny shapes.

  // Bracket [lo, hi] with P(a, lo) <= p <= P(a, hi).
  double lo = x, hi = x;
  while (RegularizedGammaP(a, lo) > p && lo > 1e-300) lo *= 0.5;
  while (RegularizedGammaP(a, hi) < p && hi < 1e300) hi *= 2.0;

  // Newton with bisection safeguard on F(x) - p = 0; F' is the gamma pdf.
  for (int iter = 0; iter < 200; ++iter) {
    const double f = RegularizedGammaP(a, x) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    const double log_pdf = (a - 1.0) * std::log(x) - x - LogGamma(a);
    const double pdf = std::exp(log_pdf);
    double next = x;
    if (pdf > 0.0 && std::isfinite(pdf)) next = x - f / pdf;
    if (!(next > lo) || !(next < hi)) next = 0.5 * (lo + hi);
    if (std::abs(next - x) <= 1e-12 * (1.0 + std::abs(x))) {
      x = next;
      break;
    }
    x = next;
  }
  return x * scale;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

Result<double> NormalQuantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    return Status::Invalid("NormalQuantile: p must lie in (0, 1)");
  }
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double PoissonCdf(int k, double mean) {
  if (k < 0) return 0.0;
  if (mean <= 0.0) return 1.0;
  return RegularizedGammaQ(static_cast<double>(k) + 1.0, mean);
}

}  // namespace rs::stats
