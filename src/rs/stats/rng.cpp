#include "rs/stats/rng.hpp"

#include <cmath>

namespace rs::stats {

namespace {
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextOpenDouble() {
  // (x + 0.5) / 2^53 lies strictly inside (0, 1).
  return (static_cast<double>(NextUint64() >> 11) + 0.5) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  const double u1 = NextOpenDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = mag * std::sin(angle);
  have_cached_gaussian_ = true;
  return mag * std::cos(angle);
}

Rng Rng::Split() { return Rng(NextUint64() ^ 0xA5A5A5A5A5A5A5A5ULL); }

Rng Rng::SubstreamAt(std::uint64_t index) const {
  // Fold the full 256-bit state (rotations keep the words from cancelling)
  // with a golden-ratio-spaced counter, then reseed through the same
  // SplitMix64 expansion the seeded constructor uses. `index + 1` keeps
  // substream 0 distinct from the parent's own reseeding of this state.
  std::uint64_t sm =
      s_[0] ^ Rotl(s_[1], 13) ^ Rotl(s_[2], 29) ^ Rotl(s_[3], 43);
  sm ^= (index + 1) * 0x9E3779B97F4A7C15ULL;
  Rng child(0);
  for (auto& word : child.s_) word = SplitMix64(&sm);
  child.have_cached_gaussian_ = false;
  child.cached_gaussian_ = 0.0;
  return child;
}

}  // namespace rs::stats
