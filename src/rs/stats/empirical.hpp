/// \file empirical.hpp
/// \brief Empirical statistics: sample quantiles (used by the HP decision
///        rule, Eq. 3), moments, robust location/scale, soft-thresholding
///        (the ADMM y-update).
#pragma once

#include <cstddef>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::stats {

/// Linearly-interpolated sample quantile (type-7, as in NumPy default).
/// `q` in [0, 1]. The input need not be sorted. Selection-based
/// (std::nth_element, O(n) expected) rather than a full sort — it returns
/// the exact same value a sort + QuantileSorted would, since only the two
/// order statistics adjacent to the interpolation point matter.
Result<double> Quantile(std::vector<double> values, double q);

/// Same, reordering `*values` in place instead of copying (the hot-loop
/// form: callers reuse their scratch buffer across calls). The element
/// order afterwards is unspecified.
Result<double> QuantileInPlace(std::vector<double>* values, double q);

/// Quantile of an already ascending-sorted range (no copy).
Result<double> QuantileSorted(const std::vector<double>& sorted, double q);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double Variance(const std::vector<double>& values);

/// Median (copies and partially sorts).
double Median(std::vector<double> values);

/// Median absolute deviation scaled by 1.4826 (consistent for Gaussians).
double MadScale(const std::vector<double>& values);

/// Soft-thresholding operator sign(x)·max(|x|−c, 0) — the proximal map of
/// c·||·||₁ used in line 3 of the paper's ADMM (Algorithm 2).
double SoftThreshold(double x, double c);

/// Element-wise soft-threshold.
std::vector<double> SoftThreshold(const std::vector<double>& x, double c);

/// Mean squared error between two equal-length series.
double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Mean absolute error between two equal-length series.
double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Means of consecutive windows of `window` elements (the Fig. 5
/// construction: average response times of every 50 queries). The final
/// partial window is dropped.
std::vector<double> WindowedMeans(const std::vector<double>& values,
                                  std::size_t window);

}  // namespace rs::stats
