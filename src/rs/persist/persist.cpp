#include "rs/persist/persist.hpp"

#include <array>
#include <bit>
#include <iterator>
#include <sstream>
#include <utility>

#include "rs/common/logging.hpp"

namespace rs::persist {

namespace {

constexpr std::size_t kHeaderBytes = 8;   // magic + format version.
constexpr std::size_t kTrailerBytes = 4;  // CRC32.
constexpr std::size_t kSectionHeaderBytes = 12;  // tag (u32) + length (u64).

/// Builds a Status message from heterogeneous pieces (the Status factories
/// take a single string).
template <typename... Args>
std::string Cat(Args&&... args) {
  std::ostringstream msg;
  (msg << ... << args);
  return msg.str();
}

void AppendLe(std::string* buffer, std::uint64_t value, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    buffer->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void PatchLe64(std::string* buffer, std::size_t offset, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    (*buffer)[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
  }
}

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::string TagToString(std::uint32_t tag) {
  std::string out;
  out.reserve(6);
  out.push_back('\'');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFFu);
    out.push_back((c >= 0x20 && c < 0x7F) ? c : '?');
  }
  out.push_back('\'');
  return out;
}

std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

Writer::Writer() {
  AppendLe(&buffer_, kMagic, 4);
  AppendLe(&buffer_, kFormatVersion, 4);
}

void Writer::WriteU8(std::uint8_t value) { AppendLe(&buffer_, value, 1); }

void Writer::WriteBool(bool value) { WriteU8(value ? 1 : 0); }

void Writer::WriteU32(std::uint32_t value) { AppendLe(&buffer_, value, 4); }

void Writer::WriteU64(std::uint64_t value) { AppendLe(&buffer_, value, 8); }

void Writer::WriteDouble(double value) {
  WriteU64(std::bit_cast<std::uint64_t>(value));
}

void Writer::WriteString(std::string_view value) {
  WriteU64(value.size());
  buffer_.append(value.data(), value.size());
}

void Writer::WriteDoubleVector(const std::vector<double>& values) {
  WriteU64(values.size());
  for (const double v : values) WriteDouble(v);
}

void Writer::WriteU64Vector(const std::vector<std::uint64_t>& values) {
  WriteU64(values.size());
  for (const std::uint64_t v : values) WriteU64(v);
}

void Writer::BeginSection(std::uint32_t tag) {
  WriteU32(tag);
  open_.push_back(buffer_.size());
  WriteU64(0);  // Length placeholder, backpatched by EndSection().
}

void Writer::EndSection() {
  RS_CHECK(!open_.empty()) << "EndSection() without a matching BeginSection()";
  const std::size_t length_offset = open_.back();
  open_.pop_back();
  PatchLe64(&buffer_, length_offset, buffer_.size() - (length_offset + 8));
}

Status Writer::Finish(std::ostream& out) {
  RS_CHECK(open_.empty()) << "Finish() with an unclosed section";
  const std::uint32_t crc = Crc32(buffer_.data(), buffer_.size());
  std::string trailer;
  AppendLe(&trailer, crc, 4);
  out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out.flush();
  if (!out.good()) {
    return Status::IoError(Cat("failed to write snapshot (",
                               buffer_.size() + kTrailerBytes,
                               " bytes) to output stream"));
  }
  return Status::OK();
}

Result<Reader> Reader::FromStream(std::istream& in) {
  std::string bytes(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>{});
  if (in.bad()) {
    return Status::IoError("failed to read snapshot from input stream");
  }
  return FromBytes(std::move(bytes));
}

Result<Reader> Reader::FromBytes(std::string bytes) {
  if (bytes.empty()) {
    // Zero bytes is its own failure mode (an empty file from `touch`, a
    // crash before any write, a truncated-to-nothing journal segment);
    // name it instead of folding it into the generic truncation message.
    return Status::Invalid(
        "snapshot is empty (0 bytes): no header, no payload, no CRC — "
        "the file was never written or was truncated to nothing");
  }
  if (bytes.size() < kHeaderBytes + kTrailerBytes) {
    return Status::Invalid(Cat("snapshot truncated: ", bytes.size(),
                               " bytes is smaller than the ",
                               kHeaderBytes + kTrailerBytes,
                               "-byte header + CRC trailer"));
  }
  Reader reader;
  reader.bytes_ = std::move(bytes);
  reader.payload_end_ = reader.bytes_.size() - kTrailerBytes;
  reader.cursor_ = 0;
  const auto read_u32 = [&reader](std::size_t offset) {
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(reader.bytes_[offset + i]))
               << (8 * i);
    }
    return value;
  };
  const std::uint32_t magic = read_u32(0);
  if (magic != kMagic) {
    return Status::Invalid(
        Cat("not a RobustScaler snapshot: bad magic 0x", std::hex, magic,
            " (expected \"RSNP\"); the file is corrupt or of a different "
            "format"));
  }
  reader.version_ = read_u32(4);
  if (reader.version_ == 0 || reader.version_ > kFormatVersion) {
    return Status::Invalid(
        Cat("unsupported snapshot format version ", reader.version_,
            " (this build reads versions 1..", kFormatVersion,
            "); the snapshot was written by a newer rs::persist — upgrade "
            "the reader instead of discarding the snapshot"));
  }
  const std::uint32_t stored_crc = read_u32(reader.payload_end_);
  const std::uint32_t actual_crc =
      Crc32(reader.bytes_.data(), reader.payload_end_);
  if (stored_crc != actual_crc) {
    return Status::Invalid(Cat("snapshot CRC mismatch (stored 0x", std::hex,
                               stored_crc, ", computed 0x", actual_crc,
                               "): the file was truncated or corrupted in "
                               "transit"));
  }
  reader.cursor_ = kHeaderBytes;
  return reader;
}

Result<std::uint64_t> Reader::ReadRaw(std::size_t width) {
  if (limit() - cursor_ < width) {
    return Status::Invalid(Cat("snapshot section underflow: need ", width,
                               " bytes but only ", limit() - cursor_,
                               " remain before the section boundary"));
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[cursor_ + i]))
             << (8 * i);
  }
  cursor_ += width;
  return value;
}

Result<std::uint8_t> Reader::ReadU8() {
  RS_ASSIGN_OR_RETURN(const std::uint64_t raw, ReadRaw(1));
  return static_cast<std::uint8_t>(raw);
}

Result<bool> Reader::ReadBool() {
  RS_ASSIGN_OR_RETURN(const std::uint64_t raw, ReadRaw(1));
  if (raw > 1) {
    return Status::Invalid(
        Cat("corrupt boolean in snapshot (byte value ", raw, ")"));
  }
  return raw == 1;
}

Result<std::uint32_t> Reader::ReadU32() {
  RS_ASSIGN_OR_RETURN(const std::uint64_t raw, ReadRaw(4));
  return static_cast<std::uint32_t>(raw);
}

Result<std::uint64_t> Reader::ReadU64() { return ReadRaw(8); }

Result<double> Reader::ReadDouble() {
  RS_ASSIGN_OR_RETURN(const std::uint64_t raw, ReadRaw(8));
  return std::bit_cast<double>(raw);
}

Result<std::string> Reader::ReadString() {
  RS_ASSIGN_OR_RETURN(const std::uint64_t length, ReadU64());
  if (length > limit() - cursor_) {
    return Status::Invalid(Cat("corrupt string length in snapshot: ", length,
                               " bytes claimed but only ", limit() - cursor_,
                               " remain in the section"));
  }
  std::string out = bytes_.substr(cursor_, length);
  cursor_ += length;
  return out;
}

Status Reader::ReadDoubleVector(std::vector<double>* out) {
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, ReadU64());
  if (count > (limit() - cursor_) / 8) {
    return Status::Invalid(Cat("corrupt vector length in snapshot: ", count,
                               " doubles claimed but only ",
                               limit() - cursor_,
                               " bytes remain in the section"));
  }
  out->clear();
  out->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RS_ASSIGN_OR_RETURN(const double value, ReadDouble());
    out->push_back(value);
  }
  return Status::OK();
}

Status Reader::ReadU64Vector(std::vector<std::uint64_t>* out) {
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, ReadU64());
  if (count > (limit() - cursor_) / 8) {
    return Status::Invalid(Cat("corrupt vector length in snapshot: ", count,
                               " words claimed but only ", limit() - cursor_,
                               " bytes remain in the section"));
  }
  out->clear();
  out->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RS_ASSIGN_OR_RETURN(const std::uint64_t value, ReadU64());
    out->push_back(value);
  }
  return Status::OK();
}

Result<std::uint32_t> Reader::PeekSectionTag() const {
  if (limit() - cursor_ < kSectionHeaderBytes) {
    return Status::Invalid(
        Cat("snapshot ends where a section header was expected (",
            remaining(), " bytes remain)"));
  }
  std::uint32_t tag = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    tag |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[cursor_ + i]))
           << (8 * i);
  }
  return tag;
}

Status Reader::EnterSection(std::uint32_t expected) {
  RS_ASSIGN_OR_RETURN(const std::uint32_t tag, ReadU32());
  if (tag != expected) {
    return Status::Invalid(
        Cat("snapshot section mismatch: expected ", TagToString(expected),
            " but found ", TagToString(tag),
            " — the file is corrupt or from an incompatible layer layout"));
  }
  RS_ASSIGN_OR_RETURN(const std::uint64_t length, ReadU64());
  if (length > limit() - cursor_) {
    return Status::Invalid(Cat("corrupt section length for ",
                               TagToString(tag), ": ", length,
                               " bytes claimed but only ", limit() - cursor_,
                               " remain"));
  }
  ends_.push_back(cursor_ + length);
  return Status::OK();
}

Status Reader::ExitSection() {
  if (ends_.empty()) {
    return Status::Invalid("ExitSection() without an open snapshot section");
  }
  cursor_ = ends_.back();
  ends_.pop_back();
  return Status::OK();
}

Status Reader::SkipSection() {
  RS_ASSIGN_OR_RETURN(const std::uint32_t tag, PeekSectionTag());
  RS_RETURN_NOT_OK(EnterSection(tag));
  return ExitSection();
}

void WriteRngState(Writer* writer, const stats::Rng& rng) {
  const stats::Rng::State state = rng.SaveState();
  for (const std::uint64_t word : state.s) writer->WriteU64(word);
  writer->WriteBool(state.have_cached_gaussian);
  writer->WriteDouble(state.cached_gaussian);
}

Status ReadRngState(Reader* reader, stats::Rng* rng) {
  stats::Rng::State state;
  for (std::uint64_t& word : state.s) {
    RS_ASSIGN_OR_RETURN(word, reader->ReadU64());
  }
  RS_ASSIGN_OR_RETURN(state.have_cached_gaussian, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(state.cached_gaussian, reader->ReadDouble());
  rng->RestoreState(state);
  return Status::OK();
}

}  // namespace rs::persist
