#include "rs/persist/atomic_file.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "rs/fault/fault.hpp"

namespace rs::persist {

namespace {

Status WriteAttempt(const std::string& path, const std::string& tmp,
                    const std::string& bytes) {
  // Direct Hit() calls rather than RS_FAULT_POINT: the macro would return
  // out of the retry loop's caller; here the injected error must feed the
  // retry logic exactly like a real short write / failed rename.
  RS_RETURN_NOT_OK(rs::fault::Hit("persist.write"));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("AtomicWriteFile: cannot open temp file " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      return Status::IoError("AtomicWriteFile: short write to " + tmp);
    }
  }
  RS_RETURN_NOT_OK(rs::fault::Hit("persist.rename"));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("AtomicWriteFile: rename " + tmp + " -> " + path +
                           " failed");
  }
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& bytes,
                       const AtomicWriteOptions& options) {
  const std::string tmp = path + ".tmp";
  Status last = Status::IoError("AtomicWriteFile: max_attempts < 1");
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = WriteAttempt(path, tmp, bytes);
    if (last.ok()) return last;
  }
  // Best-effort cleanup; the previous snapshot at `path` is still intact.
  std::remove(tmp.c_str());
  std::ostringstream msg;
  msg << last.message() << " (after " << attempts << " attempts)";
  return Status(last.code(), msg.str());
}

}  // namespace rs::persist
