#include "rs/persist/atomic_file.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "rs/fault/fault.hpp"

namespace rs::persist {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status WriteAttempt(const std::string& path, const std::string& tmp,
                    const std::string& bytes, Durability durability) {
  // Direct Hit() calls rather than RS_FAULT_POINT: the macro would return
  // out of the retry loop's caller; here the injected error must feed the
  // retry logic exactly like a real short write / failed rename.
  RS_RETURN_NOT_OK(rs::fault::Hit("persist.write"));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Errno("AtomicWriteFile: cannot open temp file " + tmp);
  }
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status error = Errno("AtomicWriteFile: short write to " + tmp);
      ::close(fd);
      return error;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  // fsync *before* rename: on ext4/xfs the rename can hit the journal ahead
  // of the data blocks, and a power cut then exposes a complete-looking
  // file of zeros at `path`.
  if (durability == Durability::kFsync && ::fsync(fd) != 0) {
    const Status error = Errno("AtomicWriteFile: fsync " + tmp);
    ::close(fd);
    return error;
  }
  if (::close(fd) != 0) {
    return Errno("AtomicWriteFile: close " + tmp);
  }
  RS_RETURN_NOT_OK(rs::fault::Hit("persist.rename"));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("AtomicWriteFile: rename " + tmp + " -> " + path);
  }
  // Directory fsync makes the rename itself durable (the new entry is
  // metadata of the *directory*, not the file).
  if (durability == Durability::kFsync) {
    RS_RETURN_NOT_OK(FsyncParentDir(path));
  }
  return Status::OK();
}

}  // namespace

std::string ParentDirectory(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("FsyncPath: cannot open " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("FsyncPath: fsync " + path);
  return Status::OK();
}

Status FsyncParentDir(const std::string& path) {
  const std::string dir = ParentDirectory(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("FsyncParentDir: cannot open directory " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("FsyncParentDir: fsync " + dir);
  return Status::OK();
}

std::size_t RemoveStaleTempFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::size_t removed = 0;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    constexpr const char kSuffix[] = ".tmp";
    constexpr std::size_t kSuffixLen = sizeof(kSuffix) - 1;
    if (name.size() <= kSuffixLen ||
        name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
      continue;
    }
    if (std::remove((dir + "/" + name).c_str()) == 0) ++removed;
  }
  ::closedir(d);
  return removed;
}

Status AtomicWriteFile(const std::string& path, const std::string& bytes,
                       const AtomicWriteOptions& options) {
  const std::string tmp = path + ".tmp";
  Status last = Status::IoError("AtomicWriteFile: max_attempts < 1");
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = WriteAttempt(path, tmp, bytes, options.durability);
    if (last.ok()) return last;
  }
  // Best-effort cleanup; the previous snapshot at `path` is still intact.
  std::remove(tmp.c_str());
  std::ostringstream msg;
  msg << last.message() << " (after " << attempts << " attempts)";
  return Status(last.code(), msg.str());
}

}  // namespace rs::persist
