/// \file atomic_file.hpp
/// \brief Crash-safe snapshot file replacement: write-temp-then-rename.
///
/// A snapshot overwritten in place can be torn by a crash or a full disk,
/// leaving *no* loadable state. AtomicWriteFile instead writes the bytes to
/// `path + ".tmp"`, then renames over `path` — the rename is the commit
/// point, so a reader at any moment sees either the old complete file or
/// the new complete file, never a prefix. Failed attempts are retried (the
/// persist.write / persist.rename fault sites inject exactly these
/// failures in the chaos suite) and the temp file is cleaned up on the way
/// out; the previous snapshot at `path` is untouched until the rename
/// succeeds.
#pragma once

#include <string>

#include "rs/common/status.hpp"

namespace rs::persist {

struct AtomicWriteOptions {
  /// Write+rename attempts before giving up and returning the last error.
  int max_attempts = 3;
};

/// \brief Atomically replaces the file at `path` with `bytes` (temp write +
///        rename), retrying transient failures up to `max_attempts` times.
///
/// On failure the previous contents of `path` are intact and the temp file
/// has been removed (best effort).
Status AtomicWriteFile(const std::string& path, const std::string& bytes,
                       const AtomicWriteOptions& options = {});

}  // namespace rs::persist
