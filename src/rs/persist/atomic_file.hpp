/// \file atomic_file.hpp
/// \brief Crash-safe snapshot file replacement: write-temp-then-rename,
///        fsynced so the commit survives power loss, not just process death.
///
/// A snapshot overwritten in place can be torn by a crash or a full disk,
/// leaving *no* loadable state. AtomicWriteFile instead writes the bytes to
/// `path + ".tmp"`, fsyncs the temp file, renames over `path`, and fsyncs
/// the parent directory — the rename is the commit point, and the two
/// fsyncs are what make it a *durable* commit point: without the first, the
/// rename can land before the data blocks and a power cut exposes a
/// complete-looking file of garbage; without the second, the rename itself
/// can evaporate. Failed attempts are retried (the persist.write /
/// persist.rename fault sites inject exactly these failures in the chaos
/// suite) and the temp file is cleaned up on the way out; the previous
/// snapshot at `path` is untouched until the rename succeeds.
///
/// A crash between temp-write and rename strands a `.tmp` file; recovery
/// scans (rs::wal journal open, or any caller managing a state directory)
/// call RemoveStaleTempFiles to sweep those orphans.
#pragma once

#include <cstddef>
#include <string>

#include "rs/common/status.hpp"

namespace rs::persist {

/// How hard AtomicWriteFile pushes the commit toward stable storage.
enum class Durability {
  /// fsync the temp file before rename and the parent directory after:
  /// the commit survives kill -9 *and* power loss. The default.
  kFsync,
  /// Skip both fsyncs: the commit survives process death (the rename is
  /// still atomic) but not power loss. For tests and throwaway state.
  kNone,
};

struct AtomicWriteOptions {
  /// Write+rename attempts before giving up and returning the last error.
  int max_attempts = 3;
  Durability durability = Durability::kFsync;
};

/// \brief Atomically replaces the file at `path` with `bytes` (temp write +
///        fsync + rename + directory fsync), retrying transient failures up
///        to `max_attempts` times.
///
/// On failure the previous contents of `path` are intact and the temp file
/// has been removed (best effort).
Status AtomicWriteFile(const std::string& path, const std::string& bytes,
                       const AtomicWriteOptions& options = {});

/// The directory component of `path` ("." when there is none, "/" at root).
std::string ParentDirectory(const std::string& path);

/// fsyncs the file at `path` (open + fsync + close).
Status FsyncPath(const std::string& path);

/// fsyncs the directory containing `path`, making a rename/create/unlink of
/// that entry durable.
Status FsyncParentDir(const std::string& path);

/// \brief Removes every `*.tmp` entry in `dir` (orphans stranded by a crash
///        between temp-write and rename). Returns the number removed;
///        best-effort, never fails.
std::size_t RemoveStaleTempFiles(const std::string& dir);

}  // namespace rs::persist
