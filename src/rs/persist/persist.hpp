/// \file persist.hpp
/// \brief Versioned, checksummed binary codec for durable serving state.
///
/// Snapshots (api::Scaler::SaveState, api::ScalerFleet::SaveFleet, tenant
/// migration records) are encoded as:
///
///   magic (u32, "RSNP")  format version (u32)
///   section*                                  tag (u32) + length (u64) + payload
///   crc32 (u32)                               over every preceding byte
///
/// All integers are explicit little-endian; doubles are the IEEE-754 bit
/// pattern as a little-endian u64, so a snapshot written on one machine
/// restores bit-identically on another. Sections nest freely (a fleet
/// snapshot holds tenant sections holding scaler sections); readers that
/// understand a section's prefix may ExitSection() early and the remaining
/// bytes are skipped, which is how newer writers stay readable by the
/// layer-version migration paths.
///
/// Version handshake: Reader::FromStream rejects snapshots whose format
/// version is newer than kFormatVersion with a descriptive Status (never a
/// crash); older versions are accepted and exposed via Reader::version() so
/// per-layer deserializers can migrate them. Corruption (truncation, bit
/// flips, wrong magic, section lengths past the buffer) is detected by the
/// CRC trailer and by bounds checks on every read — all failure modes
/// surface as a clean Status.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "rs/common/status.hpp"
#include "rs/stats/rng.hpp"

namespace rs::persist {

/// File magic "RSNP" and the codec-level format version. Bump the format
/// version only for incompatible *container* changes (header/section/crc
/// layout); layout changes inside one layer's sections bump that layer's
/// own version word instead (kScalerLayerVersion and friends live with the
/// layer serializers).
inline constexpr std::uint32_t kMagic = 0x504E5352u;  // "RSNP" little-endian.
inline constexpr std::uint32_t kFormatVersion = 1;

/// FourCC section tag, e.g. MakeTag('S','C','L','R').
constexpr std::uint32_t MakeTag(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24);
}

/// "SCLR" → printable form of a tag for error messages / the inspector.
std::string TagToString(std::uint32_t tag);

// Registry of section tags (kept in one place so layers cannot collide).
inline constexpr std::uint32_t kTagScaler = MakeTag('S', 'C', 'L', 'R');
inline constexpr std::uint32_t kTagSpec = MakeTag('S', 'P', 'E', 'C');
inline constexpr std::uint32_t kTagBuildContext = MakeTag('C', 'T', 'X', 'T');
inline constexpr std::uint32_t kTagTrained = MakeTag('T', 'R', 'N', 'D');
inline constexpr std::uint32_t kTagStrategyModel = MakeTag('S', 'T', 'R', 'A');
inline constexpr std::uint32_t kTagMirror = MakeTag('M', 'I', 'R', 'R');
inline constexpr std::uint32_t kTagTenant = MakeTag('T', 'E', 'N', 'T');
inline constexpr std::uint32_t kTagFleet = MakeTag('F', 'L', 'E', 'T');
inline constexpr std::uint32_t kTagRobustModel = MakeTag('R', 'O', 'B', 'S');
inline constexpr std::uint32_t kTagBackupPoolModel = MakeTag('B', 'P', 'M', 'D');
inline constexpr std::uint32_t kTagAdaptiveModel = MakeTag('A', 'B', 'P', 'M');
inline constexpr std::uint32_t kTagHpCountModel = MakeTag('H', 'P', 'C', 'M');
inline constexpr std::uint32_t kTagFreshnessPolicy = MakeTag('F', 'P', 'O', 'L');
inline constexpr std::uint32_t kTagFreshness = MakeTag('F', 'R', 'S', 'H');
inline constexpr std::uint32_t kTagDriftDetector = MakeTag('D', 'R', 'F', 'T');
inline constexpr std::uint32_t kTagTrainSession = MakeTag('T', 'S', 'E', 'S');
// Per-tenant degradation health (breaker state + counters), fleet layer v3+.
inline constexpr std::uint32_t kTagHealth = MakeTag('H', 'L', 'T', 'H');
// rs::trace serving captures (docs/TRACE_FORMAT.md is the normative spec).
inline constexpr std::uint32_t kTagTraceCapture = MakeTag('T', 'R', 'C', 'E');
inline constexpr std::uint32_t kTagTraceMeta = MakeTag('T', 'M', 'E', 'T');
inline constexpr std::uint32_t kTagTraceEvents = MakeTag('T', 'E', 'V', 'T');
// rs::wal journal checkpoint container (docs/WAL_FORMAT.md).
inline constexpr std::uint32_t kTagWalCheckpoint = MakeTag('W', 'C', 'K', 'P');

/// CRC-32 (IEEE reflected, poly 0xEDB88320) over `n` bytes; chainable via
/// `seed`. Exposed for the snapshot inspector and corruption tests.
std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// \brief Buffered snapshot encoder.
///
/// Accumulates the encoded bytes in memory (section lengths are backpatched
/// when a section closes), then Finish() appends the CRC trailer and writes
/// the whole snapshot to the output stream in one pass — a failed or
/// interrupted write can therefore never leave a half-written header that
/// looks valid.
class Writer {
 public:
  Writer();

  void WriteU8(std::uint8_t value);
  void WriteBool(bool value);
  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  void WriteDouble(double value);
  void WriteString(std::string_view value);
  void WriteDoubleVector(const std::vector<double>& values);
  void WriteU64Vector(const std::vector<std::uint64_t>& values);

  /// Opens a tagged section; sections nest. Every BeginSection must be
  /// matched by EndSection before Finish().
  void BeginSection(std::uint32_t tag);
  void EndSection();

  /// Appends the CRC trailer and writes the snapshot to `out`.
  Status Finish(std::ostream& out);

  /// Encoded size so far (header + sections, without the CRC trailer).
  std::size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
  std::vector<std::size_t> open_;  ///< Offsets of unpatched section lengths.
};

/// \brief Bounds-checked snapshot decoder.
///
/// FromStream() loads the whole snapshot, then validates magic, format
/// version, and CRC before any field is decoded. Every subsequent read is
/// bounds-checked against the innermost open section, so corrupt lengths
/// (truncation, overflow) fail with a Status instead of reading out of
/// bounds.
class Reader {
 public:
  /// Reads all of `in` and validates the container (magic, version, CRC).
  static Result<Reader> FromStream(std::istream& in);

  /// Same validation over an in-memory snapshot (tests, inspector).
  static Result<Reader> FromBytes(std::string bytes);

  /// Format version of the loaded snapshot (<= kFormatVersion).
  std::uint32_t version() const { return version_; }

  Result<std::uint8_t> ReadU8();
  Result<bool> ReadBool();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Status ReadDoubleVector(std::vector<double>* out);
  Status ReadU64Vector(std::vector<std::uint64_t>* out);

  /// Tag of the next section without consuming it.
  Result<std::uint32_t> PeekSectionTag() const;

  /// Opens the next section, which must carry `expected` as its tag.
  Status EnterSection(std::uint32_t expected);

  /// Closes the innermost section, skipping any bytes the caller did not
  /// read (forward compatibility for layer-version migrations).
  Status ExitSection();

  /// Skips the next section wholesale (unknown tags in the inspector).
  Status SkipSection();

  /// Bytes left before the innermost open section (or the snapshot) ends.
  std::size_t remaining() const { return limit() - cursor_; }

 private:
  Result<std::uint64_t> ReadRaw(std::size_t width);
  std::size_t limit() const {
    return ends_.empty() ? payload_end_ : ends_.back();
  }

  std::string bytes_;
  std::size_t cursor_ = 0;
  std::size_t payload_end_ = 0;  ///< bytes_.size() minus the CRC trailer.
  std::uint32_t version_ = 0;
  std::vector<std::size_t> ends_;  ///< End offsets of open sections.
};

/// Serializes the exact generator state (256-bit xoshiro words + the
/// Box–Muller cache) so a restored stream continues bit-for-bit.
void WriteRngState(Writer* writer, const stats::Rng& rng);
Status ReadRngState(Reader* reader, stats::Rng* rng);

}  // namespace rs::persist
