#include "rs/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace rs::common {

void Latch::CountDown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (remaining_ > 0 && --remaining_ == 0) cv_.notify_all();
}

void Latch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return remaining_ == 0; });
}

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Keep draining after stop: the destructor promises every submitted
      // task runs (ScalerFleet counts on its latch reaching zero).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A throwing task must not unwind the worker thread (std::terminate)
    // or starve the queue: swallow, count, keep serving. Fallible work is
    // expected to report through captured Status objects instead.
    try {
      task();
    } catch (...) {
      tasks_failed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->threads() == 0 || n == 1) {
    // Same exception contract as the pooled path below: every index runs,
    // the first exception is rethrown afterwards. A throw must not change
    // which indices execute depending on the worker count.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  // Work-conquering fan-out: indices are claimed from a shared counter by
  // up to `threads` helper tasks AND the calling thread. The caller always
  // drains the remaining indices itself, so nested ParallelFor calls on one
  // shared pool cannot deadlock — a worker running an outer task that fans
  // out again makes progress on its own indices even while every other
  // worker is busy (the fleet's one-work-queue planning relies on this).
  struct SharedState {
    explicit SharedState(std::size_t count) : done(count) {}
    std::atomic<std::size_t> next{0};
    Latch done;
    std::mutex error_mu;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<SharedState>(n);
  // Capturing `fn` by reference is safe: a helper only dereferences it
  // after claiming an index < n, and the latch cannot reach zero (so Wait
  // cannot return and `fn` cannot die) until that index finishes. Late
  // helpers that claim >= n touch only their own shared_ptr copy.
  //
  // A throwing fn(i) must still count its index down (otherwise the caller
  // deadlocks in Wait) and must not abandon the remaining indices; the
  // first exception is kept and rethrown on the calling thread after the
  // join, preserving the "every index ran, writes published" contract for
  // the indices that succeeded.
  const auto work = [state, &fn, n] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mu);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      state->done.CountDown();
    }
  };
  const std::size_t helpers = std::min(pool->threads(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) pool->Submit(work);
  work();
  state->done.Wait();
  // The join published every helper's writes, so no lock is needed here.
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ParallelForChunks(
    ThreadPool* pool, std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t width = chunk == 0 ? n : chunk;
  const std::size_t count = (n + width - 1) / width;
  ParallelFor(pool, count, [&body, n, width](std::size_t c) {
    const std::size_t begin = c * width;
    body(c, begin, std::min(begin + width, n));
  });
}

}  // namespace rs::common
