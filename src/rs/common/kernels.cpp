#include "rs/common/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace rs::common {

namespace {

bool EnvRequestsReference() {
  const char* value = std::getenv("RS_REFERENCE_KERNELS");
  if (value == nullptr) return false;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
         std::strcmp(value, "on") == 0 || std::strcmp(value, "yes") == 0;
}

std::atomic<bool>& KernelFlag() {
  static std::atomic<bool> flag(EnvRequestsReference());
  return flag;
}

}  // namespace

bool UseReferenceKernels() {
  return KernelFlag().load(std::memory_order_relaxed);
}

void SetReferenceKernels(bool reference) {
  KernelFlag().store(reference, std::memory_order_relaxed);
}

ScopedReferenceKernels::ScopedReferenceKernels(bool reference)
    : previous_(UseReferenceKernels()) {
  SetReferenceKernels(reference);
}

ScopedReferenceKernels::~ScopedReferenceKernels() {
  SetReferenceKernels(previous_);
}

}  // namespace rs::common
