#include "rs/common/status.hpp"

namespace rs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kInfeasible:
      return "Infeasible";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace rs
