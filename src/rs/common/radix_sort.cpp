#include "rs/common/radix_sort.hpp"

#include <algorithm>
#include <cstring>

namespace rs::common {

namespace {

constexpr std::uint64_t kSignBit = 0x8000000000000000ULL;

/// Monotone double→uint64 key: non-negative doubles get the sign bit set,
/// negative doubles are fully complemented, so unsigned key order equals
/// double value order.
inline std::uint64_t ForwardKey(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const auto ext = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(bits) >> 63);  // All ones iff negative.
  return bits ^ (ext | kSignBit);
}

inline double InverseKey(std::uint64_t key) {
  const auto ext = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(key) >> 63);  // All ones iff originally >= 0.
  const std::uint64_t bits = key ^ ((ext & kSignBit) | ~ext);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

void RadixSortAscending(double* data, std::size_t n,
                        RadixSortScratch* scratch) {
  if (n < 2) return;
  // Below this size the O(n) pass overheads beat the O(n log n) comparisons.
  if (n < 128 || scratch == nullptr) {
    std::sort(data, data + n);
    return;
  }
  scratch->keys.resize(n);
  scratch->tmp.resize(n);
  std::uint64_t* a = scratch->keys.data();
  std::uint64_t* b = scratch->tmp.data();

  // One pass builds all eight byte histograms.
  std::uint32_t counts[8][256] = {};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = ForwardKey(data[i]);
    a[i] = key;
    for (int pass = 0; pass < 8; ++pass) {
      ++counts[pass][(key >> (8 * pass)) & 0xFF];
    }
  }

  for (int pass = 0; pass < 8; ++pass) {
    const std::uint32_t* hist = counts[pass];
    // A byte that is constant across the array contributes nothing: the
    // stable scatter would be the identity. (Targets/slacks share sign,
    // exponent, and high-mantissa bytes, so this skips most passes.)
    const unsigned first_byte = (a[0] >> (8 * pass)) & 0xFF;
    if (hist[first_byte] == n) continue;

    std::uint32_t offsets[256];
    std::uint32_t running = 0;
    for (int v = 0; v < 256; ++v) {
      offsets[v] = running;
      running += hist[v];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = a[i];
      b[offsets[(key >> (8 * pass)) & 0xFF]++] = key;
    }
    std::swap(a, b);
  }

  for (std::size_t i = 0; i < n; ++i) data[i] = InverseKey(a[i]);
}

}  // namespace rs::common
