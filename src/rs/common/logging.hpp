/// \file logging.hpp
/// \brief Minimal leveled logger plus check macros (Arrow/GLog style).
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rs

#define RS_LOG(level)                                                      \
  ::rs::internal::LogMessage(::rs::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal invariant check: aborts with a message when `cond` is false.
/// Used for programmer errors (bad indices, broken invariants), not for
/// recoverable conditions — those return Status.
#define RS_CHECK(cond)                                                        \
  if (!(cond))                                                                \
  ::rs::internal::LogMessage(::rs::LogLevel::kFatal, __FILE__, __LINE__)      \
      << "Check failed: " #cond " "

#define RS_CHECK_OK(expr)                                                  \
  do {                                                                     \
    ::rs::Status _rs_chk = (expr);                                         \
    RS_CHECK(_rs_chk.ok()) << _rs_chk.ToString();                          \
  } while (false)

#ifndef NDEBUG
#define RS_DCHECK(cond) RS_CHECK(cond)
#else
#define RS_DCHECK(cond) \
  if (false) ::rs::internal::LogMessage(::rs::LogLevel::kDebug, __FILE__, __LINE__)
#endif
