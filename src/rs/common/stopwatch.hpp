/// \file stopwatch.hpp
/// \brief Wall-clock stopwatch used by benches to time training/decisions.
#pragma once

#include <chrono>

namespace rs {

/// Monotonic wall-clock stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rs
