/// \file thread_pool.hpp
/// \brief Minimal fixed-size worker pool + countdown latch for the
///        fan-out/join pattern the serving layer uses (ScalerFleet batches
///        per-tenant planning across workers and joins before returning).
///
/// Deliberately small: a mutex/condvar task queue, no futures, no work
/// stealing. Fallible work should report through Status objects captured
/// by the closure, like everything else in this codebase — but a task that
/// *does* throw never kills the pool: the worker catches the exception,
/// counts it (tasks_failed()), and keeps serving the queue, and a
/// ParallelFor whose fn throws still joins cleanly and rethrows the first
/// exception on the calling thread (no deadlock, no lost indices).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rs::common {

/// \brief Single-use countdown latch: Wait() returns once CountDown() has
///        been called `count` times.
///
/// Unlike std::latch this one is copy-free to reason about under TSan: the
/// final CountDown() publishes everything the counting threads wrote
/// before it (mutex release/acquire), which is exactly the happens-before
/// edge ParallelFor relies on to hand results back race-free.
class Latch {
 public:
  explicit Latch(std::size_t count) : remaining_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void CountDown();

  /// Blocks until the count reaches zero (returns immediately if it
  /// already has).
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t remaining_;
};

/// \brief Fixed-size worker pool over a FIFO task queue.
///
/// `threads == 0` selects inline mode: Submit() runs the task on the
/// calling thread before returning. That keeps single-threaded callers
/// (and the parity baseline in tests) on the exact same code path with
/// zero scheduling nondeterminism.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);

  /// Drains: blocks until every submitted task has run, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 = inline mode).
  std::size_t threads() const { return workers_.size(); }

  /// Enqueues `task` (runs it inline when threads() == 0). Safe to call
  /// from multiple threads; must not be called after destruction begins.
  /// A worker-run task that throws is swallowed (counted in
  /// tasks_failed()); an inline-run task's exception propagates to the
  /// caller, who is on the stack to handle it.
  void Submit(std::function<void()> task);

  /// Tasks whose exception a worker swallowed (0 in a healthy fleet; the
  /// chaos suite asserts the pool outlives a storm of these).
  std::size_t tasks_failed() const {
    return tasks_failed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> tasks_failed_{0};
};

/// \brief Runs fn(0), ..., fn(n-1) across `pool` and blocks until all
///        calls completed; a null or inline pool runs them sequentially on
///        the calling thread.
///
/// Each index is executed exactly once by exactly one thread, and the
/// return orders every fn(i)'s writes before the caller's reads — callers
/// may scatter results into a preallocated slot-per-index buffer without
/// further synchronization (deterministic result ordering regardless of
/// scheduling). The calling thread participates in the work (indices are
/// claimed from a shared counter), which makes nested ParallelFor calls on
/// one shared pool deadlock-free: an outer task that fans out again always
/// progresses on its own indices, so one work queue can serve both
/// fleet-level tenant batching and intra-plan Monte Carlo shards.
///
/// A throwing fn(i) does not deadlock the join or lose other indices: the
/// failed index still counts down, the remaining indices still run, and
/// the first exception is rethrown on the calling thread after all calls
/// completed (later exceptions are dropped).
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// \brief Runs body(chunk_index, begin, end) for each fixed-size chunk of
///        [0, n) across `pool`, blocking until all chunks completed.
///
/// The chunk boundaries depend only on n and `chunk` — never on the worker
/// count — so per-chunk partial results (sums, RNG substream draws) that
/// the caller combines in chunk-index order are bitwise identical whether
/// the chunks ran inline, on one worker, or on many. This is the reduction
/// discipline the parallel training paths use to stay deterministic.
void ParallelForChunks(
    ThreadPool* pool, std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

}  // namespace rs::common
