/// \file kernels.hpp
/// \brief Process-wide switch between the optimized planning/decision
///        kernels and their naive reference implementations.
///
/// The optimized hot paths (batched inverse-cumulative sampling, the
/// allocation-free decision kernel) are guaranteed to emit byte-identical
/// action sequences to the straightforward reference code they replaced.
/// That guarantee is only worth something if the reference stays runnable:
/// setting the environment variable RS_REFERENCE_KERNELS=1 (or calling
/// SetReferenceKernels) routes every planner through the reference path, so
/// benches can measure the speedup and tests can assert the parity on the
/// same binary.
#pragma once

namespace rs::common {

/// True when planners must use the naive reference kernels. Reads the
/// RS_REFERENCE_KERNELS environment variable once at first call ("1",
/// "true", "on", "yes" enable it); SetReferenceKernels overrides it.
bool UseReferenceKernels();

/// Programmatic override of the kernel mode (bench/tests). Thread-safe;
/// takes effect for planning rounds that start after the call.
void SetReferenceKernels(bool reference);

/// RAII kernel-mode override: flips to `reference` on construction and
/// restores the previous mode on destruction.
class ScopedReferenceKernels {
 public:
  explicit ScopedReferenceKernels(bool reference);
  ~ScopedReferenceKernels();

  ScopedReferenceKernels(const ScopedReferenceKernels&) = delete;
  ScopedReferenceKernels& operator=(const ScopedReferenceKernels&) = delete;

 private:
  bool previous_;
};

}  // namespace rs::common
