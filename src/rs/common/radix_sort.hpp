/// \file radix_sort.hpp
/// \brief Allocation-free LSD radix sort for doubles — the comparison-free
///        workhorse behind the per-decision Monte Carlo sorts.
///
/// An introsort of R random doubles costs ~50 ns/element; the planning hot
/// loop pays that once per committed decision. The byte-wise radix pass
/// here costs ~2-3 ns/element/pass, and passes whose byte is constant
/// across the whole array are skipped outright — planning targets share
/// sign, exponent, and high mantissa bytes, so typically only 4-5 of the 8
/// passes run. Sorting is by value (bit-exact same ascending sequence a
/// std::sort would produce, up to the ordering of -0.0/+0.0 and NaNs,
/// which compare equal / unordered anyway).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rs::common {

/// Reusable buffers for RadixSortAscending (two 8-byte keys per element).
struct RadixSortScratch {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> tmp;
};

/// Sorts data[0..n) ascending. Finite values and infinities order exactly
/// as operator< does; -0.0 sorts before +0.0 and NaNs sort by bit pattern
/// (below -inf / above +inf by sign). Small arrays fall back to std::sort.
void RadixSortAscending(double* data, std::size_t n,
                        RadixSortScratch* scratch);

}  // namespace rs::common
