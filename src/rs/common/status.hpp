/// \file status.hpp
/// \brief Arrow-style Status / Result<T> error propagation used by all
///        fallible public APIs in the robustscaler library.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace rs {

/// Machine-readable category of a failure.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotImplemented,
  kRuntimeError,
  kIoError,
  kNotConverged,
  kInfeasible,
};

/// \brief Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: either OK or a code + message.
///
/// Follows the Arrow/RocksDB convention: functions that can fail return
/// Status (or Result<T>), and callers propagate with RS_RETURN_NOT_OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// \brief Value-or-error container, analogous to arrow::Result<T>.
///
/// Holds either a value of type T or a non-OK Status. Accessing the value
/// of an errored Result aborts in debug builds (programmer error).
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit conversion from a non-OK status (failure).
  Result(Status status) : data_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the error status; OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& ValueOrDie() const& { return std::get<T>(data_); }
  T& ValueOrDie() & { return std::get<T>(data_); }
  T&& ValueOrDie() && { return std::move(std::get<T>(data_)); }

  /// Moves the value out; result must be ok().
  T MoveValueUnsafe() { return std::move(std::get<T>(data_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace rs

/// Propagates a non-OK Status to the caller.
#define RS_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::rs::Status _rs_st = (expr);               \
    if (!_rs_st.ok()) return _rs_st;            \
  } while (false)

#define RS_CONCAT_IMPL(a, b) a##b
#define RS_CONCAT(a, b) RS_CONCAT_IMPL(a, b)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates the
/// error. Usage: RS_ASSIGN_OR_RETURN(auto x, ComputeX());
#define RS_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto RS_CONCAT(_rs_result_, __LINE__) = (rexpr);                 \
  if (!RS_CONCAT(_rs_result_, __LINE__).ok()) {                    \
    return RS_CONCAT(_rs_result_, __LINE__).status();              \
  }                                                                \
  lhs = std::move(RS_CONCAT(_rs_result_, __LINE__)).ValueOrDie()
