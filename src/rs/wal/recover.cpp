/// \file recover.cpp
/// \brief Crash-consistent recovery: checkpoint decoding, journal-tail
///        replay into a restored fleet, and segment verification for
///        rs_snapshot --verify. docs/WAL_FORMAT.md is the normative spec;
///        docs/ARCHITECTURE.md describes the recovery state machine.
#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "rs/persist/persist.hpp"
#include "rs/wal/internal.hpp"
#include "rs/wal/wal.hpp"

namespace rs::wal {

namespace {

/// The checkpoint's WCKP fields up to (not including) the embedded FLET
/// fleet section; parsing stops positioned at FLET with WCKP still open.
struct CheckpointMeta {
  std::uint32_t version = 0;
  std::uint64_t lsn = 0;
  std::uint64_t next_id = 1;
  /// (id, tenant name, live at checkpoint time), ascending by id.
  std::vector<std::tuple<std::uint32_t, std::string, bool>> entries;
  std::string user_meta;
};

Status ParseCheckpointMeta(persist::Reader* reader, CheckpointMeta* out) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagWalCheckpoint));
  RS_ASSIGN_OR_RETURN(out->version, reader->ReadU32());
  if (out->version == 0 || out->version > internal::kWalLayerVersion) {
    return Status::Invalid(
        "checkpoint layout version " + std::to_string(out->version) +
        " is newer than this build understands (reads 1.." +
        std::to_string(internal::kWalLayerVersion) + "); upgrade the reader");
  }
  RS_ASSIGN_OR_RETURN(out->lsn, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(out->next_id, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, reader->ReadU64());
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t id = 0;
    std::string name;
    bool live = false;
    RS_ASSIGN_OR_RETURN(id, reader->ReadU32());
    RS_ASSIGN_OR_RETURN(name, reader->ReadString());
    RS_ASSIGN_OR_RETURN(live, reader->ReadBool());
    if (id == 0 || id >= out->next_id) {
      return Status::Invalid("intern table entry " + std::to_string(i) +
                             " carries id " + std::to_string(id) +
                             ", outside the issued range [1, " +
                             std::to_string(out->next_id) + ")");
    }
    if (name.empty()) {
      return Status::Invalid("intern table entry " + std::to_string(i) +
                             " has an empty tenant name");
    }
    out->entries.emplace_back(id, std::move(name), live);
  }
  RS_ASSIGN_OR_RETURN(out->user_meta, reader->ReadString());
  return Status::OK();
}

}  // namespace

Status FleetJournal::LoadCheckpointMeta(const std::string& path) {
  std::string bytes;
  RS_RETURN_NOT_OK(internal::ReadFileBytes(path, &bytes));
  const auto parse = [&]() -> Status {
    RS_ASSIGN_OR_RETURN(persist::Reader reader,
                        persist::Reader::FromBytes(std::move(bytes)));
    CheckpointMeta meta;
    RS_RETURN_NOT_OK(ParseCheckpointMeta(&reader, &meta));
    checkpoint_lsn_ = meta.lsn;
    next_id_ = meta.next_id;
    checkpoint_meta_ = std::move(meta.user_meta);
    for (auto& [id, name, live] : meta.entries) {
      names_[id] = name;
      if (live) ids_[std::move(name)] = id;
    }
    // The embedded FLET fleet section follows; Open() needs only the
    // metadata, so ExitSection skips it (Recover() re-reads the file).
    return reader.ExitSection();
  };
  const Status parsed = parse();
  if (!parsed.ok()) {
    return Status(parsed.code(), "journal checkpoint " + path + ": " +
                                     parsed.message());
  }
  return Status::OK();
}

Result<api::ScalerFleet> FleetJournal::Recover(const RecoverOptions& options,
                                               RecoveryReport* report) {
  if (!opened_) {
    return Status::Invalid("FleetJournal::Recover: Open the journal first");
  }
  if (fleet_ != nullptr) {
    return Status::Invalid(
        "FleetJournal::Recover: a live fleet is attached; Recover rebuilds "
        "from disk and would race it — Detach first");
  }
  if (next_lsn_ != lsn_at_open_) {
    // The replayable tail is frozen at Open() time; recovering after
    // appends would silently drop every event journaled since. The durable
    // stream is intact on disk — a fresh journal object sees all of it.
    return Status::Invalid(
        "FleetJournal::Recover: " + std::to_string(next_lsn_ - lsn_at_open_) +
        " record(s) were appended since Open, and Recover replays only the "
        "tail scanned at Open time — Open a fresh FleetJournal on this "
        "directory to recover the full stream");
  }
  RecoveryReport local;
  local.had_checkpoint = open_report_.had_checkpoint;
  local.checkpoint_lsn = checkpoint_lsn_;

  std::optional<api::ScalerFleet> fleet;
  if (open_report_.had_checkpoint) {
    const std::string path = dir_ + "/checkpoint.rsnp";
    std::string bytes;
    RS_RETURN_NOT_OK(internal::ReadFileBytes(path, &bytes));
    RS_ASSIGN_OR_RETURN(persist::Reader reader,
                        persist::Reader::FromBytes(std::move(bytes)));
    CheckpointMeta meta;
    {
      const Status parsed = ParseCheckpointMeta(&reader, &meta);
      if (!parsed.ok()) {
        return Status(parsed.code(), "journal checkpoint " + path + ": " +
                                         parsed.message());
      }
    }
    api::FleetRestoreOptions restore;
    restore.worker_threads = options.worker_threads;
    restore.decision_clock_for = options.decision_clock_for;
    RS_ASSIGN_OR_RETURN(fleet,
                        api::ScalerFleet::LoadFleetSection(&reader, restore));
    RS_RETURN_NOT_OK(reader.ExitSection());
  } else {
    fleet.emplace(options.worker_threads);
  }

  if (!tail_.empty()) {
    // The journal tail *is* a trace capture over the checkpoint's fleet —
    // same event grammar — so recovery re-drives it through the replay
    // engine and inherits its byte-identical verification for free.
    trace::Capture capture;
    capture.producer = "robustscaler rs::wal";
    capture.label = "journal tail past LSN " + std::to_string(checkpoint_lsn_);
    capture.events = tail_;
    trace::ReplayOptions replay;
    replay.into = &*fleet;
    replay.tenant_names = names_;
    replay.decision_clock_for = options.decision_clock_for;
    RS_ASSIGN_OR_RETURN(trace::ReplayReport replayed,
                        trace::Replay(capture, replay));
    if (replayed.diverged) {
      return Status::Invalid(
          "journal tail does not replay byte-identically at tail event " +
          std::to_string(replayed.divergence_event) + " of " +
          std::to_string(replayed.events_total) + ": " + replayed.detail +
          " — the journal does not describe this build's deterministic "
          "serving, so the checkpoint or a record is corrupt");
    }
    local.events_replayed = replayed.events_applied;
  }

  if (report != nullptr) *report = local;
  return std::move(*fleet);
}

Result<SegmentReport> InspectSegmentFile(const std::string& path) {
  std::string bytes;
  RS_RETURN_NOT_OK(internal::ReadFileBytes(path, &bytes));
  const auto on_record = [](std::uint64_t lsn,
                            std::string_view payload) -> Status {
    RS_ASSIGN_OR_RETURN(persist::Reader reader,
                        persist::Reader::FromBytes(std::string(payload)));
    trace::Event event;
    RS_RETURN_NOT_OK(trace::DecodeEvent(&reader, &event));
    if (reader.remaining() != 0) {
      return Status::Invalid("record LSN " + std::to_string(lsn) +
                             " payload carries " +
                             std::to_string(reader.remaining()) +
                             " trailing bytes after the event");
    }
    return Status::OK();
  };
  // A torn tail is legal here (a crash mid-append leaves one; recovery
  // truncates it) — only pre-tail corruption fails.
  auto scan =
      internal::ScanSegmentBytes(bytes, /*allow_torn_tail=*/true,
                                 /*expected_first_lsn=*/0, on_record);
  if (!scan.ok()) {
    return Status(scan.status().code(), "journal segment " + path + ": " +
                                            scan.status().message());
  }
  SegmentReport result;
  result.first_lsn = scan->first_lsn;
  result.last_lsn = scan->last_lsn;
  result.records = scan->records;
  result.bytes = bytes.size();
  result.torn_tail_bytes = scan->torn_bytes;
  return result;
}

}  // namespace rs::wal
