/// \file segment.cpp
/// \brief Segment frame codec + scanner (shared by Open repair and
///        InspectSegmentFile). docs/WAL_FORMAT.md is the normative spec.
#include <fstream>
#include <sstream>

#include "rs/persist/persist.hpp"
#include "rs/wal/internal.hpp"

namespace rs::wal::internal {

std::uint32_t ReadU32Le(const char* p) {
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
  }
  return value;
}

std::uint64_t ReadU64Le(const char* p) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
  }
  return value;
}

void AppendU32Le(std::string* out, std::uint32_t value) {
  for (std::size_t i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

void AppendU64Le(std::string* out, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

std::string BuildFrame(std::uint64_t lsn, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendU64Le(&frame, lsn);
  AppendU32Le(&frame, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = persist::Crc32(frame.data(), 12);
  crc = persist::Crc32(payload.data(), payload.size(), crc);
  AppendU32Le(&frame, crc);
  frame.append(payload);
  return frame;
}

std::string BuildSegmentHeader(std::uint64_t first_lsn) {
  std::string header;
  header.reserve(kSegmentHeaderBytes);
  AppendU32Le(&header, kSegmentMagic);
  AppendU32Le(&header, kWalLayerVersion);
  AppendU64Le(&header, first_lsn);
  return header;
}

Result<SegmentScan> ScanSegmentBytes(
    std::string_view bytes, bool allow_torn_tail,
    std::uint64_t expected_first_lsn,
    const std::function<Status(std::uint64_t lsn, std::string_view payload)>&
        on_record) {
  if (bytes.size() < kSegmentHeaderBytes) {
    std::ostringstream msg;
    msg << "journal segment is " << bytes.size() << " bytes, smaller than the "
        << kSegmentHeaderBytes << "-byte header";
    return Status::Invalid(msg.str());
  }
  const std::uint32_t magic = ReadU32Le(bytes.data());
  if (magic != kSegmentMagic) {
    std::ostringstream msg;
    msg << "not a journal segment: bad magic 0x" << std::hex << magic
        << " (expected \"RSWJ\")";
    return Status::Invalid(msg.str());
  }
  const std::uint32_t version = ReadU32Le(bytes.data() + 4);
  if (version == 0 || version > kWalLayerVersion) {
    std::ostringstream msg;
    msg << "journal segment layout version " << version
        << " is newer than this build understands (reads 1.."
        << kWalLayerVersion << "); upgrade the reader";
    return Status::Invalid(msg.str());
  }
  SegmentScan scan;
  scan.first_lsn = ReadU64Le(bytes.data() + 8);
  if (expected_first_lsn != 0 && scan.first_lsn != expected_first_lsn) {
    std::ostringstream msg;
    msg << "journal segment header claims first LSN " << scan.first_lsn
        << " but LSN " << expected_first_lsn
        << " is expected here (LSN gap: a segment is missing or reordered)";
    return Status::Invalid(msg.str());
  }

  std::uint64_t expected = scan.first_lsn;
  std::size_t offset = kSegmentHeaderBytes;
  // The first invalid record ends the log: a crash can only tear the final
  // write, so nothing past the break is trustworthy framing.
  const auto broken = [&](const char* why) -> Result<SegmentScan> {
    if (allow_torn_tail) {
      scan.valid_bytes = offset;
      scan.torn_bytes = bytes.size() - offset;
      return scan;
    }
    std::ostringstream msg;
    msg << "journal segment corrupt at byte offset " << offset << ": " << why
        << " (not the journal's last segment, so this cannot be a torn "
           "tail left by a crash)";
    return Status::Invalid(msg.str());
  };

  while (offset < bytes.size()) {
    const std::size_t remaining = bytes.size() - offset;
    if (remaining < kFrameHeaderBytes) {
      return broken("truncated record frame header");
    }
    const std::uint64_t lsn = ReadU64Le(bytes.data() + offset);
    const std::uint32_t len = ReadU32Le(bytes.data() + offset + 8);
    const std::uint32_t stored_crc = ReadU32Le(bytes.data() + offset + 12);
    if (lsn != expected) {
      return broken("record LSN breaks the contiguous sequence");
    }
    if (len < kMinPayloadBytes || len > remaining - kFrameHeaderBytes) {
      return broken("record length field exceeds the segment");
    }
    std::uint32_t crc = persist::Crc32(bytes.data() + offset, 12);
    crc = persist::Crc32(bytes.data() + offset + kFrameHeaderBytes, len, crc);
    if (crc != stored_crc) {
      return broken("record CRC mismatch");
    }
    RS_RETURN_NOT_OK(
        on_record(lsn, bytes.substr(offset + kFrameHeaderBytes, len)));
    ++scan.records;
    scan.last_lsn = lsn;
    expected = lsn + 1;
    offset += kFrameHeaderBytes + len;
  }
  scan.valid_bytes = offset;
  return scan;
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("failed to read " + path);
  }
  *out = std::move(buffer).str();
  return Status::OK();
}

}  // namespace rs::wal::internal
