/// \file internal.hpp
/// \brief rs::wal on-disk constants + the segment scanner shared by the
///        journal's Open() repair pass and InspectSegmentFile verification.
///        docs/WAL_FORMAT.md is the normative spec for everything here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "rs/common/status.hpp"

namespace rs::wal::internal {

/// Segment header magic: "RSWJ", little-endian FourCC.
inline constexpr std::uint32_t kSegmentMagic =
    static_cast<std::uint32_t>('R') | (static_cast<std::uint32_t>('S') << 8) |
    (static_cast<std::uint32_t>('W') << 16) |
    (static_cast<std::uint32_t>('J') << 24);

/// Journal layout version. Bump for incompatible header/frame changes;
/// readers reject newer versions with a descriptive Status.
inline constexpr std::uint32_t kWalLayerVersion = 1;

/// Segment header: magic u32 + version u32 + first_lsn u64.
inline constexpr std::size_t kSegmentHeaderBytes = 16;

/// Record frame header: lsn u64 + payload_len u32 + crc32 u32. The CRC
/// covers the 12 bytes of (lsn, payload_len) followed by the payload.
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Smallest payload: an empty rs::persist container (8-byte header + CRC).
inline constexpr std::size_t kMinPayloadBytes = 12;

std::uint32_t ReadU32Le(const char* p);
std::uint64_t ReadU64Le(const char* p);
void AppendU32Le(std::string* out, std::uint32_t value);
void AppendU64Le(std::string* out, std::uint64_t value);

/// Frames one record: [lsn u64][len u32][crc u32][payload].
std::string BuildFrame(std::uint64_t lsn, std::string_view payload);

/// Renders the 16-byte segment header for a segment starting at `first_lsn`.
std::string BuildSegmentHeader(std::uint64_t first_lsn);

/// One segment's scan summary.
struct SegmentScan {
  std::uint64_t first_lsn = 0;  ///< From the header.
  std::size_t records = 0;
  std::uint64_t last_lsn = 0;   ///< 0 when the segment holds no records.
  std::size_t valid_bytes = 0;  ///< Offset where intact data ends.
  std::size_t torn_bytes = 0;   ///< Bytes past valid_bytes (torn tail).
};

/// \brief Walks one segment's bytes: validates the header, then every
///        record's LSN contiguity, length framing, and CRC, invoking
///        `on_record` per intact record.
///
/// The first invalid record is the end of the log (the standard WAL rule: a
/// torn tail is only ever the *final* write, so nothing after the first
/// break is trustworthy). With `allow_torn_tail` the break is reported via
/// torn_bytes; without it (a segment that is not the journal's last) it is
/// a hard error. `expected_first_lsn` 0 accepts any header LSN. An
/// `on_record` error aborts the scan as corruption, never a torn tail.
Result<SegmentScan> ScanSegmentBytes(
    std::string_view bytes, bool allow_torn_tail,
    std::uint64_t expected_first_lsn,
    const std::function<Status(std::uint64_t lsn, std::string_view payload)>&
        on_record);

/// Reads a whole file into `out` (binary). IoError when unopenable.
Status ReadFileBytes(const std::string& path, std::string* out);

}  // namespace rs::wal::internal
