/// \file wal.hpp
/// \brief Write-ahead event journal + crash-consistent recovery — the
///        rs::wal subsystem.
///
/// PR 6 made serving state durable via snapshots; everything between two
/// snapshots was still volatile. This layer closes the gap the way
/// production systems do (ARIES-style write-ahead logging): every serving
/// event the fleet emits — register, retire, replace-model, observe, plan
/// boundaries — is appended to an on-disk journal *as it happens*, each
/// record CRC-framed and LSN-stamped, so a kill -9 at any instruction
/// boundary loses nothing that a caller already saw succeed:
///
///   recovery = load the last checkpoint (a fleet snapshot tied to a
///   journal LSN) + replay the journal tail through rs::trace::Replay
///   into the restored fleet, verifying every replayed action
///   byte-for-byte against what the journal recorded.
///
/// The journal *is* the trace: records carry the exact rs::trace event
/// encoding (one wire format shared by capture and journal —
/// trace::EncodeEvent/DecodeEvent), and FleetJournal is an api::ServingTap
/// attached through the same hook as trace::Recorder. The tap runs on the
/// caller thread after the operation applies, so a crash between apply and
/// append can only lose results the caller never received — never an
/// acknowledged one once the fsync policy's durability point has passed.
///
/// Layering note: ISSUE 10 sketches `ScalerFleet::EnableJournal`; the api
/// layer sits *below* trace/wal in the strictly-downward link graph, so a
/// member function would invert the dependency. The same wiring ships as
/// wal::EnableJournal(fleet, journal) — one call, same semantics, no cycle.
///
/// Failure semantics mirror the rest of the repo: append/fsync/rotate
/// failures (fault sites wal.append / wal.fsync / wal.rotate, stormed by
/// MakeStormPlan) are retried, then the journal fail-stops — status()
/// turns sticky-broken, serving continues unjournaled, and recovery still
/// replays the durable prefix. Two failures skip the retries and fail-stop
/// at once, because retrying would lie: a real fsync() error (Linux may
/// drop the dirty pages, so a later fsync returning 0 proves nothing —
/// "fsyncgate") and a partial append whose cut-back ftruncate failed
/// (retrying would bury the half-frame mid-file). docs/WAL_FORMAT.md is the normative on-disk
/// spec (machine-checked by tools/trace_spec_check.py);
/// docs/ARCHITECTURE.md describes the recovery state machine.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rs/api/scaler_fleet.hpp"
#include "rs/api/serving_tap.hpp"
#include "rs/common/status.hpp"
#include "rs/trace/trace.hpp"

namespace rs::wal {

/// When appended records are pushed to stable storage.
enum class FsyncPolicy : std::uint8_t {
  kEveryRecord,  ///< fsync after every append: zero-loss through power cut.
  kEveryN,       ///< fsync every `fsync_every_n` records.
  kEveryT,       ///< fsync when `fsync_every_s` elapsed since the last one.
  kNone,         ///< Never fsync on append: zero-loss through kill -9 only
                 ///< (the OS page cache survives the process), not power
                 ///< loss. Rotation and checkpoint still sync.
};

const char* FsyncPolicyName(FsyncPolicy policy);

struct JournalPolicy {
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  std::uint64_t fsync_every_n = 64;  ///< FsyncPolicy::kEveryN knob.
  double fsync_every_s = 0.05;       ///< FsyncPolicy::kEveryT knob (steady
                                     ///< clock — avoid in parity tests).
  /// Rotate to a fresh segment once the active one exceeds this (a record
  /// never spans segments; tests shrink it to force rotation windows).
  std::uint64_t segment_bytes = 4ull << 20;
  /// Checkpoint() deletes segments fully covered by the checkpoint LSN
  /// (the active segment is always kept, preserving the invariant that
  /// the journal end never trails the checkpoint).
  bool remove_retired_segments = true;
};

/// What Open() found and repaired on disk.
struct OpenReport {
  std::size_t segments = 0;          ///< Segment files after the scan.
  std::uint64_t last_lsn = 0;        ///< Highest durable LSN (0: none).
  bool had_checkpoint = false;
  std::uint64_t checkpoint_lsn = 0;
  std::size_t tail_events = 0;       ///< Decoded events past the checkpoint.
  std::size_t truncated_bytes = 0;   ///< Torn tail dropped from the last
                                     ///< segment (crash mid-append).
  std::size_t dropped_segments = 0;  ///< Header-only/torn trailing segments
                                     ///< dropped (crash mid-rotation).
  std::size_t removed_tmp_files = 0; ///< Orphaned `*.tmp` swept.
};

/// Knobs for FleetJournal::Recover.
struct RecoverOptions {
  /// Worker-pool size of the recovered fleet.
  std::size_t worker_threads = 0;
  /// Decision-clock factory for restored snapshots taken under an injected
  /// clock (same contract as trace::ReplayOptions::decision_clock_for).
  std::function<sim::DecisionClock*(const std::string& tenant)>
      decision_clock_for;
};

struct RecoveryReport {
  bool had_checkpoint = false;
  std::uint64_t checkpoint_lsn = 0;
  std::size_t events_replayed = 0;  ///< Journal-tail events re-driven.
};

/// One segment file's verification summary (rs_snapshot --verify).
struct SegmentReport {
  std::uint64_t first_lsn = 0;
  std::uint64_t last_lsn = 0;        ///< 0 when the segment holds no records.
  std::size_t records = 0;
  std::size_t bytes = 0;             ///< File size.
  std::size_t torn_tail_bytes = 0;   ///< Trailing torn record (legal: a
                                     ///< crash mid-append leaves one).
};

/// \brief Verifies one journal segment file: header magic/version, per-
///        record CRC + length framing, and LSN contiguity. A torn tail is
///        reported, not an error (recovery truncates it); corruption
///        *before* the tail is an error.
Result<SegmentReport> InspectSegmentFile(const std::string& path);

/// \brief Test-only crash-point hook: called at every named crash window
///        (wal.append.head, wal.append.torn, wal.fsync.before, ...) so a
///        kill-point harness can _Exit mid-operation. Null disarms.
///        Not for production use; costs one branch per window when unset.
using CrashPointHook = void (*)(void* arg, const char* point);
void SetCrashPointHook(CrashPointHook hook, void* arg);

/// Fires the installed crash-point hook (no-op when unset). Exposed so
/// harnesses can interleave their own points (e.g. "serve.step") with the
/// journal's on one counter.
void CrashPoint(const char* point);

/// \brief The write-ahead journal for one fleet's serving events.
///
/// Lifecycle:
///   wal::FleetJournal journal;
///   RS_RETURN_NOT_OK(journal.Open(dir, policy));      // scan + repair
///   RS_ASSIGN_OR_RETURN(auto fleet, journal.Recover()); // checkpoint+tail
///   RS_RETURN_NOT_OK(journal.Attach(&fleet));         // resume journaling
///   ... serve ...
///   RS_RETURN_NOT_OK(journal.Checkpoint("label"));    // snapshot @ LSN
///   journal.Detach();
///
/// A fresh directory skips Recover (or calls it and gets an empty fleet).
/// Single caller thread, like the fleet itself; the journal must outlive
/// its attachment. Incompatible with the freshness loop (the tap hook
/// refuses the combination) — journaled fleets retrain synchronously.
class FleetJournal final : public api::ServingTap {
 public:
  FleetJournal() = default;
  ~FleetJournal() override;

  FleetJournal(const FleetJournal&) = delete;
  FleetJournal& operator=(const FleetJournal&) = delete;

  /// \brief Opens (creating if needed) the journal directory: sweeps
  ///        orphaned temp files, loads the checkpoint's LSN + tenant-id
  ///        intern table, walks every segment validating CRC/framing/LSN
  ///        contiguity, truncates a torn tail, decodes the event tail past
  ///        the checkpoint, and positions for appending.
  ///
  /// Corruption *before* the journal end (mid-file CRC mismatch, LSN gap,
  /// checkpoint LSN past the journal end) fails with a descriptive Status —
  /// those are never left by a crash, only by tampering or disk rot.
  Status Open(const std::string& dir, const JournalPolicy& policy = {});

  const OpenReport& open_report() const { return open_report_; }

  /// \brief Rebuilds the fleet this journal describes: restores the
  ///        checkpoint snapshot (an empty fleet when none exists) and
  ///        re-drives the journal tail through trace::Replay, verifying
  ///        every replayed action byte-identically against the journal.
  ///        A divergence means the journal does not describe this build's
  ///        deterministic serving — corruption — and fails.
  ///
  /// The replayable tail is frozen at Open() time, so Recover refuses (with
  /// a descriptive Status) once this journal has appended records — Open a
  /// fresh FleetJournal on the directory to recover the full stream.
  Result<api::ScalerFleet> Recover(const RecoverOptions& options = {},
                                   RecoveryReport* report = nullptr);

  /// \brief Attaches to `fleet` as its serving tap and journals a
  ///        kRegister (with full scaler snapshot) for every fleet tenant
  ///        not already in the journal's intern table — so attaching a
  ///        fresh fleet journals everything, and re-attaching the fleet
  ///        Recover() just rebuilt journals nothing twice.
  Status Attach(api::ScalerFleet* fleet);

  /// Detaches from the attached fleet (no-op when detached).
  void Detach();

  /// \brief Writes a checkpoint: fsyncs the journal, then durably writes
  ///        (temp + fsync + rename + dir fsync) a snapshot container tying
  ///        the attached fleet's full state and the journal's tenant-id
  ///        intern table to the current LSN, then retires fully-covered
  ///        segments. Recovery needs only the checkpoint + later records.
  Status Checkpoint(const std::string& user_meta = "");

  /// fsyncs the active segment now, regardless of policy.
  Status Sync();

  /// \brief Sticky journal health. OK until an append/fsync/rotate exhausts
  ///        its retries; then the journal fail-stops (drops later events,
  ///        keeps serving) and this returns the first error. The durable
  ///        prefix stays recoverable.
  const Status& status() const { return status_; }

  std::uint64_t last_lsn() const { return next_lsn_ - 1; }
  /// Active-segment fsyncs since Open (policy + rotation + checkpoint
  /// syncs; bench_wal reports it per fsync policy).
  std::uint64_t fsyncs() const { return fsyncs_; }
  std::uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }
  const std::string& checkpoint_meta() const { return checkpoint_meta_; }
  const std::string& directory() const { return dir_; }
  /// Journal-tail events decoded by Open() (what Recover re-drives).
  const std::vector<trace::Event>& tail() const { return tail_; }
  /// Tenant-id intern table (checkpoint table + tail registrations).
  const std::unordered_map<std::uint32_t, std::string>& tenant_names() const {
    return names_;
  }

  // -- ServingTap (appends one journal record per successful operation) ------
  void OnRegister(const std::string& tenant,
                  const api::Scaler& scaler) override;
  void OnRetire(const std::string& tenant) override;
  void OnReplaceModel(const std::string& tenant, const api::Scaler& incoming,
                      bool at_next_plan) override;
  void OnObserve(const std::string& tenant, double arrival_time,
                 const api::Scaler::ObserveOutcome& outcome) override;
  void OnPlan(const std::string& tenant, double now,
              const sim::ScalingAction& action,
              const api::TapClockMark& clock) override;
  void OnPlanAll(double now,
                 const std::vector<api::ScalerFleet::TenantPlan>& plans,
                 const std::vector<api::TapClockMark>& clocks) override;

 private:
  std::uint32_t InternId(const std::string& tenant) const;
  /// Encodes + frames + appends one event; on exhausted retries flips
  /// status_ to broken. The journal's single write path.
  void Append(const trace::Event& event);
  /// One framed write. `*retryable` comes back false when a failed attempt
  /// could not be cut back to the record boundary (retrying would corrupt
  /// the journal mid-file).
  Status AppendAttempt(const std::string& frame, bool* retryable);
  Status Rotate();
  Status MaybeFsync();
  Status FsyncActive();
  Status LoadCheckpointMeta(const std::string& path);
  std::string SegmentPath(std::uint64_t first_lsn) const;

  std::string dir_;
  JournalPolicy policy_;
  bool opened_ = false;
  int fd_ = -1;                   ///< Active segment, O_APPEND.
  std::string active_path_;
  std::uint64_t active_size_ = 0; ///< Active segment size on disk.
  std::uint64_t active_records_ = 0;
  std::uint64_t next_lsn_ = 1;
  /// next_lsn_ as Open() left it; Recover refuses once appends outrun the
  /// tail it scanned (tail_ is frozen at Open time).
  std::uint64_t lsn_at_open_ = 1;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t records_since_fsync_ = 0;
  std::chrono::steady_clock::time_point last_fsync_{};
  Status status_ = Status::OK();
  OpenReport open_report_;
  std::uint64_t checkpoint_lsn_ = 0;
  std::string checkpoint_meta_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::unordered_map<std::uint32_t, std::string> names_;
  std::vector<trace::Event> tail_;
  /// (first_lsn, path) per segment, ascending; back() is active.
  std::vector<std::pair<std::uint64_t, std::string>> segments_;
  api::ScalerFleet* fleet_ = nullptr;
};

/// \brief One-call journaling enablement (the EnableJournal of ISSUE 10,
///        homed in wal to keep the link graph downward): Open must have
///        succeeded; attaches `journal` to `fleet`.
inline Status EnableJournal(api::ScalerFleet* fleet, FleetJournal* journal) {
  if (journal == nullptr) {
    return Status::Invalid("EnableJournal: journal is null");
  }
  return journal->Attach(fleet);
}

}  // namespace rs::wal
