/// \file journal.cpp
/// \brief FleetJournal write path: open/repair, append with CRC framing and
///        fsync policy, segment rotation, checkpointing, and the ServingTap
///        callbacks that feed it. docs/WAL_FORMAT.md is the normative
///        on-disk spec; recovery lives in recover.cpp.
#include <fcntl.h>

#include <filesystem>
#include <system_error>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <utility>

#include "rs/fault/fault.hpp"
#include "rs/persist/atomic_file.hpp"
#include "rs/persist/persist.hpp"
#include "rs/wal/internal.hpp"
#include "rs/wal/wal.hpp"

namespace rs::wal {

namespace {

/// Append/fsync/rotate attempts before the journal fail-stops.
constexpr int kAttempts = 3;

CrashPointHook g_crash_hook = nullptr;
void* g_crash_hook_arg = nullptr;

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, std::size_t size,
                const std::string& what) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno(what);
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status WriteFileDurable(const std::string& path, const std::string& bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot open " + path);
  Status written = WriteAll(fd, bytes.data(), bytes.size(), "write " + path);
  if (written.ok() && ::fsync(fd) != 0) {
    written = Errno("fsync " + path);
  }
  ::close(fd);
  return written;
}

/// One journal-record payload is a complete rs::persist container holding a
/// single trace event — the reader revalidates magic/version/CRC for free.
Result<std::string> EncodePayload(const trace::Event& event) {
  persist::Writer writer;
  trace::EncodeEvent(&writer, event);
  std::ostringstream out(std::ios::binary);
  RS_RETURN_NOT_OK(writer.Finish(out));
  return std::move(out).str();
}

Status DecodePayload(std::string_view payload, trace::Event* event) {
  RS_ASSIGN_OR_RETURN(persist::Reader reader,
                      persist::Reader::FromBytes(std::string(payload)));
  RS_RETURN_NOT_OK(trace::DecodeEvent(&reader, event));
  if (reader.remaining() != 0) {
    return Status::Invalid("journal record payload carries " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes after the event");
  }
  return Status::OK();
}

/// Segment filenames are wal-<16 hex digits of first LSN>.rswal so a
/// lexicographic sort is an LSN sort.
bool ParseSegmentName(const std::string& name, std::uint64_t* first_lsn) {
  constexpr const char kPrefix[] = "wal-";
  constexpr const char kSuffix[] = ".rswal";
  if (name.size() != 4 + 16 + 6) return false;
  if (name.compare(0, 4, kPrefix) != 0) return false;
  if (name.compare(20, 6, kSuffix) != 0) return false;
  std::uint64_t value = 0;
  for (std::size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *first_lsn = value;
  return true;
}

}  // namespace

void SetCrashPointHook(CrashPointHook hook, void* arg) {
  g_crash_hook = hook;
  g_crash_hook_arg = arg;
}

void CrashPoint(const char* point) {
  if (g_crash_hook != nullptr) g_crash_hook(g_crash_hook_arg, point);
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord:
      return "every-record";
    case FsyncPolicy::kEveryN:
      return "every-n";
    case FsyncPolicy::kEveryT:
      return "every-t";
    case FsyncPolicy::kNone:
      return "none";
  }
  return "unknown";
}

FleetJournal::~FleetJournal() {
  if (fd_ >= 0) ::close(fd_);
}

std::string FleetJournal::SegmentPath(std::uint64_t first_lsn) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.rswal",
                static_cast<unsigned long long>(first_lsn));
  return dir_ + "/" + name;
}

std::uint32_t FleetJournal::InternId(const std::string& tenant) const {
  const auto it = ids_.find(tenant);
  // The fleet only fires callbacks for tenants it holds, and every way a
  // tenant can land in the fleet fires OnRegister first, so the lookup
  // cannot miss; 0 (never a valid id) keeps a corrupted stream decodable.
  return it == ids_.end() ? 0 : it->second;
}

Status FleetJournal::Open(const std::string& dir,
                          const JournalPolicy& policy) {
  if (opened_) {
    return Status::Invalid("FleetJournal::Open: already open (one journal "
                           "object drives one directory)");
  }
  dir_ = dir;
  policy_ = policy;
  {
    // create_directories: journal dirs are often nested under a state root
    // that may not exist yet (bench/crashtest scratch trees).
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      return Status::IoError(
          "FleetJournal::Open: cannot create journal directory " + dir_ +
          ": " + ec.message());
    }
  }
  open_report_ = OpenReport{};
  // A crash between checkpoint temp-write and rename strands a `.tmp`; the
  // committed checkpoint (if any) is intact, so the orphan is pure litter.
  open_report_.removed_tmp_files = persist::RemoveStaleTempFiles(dir_);

  const std::string checkpoint_path = dir_ + "/checkpoint.rsnp";
  if (std::ifstream(checkpoint_path, std::ios::binary).good()) {
    RS_RETURN_NOT_OK(LoadCheckpointMeta(checkpoint_path));
    open_report_.had_checkpoint = true;
    open_report_.checkpoint_lsn = checkpoint_lsn_;
  }

  std::vector<std::string> names;
  {
    DIR* d = ::opendir(dir_.c_str());
    if (d == nullptr) {
      return Errno("FleetJournal::Open: cannot list " + dir_);
    }
    while (const dirent* entry = ::readdir(d)) {
      std::uint64_t ignored = 0;
      if (ParseSegmentName(entry->d_name, &ignored)) {
        names.emplace_back(entry->d_name);
      }
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
  }

  // A crash mid-rotation can leave a trailing segment with a missing or
  // partial header (no records can exist past a torn header). Drop those
  // from the back; a bad header *before* the journal's end is corruption
  // and fails below.
  while (!names.empty()) {
    const std::string path = dir_ + "/" + names.back();
    std::string bytes;
    RS_RETURN_NOT_OK(internal::ReadFileBytes(path, &bytes));
    if (bytes.size() >= internal::kSegmentHeaderBytes &&
        internal::ReadU32Le(bytes.data()) == internal::kSegmentMagic) {
      break;
    }
    std::remove(path.c_str());
    ++open_report_.dropped_segments;
    names.pop_back();
  }

  segments_.clear();
  tail_.clear();
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string path = dir_ + "/" + names[i];
    std::string bytes;
    RS_RETURN_NOT_OK(internal::ReadFileBytes(path, &bytes));
    const bool last = i + 1 == names.size();
    const auto on_record = [this](std::uint64_t lsn,
                                  std::string_view payload) -> Status {
      if (lsn <= checkpoint_lsn_) return Status::OK();  // snapshot covers it
      trace::Event event;
      RS_RETURN_NOT_OK(DecodePayload(payload, &event));
      // The journal tail extends the checkpoint's intern table exactly the
      // way live appends built it.
      if (event.kind == trace::EventKind::kRegister) {
        names_[event.id] = event.name;
        ids_[event.name] = event.id;
        if (event.id >= next_id_) next_id_ = event.id + 1;
      } else if (event.kind == trace::EventKind::kRetire) {
        const auto named = names_.find(event.id);
        if (named != names_.end()) {
          const auto live = ids_.find(named->second);
          if (live != ids_.end() && live->second == event.id) {
            ids_.erase(live);
          }
        }
      }
      tail_.push_back(std::move(event));
      return Status::OK();
    };
    auto scan = internal::ScanSegmentBytes(bytes, /*allow_torn_tail=*/last,
                                           expected, on_record);
    if (!scan.ok()) {
      return Status(scan.status().code(),
                    "journal segment " + names[i] + ": " +
                        scan.status().message());
    }
    std::uint64_t file_lsn = 0;
    ParseSegmentName(names[i], &file_lsn);
    if (file_lsn != scan->first_lsn) {
      return Status::Invalid("journal segment " + names[i] +
                             " is named for LSN " + std::to_string(file_lsn) +
                             " but its header claims LSN " +
                             std::to_string(scan->first_lsn) +
                             "; the file was renamed or spliced");
    }
    if (i == 0) {
      const bool gap = open_report_.had_checkpoint
                           ? scan->first_lsn > checkpoint_lsn_ + 1
                           : scan->first_lsn != 1;
      if (gap) {
        return Status::Invalid(
            "journal begins at LSN " + std::to_string(scan->first_lsn) +
            " but nothing covers LSN " +
            std::to_string(checkpoint_lsn_ + 1) +
            " onward (retired segments were removed without a covering "
            "checkpoint, or the checkpoint was rolled back)");
      }
    }
    if (scan->torn_bytes > 0) {
      // Torn tail from a crash mid-append: cut the file back to the last
      // intact record boundary, durably.
      const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd < 0) {
        return Errno("FleetJournal::Open: cannot reopen " + path +
                     " to truncate its torn tail");
      }
      if (::ftruncate(fd, static_cast<off_t>(scan->valid_bytes)) != 0) {
        const Status error =
            Errno("FleetJournal::Open: cannot truncate torn tail of " + path);
        ::close(fd);
        return error;
      }
      if (::fsync(fd) != 0) {
        const Status error =
            Errno("FleetJournal::Open: cannot fsync " + path +
                  " after truncating its torn tail");
        ::close(fd);
        return error;
      }
      ::close(fd);
      open_report_.truncated_bytes += scan->torn_bytes;
    }
    segments_.emplace_back(scan->first_lsn, path);
    expected = scan->records > 0 ? scan->last_lsn + 1 : scan->first_lsn;
    if (last) {
      active_size_ = scan->valid_bytes;
      active_records_ = scan->records;
    }
  }

  next_lsn_ = segments_.empty() ? checkpoint_lsn_ + 1 : expected;
  if (last_lsn() < checkpoint_lsn_) {
    return Status::Invalid(
        "journal ends at LSN " + std::to_string(last_lsn()) +
        " but the checkpoint claims LSN " + std::to_string(checkpoint_lsn_) +
        ": stale snapshot with a lost journal suffix — the journal was "
        "truncated below its own checkpoint, which no crash can do");
  }

  if (segments_.empty()) {
    const std::string path = SegmentPath(next_lsn_);
    // O_APPEND like every segment fd: writes land at EOF regardless of the
    // file offset, so the post-failure ftruncate in AppendAttempt never
    // leaves a zero-filled hole under a retried frame.
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_APPEND | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0) {
      return Errno("FleetJournal::Open: cannot create first segment " + path);
    }
    const std::string header = internal::BuildSegmentHeader(next_lsn_);
    Status written =
        WriteAll(fd, header.data(), header.size(), "write header of " + path);
    if (written.ok() && ::fsync(fd) != 0) {
      written = Errno("fsync " + path);
    }
    if (!written.ok()) {
      ::close(fd);
      return written;
    }
    RS_RETURN_NOT_OK(persist::FsyncParentDir(path));
    fd_ = fd;
    active_path_ = path;
    active_size_ = internal::kSegmentHeaderBytes;
    active_records_ = 0;
    segments_.emplace_back(next_lsn_, path);
  } else {
    active_path_ = segments_.back().second;
    fd_ = ::open(active_path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd_ < 0) {
      return Errno("FleetJournal::Open: cannot open active segment " +
                   active_path_);
    }
  }

  records_since_fsync_ = 0;
  last_fsync_ = std::chrono::steady_clock::now();
  lsn_at_open_ = next_lsn_;
  status_ = Status::OK();
  opened_ = true;
  open_report_.segments = segments_.size();
  open_report_.last_lsn = last_lsn();
  open_report_.tail_events = tail_.size();
  return Status::OK();
}

Status FleetJournal::AppendAttempt(const std::string& frame,
                                   bool* retryable) {
  *retryable = true;
  // Direct Hit() rather than RS_FAULT_POINT: the injected error must feed
  // the retry loop like a real short write.
  RS_RETURN_NOT_OK(fault::Hit("wal.append"));
  CrashPoint("wal.append.head");
  Status written = WriteAll(fd_, frame.data(), internal::kFrameHeaderBytes,
                            "append to " + active_path_);
  if (written.ok()) {
    // Two write() calls so a crash at the window between them leaves a
    // genuinely torn record (frame header, no payload) for recovery to cut.
    CrashPoint("wal.append.torn");
    written = WriteAll(fd_, frame.data() + internal::kFrameHeaderBytes,
                       frame.size() - internal::kFrameHeaderBytes,
                       "append to " + active_path_);
  }
  if (!written.ok()) {
    // A partial record may be on disk; cut back to the record boundary so a
    // retry (fd_ is O_APPEND — the next write lands at the truncated end,
    // not the stale offset) never produces a half-frame followed by a
    // fresh frame. If the cut itself fails the half-frame is stuck
    // mid-file and any retry would bury it under a new record, corrupting
    // the journal where recovery cannot repair it: unretryable.
    int rc;
    do {
      rc = ::ftruncate(fd_, static_cast<off_t>(active_size_));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      *retryable = false;
      return Status(written.code(),
                    written.message() + "; and the partial record cannot be "
                                        "cut back (ftruncate: " +
                        std::strerror(errno) + ")");
    }
    return written;
  }
  CrashPoint("wal.append.done");
  return Status::OK();
}

Status FleetJournal::FsyncActive() {
  Status last;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    last = fault::Hit("wal.fsync");
    if (!last.ok()) continue;  // Injected: no bytes were touched, retryable.
    CrashPoint("wal.fsync.before");
    if (::fsync(fd_) != 0) {
      // A failed fsync may mark the dirty pages clean without writing them
      // (Linux "fsyncgate"), so retrying on the same fd can return 0 while
      // the records never reached disk — falsely advancing the durability
      // point. A real fsync failure is therefore immediately fatal; every
      // caller turns it into the sticky fail-stop status_.
      return Errno("fsync " + active_path_ +
                   " (unretryable: a failed fsync may drop dirty pages)");
    }
    CrashPoint("wal.fsync.after");
    ++fsyncs_;
    records_since_fsync_ = 0;
    last_fsync_ = std::chrono::steady_clock::now();
    return Status::OK();
  }
  return last;
}

Status FleetJournal::MaybeFsync() {
  switch (policy_.fsync) {
    case FsyncPolicy::kEveryRecord:
      return FsyncActive();
    case FsyncPolicy::kEveryN:
      return records_since_fsync_ >= policy_.fsync_every_n ? FsyncActive()
                                                           : Status::OK();
    case FsyncPolicy::kEveryT: {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - last_fsync_;
      return elapsed.count() >= policy_.fsync_every_s ? FsyncActive()
                                                      : Status::OK();
    }
    case FsyncPolicy::kNone:
      return Status::OK();
  }
  return Status::OK();
}

Status FleetJournal::Rotate() {
  CrashPoint("wal.rotate.begin");
  // The outgoing segment must be fully durable before the journal moves
  // on — rotation is rare, so this syncs under every policy.
  RS_RETURN_NOT_OK(FsyncActive());
  const std::string path = SegmentPath(next_lsn_);
  const std::string header = internal::BuildSegmentHeader(next_lsn_);
  Status last;
  int new_fd = -1;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    last = fault::Hit("wal.rotate");
    if (!last.ok()) continue;
    // O_TRUNC: a previous crashed rotation attempt may have left a partial
    // file here; restart it cleanly. O_APPEND for the same reason as every
    // segment fd (see Open): append retries must not write past a hole.
    new_fd = ::open(path.c_str(),
                    O_WRONLY | O_APPEND | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (new_fd < 0) {
      last = Errno("FleetJournal::Rotate: cannot create " + path);
      continue;
    }
    last = WriteAll(new_fd, header.data(), header.size(),
                    "write header of " + path);
    if (last.ok() && ::fsync(new_fd) != 0) {
      last = Errno("fsync " + path);
    }
    if (last.ok()) break;
    ::close(new_fd);
    new_fd = -1;
  }
  RS_RETURN_NOT_OK(last);
  CrashPoint("wal.rotate.created");
  {
    const Status synced = persist::FsyncParentDir(path);
    if (!synced.ok()) {
      ::close(new_fd);
      return synced;
    }
  }
  ::close(fd_);
  fd_ = new_fd;
  active_path_ = path;
  active_size_ = internal::kSegmentHeaderBytes;
  active_records_ = 0;
  segments_.emplace_back(next_lsn_, path);
  CrashPoint("wal.rotate.done");
  return Status::OK();
}

void FleetJournal::Append(const trace::Event& event) {
  if (!opened_ || !status_.ok()) return;
  auto payload = EncodePayload(event);
  if (!payload.ok()) {
    status_ = payload.status();
    return;
  }
  const std::string frame = internal::BuildFrame(next_lsn_, *payload);
  if (active_records_ > 0 &&
      active_size_ + frame.size() > policy_.segment_bytes) {
    const Status rotated = Rotate();
    if (!rotated.ok()) {
      status_ = Status(rotated.code(),
                       "journal fail-stop at LSN " +
                           std::to_string(next_lsn_) +
                           " (rotation): " + rotated.message());
      return;
    }
  }
  Status appended;
  bool retryable = true;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    appended = AppendAttempt(frame, &retryable);
    if (appended.ok() || !retryable) break;
  }
  if (!appended.ok()) {
    status_ = Status(appended.code(),
                     "journal fail-stop at LSN " + std::to_string(next_lsn_) +
                         " (append): " + appended.message());
    return;
  }
  active_size_ += frame.size();
  ++active_records_;
  ++next_lsn_;
  ++records_since_fsync_;
  const Status synced = MaybeFsync();
  if (!synced.ok()) {
    status_ = Status(synced.code(), "journal fail-stop at LSN " +
                                        std::to_string(last_lsn()) +
                                        " (fsync): " + synced.message());
  }
}

Status FleetJournal::Sync() {
  if (!opened_) {
    return Status::Invalid("FleetJournal::Sync: journal is not open");
  }
  RS_RETURN_NOT_OK(status_);
  const Status synced = FsyncActive();
  if (!synced.ok()) {
    status_ = Status(synced.code(),
                     "journal fail-stop (sync): " + synced.message());
  }
  return synced;
}

Status FleetJournal::Attach(api::ScalerFleet* fleet) {
  if (fleet == nullptr) {
    return Status::Invalid("FleetJournal::Attach: fleet is null");
  }
  if (!opened_) {
    return Status::Invalid("FleetJournal::Attach: Open the journal first");
  }
  if (fleet_ != nullptr) {
    return Status::Invalid(
        "FleetJournal::Attach: already attached (Detach first; one journal "
        "records one fleet at a time)");
  }
  RS_RETURN_NOT_OK(fleet->AttachTap(this));
  fleet_ = fleet;
  // Journal a registration (with full scaler snapshot) for every fleet
  // tenant the journal has not seen: a fresh fleet journals everything, a
  // fleet Recover() just rebuilt journals nothing twice.
  for (const std::string& tenant : fleet->Tenants()) {
    if (ids_.count(tenant) != 0) continue;
    const api::Scaler* scaler = fleet->Find(tenant);
    if (scaler == nullptr) {
      Detach();
      return Status::Invalid("FleetJournal::Attach: fleet lists tenant \"" +
                             tenant +
                             "\" but Find() returns no scaler for it");
    }
    std::ostringstream state(std::ios::binary);
    const Status saved = scaler->SaveState(state);
    if (!saved.ok()) {
      Detach();
      return Status(saved.code(), "FleetJournal::Attach: tenant \"" + tenant +
                                      "\" cannot be snapshotted: " +
                                      saved.message());
    }
    trace::Event event;
    event.kind = trace::EventKind::kRegister;
    event.id = next_id_++;
    event.name = tenant;
    event.state = std::move(state).str();
    ids_[tenant] = event.id;
    names_[event.id] = tenant;
    Append(event);
  }
  return Status::OK();
}

void FleetJournal::Detach() {
  if (fleet_ == nullptr) return;
  fleet_->DetachTap();
  fleet_ = nullptr;
}

Status FleetJournal::Checkpoint(const std::string& user_meta) {
  if (!opened_) {
    return Status::Invalid("FleetJournal::Checkpoint: journal is not open");
  }
  if (fleet_ == nullptr) {
    return Status::Invalid(
        "FleetJournal::Checkpoint: no fleet attached (the checkpoint embeds "
        "the attached fleet's state)");
  }
  RS_RETURN_NOT_OK(status_);
  // WAL rule: the checkpoint LSN must never lead the durable journal, so
  // the journal is synced first under every fsync policy.
  RS_RETURN_NOT_OK(Sync());
  CrashPoint("wal.checkpoint.begin");
  const std::uint64_t lsn = last_lsn();

  persist::Writer writer;
  writer.BeginSection(persist::kTagWalCheckpoint);
  writer.WriteU32(internal::kWalLayerVersion);
  writer.WriteU64(lsn);
  writer.WriteU64(next_id_);
  // Intern table sorted by id: a deterministic encoding, and recovery
  // learns dead ids (live=false) without replaying pre-checkpoint events.
  std::vector<std::pair<std::uint32_t, std::string>> entries(names_.begin(),
                                                             names_.end());
  std::sort(entries.begin(), entries.end());
  writer.WriteU64(entries.size());
  for (const auto& [id, name] : entries) {
    writer.WriteU32(id);
    writer.WriteString(name);
    const auto live = ids_.find(name);
    writer.WriteBool(live != ids_.end() && live->second == id);
  }
  writer.WriteString(user_meta);
  RS_RETURN_NOT_OK(fleet_->SaveFleetSection(&writer));
  writer.EndSection();
  std::ostringstream encoded(std::ios::binary);
  RS_RETURN_NOT_OK(writer.Finish(encoded));

  // Durable temp-write + rename by hand (not AtomicWriteFile) so the crash
  // windows between the steps are injectable; same persist.* fault sites.
  const std::string path = dir_ + "/checkpoint.rsnp";
  const std::string tmp = path + ".tmp";
  RS_RETURN_NOT_OK(fault::Hit("persist.write"));
  RS_RETURN_NOT_OK(WriteFileDurable(tmp, encoded.str()));
  CrashPoint("wal.checkpoint.tmp");
  RS_RETURN_NOT_OK(fault::Hit("persist.rename"));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("FleetJournal::Checkpoint: rename " + tmp + " -> " + path);
  }
  CrashPoint("wal.checkpoint.renamed");
  RS_RETURN_NOT_OK(persist::FsyncParentDir(path));
  CrashPoint("wal.checkpoint.done");
  checkpoint_lsn_ = lsn;
  checkpoint_meta_ = user_meta;

  // Retire segments fully covered by the checkpoint. The active segment is
  // always kept, which preserves the journal-end >= checkpoint invariant.
  if (policy_.remove_retired_segments) {
    bool removed = false;
    while (segments_.size() >= 2 &&
           segments_[1].first <= checkpoint_lsn_ + 1) {
      std::remove(segments_.front().second.c_str());
      segments_.erase(segments_.begin());
      removed = true;
    }
    if (removed) {
      RS_RETURN_NOT_OK(persist::FsyncParentDir(path));
    }
  }
  return Status::OK();
}

// -- ServingTap -------------------------------------------------------------

void FleetJournal::OnRegister(const std::string& tenant,
                              const api::Scaler& scaler) {
  trace::Event event;
  event.kind = trace::EventKind::kRegister;
  event.id = next_id_++;
  event.name = tenant;
  std::ostringstream state(std::ios::binary);
  // A scaler that cannot serialize journals an empty state, which recovery
  // rejects with a descriptive error rather than silently dropping the
  // tenant (same contract as trace::Recorder).
  if (scaler.SaveState(state).ok()) event.state = std::move(state).str();
  ids_[tenant] = event.id;
  names_[event.id] = tenant;
  Append(event);
}

void FleetJournal::OnRetire(const std::string& tenant) {
  trace::Event event;
  event.kind = trace::EventKind::kRetire;
  event.id = InternId(tenant);
  ids_.erase(tenant);
  Append(event);
}

void FleetJournal::OnReplaceModel(const std::string& tenant,
                                  const api::Scaler& incoming,
                                  bool at_next_plan) {
  trace::Event event;
  event.kind = trace::EventKind::kReplaceModel;
  event.id = InternId(tenant);
  event.at_next_plan = at_next_plan;
  std::ostringstream state(std::ios::binary);
  if (incoming.SaveState(state).ok()) event.state = std::move(state).str();
  Append(event);
}

void FleetJournal::OnObserve(const std::string& tenant, double arrival_time,
                             const api::Scaler::ObserveOutcome& outcome) {
  trace::Event event;
  event.kind = trace::EventKind::kObserve;
  event.id = InternId(tenant);
  event.time = arrival_time;
  event.cold_start = outcome.cold_start;
  event.cancel_earliest = outcome.cancel_earliest_scheduled;
  Append(event);
}

void FleetJournal::OnPlan(const std::string& tenant, double now,
                          const sim::ScalingAction& action,
                          const api::TapClockMark& clock) {
  trace::Event event;
  event.kind = trace::EventKind::kPlan;
  event.id = InternId(tenant);
  event.time = now;
  event.clock = clock;
  event.action = action;
  Append(event);
}

void FleetJournal::OnPlanAll(
    double now, const std::vector<api::ScalerFleet::TenantPlan>& plans,
    const std::vector<api::TapClockMark>& clocks) {
  trace::Event event;
  event.kind = trace::EventKind::kPlanAll;
  event.time = now;
  event.plans.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    trace::PlannedTenant plan;
    plan.id = InternId(plans[i].tenant);
    plan.ok = plans[i].status.ok();
    plan.clock = i < clocks.size() ? clocks[i] : api::TapClockMark{};
    if (plan.ok) plan.action = plans[i].action;
    event.plans.push_back(std::move(plan));
  }
  Append(event);
}

}  // namespace rs::wal
