#include "rs/timeseries/periodogram.hpp"

#include <algorithm>
#include <cmath>

#include "rs/stats/empirical.hpp"
#include "rs/timeseries/fft.hpp"

namespace rs::ts {

Result<std::vector<double>> Periodogram(const std::vector<double>& x,
                                        bool hann_window) {
  const std::size_t n = x.size();
  if (n < 4) return Status::Invalid("Periodogram: series too short");
  const double mean = stats::Mean(x);
  std::vector<double> windowed(n);
  for (std::size_t i = 0; i < n; ++i) {
    double w = 1.0;
    if (hann_window) {
      w = 0.5 - 0.5 * std::cos(2.0 * M_PI * static_cast<double>(i) /
                               static_cast<double>(n - 1));
    }
    windowed[i] = (x[i] - mean) * w;
  }
  RS_ASSIGN_OR_RETURN(auto spectrum, RealFft(windowed));
  const std::size_t half = n / 2;
  std::vector<double> pgram(half);
  for (std::size_t k = 1; k <= half; ++k) {
    pgram[k - 1] = std::norm(spectrum[k]) / static_cast<double>(n);
  }
  return pgram;
}

Result<std::vector<SpectralPeak>> FindSpectralPeaks(
    const std::vector<double>& x, std::size_t max_peaks, bool hann_window) {
  RS_ASSIGN_OR_RETURN(auto pgram, Periodogram(x, hann_window));
  const std::size_t m = pgram.size();
  double total = 0.0;
  for (double p : pgram) total += p;
  if (total <= 0.0) return std::vector<SpectralPeak>{};

  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return pgram[a] > pgram[b]; });

  std::vector<SpectralPeak> peaks;
  const std::size_t n = x.size();
  const auto md = static_cast<double>(m);
  for (std::size_t rank = 0; rank < std::min(max_peaks, m); ++rank) {
    const std::size_t idx = order[rank];
    SpectralPeak peak;
    peak.index = idx + 1;
    peak.period = static_cast<double>(n) / static_cast<double>(idx + 1);
    peak.power = pgram[idx];
    peak.g_statistic = pgram[idx] / total;
    // Fisher's exact g-test upper tail: P(g > g0) <= m (1 - g0)^{m-1}.
    const double tail =
        md * std::pow(std::max(0.0, 1.0 - peak.g_statistic), md - 1.0);
    peak.p_value = std::min(1.0, tail);
    peaks.push_back(peak);
  }
  return peaks;
}

}  // namespace rs::ts
