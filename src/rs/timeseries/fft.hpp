/// \file fft.hpp
/// \brief FFT for arbitrary lengths: iterative radix-2 Cooley–Tukey plus
///        Bluestein's chirp-z for non-power-of-two sizes. Backs the
///        periodogram and the O(n log n) autocorrelation.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::ts {

using Complex = std::complex<double>;

/// In-place FFT of a power-of-two-length vector. `inverse` applies the
/// conjugate transform *without* the 1/n normalization.
Status FftPow2(std::vector<Complex>* data, bool inverse);

/// FFT of arbitrary length (Bluestein when not a power of two).
/// `inverse = true` computes the unnormalized inverse transform.
Status Fft(std::vector<Complex>* data, bool inverse);

/// Forward FFT of a real signal; returns n complex coefficients.
Result<std::vector<Complex>> RealFft(const std::vector<double>& signal);

/// Smallest power of two >= n (n must be <= 2^62).
std::size_t NextPow2(std::size_t n);

}  // namespace rs::ts
