#include "rs/timeseries/aggregate.hpp"

#include <cmath>

namespace rs::ts {

std::vector<double> CountSeries::ToQps() const {
  std::vector<double> qps(counts.size());
  for (std::size_t t = 0; t < counts.size(); ++t) qps[t] = counts[t] / dt;
  return qps;
}

Result<CountSeries> AggregateEvents(const std::vector<double>& event_times,
                                    double start, double dt,
                                    std::size_t num_bins) {
  if (!(dt > 0.0)) return Status::Invalid("AggregateEvents: dt must be > 0");
  CountSeries series;
  series.start = start;
  series.dt = dt;
  series.counts.assign(num_bins, 0.0);
  for (double t : event_times) {
    const double offset = t - start;
    if (offset < 0.0) continue;
    const auto bin = static_cast<std::size_t>(offset / dt);
    if (bin >= num_bins) continue;
    series.counts[bin] += 1.0;
  }
  return series;
}

Result<CountSeries> AggregateEvents(const std::vector<double>& event_times,
                                    double dt, double horizon) {
  if (!(dt > 0.0) || !(horizon > 0.0)) {
    return Status::Invalid("AggregateEvents: dt and horizon must be > 0");
  }
  const auto bins = static_cast<std::size_t>(std::ceil(horizon / dt));
  return AggregateEvents(event_times, 0.0, dt, bins);
}

Result<CountSeries> Reaggregate(const CountSeries& series, std::size_t factor) {
  if (factor == 0) return Status::Invalid("Reaggregate: factor must be >= 1");
  CountSeries out;
  out.start = series.start;
  out.dt = series.dt * static_cast<double>(factor);
  const std::size_t n = series.size() / factor;
  out.counts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < factor; ++k) acc += series.counts[i * factor + k];
    out.counts[i] = acc / static_cast<double>(factor);
  }
  return out;
}

}  // namespace rs::ts
