/// \file acf.hpp
/// \brief Autocorrelation via FFT (O(n log n)) — used to validate candidate
///        periods found in the periodogram (robust periodicity detection).
#pragma once

#include <cstddef>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::ts {

/// Sample autocorrelation function at lags 0..max_lag (acf[0] == 1 unless
/// the series is constant, in which case all entries are 0).
Result<std::vector<double>> Autocorrelation(const std::vector<double>& x,
                                            std::size_t max_lag);

/// \brief Index of the highest local maximum of `acf` in [min_lag, max_lag],
///        or 0 if no local maximum exists in that range.
///
/// A local maximum requires acf[k] >= acf[k-1] and acf[k] >= acf[k+1].
std::size_t AcfPeakLag(const std::vector<double>& acf, std::size_t min_lag,
                       std::size_t max_lag);

}  // namespace rs::ts
