#include "rs/timeseries/acf.hpp"

#include <algorithm>
#include <cmath>

#include "rs/stats/empirical.hpp"
#include "rs/timeseries/fft.hpp"

namespace rs::ts {

Result<std::vector<double>> Autocorrelation(const std::vector<double>& x,
                                            std::size_t max_lag) {
  const std::size_t n = x.size();
  if (n == 0) return Status::Invalid("Autocorrelation: empty series");
  max_lag = std::min(max_lag, n - 1);

  const double mean = stats::Mean(x);
  // Zero-pad to at least 2n to turn circular into linear correlation.
  const std::size_t m = NextPow2(2 * n);
  std::vector<Complex> data(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) data[i] = Complex(x[i] - mean, 0.0);
  RS_RETURN_NOT_OK(FftPow2(&data, false));
  for (auto& c : data) c = Complex(std::norm(c), 0.0);
  RS_RETURN_NOT_OK(FftPow2(&data, true));

  std::vector<double> acf(max_lag + 1, 0.0);
  const double denom = data[0].real();
  if (denom <= 0.0) return acf;  // Constant series.
  for (std::size_t k = 0; k <= max_lag; ++k) {
    acf[k] = data[k].real() / denom;
  }
  return acf;
}

std::size_t AcfPeakLag(const std::vector<double>& acf, std::size_t min_lag,
                       std::size_t max_lag) {
  if (acf.size() < 3) return 0;
  max_lag = std::min(max_lag, acf.size() - 2);
  std::size_t best = 0;
  double best_val = -2.0;
  for (std::size_t k = std::max<std::size_t>(min_lag, 1); k <= max_lag; ++k) {
    if (acf[k] >= acf[k - 1] && acf[k] >= acf[k + 1] && acf[k] > best_val) {
      best = k;
      best_val = acf[k];
    }
  }
  return best;
}

}  // namespace rs::ts
