/// \file aggregate.hpp
/// \brief Event-time → count-series aggregation (the Q_t construction of
///        Section III) and window re-aggregation used before periodicity
///        detection (Section IV, module 1).
#pragma once

#include <cstddef>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::ts {

/// \brief A regularly-spaced count series: counts[t] = number of events in
///        [start + t·dt, start + (t+1)·dt).
struct CountSeries {
  double start = 0.0;       ///< Time of the left edge of the first bin (s).
  double dt = 60.0;         ///< Bin width Δt in seconds.
  std::vector<double> counts;

  std::size_t size() const { return counts.size(); }
  /// QPS value of bin t: counts[t] / dt.
  double Qps(std::size_t t) const { return counts[t] / dt; }
  /// The whole series as QPS.
  std::vector<double> ToQps() const;
};

/// Bins ascending event times into a CountSeries covering
/// [start, start + num_bins·dt). Events outside the range are dropped.
/// Times need not be sorted.
Result<CountSeries> AggregateEvents(const std::vector<double>& event_times,
                                    double start, double dt,
                                    std::size_t num_bins);

/// Convenience: covers [0, horizon) with ceil(horizon/dt) bins.
Result<CountSeries> AggregateEvents(const std::vector<double>& event_times,
                                    double dt, double horizon);

/// \brief Averages `factor` consecutive bins (time aggregation that reveals
///        periodicity hidden by traffic randomness — Section IV).
///
/// The result has dt' = dt·factor and size floor(size/factor); the values
/// are *means* of the combined bins, so QPS level is preserved.
Result<CountSeries> Reaggregate(const CountSeries& series, std::size_t factor);

}  // namespace rs::ts
