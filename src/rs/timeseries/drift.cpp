#include "rs/timeseries/drift.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace rs::ts {

namespace {

/// Detector payload layout version inside kTagDriftDetector.
constexpr std::uint32_t kDetectorVersion = 1;

/// Pearson correlation; NaN-free: returns 0 when either side is constant
/// (no shape to compare — the caller treats that as "no evidence").
double Correlation(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double saa = 0.0, sbb = 0.0, sab = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (!(saa > 0.0) || !(sbb > 0.0)) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace

const char* DriftKindToString(DriftKind kind) {
  switch (kind) {
    case DriftKind::kNone:
      return "none";
    case DriftKind::kRateShift:
      return "rate_shift";
    case DriftKind::kPeriodicityBreak:
      return "periodicity_break";
  }
  return "unknown";
}

Result<DriftDetector> DriftDetector::Make(const DriftDetectorOptions& options,
                                          std::vector<double> expected_rates,
                                          double dt, std::size_t period_bins,
                                          double origin) {
  if (!(dt > 0.0)) return Status::Invalid("DriftDetector: dt must be > 0");
  if (expected_rates.empty()) {
    return Status::Invalid("DriftDetector: expected_rates must be non-empty");
  }
  if (!(options.threshold > 0.0)) {
    return Status::Invalid("DriftDetector: threshold must be > 0");
  }
  if (!(options.min_rate > 0.0)) {
    return Status::Invalid("DriftDetector: min_rate must be > 0");
  }
  if (!(options.profile_cusum_threshold > 0.0)) {
    return Status::Invalid(
        "DriftDetector: profile_cusum_threshold must be > 0");
  }
  for (double r : expected_rates) {
    if (!std::isfinite(r) || r < 0.0) {
      return Status::Invalid("DriftDetector: expected rates must be finite");
    }
  }
  DriftDetector detector;
  detector.options_ = options;
  detector.expected_ = std::move(expected_rates);
  detector.dt_ = dt;
  // The phase check needs one full reference period to compare against.
  detector.period_ =
      period_bins > 1 && period_bins <= detector.expected_.size() ? period_bins
                                                                  : 0;
  detector.origin_ = origin;
  if (detector.period_ > 0) detector.ring_.assign(detector.period_, 0.0);
  return detector;
}

double DriftDetector::ExpectedRate(std::size_t bin) const {
  const std::size_t n = expected_.size();
  if (bin < n) return expected_[bin];
  if (period_ > 0) {
    // Wrap into the last full reference period, phase-aligned: the
    // reference bin with the same phase (bin mod L) in [n − L, n).
    const std::size_t base = n - period_;
    return expected_[base + (bin - base) % period_];
  }
  return expected_.back();
}

void DriftDetector::CloseBin() {
  const std::size_t bin = bins_closed_;
  const double observed = open_count_ / dt_;
  open_count_ = 0.0;
  ++bins_closed_;

  const double expected = ExpectedRate(bin);
  const double scale = std::max(expected, options_.min_rate);
  const double x = (observed - expected) / scale;

  g_up_ = std::max(0.0, g_up_ + x - options_.delta);
  g_down_ = std::max(0.0, g_down_ - x - options_.delta);

  const bool armed = bins_closed_ >= options_.warmup_bins;
  if (!fired() && armed &&
      (g_up_ > options_.threshold || g_down_ > options_.threshold)) {
    kind_ = DriftKind::kRateShift;
    fired_time_ = origin_ + static_cast<double>(bins_closed_) * dt_;
  }

  if (period_ > 0) {
    ring_[bin % period_] = observed;
    // Compare phase profiles at every closed bin once the ring holds a full
    // period (a sliding window of the last L observed rates). Both sides
    // are indexed by phase (bin mod L), so the pairing is the same at any
    // point in the cycle — no need to wait for a period boundary, which
    // would delay detection by up to a whole period.
    if (!fired() && armed && bins_closed_ >= period_ &&
        options_.check_periodicity) {
      // Reference profile by phase: the bin of the last full reference
      // period [n − L, n) whose phase (bin mod L) equals p.
      std::vector<double> profile(period_);
      const std::size_t base = expected_.size() - period_;
      const std::size_t offset = base % period_;
      for (std::size_t p = 0; p < period_; ++p) {
        profile[p] = expected_[base + (p + period_ - offset) % period_];
      }
      const double corr = Correlation(ring_, profile);
      corr_cusum_ = std::max(
          0.0, corr_cusum_ + (options_.min_profile_correlation - corr));
      if (corr_cusum_ >= options_.profile_cusum_threshold) {
        kind_ = DriftKind::kPeriodicityBreak;
        fired_time_ = origin_ + static_cast<double>(bins_closed_) * dt_;
      }
    }
  }
}

void DriftDetector::Observe(double t) {
  if (!std::isfinite(t) || t < origin_) return;
  AdvanceTo(t);
  open_count_ += 1.0;
}

void DriftDetector::AdvanceTo(double now) {
  if (!std::isfinite(now)) return;
  // Close every bin whose right edge is at or before `now`.
  while (origin_ + static_cast<double>(bins_closed_ + 1) * dt_ <= now) {
    CloseBin();
  }
}

void DriftDetector::Serialize(persist::Writer* writer) const {
  writer->BeginSection(persist::kTagDriftDetector);
  writer->WriteU32(kDetectorVersion);
  writer->WriteDouble(dt_);
  writer->WriteDouble(origin_);
  writer->WriteU64(period_);
  writer->WriteDoubleVector(expected_);
  writer->WriteU64(bins_closed_);
  writer->WriteDouble(open_count_);
  writer->WriteDouble(g_up_);
  writer->WriteDouble(g_down_);
  writer->WriteDoubleVector(ring_);
  writer->WriteDouble(corr_cusum_);
  writer->WriteU8(static_cast<std::uint8_t>(kind_));
  writer->WriteDouble(fired_time_);
  writer->EndSection();
}

Result<DriftDetector> DriftDetector::Deserialize(
    persist::Reader* reader, const DriftDetectorOptions& options) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagDriftDetector));
  RS_ASSIGN_OR_RETURN(auto version, reader->ReadU32());
  if (version > kDetectorVersion) {
    return Status::Invalid("DriftDetector: snapshot detector version " +
                           std::to_string(version) + " is newer than " +
                           std::to_string(kDetectorVersion));
  }
  DriftDetector detector;
  detector.options_ = options;
  RS_ASSIGN_OR_RETURN(detector.dt_, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(detector.origin_, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(auto period, reader->ReadU64());
  detector.period_ = static_cast<std::size_t>(period);
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&detector.expected_));
  RS_ASSIGN_OR_RETURN(auto bins, reader->ReadU64());
  detector.bins_closed_ = static_cast<std::size_t>(bins);
  RS_ASSIGN_OR_RETURN(detector.open_count_, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(detector.g_up_, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(detector.g_down_, reader->ReadDouble());
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&detector.ring_));
  RS_ASSIGN_OR_RETURN(detector.corr_cusum_, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(auto kind, reader->ReadU8());
  detector.kind_ = static_cast<DriftKind>(kind);
  RS_ASSIGN_OR_RETURN(detector.fired_time_, reader->ReadDouble());
  RS_RETURN_NOT_OK(reader->ExitSection());
  if (!(detector.dt_ > 0.0)) {
    return Status::Invalid("DriftDetector: snapshot dt must be > 0");
  }
  if (detector.expected_.empty()) {
    return Status::Invalid("DriftDetector: snapshot expected rates empty");
  }
  if (detector.period_ > detector.expected_.size() ||
      detector.ring_.size() != detector.period_) {
    return Status::Invalid("DriftDetector: snapshot period inconsistent");
  }
  return detector;
}

}  // namespace rs::ts
