/// \file robust_filters.hpp
/// \brief Robust preprocessing: Hampel outlier replacement, moving median
///        detrending, and missing-value interpolation — the defenses that
///        make periodicity detection and NHPP fitting robust to the noise,
///        outliers, and missing data the paper stresses (Sections I, VII-B3).
#pragma once

#include <cstddef>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::ts {

/// \brief Hampel filter: a point farther than `n_sigmas` robust standard
///        deviations (MAD·1.4826) from the window median is replaced by
///        that median.
///
/// \param x          input series.
/// \param half_window window is [i - half_window, i + half_window] clipped
///                   to the series; must be >= 1.
/// \param n_sigmas   outlier threshold in robust sigmas (typical: 3).
Result<std::vector<double>> HampelFilter(const std::vector<double>& x,
                                         std::size_t half_window,
                                         double n_sigmas = 3.0);

/// Indices flagged as outliers by the same rule (for diagnostics/tests).
Result<std::vector<std::size_t>> HampelOutlierIndices(
    const std::vector<double>& x, std::size_t half_window,
    double n_sigmas = 3.0);

/// Centered moving median with the given half-window (robust trend).
Result<std::vector<double>> MovingMedian(const std::vector<double>& x,
                                         std::size_t half_window);

/// x minus its moving median (robust detrend).
Result<std::vector<double>> DetrendByMovingMedian(const std::vector<double>& x,
                                                  std::size_t half_window);

/// \brief Linear interpolation across runs of missing values.
///
/// A value is "missing" when std::isnan(x[i]) or (if
/// `treat_nonpositive_as_missing`) x[i] <= 0 in a count series context.
/// Leading/trailing missing runs are filled with the nearest valid value;
/// an all-missing series is an error.
Result<std::vector<double>> InterpolateMissing(
    const std::vector<double>& x, bool treat_nonpositive_as_missing = false);

}  // namespace rs::ts
