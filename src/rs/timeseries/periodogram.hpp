/// \file periodogram.hpp
/// \brief Hann-windowed periodogram and Fisher's g-test significance —
///        the frequency-domain half of robust periodicity detection.
#pragma once

#include <cstddef>
#include <vector>

#include "rs/common/status.hpp"

namespace rs::ts {

/// Spectral power at one candidate frequency.
struct SpectralPeak {
  std::size_t index = 0;    ///< Periodogram bin (1..n/2).
  double period = 0.0;      ///< Corresponding period in samples, n / index.
  double power = 0.0;       ///< Periodogram value.
  double g_statistic = 0.0; ///< Fisher's g = power / total power.
  double p_value = 1.0;     ///< g-test significance of the peak.
};

/// Periodogram of a demeaned (and optionally Hann-windowed) series at
/// Fourier frequencies k/n, k = 1..n/2. Entry j holds frequency (j+1)/n.
Result<std::vector<double>> Periodogram(const std::vector<double>& x,
                                        bool hann_window = true);

/// Top `max_peaks` periodogram peaks sorted by decreasing power, each with
/// Fisher's g-test p-value (upper bound of min(1, m·(1-g)^{m-1} adjusted)).
Result<std::vector<SpectralPeak>> FindSpectralPeaks(
    const std::vector<double>& x, std::size_t max_peaks = 5,
    bool hann_window = true);

}  // namespace rs::ts
