/// \file periodicity.hpp
/// \brief Robust periodicity detection — module 1 of the RobustScaler
///        framework (Fig. 2). A RobustPeriod-style hybrid: Hampel filter →
///        time re-aggregation → moving-median detrend → periodogram peaks
///        (Fisher g-test) → ACF validation and lag refinement.
#pragma once

#include <cstddef>
#include <vector>

#include "rs/common/status.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/timeseries/aggregate.hpp"

namespace rs::ts {

/// Options for DetectPeriod.
struct PeriodicityOptions {
  /// Average this many raw bins together before detection (Section IV:
  /// "time aggregation ... to reduce random effects"). 1 = no aggregation.
  std::size_t aggregate_factor = 1;
  /// Hampel half-window (in aggregated bins) for outlier removal.
  std::size_t hampel_half_window = 5;
  double hampel_n_sigmas = 3.0;
  /// Fisher g-test significance threshold for accepting a spectral peak.
  double significance = 0.01;
  /// Candidate peaks examined in decreasing power order.
  std::size_t max_peaks = 5;
  /// ACF at the (refined) candidate lag must exceed this to accept.
  double min_acf = 0.1;
  /// Candidate periods shorter than this many aggregated samples are
  /// ignored (protects against high-frequency noise peaks).
  std::size_t min_period = 4;
  /// Require at least this many full cycles inside the series.
  double min_cycles = 2.0;
  /// Optional worker pool: spectral candidates are ACF-scored in parallel
  /// (each candidate independently, results picked in peak-power order, so
  /// the detected period is identical for any pool size). The pool must
  /// outlive the DetectPeriod call.
  common::ThreadPool* pool = nullptr;
};

/// A detected periodic component.
struct DetectedPeriod {
  std::size_t period = 0;  ///< Period in *raw* (pre-aggregation) bins.
  double acf_value = 0.0;  ///< ACF at the detected lag (aggregated scale).
  double p_value = 1.0;    ///< Fisher g-test p-value of the spectral peak.
};

/// \brief Detects the dominant period of a count series.
///
/// Returns a DetectedPeriod with period == 0 when no significant periodicity
/// is found — callers then fit the NHPP without the DL penalty.
Result<DetectedPeriod> DetectPeriod(const CountSeries& series,
                                    const PeriodicityOptions& options = {});

/// Same on a plain vector (dt assumed 1; period returned in samples).
Result<DetectedPeriod> DetectPeriod(const std::vector<double>& values,
                                    const PeriodicityOptions& options = {});

}  // namespace rs::ts
