#include "rs/timeseries/robust_filters.hpp"

#include <algorithm>
#include <cmath>

#include "rs/stats/empirical.hpp"

namespace rs::ts {

namespace {

/// Collects the window [i - hw, i + hw] ∩ [0, n) around index i.
std::vector<double> Window(const std::vector<double>& x, std::size_t i,
                           std::size_t hw) {
  const std::size_t lo = i >= hw ? i - hw : 0;
  const std::size_t hi = std::min(x.size() - 1, i + hw);
  return std::vector<double>(x.begin() + static_cast<std::ptrdiff_t>(lo),
                             x.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
}

}  // namespace

Result<std::vector<double>> HampelFilter(const std::vector<double>& x,
                                         std::size_t half_window,
                                         double n_sigmas) {
  if (half_window == 0) return Status::Invalid("HampelFilter: half_window >= 1");
  std::vector<double> out(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto win = Window(x, i, half_window);
    const double med = stats::Median(std::vector<double>(win));
    const double scale = stats::MadScale(win);
    if (scale > 0.0 && std::abs(x[i] - med) > n_sigmas * scale) out[i] = med;
  }
  return out;
}

Result<std::vector<std::size_t>> HampelOutlierIndices(
    const std::vector<double>& x, std::size_t half_window, double n_sigmas) {
  if (half_window == 0) return Status::Invalid("Hampel: half_window >= 1");
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto win = Window(x, i, half_window);
    const double med = stats::Median(std::vector<double>(win));
    const double scale = stats::MadScale(win);
    if (scale > 0.0 && std::abs(x[i] - med) > n_sigmas * scale) {
      idx.push_back(i);
    }
  }
  return idx;
}

Result<std::vector<double>> MovingMedian(const std::vector<double>& x,
                                         std::size_t half_window) {
  if (half_window == 0) return Status::Invalid("MovingMedian: half_window >= 1");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = stats::Median(Window(x, i, half_window));
  }
  return out;
}

Result<std::vector<double>> DetrendByMovingMedian(const std::vector<double>& x,
                                                  std::size_t half_window) {
  RS_ASSIGN_OR_RETURN(auto trend, MovingMedian(x, half_window));
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - trend[i];
  return out;
}

Result<std::vector<double>> InterpolateMissing(
    const std::vector<double>& x, bool treat_nonpositive_as_missing) {
  auto missing = [&](double v) {
    return std::isnan(v) || (treat_nonpositive_as_missing && v <= 0.0);
  };
  std::vector<double> out(x);
  const std::size_t n = x.size();
  if (n == 0) return out;

  // Find first valid value.
  std::size_t first = 0;
  while (first < n && missing(out[first])) ++first;
  if (first == n) return Status::Invalid("InterpolateMissing: all missing");
  for (std::size_t i = 0; i < first; ++i) out[i] = out[first];

  std::size_t last_valid = first;
  for (std::size_t i = first + 1; i < n; ++i) {
    if (!missing(out[i])) {
      const std::size_t gap = i - last_valid;
      if (gap > 1) {
        const double lo = out[last_valid];
        const double hi = out[i];
        for (std::size_t k = 1; k < gap; ++k) {
          out[last_valid + k] =
              lo + (hi - lo) * static_cast<double>(k) / static_cast<double>(gap);
        }
      }
      last_valid = i;
    }
  }
  for (std::size_t i = last_valid + 1; i < n; ++i) out[i] = out[last_valid];
  return out;
}

}  // namespace rs::ts
