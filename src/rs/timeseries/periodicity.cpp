#include "rs/timeseries/periodicity.hpp"

#include <algorithm>
#include <cmath>

#include "rs/timeseries/acf.hpp"
#include "rs/timeseries/periodogram.hpp"
#include "rs/timeseries/robust_filters.hpp"

namespace rs::ts {

Result<DetectedPeriod> DetectPeriod(const std::vector<double>& values,
                                    const PeriodicityOptions& options) {
  CountSeries series;
  series.dt = 1.0;
  series.counts = values;
  PeriodicityOptions opts = options;
  opts.aggregate_factor = 1;
  return DetectPeriod(series, opts);
}

namespace {

/// Periodogram-peaks + ACF-validation core on a preprocessed series.
Result<DetectedPeriod> DetectOnSeries(const std::vector<double>& values,
                                      const PeriodicityOptions& options) {
  DetectedPeriod none;

  // Robust detrend so slow trends do not masquerade as long periods.
  const std::size_t trend_hw = std::max<std::size_t>(values.size() / 8, 2);
  RS_ASSIGN_OR_RETURN(auto detrended, DetrendByMovingMedian(values, trend_hw));

  RS_ASSIGN_OR_RETURN(auto peaks,
                      FindSpectralPeaks(detrended, options.max_peaks));
  if (peaks.empty()) return none;

  const std::size_t n = detrended.size();
  const std::size_t max_period =
      static_cast<std::size_t>(static_cast<double>(n) / options.min_cycles);
  RS_ASSIGN_OR_RETURN(auto acf, Autocorrelation(detrended, max_period + 2));

  // Each spectral candidate's ACF validation is independent of the others.
  const auto score = [&](const SpectralPeak& peak) {
    DetectedPeriod rejected;
    if (peak.p_value > options.significance) return rejected;
    const auto candidate = static_cast<std::size_t>(std::lround(peak.period));
    if (candidate < options.min_period || candidate > max_period) {
      return rejected;
    }

    // ACF validation: search for a local ACF maximum near the spectral
    // candidate (within ±20% of the lag) and require it to be material.
    const auto lo = static_cast<std::size_t>(
        std::max(2.0, std::floor(0.8 * static_cast<double>(candidate))));
    const auto hi = static_cast<std::size_t>(
        std::min(static_cast<double>(max_period),
                 std::ceil(1.2 * static_cast<double>(candidate))));
    const std::size_t refined = AcfPeakLag(acf, lo, hi);
    const std::size_t lag = refined != 0 ? refined : candidate;
    if (lag >= acf.size() || acf[lag] < options.min_acf) return rejected;

    DetectedPeriod found;
    found.period = lag;
    found.acf_value = acf[lag];
    found.p_value = peak.p_value;
    return found;
  };

  if (options.pool == nullptr || options.pool->threads() == 0) {
    // Serial: keep the early exit at the first acceptable candidate.
    for (const auto& peak : peaks) {
      const DetectedPeriod found = score(peak);
      if (found.period != 0) return found;
    }
    return none;
  }
  // Parallel: score every candidate over the shared read-only ACF, then
  // take the first acceptable one in decreasing-power order — the same
  // candidate the serial scan selects, for any pool size.
  std::vector<DetectedPeriod> scored(peaks.size());
  common::ParallelFor(options.pool, peaks.size(),
                      [&](std::size_t p) { scored[p] = score(peaks[p]); });
  for (const auto& found : scored) {
    if (found.period != 0) return found;
  }
  return none;
}

}  // namespace

Result<DetectedPeriod> DetectPeriod(const CountSeries& series,
                                    const PeriodicityOptions& options) {
  DetectedPeriod none;

  // 1. Time aggregation to suppress arrival randomness.
  CountSeries agg = series;
  if (options.aggregate_factor > 1) {
    RS_ASSIGN_OR_RETURN(agg, Reaggregate(series, options.aggregate_factor));
  }
  if (agg.size() < 16) return none;  // Too short to call anything periodic.

  // 2. Robust cleanup: fill NaNs, clip outliers.
  RS_ASSIGN_OR_RETURN(auto filled, InterpolateMissing(agg.counts));
  RS_ASSIGN_OR_RETURN(
      auto cleaned,
      HampelFilter(filled, options.hampel_half_window, options.hampel_n_sigmas));

  // 3-5. Detect on the Hampel-cleaned series first (robust to isolated
  // outliers). A workload whose periodic signal *is* a recurring narrow
  // spike train (the Google/Alibaba trace shape) gets its spikes clipped by
  // any point-outlier filter, so when the cleaned series shows nothing we
  // fall back to the merely-interpolated series.
  RS_ASSIGN_OR_RETURN(auto detected, DetectOnSeries(cleaned, options));
  if (detected.period == 0) {
    RS_ASSIGN_OR_RETURN(detected, DetectOnSeries(filled, options));
  }

  // 6. Phase-locking refinement on the *uncleaned* series: a smooth base
  // pattern yields a broad ACF ridge whose maximum can sit a few lags off,
  // while recurring spikes produce a razor-sharp peak at the exact period.
  // Re-locate the lag within ±10% using the raw ACF and keep the sharper
  // peak when it is at least comparable.
  if (detected.period > 0) {
    const std::size_t trend_hw = std::max<std::size_t>(filled.size() / 8, 2);
    RS_ASSIGN_OR_RETURN(auto raw_detrended,
                        DetrendByMovingMedian(filled, trend_hw));
    const auto lo = static_cast<std::size_t>(
        std::max(2.0, std::floor(0.9 * static_cast<double>(detected.period))));
    const auto hi = static_cast<std::size_t>(
        std::ceil(1.1 * static_cast<double>(detected.period)));
    RS_ASSIGN_OR_RETURN(auto raw_acf, Autocorrelation(raw_detrended, hi + 2));
    const std::size_t refined = AcfPeakLag(raw_acf, lo, hi);
    if (refined != 0 && raw_acf[refined] >= 0.8 * detected.acf_value) {
      detected.period = refined;
      detected.acf_value = raw_acf[refined];
    }
  }

  detected.period *= std::max<std::size_t>(options.aggregate_factor, 1);
  return detected;
}

}  // namespace rs::ts
