#include "rs/timeseries/fft.hpp"

#include <cmath>

namespace rs::ts {

namespace {
bool IsPow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

std::size_t NextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Status FftPow2(std::vector<Complex>* data, bool inverse) {
  if (data == nullptr) return Status::Invalid("FftPow2: null data");
  const std::size_t n = data->size();
  if (!IsPow2(n)) return Status::Invalid("FftPow2: size must be a power of 2");
  if (n <= 1) return Status::OK();
  auto& a = *data;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  return Status::OK();
}

Status Fft(std::vector<Complex>* data, bool inverse) {
  if (data == nullptr) return Status::Invalid("Fft: null data");
  const std::size_t n = data->size();
  if (n <= 1) return Status::OK();
  if (IsPow2(n)) return FftPow2(data, inverse);

  // Bluestein's algorithm: express the DFT as a convolution of chirped
  // sequences, evaluated with power-of-two FFTs.
  const std::size_t m = NextPow2(2 * n - 1);
  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Use k^2 mod 2n to avoid precision loss for large k.
    const std::size_t k2 = (static_cast<std::size_t>(k) * k) % (2 * n);
    const double angle = sign * M_PI * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = (*data)[k] * chirp[k];
    b[k] = std::conj(chirp[k]);
    if (k != 0) b[m - k] = std::conj(chirp[k]);
  }
  RS_RETURN_NOT_OK(FftPow2(&a, false));
  RS_RETURN_NOT_OK(FftPow2(&b, false));
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  RS_RETURN_NOT_OK(FftPow2(&a, true));
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    (*data)[k] = a[k] * chirp[k] * scale;
  }
  return Status::OK();
}

Result<std::vector<Complex>> RealFft(const std::vector<double>& signal) {
  std::vector<Complex> data(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    data[i] = Complex(signal[i], 0.0);
  }
  RS_RETURN_NOT_OK(Fft(&data, /*inverse=*/false));
  return data;
}

}  // namespace rs::ts
