/// \file drift.hpp
/// \brief Streaming drift detection over a served arrival stream: two-sided
///        CUSUM (Page–Hinkley) on binned rates against the trained
///        forecast, plus a periodicity-consistency check against the
///        trained phase profile.
///
/// The detector is the trigger of the fleet's freshness loop: it watches
/// the same arrival stream the serving mirror feeds, compares each closed
/// Δt bin against the rate the trained model predicted for that bin, and
/// latches a DriftKind once the cumulative evidence crosses the policy
/// threshold. State is tiny (two CUSUM scores + one period of ring buffer)
/// and serializable, so a restored snapshot resumes the exact same
/// statistics bit-for-bit (kTagDriftDetector).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rs/common/status.hpp"
#include "rs/persist/persist.hpp"

namespace rs::ts {

/// What the detector latched (kNone while the stream still matches).
enum class DriftKind : std::uint8_t {
  kNone = 0,
  /// Cumulative normalized rate residual crossed the CUSUM threshold —
  /// the traffic level left the trained regime.
  kRateShift = 1,
  /// The observed phase profile stopped correlating with the trained
  /// one — the periodic shape (not just the level) changed.
  kPeriodicityBreak = 2,
};

const char* DriftKindToString(DriftKind kind);

/// Policy knobs of the detector (per-tenant geometry — bin width, expected
/// rates, period — is supplied to Make(), not here, so one options struct
/// serves a whole fleet).
struct DriftDetectorOptions {
  /// Closed bins to observe before the detector may fire. Suppresses
  /// cold-start transients right after training or a swap.
  std::size_t warmup_bins = 5;
  /// Rate floor (events/s) for the residual normalization, so near-silent
  /// reference bins do not blow up x = (obs − exp) / max(exp, min_rate).
  double min_rate = 1e-3;
  /// CUSUM drift allowance δ in normalized-residual units: per-bin slack
  /// subtracted before accumulation. Larger = more tolerant of noise.
  double delta = 0.25;
  /// CUSUM firing threshold h in normalized-residual units.
  double threshold = 8.0;
  /// Reference level for the periodicity check: the Pearson correlation
  /// between the last observed period and the trained phase profile is
  /// expected to stay above this while the shape holds.
  double min_profile_correlation = 0.4;
  /// Firing threshold of the leaky CUSUM on the correlation shortfall
  /// (min_profile_correlation − corr, accumulated per closed bin, floored
  /// at 0). A sampling dip contributes a sliver and is paid back by the
  /// next healthy bin; a genuine shape change pushes the correlation to
  /// ~0 and accumulates ~min_profile_correlation per bin until the latch.
  /// Units: correlation × bins.
  double profile_cusum_threshold = 1.0;
  /// Master switch for the periodicity-consistency check (it also needs a
  /// detected period and a reference covering one full period).
  bool check_periodicity = true;
};

/// \brief One tenant's streaming drift statistics.
class DriftDetector {
 public:
  DriftDetector() = default;

  /// \param options        policy knobs (shared fleet-wide).
  /// \param expected_rates per-second rate the trained model predicts for
  ///                       each Δt bin from `origin` on; bins past the end
  ///                       wrap into the last full period (or hold the last
  ///                       value when no period is known).
  /// \param dt             bin width in seconds (the forecast's Δt).
  /// \param period_bins    trained period in bins (0 = aperiodic).
  /// \param origin         serving time of the left edge of bin 0.
  static Result<DriftDetector> Make(const DriftDetectorOptions& options,
                                    std::vector<double> expected_rates,
                                    double dt, std::size_t period_bins,
                                    double origin);

  /// Feeds one arrival at serving time `t` (must be non-decreasing; closes
  /// every bin that ends at or before `t` first).
  void Observe(double t);

  /// Closes every bin that ends at or before `now` (call on the planning
  /// cadence so silence — rates dropping to zero — is also evidence).
  void AdvanceTo(double now);

  /// True once a drift latched; the detector keeps accepting events but
  /// never un-fires (the fleet replaces it wholesale at the next swap).
  bool fired() const { return kind_ != DriftKind::kNone; }
  DriftKind kind() const { return kind_; }
  /// Serving time of the end of the bin that latched (0 before firing).
  double fired_time() const { return fired_time_; }

  std::size_t bins_closed() const { return bins_closed_; }
  double score_up() const { return g_up_; }
  double score_down() const { return g_down_; }
  /// Accumulated correlation-shortfall mass of the periodicity check.
  double profile_score() const { return corr_cusum_; }

  /// Rebinds the policy knobs without touching the statistic state (used
  /// when a restored detector joins a fleet with a different policy).
  void set_options(const DriftDetectorOptions& options) { options_ = options; }

  /// Writes a kTagDriftDetector section with the full statistic state.
  void Serialize(persist::Writer* writer) const;

  /// Reads a kTagDriftDetector section; `options` are not persisted (they
  /// live with the fleet policy) and must match the writer's for the
  /// continuation to be bit-identical.
  static Result<DriftDetector> Deserialize(persist::Reader* reader,
                                           const DriftDetectorOptions& options);

 private:
  void CloseBin();
  double ExpectedRate(std::size_t bin) const;

  DriftDetectorOptions options_;
  std::vector<double> expected_;
  double dt_ = 60.0;
  std::size_t period_ = 0;
  double origin_ = 0.0;

  std::size_t bins_closed_ = 0;
  double open_count_ = 0.0;  ///< Events in the currently open bin.
  double g_up_ = 0.0;        ///< CUSUM score, upward shifts.
  double g_down_ = 0.0;      ///< CUSUM score, downward shifts.
  std::vector<double> ring_;  ///< Last `period_` observed rates, by phase.
  double corr_cusum_ = 0.0;   ///< Leaky CUSUM of correlation shortfall.
  DriftKind kind_ = DriftKind::kNone;
  double fired_time_ = 0.0;
};

}  // namespace rs::ts
