#include "rs/train/training_session.hpp"

#include <cmath>
#include <utility>

namespace rs::train {

namespace {

/// Session payload layout version inside kTagTrainSession.
constexpr std::uint32_t kSessionVersion = 1;

}  // namespace

Result<TrainingSession> TrainingSession::FromTrace(
    const workload::Trace& trace, const core::PipelineOptions& options) {
  if (trace.horizon() <= 0.0) {
    return Status::Invalid("TrainingSession: empty training horizon");
  }
  if (!(options.dt > 0.0)) {
    return Status::Invalid("TrainingSession: dt must be > 0");
  }
  RS_ASSIGN_OR_RETURN(auto counts,
                      ts::AggregateEvents(trace.ArrivalTimes(), options.dt,
                                          trace.horizon()));
  TrainingSession session;
  session.options_ = options;
  session.counts_ = std::move(counts);
  return session;
}

TrainingSession TrainingSession::FromTrained(
    const core::TrainedPipeline& trained,
    const core::PipelineOptions& options) {
  TrainingSession session;
  session.options_ = options;
  if (!trained.counts.counts.empty()) {
    session.counts_ = trained.counts;
    session.warm_ = trained.model.log_intensity();
    session.fits_ = 1;
    session.last_iterations_ = trained.admm_info.iterations;
  } else {
    // Restored pipelines carry only the forecast; start an empty window at
    // the trained bin width (falls back to the policy dt when absent).
    session.counts_.start = 0.0;
    session.counts_.dt =
        trained.counts.dt > 0.0 ? trained.counts.dt : options.dt;
  }
  if (!(session.counts_.dt > 0.0)) session.counts_.dt = 60.0;
  return session;
}

Status TrainingSession::AppendArrivals(const std::vector<double>& times,
                                       double up_to) {
  RS_RETURN_NOT_OK(ExtendTo(up_to));
  const double start = counts_.start;
  const double dt = counts_.dt;
  const std::size_t bins = counts_.size();
  for (double t : times) {
    if (!std::isfinite(t) || t < start) continue;
    const auto bin = static_cast<std::size_t>((t - start) / dt);
    if (bin >= bins) continue;  // At/after up_to: not yet closed.
    counts_.counts[bin] += 1.0;
  }
  return Status::OK();
}

Status TrainingSession::AppendArrival(double time) {
  if (!std::isfinite(time)) {
    return Status::Invalid("TrainingSession: arrival time must be finite");
  }
  if (time < counts_.start) return Status::OK();
  const auto bin =
      static_cast<std::size_t>((time - counts_.start) / counts_.dt);
  if (bin >= counts_.size()) counts_.counts.resize(bin + 1, 0.0);
  counts_.counts[bin] += 1.0;
  return Status::OK();
}

Status TrainingSession::ExtendTo(double up_to) {
  if (!std::isfinite(up_to)) {
    return Status::Invalid("TrainingSession: up_to must be finite");
  }
  if (up_to <= window_end()) return Status::OK();
  const auto bins = static_cast<std::size_t>(
      std::ceil((up_to - counts_.start) / counts_.dt));
  if (bins > counts_.size()) counts_.counts.resize(bins, 0.0);
  return Status::OK();
}

void TrainingSession::TruncateToCompleteBins(double up_to) {
  if (!std::isfinite(up_to)) return;
  const double span = up_to - counts_.start;
  const std::size_t complete =
      span <= 0.0 ? 0 : static_cast<std::size_t>(std::floor(span / counts_.dt));
  if (complete < counts_.size()) counts_.counts.resize(complete);
}

Result<core::TrainedPipeline> TrainingSession::Fit() {
  RS_ASSIGN_OR_RETURN(
      auto trained,
      core::TrainRobustScalerFromCounts(counts_, options_, nullptr));
  warm_ = trained.model.log_intensity();
  ++fits_;
  last_iterations_ = trained.admm_info.iterations;
  return trained;
}

Result<core::TrainedPipeline> TrainingSession::Refit() {
  const std::vector<double>* warm = warm_.empty() ? nullptr : &warm_;
  RS_ASSIGN_OR_RETURN(
      auto trained, core::TrainRobustScalerFromCounts(counts_, options_, warm));
  warm_ = trained.model.log_intensity();
  ++fits_;
  last_iterations_ = trained.admm_info.iterations;
  return trained;
}

void TrainingSession::AdoptFit(const core::TrainedPipeline& trained) {
  warm_ = trained.model.log_intensity();
  ++fits_;
  last_iterations_ = trained.admm_info.iterations;
}

void TrainingSession::Serialize(persist::Writer* writer) const {
  writer->BeginSection(persist::kTagTrainSession);
  writer->WriteU32(kSessionVersion);
  writer->WriteDouble(counts_.start);
  writer->WriteDouble(counts_.dt);
  writer->WriteDoubleVector(counts_.counts);
  writer->WriteDoubleVector(warm_);
  writer->WriteU64(fits_);
  writer->WriteU64(last_iterations_);
  writer->EndSection();
}

Result<TrainingSession> TrainingSession::Deserialize(
    persist::Reader* reader, const core::PipelineOptions& options) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagTrainSession));
  RS_ASSIGN_OR_RETURN(auto version, reader->ReadU32());
  if (version > kSessionVersion) {
    return Status::Invalid("TrainingSession: snapshot session version " +
                           std::to_string(version) + " is newer than " +
                           std::to_string(kSessionVersion));
  }
  TrainingSession session;
  session.options_ = options;
  RS_ASSIGN_OR_RETURN(session.counts_.start, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(session.counts_.dt, reader->ReadDouble());
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&session.counts_.counts));
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&session.warm_));
  RS_ASSIGN_OR_RETURN(session.fits_, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(session.last_iterations_, reader->ReadU64());
  RS_RETURN_NOT_OK(reader->ExitSection());
  if (!(session.counts_.dt > 0.0)) {
    return Status::Invalid("TrainingSession: snapshot dt must be > 0");
  }
  return session;
}

}  // namespace rs::train
