/// \file training_session.hpp
/// \brief The resumable training service behind ScalerBuilder and the
///        fleet's background retrain queue.
///
/// TrainRobustScaler is a one-shot batch: bin a trace, fit, forecast,
/// forget. A TrainingSession keeps the binned window and the fitted
/// log-intensity iterate alive between fits, so a retrain after new
/// arrivals warm-starts ADMM from the previous solution (see
/// AdmmOptions::warm_start) instead of from the smoothed cold start —
/// typically a several-fold iteration cut when the appended window is a
/// small fraction of the series. Sessions are plain values: copyable, so a
/// background retrain job can capture a point-in-time copy while the live
/// session keeps accumulating arrivals, and serializable, so they survive
/// rs::persist snapshot/restore (kTagTrainSession).
#pragma once

#include <vector>

#include "rs/core/pipeline.hpp"
#include "rs/persist/persist.hpp"
#include "rs/timeseries/aggregate.hpp"
#include "rs/workload/trace.hpp"

namespace rs::train {

/// \brief A restartable training window + warm-start state.
///
/// Cold contract: on the same counts, `Fit()` is byte-identical to
/// `TrainRobustScaler` on the trace that produced them (same modules, same
/// order of floating-point operations). `Refit()` differs only in the ADMM
/// starting iterate, which changes the iteration count, not the contract:
/// both converge to the same tolerances.
class TrainingSession {
 public:
  TrainingSession() = default;

  /// Bins `trace` at `options.dt` over its horizon (module 1a) and opens a
  /// session on the result.
  static Result<TrainingSession> FromTrace(
      const workload::Trace& trace, const core::PipelineOptions& options);

  /// Opens a session seeded from a previous fit: the trained counts become
  /// the window and the fitted log-intensity becomes the warm start. A
  /// pipeline restored from a snapshot carries no counts (the TRND section
  /// persists only the forecast); such a session starts empty and its first
  /// fit is cold — by design, not an error.
  static TrainingSession FromTrained(const core::TrainedPipeline& trained,
                                     const core::PipelineOptions& options);

  /// Appends arrival times and closes (possibly empty) bins so the window
  /// covers [start, up_to). Events before the window start or at/after
  /// `up_to` are dropped; events landing in already-closed bins still
  /// count (the serving mirror feeds in order, so this only happens for
  /// the partial tail bin).
  Status AppendArrivals(const std::vector<double>& times, double up_to);

  /// Single-event append for the serving hot path: grows the window just
  /// far enough to contain `time`'s bin and counts the event there. No
  /// allocation beyond the occasional window growth.
  Status AppendArrival(double time);

  /// Closes empty bins so the window covers [start, up_to).
  Status ExtendTo(double up_to);

  /// Drops trailing bins whose right edge lies after `up_to`, leaving only
  /// bins fully contained in [start, up_to). A retrain job runs this on its
  /// point-in-time copy so the fit never sees a partially-filled tail bin
  /// (which would bias the forecast's boundary downward).
  void TruncateToCompleteBins(double up_to);

  /// Cold fit of the current window (ignores the warm-start iterate).
  Result<core::TrainedPipeline> Fit();

  /// Warm fit: starts ADMM from the previous fit's iterate when one exists
  /// (falls back to a cold fit otherwise). Updates the iterate on success.
  Result<core::TrainedPipeline> Refit();

  /// Adopts an externally produced fit's iterate as the new warm start —
  /// how the live session catches up after a background job (which fitted
  /// a point-in-time copy) lands its result.
  void AdoptFit(const core::TrainedPipeline& trained);

  /// End of the covered window in trace time: start + bins·dt.
  double window_end() const {
    return counts_.start + static_cast<double>(counts_.size()) * counts_.dt;
  }
  std::size_t bins() const { return counts_.size(); }
  bool has_warm_start() const { return !warm_.empty(); }
  std::size_t fits() const { return fits_; }
  /// ADMM iterations of the most recent Fit/Refit (0 before the first).
  std::size_t last_iterations() const { return last_iterations_; }
  const core::PipelineOptions& options() const { return options_; }
  /// Rebinds the fit options (e.g. after a restored session joins a fleet
  /// whose freshness policy differs from the one it was saved under).
  void set_options(const core::PipelineOptions& options) { options_ = options; }

  /// Writes a kTagTrainSession section (window + warm start + counters).
  void Serialize(persist::Writer* writer) const;

  /// Reads a kTagTrainSession section. Pipeline options are not persisted
  /// (they live with the owner's policy); the caller supplies them.
  static Result<TrainingSession> Deserialize(
      persist::Reader* reader, const core::PipelineOptions& options);

 private:
  core::PipelineOptions options_;
  ts::CountSeries counts_;
  std::vector<double> warm_;  ///< Previous fit's log-intensity iterate.
  std::uint64_t fits_ = 0;
  std::uint64_t last_iterations_ = 0;
};

}  // namespace rs::train
