#include "rs/api/targets.hpp"

#include <sstream>

namespace rs::api {

core::ScalerVariant VariantOf(const ScalingTarget& target) {
  if (std::holds_alternative<HitRate>(target)) {
    return core::ScalerVariant::kHittingProbability;
  }
  if (std::holds_alternative<ResponseTimeBudget>(target)) {
    return core::ScalerVariant::kResponseTime;
  }
  return core::ScalerVariant::kCost;
}

const char* StrategyNameFor(core::ScalerVariant variant) {
  switch (variant) {
    case core::ScalerVariant::kHittingProbability:
      return "robust_hp";
    case core::ScalerVariant::kResponseTime:
      return "robust_rt";
    case core::ScalerVariant::kCost:
      return "robust_cost";
  }
  return "robust_hp";
}

const char* StrategyNameOf(const ScalingTarget& target) {
  return StrategyNameFor(VariantOf(target));
}

double RawTargetValue(const ScalingTarget& target) {
  if (const auto* hp = std::get_if<HitRate>(&target)) return hp->value;
  if (const auto* rt = std::get_if<ResponseTimeBudget>(&target)) {
    return rt->seconds;
  }
  return std::get<IdleBudget>(target).seconds;
}

Status ApplyTarget(const ScalingTarget& target,
                   core::SequentialScalerOptions* options) {
  if (options == nullptr) return Status::Invalid("ApplyTarget: null options");
  if (const auto* hp = std::get_if<HitRate>(&target)) {
    if (!(hp->value > 0.0) || !(hp->value < 1.0)) {
      std::ostringstream msg;
      msg << "hit-rate target must be in (0, 1), got " << hp->value;
      return Status::Invalid(msg.str());
    }
    options->variant = core::ScalerVariant::kHittingProbability;
    options->alpha = 1.0 - hp->value;
    return Status::OK();
  }
  if (const auto* rt = std::get_if<ResponseTimeBudget>(&target)) {
    if (!(rt->seconds > 0.0)) {
      std::ostringstream msg;
      msg << "response-time budget must be > 0 s, got " << rt->seconds;
      return Status::Invalid(msg.str());
    }
    options->variant = core::ScalerVariant::kResponseTime;
    options->rt_excess = rt->seconds;
    return Status::OK();
  }
  const auto& cost = std::get<IdleBudget>(target);
  if (!(cost.seconds > 0.0)) {
    std::ostringstream msg;
    msg << "idle budget must be > 0 s, got " << cost.seconds;
    return Status::Invalid(msg.str());
  }
  options->variant = core::ScalerVariant::kCost;
  options->idle_budget = cost.seconds;
  return Status::OK();
}

Result<ScalingTarget> TargetFromParam(core::ScalerVariant variant, double raw) {
  switch (variant) {
    case core::ScalerVariant::kHittingProbability: {
      if (!(raw > 0.0) || !(raw < 1.0)) {
        std::ostringstream msg;
        msg << "strategy 'robust_hp': target (hitting probability) must be in "
               "(0, 1), got "
            << raw;
        return Status::Invalid(msg.str());
      }
      return ScalingTarget(HitRate{raw});
    }
    case core::ScalerVariant::kResponseTime: {
      if (!(raw > 0.0)) {
        std::ostringstream msg;
        msg << "strategy 'robust_rt': target (waiting-time budget, seconds) "
               "must be > 0, got "
            << raw;
        return Status::Invalid(msg.str());
      }
      return ScalingTarget(ResponseTimeBudget{raw});
    }
    case core::ScalerVariant::kCost: {
      if (!(raw > 0.0)) {
        std::ostringstream msg;
        msg << "strategy 'robust_cost': target (idle budget, seconds) must be "
               "> 0, got "
            << raw;
        return Status::Invalid(msg.str());
      }
      return ScalingTarget(IdleBudget{raw});
    }
  }
  return Status::Invalid("TargetFromParam: unknown variant");
}

}  // namespace rs::api
