#include "rs/api/scaler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <sstream>
#include <utility>
#include <vector>

#include "rs/persist/persist.hpp"
#include "rs/stats/rng.hpp"
#include "rs/train/training_session.hpp"

namespace rs::api {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Layout version of the SCLR record (independent of the container's
/// persist::kFormatVersion); bump when the section contents change and
/// branch on the read value to migrate old snapshots.
constexpr std::uint32_t kScalerLayerVersion = 1;

void WriteDuration(persist::Writer* writer,
                   const stats::DurationDistribution& d) {
  writer->WriteU8(static_cast<std::uint8_t>(d.kind()));
  writer->WriteDouble(d.param1());
  writer->WriteDouble(d.param2());
}

Result<stats::DurationDistribution> ReadDuration(persist::Reader* reader) {
  RS_ASSIGN_OR_RETURN(const std::uint8_t kind, reader->ReadU8());
  RS_ASSIGN_OR_RETURN(const double p1, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const double p2, reader->ReadDouble());
  return stats::DurationDistribution::FromRawParams(kind, p1, p2);
}

}  // namespace

// ---------------------------------------------------------------------------
// Online serving state: a faithful mirror of the engine's Algorithm-1
// accounting (sim/engine.cpp) minus the per-query outcome records. Event
// ordering, cold-start handling, scale-in order, pending-time sampling and
// decision-time charging all match, so with the same seeds (and, in
// charge_decision_wall_time mode, equally-scripted DecisionClocks) the
// strategy sees bit-identical contexts in replay and live-loop modes.
//
// Unlike one engine replay, the state is bounded: arrivals and the action
// log live in windowed buffers that CompactServingState() trims once
// entries age past the strategy's declared history_requirement().
// ---------------------------------------------------------------------------
struct Scaler::Serving {
  /// A future creation. `seq` is the emission order; together with
  /// `drain_watermark` it tells exactly whether the caller has already
  /// received this creation through Plan() — the cold-start retraction in
  /// Observe() keys on that, not on (collision-prone) time values.
  struct ScheduledCreation {
    double time = 0.0;
    std::uint64_t seq = 0;
    bool operator>(const ScheduledCreation& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  explicit Serving(const sim::EngineOptions& opts)
      : options(opts),
        rng(opts.seed),
        clock(opts.decision_clock != nullptr ? opts.decision_clock
                                             : &own_clock) {}

  sim::EngineOptions options;
  stats::Rng rng;
  /// Decision-time source when charge_decision_wall_time is set; `clock`
  /// points at `own_clock` unless the options injected one.
  sim::SteadyDecisionClock own_clock;
  sim::DecisionClock* clock;
  /// Future creations, earliest first (ties: oldest emission first).
  std::priority_queue<ScheduledCreation, std::vector<ScheduledCreation>,
                      std::greater<>>
      schedule;
  /// Ready times of unconsumed instances, in creation order.
  std::deque<double> live;
  /// Windowed arrival history (ascending). `total_arrivals` counts every
  /// arrival ever observed; compaction may drop the stale prefix here.
  std::vector<double> arrivals;
  std::size_t total_arrivals = 0;
  double now = 0.0;
  double next_tick = kInf;
  bool started = false;
  std::size_t cold_starts = 0;
  std::size_t creations_requested = 0;
  std::size_t deletions_requested = 0;
  /// Next creation emission number and the drain watermark: creations with
  /// seq < drain_watermark have been handed to the caller by Plan().
  std::uint64_t next_seq = 0;
  std::uint64_t drain_watermark = 0;
  /// Actions emitted since the last Plan() drain, plus the emission number
  /// of each not-yet-drained creation (parallel to buffered.creation_times).
  sim::ScalingAction buffered;
  std::vector<std::uint64_t> buffered_seqs;
  /// Windowed suffix of the parity log (one entry per strategy callback),
  /// with the callback time of each retained entry. `total_callbacks`
  /// counts every callback ever made.
  std::vector<sim::ScalingAction> log;
  std::vector<double> log_times;
  std::size_t total_callbacks = 0;
};

Scaler::Scaler(core::TrainedPipeline trained,
               std::unique_ptr<sim::Autoscaler> strategy, StrategySpec spec,
               StrategyBuildContext build_context,
               sim::EngineOptions serve_defaults)
    : trained_(std::move(trained)),
      strategy_(std::move(strategy)),
      spec_(std::move(spec)),
      build_context_(build_context),
      strategy_name_(FormatStrategySpec(spec_)),
      serve_defaults_(serve_defaults),
      serving_(std::make_unique<Serving>(serve_defaults)) {}

Scaler::Scaler(Scaler&&) noexcept = default;
Scaler& Scaler::operator=(Scaler&&) noexcept = default;
Scaler::~Scaler() = default;

Result<Scaler> Scaler::FromTrainedPipeline(core::TrainedPipeline trained,
                                           StrategySpec spec,
                                           StrategyBuildContext build_context,
                                           common::ThreadPool* planning_pool) {
  StrategyContext context;
  context.forecast = &trained.forecast;
  context.pending = build_context.pending;
  context.mc_samples = build_context.mc_samples;
  context.planning_interval = build_context.planning_interval;
  context.seed = build_context.seed;
  context.planning_pool = planning_pool;
  RS_ASSIGN_OR_RETURN(auto strategy,
                      StrategyRegistry::Global().Create(spec, context));
  sim::EngineOptions serve_defaults;
  serve_defaults.pending = build_context.pending;
  // The policies copy the forecast at construction, so moving `trained`
  // into the Scaler afterwards is safe (same as RestoreStateSection).
  return Scaler(std::move(trained), std::move(strategy), std::move(spec),
                build_context, serve_defaults);
}

const sim::EngineOptions& Scaler::serving_options() const {
  return serving_->options;
}
sim::DecisionClock* Scaler::serving_clock() const { return serving_->clock; }
bool Scaler::serving_started() const { return serving_->started; }

// -- Batch replay -----------------------------------------------------------

Result<sim::SimulationResult> Scaler::Replay(const workload::Trace& test) {
  return Replay(test, serve_defaults_);
}

Result<sim::SimulationResult> Scaler::Replay(const workload::Trace& test,
                                             const sim::EngineOptions& engine) {
  if (trained_.forecast.horizon() + 1e-9 < test.horizon()) {
    std::ostringstream msg;
    msg << "Scaler::Replay: trained forecast covers "
        << trained_.forecast.horizon() << " s but the test trace spans "
        << test.horizon()
        << " s; rebuild with WithForecastHorizon(test.horizon())";
    return Status::Invalid(msg.str());
  }
  return sim::Simulate(test, strategy_.get(), engine);
}

Result<sim::Metrics> Scaler::Evaluate(const workload::Trace& test) {
  RS_ASSIGN_OR_RETURN(auto result, Replay(test));
  return sim::ComputeMetrics(result);
}

// -- Online serving ---------------------------------------------------------

sim::SimContext Scaler::MakeContext(double now) const {
  sim::SimContext ctx;
  ctx.now = now;
  ctx.queries_arrived = serving_->total_arrivals;
  ctx.instances_alive = serving_->live.size();
  ctx.instances_ready = static_cast<std::size_t>(
      std::count_if(serving_->live.begin(), serving_->live.end(),
                    [now](double ready) { return ready <= now; }));
  ctx.scheduled_creations = serving_->schedule.size();
  ctx.arrival_history = &serving_->arrivals;
  return ctx;
}

void Scaler::ApplyAndBuffer(sim::ScalingAction action, double effective) {
  // The log records the raw action at the callback's event time (the parity
  // contract compares raw actions; `effective` only shifts execution when
  // decision time is charged).
  serving_->log.push_back(action);
  serving_->log_times.push_back(serving_->now);
  ++serving_->total_callbacks;
  for (double t : action.creation_times) {
    const double at = std::max(t, effective);
    serving_->schedule.push({at, serving_->next_seq});
    serving_->buffered.creation_times.push_back(at);
    serving_->buffered_seqs.push_back(serving_->next_seq);
    ++serving_->next_seq;
  }
  serving_->creations_requested += action.creation_times.size();
  // Scale-in mirrors the engine: newest unconsumed instances first. Only
  // deletions the mirror could actually apply are forwarded to the caller —
  // the engine silently skips the excess too, so forwarding it would make
  // the caller's fleet diverge by deleting instances the mirror kept.
  const std::size_t applied =
      std::min(action.deletions, serving_->live.size());
  for (std::size_t k = 0; k < applied; ++k) {
    serving_->live.pop_back();
  }
  serving_->buffered.deletions += applied;
  serving_->deletions_requested += action.deletions;
}

void Scaler::ExecuteCreation(double t) {
  double pending = serving_->options.pending.Sample(&serving_->rng);
  if (serving_->options.pending_jitter > 0.0) {
    pending *= 1.0 + serving_->options.pending_jitter *
                         (2.0 * serving_->rng.NextDouble() - 1.0);
    pending = std::max(0.0, pending);
  }
  serving_->live.push_back(t + serving_->options.creation_latency + pending);
}

void Scaler::EnsureStarted() {
  if (serving_->started) return;
  serving_->started = true;
  const double tick = strategy_->planning_interval();
  serving_->next_tick = tick > 0.0 ? 0.0 : kInf;
  ApplyAndBuffer(strategy_->Initialize(MakeContext(0.0)), 0.0);
}

void Scaler::AdvanceTo(double t) {
  const double tick = strategy_->planning_interval();
  for (;;) {
    const double next_creation =
        serving_->schedule.empty() ? kInf : serving_->schedule.top().time;
    const double next_event = std::min(serving_->next_tick, next_creation);
    if (next_event > t) break;
    if (serving_->next_tick <= next_creation) {
      // Planning tick (ties: tick first, matching the engine). In real-
      // environment mode the decision's wall time pushes the resulting
      // creations to now + elapsed, through the same ChargedDecision
      // bracket the engine uses.
      const double now = serving_->next_tick;
      serving_->now = now;
      double effective = now;
      sim::ScalingAction action = sim::ChargedDecision(
          *serving_->clock, serving_->options.charge_decision_wall_time, now,
          &effective,
          [&] { return strategy_->OnPlanningTick(MakeContext(now)); });
      ApplyAndBuffer(std::move(action), effective);
      serving_->next_tick = now + tick;
    } else {
      serving_->now = next_creation;
      serving_->schedule.pop();
      ExecuteCreation(next_creation);
    }
  }
  serving_->now = t;
  CompactServingState();
}

Status Scaler::ConfigureServing(const sim::EngineOptions& options) {
  if (serving_->started) {
    return Status::Invalid(
        "Scaler::ConfigureServing: serving already started; call before the "
        "first Observe()/Plan() or after ResetServing()");
  }
  // Same range checks the engine applies in Simulate(): the replay and
  // serving paths must reject exactly the same configurations.
  RS_RETURN_NOT_OK(sim::ValidateEngineOptions(options));
  serving_ = std::make_unique<Serving>(options);
  return Status::OK();
}

Status Scaler::ConfigureHistoryRetention(double lookback_seconds) {
  if (std::isnan(lookback_seconds) || lookback_seconds < 0.0) {
    std::ostringstream msg;
    msg << "Scaler::ConfigureHistoryRetention: lookback must be >= 0 s "
           "(sim::kUnboundedHistory to disable compaction), got "
        << lookback_seconds;
    return Status::Invalid(msg.str());
  }
  retention_override_ = lookback_seconds;
  return Status::OK();
}

double Scaler::EffectiveRetention() const {
  return std::max(strategy_->history_requirement(), retention_override_);
}

void Scaler::CompactServingState() {
  const double retention = EffectiveRetention();
  if (!(retention < kInf)) return;
  auto& s = *serving_;
  const double cutoff = s.now - retention;
  // Entries strictly older than `cutoff` can no longer influence any
  // strategy decision (history_requirement is a lookback from `now`, and
  // the serving clock never rewinds). Trimming is amortized ring-buffer
  // style: the stale prefix is erased only once it is at least 64 entries
  // AND at least half the buffer, so steady-state serving does O(1) work
  // per event and the retained size stays within 2x the live window.
  const auto trim = [cutoff](std::vector<double>& times, auto&&... parallel) {
    const auto first_live =
        std::lower_bound(times.begin(), times.end(), cutoff);
    const auto stale =
        static_cast<std::size_t>(first_live - times.begin());
    if (stale < 64 || 2 * stale < times.size()) return;
    (parallel.erase(parallel.begin(),
                    parallel.begin() + static_cast<std::ptrdiff_t>(stale)),
     ...);
    times.erase(times.begin(), first_live);
  };
  trim(s.arrivals);
  trim(s.log_times, s.log);
}

Result<Scaler::ObserveOutcome> Scaler::Observe(double arrival_time) {
  if (!std::isfinite(arrival_time)) {
    // Reject before EnsureStarted/AdvanceTo: NaN slips past the
    // monotonicity check below (NaN < x is false) and +inf would spin the
    // planning-tick loop forever. The serving mirror must stay untouched.
    std::ostringstream msg;
    msg << "Scaler::Observe: arrival time " << arrival_time
        << " is not finite";
    return Status::Invalid(msg.str());
  }
  EnsureStarted();
  if (arrival_time < serving_->now) {
    std::ostringstream msg;
    msg << "Scaler::Observe: arrival at " << arrival_time
        << " s precedes the serving clock (" << serving_->now
        << " s); arrivals must be reported in nondecreasing order";
    return Status::Invalid(msg.str());
  }
  AdvanceTo(arrival_time);

  ObserveOutcome outcome;
  if (serving_->live.empty()) {
    // Cold start: reactive creation, cancel the earliest scheduled creation
    // (it was intended for this query) — Algorithm 1 line 7. The returned
    // outcome instructs the caller to do the same to its real fleet.
    ExecuteCreation(arrival_time);
    outcome.cold_start = true;
    if (!serving_->schedule.empty()) {
      const Serving::ScheduledCreation cancelled = serving_->schedule.top();
      serving_->schedule.pop();
      if (cancelled.seq >= serving_->drain_watermark) {
        // The caller has never seen this creation (it is still sitting in
        // the undrained Plan() buffer): retract it from the buffer instead
        // of asking the caller to cancel something it doesn't have. The
        // match is by emission number, not by time value — the buffer may
        // also hold an already-drained or already-executed creation with
        // the same timestamp, which must NOT be retracted.
        auto& seqs = serving_->buffered_seqs;
        const auto it = std::find(seqs.begin(), seqs.end(), cancelled.seq);
        if (it != seqs.end()) {
          const auto idx = it - seqs.begin();
          serving_->buffered.creation_times.erase(
              serving_->buffered.creation_times.begin() + idx);
          seqs.erase(it);
        }
      } else {
        // Already delivered through Plan(): the caller holds it and must
        // cancel it on its side.
        outcome.cancel_earliest_scheduled = true;
      }
    }
    ++serving_->cold_starts;
  }
  serving_->live.pop_front();
  serving_->arrivals.push_back(arrival_time);
  ++serving_->total_arrivals;
  ApplyAndBuffer(
      strategy_->OnQueryArrival(MakeContext(arrival_time), outcome.cold_start),
      arrival_time);
  CompactServingState();
  return outcome;
}

Result<sim::ScalingAction> Scaler::Plan(double now) {
  if (!std::isfinite(now)) {
    // Same hardening as Observe: a NaN/inf plan clock must never reach
    // AdvanceTo.
    std::ostringstream msg;
    msg << "Scaler::Plan: time " << now << " is not finite";
    return Status::Invalid(msg.str());
  }
  EnsureStarted();
  if (now < serving_->now) {
    std::ostringstream msg;
    msg << "Scaler::Plan: time " << now << " s precedes the serving clock ("
        << serving_->now << " s)";
    return Status::Invalid(msg.str());
  }
  AdvanceTo(now);
  // Everything buffered so far is now the caller's: advance the drain
  // watermark so a later cold start knows these creations must be cancelled
  // on the caller's side rather than silently retracted.
  serving_->buffered_seqs.clear();
  serving_->drain_watermark = serving_->next_seq;
  return std::exchange(serving_->buffered, sim::ScalingAction{});
}

ServingSnapshot Scaler::Snapshot() const {
  ServingSnapshot snap;
  snap.started = serving_->started;
  snap.now = serving_->now;
  snap.queries_observed = serving_->total_arrivals;
  snap.instances_alive = serving_->live.size();
  snap.instances_ready = static_cast<std::size_t>(std::count_if(
      serving_->live.begin(), serving_->live.end(),
      [t = serving_->now](double ready) { return ready <= t; }));
  snap.scheduled_creations = serving_->schedule.size();
  snap.cold_starts = serving_->cold_starts;
  snap.creations_requested = serving_->creations_requested;
  snap.deletions_requested = serving_->deletions_requested;
  snap.planning_rounds = serving_->total_callbacks;
  snap.strategy = strategy_name_;
  snap.history_retention = EffectiveRetention();
  snap.arrivals_retained = serving_->arrivals.size();
  snap.actions_retained = serving_->log.size();
  snap.planning_workspace_bytes = strategy_->planning_workspace_bytes();
  return snap;
}

const std::vector<sim::ScalingAction>& Scaler::ActionLog() const {
  return serving_->log;
}

Status Scaler::ResetServing() {
  serving_ = std::make_unique<Serving>(serving_->options);
  return Status::OK();
}

// -- Durable state ----------------------------------------------------------

Status Scaler::SaveState(std::ostream& out) const {
  persist::Writer writer;
  RS_RETURN_NOT_OK(SaveStateSection(&writer));
  return writer.Finish(out);
}

Status Scaler::SaveStateSection(persist::Writer* writer) const {
  writer->BeginSection(persist::kTagScaler);
  writer->WriteU32(kScalerLayerVersion);

  // SPEC: the structured strategy spec (bit-exact parameter values; the
  // formatted name string is lossy).
  writer->BeginSection(persist::kTagSpec);
  writer->WriteString(spec_.name);
  writer->WriteU64(spec_.params.size());
  for (const auto& [key, value] : spec_.params) {
    writer->WriteString(key);
    writer->WriteDouble(value);
  }
  writer->EndSection();

  // CTXT: the builder-time factory defaults Build() fed the registry.
  writer->BeginSection(persist::kTagBuildContext);
  WriteDuration(writer, build_context_.pending);
  writer->WriteU64(build_context_.mc_samples);
  writer->WriteDouble(build_context_.planning_interval);
  writer->WriteU64(build_context_.seed);
  writer->EndSection();

  // TRND: the forecast (the only training artifact serving reads) plus the
  // detected period for reports.
  writer->BeginSection(persist::kTagTrained);
  writer->WriteDouble(trained_.forecast.dt());
  writer->WriteDoubleVector(trained_.forecast.rates());
  writer->WriteU64(trained_.period.period);
  writer->WriteDouble(trained_.period.acf_value);
  writer->WriteDouble(trained_.period.p_value);
  writer->EndSection();

  // STRA: the strategy's mutable model state.
  writer->BeginSection(persist::kTagStrategyModel);
  RS_RETURN_NOT_OK(strategy_->SerializeModel(writer));
  writer->EndSection();

  // MIRR: the serving mirror.
  RS_RETURN_NOT_OK(SaveServingState(writer));

  writer->EndSection();
  return Status::OK();
}

Status Scaler::SaveServingState(persist::Writer* writer) const {
  const Serving& s = *serving_;
  writer->BeginSection(persist::kTagMirror);

  // Engine options (the clock pointer itself cannot travel; a flag records
  // whether one was injected so restore can demand a replacement).
  WriteDuration(writer, s.options.pending);
  writer->WriteU64(s.options.seed);
  writer->WriteBool(s.options.charge_decision_wall_time);
  writer->WriteDouble(s.options.creation_latency);
  writer->WriteDouble(s.options.pending_jitter);
  writer->WriteBool(s.options.charge_idle_until_horizon);
  writer->WriteBool(s.options.decision_clock != nullptr);
  writer->WriteDouble(retention_override_);

  // Event-loop position and lifetime counters.
  writer->WriteBool(s.started);
  writer->WriteDouble(s.now);
  writer->WriteDouble(s.next_tick);
  writer->WriteU64(s.total_arrivals);
  writer->WriteU64(s.cold_starts);
  writer->WriteU64(s.creations_requested);
  writer->WriteU64(s.deletions_requested);
  writer->WriteU64(s.next_seq);
  writer->WriteU64(s.drain_watermark);
  writer->WriteU64(s.total_callbacks);

  // The mirror's own RNG (pending-time draws) and the decision clock's
  // logical position (deterministic clocks only; a steady clock exports
  // nothing and resumes on real wall time).
  persist::WriteRngState(writer, s.rng);
  double clock_time = 0.0;
  std::uint64_t clock_readings = 0;
  const bool has_clock_position =
      s.clock->ExportPosition(&clock_time, &clock_readings);
  writer->WriteBool(has_clock_position);
  writer->WriteDouble(clock_time);
  writer->WriteU64(clock_readings);

  // Scheduled future creations, drained from a copy in (time, seq) order.
  auto schedule = s.schedule;
  writer->WriteU64(schedule.size());
  while (!schedule.empty()) {
    const Serving::ScheduledCreation top = schedule.top();
    schedule.pop();
    writer->WriteDouble(top.time);
    writer->WriteU64(top.seq);
  }

  // Live instances (ready times, creation order), retained arrival window,
  // the undrained Plan() buffer, and the retained parity-log suffix.
  writer->WriteU64(s.live.size());
  for (const double ready : s.live) writer->WriteDouble(ready);
  writer->WriteDoubleVector(s.arrivals);
  writer->WriteDoubleVector(s.buffered.creation_times);
  writer->WriteU64(s.buffered.deletions);
  writer->WriteU64Vector(s.buffered_seqs);
  writer->WriteU64(s.log.size());
  for (const sim::ScalingAction& action : s.log) {
    writer->WriteDoubleVector(action.creation_times);
    writer->WriteU64(action.deletions);
  }
  writer->WriteDoubleVector(s.log_times);

  writer->EndSection();
  return Status::OK();
}

Status Scaler::LoadServingState(persist::Reader* reader,
                                sim::DecisionClock* restore_clock) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagMirror));

  sim::EngineOptions options;
  RS_ASSIGN_OR_RETURN(options.pending, ReadDuration(reader));
  RS_ASSIGN_OR_RETURN(options.seed, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(options.charge_decision_wall_time, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(options.creation_latency, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(options.pending_jitter, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(options.charge_idle_until_horizon, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const bool had_injected_clock, reader->ReadBool());
  if (had_injected_clock && restore_clock == nullptr) {
    return Status::Invalid(
        "snapshot was taken with an injected DecisionClock; pass a "
        "replacement via ScalerRestoreOptions::decision_clock (restoring "
        "onto wall time would silently break the deterministic "
        "continuation)");
  }
  options.decision_clock = restore_clock;
  RS_RETURN_NOT_OK(sim::ValidateEngineOptions(options));
  RS_ASSIGN_OR_RETURN(const double retention, reader->ReadDouble());
  if (std::isnan(retention) || retention < 0.0) {
    return Status::Invalid(
        "snapshot carries a negative or NaN history-retention override");
  }
  retention_override_ = retention;

  serving_ = std::make_unique<Serving>(options);
  Serving& s = *serving_;
  RS_ASSIGN_OR_RETURN(s.started, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(s.now, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(s.next_tick, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t total_arrivals, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t cold_starts, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t creations, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t deletions, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(s.next_seq, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(s.drain_watermark, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(const std::uint64_t callbacks, reader->ReadU64());
  s.total_arrivals = static_cast<std::size_t>(total_arrivals);
  s.cold_starts = static_cast<std::size_t>(cold_starts);
  s.creations_requested = static_cast<std::size_t>(creations);
  s.deletions_requested = static_cast<std::size_t>(deletions);
  s.total_callbacks = static_cast<std::size_t>(callbacks);

  RS_RETURN_NOT_OK(persist::ReadRngState(reader, &s.rng));
  RS_ASSIGN_OR_RETURN(const bool has_clock_position, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(const double clock_time, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t clock_readings, reader->ReadU64());
  if (has_clock_position) {
    if (restore_clock == nullptr) {
      return Status::Invalid(
          "snapshot carries a decision-clock position but no clock flag; "
          "the file is corrupt");
    }
    RS_RETURN_NOT_OK(
        restore_clock->ImportPosition(clock_time, clock_readings));
  }

  RS_ASSIGN_OR_RETURN(const std::uint64_t schedule_size, reader->ReadU64());
  for (std::uint64_t i = 0; i < schedule_size; ++i) {
    Serving::ScheduledCreation entry;
    RS_ASSIGN_OR_RETURN(entry.time, reader->ReadDouble());
    RS_ASSIGN_OR_RETURN(entry.seq, reader->ReadU64());
    s.schedule.push(entry);
  }

  RS_ASSIGN_OR_RETURN(const std::uint64_t live_size, reader->ReadU64());
  for (std::uint64_t i = 0; i < live_size; ++i) {
    RS_ASSIGN_OR_RETURN(const double ready, reader->ReadDouble());
    s.live.push_back(ready);
  }
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&s.arrivals));
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&s.buffered.creation_times));
  RS_ASSIGN_OR_RETURN(const std::uint64_t buffered_deletions,
                      reader->ReadU64());
  s.buffered.deletions = static_cast<std::size_t>(buffered_deletions);
  RS_RETURN_NOT_OK(reader->ReadU64Vector(&s.buffered_seqs));
  if (s.buffered_seqs.size() != s.buffered.creation_times.size()) {
    return Status::Invalid(
        "snapshot's undrained action buffer is inconsistent (creation "
        "times and emission numbers differ in length)");
  }

  RS_ASSIGN_OR_RETURN(const std::uint64_t log_size, reader->ReadU64());
  for (std::uint64_t i = 0; i < log_size; ++i) {
    sim::ScalingAction action;
    RS_RETURN_NOT_OK(reader->ReadDoubleVector(&action.creation_times));
    RS_ASSIGN_OR_RETURN(const std::uint64_t action_deletions,
                        reader->ReadU64());
    action.deletions = static_cast<std::size_t>(action_deletions);
    s.log.push_back(std::move(action));
  }
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&s.log_times));
  if (s.log_times.size() != s.log.size()) {
    return Status::Invalid(
        "snapshot's parity log is inconsistent (entries and timestamps "
        "differ in length)");
  }

  return reader->ExitSection();
}

// ---------------------------------------------------------------------------
// ScalerBuilder
// ---------------------------------------------------------------------------

ScalerBuilder& ScalerBuilder::WithTrace(workload::Trace train) {
  train_ = std::move(train);
  return *this;
}
ScalerBuilder& ScalerBuilder::WithBinWidth(double dt) {
  dt_ = dt;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithForecastHorizon(double seconds) {
  forecast_horizon_ = seconds;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithAggregateFactor(std::size_t factor) {
  aggregate_factor_ = factor;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithTarget(ScalingTarget target) {
  target_ = target;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithStrategy(StrategySpec spec) {
  spec_ = std::move(spec);
  return *this;
}
ScalerBuilder& ScalerBuilder::WithPending(stats::DurationDistribution pending) {
  pending_ = pending;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithPlanningInterval(double seconds) {
  planning_interval_ = seconds;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithMcSamples(std::size_t samples) {
  mc_samples_ = samples;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithSeed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithPipelineOptions(
    core::PipelineOptions options) {
  pipeline_ = std::move(options);
  return *this;
}
ScalerBuilder& ScalerBuilder::WithTrainingPool(common::ThreadPool* pool) {
  training_pool_ = pool;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithPlanningPool(common::ThreadPool* pool) {
  planning_pool_ = pool;
  return *this;
}

Result<Scaler> ScalerBuilder::Build() const {
  // Cross-field validation: every misconfiguration that used to silently
  // produce nonsense downstream fails here with an actionable message.
  if (!train_.has_value()) {
    return Status::Invalid("ScalerBuilder: no training trace; call WithTrace");
  }
  if (train_->empty() || train_->horizon() <= 0.0) {
    return Status::Invalid(
        "ScalerBuilder: training trace is empty or has a non-positive "
        "horizon");
  }
  core::PipelineOptions pipeline = pipeline_;
  if (training_pool_ != nullptr) pipeline.training_pool = training_pool_;
  if (dt_.has_value()) pipeline.dt = *dt_;
  if (forecast_horizon_.has_value()) pipeline.forecast_horizon = *forecast_horizon_;
  if (aggregate_factor_.has_value()) {
    pipeline.periodicity.aggregate_factor = *aggregate_factor_;
  }
  if (!(pipeline.dt > 0.0)) {
    return Status::Invalid("ScalerBuilder: bin width must be > 0 s");
  }
  if (pipeline.dt > train_->horizon() / 2.0) {
    std::ostringstream msg;
    msg << "ScalerBuilder: bin width " << pipeline.dt
        << " s leaves fewer than two bins in the " << train_->horizon()
        << " s training window";
    return Status::Invalid(msg.str());
  }
  if (!(pipeline.forecast_horizon > 0.0)) {
    return Status::Invalid("ScalerBuilder: forecast horizon must be > 0 s");
  }
  if (pipeline.periodicity.aggregate_factor == 0) {
    return Status::Invalid("ScalerBuilder: aggregate factor must be >= 1");
  }
  if (!(planning_interval_ > 0.0)) {
    return Status::Invalid("ScalerBuilder: planning interval must be > 0 s");
  }
  // A WithStrategy spec may override the planning interval via its params;
  // cross-field checks must look at the value the strategy will really use.
  double effective_planning_interval = planning_interval_;
  if (spec_.has_value()) {
    const auto it = spec_->params.find("planning_interval");
    if (it != spec_->params.end()) effective_planning_interval = it->second;
  }
  if (pipeline.forecast_horizon < effective_planning_interval) {
    std::ostringstream msg;
    msg << "ScalerBuilder: forecast horizon (" << pipeline.forecast_horizon
        << " s) is shorter than one planning interval ("
        << effective_planning_interval << " s)";
    return Status::Invalid(msg.str());
  }
  if (mc_samples_ == 0) {
    return Status::Invalid("ScalerBuilder: mc_samples must be >= 1");
  }
  if (target_.has_value() && spec_.has_value()) {
    return Status::Invalid(
        "ScalerBuilder: WithTarget and WithStrategy are mutually exclusive; "
        "set the target as a strategy parameter instead");
  }

  // Train modules 1–3 through the training service. The builder is a thin
  // client of a one-shot session: a cold Fit() on the binned trace is
  // byte-identical to the old direct TrainRobustScaler call (the fleet's
  // freshness loop runs long-lived sessions of the same class and
  // warm-starts them — see rs/train/training_session.hpp).
  RS_ASSIGN_OR_RETURN(auto session,
                      train::TrainingSession::FromTrace(*train_, pipeline));
  RS_ASSIGN_OR_RETURN(auto trained, session.Fit());

  // Construct the serving strategy (module 4) through the registry so the
  // target semantics live in exactly one place.
  StrategySpec spec;
  if (spec_.has_value()) {
    spec = *spec_;
  } else {
    // Target semantics and validation live with the registry factories
    // (TargetFromParam/ApplyTarget); here we only forward the raw value.
    const ScalingTarget target = target_.value_or(ScalingTarget(HitRate{0.9}));
    spec.name = StrategyNameOf(target);
    spec.params["target"] = RawTargetValue(target);
  }

  // WithSeed / WithMcSamples / WithPlanningInterval flow through the context
  // as factory defaults for both selection styles; explicit spec parameters
  // of the same name still win.
  StrategyContext context;
  context.forecast = &trained.forecast;
  context.pending = pending_;
  context.mc_samples = mc_samples_;
  context.planning_interval = planning_interval_;
  context.seed = seed_;
  context.planning_pool = planning_pool_;
  RS_ASSIGN_OR_RETURN(auto strategy,
                      StrategyRegistry::Global().Create(spec, context));

  sim::EngineOptions serve_defaults;
  serve_defaults.pending = pending_;
  Scaler::StrategyBuildContext build_context;
  build_context.pending = pending_;
  build_context.mc_samples = mc_samples_;
  build_context.planning_interval = planning_interval_;
  build_context.seed = seed_;
  return Scaler(std::move(trained), std::move(strategy), std::move(spec),
                build_context, serve_defaults);
}

Result<Scaler> ScalerBuilder::RestoreState(std::istream& in,
                                           const ScalerRestoreOptions& options) {
  RS_ASSIGN_OR_RETURN(persist::Reader reader, persist::Reader::FromStream(in));
  return RestoreStateSection(&reader, options);
}

Result<Scaler> ScalerBuilder::RestoreStateSection(
    persist::Reader* reader, const ScalerRestoreOptions& options) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagScaler));
  RS_ASSIGN_OR_RETURN(const std::uint32_t layer_version, reader->ReadU32());
  if (layer_version == 0 || layer_version > kScalerLayerVersion) {
    return Status::Invalid("Scaler snapshot record version " +
                           std::to_string(layer_version) +
                           " is newer than this build understands");
  }

  // SPEC: the structured strategy spec.
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagSpec));
  StrategySpec spec;
  RS_ASSIGN_OR_RETURN(spec.name, reader->ReadString());
  RS_ASSIGN_OR_RETURN(const std::uint64_t param_count, reader->ReadU64());
  for (std::uint64_t i = 0; i < param_count; ++i) {
    RS_ASSIGN_OR_RETURN(std::string key, reader->ReadString());
    RS_ASSIGN_OR_RETURN(const double value, reader->ReadDouble());
    spec.params[std::move(key)] = value;
  }
  RS_RETURN_NOT_OK(reader->ExitSection());

  // CTXT: factory defaults.
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagBuildContext));
  Scaler::StrategyBuildContext build_context;
  RS_ASSIGN_OR_RETURN(build_context.pending, ReadDuration(reader));
  RS_ASSIGN_OR_RETURN(const std::uint64_t mc_samples, reader->ReadU64());
  RS_ASSIGN_OR_RETURN(build_context.planning_interval, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(build_context.seed, reader->ReadU64());
  if (mc_samples == 0 || !(build_context.planning_interval > 0.0)) {
    return Status::Invalid(
        "snapshot carries out-of-domain strategy build defaults "
        "(mc_samples must be >= 1, planning interval > 0 s)");
  }
  build_context.mc_samples = static_cast<std::size_t>(mc_samples);
  RS_RETURN_NOT_OK(reader->ExitSection());

  // TRND: the forecast. Make() re-runs the full domain validation.
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagTrained));
  core::TrainedPipeline trained;
  RS_ASSIGN_OR_RETURN(const double dt, reader->ReadDouble());
  std::vector<double> rates;
  RS_RETURN_NOT_OK(reader->ReadDoubleVector(&rates));
  RS_ASSIGN_OR_RETURN(
      trained.forecast,
      workload::PiecewiseConstantIntensity::Make(std::move(rates), dt));
  RS_ASSIGN_OR_RETURN(const std::uint64_t detected_period, reader->ReadU64());
  trained.period.period = static_cast<std::size_t>(detected_period);
  RS_ASSIGN_OR_RETURN(trained.period.acf_value, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(trained.period.p_value, reader->ReadDouble());
  RS_RETURN_NOT_OK(reader->ExitSection());

  // Rebuild the strategy through the registry (re-running every factory
  // validation), then overlay the snapshot's mutable model state.
  StrategyContext context;
  context.forecast = &trained.forecast;
  context.pending = build_context.pending;
  context.mc_samples = build_context.mc_samples;
  context.planning_interval = build_context.planning_interval;
  context.seed = build_context.seed;
  context.planning_pool = options.planning_pool;
  RS_ASSIGN_OR_RETURN(auto strategy,
                      StrategyRegistry::Global().Create(spec, context));
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagStrategyModel));
  RS_RETURN_NOT_OK(strategy->DeserializeModel(reader));
  RS_RETURN_NOT_OK(reader->ExitSection());

  // The policies copy the forecast at construction, so moving `trained`
  // into the Scaler afterwards is safe.
  sim::EngineOptions serve_defaults;
  serve_defaults.pending = build_context.pending;
  Scaler scaler(std::move(trained), std::move(strategy), std::move(spec),
                build_context, serve_defaults);
  RS_RETURN_NOT_OK(
      scaler.LoadServingState(reader, options.decision_clock));
  RS_RETURN_NOT_OK(reader->ExitSection());
  return scaler;
}

Result<core::TrainedPipeline> TrainPipeline(
    const workload::Trace& train, const core::PipelineOptions& options) {
  return core::TrainRobustScaler(train, options);
}

Result<sim::Metrics> Evaluate(const workload::Trace& test,
                              sim::Autoscaler* strategy,
                              const sim::EngineOptions& engine) {
  RS_ASSIGN_OR_RETURN(auto result, sim::Simulate(test, strategy, engine));
  return sim::ComputeMetrics(result);
}

}  // namespace rs::api
