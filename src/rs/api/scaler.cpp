#include "rs/api/scaler.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <sstream>
#include <utility>
#include <vector>

#include "rs/stats/rng.hpp"

namespace rs::api {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

// ---------------------------------------------------------------------------
// Online serving state: a faithful mirror of the engine's Algorithm-1
// accounting (sim/engine.cpp) minus the per-query outcome records. Event
// ordering, cold-start handling, scale-in order and pending-time sampling
// all match, so with the same seed the strategy sees bit-identical contexts
// in replay and live-loop modes.
// ---------------------------------------------------------------------------
struct Scaler::Serving {
  explicit Serving(const sim::EngineOptions& opts)
      : options(opts), rng(opts.seed) {}

  sim::EngineOptions options;
  stats::Rng rng;
  /// Future creation times, earliest first.
  std::priority_queue<double, std::vector<double>, std::greater<>> schedule;
  /// Ready times of unconsumed instances, in creation order.
  std::deque<double> live;
  std::vector<double> arrivals;
  double now = 0.0;
  double next_tick = kInf;
  bool started = false;
  std::size_t cold_starts = 0;
  std::size_t creations_requested = 0;
  std::size_t deletions_requested = 0;
  /// Actions emitted since the last Plan() drain.
  sim::ScalingAction buffered;
  /// One entry per strategy callback (the parity log).
  std::vector<sim::ScalingAction> log;
};

Scaler::Scaler(core::TrainedPipeline trained,
               std::unique_ptr<sim::Autoscaler> strategy,
               std::string strategy_name, sim::EngineOptions serve_defaults)
    : trained_(std::move(trained)),
      strategy_(std::move(strategy)),
      strategy_name_(std::move(strategy_name)),
      serve_defaults_(serve_defaults),
      serving_(std::make_unique<Serving>(serve_defaults)) {}

Scaler::Scaler(Scaler&&) noexcept = default;
Scaler& Scaler::operator=(Scaler&&) noexcept = default;
Scaler::~Scaler() = default;

// -- Batch replay -----------------------------------------------------------

Result<sim::SimulationResult> Scaler::Replay(const workload::Trace& test) {
  return Replay(test, serve_defaults_);
}

Result<sim::SimulationResult> Scaler::Replay(const workload::Trace& test,
                                             const sim::EngineOptions& engine) {
  if (trained_.forecast.horizon() + 1e-9 < test.horizon()) {
    std::ostringstream msg;
    msg << "Scaler::Replay: trained forecast covers "
        << trained_.forecast.horizon() << " s but the test trace spans "
        << test.horizon()
        << " s; rebuild with WithForecastHorizon(test.horizon())";
    return Status::Invalid(msg.str());
  }
  return sim::Simulate(test, strategy_.get(), engine);
}

Result<sim::Metrics> Scaler::Evaluate(const workload::Trace& test) {
  RS_ASSIGN_OR_RETURN(auto result, Replay(test));
  return sim::ComputeMetrics(result);
}

// -- Online serving ---------------------------------------------------------

sim::SimContext Scaler::MakeContext(double now) const {
  sim::SimContext ctx;
  ctx.now = now;
  ctx.queries_arrived = serving_->arrivals.size();
  ctx.instances_alive = serving_->live.size();
  ctx.instances_ready = static_cast<std::size_t>(
      std::count_if(serving_->live.begin(), serving_->live.end(),
                    [now](double ready) { return ready <= now; }));
  ctx.scheduled_creations = serving_->schedule.size();
  ctx.arrival_history = &serving_->arrivals;
  return ctx;
}

void Scaler::ApplyAndBuffer(sim::ScalingAction action, double now) {
  serving_->log.push_back(action);
  for (double t : action.creation_times) {
    const double at = std::max(t, now);
    serving_->schedule.push(at);
    serving_->buffered.creation_times.push_back(at);
  }
  serving_->creations_requested += action.creation_times.size();
  // Scale-in mirrors the engine: newest unconsumed instances first.
  for (std::size_t k = 0; k < action.deletions && !serving_->live.empty();
       ++k) {
    serving_->live.pop_back();
  }
  serving_->buffered.deletions += action.deletions;
  serving_->deletions_requested += action.deletions;
}

void Scaler::ExecuteCreation(double t) {
  double pending = serving_->options.pending.Sample(&serving_->rng);
  if (serving_->options.pending_jitter > 0.0) {
    pending *= 1.0 + serving_->options.pending_jitter *
                         (2.0 * serving_->rng.NextDouble() - 1.0);
    pending = std::max(0.0, pending);
  }
  serving_->live.push_back(t + serving_->options.creation_latency + pending);
}

void Scaler::EnsureStarted() {
  if (serving_->started) return;
  serving_->started = true;
  const double tick = strategy_->planning_interval();
  serving_->next_tick = tick > 0.0 ? 0.0 : kInf;
  ApplyAndBuffer(strategy_->Initialize(MakeContext(0.0)), 0.0);
}

void Scaler::AdvanceTo(double t) {
  const double tick = strategy_->planning_interval();
  for (;;) {
    const double next_creation =
        serving_->schedule.empty() ? kInf : serving_->schedule.top();
    const double next_event = std::min(serving_->next_tick, next_creation);
    if (next_event > t) break;
    if (serving_->next_tick <= next_creation) {
      // Planning tick (ties: tick first, matching the engine).
      const double now = serving_->next_tick;
      serving_->now = now;
      ApplyAndBuffer(strategy_->OnPlanningTick(MakeContext(now)), now);
      serving_->next_tick = now + tick;
    } else {
      serving_->now = next_creation;
      serving_->schedule.pop();
      ExecuteCreation(next_creation);
    }
  }
  serving_->now = t;
}

Status Scaler::ConfigureServing(const sim::EngineOptions& options) {
  if (serving_->started) {
    return Status::Invalid(
        "Scaler::ConfigureServing: serving already started; call before the "
        "first Observe()/Plan() or after ResetServing()");
  }
  if (options.charge_decision_wall_time) {
    // The engine clamps actions to now + decision wall time in this mode;
    // the serving mirror has no wall-time notion, so the two schedules
    // would silently drift. Refuse rather than break the parity contract.
    return Status::NotImplemented(
        "Scaler::ConfigureServing: charge_decision_wall_time is not "
        "supported by the online serving mirror");
  }
  serving_ = std::make_unique<Serving>(options);
  return Status::OK();
}

Result<Scaler::ObserveOutcome> Scaler::Observe(double arrival_time) {
  EnsureStarted();
  if (arrival_time < serving_->now) {
    std::ostringstream msg;
    msg << "Scaler::Observe: arrival at " << arrival_time
        << " s precedes the serving clock (" << serving_->now
        << " s); arrivals must be reported in nondecreasing order";
    return Status::Invalid(msg.str());
  }
  AdvanceTo(arrival_time);

  ObserveOutcome outcome;
  if (serving_->live.empty()) {
    // Cold start: reactive creation, cancel the earliest scheduled creation
    // (it was intended for this query) — Algorithm 1 line 7. The returned
    // outcome instructs the caller to do the same to its real fleet.
    ExecuteCreation(arrival_time);
    outcome.cold_start = true;
    if (!serving_->schedule.empty()) {
      const double cancelled = serving_->schedule.top();
      serving_->schedule.pop();
      // If the cancelled creation is still sitting in the undrained Plan()
      // buffer, the caller has never seen it: retract it from the buffer
      // instead of asking the caller to cancel something it doesn't have.
      auto& pending_creations = serving_->buffered.creation_times;
      const auto it = std::find(pending_creations.begin(),
                                pending_creations.end(), cancelled);
      if (it != pending_creations.end()) {
        pending_creations.erase(it);
      } else {
        outcome.cancel_earliest_scheduled = true;
      }
    }
    ++serving_->cold_starts;
  }
  serving_->live.pop_front();
  serving_->arrivals.push_back(arrival_time);
  ApplyAndBuffer(
      strategy_->OnQueryArrival(MakeContext(arrival_time), outcome.cold_start),
      arrival_time);
  return outcome;
}

Result<sim::ScalingAction> Scaler::Plan(double now) {
  EnsureStarted();
  if (now < serving_->now) {
    std::ostringstream msg;
    msg << "Scaler::Plan: time " << now << " s precedes the serving clock ("
        << serving_->now << " s)";
    return Status::Invalid(msg.str());
  }
  AdvanceTo(now);
  return std::exchange(serving_->buffered, sim::ScalingAction{});
}

ServingSnapshot Scaler::Snapshot() const {
  ServingSnapshot snap;
  snap.started = serving_->started;
  snap.now = serving_->now;
  snap.queries_observed = serving_->arrivals.size();
  snap.instances_alive = serving_->live.size();
  snap.instances_ready = static_cast<std::size_t>(std::count_if(
      serving_->live.begin(), serving_->live.end(),
      [t = serving_->now](double ready) { return ready <= t; }));
  snap.scheduled_creations = serving_->schedule.size();
  snap.cold_starts = serving_->cold_starts;
  snap.creations_requested = serving_->creations_requested;
  snap.deletions_requested = serving_->deletions_requested;
  snap.planning_rounds = serving_->log.size();
  snap.strategy = strategy_name_;
  return snap;
}

const std::vector<sim::ScalingAction>& Scaler::ActionLog() const {
  return serving_->log;
}

Status Scaler::ResetServing() {
  serving_ = std::make_unique<Serving>(serving_->options);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ScalerBuilder
// ---------------------------------------------------------------------------

ScalerBuilder& ScalerBuilder::WithTrace(workload::Trace train) {
  train_ = std::move(train);
  return *this;
}
ScalerBuilder& ScalerBuilder::WithBinWidth(double dt) {
  dt_ = dt;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithForecastHorizon(double seconds) {
  forecast_horizon_ = seconds;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithAggregateFactor(std::size_t factor) {
  aggregate_factor_ = factor;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithTarget(ScalingTarget target) {
  target_ = target;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithStrategy(StrategySpec spec) {
  spec_ = std::move(spec);
  return *this;
}
ScalerBuilder& ScalerBuilder::WithPending(stats::DurationDistribution pending) {
  pending_ = pending;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithPlanningInterval(double seconds) {
  planning_interval_ = seconds;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithMcSamples(std::size_t samples) {
  mc_samples_ = samples;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithSeed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}
ScalerBuilder& ScalerBuilder::WithPipelineOptions(
    core::PipelineOptions options) {
  pipeline_ = std::move(options);
  return *this;
}

Result<Scaler> ScalerBuilder::Build() const {
  // Cross-field validation: every misconfiguration that used to silently
  // produce nonsense downstream fails here with an actionable message.
  if (!train_.has_value()) {
    return Status::Invalid("ScalerBuilder: no training trace; call WithTrace");
  }
  if (train_->empty() || train_->horizon() <= 0.0) {
    return Status::Invalid(
        "ScalerBuilder: training trace is empty or has a non-positive "
        "horizon");
  }
  core::PipelineOptions pipeline = pipeline_;
  if (dt_.has_value()) pipeline.dt = *dt_;
  if (forecast_horizon_.has_value()) pipeline.forecast_horizon = *forecast_horizon_;
  if (aggregate_factor_.has_value()) {
    pipeline.periodicity.aggregate_factor = *aggregate_factor_;
  }
  if (!(pipeline.dt > 0.0)) {
    return Status::Invalid("ScalerBuilder: bin width must be > 0 s");
  }
  if (pipeline.dt > train_->horizon() / 2.0) {
    std::ostringstream msg;
    msg << "ScalerBuilder: bin width " << pipeline.dt
        << " s leaves fewer than two bins in the " << train_->horizon()
        << " s training window";
    return Status::Invalid(msg.str());
  }
  if (!(pipeline.forecast_horizon > 0.0)) {
    return Status::Invalid("ScalerBuilder: forecast horizon must be > 0 s");
  }
  if (pipeline.periodicity.aggregate_factor == 0) {
    return Status::Invalid("ScalerBuilder: aggregate factor must be >= 1");
  }
  if (!(planning_interval_ > 0.0)) {
    return Status::Invalid("ScalerBuilder: planning interval must be > 0 s");
  }
  // A WithStrategy spec may override the planning interval via its params;
  // cross-field checks must look at the value the strategy will really use.
  double effective_planning_interval = planning_interval_;
  if (spec_.has_value()) {
    const auto it = spec_->params.find("planning_interval");
    if (it != spec_->params.end()) effective_planning_interval = it->second;
  }
  if (pipeline.forecast_horizon < effective_planning_interval) {
    std::ostringstream msg;
    msg << "ScalerBuilder: forecast horizon (" << pipeline.forecast_horizon
        << " s) is shorter than one planning interval ("
        << effective_planning_interval << " s)";
    return Status::Invalid(msg.str());
  }
  if (mc_samples_ == 0) {
    return Status::Invalid("ScalerBuilder: mc_samples must be >= 1");
  }
  if (target_.has_value() && spec_.has_value()) {
    return Status::Invalid(
        "ScalerBuilder: WithTarget and WithStrategy are mutually exclusive; "
        "set the target as a strategy parameter instead");
  }

  // Train modules 1–3.
  RS_ASSIGN_OR_RETURN(auto trained, core::TrainRobustScaler(*train_, pipeline));

  // Construct the serving strategy (module 4) through the registry so the
  // target semantics live in exactly one place.
  StrategySpec spec;
  if (spec_.has_value()) {
    spec = *spec_;
  } else {
    // Target semantics and validation live with the registry factories
    // (TargetFromParam/ApplyTarget); here we only forward the raw value.
    const ScalingTarget target = target_.value_or(ScalingTarget(HitRate{0.9}));
    spec.name = StrategyNameOf(target);
    spec.params["target"] = RawTargetValue(target);
  }

  // WithSeed / WithMcSamples / WithPlanningInterval flow through the context
  // as factory defaults for both selection styles; explicit spec parameters
  // of the same name still win.
  StrategyContext context;
  context.forecast = &trained.forecast;
  context.pending = pending_;
  context.mc_samples = mc_samples_;
  context.planning_interval = planning_interval_;
  context.seed = seed_;
  RS_ASSIGN_OR_RETURN(auto strategy,
                      StrategyRegistry::Global().Create(spec, context));

  sim::EngineOptions serve_defaults;
  serve_defaults.pending = pending_;
  return Scaler(std::move(trained), std::move(strategy),
                FormatStrategySpec(spec), serve_defaults);
}

Result<core::TrainedPipeline> TrainPipeline(
    const workload::Trace& train, const core::PipelineOptions& options) {
  return core::TrainRobustScaler(train, options);
}

Result<sim::Metrics> Evaluate(const workload::Trace& test,
                              sim::Autoscaler* strategy,
                              const sim::EngineOptions& engine) {
  RS_ASSIGN_OR_RETURN(auto result, sim::Simulate(test, strategy, engine));
  return sim::ComputeMetrics(result);
}

}  // namespace rs::api
