/// \file strategy_registry.hpp
/// \brief String-keyed registry of autoscaling strategies. The five paper
///        strategies (backup_pool, adaptive_backup_pool, robust_hp,
///        robust_rt, robust_cost) self-register; new strategies plug in with
///        one Register() call and become addressable from every bench,
///        example and future CLI without touching their callers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rs/api/strategy_spec.hpp"
#include "rs/common/status.hpp"
#include "rs/simulator/autoscaler.hpp"
#include "rs/stats/distributions.hpp"
#include "rs/workload/intensity.hpp"

namespace rs::api {

/// \brief Everything a strategy factory may need beyond its own parameters.
///
/// Baseline strategies (backup_pool, adaptive_backup_pool) ignore the
/// forecast; RobustScaler strategies require it and fail with a helpful
/// Status when it is missing. The mc_samples / planning_interval fields are
/// defaults that individual specs can override via parameters of the same
/// name.
struct StrategyContext {
  /// Forecast intensity over the serving window (local time 0 = serving
  /// start). Not owned; must outlive the created strategy.
  const workload::PiecewiseConstantIntensity* forecast = nullptr;
  /// Instance pending/startup-time distribution τ_i.
  stats::DurationDistribution pending =
      stats::DurationDistribution::Deterministic(13.0);
  /// Default Monte Carlo samples per decision for RobustScaler strategies.
  std::size_t mc_samples = 300;
  /// Default planning interval Δ in seconds for RobustScaler strategies.
  double planning_interval = 1.0;
  /// Default seed of the strategy's Monte Carlo stream.
  std::uint64_t seed = 31;
  /// Optional worker pool RobustScaler strategies shard their per-plan
  /// Monte Carlo rounds over (actions stay byte-identical for any pool
  /// size). Not owned; must outlive the created strategy, which can also
  /// be re-pointed later via Autoscaler::SetPlanningPool.
  common::ThreadPool* planning_pool = nullptr;
};

/// \brief The string-keyed strategy registry.
///
/// Thread-compatible: registration happens at static-init / first-use time;
/// Create() and Names() are const lookups afterwards.
class StrategyRegistry {
 public:
  using Factory = std::function<Result<std::unique_ptr<sim::Autoscaler>>(
      const StrategySpec&, const StrategyContext&)>;

  /// The process-wide registry, pre-populated with the built-in strategies.
  static StrategyRegistry& Global();

  /// Registers a factory under `name`; Invalid if the name is taken.
  Status Register(const std::string& name, Factory factory);

  /// \brief Instantiates the strategy `spec.name` with `spec.params`.
  ///
  /// Unknown names produce an Invalid Status listing the registered names;
  /// unknown parameters produce an Invalid Status listing the known keys.
  Result<std::unique_ptr<sim::Autoscaler>> Create(
      const StrategySpec& spec, const StrategyContext& context = {}) const;

  /// Registered strategy names, sorted.
  std::vector<std::string> Names() const;

  bool Contains(const std::string& name) const;

 private:
  StrategyRegistry() = default;

  std::map<std::string, Factory> factories_;
};

/// Convenience: StrategyRegistry::Global().Create(spec, context).
Result<std::unique_ptr<sim::Autoscaler>> MakeStrategy(
    const StrategySpec& spec, const StrategyContext& context = {});

}  // namespace rs::api
