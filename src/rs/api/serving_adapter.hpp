/// \file serving_adapter.hpp
/// \brief Bridges between the batch simulator and the online Observe/Plan
///        serving interface:
///
///  * OnlineServingAdapter — a sim::Autoscaler that forwards engine events
///    into a Scaler's Observe()/Plan() loop, so sim::Simulate exercises the
///    exact code path a production caller would drive.
///  * RecordingAutoscaler — wraps any strategy and records every action it
///    emits; used to assert replay/serving parity in tests/api_test.cpp.
#pragma once

#include <vector>

#include "rs/api/scaler.hpp"
#include "rs/common/status.hpp"
#include "rs/simulator/autoscaler.hpp"

namespace rs::api {

/// \brief Drives a Scaler's online serving interface from inside the
///        simulation engine (replay and live-loop modes share the object).
///
/// The engine executes the actions Plan() returns, while the Scaler's
/// internal mirror performs the same accounting — with identical seeds the
/// two views never diverge. A non-OK Status from the serving calls is
/// latched in status() and subsequent actions are empty.
class OnlineServingAdapter : public sim::Autoscaler {
 public:
  /// `scaler` must outlive the adapter and must not be driven elsewhere.
  explicit OnlineServingAdapter(Scaler* scaler) : scaler_(scaler) {}

  const char* name() const override { return "online-serving"; }
  double planning_interval() const override {
    return scaler_->strategy()->planning_interval();
  }
  double history_requirement() const override {
    return scaler_->strategy()->history_requirement();
  }

  sim::ScalingAction Initialize(const sim::SimContext& ctx) override;
  sim::ScalingAction OnPlanningTick(const sim::SimContext& ctx) override;
  sim::ScalingAction OnQueryArrival(const sim::SimContext& ctx,
                                    bool cold_start) override;

  /// First error encountered while forwarding, if any.
  const Status& status() const { return status_; }

 private:
  sim::ScalingAction Drain(Result<sim::ScalingAction> planned);

  Scaler* scaler_;
  Status status_;
};

/// \brief Pass-through wrapper that records every ScalingAction a strategy
///        returns, one entry per engine callback.
class RecordingAutoscaler : public sim::Autoscaler {
 public:
  explicit RecordingAutoscaler(sim::Autoscaler* inner) : inner_(inner) {}

  const char* name() const override { return inner_->name(); }
  double planning_interval() const override {
    return inner_->planning_interval();
  }
  double history_requirement() const override {
    return inner_->history_requirement();
  }

  sim::ScalingAction Initialize(const sim::SimContext& ctx) override;
  sim::ScalingAction OnPlanningTick(const sim::SimContext& ctx) override;
  sim::ScalingAction OnQueryArrival(const sim::SimContext& ctx,
                                    bool cold_start) override;

  /// Recorded actions in emission order.
  const std::vector<sim::ScalingAction>& actions() const { return actions_; }

 private:
  sim::Autoscaler* inner_;
  std::vector<sim::ScalingAction> actions_;
};

}  // namespace rs::api
