/// \file strategy_spec.hpp
/// \brief String-addressable strategy selection: a StrategySpec names a
///        registered strategy plus its key/value parameters, so benches,
///        examples and future CLIs/daemons can pick a scaling strategy with
///        no strategy-specific includes or code.
#pragma once

#include <map>
#include <set>
#include <string>

#include "rs/common/status.hpp"

namespace rs::api {

/// \brief A strategy request: registry name + numeric parameters.
///
/// All built-in strategy parameters are numeric (targets, pool sizes,
/// intervals, sample counts, seeds), so the parameter map is string → double.
/// Unknown keys are a validation error that lists the known keys — typos
/// fail loudly instead of silently falling back to defaults.
struct StrategySpec {
  std::string name;
  std::map<std::string, double> params;
};

/// \brief Parses "name" or "name:key=value,key=value" into a StrategySpec.
///
/// Example: "robust_hp:target=0.9,mc_samples=500". Intended for CLI flags
/// and config files; programmatic callers construct StrategySpec directly.
Result<StrategySpec> ParseStrategySpec(const std::string& text);

/// Inverse of ParseStrategySpec (stable key order; for logs/snapshots).
std::string FormatStrategySpec(const StrategySpec& spec);

/// \brief Typed reader over a StrategySpec's parameter map used by strategy
///        factories: every parameter a factory understands is read through
///        Get(), and Finish() rejects any leftover (unknown) key with a
///        Status that lists the keys the strategy accepts.
class ParamReader {
 public:
  explicit ParamReader(const StrategySpec& spec) : spec_(spec) {}

  /// Returns the parameter value or `fallback` if absent; marks `key` known.
  double Get(const std::string& key, double fallback);

  /// True if the spec explicitly sets `key`; marks `key` known.
  bool Has(const std::string& key);

  /// OK iff every key in the spec was consumed by Get()/Has().
  Status Finish() const;

 private:
  const StrategySpec& spec_;
  std::set<std::string> known_;
};

}  // namespace rs::api
