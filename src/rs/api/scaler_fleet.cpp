#include "rs/api/scaler_fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <mutex>
#include <ostream>
#include <sstream>

#include "rs/api/serving_tap.hpp"
#include "rs/fault/fault.hpp"
#include "rs/persist/atomic_file.hpp"
#include "rs/persist/persist.hpp"

namespace rs::api {

namespace {

/// Layout version of the FLET record (the TENT record has no version of its
/// own: its fields are a name, a versioned SCLR record, and optional
/// versioned FRSH / HLTH sections). v2 added the freshness policy +
/// per-tenant freshness state; v3 added the per-tenant HLTH health section.
/// v1/v2 files load as freshness-disabled / default-health fleets.
constexpr std::uint32_t kFleetLayerVersion = 3;
/// Payload layout inside kTagFreshness (per-tenant loop state).
constexpr std::uint32_t kFreshnessVersion = 1;
/// Payload layout inside kTagFreshnessPolicy.
constexpr std::uint32_t kPolicyVersion = 1;
/// Payload layout inside kTagHealth (per-tenant degradation state).
constexpr std::uint32_t kHealthVersion = 1;

/// SplitMix64 step — the per-tenant backoff-jitter stream. Self-contained so
/// the jitter sequence is pinned by this file, not by a library's
/// distribution implementation.
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double NextUnit(std::uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

/// Seeds one tenant's jitter stream from the policy seed and the tenant
/// name (FNV-1a, not std::hash: the stream must not depend on the standard
/// library build, or replay across toolchains would drift).
std::uint64_t JitterSeed(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  std::uint64_t state = seed ^ h;
  return SplitMix64(&state);
}

Status UnknownTenant(const char* op, const std::string& tenant) {
  std::ostringstream msg;
  msg << "ScalerFleet::" << op << ": unknown tenant \"" << tenant << '"';
  return Status::Invalid(msg.str());
}

/// Builds the drift detector a tenant serves against: the trained model's
/// forecast rates on the forecast grid anchored at serving time `base`,
/// with the bins already elapsed by `now` skipped (origin lands on the
/// first bin boundary at or after `now`), so the gap between the fit
/// window's end and the swap boundary is never misread as silence.
Result<ts::DriftDetector> MakeDetectorFor(const ts::DriftDetectorOptions& opts,
                                          const core::TrainedPipeline& trained,
                                          double base, double now) {
  const auto& forecast = trained.forecast;
  const double dt = forecast.dt();
  const auto& rates = forecast.rates();
  std::size_t skip = 0;
  if (now > base) {
    skip = static_cast<std::size_t>(std::ceil((now - base) / dt - 1e-9));
  }
  std::vector<double> expected;
  if (skip < rates.size()) {
    expected.assign(rates.begin() + static_cast<std::ptrdiff_t>(skip),
                    rates.end());
  } else {
    // The forecast ran out before serving caught up; hold its last level.
    expected.assign(1, rates.back());
  }
  const double origin = base + static_cast<double>(skip) * dt;
  return ts::DriftDetector::Make(opts, std::move(expected), dt,
                                 trained.period.period, origin);
}

void WritePolicy(persist::Writer* writer, const FreshnessPolicy& policy) {
  writer->BeginSection(persist::kTagFreshnessPolicy);
  writer->WriteU32(kPolicyVersion);
  // Pipeline subset: exactly the knobs the background refit consumes.
  writer->WriteDouble(policy.pipeline.dt);
  writer->WriteDouble(policy.pipeline.beta1);
  writer->WriteDouble(policy.pipeline.beta2);
  writer->WriteDouble(policy.pipeline.forecast_horizon);
  writer->WriteDouble(policy.pipeline.admm.rho);
  writer->WriteU64(policy.pipeline.admm.max_iterations);
  writer->WriteDouble(policy.pipeline.admm.primal_tolerance);
  writer->WriteDouble(policy.pipeline.admm.dual_tolerance);
  writer->WriteDouble(policy.pipeline.admm.r_clamp);
  writer->WriteU64(policy.pipeline.periodicity.aggregate_factor);
  writer->WriteU64(policy.detector.warmup_bins);
  writer->WriteDouble(policy.detector.min_rate);
  writer->WriteDouble(policy.detector.delta);
  writer->WriteDouble(policy.detector.threshold);
  writer->WriteDouble(policy.detector.min_profile_correlation);
  writer->WriteDouble(policy.detector.profile_cusum_threshold);
  writer->WriteBool(policy.detector.check_periodicity);
  writer->WriteDouble(policy.min_retrain_interval);
  writer->WriteU64(policy.retrain_workers);
  writer->EndSection();
}

Result<FreshnessPolicy> ReadPolicy(persist::Reader* reader) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagFreshnessPolicy));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  if (version == 0 || version > kPolicyVersion) {
    return Status::Invalid("fleet snapshot freshness-policy version " +
                           std::to_string(version) +
                           " is newer than this build understands");
  }
  FreshnessPolicy policy;
  RS_ASSIGN_OR_RETURN(policy.pipeline.dt, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.beta1, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.beta2, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.forecast_horizon, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.admm.rho, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t max_iter, reader->ReadU64());
  policy.pipeline.admm.max_iterations = static_cast<std::size_t>(max_iter);
  RS_ASSIGN_OR_RETURN(policy.pipeline.admm.primal_tolerance,
                      reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.admm.dual_tolerance,
                      reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.admm.r_clamp, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t aggregate, reader->ReadU64());
  policy.pipeline.periodicity.aggregate_factor =
      static_cast<std::size_t>(aggregate);
  RS_ASSIGN_OR_RETURN(const std::uint64_t warmup, reader->ReadU64());
  policy.detector.warmup_bins = static_cast<std::size_t>(warmup);
  RS_ASSIGN_OR_RETURN(policy.detector.min_rate, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.detector.delta, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.detector.threshold, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.detector.min_profile_correlation,
                      reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.detector.profile_cusum_threshold,
                      reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.detector.check_periodicity, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(policy.min_retrain_interval, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t workers, reader->ReadU64());
  policy.retrain_workers = static_cast<std::size_t>(workers);
  RS_RETURN_NOT_OK(reader->ExitSection());
  return policy;
}

/// HealthState → its public TenantHealthInfo projection (template so the
/// private nested type needs no name here).
template <typename HealthT>
TenantHealthInfo ProjectHealth(const HealthT& h) {
  TenantHealthInfo info;
  info.health = h.health;
  info.consecutive_plan_failures = h.consecutive_plan_failures;
  info.plan_failures = h.plan_failures;
  info.fallbacks_served = h.fallbacks_served;
  info.rejected_observations = h.rejected_observations;
  info.breaker_opens = h.breaker_opens;
  info.probes = h.probes;
  info.deadline_overruns = h.deadline_overruns;
  info.consecutive_retrain_failures = h.consecutive_retrain_failures;
  info.freshness_errors = h.freshness_errors;
  info.retry_at = h.retry_at;
  info.retrain_retry_at = h.retrain_retry_at;
  info.last_error = h.last_error;
  return info;
}

}  // namespace

const char* TenantHealthToString(TenantHealth health) {
  switch (health) {
    case TenantHealth::kHealthy:
      return "healthy";
    case TenantHealth::kDegraded:
      return "degraded";
    case TenantHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

/// Output slot of one background retrain. The pool task owns its own
/// point-in-time session copy, does nothing but the fit, and publishes the
/// result here under `mu`; all scaler construction and serving carry happen
/// on the caller thread at the swap boundary (the injected decision clock
/// is never touched from the pool).
struct ScalerFleet::RetrainJob {
  std::mutex mu;
  bool done = false;
  Status status;
  std::optional<core::TrainedPipeline> trained;
  /// Fleet serving time of the refit window's end — the replacement's
  /// forecast origin, so the new serving base after the swap.
  double base = 0.0;
};

struct ScalerFleet::FreshState {
  ts::DriftDetector detector;
  train::TrainingSession session;
  /// Session (trace) time = fleet serving time + shift. Fixed at attach:
  /// fleet time `base` maps to the session window's end.
  double shift = 0.0;
  /// Fleet serving time of the live model's forecast origin. The tenant's
  /// Scaler is driven at `fleet_time - base`; creation times come back
  /// rebased by `+ base`. 0 until the first background swap.
  double base = 0.0;
  double last_attempt = -std::numeric_limits<double>::infinity();
  bool drift_counted = false;  ///< Current latch already in drift_events.
  /// True once AttachFreshness built the detector + session (a state
  /// created only to hold a deferred manual replacement has neither).
  bool loop_attached = false;
  std::size_t drift_events = 0;
  std::size_t retrains_completed = 0;
  std::size_t retrain_failures = 0;
  std::size_t swaps_applied = 0;
  double last_swap_time = 0.0;
  std::shared_ptr<RetrainJob> job;  ///< In-flight retrain, if any.
  std::optional<Scaler> pending_manual;  ///< Deferred ReplaceModelAtNextPlan.
};

ScalerFleet::Tenant::Tenant(std::string n, Scaler s)
    : name(std::move(n)), scaler(std::move(s)) {}
ScalerFleet::Tenant::~Tenant() = default;

ScalerFleet::ScalerFleet(std::size_t worker_threads)
    : pool_(std::make_unique<common::ThreadPool>(worker_threads)) {}

ScalerFleet::ScalerFleet(ScalerFleet&&) noexcept = default;
ScalerFleet& ScalerFleet::operator=(ScalerFleet&&) noexcept = default;
ScalerFleet::~ScalerFleet() = default;

std::size_t ScalerFleet::FindIndex(const std::string& tenant) const {
  const auto it = index_.find(tenant);
  return it == index_.end() ? tenants_.size() : it->second;
}

Status ScalerFleet::Register(std::string tenant, Scaler scaler) {
  return RegisterTenant(
      std::make_unique<Tenant>(std::move(tenant), std::move(scaler)));
}

Status ScalerFleet::RegisterTenant(std::unique_ptr<Tenant> tenant) {
  if (tenant->name.empty()) {
    return Status::Invalid("ScalerFleet::Register: tenant name is empty");
  }
  if (FindIndex(tenant->name) != tenants_.size()) {
    std::ostringstream msg;
    msg << "ScalerFleet::Register: tenant \"" << tenant->name
        << "\" already registered (Retire or ReplaceModel it instead)";
    return Status::Invalid(msg.str());
  }
  tenants_.push_back(std::move(tenant));
  index_[tenants_.back()->name] = tenants_.size() - 1;
  // One work queue at both grains: the tenant's own Monte Carlo shards run
  // on the fleet pool alongside other tenants' plans.
  Tenant* entry = tenants_.back().get();
  entry->scaler.SetPlanningPool(intra_plan_sharding_ ? pool_.get() : nullptr);
  if (entry->health.jitter_rng == 0) {
    // Fresh tenant: seed its backoff-jitter stream. A restored tenant
    // brought a persisted stream position (never 0 after SplitMix64) and
    // keeps it, so replay across save/load stays deterministic.
    entry->health.jitter_rng = JitterSeed(robustness_.jitter_seed, entry->name);
  }
  if (policy_.has_value()) {
    if (entry->fresh != nullptr && entry->fresh->loop_attached) {
      // A restored tenant brought its own loop state; rebind the knobs to
      // this fleet's policy without touching the statistics.
      entry->fresh->session.set_options(policy_->pipeline);
      entry->fresh->detector.set_options(policy_->detector);
    } else {
      const double base = entry->fresh != nullptr ? entry->fresh->base : 0.0;
      Status attached =
          AttachFreshness(entry, entry->scaler.Snapshot().now + base);
      if (!attached.ok()) {
        index_.erase(entry->name);
        tenants_.pop_back();
        return attached;
      }
    }
  }
  if (tap_ != nullptr) tap_->OnRegister(entry->name, entry->scaler);
  return Status::OK();
}

Status ScalerFleet::Retire(const std::string& tenant) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Retire", tenant);
  // An in-flight retrain job keeps itself alive through the task's own
  // shared_ptr; dropping the tenant just discards the eventual result.
  tenants_.erase(tenants_.begin() + static_cast<std::ptrdiff_t>(i));
  // Every later tenant shifted down one slot; lifecycle is rare, arrival
  // routing is not, so pay the O(T) reindex here.
  index_.erase(tenant);
  for (auto& [name, index] : index_) {
    if (index > i) --index;
  }
  if (tap_ != nullptr) tap_->OnRetire(tenant);
  return Status::OK();
}

Status ScalerFleet::ReplaceModel(const std::string& tenant, Scaler scaler) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("ReplaceModel", tenant);
  const FreshState* fresh = tenants_[i]->fresh.get();
  const double now =
      tenants_[i]->scaler.Snapshot().now + (fresh != nullptr ? fresh->base : 0);
  RS_RETURN_NOT_OK(InstallReplacement(i, std::move(scaler), /*new_base=*/0.0,
                                      now, /*reset_session=*/true));
  if (tap_ != nullptr) {
    // Post-install, post-carry: exactly the state a re-drive swaps in.
    tap_->OnReplaceModel(tenant, tenants_[i]->scaler, /*at_next_plan=*/false);
  }
  return Status::OK();
}

Status ScalerFleet::ReplaceModelAtNextPlan(const std::string& tenant,
                                           Scaler scaler) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) {
    return UnknownTenant("ReplaceModelAtNextPlan", tenant);
  }
  Tenant& entry = *tenants_[i];
  // A bare FreshState can hold the pending swap even with freshness off.
  if (entry.fresh == nullptr) entry.fresh = std::make_unique<FreshState>();
  entry.fresh->pending_manual = std::move(scaler);
  if (tap_ != nullptr) {
    tap_->OnReplaceModel(tenant, *entry.fresh->pending_manual,
                         /*at_next_plan=*/true);
  }
  return Status::OK();
}

void ScalerFleet::SetIntraPlanSharding(bool enabled) {
  intra_plan_sharding_ = enabled;
  for (auto& entry : tenants_) {
    entry->scaler.SetPlanningPool(enabled ? pool_.get() : nullptr);
  }
}

// -- Model freshness ----------------------------------------------------------

Status ScalerFleet::EnableFreshness(const FreshnessPolicy& policy) {
  if (tap_ != nullptr) {
    return Status::Invalid(
        "ScalerFleet::EnableFreshness: a serving tap is attached; background "
        "retrains finish at wall-time-dependent moments that no recorded "
        "event stream could re-drive deterministically (DetachTap first)");
  }
  if (!(policy.pipeline.dt > 0.0)) {
    return Status::Invalid("ScalerFleet::EnableFreshness: pipeline.dt <= 0");
  }
  if (!std::isfinite(policy.min_retrain_interval) ||
      policy.min_retrain_interval < 0.0) {
    return Status::Invalid(
        "ScalerFleet::EnableFreshness: min_retrain_interval must be finite "
        "and >= 0");
  }
  policy_ = policy;
  // Refits run on the retrain pool's threads (or inline at the enqueue
  // point); a caller-supplied training pool must not leak into them.
  policy_->pipeline.training_pool = nullptr;
  policy_->pipeline.periodicity.pool = nullptr;
  policy_->pipeline.admm.pool = nullptr;
  // Recreating the pool joins any old one first; results of old-policy
  // jobs stay published in their RetrainJob slots and still swap in.
  retrain_pool_ = std::make_unique<common::ThreadPool>(policy.retrain_workers);
  for (auto& entry : tenants_) {
    if (entry->fresh != nullptr && entry->fresh->loop_attached) {
      entry->fresh->session.set_options(policy_->pipeline);
      entry->fresh->detector.set_options(policy_->detector);
      continue;
    }
    const double base = entry->fresh != nullptr ? entry->fresh->base : 0.0;
    RS_RETURN_NOT_OK(
        AttachFreshness(entry.get(), entry->scaler.Snapshot().now + base));
  }
  return Status::OK();
}

Status ScalerFleet::AttachFreshness(Tenant* tenant, double now) {
  if (tenant->fresh == nullptr) {
    tenant->fresh = std::make_unique<FreshState>();
  }
  FreshState& fresh = *tenant->fresh;
  fresh.session = train::TrainingSession::FromTrained(tenant->scaler.trained(),
                                                      policy_->pipeline);
  // Fleet time `base` corresponds to the end of the trained window.
  fresh.shift = fresh.session.window_end() - fresh.base;
  RS_ASSIGN_OR_RETURN(fresh.detector,
                      MakeDetectorFor(policy_->detector,
                                      tenant->scaler.trained(), fresh.base,
                                      now));
  fresh.loop_attached = true;
  return Status::OK();
}

Result<TenantFreshness> ScalerFleet::Freshness(
    const std::string& tenant) const {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Freshness", tenant);
  TenantFreshness out;
  const FreshState* fresh = tenants_[i]->fresh.get();
  if (fresh == nullptr) return out;
  out.enabled = policy_.has_value() && fresh->loop_attached;
  if (fresh->loop_attached) {
    out.drift = fresh->detector.kind();
    out.drift_time = fresh->detector.fired_time();
    out.window_end = fresh->session.window_end() - fresh->shift;
  }
  out.retrain_inflight = fresh->job != nullptr;
  out.drift_events = fresh->drift_events;
  if (fresh->loop_attached && fresh->detector.fired() &&
      !fresh->drift_counted) {
    // The pre-plan pass has not folded the current latch in yet.
    out.drift_events += 1;
  }
  out.retrains_completed = fresh->retrains_completed;
  out.retrain_failures = fresh->retrain_failures;
  out.swaps_applied = fresh->swaps_applied;
  out.last_swap_time = fresh->last_swap_time;
  out.model_origin = fresh->base;
  return out;
}

Status ScalerFleet::RequestRetrain(const std::string& tenant) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("RequestRetrain", tenant);
  if (!policy_.has_value()) {
    return Status::Invalid(
        "ScalerFleet::RequestRetrain: freshness is not enabled (call "
        "EnableFreshness first)");
  }
  Tenant& entry = *tenants_[i];
  if (entry.fresh == nullptr || !entry.fresh->loop_attached) {
    const double base = entry.fresh != nullptr ? entry.fresh->base : 0.0;
    RS_RETURN_NOT_OK(
        AttachFreshness(&entry, entry.scaler.Snapshot().now + base));
  }
  FreshState& fresh = *entry.fresh;
  const double now = entry.scaler.Snapshot().now + fresh.base;
  RS_RETURN_NOT_OK(fresh.session.ExtendTo(now + fresh.shift));
  MaybeEnqueueRetrain(i, now, /*forced=*/true);
  return Status::OK();
}

void ScalerFleet::FreshnessPrePlan(std::size_t i, double now) {
  FreshState* fresh = tenants_[i]->fresh.get();
  if (fresh == nullptr) return;
  // Order matters: a finished result swaps in first (the boundary is the
  // earliest tear-free point), then the detector closes the bins up to the
  // boundary so silence counts as evidence, then drift may enqueue.
  MaybeApplySwap(i, now);
  fresh = tenants_[i]->fresh.get();
  if (fresh == nullptr || !fresh->loop_attached || !policy_.has_value()) {
    return;
  }
  fresh->detector.AdvanceTo(now);
  if (!fresh->session.ExtendTo(now + fresh->shift).ok()) {
    ++tenants_[i]->health.freshness_errors;
  }
  MaybeEnqueueRetrain(i, now, /*forced=*/false);
}

void ScalerFleet::MaybeApplySwap(std::size_t i, double now) {
  FreshState& fresh = *tenants_[i]->fresh;
  HealthState& health = tenants_[i]->health;
  // A failed retrain never evicts the last-good model: the tenant keeps
  // serving whatever it has, the failure is counted, and the next attempt
  // waits out a capped exponential backoff (off by default — base 0 keeps
  // the pre-existing retry-at-next-boundary behavior).
  const auto note_retrain_failure = [&](const Status& st) {
    ++fresh.retrain_failures;
    ++health.consecutive_retrain_failures;
    health.last_error = st;
    if (robustness_.retrain_backoff_base > 0.0) {
      const int doublings = static_cast<int>(std::min<std::uint64_t>(
          health.consecutive_retrain_failures - 1, 1024));
      health.retrain_retry_at =
          now + std::min(robustness_.retrain_backoff_max,
                         robustness_.retrain_backoff_base *
                             std::ldexp(1.0, doublings));
    }
  };
  if (fresh.pending_manual.has_value()) {
    // A deferred manual replacement outranks a background result (the
    // caller decided; the stale background fit is dropped with the job).
    Scaler replacement = std::move(*fresh.pending_manual);
    fresh.pending_manual.reset();
    fresh.job.reset();
    Status st = InstallReplacement(i, std::move(replacement), /*new_base=*/0.0,
                                   now, /*reset_session=*/true);
    if (!st.ok()) note_retrain_failure(st);
    return;
  }
  if (fresh.job == nullptr) return;
  core::TrainedPipeline trained;
  double base = 0.0;
  Status job_status = Status::OK();
  {
    std::lock_guard<std::mutex> lock(fresh.job->mu);
    if (!fresh.job->done) return;  // Still fitting; keep serving the old model.
    job_status = fresh.job->status;
    if (job_status.ok()) {
      trained = std::move(*fresh.job->trained);
      base = fresh.job->base;
    }
  }
  // Reset only after the guard released: dropping the last reference inside
  // the lock scope would destroy the mutex while it is still held.
  fresh.job.reset();
  if (!job_status.ok()) {
    note_retrain_failure(job_status);
    return;
  }
  // The live session adopts the fit's iterate so the *next* refit warm-starts
  // from it, while keeping the arrivals accumulated since the job's copy.
  fresh.session.AdoptFit(trained);
  Scaler& retiring = tenants_[i]->scaler;
  auto built = Scaler::FromTrainedPipeline(
      std::move(trained), retiring.spec_, retiring.build_context_,
      intra_plan_sharding_ ? pool_.get() : nullptr);
  if (!built.ok()) {
    note_retrain_failure(built.status());
    return;
  }
  Scaler replacement = std::move(built).ValueOrDie();
  // Background swaps keep the tenant's full serving configuration (the
  // replacement is unstarted, so ConfigureServing accepts it; the injected
  // decision clock rides along inside the options).
  Status configured = replacement.ConfigureServing(retiring.serving_options());
  if (!configured.ok()) {
    note_retrain_failure(configured);
    return;
  }
  Status installed = InstallReplacement(i, std::move(replacement), base, now,
                                        /*reset_session=*/false);
  if (!installed.ok()) {
    note_retrain_failure(installed);
    return;
  }
  ++tenants_[i]->fresh->retrains_completed;
  health.consecutive_retrain_failures = 0;
  health.retrain_retry_at = -std::numeric_limits<double>::infinity();
}

void ScalerFleet::MaybeEnqueueRetrain(std::size_t i, double now, bool forced) {
  FreshState& fresh = *tenants_[i]->fresh;
  if (!policy_.has_value() || !fresh.loop_attached) return;
  if (fresh.detector.fired() && !fresh.drift_counted) {
    ++fresh.drift_events;
    fresh.drift_counted = true;
  }
  if (fresh.job != nullptr) return;  // One in-flight job per tenant.
  if (!forced) {
    if (!fresh.detector.fired()) return;
    if (now - fresh.last_attempt < policy_->min_retrain_interval) return;
    // Failed-retrain backoff (RobustnessPolicy::retrain_backoff_base):
    // drift stays latched, so the attempt re-enqueues once this expires.
    if (now < tenants_[i]->health.retrain_retry_at) return;
  }
  fresh.last_attempt = now;
  // The job fits a point-in-time copy truncated to complete bins, so the
  // live session keeps accumulating while the fit runs.
  train::TrainingSession copy = fresh.session;
  if (!copy.ExtendTo(now + fresh.shift).ok()) return;
  copy.TruncateToCompleteBins(now + fresh.shift);
  if (copy.bins() < 3) return;  // Too little window to fit; try again later.
  auto job = std::make_shared<RetrainJob>();
  job->base = copy.window_end() - fresh.shift;
  fresh.job = job;
  retrain_pool_->Submit([job, name = tenants_[i]->name,
                         session = std::move(copy)]() mutable {
    // Everything — injected faults, throws, a fit that "succeeds" with a
    // poisoned forecast — must land in job->status with job->done set: a
    // job stuck not-done would block this tenant's retrains forever.
    Status result;
    std::optional<core::TrainedPipeline> trained;
    try {
      result = [&]() -> Status {
        RS_FAULT_POINT_SCOPED("train.refit", name);
        RS_ASSIGN_OR_RETURN(core::TrainedPipeline fitted, session.Refit());
        for (const double rate : fitted.forecast.rates()) {
          if (!(std::isfinite(rate) && rate >= 0.0)) {
            return Status::NotConverged(
                "refit produced a non-finite or negative forecast rate; "
                "keeping the last-good model");
          }
        }
        trained = std::move(fitted);
        return Status::OK();
      }();
    } catch (const std::exception& e) {
      result = Status::RuntimeError(std::string("retrain threw: ") + e.what());
    } catch (...) {
      result = Status::RuntimeError("retrain threw (non-std)");
    }
    std::lock_guard<std::mutex> lock(job->mu);
    if (result.ok()) {
      job->trained = std::move(trained);
    } else {
      job->status = std::move(result);
    }
    job->done = true;
  });
}

Status ScalerFleet::InstallReplacement(std::size_t i, Scaler replacement,
                                       double new_base, double now,
                                       bool reset_session) {
  Tenant& tenant = *tenants_[i];
  CarryServingConfig(tenant.scaler, &replacement);
  tenant.scaler = std::move(replacement);
  tenant.scaler.SetPlanningPool(intra_plan_sharding_ ? pool_.get() : nullptr);
  if (tenant.fresh == nullptr) return Status::OK();
  FreshState& fresh = *tenant.fresh;
  fresh.base = new_base;
  fresh.swaps_applied += 1;
  fresh.last_swap_time = now;
  fresh.drift_counted = false;
  if (!policy_.has_value()) return Status::OK();
  if (reset_session) {
    // Manual swap: the incoming model's own training window seeds the loop.
    return AttachFreshness(&tenant, now);
  }
  // Background swap: keep the accumulated session (it already adopted the
  // fit); only the detector restarts, against the new model's forecast.
  RS_ASSIGN_OR_RETURN(
      fresh.detector, MakeDetectorFor(policy_->detector,
                                      tenant.scaler.trained(), new_base, now));
  return Status::OK();
}

void ScalerFleet::CarryServingConfig(const Scaler& retiring,
                                     Scaler* replacement) {
  // A ConfigureHistoryRetention widening survives the swap (never narrows
  // a wider replacement setting).
  replacement->retention_override_ =
      std::max(replacement->retention_override_, retiring.retention_override());
  // Decision-clock position: deterministic clocks export one; carrying it
  // keeps charged decision time monotone across the swap. Steady clocks
  // export nothing (wall time resumes naturally), and a replacement whose
  // clock refuses the import just starts fresh — both are fine to ignore.
  double time = 0.0;
  std::uint64_t readings = 0;
  if (retiring.serving_clock()->ExportPosition(&time, &readings)) {
    Status imported = replacement->serving_clock()->ImportPosition(time,
                                                                   readings);
    (void)imported;
  }
}

// -- Graceful degradation -----------------------------------------------------

void ScalerFleet::ConfigureRobustness(const RobustnessPolicy& policy) {
  robustness_ = policy;
  // Re-seed every tenant's jitter stream so the policy change pins a fresh,
  // reproducible backoff schedule.
  for (auto& entry : tenants_) {
    entry->health.jitter_rng = JitterSeed(policy.jitter_seed, entry->name);
  }
}

Result<TenantHealthInfo> ScalerFleet::Health(const std::string& tenant) const {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Health", tenant);
  return ProjectHealth(tenants_[i]->health);
}

bool ScalerFleet::BreakerGate(std::size_t i, double now, TenantPlan* plan) {
  Tenant& tenant = *tenants_[i];
  HealthState& health = tenant.health;
  plan->tenant = tenant.name;
  if (health.health != TenantHealth::kQuarantined) return false;
  if (now >= health.retry_at) {
    // Backoff expired: half-open probe. Let the real plan run; its outcome
    // (in NotePlanOutcome) decides recovery vs. re-open.
    ++health.probes;
    health.probe_inflight = true;
    return false;
  }
  // Quarantined: the scaler is not touched at all — its mirror clock holds,
  // and the deterministic catch-up happens at whichever boundary probes it
  // back in. The boundary itself is served (fallback, last-good plan).
  plan->degraded = true;
  ++health.fallbacks_served;
  return true;
}

void ScalerFleet::PlanTenant(std::size_t i, double now, TenantPlan* plan) {
  Tenant& tenant = *tenants_[i];
  const double base = tenant.fresh != nullptr ? tenant.fresh->base : 0.0;
  const bool timed = std::isfinite(robustness_.plan_deadline);
  const auto started = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
  try {
#if !defined(RS_NO_FAULT_INJECTION)
    // Before the scaler is touched: an injected boundary failure must leave
    // the mirror clock where it was, so the eventual recovery replays the
    // same catch-up under every worker count.
    Status injected = rs::fault::Hit("fleet.plan", tenant.name);
    if (!injected.ok()) {
      plan->status = std::move(injected);
      return;
    }
#endif
    auto planned = tenant.scaler.Plan(now - base);
    if (!planned.ok()) {
      plan->status = planned.status();
      return;
    }
    plan->action = std::move(planned).ValueOrDie();
    if (base != 0.0) {
      for (double& t : plan->action.creation_times) t += base;
    }
  } catch (const std::exception& e) {
    plan->action = {};
    plan->status =
        Status::RuntimeError(std::string("plan boundary threw: ") + e.what());
    return;
  } catch (...) {
    plan->action = {};
    plan->status = Status::RuntimeError("plan boundary threw (non-std)");
    return;
  }
  if (timed) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    if (elapsed > robustness_.plan_deadline) {
      // Too late to act on: discard the computed action and let the
      // outcome pass serve fallback. Worker-side counter bump is safe —
      // exactly one worker owns tenant i this batch.
      std::ostringstream msg;
      msg << "plan boundary overran its deadline (" << elapsed << " s > "
          << robustness_.plan_deadline << " s)";
      plan->action = {};
      plan->status = Status::RuntimeError(msg.str());
      ++tenant.health.deadline_overruns;
    }
  }
}

void ScalerFleet::NotePlanOutcome(std::size_t i, double now, TenantPlan* plan) {
  Tenant& tenant = *tenants_[i];
  HealthState& health = tenant.health;
  if (plan->degraded) return;  // Breaker-gated: bookkept in BreakerGate.
  if (plan->status.ok()) {
    health.consecutive_plan_failures = 0;
    if (health.probe_inflight) {
      // The half-open probe succeeded: full recovery.
      health.probe_inflight = false;
      health.open_count = 0;
      health.retry_at = -std::numeric_limits<double>::infinity();
    }
    health.health = TenantHealth::kHealthy;
    return;
  }
  if (plan->status.code() == StatusCode::kInvalidArgument) {
    // Caller bug (regressive/non-finite clock): propagate the error, never
    // feed the breaker — with faults off this is the only failure mode, so
    // the machinery stays byte-invisible. An Invalid probe neither recovers
    // nor re-opens; the next boundary probes again.
    health.probe_inflight = false;
    health.last_error = plan->status;
    return;
  }
  // Real failure: count it, serve fallback (the last-good plan stays in
  // effect; this boundary hands back an empty action with OK status).
  health.last_error = plan->status;
  ++health.plan_failures;
  ++health.consecutive_plan_failures;
  ++health.fallbacks_served;
  plan->status = Status::OK();
  plan->action = {};
  plan->degraded = true;
  const bool tripped =
      health.probe_inflight ||
      health.consecutive_plan_failures >=
          static_cast<std::uint64_t>(robustness_.breaker_threshold);
  health.probe_inflight = false;
  if (!tripped) {
    health.health = TenantHealth::kDegraded;
    return;
  }
  // Trip (or re-trip) the breaker: quarantine under jittered exponential
  // backoff. The jitter draw comes from the tenant's own deterministic
  // stream, so the schedule replays exactly — but tenants that failed
  // together still spread their probes over distinct boundaries.
  health.health = TenantHealth::kQuarantined;
  ++health.breaker_opens;
  ++health.open_count;
  const int doublings = static_cast<int>(
      std::min<std::uint64_t>(health.open_count - 1, 1024));
  const double backoff = std::min(robustness_.backoff_max,
                                  robustness_.backoff_base *
                                      std::ldexp(1.0, doublings));
  const double jitter =
      robustness_.backoff_jitter * NextUnit(&health.jitter_rng);
  health.retry_at = now + backoff * (1.0 + jitter);
  health.consecutive_plan_failures = 0;  // The breaker absorbed the streak.
}

// -- Serving tap --------------------------------------------------------------

Status ScalerFleet::AttachTap(ServingTap* tap) {
  if (tap == nullptr) {
    return Status::Invalid(
        "ScalerFleet::AttachTap: tap is null (use DetachTap to detach)");
  }
  if (tap_ != nullptr && tap_ != tap) {
    return Status::Invalid(
        "ScalerFleet::AttachTap: another tap is already attached (one tap at "
        "a time; DetachTap it first)");
  }
  if (policy_.has_value()) {
    return Status::Invalid(
        "ScalerFleet::AttachTap: the freshness loop is enabled; its "
        "background retrains land at wall-time-dependent moments that no "
        "recorded event stream could re-drive deterministically (use manual "
        "ReplaceModel swaps under a tap instead)");
  }
  tap_ = tap;
  return Status::OK();
}

void ScalerFleet::DetachTap() { tap_ = nullptr; }

TapClockMark ScalerFleet::TapMark(const Scaler& scaler) {
  TapClockMark mark;
  mark.has_position =
      scaler.serving_clock()->ExportPosition(&mark.time, &mark.readings);
  return mark;
}

// -- Serving ------------------------------------------------------------------

std::vector<std::string> ScalerFleet::Tenants() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& entry : tenants_) names.push_back(entry->name);
  return names;
}

Scaler* ScalerFleet::Find(const std::string& tenant) {
  const std::size_t i = FindIndex(tenant);
  return i == tenants_.size() ? nullptr : &tenants_[i]->scaler;
}

const Scaler* ScalerFleet::Find(const std::string& tenant) const {
  return const_cast<ScalerFleet*>(this)->Find(tenant);
}

Status ScalerFleet::ConfigureServingAll(const sim::EngineOptions& options) {
  for (auto& entry : tenants_) {
    Status st = entry->scaler.ConfigureServing(options);
    if (!st.ok()) {
      std::ostringstream msg;
      msg << "ScalerFleet::ConfigureServingAll: tenant \"" << entry->name
          << "\": " << st.message();
      return Status(st.code(), msg.str());
    }
  }
  return Status::OK();
}

Result<Scaler::ObserveOutcome> ScalerFleet::Observe(const std::string& tenant,
                                                    double arrival_time) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Observe", tenant);
  Tenant& entry = *tenants_[i];
#if !defined(RS_NO_FAULT_INJECTION)
  {
    // Direct Hit() so the rejection is counted like any malformed input.
    Status injected = rs::fault::Hit("fleet.observe", entry.name);
    if (!injected.ok()) {
      ++entry.health.rejected_observations;
      entry.health.last_error = injected;
      return injected;
    }
  }
#endif
  FreshState* fresh = entry.fresh.get();
  const double base = fresh != nullptr ? fresh->base : 0.0;
  auto outcome = entry.scaler.Observe(arrival_time - base);
  if (!outcome.ok()) {
    // Malformed arrival (NaN, ±inf, regressive time): the scaler rejected
    // it before its mirror was touched — count and refuse. One bad input
    // never poisons the tenant's serving state.
    ++entry.health.rejected_observations;
    entry.health.last_error = outcome.status();
    return outcome;
  }
  if (fresh != nullptr && fresh->loop_attached && policy_.has_value()) {
    // The same arrival feeds the drift statistics and the retrain window.
    fresh->detector.Observe(arrival_time);
    if (!fresh->session.AppendArrival(arrival_time + fresh->shift).ok()) {
      // The serving path must not fail on retrain bookkeeping; count it so
      // the operator sees a freshness loop quietly losing arrivals.
      ++entry.health.freshness_errors;
    }
  }
  if (tap_ != nullptr) {
    tap_->OnObserve(tenant, arrival_time, outcome.ValueOrDie());
  }
  return outcome;
}

Result<sim::ScalingAction> ScalerFleet::Plan(const std::string& tenant,
                                             double now) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Plan", tenant);
  FreshnessPrePlan(i, now);
  // Same three-step boundary as one PlanAll slot: gate, plan, bookkeep.
  TenantPlan plan;
  if (!BreakerGate(i, now, &plan)) {
    PlanTenant(i, now, &plan);
    NotePlanOutcome(i, now, &plan);
  }
  if (!plan.status.ok()) return plan.status;
  if (tap_ != nullptr) {
    tap_->OnPlan(tenant, now, plan.action, TapMark(tenants_[i]->scaler));
  }
  return std::move(plan.action);
}

std::vector<ScalerFleet::TenantPlan> ScalerFleet::PlanAll(double now) {
  // The freshness pre-pass (swap / drift bookkeeping / enqueue) runs on the
  // caller thread in registration order — deterministic regardless of the
  // worker count — before any planning fans out.
  for (std::size_t i = 0; i < tenants_.size(); ++i) FreshnessPrePlan(i, now);
  // Slot-per-tenant output: workers scatter into their own index, the
  // ParallelFor join publishes the writes, and the returned order is the
  // registration order no matter which worker finished first.
  //
  // The degradation machinery brackets the fan-out on the caller thread:
  // breaker gates (which read/write health state and draw jitter) run
  // before, outcome bookkeeping after the join, both in registration order
  // — so the health state machine is deterministic under any worker count.
  std::vector<TenantPlan> plans(tenants_.size());
  std::vector<std::uint8_t> gated(tenants_.size(), 0);
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    gated[i] = BreakerGate(i, now, &plans[i]) ? 1 : 0;
  }
  common::ParallelFor(pool_.get(), tenants_.size(), [&](std::size_t i) {
    if (gated[i] == 0) PlanTenant(i, now, &plans[i]);
  });
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (gated[i] == 0) NotePlanOutcome(i, now, &plans[i]);
  }
  if (tap_ != nullptr) {
    // After the join, on the caller thread: clocks are quiescent and the
    // batch result is final, so the tap sees exactly what the caller gets.
    std::vector<TapClockMark> clocks(tenants_.size());
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      clocks[i] = TapMark(tenants_[i]->scaler);
    }
    tap_->OnPlanAll(now, plans, clocks);
  }
  return plans;
}

FleetSnapshot ScalerFleet::Snapshot() const {
  FleetSnapshot fleet;
  fleet.tenants = tenants_.size();
  fleet.per_tenant.reserve(tenants_.size());
  for (const auto& entry : tenants_) {
    ServingSnapshot snap = entry->scaler.Snapshot();
    fleet.tenants_started += snap.started ? 1 : 0;
    fleet.queries_observed += snap.queries_observed;
    fleet.instances_alive += snap.instances_alive;
    fleet.instances_ready += snap.instances_ready;
    fleet.scheduled_creations += snap.scheduled_creations;
    fleet.cold_starts += snap.cold_starts;
    fleet.creations_requested += snap.creations_requested;
    fleet.deletions_requested += snap.deletions_requested;
    fleet.planning_rounds += snap.planning_rounds;
    fleet.arrivals_retained += snap.arrivals_retained;
    fleet.actions_retained += snap.actions_retained;
    fleet.planning_workspace_bytes += snap.planning_workspace_bytes;
    fleet.per_tenant.emplace_back(entry->name, std::move(snap));
    const HealthState& health = entry->health;
    switch (health.health) {
      case TenantHealth::kHealthy:
        ++fleet.tenants_healthy;
        break;
      case TenantHealth::kDegraded:
        ++fleet.tenants_degraded;
        break;
      case TenantHealth::kQuarantined:
        ++fleet.tenants_quarantined;
        break;
    }
    fleet.rejected_observations += health.rejected_observations;
    fleet.plan_failures += health.plan_failures;
    fleet.fallbacks_served += health.fallbacks_served;
    fleet.breaker_opens += health.breaker_opens;
    fleet.per_tenant_health.emplace_back(entry->name, ProjectHealth(health));
  }
  return fleet;
}

// -- Durability & migration -------------------------------------------------

Status ScalerFleet::WriteTenantRecord(persist::Writer* writer,
                                      std::size_t index) const {
  const Tenant& tenant = *tenants_[index];
  writer->BeginSection(persist::kTagTenant);
  writer->WriteString(tenant.name);
  RS_RETURN_NOT_OK(tenant.scaler.SaveStateSection(writer));
  if (tenant.fresh != nullptr && tenant.fresh->loop_attached) {
    // In-flight jobs and pending manual replacements are deliberately not
    // persisted: a latched drift survives, so a restored fleet simply
    // re-enqueues the retrain at its first plan boundary.
    const FreshState& fresh = *tenant.fresh;
    writer->BeginSection(persist::kTagFreshness);
    writer->WriteU32(kFreshnessVersion);
    writer->WriteDouble(fresh.base);
    writer->WriteDouble(fresh.shift);
    writer->WriteDouble(fresh.last_attempt);
    writer->WriteBool(fresh.drift_counted);
    writer->WriteU64(fresh.drift_events);
    writer->WriteU64(fresh.retrains_completed);
    writer->WriteU64(fresh.retrain_failures);
    writer->WriteU64(fresh.swaps_applied);
    writer->WriteDouble(fresh.last_swap_time);
    fresh.detector.Serialize(writer);
    fresh.session.Serialize(writer);
    writer->EndSection();
  }
  {
    // Health rides along so a restored fleet resumes its degradation state
    // machine mid-backoff instead of amnesically re-probing everything.
    // probe_inflight and last_error are transient within one boundary /
    // diagnostic-only and are deliberately not persisted; RobustnessPolicy
    // is runtime configuration (like worker_threads) and is re-applied by
    // the operator after LoadFleet.
    const HealthState& health = tenant.health;
    writer->BeginSection(persist::kTagHealth);
    writer->WriteU32(kHealthVersion);
    writer->WriteU8(static_cast<std::uint8_t>(health.health));
    writer->WriteU64(health.consecutive_plan_failures);
    writer->WriteU64(health.plan_failures);
    writer->WriteU64(health.fallbacks_served);
    writer->WriteU64(health.rejected_observations);
    writer->WriteU64(health.breaker_opens);
    writer->WriteU64(health.probes);
    writer->WriteU64(health.deadline_overruns);
    writer->WriteU64(health.consecutive_retrain_failures);
    writer->WriteU64(health.open_count);
    writer->WriteU64(health.freshness_errors);
    writer->WriteDouble(health.retry_at);
    writer->WriteDouble(health.retrain_retry_at);
    writer->WriteU64(health.jitter_rng);
    writer->EndSection();
  }
  writer->EndSection();
  return Status::OK();
}

Result<std::unique_ptr<ScalerFleet::Tenant>> ScalerFleet::ReadTenantRecord(
    persist::Reader* reader,
    const std::function<sim::DecisionClock*(const std::string&)>& clock_for,
    const FreshnessPolicy* policy) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagTenant));
  RS_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
  if (name.empty()) {
    return Status::Invalid(
        "tenant snapshot carries an empty tenant name; the file is corrupt");
  }
  ScalerRestoreOptions restore;
  if (clock_for) restore.decision_clock = clock_for(name);
  RS_ASSIGN_OR_RETURN(Scaler scaler,
                      ScalerBuilder::RestoreStateSection(reader, restore));
  auto tenant = std::make_unique<Tenant>(std::move(name), std::move(scaler));
  if (reader->remaining() > 0) {
    auto tag = reader->PeekSectionTag();
    if (tag.ok() && tag.ValueOrDie() == persist::kTagFreshness) {
      RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagFreshness));
      RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
      if (version == 0 || version > kFreshnessVersion) {
        return Status::Invalid("tenant snapshot freshness version " +
                               std::to_string(version) +
                               " is newer than this build understands");
      }
      auto fresh = std::make_unique<FreshState>();
      RS_ASSIGN_OR_RETURN(fresh->base, reader->ReadDouble());
      RS_ASSIGN_OR_RETURN(fresh->shift, reader->ReadDouble());
      RS_ASSIGN_OR_RETURN(fresh->last_attempt, reader->ReadDouble());
      RS_ASSIGN_OR_RETURN(fresh->drift_counted, reader->ReadBool());
      RS_ASSIGN_OR_RETURN(const std::uint64_t drift_events, reader->ReadU64());
      fresh->drift_events = static_cast<std::size_t>(drift_events);
      RS_ASSIGN_OR_RETURN(const std::uint64_t completed, reader->ReadU64());
      fresh->retrains_completed = static_cast<std::size_t>(completed);
      RS_ASSIGN_OR_RETURN(const std::uint64_t failures, reader->ReadU64());
      fresh->retrain_failures = static_cast<std::size_t>(failures);
      RS_ASSIGN_OR_RETURN(const std::uint64_t swaps, reader->ReadU64());
      fresh->swaps_applied = static_cast<std::size_t>(swaps);
      RS_ASSIGN_OR_RETURN(fresh->last_swap_time, reader->ReadDouble());
      const ts::DriftDetectorOptions detector_options =
          policy != nullptr ? policy->detector : ts::DriftDetectorOptions{};
      RS_ASSIGN_OR_RETURN(
          fresh->detector,
          ts::DriftDetector::Deserialize(reader, detector_options));
      const core::PipelineOptions pipeline_options =
          policy != nullptr ? policy->pipeline : core::PipelineOptions{};
      RS_ASSIGN_OR_RETURN(
          fresh->session,
          train::TrainingSession::Deserialize(reader, pipeline_options));
      fresh->loop_attached = true;
      RS_RETURN_NOT_OK(reader->ExitSection());
      tenant->fresh = std::move(fresh);
    }
  }
  if (reader->remaining() > 0) {
    auto tag = reader->PeekSectionTag();
    if (tag.ok() && tag.ValueOrDie() == persist::kTagHealth) {
      RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagHealth));
      RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
      if (version == 0 || version > kHealthVersion) {
        return Status::Invalid("tenant snapshot health version " +
                               std::to_string(version) +
                               " is newer than this build understands");
      }
      HealthState& health = tenant->health;
      RS_ASSIGN_OR_RETURN(const std::uint8_t state, reader->ReadU8());
      if (state > static_cast<std::uint8_t>(TenantHealth::kQuarantined)) {
        return Status::Invalid("tenant snapshot carries unknown health state " +
                               std::to_string(state));
      }
      health.health = static_cast<TenantHealth>(state);
      RS_ASSIGN_OR_RETURN(health.consecutive_plan_failures, reader->ReadU64());
      RS_ASSIGN_OR_RETURN(health.plan_failures, reader->ReadU64());
      RS_ASSIGN_OR_RETURN(health.fallbacks_served, reader->ReadU64());
      RS_ASSIGN_OR_RETURN(health.rejected_observations, reader->ReadU64());
      RS_ASSIGN_OR_RETURN(health.breaker_opens, reader->ReadU64());
      RS_ASSIGN_OR_RETURN(health.probes, reader->ReadU64());
      RS_ASSIGN_OR_RETURN(health.deadline_overruns, reader->ReadU64());
      RS_ASSIGN_OR_RETURN(health.consecutive_retrain_failures,
                          reader->ReadU64());
      RS_ASSIGN_OR_RETURN(health.open_count, reader->ReadU64());
      RS_ASSIGN_OR_RETURN(health.freshness_errors, reader->ReadU64());
      RS_ASSIGN_OR_RETURN(health.retry_at, reader->ReadDouble());
      RS_ASSIGN_OR_RETURN(health.retrain_retry_at, reader->ReadDouble());
      RS_ASSIGN_OR_RETURN(health.jitter_rng, reader->ReadU64());
      RS_RETURN_NOT_OK(reader->ExitSection());
    }
  }
  RS_RETURN_NOT_OK(reader->ExitSection());
  return tenant;
}

Status ScalerFleet::SnapshotTenant(const std::string& tenant,
                                   std::ostream& out) const {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("SnapshotTenant", tenant);
  persist::Writer writer;
  RS_RETURN_NOT_OK(WriteTenantRecord(&writer, i));
  return writer.Finish(out);
}

Status ScalerFleet::RestoreTenant(std::istream& in,
                                  const TenantRestoreOptions& options) {
  RS_ASSIGN_OR_RETURN(persist::Reader reader, persist::Reader::FromStream(in));
  auto clock_for = [&options](const std::string&) {
    return options.decision_clock;
  };
  RS_ASSIGN_OR_RETURN(auto tenant,
                      ReadTenantRecord(&reader, clock_for,
                                       policy_.has_value() ? &*policy_
                                                           : nullptr));
  if (!options.rename.empty()) tenant->name = options.rename;
  // RegisterTenant re-points the restored strategy's planning shards at this
  // fleet's pool and rejects duplicate names before any state changes.
  return RegisterTenant(std::move(tenant));
}

Status ScalerFleet::SaveFleetSection(persist::Writer* writer) const {
  writer->BeginSection(persist::kTagFleet);
  writer->WriteU32(kFleetLayerVersion);
  writer->WriteBool(policy_.has_value());
  if (policy_.has_value()) WritePolicy(writer, *policy_);
  writer->WriteU64(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    RS_RETURN_NOT_OK(WriteTenantRecord(writer, i));
  }
  writer->EndSection();
  return Status::OK();
}

Status ScalerFleet::SaveFleet(std::ostream& out) const {
  persist::Writer writer;
  RS_RETURN_NOT_OK(SaveFleetSection(&writer));
  return writer.Finish(out);
}

Status ScalerFleet::SaveFleetToFile(const std::string& path) const {
  // Encode fully in memory first (Writer buffers anyway), then hand the
  // bytes to the atomic temp-write + rename: a crash or failure at any
  // point leaves the previous snapshot at `path` loadable.
  std::ostringstream buffer(std::ios::binary);
  RS_RETURN_NOT_OK(SaveFleet(buffer));
  return persist::AtomicWriteFile(path, buffer.str());
}

Result<ScalerFleet> ScalerFleet::LoadFleetSection(
    persist::Reader* reader, const FleetRestoreOptions& options) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagFleet));
  RS_ASSIGN_OR_RETURN(const std::uint32_t layer_version, reader->ReadU32());
  if (layer_version == 0 || layer_version > kFleetLayerVersion) {
    return Status::Invalid("fleet snapshot record version " +
                           std::to_string(layer_version) +
                           " is newer than this build understands");
  }
  ScalerFleet fleet(options.worker_threads);
  if (layer_version >= 2) {
    RS_ASSIGN_OR_RETURN(const bool has_freshness, reader->ReadBool());
    if (has_freshness) {
      RS_ASSIGN_OR_RETURN(FreshnessPolicy policy, ReadPolicy(reader));
      // Enable before registering, so every restored tenant's loop state
      // binds to the policy as it lands.
      RS_RETURN_NOT_OK(fleet.EnableFreshness(policy));
    }
  }
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, reader->ReadU64());
  for (std::uint64_t i = 0; i < count; ++i) {
    RS_ASSIGN_OR_RETURN(
        auto tenant,
        ReadTenantRecord(reader, options.decision_clock_for,
                         fleet.policy_.has_value() ? &*fleet.policy_
                                                   : nullptr));
    RS_RETURN_NOT_OK(fleet.RegisterTenant(std::move(tenant)));
  }
  RS_RETURN_NOT_OK(reader->ExitSection());
  return fleet;
}

Result<ScalerFleet> ScalerFleet::LoadFleet(std::istream& in,
                                           const FleetRestoreOptions& options) {
  RS_ASSIGN_OR_RETURN(persist::Reader reader, persist::Reader::FromStream(in));
  return LoadFleetSection(&reader, options);
}

Result<ScalerFleet> ScalerFleet::LoadFleetFromFile(
    const std::string& path, const FleetRestoreOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("ScalerFleet::LoadFleetFromFile: cannot open " +
                           path);
  }
  return LoadFleet(in, options);
}

Status ScalerFleet::MigrateTenant(const std::string& tenant,
                                  ScalerFleet* target,
                                  const TenantRestoreOptions& options) {
  if (target == nullptr || target == this) {
    return Status::Invalid(
        "ScalerFleet::MigrateTenant: target must be a different live fleet");
  }
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("MigrateTenant", tenant);
  // Snapshot → restore → retire. Any restore failure (bad clock, name
  // collision in the target) surfaces before the source drops the tenant,
  // so a failed migration leaves both fleets exactly as they were.
  std::stringstream buffer;
  RS_RETURN_NOT_OK(SnapshotTenant(tenant, buffer));
  RS_RETURN_NOT_OK(target->RestoreTenant(buffer, options));
  return Retire(tenant);
}

}  // namespace rs::api
