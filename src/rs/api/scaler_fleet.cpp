#include "rs/api/scaler_fleet.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <mutex>
#include <ostream>
#include <sstream>

#include "rs/api/serving_tap.hpp"
#include "rs/persist/persist.hpp"

namespace rs::api {

namespace {

/// Layout version of the FLET record (the TENT record has no version of its
/// own: its fields are a name, a versioned SCLR record, and an optional
/// versioned FRSH section). v2 added the freshness policy + per-tenant
/// freshness state; v1 files load as freshness-disabled fleets.
constexpr std::uint32_t kFleetLayerVersion = 2;
/// Payload layout inside kTagFreshness (per-tenant loop state).
constexpr std::uint32_t kFreshnessVersion = 1;
/// Payload layout inside kTagFreshnessPolicy.
constexpr std::uint32_t kPolicyVersion = 1;

Status UnknownTenant(const char* op, const std::string& tenant) {
  std::ostringstream msg;
  msg << "ScalerFleet::" << op << ": unknown tenant \"" << tenant << '"';
  return Status::Invalid(msg.str());
}

/// Builds the drift detector a tenant serves against: the trained model's
/// forecast rates on the forecast grid anchored at serving time `base`,
/// with the bins already elapsed by `now` skipped (origin lands on the
/// first bin boundary at or after `now`), so the gap between the fit
/// window's end and the swap boundary is never misread as silence.
Result<ts::DriftDetector> MakeDetectorFor(const ts::DriftDetectorOptions& opts,
                                          const core::TrainedPipeline& trained,
                                          double base, double now) {
  const auto& forecast = trained.forecast;
  const double dt = forecast.dt();
  const auto& rates = forecast.rates();
  std::size_t skip = 0;
  if (now > base) {
    skip = static_cast<std::size_t>(std::ceil((now - base) / dt - 1e-9));
  }
  std::vector<double> expected;
  if (skip < rates.size()) {
    expected.assign(rates.begin() + static_cast<std::ptrdiff_t>(skip),
                    rates.end());
  } else {
    // The forecast ran out before serving caught up; hold its last level.
    expected.assign(1, rates.back());
  }
  const double origin = base + static_cast<double>(skip) * dt;
  return ts::DriftDetector::Make(opts, std::move(expected), dt,
                                 trained.period.period, origin);
}

void WritePolicy(persist::Writer* writer, const FreshnessPolicy& policy) {
  writer->BeginSection(persist::kTagFreshnessPolicy);
  writer->WriteU32(kPolicyVersion);
  // Pipeline subset: exactly the knobs the background refit consumes.
  writer->WriteDouble(policy.pipeline.dt);
  writer->WriteDouble(policy.pipeline.beta1);
  writer->WriteDouble(policy.pipeline.beta2);
  writer->WriteDouble(policy.pipeline.forecast_horizon);
  writer->WriteDouble(policy.pipeline.admm.rho);
  writer->WriteU64(policy.pipeline.admm.max_iterations);
  writer->WriteDouble(policy.pipeline.admm.primal_tolerance);
  writer->WriteDouble(policy.pipeline.admm.dual_tolerance);
  writer->WriteDouble(policy.pipeline.admm.r_clamp);
  writer->WriteU64(policy.pipeline.periodicity.aggregate_factor);
  writer->WriteU64(policy.detector.warmup_bins);
  writer->WriteDouble(policy.detector.min_rate);
  writer->WriteDouble(policy.detector.delta);
  writer->WriteDouble(policy.detector.threshold);
  writer->WriteDouble(policy.detector.min_profile_correlation);
  writer->WriteDouble(policy.detector.profile_cusum_threshold);
  writer->WriteBool(policy.detector.check_periodicity);
  writer->WriteDouble(policy.min_retrain_interval);
  writer->WriteU64(policy.retrain_workers);
  writer->EndSection();
}

Result<FreshnessPolicy> ReadPolicy(persist::Reader* reader) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagFreshnessPolicy));
  RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
  if (version == 0 || version > kPolicyVersion) {
    return Status::Invalid("fleet snapshot freshness-policy version " +
                           std::to_string(version) +
                           " is newer than this build understands");
  }
  FreshnessPolicy policy;
  RS_ASSIGN_OR_RETURN(policy.pipeline.dt, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.beta1, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.beta2, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.forecast_horizon, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.admm.rho, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t max_iter, reader->ReadU64());
  policy.pipeline.admm.max_iterations = static_cast<std::size_t>(max_iter);
  RS_ASSIGN_OR_RETURN(policy.pipeline.admm.primal_tolerance,
                      reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.admm.dual_tolerance,
                      reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.pipeline.admm.r_clamp, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t aggregate, reader->ReadU64());
  policy.pipeline.periodicity.aggregate_factor =
      static_cast<std::size_t>(aggregate);
  RS_ASSIGN_OR_RETURN(const std::uint64_t warmup, reader->ReadU64());
  policy.detector.warmup_bins = static_cast<std::size_t>(warmup);
  RS_ASSIGN_OR_RETURN(policy.detector.min_rate, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.detector.delta, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.detector.threshold, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.detector.min_profile_correlation,
                      reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.detector.profile_cusum_threshold,
                      reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(policy.detector.check_periodicity, reader->ReadBool());
  RS_ASSIGN_OR_RETURN(policy.min_retrain_interval, reader->ReadDouble());
  RS_ASSIGN_OR_RETURN(const std::uint64_t workers, reader->ReadU64());
  policy.retrain_workers = static_cast<std::size_t>(workers);
  RS_RETURN_NOT_OK(reader->ExitSection());
  return policy;
}

}  // namespace

/// Output slot of one background retrain. The pool task owns its own
/// point-in-time session copy, does nothing but the fit, and publishes the
/// result here under `mu`; all scaler construction and serving carry happen
/// on the caller thread at the swap boundary (the injected decision clock
/// is never touched from the pool).
struct ScalerFleet::RetrainJob {
  std::mutex mu;
  bool done = false;
  Status status;
  std::optional<core::TrainedPipeline> trained;
  /// Fleet serving time of the refit window's end — the replacement's
  /// forecast origin, so the new serving base after the swap.
  double base = 0.0;
};

struct ScalerFleet::FreshState {
  ts::DriftDetector detector;
  train::TrainingSession session;
  /// Session (trace) time = fleet serving time + shift. Fixed at attach:
  /// fleet time `base` maps to the session window's end.
  double shift = 0.0;
  /// Fleet serving time of the live model's forecast origin. The tenant's
  /// Scaler is driven at `fleet_time - base`; creation times come back
  /// rebased by `+ base`. 0 until the first background swap.
  double base = 0.0;
  double last_attempt = -std::numeric_limits<double>::infinity();
  bool drift_counted = false;  ///< Current latch already in drift_events.
  /// True once AttachFreshness built the detector + session (a state
  /// created only to hold a deferred manual replacement has neither).
  bool loop_attached = false;
  std::size_t drift_events = 0;
  std::size_t retrains_completed = 0;
  std::size_t retrain_failures = 0;
  std::size_t swaps_applied = 0;
  double last_swap_time = 0.0;
  std::shared_ptr<RetrainJob> job;  ///< In-flight retrain, if any.
  std::optional<Scaler> pending_manual;  ///< Deferred ReplaceModelAtNextPlan.
};

ScalerFleet::Tenant::Tenant(std::string n, Scaler s)
    : name(std::move(n)), scaler(std::move(s)) {}
ScalerFleet::Tenant::~Tenant() = default;

ScalerFleet::ScalerFleet(std::size_t worker_threads)
    : pool_(std::make_unique<common::ThreadPool>(worker_threads)) {}

ScalerFleet::ScalerFleet(ScalerFleet&&) noexcept = default;
ScalerFleet& ScalerFleet::operator=(ScalerFleet&&) noexcept = default;
ScalerFleet::~ScalerFleet() = default;

std::size_t ScalerFleet::FindIndex(const std::string& tenant) const {
  const auto it = index_.find(tenant);
  return it == index_.end() ? tenants_.size() : it->second;
}

Status ScalerFleet::Register(std::string tenant, Scaler scaler) {
  return RegisterTenant(
      std::make_unique<Tenant>(std::move(tenant), std::move(scaler)));
}

Status ScalerFleet::RegisterTenant(std::unique_ptr<Tenant> tenant) {
  if (tenant->name.empty()) {
    return Status::Invalid("ScalerFleet::Register: tenant name is empty");
  }
  if (FindIndex(tenant->name) != tenants_.size()) {
    std::ostringstream msg;
    msg << "ScalerFleet::Register: tenant \"" << tenant->name
        << "\" already registered (Retire or ReplaceModel it instead)";
    return Status::Invalid(msg.str());
  }
  tenants_.push_back(std::move(tenant));
  index_[tenants_.back()->name] = tenants_.size() - 1;
  // One work queue at both grains: the tenant's own Monte Carlo shards run
  // on the fleet pool alongside other tenants' plans.
  Tenant* entry = tenants_.back().get();
  entry->scaler.SetPlanningPool(intra_plan_sharding_ ? pool_.get() : nullptr);
  if (policy_.has_value()) {
    if (entry->fresh != nullptr && entry->fresh->loop_attached) {
      // A restored tenant brought its own loop state; rebind the knobs to
      // this fleet's policy without touching the statistics.
      entry->fresh->session.set_options(policy_->pipeline);
      entry->fresh->detector.set_options(policy_->detector);
    } else {
      const double base = entry->fresh != nullptr ? entry->fresh->base : 0.0;
      Status attached =
          AttachFreshness(entry, entry->scaler.Snapshot().now + base);
      if (!attached.ok()) {
        index_.erase(entry->name);
        tenants_.pop_back();
        return attached;
      }
    }
  }
  if (tap_ != nullptr) tap_->OnRegister(entry->name, entry->scaler);
  return Status::OK();
}

Status ScalerFleet::Retire(const std::string& tenant) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Retire", tenant);
  // An in-flight retrain job keeps itself alive through the task's own
  // shared_ptr; dropping the tenant just discards the eventual result.
  tenants_.erase(tenants_.begin() + static_cast<std::ptrdiff_t>(i));
  // Every later tenant shifted down one slot; lifecycle is rare, arrival
  // routing is not, so pay the O(T) reindex here.
  index_.erase(tenant);
  for (auto& [name, index] : index_) {
    if (index > i) --index;
  }
  if (tap_ != nullptr) tap_->OnRetire(tenant);
  return Status::OK();
}

Status ScalerFleet::ReplaceModel(const std::string& tenant, Scaler scaler) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("ReplaceModel", tenant);
  const FreshState* fresh = tenants_[i]->fresh.get();
  const double now =
      tenants_[i]->scaler.Snapshot().now + (fresh != nullptr ? fresh->base : 0);
  RS_RETURN_NOT_OK(InstallReplacement(i, std::move(scaler), /*new_base=*/0.0,
                                      now, /*reset_session=*/true));
  if (tap_ != nullptr) {
    // Post-install, post-carry: exactly the state a re-drive swaps in.
    tap_->OnReplaceModel(tenant, tenants_[i]->scaler, /*at_next_plan=*/false);
  }
  return Status::OK();
}

Status ScalerFleet::ReplaceModelAtNextPlan(const std::string& tenant,
                                           Scaler scaler) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) {
    return UnknownTenant("ReplaceModelAtNextPlan", tenant);
  }
  Tenant& entry = *tenants_[i];
  // A bare FreshState can hold the pending swap even with freshness off.
  if (entry.fresh == nullptr) entry.fresh = std::make_unique<FreshState>();
  entry.fresh->pending_manual = std::move(scaler);
  if (tap_ != nullptr) {
    tap_->OnReplaceModel(tenant, *entry.fresh->pending_manual,
                         /*at_next_plan=*/true);
  }
  return Status::OK();
}

void ScalerFleet::SetIntraPlanSharding(bool enabled) {
  intra_plan_sharding_ = enabled;
  for (auto& entry : tenants_) {
    entry->scaler.SetPlanningPool(enabled ? pool_.get() : nullptr);
  }
}

// -- Model freshness ----------------------------------------------------------

Status ScalerFleet::EnableFreshness(const FreshnessPolicy& policy) {
  if (tap_ != nullptr) {
    return Status::Invalid(
        "ScalerFleet::EnableFreshness: a serving tap is attached; background "
        "retrains finish at wall-time-dependent moments that no recorded "
        "event stream could re-drive deterministically (DetachTap first)");
  }
  if (!(policy.pipeline.dt > 0.0)) {
    return Status::Invalid("ScalerFleet::EnableFreshness: pipeline.dt <= 0");
  }
  if (!std::isfinite(policy.min_retrain_interval) ||
      policy.min_retrain_interval < 0.0) {
    return Status::Invalid(
        "ScalerFleet::EnableFreshness: min_retrain_interval must be finite "
        "and >= 0");
  }
  policy_ = policy;
  // Refits run on the retrain pool's threads (or inline at the enqueue
  // point); a caller-supplied training pool must not leak into them.
  policy_->pipeline.training_pool = nullptr;
  policy_->pipeline.periodicity.pool = nullptr;
  policy_->pipeline.admm.pool = nullptr;
  // Recreating the pool joins any old one first; results of old-policy
  // jobs stay published in their RetrainJob slots and still swap in.
  retrain_pool_ = std::make_unique<common::ThreadPool>(policy.retrain_workers);
  for (auto& entry : tenants_) {
    if (entry->fresh != nullptr && entry->fresh->loop_attached) {
      entry->fresh->session.set_options(policy_->pipeline);
      entry->fresh->detector.set_options(policy_->detector);
      continue;
    }
    const double base = entry->fresh != nullptr ? entry->fresh->base : 0.0;
    RS_RETURN_NOT_OK(
        AttachFreshness(entry.get(), entry->scaler.Snapshot().now + base));
  }
  return Status::OK();
}

Status ScalerFleet::AttachFreshness(Tenant* tenant, double now) {
  if (tenant->fresh == nullptr) {
    tenant->fresh = std::make_unique<FreshState>();
  }
  FreshState& fresh = *tenant->fresh;
  fresh.session = train::TrainingSession::FromTrained(tenant->scaler.trained(),
                                                      policy_->pipeline);
  // Fleet time `base` corresponds to the end of the trained window.
  fresh.shift = fresh.session.window_end() - fresh.base;
  RS_ASSIGN_OR_RETURN(fresh.detector,
                      MakeDetectorFor(policy_->detector,
                                      tenant->scaler.trained(), fresh.base,
                                      now));
  fresh.loop_attached = true;
  return Status::OK();
}

Result<TenantFreshness> ScalerFleet::Freshness(
    const std::string& tenant) const {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Freshness", tenant);
  TenantFreshness out;
  const FreshState* fresh = tenants_[i]->fresh.get();
  if (fresh == nullptr) return out;
  out.enabled = policy_.has_value() && fresh->loop_attached;
  if (fresh->loop_attached) {
    out.drift = fresh->detector.kind();
    out.drift_time = fresh->detector.fired_time();
    out.window_end = fresh->session.window_end() - fresh->shift;
  }
  out.retrain_inflight = fresh->job != nullptr;
  out.drift_events = fresh->drift_events;
  if (fresh->loop_attached && fresh->detector.fired() &&
      !fresh->drift_counted) {
    // The pre-plan pass has not folded the current latch in yet.
    out.drift_events += 1;
  }
  out.retrains_completed = fresh->retrains_completed;
  out.retrain_failures = fresh->retrain_failures;
  out.swaps_applied = fresh->swaps_applied;
  out.last_swap_time = fresh->last_swap_time;
  out.model_origin = fresh->base;
  return out;
}

Status ScalerFleet::RequestRetrain(const std::string& tenant) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("RequestRetrain", tenant);
  if (!policy_.has_value()) {
    return Status::Invalid(
        "ScalerFleet::RequestRetrain: freshness is not enabled (call "
        "EnableFreshness first)");
  }
  Tenant& entry = *tenants_[i];
  if (entry.fresh == nullptr || !entry.fresh->loop_attached) {
    const double base = entry.fresh != nullptr ? entry.fresh->base : 0.0;
    RS_RETURN_NOT_OK(
        AttachFreshness(&entry, entry.scaler.Snapshot().now + base));
  }
  FreshState& fresh = *entry.fresh;
  const double now = entry.scaler.Snapshot().now + fresh.base;
  RS_RETURN_NOT_OK(fresh.session.ExtendTo(now + fresh.shift));
  MaybeEnqueueRetrain(i, now, /*forced=*/true);
  return Status::OK();
}

void ScalerFleet::FreshnessPrePlan(std::size_t i, double now) {
  FreshState* fresh = tenants_[i]->fresh.get();
  if (fresh == nullptr) return;
  // Order matters: a finished result swaps in first (the boundary is the
  // earliest tear-free point), then the detector closes the bins up to the
  // boundary so silence counts as evidence, then drift may enqueue.
  MaybeApplySwap(i, now);
  fresh = tenants_[i]->fresh.get();
  if (fresh == nullptr || !fresh->loop_attached || !policy_.has_value()) {
    return;
  }
  fresh->detector.AdvanceTo(now);
  (void)fresh->session.ExtendTo(now + fresh->shift);
  MaybeEnqueueRetrain(i, now, /*forced=*/false);
}

void ScalerFleet::MaybeApplySwap(std::size_t i, double now) {
  FreshState& fresh = *tenants_[i]->fresh;
  if (fresh.pending_manual.has_value()) {
    // A deferred manual replacement outranks a background result (the
    // caller decided; the stale background fit is dropped with the job).
    Scaler replacement = std::move(*fresh.pending_manual);
    fresh.pending_manual.reset();
    fresh.job.reset();
    Status st = InstallReplacement(i, std::move(replacement), /*new_base=*/0.0,
                                   now, /*reset_session=*/true);
    if (!st.ok()) ++tenants_[i]->fresh->retrain_failures;
    return;
  }
  if (fresh.job == nullptr) return;
  core::TrainedPipeline trained;
  double base = 0.0;
  {
    std::lock_guard<std::mutex> lock(fresh.job->mu);
    if (!fresh.job->done) return;  // Still fitting; keep serving the old model.
    if (!fresh.job->status.ok()) {
      ++fresh.retrain_failures;
      fresh.job.reset();
      return;
    }
    trained = std::move(*fresh.job->trained);
    base = fresh.job->base;
  }
  fresh.job.reset();
  // The live session adopts the fit's iterate so the *next* refit warm-starts
  // from it, while keeping the arrivals accumulated since the job's copy.
  fresh.session.AdoptFit(trained);
  Scaler& retiring = tenants_[i]->scaler;
  auto built = Scaler::FromTrainedPipeline(
      std::move(trained), retiring.spec_, retiring.build_context_,
      intra_plan_sharding_ ? pool_.get() : nullptr);
  if (!built.ok()) {
    ++fresh.retrain_failures;
    return;
  }
  Scaler replacement = std::move(built).ValueOrDie();
  // Background swaps keep the tenant's full serving configuration (the
  // replacement is unstarted, so ConfigureServing accepts it; the injected
  // decision clock rides along inside the options).
  Status configured = replacement.ConfigureServing(retiring.serving_options());
  if (!configured.ok()) {
    ++fresh.retrain_failures;
    return;
  }
  Status installed = InstallReplacement(i, std::move(replacement), base, now,
                                        /*reset_session=*/false);
  if (!installed.ok()) {
    ++tenants_[i]->fresh->retrain_failures;
    return;
  }
  ++tenants_[i]->fresh->retrains_completed;
}

void ScalerFleet::MaybeEnqueueRetrain(std::size_t i, double now, bool forced) {
  FreshState& fresh = *tenants_[i]->fresh;
  if (!policy_.has_value() || !fresh.loop_attached) return;
  if (fresh.detector.fired() && !fresh.drift_counted) {
    ++fresh.drift_events;
    fresh.drift_counted = true;
  }
  if (fresh.job != nullptr) return;  // One in-flight job per tenant.
  if (!forced) {
    if (!fresh.detector.fired()) return;
    if (now - fresh.last_attempt < policy_->min_retrain_interval) return;
  }
  fresh.last_attempt = now;
  // The job fits a point-in-time copy truncated to complete bins, so the
  // live session keeps accumulating while the fit runs.
  train::TrainingSession copy = fresh.session;
  if (!copy.ExtendTo(now + fresh.shift).ok()) return;
  copy.TruncateToCompleteBins(now + fresh.shift);
  if (copy.bins() < 3) return;  // Too little window to fit; try again later.
  auto job = std::make_shared<RetrainJob>();
  job->base = copy.window_end() - fresh.shift;
  fresh.job = job;
  retrain_pool_->Submit([job, session = std::move(copy)]() mutable {
    auto fitted = session.Refit();
    std::lock_guard<std::mutex> lock(job->mu);
    if (fitted.ok()) {
      job->trained = std::move(fitted).ValueOrDie();
    } else {
      job->status = fitted.status();
    }
    job->done = true;
  });
}

Status ScalerFleet::InstallReplacement(std::size_t i, Scaler replacement,
                                       double new_base, double now,
                                       bool reset_session) {
  Tenant& tenant = *tenants_[i];
  CarryServingConfig(tenant.scaler, &replacement);
  tenant.scaler = std::move(replacement);
  tenant.scaler.SetPlanningPool(intra_plan_sharding_ ? pool_.get() : nullptr);
  if (tenant.fresh == nullptr) return Status::OK();
  FreshState& fresh = *tenant.fresh;
  fresh.base = new_base;
  fresh.swaps_applied += 1;
  fresh.last_swap_time = now;
  fresh.drift_counted = false;
  if (!policy_.has_value()) return Status::OK();
  if (reset_session) {
    // Manual swap: the incoming model's own training window seeds the loop.
    return AttachFreshness(&tenant, now);
  }
  // Background swap: keep the accumulated session (it already adopted the
  // fit); only the detector restarts, against the new model's forecast.
  RS_ASSIGN_OR_RETURN(
      fresh.detector, MakeDetectorFor(policy_->detector,
                                      tenant.scaler.trained(), new_base, now));
  return Status::OK();
}

void ScalerFleet::CarryServingConfig(const Scaler& retiring,
                                     Scaler* replacement) {
  // A ConfigureHistoryRetention widening survives the swap (never narrows
  // a wider replacement setting).
  replacement->retention_override_ =
      std::max(replacement->retention_override_, retiring.retention_override());
  // Decision-clock position: deterministic clocks export one; carrying it
  // keeps charged decision time monotone across the swap. Steady clocks
  // export nothing (wall time resumes naturally), and a replacement whose
  // clock refuses the import just starts fresh — both are fine to ignore.
  double time = 0.0;
  std::uint64_t readings = 0;
  if (retiring.serving_clock()->ExportPosition(&time, &readings)) {
    Status imported = replacement->serving_clock()->ImportPosition(time,
                                                                   readings);
    (void)imported;
  }
}

// -- Serving tap --------------------------------------------------------------

Status ScalerFleet::AttachTap(ServingTap* tap) {
  if (tap == nullptr) {
    return Status::Invalid(
        "ScalerFleet::AttachTap: tap is null (use DetachTap to detach)");
  }
  if (tap_ != nullptr && tap_ != tap) {
    return Status::Invalid(
        "ScalerFleet::AttachTap: another tap is already attached (one tap at "
        "a time; DetachTap it first)");
  }
  if (policy_.has_value()) {
    return Status::Invalid(
        "ScalerFleet::AttachTap: the freshness loop is enabled; its "
        "background retrains land at wall-time-dependent moments that no "
        "recorded event stream could re-drive deterministically (use manual "
        "ReplaceModel swaps under a tap instead)");
  }
  tap_ = tap;
  return Status::OK();
}

void ScalerFleet::DetachTap() { tap_ = nullptr; }

TapClockMark ScalerFleet::TapMark(const Scaler& scaler) {
  TapClockMark mark;
  mark.has_position =
      scaler.serving_clock()->ExportPosition(&mark.time, &mark.readings);
  return mark;
}

// -- Serving ------------------------------------------------------------------

std::vector<std::string> ScalerFleet::Tenants() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& entry : tenants_) names.push_back(entry->name);
  return names;
}

Scaler* ScalerFleet::Find(const std::string& tenant) {
  const std::size_t i = FindIndex(tenant);
  return i == tenants_.size() ? nullptr : &tenants_[i]->scaler;
}

const Scaler* ScalerFleet::Find(const std::string& tenant) const {
  return const_cast<ScalerFleet*>(this)->Find(tenant);
}

Status ScalerFleet::ConfigureServingAll(const sim::EngineOptions& options) {
  for (auto& entry : tenants_) {
    Status st = entry->scaler.ConfigureServing(options);
    if (!st.ok()) {
      std::ostringstream msg;
      msg << "ScalerFleet::ConfigureServingAll: tenant \"" << entry->name
          << "\": " << st.message();
      return Status(st.code(), msg.str());
    }
  }
  return Status::OK();
}

Result<Scaler::ObserveOutcome> ScalerFleet::Observe(const std::string& tenant,
                                                    double arrival_time) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Observe", tenant);
  Tenant& entry = *tenants_[i];
  FreshState* fresh = entry.fresh.get();
  const double base = fresh != nullptr ? fresh->base : 0.0;
  auto outcome = entry.scaler.Observe(arrival_time - base);
  if (!outcome.ok()) return outcome;
  if (fresh != nullptr && fresh->loop_attached && policy_.has_value()) {
    // The same arrival feeds the drift statistics and the retrain window.
    fresh->detector.Observe(arrival_time);
    (void)fresh->session.AppendArrival(arrival_time + fresh->shift);
  }
  if (tap_ != nullptr) {
    tap_->OnObserve(tenant, arrival_time, outcome.ValueOrDie());
  }
  return outcome;
}

Result<sim::ScalingAction> ScalerFleet::Plan(const std::string& tenant,
                                             double now) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Plan", tenant);
  FreshnessPrePlan(i, now);
  Tenant& entry = *tenants_[i];
  const double base = entry.fresh != nullptr ? entry.fresh->base : 0.0;
  auto planned = entry.scaler.Plan(now - base);
  if (!planned.ok()) return planned;
  sim::ScalingAction action = std::move(planned).ValueOrDie();
  if (base != 0.0) {
    // Back onto the caller's serving clock.
    for (double& t : action.creation_times) t += base;
  }
  if (tap_ != nullptr) {
    tap_->OnPlan(tenant, now, action, TapMark(entry.scaler));
  }
  return action;
}

std::vector<ScalerFleet::TenantPlan> ScalerFleet::PlanAll(double now) {
  // The freshness pre-pass (swap / drift bookkeeping / enqueue) runs on the
  // caller thread in registration order — deterministic regardless of the
  // worker count — before any planning fans out.
  for (std::size_t i = 0; i < tenants_.size(); ++i) FreshnessPrePlan(i, now);
  // Slot-per-tenant output: workers scatter into their own index, the
  // ParallelFor join publishes the writes, and the returned order is the
  // registration order no matter which worker finished first.
  std::vector<TenantPlan> plans(tenants_.size());
  common::ParallelFor(pool_.get(), tenants_.size(), [&](std::size_t i) {
    Tenant& tenant = *tenants_[i];
    TenantPlan& plan = plans[i];
    plan.tenant = tenant.name;
    const double base = tenant.fresh != nullptr ? tenant.fresh->base : 0.0;
    auto planned = tenant.scaler.Plan(now - base);
    if (planned.ok()) {
      plan.action = std::move(planned).ValueOrDie();
      if (base != 0.0) {
        for (double& t : plan.action.creation_times) t += base;
      }
    } else {
      plan.status = planned.status();
    }
  });
  if (tap_ != nullptr) {
    // After the join, on the caller thread: clocks are quiescent and the
    // batch result is final, so the tap sees exactly what the caller gets.
    std::vector<TapClockMark> clocks(tenants_.size());
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      clocks[i] = TapMark(tenants_[i]->scaler);
    }
    tap_->OnPlanAll(now, plans, clocks);
  }
  return plans;
}

FleetSnapshot ScalerFleet::Snapshot() const {
  FleetSnapshot fleet;
  fleet.tenants = tenants_.size();
  fleet.per_tenant.reserve(tenants_.size());
  for (const auto& entry : tenants_) {
    ServingSnapshot snap = entry->scaler.Snapshot();
    fleet.tenants_started += snap.started ? 1 : 0;
    fleet.queries_observed += snap.queries_observed;
    fleet.instances_alive += snap.instances_alive;
    fleet.instances_ready += snap.instances_ready;
    fleet.scheduled_creations += snap.scheduled_creations;
    fleet.cold_starts += snap.cold_starts;
    fleet.creations_requested += snap.creations_requested;
    fleet.deletions_requested += snap.deletions_requested;
    fleet.planning_rounds += snap.planning_rounds;
    fleet.arrivals_retained += snap.arrivals_retained;
    fleet.actions_retained += snap.actions_retained;
    fleet.planning_workspace_bytes += snap.planning_workspace_bytes;
    fleet.per_tenant.emplace_back(entry->name, std::move(snap));
  }
  return fleet;
}

// -- Durability & migration -------------------------------------------------

Status ScalerFleet::WriteTenantRecord(persist::Writer* writer,
                                      std::size_t index) const {
  const Tenant& tenant = *tenants_[index];
  writer->BeginSection(persist::kTagTenant);
  writer->WriteString(tenant.name);
  RS_RETURN_NOT_OK(tenant.scaler.SaveStateSection(writer));
  if (tenant.fresh != nullptr && tenant.fresh->loop_attached) {
    // In-flight jobs and pending manual replacements are deliberately not
    // persisted: a latched drift survives, so a restored fleet simply
    // re-enqueues the retrain at its first plan boundary.
    const FreshState& fresh = *tenant.fresh;
    writer->BeginSection(persist::kTagFreshness);
    writer->WriteU32(kFreshnessVersion);
    writer->WriteDouble(fresh.base);
    writer->WriteDouble(fresh.shift);
    writer->WriteDouble(fresh.last_attempt);
    writer->WriteBool(fresh.drift_counted);
    writer->WriteU64(fresh.drift_events);
    writer->WriteU64(fresh.retrains_completed);
    writer->WriteU64(fresh.retrain_failures);
    writer->WriteU64(fresh.swaps_applied);
    writer->WriteDouble(fresh.last_swap_time);
    fresh.detector.Serialize(writer);
    fresh.session.Serialize(writer);
    writer->EndSection();
  }
  writer->EndSection();
  return Status::OK();
}

Result<std::unique_ptr<ScalerFleet::Tenant>> ScalerFleet::ReadTenantRecord(
    persist::Reader* reader,
    const std::function<sim::DecisionClock*(const std::string&)>& clock_for,
    const FreshnessPolicy* policy) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagTenant));
  RS_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
  if (name.empty()) {
    return Status::Invalid(
        "tenant snapshot carries an empty tenant name; the file is corrupt");
  }
  ScalerRestoreOptions restore;
  if (clock_for) restore.decision_clock = clock_for(name);
  RS_ASSIGN_OR_RETURN(Scaler scaler,
                      ScalerBuilder::RestoreStateSection(reader, restore));
  auto tenant = std::make_unique<Tenant>(std::move(name), std::move(scaler));
  if (reader->remaining() > 0) {
    auto tag = reader->PeekSectionTag();
    if (tag.ok() && tag.ValueOrDie() == persist::kTagFreshness) {
      RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagFreshness));
      RS_ASSIGN_OR_RETURN(const std::uint32_t version, reader->ReadU32());
      if (version == 0 || version > kFreshnessVersion) {
        return Status::Invalid("tenant snapshot freshness version " +
                               std::to_string(version) +
                               " is newer than this build understands");
      }
      auto fresh = std::make_unique<FreshState>();
      RS_ASSIGN_OR_RETURN(fresh->base, reader->ReadDouble());
      RS_ASSIGN_OR_RETURN(fresh->shift, reader->ReadDouble());
      RS_ASSIGN_OR_RETURN(fresh->last_attempt, reader->ReadDouble());
      RS_ASSIGN_OR_RETURN(fresh->drift_counted, reader->ReadBool());
      RS_ASSIGN_OR_RETURN(const std::uint64_t drift_events, reader->ReadU64());
      fresh->drift_events = static_cast<std::size_t>(drift_events);
      RS_ASSIGN_OR_RETURN(const std::uint64_t completed, reader->ReadU64());
      fresh->retrains_completed = static_cast<std::size_t>(completed);
      RS_ASSIGN_OR_RETURN(const std::uint64_t failures, reader->ReadU64());
      fresh->retrain_failures = static_cast<std::size_t>(failures);
      RS_ASSIGN_OR_RETURN(const std::uint64_t swaps, reader->ReadU64());
      fresh->swaps_applied = static_cast<std::size_t>(swaps);
      RS_ASSIGN_OR_RETURN(fresh->last_swap_time, reader->ReadDouble());
      const ts::DriftDetectorOptions detector_options =
          policy != nullptr ? policy->detector : ts::DriftDetectorOptions{};
      RS_ASSIGN_OR_RETURN(
          fresh->detector,
          ts::DriftDetector::Deserialize(reader, detector_options));
      const core::PipelineOptions pipeline_options =
          policy != nullptr ? policy->pipeline : core::PipelineOptions{};
      RS_ASSIGN_OR_RETURN(
          fresh->session,
          train::TrainingSession::Deserialize(reader, pipeline_options));
      fresh->loop_attached = true;
      RS_RETURN_NOT_OK(reader->ExitSection());
      tenant->fresh = std::move(fresh);
    }
  }
  RS_RETURN_NOT_OK(reader->ExitSection());
  return tenant;
}

Status ScalerFleet::SnapshotTenant(const std::string& tenant,
                                   std::ostream& out) const {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("SnapshotTenant", tenant);
  persist::Writer writer;
  RS_RETURN_NOT_OK(WriteTenantRecord(&writer, i));
  return writer.Finish(out);
}

Status ScalerFleet::RestoreTenant(std::istream& in,
                                  const TenantRestoreOptions& options) {
  RS_ASSIGN_OR_RETURN(persist::Reader reader, persist::Reader::FromStream(in));
  auto clock_for = [&options](const std::string&) {
    return options.decision_clock;
  };
  RS_ASSIGN_OR_RETURN(auto tenant,
                      ReadTenantRecord(&reader, clock_for,
                                       policy_.has_value() ? &*policy_
                                                           : nullptr));
  if (!options.rename.empty()) tenant->name = options.rename;
  // RegisterTenant re-points the restored strategy's planning shards at this
  // fleet's pool and rejects duplicate names before any state changes.
  return RegisterTenant(std::move(tenant));
}

Status ScalerFleet::SaveFleet(std::ostream& out) const {
  persist::Writer writer;
  writer.BeginSection(persist::kTagFleet);
  writer.WriteU32(kFleetLayerVersion);
  writer.WriteBool(policy_.has_value());
  if (policy_.has_value()) WritePolicy(&writer, *policy_);
  writer.WriteU64(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    RS_RETURN_NOT_OK(WriteTenantRecord(&writer, i));
  }
  writer.EndSection();
  return writer.Finish(out);
}

Result<ScalerFleet> ScalerFleet::LoadFleet(std::istream& in,
                                           const FleetRestoreOptions& options) {
  RS_ASSIGN_OR_RETURN(persist::Reader reader, persist::Reader::FromStream(in));
  RS_RETURN_NOT_OK(reader.EnterSection(persist::kTagFleet));
  RS_ASSIGN_OR_RETURN(const std::uint32_t layer_version, reader.ReadU32());
  if (layer_version == 0 || layer_version > kFleetLayerVersion) {
    return Status::Invalid("fleet snapshot record version " +
                           std::to_string(layer_version) +
                           " is newer than this build understands");
  }
  ScalerFleet fleet(options.worker_threads);
  if (layer_version >= 2) {
    RS_ASSIGN_OR_RETURN(const bool has_freshness, reader.ReadBool());
    if (has_freshness) {
      RS_ASSIGN_OR_RETURN(FreshnessPolicy policy, ReadPolicy(&reader));
      // Enable before registering, so every restored tenant's loop state
      // binds to the policy as it lands.
      RS_RETURN_NOT_OK(fleet.EnableFreshness(policy));
    }
  }
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, reader.ReadU64());
  for (std::uint64_t i = 0; i < count; ++i) {
    RS_ASSIGN_OR_RETURN(
        auto tenant,
        ReadTenantRecord(&reader, options.decision_clock_for,
                         fleet.policy_.has_value() ? &*fleet.policy_
                                                   : nullptr));
    RS_RETURN_NOT_OK(fleet.RegisterTenant(std::move(tenant)));
  }
  RS_RETURN_NOT_OK(reader.ExitSection());
  return fleet;
}

Status ScalerFleet::MigrateTenant(const std::string& tenant,
                                  ScalerFleet* target,
                                  const TenantRestoreOptions& options) {
  if (target == nullptr || target == this) {
    return Status::Invalid(
        "ScalerFleet::MigrateTenant: target must be a different live fleet");
  }
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("MigrateTenant", tenant);
  // Snapshot → restore → retire. Any restore failure (bad clock, name
  // collision in the target) surfaces before the source drops the tenant,
  // so a failed migration leaves both fleets exactly as they were.
  std::stringstream buffer;
  RS_RETURN_NOT_OK(SnapshotTenant(tenant, buffer));
  RS_RETURN_NOT_OK(target->RestoreTenant(buffer, options));
  return Retire(tenant);
}

}  // namespace rs::api
