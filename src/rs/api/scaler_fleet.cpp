#include "rs/api/scaler_fleet.hpp"

#include <sstream>

namespace rs::api {

namespace {

Status UnknownTenant(const char* op, const std::string& tenant) {
  std::ostringstream msg;
  msg << "ScalerFleet::" << op << ": unknown tenant \"" << tenant << '"';
  return Status::Invalid(msg.str());
}

}  // namespace

ScalerFleet::ScalerFleet(std::size_t worker_threads)
    : pool_(std::make_unique<common::ThreadPool>(worker_threads)) {}

ScalerFleet::ScalerFleet(ScalerFleet&&) noexcept = default;
ScalerFleet& ScalerFleet::operator=(ScalerFleet&&) noexcept = default;
ScalerFleet::~ScalerFleet() = default;

std::size_t ScalerFleet::FindIndex(const std::string& tenant) const {
  const auto it = index_.find(tenant);
  return it == index_.end() ? tenants_.size() : it->second;
}

Status ScalerFleet::Register(std::string tenant, Scaler scaler) {
  if (tenant.empty()) {
    return Status::Invalid("ScalerFleet::Register: tenant name is empty");
  }
  if (FindIndex(tenant) != tenants_.size()) {
    std::ostringstream msg;
    msg << "ScalerFleet::Register: tenant \"" << tenant
        << "\" already registered (Retire or ReplaceModel it instead)";
    return Status::Invalid(msg.str());
  }
  tenants_.push_back(
      std::make_unique<Tenant>(std::move(tenant), std::move(scaler)));
  index_[tenants_.back()->name] = tenants_.size() - 1;
  // One work queue at both grains: the tenant's own Monte Carlo shards run
  // on the fleet pool alongside other tenants' plans.
  tenants_.back()->scaler.SetPlanningPool(
      intra_plan_sharding_ ? pool_.get() : nullptr);
  return Status::OK();
}

Status ScalerFleet::Retire(const std::string& tenant) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Retire", tenant);
  tenants_.erase(tenants_.begin() + static_cast<std::ptrdiff_t>(i));
  // Every later tenant shifted down one slot; lifecycle is rare, arrival
  // routing is not, so pay the O(T) reindex here.
  index_.erase(tenant);
  for (auto& [name, index] : index_) {
    if (index > i) --index;
  }
  return Status::OK();
}

Status ScalerFleet::ReplaceModel(const std::string& tenant, Scaler scaler) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("ReplaceModel", tenant);
  tenants_[i]->scaler = std::move(scaler);
  tenants_[i]->scaler.SetPlanningPool(intra_plan_sharding_ ? pool_.get()
                                                           : nullptr);
  return Status::OK();
}

void ScalerFleet::SetIntraPlanSharding(bool enabled) {
  intra_plan_sharding_ = enabled;
  for (auto& entry : tenants_) {
    entry->scaler.SetPlanningPool(enabled ? pool_.get() : nullptr);
  }
}

std::vector<std::string> ScalerFleet::Tenants() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& entry : tenants_) names.push_back(entry->name);
  return names;
}

Scaler* ScalerFleet::Find(const std::string& tenant) {
  const std::size_t i = FindIndex(tenant);
  return i == tenants_.size() ? nullptr : &tenants_[i]->scaler;
}

const Scaler* ScalerFleet::Find(const std::string& tenant) const {
  return const_cast<ScalerFleet*>(this)->Find(tenant);
}

Status ScalerFleet::ConfigureServingAll(const sim::EngineOptions& options) {
  for (auto& entry : tenants_) {
    Status st = entry->scaler.ConfigureServing(options);
    if (!st.ok()) {
      std::ostringstream msg;
      msg << "ScalerFleet::ConfigureServingAll: tenant \"" << entry->name
          << "\": " << st.message();
      return Status(st.code(), msg.str());
    }
  }
  return Status::OK();
}

Result<Scaler::ObserveOutcome> ScalerFleet::Observe(const std::string& tenant,
                                                    double arrival_time) {
  Scaler* scaler = Find(tenant);
  if (scaler == nullptr) return UnknownTenant("Observe", tenant);
  return scaler->Observe(arrival_time);
}

Result<sim::ScalingAction> ScalerFleet::Plan(const std::string& tenant,
                                             double now) {
  Scaler* scaler = Find(tenant);
  if (scaler == nullptr) return UnknownTenant("Plan", tenant);
  return scaler->Plan(now);
}

std::vector<ScalerFleet::TenantPlan> ScalerFleet::PlanAll(double now) {
  // Slot-per-tenant output: workers scatter into their own index, the
  // ParallelFor join publishes the writes, and the returned order is the
  // registration order no matter which worker finished first.
  std::vector<TenantPlan> plans(tenants_.size());
  common::ParallelFor(pool_.get(), tenants_.size(), [&](std::size_t i) {
    Tenant& tenant = *tenants_[i];
    TenantPlan& plan = plans[i];
    plan.tenant = tenant.name;
    auto planned = tenant.scaler.Plan(now);
    if (planned.ok()) {
      plan.action = std::move(planned).ValueOrDie();
    } else {
      plan.status = planned.status();
    }
  });
  return plans;
}

FleetSnapshot ScalerFleet::Snapshot() const {
  FleetSnapshot fleet;
  fleet.tenants = tenants_.size();
  fleet.per_tenant.reserve(tenants_.size());
  for (const auto& entry : tenants_) {
    ServingSnapshot snap = entry->scaler.Snapshot();
    fleet.tenants_started += snap.started ? 1 : 0;
    fleet.queries_observed += snap.queries_observed;
    fleet.instances_alive += snap.instances_alive;
    fleet.instances_ready += snap.instances_ready;
    fleet.scheduled_creations += snap.scheduled_creations;
    fleet.cold_starts += snap.cold_starts;
    fleet.creations_requested += snap.creations_requested;
    fleet.deletions_requested += snap.deletions_requested;
    fleet.planning_rounds += snap.planning_rounds;
    fleet.arrivals_retained += snap.arrivals_retained;
    fleet.actions_retained += snap.actions_retained;
    fleet.planning_workspace_bytes += snap.planning_workspace_bytes;
    fleet.per_tenant.emplace_back(entry->name, std::move(snap));
  }
  return fleet;
}

}  // namespace rs::api
