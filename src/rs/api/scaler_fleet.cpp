#include "rs/api/scaler_fleet.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "rs/persist/persist.hpp"

namespace rs::api {

namespace {

/// Layout version of the FLET record (the TENT record has no version of its
/// own: its two fields are a name and a versioned SCLR record).
constexpr std::uint32_t kFleetLayerVersion = 1;

Status UnknownTenant(const char* op, const std::string& tenant) {
  std::ostringstream msg;
  msg << "ScalerFleet::" << op << ": unknown tenant \"" << tenant << '"';
  return Status::Invalid(msg.str());
}

}  // namespace

ScalerFleet::ScalerFleet(std::size_t worker_threads)
    : pool_(std::make_unique<common::ThreadPool>(worker_threads)) {}

ScalerFleet::ScalerFleet(ScalerFleet&&) noexcept = default;
ScalerFleet& ScalerFleet::operator=(ScalerFleet&&) noexcept = default;
ScalerFleet::~ScalerFleet() = default;

std::size_t ScalerFleet::FindIndex(const std::string& tenant) const {
  const auto it = index_.find(tenant);
  return it == index_.end() ? tenants_.size() : it->second;
}

Status ScalerFleet::Register(std::string tenant, Scaler scaler) {
  if (tenant.empty()) {
    return Status::Invalid("ScalerFleet::Register: tenant name is empty");
  }
  if (FindIndex(tenant) != tenants_.size()) {
    std::ostringstream msg;
    msg << "ScalerFleet::Register: tenant \"" << tenant
        << "\" already registered (Retire or ReplaceModel it instead)";
    return Status::Invalid(msg.str());
  }
  tenants_.push_back(
      std::make_unique<Tenant>(std::move(tenant), std::move(scaler)));
  index_[tenants_.back()->name] = tenants_.size() - 1;
  // One work queue at both grains: the tenant's own Monte Carlo shards run
  // on the fleet pool alongside other tenants' plans.
  tenants_.back()->scaler.SetPlanningPool(
      intra_plan_sharding_ ? pool_.get() : nullptr);
  return Status::OK();
}

Status ScalerFleet::Retire(const std::string& tenant) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("Retire", tenant);
  tenants_.erase(tenants_.begin() + static_cast<std::ptrdiff_t>(i));
  // Every later tenant shifted down one slot; lifecycle is rare, arrival
  // routing is not, so pay the O(T) reindex here.
  index_.erase(tenant);
  for (auto& [name, index] : index_) {
    if (index > i) --index;
  }
  return Status::OK();
}

Status ScalerFleet::ReplaceModel(const std::string& tenant, Scaler scaler) {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("ReplaceModel", tenant);
  tenants_[i]->scaler = std::move(scaler);
  tenants_[i]->scaler.SetPlanningPool(intra_plan_sharding_ ? pool_.get()
                                                           : nullptr);
  return Status::OK();
}

void ScalerFleet::SetIntraPlanSharding(bool enabled) {
  intra_plan_sharding_ = enabled;
  for (auto& entry : tenants_) {
    entry->scaler.SetPlanningPool(enabled ? pool_.get() : nullptr);
  }
}

std::vector<std::string> ScalerFleet::Tenants() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& entry : tenants_) names.push_back(entry->name);
  return names;
}

Scaler* ScalerFleet::Find(const std::string& tenant) {
  const std::size_t i = FindIndex(tenant);
  return i == tenants_.size() ? nullptr : &tenants_[i]->scaler;
}

const Scaler* ScalerFleet::Find(const std::string& tenant) const {
  return const_cast<ScalerFleet*>(this)->Find(tenant);
}

Status ScalerFleet::ConfigureServingAll(const sim::EngineOptions& options) {
  for (auto& entry : tenants_) {
    Status st = entry->scaler.ConfigureServing(options);
    if (!st.ok()) {
      std::ostringstream msg;
      msg << "ScalerFleet::ConfigureServingAll: tenant \"" << entry->name
          << "\": " << st.message();
      return Status(st.code(), msg.str());
    }
  }
  return Status::OK();
}

Result<Scaler::ObserveOutcome> ScalerFleet::Observe(const std::string& tenant,
                                                    double arrival_time) {
  Scaler* scaler = Find(tenant);
  if (scaler == nullptr) return UnknownTenant("Observe", tenant);
  return scaler->Observe(arrival_time);
}

Result<sim::ScalingAction> ScalerFleet::Plan(const std::string& tenant,
                                             double now) {
  Scaler* scaler = Find(tenant);
  if (scaler == nullptr) return UnknownTenant("Plan", tenant);
  return scaler->Plan(now);
}

std::vector<ScalerFleet::TenantPlan> ScalerFleet::PlanAll(double now) {
  // Slot-per-tenant output: workers scatter into their own index, the
  // ParallelFor join publishes the writes, and the returned order is the
  // registration order no matter which worker finished first.
  std::vector<TenantPlan> plans(tenants_.size());
  common::ParallelFor(pool_.get(), tenants_.size(), [&](std::size_t i) {
    Tenant& tenant = *tenants_[i];
    TenantPlan& plan = plans[i];
    plan.tenant = tenant.name;
    auto planned = tenant.scaler.Plan(now);
    if (planned.ok()) {
      plan.action = std::move(planned).ValueOrDie();
    } else {
      plan.status = planned.status();
    }
  });
  return plans;
}

FleetSnapshot ScalerFleet::Snapshot() const {
  FleetSnapshot fleet;
  fleet.tenants = tenants_.size();
  fleet.per_tenant.reserve(tenants_.size());
  for (const auto& entry : tenants_) {
    ServingSnapshot snap = entry->scaler.Snapshot();
    fleet.tenants_started += snap.started ? 1 : 0;
    fleet.queries_observed += snap.queries_observed;
    fleet.instances_alive += snap.instances_alive;
    fleet.instances_ready += snap.instances_ready;
    fleet.scheduled_creations += snap.scheduled_creations;
    fleet.cold_starts += snap.cold_starts;
    fleet.creations_requested += snap.creations_requested;
    fleet.deletions_requested += snap.deletions_requested;
    fleet.planning_rounds += snap.planning_rounds;
    fleet.arrivals_retained += snap.arrivals_retained;
    fleet.actions_retained += snap.actions_retained;
    fleet.planning_workspace_bytes += snap.planning_workspace_bytes;
    fleet.per_tenant.emplace_back(entry->name, std::move(snap));
  }
  return fleet;
}

// -- Durability & migration -------------------------------------------------

Status ScalerFleet::WriteTenantRecord(persist::Writer* writer,
                                      std::size_t index) const {
  const Tenant& tenant = *tenants_[index];
  writer->BeginSection(persist::kTagTenant);
  writer->WriteString(tenant.name);
  RS_RETURN_NOT_OK(tenant.scaler.SaveStateSection(writer));
  writer->EndSection();
  return Status::OK();
}

Result<std::pair<std::string, Scaler>> ScalerFleet::ReadTenantRecord(
    persist::Reader* reader,
    const std::function<sim::DecisionClock*(const std::string&)>& clock_for) {
  RS_RETURN_NOT_OK(reader->EnterSection(persist::kTagTenant));
  RS_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
  if (name.empty()) {
    return Status::Invalid(
        "tenant snapshot carries an empty tenant name; the file is corrupt");
  }
  ScalerRestoreOptions restore;
  if (clock_for) restore.decision_clock = clock_for(name);
  RS_ASSIGN_OR_RETURN(Scaler scaler,
                      ScalerBuilder::RestoreStateSection(reader, restore));
  RS_RETURN_NOT_OK(reader->ExitSection());
  return std::make_pair(std::move(name), std::move(scaler));
}

Status ScalerFleet::SnapshotTenant(const std::string& tenant,
                                   std::ostream& out) const {
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("SnapshotTenant", tenant);
  persist::Writer writer;
  RS_RETURN_NOT_OK(WriteTenantRecord(&writer, i));
  return writer.Finish(out);
}

Status ScalerFleet::RestoreTenant(std::istream& in,
                                  const TenantRestoreOptions& options) {
  RS_ASSIGN_OR_RETURN(persist::Reader reader, persist::Reader::FromStream(in));
  auto clock_for = [&options](const std::string&) {
    return options.decision_clock;
  };
  RS_ASSIGN_OR_RETURN(auto record, ReadTenantRecord(&reader, clock_for));
  const std::string& name =
      options.rename.empty() ? record.first : options.rename;
  // Register re-points the restored strategy's planning shards at this
  // fleet's pool and rejects duplicate names before any state changes.
  return Register(name, std::move(record.second));
}

Status ScalerFleet::SaveFleet(std::ostream& out) const {
  persist::Writer writer;
  writer.BeginSection(persist::kTagFleet);
  writer.WriteU32(kFleetLayerVersion);
  writer.WriteU64(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    RS_RETURN_NOT_OK(WriteTenantRecord(&writer, i));
  }
  writer.EndSection();
  return writer.Finish(out);
}

Result<ScalerFleet> ScalerFleet::LoadFleet(std::istream& in,
                                           const FleetRestoreOptions& options) {
  RS_ASSIGN_OR_RETURN(persist::Reader reader, persist::Reader::FromStream(in));
  RS_RETURN_NOT_OK(reader.EnterSection(persist::kTagFleet));
  RS_ASSIGN_OR_RETURN(const std::uint32_t layer_version, reader.ReadU32());
  if (layer_version == 0 || layer_version > kFleetLayerVersion) {
    return Status::Invalid("fleet snapshot record version " +
                           std::to_string(layer_version) +
                           " is newer than this build understands");
  }
  RS_ASSIGN_OR_RETURN(const std::uint64_t count, reader.ReadU64());
  ScalerFleet fleet(options.worker_threads);
  for (std::uint64_t i = 0; i < count; ++i) {
    RS_ASSIGN_OR_RETURN(auto record,
                        ReadTenantRecord(&reader, options.decision_clock_for));
    RS_RETURN_NOT_OK(fleet.Register(record.first, std::move(record.second)));
  }
  RS_RETURN_NOT_OK(reader.ExitSection());
  return fleet;
}

Status ScalerFleet::MigrateTenant(const std::string& tenant,
                                  ScalerFleet* target,
                                  const TenantRestoreOptions& options) {
  if (target == nullptr || target == this) {
    return Status::Invalid(
        "ScalerFleet::MigrateTenant: target must be a different live fleet");
  }
  const std::size_t i = FindIndex(tenant);
  if (i == tenants_.size()) return UnknownTenant("MigrateTenant", tenant);
  // Snapshot → restore → retire. Any restore failure (bad clock, name
  // collision in the target) surfaces before the source drops the tenant,
  // so a failed migration leaves both fleets exactly as they were.
  std::stringstream buffer;
  RS_RETURN_NOT_OK(SnapshotTenant(tenant, buffer));
  RS_RETURN_NOT_OK(target->RestoreTenant(buffer, options));
  return Retire(tenant);
}

}  // namespace rs::api
