/// \file targets.hpp
/// \brief Typed scaling targets — the one place where the meaning of the
///        per-variant "target" knob lives (HP → hitting-probability 1−α,
///        RT → waiting-time budget d−µs, cost → idle budget). Both the
///        string-keyed registry and the builder facade translate targets
///        through these helpers, so the semantics cannot drift apart.
#pragma once

#include <string>
#include <variant>

#include "rs/common/status.hpp"
#include "rs/core/sequential_scaler.hpp"

namespace rs::api {

/// Target hitting probability P(instance ready on arrival) — Eq. (2)/(3).
struct HitRate {
  double value = 0.9;  ///< In (0, 1); the policy's miss budget is α = 1−value.
};

/// Mean waiting-time budget d − µs in seconds — Eq. (4)/(5).
struct ResponseTimeBudget {
  double seconds = 1.0;
};

/// Mean idle-time budget per instance in seconds — Eq. (6)/(7).
struct IdleBudget {
  double seconds = 2.0;
};

/// One of the paper's three stochastically-constrained formulations.
using ScalingTarget = std::variant<HitRate, ResponseTimeBudget, IdleBudget>;

/// The RobustScaler variant a target selects.
core::ScalerVariant VariantOf(const ScalingTarget& target);

/// Registry name of the strategy a target selects ("robust_hp" / "robust_rt"
/// / "robust_cost").
const char* StrategyNameOf(const ScalingTarget& target);

/// Registry name for a ScalerVariant (same mapping as StrategyNameOf).
const char* StrategyNameFor(core::ScalerVariant variant);

/// The raw numeric value a target carries (the registry's "target" param).
double RawTargetValue(const ScalingTarget& target);

/// \brief Validates the target and writes variant + target knob into
///        `options` (the single source of target semantics).
Status ApplyTarget(const ScalingTarget& target,
                   core::SequentialScalerOptions* options);

/// \brief Interprets a raw `target` parameter value for `variant` (the
///        registry's "target" key) as the matching typed target.
Result<ScalingTarget> TargetFromParam(core::ScalerVariant variant, double raw);

}  // namespace rs::api
