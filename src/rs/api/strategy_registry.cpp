#include "rs/api/strategy_registry.hpp"

#include <utility>

namespace rs::api {

namespace internal {
// Defined in builtin_strategies.cpp; wires the five built-in strategies.
void RegisterBuiltinStrategies(StrategyRegistry& registry);
}  // namespace internal

StrategyRegistry& StrategyRegistry::Global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();
    internal::RegisterBuiltinStrategies(*r);
    return r;
  }();
  return *registry;
}

Status StrategyRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty()) {
    return Status::Invalid("StrategyRegistry: empty strategy name");
  }
  if (!factory) {
    return Status::Invalid("StrategyRegistry: null factory for '" + name + "'");
  }
  if (factories_.count(name) > 0) {
    return Status::Invalid("StrategyRegistry: '" + name +
                           "' is already registered");
  }
  factories_.emplace(name, std::move(factory));
  return Status::OK();
}

Result<std::unique_ptr<sim::Autoscaler>> StrategyRegistry::Create(
    const StrategySpec& spec, const StrategyContext& context) const {
  const auto it = factories_.find(spec.name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [name, factory] : factories_) {
      (void)factory;
      if (!known.empty()) known += ", ";
      known += "'" + name + "'";
    }
    return Status::Invalid("unknown strategy '" + spec.name +
                           "'; registered strategies: " + known);
  }
  return it->second(spec, context);
}

std::vector<std::string> StrategyRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    (void)factory;
    names.push_back(name);
  }
  return names;
}

bool StrategyRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

Result<std::unique_ptr<sim::Autoscaler>> MakeStrategy(
    const StrategySpec& spec, const StrategyContext& context) {
  return StrategyRegistry::Global().Create(spec, context);
}

}  // namespace rs::api
