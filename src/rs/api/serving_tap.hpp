/// \file serving_tap.hpp
/// \brief Observer hook over a ScalerFleet's serving traffic.
///
/// A ServingTap attached via ScalerFleet::AttachTap sees every successful
/// serving-facing operation — tenant lifecycle, Observe arrivals, Plan
/// drains — with exactly the values the caller saw, after the fleet applied
/// them. rs::trace::Recorder implements this interface to capture a serving
/// session into a durable trace (see docs/TRACE_FORMAT.md); dashboards or
/// shadow pipelines can implement it too.
///
/// Contract for implementations:
///  * Callbacks fire on the fleet's caller thread, never from pool workers
///    (PlanAll fires once, after the worker join, in registration order
///    inside the batch), so implementations need no locking of their own as
///    long as they follow the fleet's single-caller-thread rule.
///  * Callbacks fire only for operations that succeeded (a failed Observe
///    or Plan mutates no serving state, so a faithful re-drive does not
///    need it). PlanAll is the exception: its per-tenant failures are part
///    of the one batch result and are reported with ok = false.
///  * Const access to the fleet from inside a callback is allowed (the
///    fleet has finished mutating before it fires); re-entrant mutation
///    (Register/Observe/... from a callback) is not.
///  * A tap and the freshness loop are mutually exclusive: background
///    retrains complete at wall-time-dependent moments, which no recorded
///    event stream could re-drive deterministically. AttachTap refuses on a
///    freshness-enabled fleet and EnableFreshness refuses while a tap is
///    attached. Manual ReplaceModel / ReplaceModelAtNextPlan are fully
///    supported — the incoming model is handed to the tap so a recorder
///    can snapshot it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rs/api/scaler.hpp"
#include "rs/api/scaler_fleet.hpp"
#include "rs/simulator/autoscaler.hpp"

namespace rs::api {

/// Logical decision-clock position after a plan, exported via
/// sim::DecisionClock::ExportPosition. `has_position` is false for clocks
/// with no restorable position (the SteadyDecisionClock default) — both
/// sides of a replay then compare trivially equal, which is correct: wall
/// time was never part of the deterministic contract.
struct TapClockMark {
  bool has_position = false;
  double time = 0.0;
  std::uint64_t readings = 0;
};

class ServingTap {
 public:
  virtual ~ServingTap() = default;

  /// A tenant landed in the fleet (Register, RestoreTenant, LoadFleet,
  /// MigrateTenant's target side). `scaler` is the registered instance —
  /// its SaveState is the state a re-drive must start this tenant from.
  virtual void OnRegister(const std::string& tenant, const Scaler& scaler) {
    (void)tenant;
    (void)scaler;
  }

  virtual void OnRetire(const std::string& tenant) { (void)tenant; }

  /// A model swap. Immediate swaps (`at_next_plan` false) pass the
  /// installed scaler, after the serving-config carry; deferred swaps pass
  /// the still-pending incoming scaler (the carry happens at the boundary
  /// on both the recorded and the re-driven side).
  virtual void OnReplaceModel(const std::string& tenant, const Scaler& incoming,
                              bool at_next_plan) {
    (void)tenant;
    (void)incoming;
    (void)at_next_plan;
  }

  virtual void OnObserve(const std::string& tenant, double arrival_time,
                         const Scaler::ObserveOutcome& outcome) {
    (void)tenant;
    (void)arrival_time;
    (void)outcome;
  }

  /// A single-tenant Plan drain. `action` is the caller-facing result and
  /// `clock` the tenant's decision-clock position right after it.
  virtual void OnPlan(const std::string& tenant, double now,
                      const sim::ScalingAction& action,
                      const TapClockMark& clock) {
    (void)tenant;
    (void)now;
    (void)action;
    (void)clock;
  }

  /// One PlanAll batch: `plans` in registration order (exactly what the
  /// caller receives, per-tenant failures included), `clocks[i]` the
  /// position of `plans[i]`'s tenant clock after the batch.
  virtual void OnPlanAll(double now,
                         const std::vector<ScalerFleet::TenantPlan>& plans,
                         const std::vector<TapClockMark>& clocks) {
    (void)now;
    (void)plans;
    (void)clocks;
  }
};

}  // namespace rs::api
