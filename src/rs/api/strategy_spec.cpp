#include "rs/api/strategy_spec.hpp"

#include <cstdlib>
#include <sstream>

namespace rs::api {

Result<StrategySpec> ParseStrategySpec(const std::string& text) {
  if (text.empty()) return Status::Invalid("ParseStrategySpec: empty spec");
  StrategySpec spec;
  const auto colon = text.find(':');
  spec.name = text.substr(0, colon);
  if (spec.name.empty()) {
    return Status::Invalid("ParseStrategySpec: missing strategy name in '" +
                           text + "'");
  }
  if (colon == std::string::npos) return spec;

  std::string rest = text.substr(colon + 1);
  std::istringstream pairs(rest);
  std::string pair;
  while (std::getline(pairs, pair, ',')) {
    if (pair.empty()) continue;
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::Invalid("ParseStrategySpec: expected key=value, got '" +
                             pair + "' in '" + text + "'");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return Status::Invalid("ParseStrategySpec: parameter '" + key +
                             "' has non-numeric value '" + value + "'");
    }
    spec.params[key] = parsed;
  }
  return spec;
}

std::string FormatStrategySpec(const StrategySpec& spec) {
  std::ostringstream out;
  out << spec.name;
  bool first = true;
  for (const auto& [key, value] : spec.params) {
    out << (first ? ':' : ',') << key << '=' << value;
    first = false;
  }
  return out.str();
}

double ParamReader::Get(const std::string& key, double fallback) {
  known_.insert(key);
  const auto it = spec_.params.find(key);
  return it == spec_.params.end() ? fallback : it->second;
}

bool ParamReader::Has(const std::string& key) {
  known_.insert(key);
  return spec_.params.count(key) > 0;
}

Status ParamReader::Finish() const {
  std::string unknown;
  for (const auto& [key, value] : spec_.params) {
    (void)value;
    if (known_.count(key) == 0) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "'" + key + "'";
    }
  }
  if (unknown.empty()) return Status::OK();
  std::string known_list;
  for (const auto& key : known_) {
    if (!known_list.empty()) known_list += ", ";
    known_list += "'" + key + "'";
  }
  return Status::Invalid("strategy '" + spec_.name + "': unknown parameter" +
                         (unknown.find(',') != std::string::npos ? "s " : " ") +
                         unknown + "; known parameters: " + known_list);
}

}  // namespace rs::api
