/// \file builtin_strategies.cpp
/// \brief Self-registration of the five paper strategies with the global
///        StrategyRegistry. This file is the single place where the "target"
///        parameter of each RobustScaler variant is interpreted (via
///        api::TargetFromParam), so its semantics cannot drift between
///        benches, examples and the builder facade.
#include <cmath>
#include <memory>
#include <sstream>

#include "rs/api/strategy_registry.hpp"
#include "rs/api/targets.hpp"
#include "rs/common/logging.hpp"
#include "rs/baselines/adaptive_backup_pool.hpp"
#include "rs/baselines/backup_pool.hpp"
#include "rs/core/sequential_scaler.hpp"

namespace rs::api {
namespace internal {

namespace {

Status CheckCount(const char* strategy, const char* key, double value) {
  // 2^53: exactly representable, fits every unsigned destination used here.
  // The upper bound keeps the subsequent double→unsigned cast defined.
  constexpr double kMaxCount = 9007199254740992.0;
  if (!(value >= 0.0) || value != std::floor(value) || value > kMaxCount) {
    std::ostringstream msg;
    msg << "strategy '" << strategy << "': parameter '" << key
        << "' must be a non-negative integer (at most 2^53), got " << value;
    return Status::Invalid(msg.str());
  }
  return Status::OK();
}

Status CheckPositive(const char* strategy, const char* key, double value) {
  if (!(value > 0.0)) {
    std::ostringstream msg;
    msg << "strategy '" << strategy << "': parameter '" << key
        << "' must be > 0, got " << value;
    return Status::Invalid(msg.str());
  }
  return Status::OK();
}

/// BP: a constant pool of `pool_size` warm instances (0 = pure reactive).
Result<std::unique_ptr<sim::Autoscaler>> MakeBackupPool(
    const StrategySpec& spec, const StrategyContext& context) {
  (void)context;
  ParamReader params(spec);
  const double pool_size = params.Get("pool_size", 0.0);
  RS_RETURN_NOT_OK(params.Finish());
  // Validate before the double→unsigned cast (negative values are UB).
  RS_RETURN_NOT_OK(CheckCount("backup_pool", "pool_size", pool_size));
  return std::unique_ptr<sim::Autoscaler>(std::make_unique<baseline::BackupPool>(
      static_cast<std::size_t>(pool_size)));
}

/// AdapBP: pool resized to round(recent QPS × multiplier) every interval.
Result<std::unique_ptr<sim::Autoscaler>> MakeAdaptiveBackupPool(
    const StrategySpec& spec, const StrategyContext& context) {
  (void)context;
  ParamReader params(spec);
  const double multiplier = params.Get("multiplier", 1.0);
  const double update_interval = params.Get("update_interval", 600.0);
  const double estimate_window = params.Get("estimate_window", 600.0);
  RS_RETURN_NOT_OK(params.Finish());
  RS_RETURN_NOT_OK(
      CheckPositive("adaptive_backup_pool", "multiplier", multiplier));
  RS_RETURN_NOT_OK(
      CheckPositive("adaptive_backup_pool", "update_interval", update_interval));
  RS_RETURN_NOT_OK(
      CheckPositive("adaptive_backup_pool", "estimate_window", estimate_window));
  return std::unique_ptr<sim::Autoscaler>(
      std::make_unique<baseline::AdaptiveBackupPool>(multiplier, update_interval,
                                                     estimate_window));
}

/// Shared constructor of the three RobustScaler variants; `variant` decides
/// how the "target" parameter is interpreted (see api::TargetFromParam).
Result<std::unique_ptr<sim::Autoscaler>> MakeRobustVariant(
    core::ScalerVariant variant, double default_target,
    const StrategySpec& spec, const StrategyContext& context) {
  const char* name = StrategyNameFor(variant);
  if (context.forecast == nullptr) {
    return Status::Invalid(
        std::string("strategy '") + name +
        "' requires a forecast intensity: train one with "
        "rs::api::ScalerBuilder or set StrategyContext.forecast");
  }

  ParamReader params(spec);
  const double raw_target = params.Get("target", default_target);
  core::SequentialScalerOptions options;
  const double mc_samples =
      params.Get("mc_samples", static_cast<double>(context.mc_samples));
  const double max_creations =
      params.Get("max_creations_per_round",
                 static_cast<double>(options.max_creations_per_round));
  const double seed =
      params.Get("seed", static_cast<double>(context.seed));
  options.planning_interval =
      params.Get("planning_interval", context.planning_interval);
  options.planning_pool = context.planning_pool;
  options.kappa_alpha = params.Get("kappa_alpha", options.kappa_alpha);
  options.local_intensity_window =
      params.Get("local_intensity_window", options.local_intensity_window);
  options.forecast_origin =
      params.Get("forecast_origin", options.forecast_origin);
  RS_RETURN_NOT_OK(params.Finish());

  // Validate count-like parameters BEFORE the double→unsigned casts: a
  // negative double to unsigned conversion is undefined behavior and would
  // otherwise wrap past the >= 1 guards.
  RS_RETURN_NOT_OK(CheckCount(name, "mc_samples", mc_samples));
  RS_RETURN_NOT_OK(CheckCount(name, "max_creations_per_round", max_creations));
  RS_RETURN_NOT_OK(CheckCount(name, "seed", seed));
  options.mc_samples = static_cast<std::size_t>(mc_samples);
  options.max_creations_per_round = static_cast<std::size_t>(max_creations);
  options.seed = static_cast<std::uint64_t>(seed);

  RS_ASSIGN_OR_RETURN(auto target, TargetFromParam(variant, raw_target));
  RS_RETURN_NOT_OK(ApplyTarget(target, &options));
  if (options.mc_samples == 0) {
    return Status::Invalid(std::string("strategy '") + name +
                           "': mc_samples must be >= 1");
  }
  RS_RETURN_NOT_OK(CheckPositive(name, "planning_interval",
                                 options.planning_interval));
  if (!(options.kappa_alpha > 0.0) || !(options.kappa_alpha < 1.0)) {
    return Status::Invalid(std::string("strategy '") + name +
                           "': kappa_alpha must be in (0, 1)");
  }
  return std::unique_ptr<sim::Autoscaler>(
      std::make_unique<core::RobustScalerPolicy>(*context.forecast,
                                                 context.pending, options));
}

}  // namespace

void RegisterBuiltinStrategies(StrategyRegistry& registry) {
  // A failed builtin registration (e.g. a future duplicate name) must fail
  // loudly at startup, not surface as "unknown strategy" at use time.
  auto must = [](Status status) {
    RS_CHECK(status.ok()) << status.ToString();
  };
  must(registry.Register("backup_pool", MakeBackupPool));
  must(registry.Register("adaptive_backup_pool", MakeAdaptiveBackupPool));
  must(registry.Register(
      "robust_hp", [](const StrategySpec& spec, const StrategyContext& ctx) {
        return MakeRobustVariant(core::ScalerVariant::kHittingProbability, 0.9,
                                 spec, ctx);
      }));
  must(registry.Register(
      "robust_rt", [](const StrategySpec& spec, const StrategyContext& ctx) {
        return MakeRobustVariant(core::ScalerVariant::kResponseTime, 1.0, spec,
                                 ctx);
      }));
  must(registry.Register(
      "robust_cost", [](const StrategySpec& spec, const StrategyContext& ctx) {
        return MakeRobustVariant(core::ScalerVariant::kCost, 2.0, spec, ctx);
      }));
}

}  // namespace internal
}  // namespace rs::api
