/// \file api.hpp
/// \brief The single public entry point of the robustscaler library.
///
/// Consumers (examples, benches, CLIs, services) include this header and
/// program against:
///  * rs::api::ScalerBuilder / rs::api::Scaler — train-then-serve facade
///    (batch Replay/Evaluate and online Observe/Plan/Snapshot);
///  * rs::api::ScalerFleet — multi-tenant serving front end: many named
///    Scalers behind one Observe/PlanAll interface, planning batched
///    across tenants on a worker pool with per-tenant action sequences
///    identical to independent sequential Scalers;
///  * rs::api::StrategyRegistry / rs::api::MakeStrategy — string-keyed
///    strategy selection ("backup_pool", "adaptive_backup_pool",
///    "robust_hp", "robust_rt", "robust_cost");
///  * rs::api::HitRate / ResponseTimeBudget / IdleBudget — typed targets;
///  * re-exported workload/simulator vocabulary types (Trace, Metrics,
///    EngineOptions, ...) needed to feed and evaluate a scaler.
///
/// The layers below (rs::core, rs::sim, rs::baseline, ...) remain available
/// for ablations and internals work but are not API-stable.
#pragma once

#include "rs/api/scaler.hpp"
#include "rs/api/scaler_fleet.hpp"
#include "rs/api/serving_adapter.hpp"
#include "rs/api/strategy_registry.hpp"
#include "rs/api/strategy_spec.hpp"
#include "rs/api/targets.hpp"
#include "rs/common/status.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/workload/intensity.hpp"
#include "rs/workload/synthetic.hpp"
#include "rs/workload/trace.hpp"
