/// \file scaler.hpp
/// \brief The builder-style facade over the RobustScaler pipeline: one
///        object that owns the train-then-serve lifecycle.
///
///   auto scaler = rs::api::ScalerBuilder()
///                     .WithTrace(train)
///                     .WithBinWidth(60.0)
///                     .WithForecastHorizon(test.horizon())
///                     .WithTarget(rs::api::HitRate{0.9})
///                     .Build();
///
/// A built Scaler serves two modes with the same trained policy:
///  * batch replay — Replay()/Evaluate() run the simulator over a test
///    trace (the paper's experiment mode);
///  * online serving — Observe(arrival)/Plan(now)/Snapshot() adapt the
///    policy for incremental production use: the caller reports arrivals and
///    periodically asks for the scaling actions to execute.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rs/api/strategy_registry.hpp"
#include "rs/api/strategy_spec.hpp"
#include "rs/api/targets.hpp"
#include "rs/common/status.hpp"
#include "rs/common/thread_pool.hpp"
#include "rs/core/pipeline.hpp"
#include "rs/simulator/engine.hpp"
#include "rs/simulator/metrics.hpp"
#include "rs/workload/trace.hpp"

namespace rs::persist {
class Writer;
class Reader;
}  // namespace rs::persist

namespace rs::api {

/// \brief Process-local resources a restored Scaler needs re-injected.
///
/// A snapshot is self-contained *data*; pointers into the old process
/// (injected decision clocks, planning pools) obviously cannot travel with
/// it. Restore re-binds them here: a snapshot taken with an injected
/// DecisionClock refuses to restore without one (silently falling back to
/// wall time would break the deterministic-continuation contract), while
/// the planning pool is optional — it is purely a wall-time knob and can
/// also be attached later via Scaler::SetPlanningPool / fleet Register.
struct ScalerRestoreOptions {
  /// Clock to restore the snapshot's decision-clock position onto (see
  /// sim::DecisionClock::ImportPosition). Required iff the snapshot was
  /// taken with an injected clock; must outlive the restored Scaler.
  sim::DecisionClock* decision_clock = nullptr;
  /// Worker pool for the strategy's planning fan-out (nullptr plans
  /// inline). Must outlive the restored Scaler's planning calls.
  common::ThreadPool* planning_pool = nullptr;
};

/// Read-only view of the online serving state (for dashboards / tests).
struct ServingSnapshot {
  bool started = false;
  double now = 0.0;                    ///< Serving clock (s since start).
  std::size_t queries_observed = 0;
  std::size_t instances_alive = 0;     ///< Unconsumed instances (incl. pending).
  std::size_t instances_ready = 0;     ///< Of those, warm at `now`.
  std::size_t scheduled_creations = 0; ///< Future creations not yet executed.
  std::size_t cold_starts = 0;         ///< Arrivals that found no instance.
  std::size_t creations_requested = 0; ///< Total creations emitted so far.
  std::size_t deletions_requested = 0;
  std::size_t planning_rounds = 0;     ///< Strategy callbacks invoked.
  std::string strategy;                ///< Strategy name serving this scaler.

  // -- History retention (see Scaler::ConfigureHistoryRetention) ------------
  /// Effective retention window in seconds (infinity = keep everything):
  /// max(strategy history_requirement, configured override).
  double history_retention = 0.0;
  /// Arrival times currently held in the windowed buffer. Compared with
  /// `queries_observed` (the lifetime total) this shows the compaction at
  /// work: retained stays bounded while the total grows with traffic.
  std::size_t arrivals_retained = 0;
  /// ActionLog() entries currently held vs `planning_rounds` (the total).
  std::size_t actions_retained = 0;
  /// Bytes of persistent planning scratch (Monte Carlo workspaces, decision
  /// kernels) the strategy retains; tracks the strategy's R and shrinks when
  /// it drops. FleetSnapshot sums this across tenants.
  std::size_t planning_workspace_bytes = 0;
};

/// \brief A trained, ready-to-serve autoscaler (build via ScalerBuilder).
class Scaler {
 public:
  Scaler(Scaler&&) noexcept;
  Scaler& operator=(Scaler&&) noexcept;
  ~Scaler();

  /// Training artifacts (detected period, ADMM diagnostics, forecast, ...).
  const core::TrainedPipeline& trained() const { return trained_; }
  const workload::PiecewiseConstantIntensity& forecast() const {
    return trained_.forecast;
  }

  /// The underlying strategy, for advanced uses (custom sim::Simulate runs).
  sim::Autoscaler* strategy() const { return strategy_.get(); }

  /// Registry-style description of the serving strategy, e.g.
  /// "robust_hp:target=0.9".
  const std::string& strategy_name() const { return strategy_name_; }

  /// \brief Re-points the strategy's internal planning fan-out at `pool`
  ///        (nullptr plans inline).
  ///
  /// Purely a wall-time knob: strategies that honor it keep their emitted
  /// actions byte-identical for any pool size, so serving behavior never
  /// depends on the pool. The pool must outlive this Scaler's planning
  /// calls. ScalerFleet calls this on Register/ReplaceModel to share its
  /// tenant-batching pool with per-tenant plan shards (one work queue).
  void SetPlanningPool(common::ThreadPool* pool) {
    strategy_->SetPlanningPool(pool);
  }

  // -- Batch replay ---------------------------------------------------------

  /// \brief Replays `test` under the trained strategy.
  ///
  /// Validates that the trained forecast covers the test horizon — the
  /// classic silent-nonsense bug the facade exists to catch (a forecast
  /// shorter than the test trace degenerates to a constant tail). Fix by
  /// building with WithForecastHorizon(test.horizon()).
  ///
  /// Note: replay advances the strategy's internal Monte Carlo stream, so
  /// an Observe/Plan run on the same Scaler afterwards will not reproduce
  /// the replay's action sequence bit-for-bit. Build a fresh Scaler per
  /// mode when comparing the two (as tests/api_test.cpp does).
  Result<sim::SimulationResult> Replay(const workload::Trace& test);
  Result<sim::SimulationResult> Replay(const workload::Trace& test,
                                       const sim::EngineOptions& engine);

  /// Replay + ComputeMetrics in one call.
  Result<sim::Metrics> Evaluate(const workload::Trace& test);

  // -- Online serving -------------------------------------------------------
  //
  // The serving clock starts at 0 = the end of the training window (the
  // forecast's local time zero). Observe() reports each query arrival (in
  // nondecreasing time order) and returns the reactive work the arrival
  // itself forces on the caller (see ObserveOutcome); Plan() advances the
  // strategy's planning loop to `now` and returns the actions the caller
  // must execute: create instances at the given absolute times, delete
  // `deletions` idle instances (newest first).
  //
  // Polling cadence: call Plan() at least once per planning interval. The
  // mirror's planning loop runs at tick granularity regardless, so a late
  // poll returns past-dated creation times the real fleet can only start
  // late — the mirror then believes instances are warm sooner than they
  // are. Memory: the serving state is bounded. Arrival history and the
  // action log are compacted to a trailing window once entries age past the
  // strategy's declared lookback (Autoscaler::history_requirement), so
  // indefinitely-running deployments hold O(window) state, not O(traffic).
  // Strategies that declare kUnboundedHistory (e.g. refitting wrappers)
  // still retain everything; ConfigureHistoryRetention() can widen the
  // window (for dashboards) but never narrows it below the strategy's
  // floor.
  //
  // Internally the scaler mirrors Algorithm 1's
  // instance accounting (using the configured pending-time model) so its
  // action sequence on a trace is identical to the batch replay path —
  // asserted in tests/api_test.cpp. (Identical to a *fresh* replay: the
  // strategy's Monte Carlo stream is shared between modes, so interleaving
  // Replay() calls perturbs subsequent Plan()s; see Replay's note.)

  /// \brief Overrides the serving-time engine model (pending distribution,
  ///        seed, creation latency, decision-time charging). Must be called
  ///        before the first Observe()/Plan().
  ///
  /// Options are validated like registry parameters (creation_latency >= 0,
  /// pending_jitter in [0, 1]) — the same checks sim::Simulate applies.
  /// With charge_decision_wall_time set, the mirror brackets every planning
  /// tick with the configured sim::DecisionClock (a real steady clock by
  /// default) and clamps the resulting creations to now + elapsed, exactly
  /// like the engine's Table IV "real environment" mode; inject a
  /// FakeDecisionClock via EngineOptions::decision_clock to make the
  /// charged latencies deterministic. An injected clock must outlive the
  /// whole serving session — the options (clock pointer included) are kept
  /// and carried across ResetServing() into subsequent sessions.
  Status ConfigureServing(const sim::EngineOptions& options);

  /// \brief Sets the extra serving-state retention to `lookback_seconds`
  ///        behind the serving clock (replacing any previous setting).
  ///
  /// The effective window is max(strategy()->history_requirement(),
  /// lookback_seconds): the strategy's declared floor can never be
  /// narrowed, so retention can never change a decision — the knob only
  /// keeps more history around for observability. Pass
  /// sim::kUnboundedHistory to disable compaction entirely (e.g. to
  /// preserve the full parity log); note a later, smaller setting re-arms
  /// compaction and already-discarded history cannot come back. May be
  /// called at any time; applies from the next compaction.
  ///
  /// Interaction with durable snapshots: the retained window is exactly
  /// what SaveState() serializes, so widening retention grows every
  /// subsequent snapshot proportionally — with sim::kUnboundedHistory the
  /// snapshot grows without bound as traffic accumulates. Long-running
  /// deployments that snapshot periodically should keep the default
  /// (strategy-floor) retention unless they need the full log.
  Status ConfigureHistoryRetention(double lookback_seconds);

  /// What the caller must do in response to an observed arrival (the
  /// cold-start rule of Algorithm 1, which the scaler's mirror applies and
  /// the caller's fleet must apply too, or the two diverge).
  struct ObserveOutcome {
    /// No instance was available: create one immediately to serve this
    /// query (a reactive cold start).
    bool cold_start = false;
    /// The cold start consumed a creation that was already scheduled:
    /// cancel your earliest still-pending scheduled creation (it was
    /// intended for this query).
    bool cancel_earliest_scheduled = false;
  };

  /// Reports one query arrival at `arrival_time` (>= the serving clock).
  Result<ObserveOutcome> Observe(double arrival_time);

  /// Advances planning to `now` and returns the accumulated actions.
  Result<sim::ScalingAction> Plan(double now);

  /// Current serving state.
  ServingSnapshot Snapshot() const;

  /// The retained suffix of the parity log: one entry per strategy callback
  /// (initialize / planning tick / arrival), compacted to the retention
  /// window like the arrival history. Snapshot().planning_rounds still
  /// counts every callback ever made; ConfigureHistoryRetention(
  /// sim::kUnboundedHistory) keeps the log complete.
  const std::vector<sim::ScalingAction>& ActionLog() const;

  /// Discards online state for a fresh serving run. Note: the strategy's
  /// internal Monte Carlo stream is not rewound; build a fresh Scaler for
  /// bit-identical action replays.
  Status ResetServing();

  // -- Durable state --------------------------------------------------------

  /// \brief Writes a complete snapshot of this scaler — strategy spec,
  ///        forecast, strategy model state, and the entire serving mirror
  ///        (schedule, live set, retained arrival/action windows, RNG
  ///        position, decision-clock position) — as one rs::persist record.
  ///
  /// The contract: ScalerBuilder::RestoreState of this snapshot in a fresh
  /// process continues the serving session with a byte-identical action
  /// sequence to this instance never having stopped, under any planning-
  /// pool size and with RS_REFERENCE_KERNELS on or off (both are wall-time
  /// knobs, never behavior). Const: taking a snapshot perturbs nothing, so
  /// it can run on a live scaler between events.
  ///
  /// Size scales with the retained serving window (see
  /// ConfigureHistoryRetention) plus the forecast length. Training
  /// diagnostics (raw counts, NHPP parameters, ADMM info) are not
  /// persisted — serving only needs the forecast; retrain if you need them.
  Status SaveState(std::ostream& out) const;

 private:
  friend class ScalerBuilder;
  friend class ScalerFleet;  // Nests SaveStateSection into fleet records.
  struct Serving;

  /// Builder-time strategy-construction defaults that a snapshot must carry
  /// to rebuild the same strategy in a fresh process: RestoreState replays
  /// them through the registry exactly like Build() (explicit spec params
  /// still win over these defaults).
  struct StrategyBuildContext {
    stats::DurationDistribution pending =
        stats::DurationDistribution::Deterministic(13.0);
    std::size_t mc_samples = 300;
    double planning_interval = 1.0;
    std::uint64_t seed = 31;
  };

  Scaler(core::TrainedPipeline trained,
         std::unique_ptr<sim::Autoscaler> strategy, StrategySpec spec,
         StrategyBuildContext build_context, sim::EngineOptions serve_defaults);

  /// Builds a ready-to-serve scaler around an externally trained pipeline —
  /// the fleet's background-retrain path. The strategy is rebuilt through
  /// the registry from the retiring scaler's spec + build context (exactly
  /// like RestoreStateSection), with a fresh serving mirror; the caller
  /// layers the retiring scaler's serving config on top.
  static Result<Scaler> FromTrainedPipeline(core::TrainedPipeline trained,
                                            StrategySpec spec,
                                            StrategyBuildContext build_context,
                                            common::ThreadPool* planning_pool);

  // Views into the pimpl'd Serving (defined only in scaler.cpp) that
  // ScalerFleet needs to carry serving configuration across a model swap.
  const sim::EngineOptions& serving_options() const;
  sim::DecisionClock* serving_clock() const;
  bool serving_started() const;
  double retention_override() const { return retention_override_; }

  /// SaveState minus the container framing, so fleet snapshots can nest
  /// per-tenant scaler records inside their own sections.
  Status SaveStateSection(persist::Writer* writer) const;
  Status SaveServingState(persist::Writer* writer) const;
  Status LoadServingState(persist::Reader* reader,
                          sim::DecisionClock* restore_clock);

  void EnsureStarted();
  void AdvanceTo(double t);
  void ApplyAndBuffer(sim::ScalingAction action, double effective);
  void ExecuteCreation(double t);
  sim::SimContext MakeContext(double now) const;
  double EffectiveRetention() const;
  void CompactServingState();

  core::TrainedPipeline trained_;
  std::unique_ptr<sim::Autoscaler> strategy_;
  /// The structured spec the strategy was created from. SaveState persists
  /// this, not strategy_name_: FormatStrategySpec rounds parameters to six
  /// significant digits, and restore must feed the registry bit-exact
  /// values.
  StrategySpec spec_;
  StrategyBuildContext build_context_;
  std::string strategy_name_;
  sim::EngineOptions serve_defaults_;
  /// ConfigureHistoryRetention value; the effective window is the max of
  /// this and the strategy's declared history_requirement().
  double retention_override_ = 0.0;
  std::unique_ptr<Serving> serving_;
};

/// \brief Builder for Scaler: collects the training trace, model knobs, and
///        the serving strategy, validates them together, then trains.
///
/// Strategy selection: WithTarget() picks the matching RobustScaler variant
/// (HP/RT/cost); WithStrategy() selects any registered strategy by name +
/// params (the two are mutually exclusive). Default: HitRate{0.9}.
class ScalerBuilder {
 public:
  /// Training trace (required). The trace's horizon defines the training
  /// window; serving time 0 is the end of this window.
  ScalerBuilder& WithTrace(workload::Trace train);

  /// Bin width Δt in seconds for the fitted QPS series (default 60).
  ScalerBuilder& WithBinWidth(double dt);

  /// How far past training the forecast must extend (seconds). Set to at
  /// least the horizon you will Replay()/serve (default 86400).
  ScalerBuilder& WithForecastHorizon(double seconds);

  /// Periodicity-detection aggregation factor (default 1).
  ScalerBuilder& WithAggregateFactor(std::size_t factor);

  /// Scaling target; selects the RobustScaler variant (default HitRate{0.9}).
  ScalerBuilder& WithTarget(ScalingTarget target);

  /// Any registered strategy by name + params (mutually exclusive with
  /// WithTarget).
  ScalerBuilder& WithStrategy(StrategySpec spec);

  /// Instance pending/startup-time model τ_i (default: deterministic 13 s).
  ScalerBuilder& WithPending(stats::DurationDistribution pending);

  /// Planning interval Δ in seconds (default 1).
  ScalerBuilder& WithPlanningInterval(double seconds);

  /// Monte Carlo samples per decision (default 300).
  ScalerBuilder& WithMcSamples(std::size_t samples);

  /// Seed of the strategy's Monte Carlo stream (default 31).
  ScalerBuilder& WithSeed(std::uint64_t seed);

  /// Worker pool for the training passes (periodicity scoring, ADMM; see
  /// core::PipelineOptions::training_pool). The trained model is
  /// byte-identical for any pool size — this only changes training wall
  /// time. The pool must outlive Build().
  ScalerBuilder& WithTrainingPool(common::ThreadPool* pool);

  /// Worker pool the serving strategy shards its per-plan Monte Carlo
  /// rounds over (see core::SequentialScalerOptions::planning_pool).
  /// Emitted actions are byte-identical for any pool size — purely a
  /// wall-time knob. The pool must outlive the built Scaler (it can be
  /// replaced later via Scaler::SetPlanningPool).
  ScalerBuilder& WithPlanningPool(common::ThreadPool* pool);

  /// Expert escape hatch: full pipeline configuration (periodicity, ADMM,
  /// forecast, β weights). WithBinWidth / WithForecastHorizon /
  /// WithAggregateFactor still override their fields regardless of call
  /// order.
  ScalerBuilder& WithPipelineOptions(core::PipelineOptions options);

  /// Validates all options together, trains modules 1–3, and constructs the
  /// serving strategy (module 4).
  Result<Scaler> Build() const;

  // -- Durable state --------------------------------------------------------

  /// \brief Reconstructs a Scaler from a Scaler::SaveState snapshot — no
  ///        retraining, no traffic replay.
  ///
  /// The strategy is rebuilt through the StrategyRegistry from the
  /// serialized spec (so all factory validation re-runs), its mutable model
  /// state is overlaid via Autoscaler::DeserializeModel, and the serving
  /// mirror resumes at the exact event position it was saved at: the next
  /// Observe()/Plan() continues the action sequence byte-for-byte.
  /// Corrupt, truncated, or future-versioned snapshots fail with a
  /// descriptive Status, never UB.
  static Result<Scaler> RestoreState(std::istream& in,
                                     const ScalerRestoreOptions& options = {});

  /// Building block behind RestoreState and ScalerFleet::RestoreTenant:
  /// reads one scaler record at the reader's current position (the record
  /// written by Scaler::SaveStateSection). Most callers want RestoreState.
  static Result<Scaler> RestoreStateSection(persist::Reader* reader,
                                            const ScalerRestoreOptions& options);

 private:
  std::optional<workload::Trace> train_;
  core::PipelineOptions pipeline_;
  std::optional<double> dt_;
  std::optional<double> forecast_horizon_;
  std::optional<std::size_t> aggregate_factor_;
  std::optional<ScalingTarget> target_;
  std::optional<StrategySpec> spec_;
  stats::DurationDistribution pending_ =
      stats::DurationDistribution::Deterministic(13.0);
  double planning_interval_ = 1.0;
  std::size_t mc_samples_ = 300;
  std::uint64_t seed_ = 31;
  common::ThreadPool* training_pool_ = nullptr;
  common::ThreadPool* planning_pool_ = nullptr;
};

/// \brief Facade over module 1–3 training for callers that share one fit
///        across many strategies (the bench harnesses). Prefer
///        ScalerBuilder for the common train-then-serve path.
Result<core::TrainedPipeline> TrainPipeline(
    const workload::Trace& train, const core::PipelineOptions& options = {});

/// Convenience: Simulate + ComputeMetrics for a standalone strategy.
Result<sim::Metrics> Evaluate(const workload::Trace& test,
                              sim::Autoscaler* strategy,
                              const sim::EngineOptions& engine = {});

}  // namespace rs::api
