#include "rs/api/serving_adapter.hpp"

#include <utility>

namespace rs::api {

sim::ScalingAction OnlineServingAdapter::Drain(
    Result<sim::ScalingAction> planned) {
  if (!planned.ok()) {
    if (status_.ok()) status_ = planned.status();
    return {};
  }
  return std::move(planned).ValueOrDie();
}

sim::ScalingAction OnlineServingAdapter::Initialize(const sim::SimContext& ctx) {
  // The scaler initializes lazily; Plan at t=0 yields the initialize action
  // (plus the t=0 planning round, which the engine would otherwise request
  // in its first tick — same instant, same effect).
  return Drain(scaler_->Plan(ctx.now));
}

sim::ScalingAction OnlineServingAdapter::OnPlanningTick(
    const sim::SimContext& ctx) {
  return Drain(scaler_->Plan(ctx.now));
}

sim::ScalingAction OnlineServingAdapter::OnQueryArrival(
    const sim::SimContext& ctx, bool cold_start) {
  (void)cold_start;  // The scaler's mirror re-derives cold starts itself.
  // The engine already performs the cold-start create+cancel on its side,
  // so the returned ObserveOutcome needs no forwarding here.
  const auto observed = scaler_->Observe(ctx.now);
  if (!observed.ok()) {
    if (status_.ok()) status_ = observed.status();
    return {};
  }
  // Drain the arrival-triggered action without advancing the clock.
  return Drain(scaler_->Plan(ctx.now));
}

sim::ScalingAction RecordingAutoscaler::Initialize(const sim::SimContext& ctx) {
  actions_.push_back(inner_->Initialize(ctx));
  return actions_.back();
}

sim::ScalingAction RecordingAutoscaler::OnPlanningTick(
    const sim::SimContext& ctx) {
  actions_.push_back(inner_->OnPlanningTick(ctx));
  return actions_.back();
}

sim::ScalingAction RecordingAutoscaler::OnQueryArrival(
    const sim::SimContext& ctx, bool cold_start) {
  actions_.push_back(inner_->OnQueryArrival(ctx, cold_start));
  return actions_.back();
}

}  // namespace rs::api
